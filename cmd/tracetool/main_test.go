package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"distws/internal/core"
	"distws/internal/uts"
	"distws/internal/victim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current implementation")

// goldenTrace is a small deterministic traced run: every analysis the
// tool renders is a pure function of it, so the full text report can be
// pinned byte for byte.
func goldenTrace(t *testing.T) *core.Result {
	t.Helper()
	res, err := core.Run(core.Config{
		Tree:          uts.MustPreset("T3").Params,
		Ranks:         8,
		Selector:      victim.NewDistanceSkewed,
		Seed:          7,
		CollectEvents: true,
		EventBuffer:   1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestGoldenTextReport pins the deterministic text output — all
// sections enabled — byte for byte. Regenerate after a deliberate
// format change with:
//
//	go test ./cmd/tracetool -run TestGoldenTextReport -update
func TestGoldenTextReport(t *testing.T) {
	res := goldenTrace(t)
	var buf bytes.Buffer
	err := render(&buf, res.Trace, renderOpts{
		steps: 5, heat: 8, width: 48, rows: 8,
		life: true, blame: true, critical: true, lineage: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "report.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("text report drifted from %s.\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

// TestJSONReportCoversAllAnalyses checks -format json carries every
// analysis the text mode renders — including the causal sections — and
// that the embedded identities hold.
func TestJSONReportCoversAllAnalyses(t *testing.T) {
	res := goldenTrace(t)
	r := analyze("test.jsonl", res.Trace)

	if r.Ranks != 8 || r.MakespanNS != int64(res.Makespan) {
		t.Fatalf("header: %+v", r)
	}
	if r.SessionStats == nil || r.SessionStats.Count != r.Sessions {
		t.Fatalf("session stats missing or inconsistent: %+v", r.SessionStats)
	}
	if len(r.LatencyCurve) == 0 {
		t.Fatal("SL/EL curve missing")
	}
	if r.Steals == nil || r.Tail == nil || len(r.Traffic) != 8 {
		t.Fatal("event analyses missing")
	}
	if r.Blame == nil || len(r.Blame.PerRank) != 8 {
		t.Fatal("blame report missing")
	}
	for rank, b := range r.Blame.PerRank {
		sum := b.BusyNS + b.StartupNS + b.SearchNS + b.InFlightNS + b.TermTailNS
		if sum != r.MakespanNS {
			t.Fatalf("rank %d blame sums to %d, makespan %d", rank, sum, r.MakespanNS)
		}
	}
	if r.Critical == nil {
		t.Fatal("critical path missing")
	}
	critSum := r.Critical.ComputeNS + r.Critical.StealRTTNS + r.Critical.TransferNS +
		r.Critical.TokenNS + r.Critical.WaitNS
	if critSum != r.MakespanNS {
		t.Fatalf("critical path sums to %d, makespan %d", critSum, r.MakespanNS)
	}
	if r.Lineage == nil || r.Lineage.Transfers == 0 || r.Lineage.MaxDepth < 1 {
		t.Fatalf("lineage report missing or empty: %+v", r.Lineage)
	}

	// The encoded report must be deterministic.
	a, err := json.Marshal(analyze("test.jsonl", res.Trace))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(analyze("test.jsonl", res.Trace))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("JSON report is not deterministic")
	}
}

// TestChromeOptionsHighlightContiguous: the exporter highlight track is
// the critical path, which covers the makespan contiguously.
func TestChromeOptionsHighlightContiguous(t *testing.T) {
	res := goldenTrace(t)
	o := chromeOptions(res.Trace)
	if len(o.Highlight) == 0 {
		t.Fatal("no highlight spans for a traced run")
	}
	if o.Highlight[0].Start != 0 {
		t.Fatalf("highlight starts at %v", o.Highlight[0].Start)
	}
	for i := 1; i < len(o.Highlight); i++ {
		if o.Highlight[i].Start != o.Highlight[i-1].End {
			t.Fatalf("highlight gap at span %d", i)
		}
	}
	if last := o.Highlight[len(o.Highlight)-1].End; last != res.Trace.End {
		t.Fatalf("highlight ends at %v, want %v", last, res.Trace.End)
	}
	// Traces without an event log get no highlight track.
	bare := *res.Trace
	bare.Events = nil
	if o := chromeOptions(&bare); len(o.Highlight) != 0 {
		t.Fatal("highlight emitted without an event log")
	}
}
