// Command tracetool analyzes activity traces produced by cmd/uts (or
// the library's trace.WriteJSONL): it prints the occupancy summary, the
// paper's starting/ending latencies, work-discovery session statistics,
// and a lifestory chart. Traces that carry the protocol event log
// (uts -trace) additionally get steal-latency percentiles, a rank×rank
// traffic heatmap, and a termination-tail breakdown.
//
// Usage:
//
//	uts -tree H-SMALL -ranks 128 -trace t.jsonl
//	tracetool -in t.jsonl
//	tracetool -in a.jsonl -in b.jsonl -format json
//	tracetool -in t.jsonl -lifestory -rows 32
//	tracetool -in t.jsonl -chrome t.json     # convert for ui.perfetto.dev
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"distws/internal/metrics"
	"distws/internal/obs"
	"distws/internal/sim"
	"distws/internal/trace"
)

// inList collects repeated -in flags.
type inList []string

func (l *inList) String() string     { return fmt.Sprint([]string(*l)) }
func (l *inList) Set(v string) error { *l = append(*l, v); return nil }

// jsonTrafficLimit caps the rank count for which -format json inlines
// the full traffic matrix; past it the report would be dominated by an
// O(ranks²) block of mostly zeros.
const jsonTrafficLimit = 128

// report is the machine-readable per-file analysis (-format json). All
// _ns fields are virtual nanoseconds.
type report struct {
	File          string            `json:"file"`
	Ranks         int               `json:"ranks"`
	MakespanNS    int64             `json:"makespan_ns"`
	Sessions      int               `json:"sessions"`
	MaxOccupancy  float64           `json:"max_occupancy"`
	MeanOccupancy float64           `json:"mean_occupancy"`
	Events        map[string]uint64 `json:"events,omitempty"`
	EventsDropped uint64            `json:"events_dropped,omitempty"`
	Steals        *stealReport      `json:"steals,omitempty"`
	Tail          *tailReport       `json:"termination_tail,omitempty"`
	Traffic       [][]uint64        `json:"traffic,omitempty"`
}

type stealReport struct {
	Count        int   `json:"count"`
	Success      int   `json:"success"`
	Refused      int   `json:"refused"`
	Aborted      int   `json:"aborted"`
	MeanNS       int64 `json:"mean_ns"`
	P50NS        int64 `json:"p50_ns"`
	P95NS        int64 `json:"p95_ns"`
	P99NS        int64 `json:"p99_ns"`
	MaxNS        int64 `json:"max_ns"`
	SuccessP50NS int64 `json:"success_p50_ns"`
	NodesMoved   int64 `json:"nodes_moved"`
}

type tailReport struct {
	LastTransferNS  int64   `json:"last_transfer_ns"`
	DurationNS      int64   `json:"duration_ns"`
	Fraction        float64 `json:"fraction"`
	FailedInTail    int     `json:"failed_in_tail"`
	TokenHopsInTail int     `json:"token_hops_in_tail"`
	TokenHopsTotal  int     `json:"token_hops_total"`
}

func main() {
	var (
		ins        inList
		formatFlag = flag.String("format", "text", "output format: text|json")
		chromeFlag = flag.String("chrome", "", "convert the (single) input to Chrome trace-event JSON at this path")
		lifeFlag   = flag.Bool("lifestory", false, "print per-rank activity bars")
		rowsFlag   = flag.Int("rows", 24, "max lifestory rows")
		widthFlag  = flag.Int("width", 72, "lifestory / curve width")
		stepsFlag  = flag.Int("steps", 10, "number of occupancy points for the SL/EL table")
		heatFlag   = flag.Int("heatmap", 16, "traffic heatmap size in tiles (0 disables)")
	)
	flag.Var(&ins, "in", "trace file (JSONL) to analyze; repeatable")
	flag.Parse()

	if len(ins) == 0 {
		fmt.Fprintln(os.Stderr, "tracetool: at least one -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if *formatFlag != "text" && *formatFlag != "json" {
		fatalf("unknown -format %q (text|json)", *formatFlag)
	}
	if *chromeFlag != "" && len(ins) != 1 {
		fatalf("-chrome converts exactly one trace; got %d inputs", len(ins))
	}

	var reports []report
	for _, path := range ins {
		tr := load(path)
		if *chromeFlag != "" {
			writeChrome(*chromeFlag, tr)
		}
		switch *formatFlag {
		case "json":
			reports = append(reports, analyze(path, tr))
		default:
			if len(ins) > 1 {
				fmt.Printf("==> %s <==\n", path)
			}
			printText(tr, *stepsFlag, *heatFlag, *lifeFlag, *widthFlag, *rowsFlag)
			if len(ins) > 1 {
				fmt.Println()
			}
		}
	}
	if *formatFlag == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fatalf("%v", err)
		}
	}
}

func load(path string) *trace.Trace {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	tr, err := trace.ReadJSONL(f)
	f.Close()
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	if err := tr.Validate(); err != nil {
		fatalf("%s: trace fails validation: %v", path, err)
	}
	return tr
}

func writeChrome(path string, tr *trace.Trace) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	if err := obs.WriteChromeTrace(f, tr); err != nil {
		fatalf("writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fatalf("closing %s: %v", path, err)
	}
	fmt.Fprintf(os.Stderr, "tracetool: chrome trace written to %s (load at ui.perfetto.dev)\n", path)
}

// analyze builds the machine-readable report for one trace.
func analyze(path string, tr *trace.Trace) report {
	curve := metrics.Occupancy(tr)
	r := report{
		File:          path,
		Ranks:         tr.Ranks(),
		MakespanNS:    int64(tr.End),
		Sessions:      tr.TotalSessions(),
		MaxOccupancy:  curve.MaxOccupancy(),
		MeanOccupancy: curve.MeanOccupancy(),
	}
	if tr.Events == nil {
		return r
	}
	r.Events = map[string]uint64{}
	for k, n := range tr.EventCounts() {
		if n > 0 {
			r.Events[trace.EventKind(k).String()] = n
		}
	}
	r.EventsDropped = tr.TotalEventsDropped()
	pairs := obs.PairSteals(tr)
	if len(pairs) > 0 {
		st := obs.StealLatency(pairs)
		r.Steals = &stealReport{
			Count: st.Count, Success: st.Success, Refused: st.Refused, Aborted: st.Aborted,
			MeanNS: int64(st.Mean), P50NS: int64(st.P50), P95NS: int64(st.P95),
			P99NS: int64(st.P99), MaxNS: int64(st.Max),
			SuccessP50NS: int64(st.SuccessP50), NodesMoved: st.NodesMoved,
		}
	}
	tail := obs.TerminationTail(tr, pairs)
	r.Tail = &tailReport{
		LastTransferNS: int64(tail.LastTransfer), DurationNS: int64(tail.Duration),
		Fraction: tail.Fraction, FailedInTail: tail.FailedInTail,
		TokenHopsInTail: tail.TokenHopsInTail, TokenHopsTotal: tail.TokenHopsTotal,
	}
	if tr.Ranks() <= jsonTrafficLimit {
		r.Traffic = obs.Traffic(tr)
	}
	return r
}

// printText is the human-readable analysis for one trace.
func printText(tr *trace.Trace, steps, heat int, life bool, width, rows int) {
	curve := metrics.Occupancy(tr)
	fmt.Printf("trace: %d ranks, makespan %v, %d sessions\n",
		tr.Ranks(), sim.Duration(tr.End), tr.TotalSessions())
	fmt.Printf("occupancy: max %.1f%% (Wmax %d), mean %.1f%%\n",
		curve.MaxOccupancy()*100, curve.Wmax(), curve.MeanOccupancy()*100)

	st := metrics.Sessions(tr)
	if st.Count > 0 {
		fmt.Printf("work-discovery sessions: %d, mean %.3gs, p50 %.3gs, p99 %.3gs, %d failed attempts\n",
			st.Count, st.Mean, st.P50, st.P99, st.Failed)
	}

	fmt.Printf("\noccupancy   SL (%% runtime)   EL (%% runtime)\n")
	for _, p := range curve.LatencyCurve(metrics.OccupancySamples(steps, curve.MaxOccupancy())) {
		if !p.Reached {
			fmt.Printf("   %3.0f%%        (never reached)\n", p.Occupancy*100)
			continue
		}
		fmt.Printf("   %3.0f%%        %6.2f           %6.2f\n", p.Occupancy*100, p.SL*100, p.EL*100)
	}

	if tr.Events != nil {
		fmt.Printf("\nprotocol events: %d recorded, %d dropped from bounded rings\n",
			tr.TotalEvents(), tr.TotalEventsDropped())
		counts := tr.EventCounts()
		for k, n := range counts {
			if n > 0 {
				fmt.Printf("  %-14s %d\n", trace.EventKind(k).String(), n)
			}
		}

		pairs := obs.PairSteals(tr)
		if len(pairs) > 0 {
			sl := obs.StealLatency(pairs)
			fmt.Printf("\nsteal round trips: %d (%d ok, %d refused, %d aborted), %d nodes moved\n",
				sl.Count, sl.Success, sl.Refused, sl.Aborted, sl.NodesMoved)
			fmt.Printf("steal latency: mean %v, p50 %v, p95 %v, p99 %v, max %v (successful p50 %v)\n",
				sl.Mean, sl.P50, sl.P95, sl.P99, sl.Max, sl.SuccessP50)
		}

		if heat > 0 {
			fmt.Println()
			fmt.Print(obs.RenderHeatmap(obs.Traffic(tr), heat))
		}

		tail := obs.TerminationTail(tr, pairs)
		fmt.Printf("\ntermination tail: last work transfer at %v, tail %v (%.1f%% of makespan)\n",
			sim.Duration(tail.LastTransfer), tail.Duration, tail.Fraction*100)
		fmt.Printf("  failed steals in tail: %d; token hops: %d in tail / %d total\n",
			tail.FailedInTail, tail.TokenHopsInTail, tail.TokenHopsTotal)
	}

	if life {
		fmt.Println()
		fmt.Print(metrics.Lifestory(tr, width, rows))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracetool: "+format+"\n", args...)
	os.Exit(1)
}
