// Command tracetool analyzes activity traces produced by cmd/uts (or
// the library's trace.WriteJSONL): it prints the occupancy summary, the
// paper's starting/ending latencies, work-discovery session statistics,
// and a lifestory chart.
//
// Usage:
//
//	uts -tree H-SMALL -ranks 128 -trace t.jsonl
//	tracetool -in t.jsonl
//	tracetool -in t.jsonl -lifestory -rows 32
package main

import (
	"flag"
	"fmt"
	"os"

	"distws/internal/metrics"
	"distws/internal/sim"
	"distws/internal/trace"
)

func main() {
	var (
		inFlag    = flag.String("in", "", "trace file (JSONL) to analyze (required)")
		lifeFlag  = flag.Bool("lifestory", false, "print per-rank activity bars")
		rowsFlag  = flag.Int("rows", 24, "max lifestory rows")
		widthFlag = flag.Int("width", 72, "lifestory / curve width")
		stepsFlag = flag.Int("steps", 10, "number of occupancy points for the SL/EL table")
	)
	flag.Parse()

	if *inFlag == "" {
		fmt.Fprintln(os.Stderr, "tracetool: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*inFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tr, err := trace.ReadJSONL(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := tr.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "tracetool: trace fails validation: %v\n", err)
		os.Exit(1)
	}

	curve := metrics.Occupancy(tr)
	fmt.Printf("trace: %d ranks, makespan %v, %d sessions\n",
		tr.Ranks(), sim.Duration(tr.End), tr.TotalSessions())
	fmt.Printf("occupancy: max %.1f%% (Wmax %d), mean %.1f%%\n",
		curve.MaxOccupancy()*100, curve.Wmax(), curve.MeanOccupancy()*100)

	st := metrics.Sessions(tr)
	if st.Count > 0 {
		fmt.Printf("work-discovery sessions: %d, mean %.3gs, p50 %.3gs, p99 %.3gs, %d failed attempts\n",
			st.Count, st.Mean, st.P50, st.P99, st.Failed)
	}

	fmt.Printf("\noccupancy   SL (%% runtime)   EL (%% runtime)\n")
	for _, p := range curve.LatencyCurve(metrics.OccupancySamples(*stepsFlag, curve.MaxOccupancy())) {
		if !p.Reached {
			fmt.Printf("   %3.0f%%        (never reached)\n", p.Occupancy*100)
			continue
		}
		fmt.Printf("   %3.0f%%        %6.2f           %6.2f\n", p.Occupancy*100, p.SL*100, p.EL*100)
	}

	if *lifeFlag {
		fmt.Println()
		fmt.Print(metrics.Lifestory(tr, *widthFlag, *rowsFlag))
	}
}
