// Command tracetool analyzes activity traces produced by cmd/uts (or
// the library's trace.WriteJSONL): it prints the occupancy summary, the
// paper's starting/ending latencies, work-discovery session statistics,
// and a lifestory chart. Traces that carry the protocol event log
// (uts -trace) additionally get steal-latency percentiles, a rank×rank
// traffic heatmap, a termination-tail breakdown, and — via the causal
// analyses — an idle-time blame table (-blame), the critical path
// (-critical), and the work-lineage summary (-lineage).
//
// Usage:
//
//	uts -tree H-SMALL -ranks 128 -trace t.jsonl
//	tracetool -in t.jsonl
//	tracetool -in t.jsonl -blame -critical -lineage
//	tracetool -in a.jsonl -in b.jsonl -format json
//	tracetool -in t.jsonl -lifestory -rows 32
//	tracetool -in t.jsonl -chrome t.json     # convert for ui.perfetto.dev
//	tracetool -diff -in a.manifest.json -in b.manifest.json
//	tracetool -diff -in a.jsonl -in b.jsonl -format json
//
// -diff compares two runs — ledger manifests written by `uts -manifest`
// or the matrix harness, or raw traces summarized on the fly — into a
// causal attribution report: which critical-path segments, blame causes
// and links the makespan delta decomposes into (DESIGN.md §12).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"distws/internal/metrics"
	"distws/internal/obs"
	"distws/internal/obs/causal"
	"distws/internal/obs/diff"
	"distws/internal/obs/ledger"
	"distws/internal/sim"
	"distws/internal/trace"
)

// inList collects repeated -in flags.
type inList []string

func (l *inList) String() string     { return fmt.Sprint([]string(*l)) }
func (l *inList) Set(v string) error { *l = append(*l, v); return nil }

// jsonTrafficLimit caps the rank count for which -format json inlines
// the full traffic matrix; past it the report would be dominated by an
// O(ranks²) block of mostly zeros.
const jsonTrafficLimit = 128

// report is the machine-readable per-file analysis (-format json). All
// _ns fields are virtual nanoseconds. Every analysis the text mode can
// print appears here too, so scripted consumers never fall back to
// scraping the text.
type report struct {
	File          string            `json:"file"`
	Ranks         int               `json:"ranks"`
	MakespanNS    int64             `json:"makespan_ns"`
	Sessions      int               `json:"sessions"`
	MaxOccupancy  float64           `json:"max_occupancy"`
	MeanOccupancy float64           `json:"mean_occupancy"`
	SessionStats  *sessionReport    `json:"session_stats,omitempty"`
	LatencyCurve  []latencyPoint    `json:"latency_curve,omitempty"`
	Events        map[string]uint64 `json:"events,omitempty"`
	EventsDropped uint64            `json:"events_dropped,omitempty"`
	Steals        *stealReport      `json:"steals,omitempty"`
	Tail          *tailReport       `json:"termination_tail,omitempty"`
	Traffic       [][]uint64        `json:"traffic,omitempty"`
	Blame         *blameReport      `json:"blame,omitempty"`
	Critical      *criticalReport   `json:"critical_path,omitempty"`
	Lineage       *lineageReport    `json:"lineage,omitempty"`
}

type sessionReport struct {
	Count  int     `json:"count"`
	MeanS  float64 `json:"mean_s"`
	P50S   float64 `json:"p50_s"`
	P99S   float64 `json:"p99_s"`
	Failed int     `json:"failed_attempts"`
}

type latencyPoint struct {
	Occupancy float64 `json:"occupancy"`
	Reached   bool    `json:"reached"`
	SL        float64 `json:"sl"`
	EL        float64 `json:"el"`
}

type stealReport struct {
	Count        int   `json:"count"`
	Success      int   `json:"success"`
	Refused      int   `json:"refused"`
	Aborted      int   `json:"aborted"`
	MeanNS       int64 `json:"mean_ns"`
	P50NS        int64 `json:"p50_ns"`
	P95NS        int64 `json:"p95_ns"`
	P99NS        int64 `json:"p99_ns"`
	MaxNS        int64 `json:"max_ns"`
	SuccessP50NS int64 `json:"success_p50_ns"`
	NodesMoved   int64 `json:"nodes_moved"`
}

type tailReport struct {
	LastTransferNS  int64   `json:"last_transfer_ns"`
	DurationNS      int64   `json:"duration_ns"`
	Fraction        float64 `json:"fraction"`
	FailedInTail    int     `json:"failed_in_tail"`
	TokenHopsInTail int     `json:"token_hops_in_tail"`
	TokenHopsTotal  int     `json:"token_hops_total"`
}

type rankBlame struct {
	BusyNS     int64 `json:"busy_ns"`
	StartupNS  int64 `json:"startup_ns"`
	SearchNS   int64 `json:"search_ns"`
	InFlightNS int64 `json:"in_flight_ns"`
	TermTailNS int64 `json:"term_tail_ns"`
}

type blameReport struct {
	PerRank []rankBlame `json:"per_rank"`
	Total   rankBlame   `json:"total"`
}

type criticalReport struct {
	Segments   int   `json:"segments"`
	ComputeNS  int64 `json:"compute_ns"`
	StealRTTNS int64 `json:"steal_rtt_ns"`
	TransferNS int64 `json:"transfer_ns"`
	TokenNS    int64 `json:"token_ns"`
	WaitNS     int64 `json:"wait_ns"`
}

type lineageReport struct {
	Transfers    int      `json:"transfers"`
	TokenHops    int      `json:"token_hops"`
	Quanta       int      `json:"quanta"`
	MaxDepth     int      `json:"max_depth"`
	Depths       []uint64 `json:"depths,omitempty"`
	DeepestRoute []int    `json:"deepest_route,omitempty"`
}

// renderOpts selects the sections of the text report.
type renderOpts struct {
	steps, heat, width, rows       int
	life, blame, critical, lineage bool
}

func main() {
	var (
		ins          inList
		formatFlag   = flag.String("format", "text", "output format: text|json")
		diffFlag     = flag.Bool("diff", false, "diff exactly two -in inputs (run manifests or raw traces) into an attribution report")
		parFlag      = flag.Bool("par", false, "print the parallel-kernel window profile of each -in run manifest")
		chromeFlag   = flag.String("chrome", "", "convert the (single) input to Chrome trace-event JSON at this path")
		lifeFlag     = flag.Bool("lifestory", false, "print per-rank activity bars")
		blameFlag    = flag.Bool("blame", false, "print the idle-time blame attribution table")
		criticalFlag = flag.Bool("critical", false, "print the critical-path decomposition")
		lineageFlag  = flag.Bool("lineage", false, "print the work-lineage (migration depth) summary")
		rowsFlag     = flag.Int("rows", 24, "max lifestory rows")
		widthFlag    = flag.Int("width", 72, "lifestory / curve width")
		stepsFlag    = flag.Int("steps", 10, "number of occupancy points for the SL/EL table")
		heatFlag     = flag.Int("heatmap", 16, "traffic heatmap size in tiles (0 disables)")
	)
	flag.Var(&ins, "in", "trace file (JSONL) to analyze; repeatable")
	flag.Parse()

	if len(ins) == 0 {
		fmt.Fprintln(os.Stderr, "tracetool: at least one -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if *formatFlag != "text" && *formatFlag != "json" {
		fatalf("unknown -format %q (text|json)", *formatFlag)
	}
	if *chromeFlag != "" && len(ins) != 1 {
		fatalf("-chrome converts exactly one trace; got %d inputs", len(ins))
	}
	if *diffFlag {
		if len(ins) != 2 {
			fatalf("-diff compares exactly two inputs; got %d", len(ins))
		}
		runDiff(ins[0], ins[1], *formatFlag)
		return
	}
	if *parFlag {
		for i, path := range ins {
			if i > 0 {
				fmt.Println()
			}
			runPar(path)
		}
		return
	}

	opts := renderOpts{
		steps: *stepsFlag, heat: *heatFlag, width: *widthFlag, rows: *rowsFlag,
		life: *lifeFlag, blame: *blameFlag, critical: *criticalFlag, lineage: *lineageFlag,
	}
	var reports []report
	for _, path := range ins {
		tr := load(path)
		if *chromeFlag != "" {
			writeChrome(*chromeFlag, tr)
		}
		switch *formatFlag {
		case "json":
			reports = append(reports, analyze(path, tr))
		default:
			if len(ins) > 1 {
				fmt.Printf("==> %s <==\n", path)
			}
			if err := render(os.Stdout, tr, opts); err != nil {
				fatalf("%v", err)
			}
			if len(ins) > 1 {
				fmt.Println()
			}
		}
	}
	if *formatFlag == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fatalf("%v", err)
		}
	}
}

// runDiff loads two inputs as run manifests — *.jsonl files are raw
// traces, summarized on the fly via ledger.FromTrace — and renders the
// causal attribution report between them.
func runDiff(pathA, pathB, format string) {
	a, b := loadManifest(pathA), loadManifest(pathB)
	d := diff.Compute(a, b)
	if err := d.CheckIdentities(); err != nil {
		fatalf("%v", err)
	}
	var err error
	if format == "json" {
		err = d.WriteJSON(os.Stdout)
	} else {
		err = d.WriteText(os.Stdout)
	}
	if err != nil {
		fatalf("%v", err)
	}
}

// runPar prints one run manifest's parallel-kernel window profile
// (the `par` section written by `uts -parprof -manifest`).
func runPar(path string) {
	m, err := ledger.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	p := m.Par
	if p == nil {
		fmt.Printf("%s: no parallel-kernel profile (run with uts -parprof -manifest)\n", path)
		return
	}
	fmt.Printf("%s: parallel-kernel profile: %d shard(s), lookahead %v\n",
		m.ID, p.Shards, sim.Duration(p.LookaheadNS))
	if p.Windows == 0 {
		fmt.Printf("  no windows recorded (sequential kernel)\n")
		return
	}
	fmt.Printf("  windows:    %d (%d parallel, %d serialized = %.1f%%)\n",
		p.Windows, p.Windows-p.Serialized, p.Serialized,
		100*float64(p.Serialized)/float64(p.Windows))
	fmt.Printf("  staged:     %d message(s) merged at barriers (cross-shard + deferred same-shard)\n", p.Staged)
	for _, c := range p.Causes {
		fmt.Printf("    %-18s %6d window(s)  %12v\n",
			c.Cause, c.Windows, sim.Duration(c.VirtualNS))
	}
	if p.Traffic != nil {
		fmt.Printf("  shard traffic (staged messages, source-major):\n")
		for src, row := range p.Traffic {
			fmt.Printf("    shard %3d:", src)
			for _, n := range row {
				fmt.Printf(" %8d", n)
			}
			fmt.Println()
		}
	}
}

// loadManifest reads a ledger manifest, or summarizes a raw .jsonl
// trace into a partial one (causal sections and makespan only).
func loadManifest(path string) *ledger.Manifest {
	if strings.HasSuffix(path, ".jsonl") {
		m := ledger.FromTrace(diffLabel(path), ledger.Spec{}, load(path))
		if err := m.Validate(); err != nil {
			fatalf("%s: %v", path, err)
		}
		return m
	}
	m, err := ledger.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	return m
}

// diffLabel names a trace-derived manifest after its file.
func diffLabel(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, ".jsonl")
}

func load(path string) *trace.Trace {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	tr, err := trace.ReadJSONL(f)
	f.Close()
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	if err := tr.Validate(); err != nil {
		fatalf("%s: trace fails validation: %v", path, err)
	}
	return tr
}

func writeChrome(path string, tr *trace.Trace) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	if err := obs.WriteChromeTraceOpts(f, tr, chromeOptions(tr)); err != nil {
		fatalf("writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fatalf("closing %s: %v", path, err)
	}
	fmt.Fprintf(os.Stderr, "tracetool: chrome trace written to %s (load at ui.perfetto.dev)\n", path)
}

// chromeOptions computes the optional exporter tracks: traces with an
// event log get their critical path as a highlight track.
func chromeOptions(tr *trace.Trace) obs.ChromeOptions {
	var o obs.ChromeOptions
	if tr.Events == nil {
		return o
	}
	p := causal.CriticalPath(causal.Build(tr))
	for _, s := range p.Segments {
		o.Highlight = append(o.Highlight, obs.HighlightSpan{
			Name: s.Kind.String(), Rank: s.Rank, Start: s.Start, End: s.End,
		})
	}
	return o
}

// analyze builds the machine-readable report for one trace.
func analyze(path string, tr *trace.Trace) report {
	curve := metrics.Occupancy(tr)
	r := report{
		File:          path,
		Ranks:         tr.Ranks(),
		MakespanNS:    int64(tr.End),
		Sessions:      tr.TotalSessions(),
		MaxOccupancy:  curve.MaxOccupancy(),
		MeanOccupancy: curve.MeanOccupancy(),
	}
	if ss := metrics.Sessions(tr); ss.Count > 0 {
		r.SessionStats = &sessionReport{
			Count: ss.Count, MeanS: ss.Mean, P50S: ss.P50, P99S: ss.P99, Failed: ss.Failed,
		}
	}
	for _, p := range curve.LatencyCurve(metrics.OccupancySamples(10, curve.MaxOccupancy())) {
		r.LatencyCurve = append(r.LatencyCurve, latencyPoint{
			Occupancy: p.Occupancy, Reached: p.Reached, SL: p.SL, EL: p.EL,
		})
	}
	if tr.Ranks() > 0 {
		b := causal.AttributeIdle(tr)
		br := &blameReport{Total: jsonRankBlame(b.Total)}
		for _, rb := range b.PerRank {
			br.PerRank = append(br.PerRank, jsonRankBlame(rb))
		}
		r.Blame = br
	}
	if tr.Events == nil {
		return r
	}
	r.Events = map[string]uint64{}
	for k, n := range tr.EventCounts() {
		if n > 0 {
			r.Events[trace.EventKind(k).String()] = n
		}
	}
	r.EventsDropped = tr.TotalEventsDropped()
	pairs := obs.PairSteals(tr)
	if len(pairs) > 0 {
		st := obs.StealLatency(pairs)
		r.Steals = &stealReport{
			Count: st.Count, Success: st.Success, Refused: st.Refused, Aborted: st.Aborted,
			MeanNS: int64(st.Mean), P50NS: int64(st.P50), P95NS: int64(st.P95),
			P99NS: int64(st.P99), MaxNS: int64(st.Max),
			SuccessP50NS: int64(st.SuccessP50), NodesMoved: st.NodesMoved,
		}
	}
	tail := obs.TerminationTail(tr, pairs)
	r.Tail = &tailReport{
		LastTransferNS: int64(tail.LastTransfer), DurationNS: int64(tail.Duration),
		Fraction: tail.Fraction, FailedInTail: tail.FailedInTail,
		TokenHopsInTail: tail.TokenHopsInTail, TokenHopsTotal: tail.TokenHopsTotal,
	}
	if tr.Ranks() <= jsonTrafficLimit {
		r.Traffic = obs.Traffic(tr)
	}

	g := causal.Build(tr)
	p := causal.CriticalPath(g)
	r.Critical = &criticalReport{
		Segments:   len(p.Segments),
		ComputeNS:  int64(p.ByKind[causal.SegCompute]),
		StealRTTNS: int64(p.ByKind[causal.SegStealRTT]),
		TransferNS: int64(p.ByKind[causal.SegTransfer]),
		TokenNS:    int64(p.ByKind[causal.SegToken]),
		WaitNS:     int64(p.ByKind[causal.SegWait]),
	}
	lr := &lineageReport{
		Transfers: len(g.Transfers),
		TokenHops: len(g.TokenHops),
		Quanta:    g.QuantaCount(),
		MaxDepth:  g.MaxDepth(),
		Depths:    g.MigrationDepths(),
	}
	if len(g.Transfers) > 0 {
		deepest := 0
		for i, t := range g.Transfers {
			if t.Depth > g.Transfers[deepest].Depth {
				deepest = i
			}
		}
		lr.DeepestRoute = g.ChainRanks(deepest)
	}
	r.Lineage = lr
	return r
}

func jsonRankBlame(b causal.RankBlame) rankBlame {
	return rankBlame{
		BusyNS: int64(b.Busy), StartupNS: int64(b.Startup), SearchNS: int64(b.Search),
		InFlightNS: int64(b.InFlight), TermTailNS: int64(b.TermTail),
	}
}

// render writes the human-readable analysis for one trace. Its output
// is a pure function of the trace and options — a golden test pins it
// byte for byte.
func render(w io.Writer, tr *trace.Trace, o renderOpts) error {
	curve := metrics.Occupancy(tr)
	fmt.Fprintf(w, "trace: %d ranks, makespan %v, %d sessions\n",
		tr.Ranks(), sim.Duration(tr.End), tr.TotalSessions())
	fmt.Fprintf(w, "occupancy: max %.1f%% (Wmax %d), mean %.1f%%\n",
		curve.MaxOccupancy()*100, curve.Wmax(), curve.MeanOccupancy()*100)

	st := metrics.Sessions(tr)
	if st.Count > 0 {
		fmt.Fprintf(w, "work-discovery sessions: %d, mean %.3gs, p50 %.3gs, p99 %.3gs, %d failed attempts\n",
			st.Count, st.Mean, st.P50, st.P99, st.Failed)
	}

	fmt.Fprintf(w, "\noccupancy   SL (%% runtime)   EL (%% runtime)\n")
	for _, p := range curve.LatencyCurve(metrics.OccupancySamples(o.steps, curve.MaxOccupancy())) {
		if !p.Reached {
			fmt.Fprintf(w, "   %3.0f%%        (never reached)\n", p.Occupancy*100)
			continue
		}
		fmt.Fprintf(w, "   %3.0f%%        %6.2f           %6.2f\n", p.Occupancy*100, p.SL*100, p.EL*100)
	}

	if tr.Events != nil {
		fmt.Fprintf(w, "\nprotocol events: %d recorded, %d dropped from bounded rings\n",
			tr.TotalEvents(), tr.TotalEventsDropped())
		counts := tr.EventCounts()
		for k, n := range counts {
			if n > 0 {
				fmt.Fprintf(w, "  %-14s %d\n", trace.EventKind(k).String(), n)
			}
		}

		pairs := obs.PairSteals(tr)
		if len(pairs) > 0 {
			sl := obs.StealLatency(pairs)
			fmt.Fprintf(w, "\nsteal round trips: %d (%d ok, %d refused, %d aborted), %d nodes moved\n",
				sl.Count, sl.Success, sl.Refused, sl.Aborted, sl.NodesMoved)
			fmt.Fprintf(w, "steal latency: mean %v, p50 %v, p95 %v, p99 %v, max %v (successful p50 %v)\n",
				sl.Mean, sl.P50, sl.P95, sl.P99, sl.Max, sl.SuccessP50)
		}

		if o.heat > 0 {
			fmt.Fprintln(w)
			fmt.Fprint(w, obs.RenderHeatmap(obs.Traffic(tr), o.heat))
		}

		tail := obs.TerminationTail(tr, pairs)
		fmt.Fprintf(w, "\ntermination tail: last work transfer at %v, tail %v (%.1f%% of makespan)\n",
			sim.Duration(tail.LastTransfer), tail.Duration, tail.Fraction*100)
		fmt.Fprintf(w, "  failed steals in tail: %d; token hops: %d in tail / %d total\n",
			tail.FailedInTail, tail.TokenHopsInTail, tail.TokenHopsTotal)
	}

	if o.blame || o.critical || o.lineage {
		g := causal.Build(tr)
		if o.blame {
			fmt.Fprintln(w)
			if err := causal.WriteBlameText(w, causal.AttributeIdle(tr)); err != nil {
				return err
			}
		}
		if o.critical {
			fmt.Fprintln(w)
			if err := causal.WriteCriticalText(w, causal.CriticalPath(g)); err != nil {
				return err
			}
		}
		if o.lineage {
			fmt.Fprintln(w)
			if err := causal.WriteLineageText(w, g); err != nil {
				return err
			}
		}
	}

	if o.life {
		fmt.Fprintln(w)
		fmt.Fprint(w, metrics.Lifestory(tr, o.width, o.rows))
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracetool: "+format+"\n", args...)
	os.Exit(1)
}
