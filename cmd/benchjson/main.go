// Command benchjson converts `go test -bench` text output into a
// stable JSON document, so benchmark results can be archived as CI
// artifacts and diffed across commits without scraping the text format.
//
//	go test -bench . -benchmem ./... | go run ./cmd/benchjson -out BENCH_sim.json
//
// Every benchmark result line becomes one entry (repeated -count runs
// stay separate entries, letting consumers compute their own spread).
// The tool fails when the stream contains no benchmark results or a
// line it cannot parse, and with -require it also fails when a named
// benchmark is missing — that is what lets CI treat a silently skipped
// benchmark as an error instead of an empty artifact.
//
// -baseline compares the fresh results against a committed report
// (BENCH_sim.json at the repo root) with the same tolerance-band
// comparator the scenario-matrix gate uses (internal/obs/diff): alloc
// counts are near-exact, bytes get a small band, and ns/op is ignored
// unless -nsband opts in (shared-runner wall time is noise). A new or
// vanished benchmark is a rebaseline condition, not a silent pass.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"distws/internal/obs/diff"
)

// Benchmark is one `go test -bench` result line.
type Benchmark struct {
	// Name is the benchmark name with the "Benchmark" prefix and the
	// -P GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Pkg is the import path the result was reported under.
	Pkg        string  `json:"pkg"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are -1 when the run lacked -benchmem.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Report is the document benchjson emits.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	require := flag.String("require", "", "comma-separated benchmark names that must be present")
	baseline := flag.String("baseline", "", "committed benchjson report to gate allocation counts against")
	nsband := flag.Float64("nsband", 0, "also gate ns/op within this relative band (0 disables; wall time is noisy on shared runners)")
	flag.Parse()

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := checkRequired(rep, *require); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *baseline != "" {
		if err := compareBaseline(rep, *baseline, *nsband); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
}

// Bands for the benchmark gate. Allocation counts in a deterministic
// simulator are reproducible, so they get a near-exact band; bytes/op
// can wobble with map growth, so they get slack.
var (
	allocsBand = diff.Band{Rel: 0.01, Abs: 2}
	bytesBand  = diff.Band{Rel: 0.10, Abs: 256}
)

// compareBaseline gates rep against the committed report at path using
// the shared tolerance-band comparator. Benchmarks appearing in only
// one of the two reports force a rebaseline (`make bench-json` + commit).
func compareBaseline(rep *Report, path string, nsRel float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	key := func(b Benchmark) string { return b.Pkg + "." + b.Name }
	baseIdx := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseIdx[key(b)] = b
	}

	g := &diff.Gate{}
	seen := map[string]bool{}
	var missing []string
	for _, b := range rep.Benchmarks {
		k := key(b)
		bb, ok := baseIdx[k]
		if !ok {
			if !seen[k] {
				missing = append(missing, k)
				seen[k] = true
			}
			continue
		}
		seen[k] = true
		if b.AllocsPerOp >= 0 && bb.AllocsPerOp >= 0 {
			g.Check(k+"/allocs_per_op", allocsBand, float64(bb.AllocsPerOp), float64(b.AllocsPerOp))
		}
		if b.BytesPerOp >= 0 && bb.BytesPerOp >= 0 {
			g.Check(k+"/bytes_per_op", bytesBand, float64(bb.BytesPerOp), float64(b.BytesPerOp))
		}
		if nsRel > 0 {
			g.Check(k+"/ns_per_op", diff.Band{Rel: nsRel}, bb.NsPerOp, b.NsPerOp)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("benchmark(s) missing from baseline %s: %s (rerun `make bench-json` and commit the report)",
			path, strings.Join(missing, ", "))
	}
	var stale []string
	for k := range baseIdx {
		if !seen[k] {
			stale = append(stale, k)
		}
	}
	if len(stale) > 0 {
		sort.Strings(stale)
		return fmt.Errorf("baseline %s has benchmark(s) this run no longer produces: %s (rerun `make bench-json` and commit the report)",
			path, strings.Join(stale, ", "))
	}
	if err := g.Report(os.Stdout); err != nil {
		return err
	}
	if !g.OK() {
		return fmt.Errorf("benchmark baseline gate failed against %s", path)
	}
	return nil
}

// parse consumes `go test -bench` output. Package banners (pkg:, goos:,
// cpu:) set context; Benchmark lines become entries; everything else
// (PASS, ok, test logs) is ignored.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseResult(line, pkg)
			if err != nil {
				return nil, err
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark results in input")
	}
	return rep, nil
}

// parseResult parses one result line:
//
//	BenchmarkKernelHotPath-8   7776040   150.0 ns/op   0 B/op   0 allocs/op
func parseResult(line, pkg string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line: %q", line)
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bad iteration count in %q: %v", line, err)
	}
	b := Benchmark{Name: name, Pkg: pkg, Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	for i := 2; i+1 < len(f); i += 2 {
		v, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			if b.NsPerOp, err = strconv.ParseFloat(v, 64); err != nil {
				return Benchmark{}, fmt.Errorf("bad ns/op in %q: %v", line, err)
			}
		case "B/op":
			if b.BytesPerOp, err = strconv.ParseInt(v, 10, 64); err != nil {
				return Benchmark{}, fmt.Errorf("bad B/op in %q: %v", line, err)
			}
		case "allocs/op":
			if b.AllocsPerOp, err = strconv.ParseInt(v, 10, 64); err != nil {
				return Benchmark{}, fmt.Errorf("bad allocs/op in %q: %v", line, err)
			}
		default:
			// Custom ReportMetric units pass through unrecorded.
		}
	}
	return b, nil
}

// checkRequired verifies every name in the comma-separated list appears
// among the parsed results.
func checkRequired(rep *Report, require string) error {
	if require == "" {
		return nil
	}
	for _, want := range strings.Split(require, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		found := false
		for _, b := range rep.Benchmarks {
			if b.Name == want {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("required benchmark %q missing from input", want)
		}
	}
	return nil
}
