package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: distws/internal/sim
cpu: AMD EPYC 7B13
BenchmarkKernelHotPath-8   	 7776040	       150.0 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	distws/internal/sim	1.318s
pkg: distws/internal/comm
BenchmarkCommSend 	36706946	        72.57 ns/op	       0 B/op	       0 allocs/op
ok  	distws/internal/comm	2.964s
`

func TestParseSample(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "AMD EPYC 7B13" {
		t.Fatalf("environment banner lost: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	k := rep.Benchmarks[0]
	if k.Name != "KernelHotPath" || k.Pkg != "distws/internal/sim" ||
		k.Iterations != 7776040 || k.NsPerOp != 150.0 || k.BytesPerOp != 0 || k.AllocsPerOp != 0 {
		t.Fatalf("kernel entry wrong: %+v", k)
	}
	c := rep.Benchmarks[1]
	if c.Name != "CommSend" || c.Pkg != "distws/internal/comm" || c.NsPerOp != 72.57 {
		t.Fatalf("comm entry wrong: %+v", c)
	}
}

func TestParseWithoutBenchmem(t *testing.T) {
	rep, err := parse(strings.NewReader("BenchmarkX 	100	 5.0 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if b := rep.Benchmarks[0]; b.BytesPerOp != -1 || b.AllocsPerOp != -1 {
		t.Fatalf("missing -benchmem columns must read -1, got %+v", b)
	}
}

func TestParseRejectsEmptyAndMalformed(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok \tx\t0.1s\n")); err == nil {
		t.Fatal("no error for input without benchmarks")
	}
	if _, err := parse(strings.NewReader("BenchmarkBroken abc 5.0 ns/op\n")); err == nil {
		t.Fatal("no error for malformed iteration count")
	}
}

func TestCheckRequired(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if err := checkRequired(rep, "KernelHotPath, CommSend"); err != nil {
		t.Fatalf("present benchmarks reported missing: %v", err)
	}
	if err := checkRequired(rep, "LatencyLookup"); err == nil {
		t.Fatal("missing required benchmark not reported")
	}
}
