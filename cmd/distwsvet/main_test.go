package main

import (
	"testing"

	"distws/internal/analysis"
	"distws/internal/analysis/atomicmix"
	"distws/internal/analysis/detrand"
	"distws/internal/analysis/lockcheck"
	"distws/internal/analysis/walltime"
)

// TestObsPackagesClean machine-checks the observability layer against
// every invariant analyzer the repo ships. internal/obs and
// internal/trace sit inside the virtual-time boundary — their events,
// counters and histograms must be pure functions of the simulated run —
// while internal/rt is the one allowlisted wall-clock reader. All three
// must come back clean under the production allowlists.
func TestObsPackagesClean(t *testing.T) {
	pkgs, err := analysis.Load("../..",
		"distws/internal/obs", "distws/internal/trace", "distws/internal/rt")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 3 {
		t.Fatalf("loaded %d packages, want 3", len(pkgs))
	}
	diags, err := analysis.Run(pkgs, analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("finding: %v", d)
	}
}

// TestWalltimeAllowlistIsLoadBearing drops internal/rt from the
// wall-clock allowlist and expects findings: rt genuinely reads the
// host clock (that is its job), so the wallClockOK exception is doing
// work rather than papering over a rule nothing trips.
func TestWalltimeAllowlistIsLoadBearing(t *testing.T) {
	pkgs, err := analysis.Load("../..", "distws/internal/rt")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{walltime.New(virtualTime, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("internal/rt has no walltime findings without its allowlist entry; wallClockOK is stale")
	}
}

// TestHotPathPackagesCleanWithoutAllowlists machine-checks the
// performance-engineered hot path (event arena, message pool, latency
// cache, batched hashing) against the determinism analyzers with every
// exception stripped. Pooling and caching layers are where hidden
// nondeterminism likes to creep in (map-ordered free lists, wall-clock
// cache stamps), so these packages must hold the invariants on their
// own merits: first assert none of them appears in a production
// allowlist, then run detrand and walltime with no exceptions at all.
func TestHotPathPackagesCleanWithoutAllowlists(t *testing.T) {
	hot := []string{
		"distws/internal/sim",
		"distws/internal/comm",
		"distws/internal/topology",
		"distws/internal/uts",
		"distws/internal/workstack",
	}
	exempt := append(append([]string{}, randExempt...), wallClockOK...)
	for _, p := range hot {
		for _, e := range exempt {
			if p == e {
				t.Fatalf("hot-path package %s is allowlisted (%v); the pooled/cached code must pass unexcepted", p, e)
			}
		}
	}
	pkgs, err := analysis.Load("../..", hot...)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != len(hot) {
		t.Fatalf("loaded %d packages, want %d", len(pkgs), len(hot))
	}
	bare := []*analysis.Analyzer{
		detrand.New(nil),
		walltime.New(virtualTime, nil),
		lockcheck.New(),
		atomicmix.New(),
	}
	diags, err := analysis.Run(pkgs, bare)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("finding: %v", d)
	}
}

// TestCausalPackageCleanWithoutAllowlists machine-checks the causal
// analysis layer (internal/obs/causal) with every exception stripped.
// The package reconstructs cause-and-effect purely from a saved trace,
// so nothing in it may touch randomness or the host clock — if it did,
// blame reports and critical paths would stop being reproducible
// functions of the run. Assert it holds the invariants on its own
// merits: not allowlisted, and clean under the bare analyzers.
func TestCausalPackageCleanWithoutAllowlists(t *testing.T) {
	const pkg = "distws/internal/obs/causal"
	for _, e := range append(append([]string{}, randExempt...), wallClockOK...) {
		if pkg == e {
			t.Fatalf("%s is allowlisted (%v); the causal analyses must pass unexcepted", pkg, e)
		}
	}
	pkgs, err := analysis.Load("../..", pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	bare := []*analysis.Analyzer{
		detrand.New(nil),
		walltime.New(virtualTime, nil),
		lockcheck.New(),
		atomicmix.New(),
	}
	diags, err := analysis.Run(pkgs, bare)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("finding: %v", d)
	}
}

// TestFaultPackageCleanWithoutAllowlists machine-checks the fault
// subsystem (internal/fault) with every exception stripped. The whole
// point of the package is deterministic adversity: crash times come
// from the plan, drop/dup draws from the plan's own seeded stream. Any
// global randomness or wall-clock read would make fault schedules
// unreplayable, so the package must pass the bare analyzers with no
// allowlist entry.
func TestFaultPackageCleanWithoutAllowlists(t *testing.T) {
	const pkg = "distws/internal/fault"
	for _, e := range append(append([]string{}, randExempt...), wallClockOK...) {
		if pkg == e {
			t.Fatalf("%s is allowlisted (%v); fault injection must pass unexcepted", pkg, e)
		}
	}
	pkgs, err := analysis.Load("../..", pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	bare := []*analysis.Analyzer{
		detrand.New(nil),
		walltime.New(virtualTime, nil),
		lockcheck.New(),
		atomicmix.New(),
	}
	diags, err := analysis.Run(pkgs, bare)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("finding: %v", d)
	}
}
