package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"distws/internal/analysis"
	"distws/internal/analysis/atomicmix"
	"distws/internal/analysis/detorder"
	"distws/internal/analysis/detrand"
	"distws/internal/analysis/lockcheck"
	"distws/internal/analysis/walltime"
)

// runJSON drives the real CLI entry point from the module root and
// decodes its -format json report.
func runJSON(t *testing.T, args ...string) (int, report, string) {
	t.Helper()
	if _, err := os.Stat("go.mod"); err != nil {
		t.Chdir("../..") // run() resolves packages and the allowlist from the module root
	}
	var stdout, stderr bytes.Buffer
	code := run(append(args, "-format", "json"), &stdout, &stderr)
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON output: %v\n%s", err, stdout.String())
	}
	return code, rep, stderr.String()
}

// TestFullSuiteClean is the gate the CI check job enforces: all eight
// analyzers over the whole module, clean under the checked-in
// allowlist, with every suppression accounted for.
func TestFullSuiteClean(t *testing.T) {
	code, rep, stderr := runJSON(t)
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstderr: %s", code, stderr)
	}
	if len(rep.Findings) != 0 {
		t.Errorf("findings on a clean tree: %+v", rep.Findings)
	}
	if len(rep.Analyzers) != 8 {
		t.Errorf("ran %d analyzers (%v), want all 8", len(rep.Analyzers), rep.Analyzers)
	}
	if len(rep.Stale) != 0 {
		t.Errorf("stale allowlist entries: %+v", rep.Stale)
	}
	entries, err := loadAllowlist(defaultAllowlist)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Suppressed) != len(entries) {
		t.Errorf("%d suppressions for %d allowlist entries", len(rep.Suppressed), len(entries))
	}
}

// TestAllowlistEntriesAreLoadBearing re-runs the suite with the
// allowlist disabled and checks the surfaced findings are exactly the
// suppressed set: every entry matches a real diagnostic (none is dead
// weight) and nothing else hides behind them.
func TestAllowlistEntriesAreLoadBearing(t *testing.T) {
	code, rep, _ := runJSON(t, "-allowlist", "")
	if code != 1 {
		t.Fatalf("exit %d without the allowlist, want 1 (its entries must be suppressing something)", code)
	}
	entries, err := loadAllowlist(filepath.Join("cmd", "distwsvet", "allowlist.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		matched := false
		for _, f := range rep.Findings {
			d := analysis.Diagnostic{Analyzer: f.Analyzer, Package: f.Package, Message: f.Message}
			if e.matches(d) {
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("allowlist entry {%s %s %q} suppresses nothing; drop it", e.Analyzer, e.Path, e.Match)
		}
	}
	for _, f := range rep.Findings {
		d := analysis.Diagnostic{Analyzer: f.Analyzer, Package: f.Package, Message: f.Message}
		covered := false
		for _, e := range entries {
			if e.matches(d) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("finding not covered by any allowlist entry: %+v", f)
		}
	}
}

// TestStaleAllowlistEntryFailsFullSuite checks the self-cleaning rule:
// an entry no diagnostic matches fails the default full-suite run, but
// is tolerated on a -run subset (where going unmatched is expected).
func TestStaleAllowlistEntryFailsFullSuite(t *testing.T) {
	real, err := os.ReadFile("allowlist.json") // not yet chdir'd to the root
	if err != nil {
		t.Fatal(err)
	}
	var entries []*allowEntry
	if err := json.Unmarshal(real, &entries); err != nil {
		t.Fatal(err)
	}
	entries = append(entries, &allowEntry{
		Analyzer: "detrand",
		Path:     "distws/internal/sim",
		Match:    "never matches anything",
		Reason:   "deliberately stale, for the test",
	})
	data, err := json.Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(t.TempDir(), "allowlist.json")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		t.Fatal(err)
	}

	code, rep, stderr := runJSON(t, "-allowlist", tmp)
	if code != 1 {
		t.Fatalf("exit %d with a stale allowlist entry, want 1\nstderr: %s", code, stderr)
	}
	if len(rep.Stale) != 1 || rep.Stale[0].Match != "never matches anything" {
		t.Errorf("stale entries %+v, want exactly the planted one", rep.Stale)
	}
	if !strings.Contains(stderr, "stale allowlist entry") {
		t.Errorf("stderr does not name the stale entry:\n%s", stderr)
	}

	code, rep, _ = runJSON(t, "-allowlist", tmp, "-run", "detorder")
	if code != 0 {
		t.Fatalf("exit %d on a -run subset with unmatched entries, want 0 (staleness only means something on the full suite)", code)
	}
	if len(rep.Stale) != 0 {
		t.Errorf("subset run reported stale entries: %+v", rep.Stale)
	}
}

// TestUnknownAnalyzerNameIsUsageError: a typo in -run must be a loud
// usage error naming the valid set, not a silently narrower run.
func TestUnknownAnalyzerNameIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-run", "poolchek"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit %d for unknown analyzer name, want 2", code)
	}
	if !strings.Contains(stderr.String(), `unknown analyzer "poolchek"`) {
		t.Errorf("stderr does not name the bad analyzer:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "poolcheck") || !strings.Contains(stderr.String(), "handlesafe") {
		t.Errorf("stderr does not list the valid names:\n%s", stderr.String())
	}
}

// TestUnknownFormatIsUsageError: -format is validated before the load,
// so a bad value fails fast with exit 2.
func TestUnknownFormatIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-format", "xml"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit %d for unknown format, want 2", code)
	}
	if !strings.Contains(stderr.String(), `unknown format "xml"`) {
		t.Errorf("stderr does not name the bad format:\n%s", stderr.String())
	}
}

// TestBudgetExceededFails: the CI wall-time budget is enforced by the
// driver itself, so a pathological slowdown fails the check job rather
// than silently eating the pipeline.
func TestBudgetExceededFails(t *testing.T) {
	t.Chdir("../..")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-run", "detorder", "-budget", "1ns"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d with a 1ns budget, want 1", code)
	}
	if !strings.Contains(stderr.String(), "over the 1ns budget") {
		t.Errorf("stderr does not report the blown budget:\n%s", stderr.String())
	}
}

// bare returns the config-independent analyzers with every exception
// stripped, for the packages-must-pass-on-their-own-merits tests below.
// hotalloc and the ownership analyzers need module-specific roots that
// only resolve on a whole-module load, so they are exercised by
// TestFullSuiteClean instead.
func bare() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.New(nil),
		walltime.New(virtualTime, nil),
		lockcheck.New(),
		atomicmix.New(),
		detorder.New(detPackages, barrierSyncPackages),
	}
}

// TestObsPackagesClean machine-checks the observability layer. internal/obs
// and internal/trace sit inside the virtual-time boundary — their events,
// counters and histograms must be pure functions of the simulated run —
// while internal/rt is the one allowlisted wall-clock reader. All three
// must come back clean under the production configuration.
func TestObsPackagesClean(t *testing.T) {
	pkgs, err := analysis.Load("../..",
		"distws/internal/obs", "distws/internal/trace", "distws/internal/rt")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 3 {
		t.Fatalf("loaded %d packages, want 3", len(pkgs))
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{
		detrand.New(randExempt),
		walltime.New(virtualTime, wallClockOK),
		lockcheck.New(),
		atomicmix.New(),
		detorder.New(detPackages, barrierSyncPackages),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("finding: %v", d)
	}
}

// TestWalltimeAllowlistIsLoadBearing drops internal/rt from the
// wall-clock allowlist and expects findings: rt genuinely reads the
// host clock (that is its job), so the wallClockOK exception is doing
// work rather than papering over a rule nothing trips.
func TestWalltimeAllowlistIsLoadBearing(t *testing.T) {
	pkgs, err := analysis.Load("../..", "distws/internal/rt")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{walltime.New(virtualTime, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("internal/rt has no walltime findings without its allowlist entry; wallClockOK is stale")
	}
}

// TestParprofPackageCleanWithoutAllowlists machine-checks the
// parallel-kernel profiling layer (internal/obs/parprof) with every
// exception stripped. The window ledger is a determinism artifact —
// byte-identical across repeat runs — so the package must hold the
// virtual-time, randomness and iteration-order invariants on its own
// merits: not allowlisted, and clean under the bare analyzers. The
// wall-clock half lives in the parprof/wallclock subpackage precisely
// so this package never needs the exception.
func TestParprofPackageCleanWithoutAllowlists(t *testing.T) {
	const pkg = "distws/internal/obs/parprof"
	for _, e := range append(append([]string{}, randExempt...), wallClockOK...) {
		if pkg == e {
			t.Fatalf("%s is allowlisted (%v); the window ledger must pass unexcepted", pkg, e)
		}
	}
	pkgs, err := analysis.Load("../..", pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	diags, err := analysis.Run(pkgs, bare())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("finding: %v", d)
	}
}

// TestWallclockAllowlistIsLoadBearing strips the wall-clock probe's
// wallClockOK entry and expects walltime findings: parprof/wallclock
// genuinely reads the host clock (that is its job), so the scoped
// exception is doing work — and its scope is exactly one package, so
// the deterministic parprof ledger above never rides on it.
func TestWallclockAllowlistIsLoadBearing(t *testing.T) {
	pkgs, err := analysis.Load("../..", "distws/internal/obs/parprof/wallclock")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{walltime.New(virtualTime, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("parprof/wallclock has no walltime findings without its allowlist entry; the wallClockOK entry is stale")
	}
}

// TestRandExemptIsEmpty pins the v2 audit result: internal/rng's
// generators are hand-rolled (no math/rand anywhere in the module), so
// the detrand exemption list must stay empty until a package genuinely
// needs one.
func TestRandExemptIsEmpty(t *testing.T) {
	if len(randExempt) != 0 {
		t.Fatalf("randExempt = %v; nothing in the module imports math/rand, so every entry is stale", randExempt)
	}
}

// TestHotPathPackagesCleanWithoutAllowlists machine-checks the
// performance-engineered hot path (event arena, message pool, latency
// cache, batched hashing) against the determinism analyzers with every
// exception stripped. Pooling and caching layers are where hidden
// nondeterminism likes to creep in (map-ordered free lists, wall-clock
// cache stamps), so these packages must hold the invariants on their
// own merits: first assert none of them appears in a production
// allowlist, then run the bare analyzers with no exceptions at all.
func TestHotPathPackagesCleanWithoutAllowlists(t *testing.T) {
	hot := []string{
		"distws/internal/sim",
		"distws/internal/comm",
		"distws/internal/topology",
		"distws/internal/uts",
		"distws/internal/workstack",
	}
	exempt := append(append([]string{}, randExempt...), wallClockOK...)
	for _, p := range hot {
		for _, e := range exempt {
			if p == e {
				t.Fatalf("hot-path package %s is allowlisted (%v); the pooled/cached code must pass unexcepted", p, e)
			}
		}
	}
	pkgs, err := analysis.Load("../..", hot...)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != len(hot) {
		t.Fatalf("loaded %d packages, want %d", len(pkgs), len(hot))
	}
	diags, err := analysis.Run(pkgs, bare())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		// The one detorder exception (uts.PresetNames) is carried by the
		// checked-in allowlist, which this test deliberately strips; skip
		// it here, TestAllowlistEntriesAreLoadBearing pins it exactly.
		if d.Analyzer == "detorder" && d.Package == "distws/internal/uts" {
			continue
		}
		t.Errorf("finding: %v", d)
	}
}

// TestCausalPackageCleanWithoutAllowlists machine-checks the causal
// analysis layer (internal/obs/causal) with every exception stripped.
// The package reconstructs cause-and-effect purely from a saved trace,
// so nothing in it may touch randomness or the host clock — if it did,
// blame reports and critical paths would stop being reproducible
// functions of the run. Assert it holds the invariants on its own
// merits: not allowlisted, and clean under the bare analyzers.
func TestCausalPackageCleanWithoutAllowlists(t *testing.T) {
	const pkg = "distws/internal/obs/causal"
	for _, e := range append(append([]string{}, randExempt...), wallClockOK...) {
		if pkg == e {
			t.Fatalf("%s is allowlisted (%v); the causal analyses must pass unexcepted", pkg, e)
		}
	}
	pkgs, err := analysis.Load("../..", pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	diags, err := analysis.Run(pkgs, bare())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("finding: %v", d)
	}
}

// TestLedgerDiffPackagesCleanWithoutAllowlists machine-checks the
// cross-run observability layer (internal/obs/ledger and
// internal/obs/diff) with every exception stripped. Manifests are the
// committed baseline the matrix gate compares CI runs against, and
// diffs are golden-tested byte for byte — any randomness, wall-clock
// read, or map-iteration-ordered output in these packages would churn
// baselines and reports nondeterministically. They must pass the bare
// analyzers with no allowlist entry.
func TestLedgerDiffPackagesCleanWithoutAllowlists(t *testing.T) {
	pkgNames := []string{"distws/internal/obs/ledger", "distws/internal/obs/diff"}
	for _, pkg := range pkgNames {
		for _, e := range append(append([]string{}, randExempt...), wallClockOK...) {
			if pkg == e {
				t.Fatalf("%s is allowlisted (%v); the run ledger must pass unexcepted", pkg, e)
			}
		}
	}
	pkgs, err := analysis.Load("../..", pkgNames...)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	diags, err := analysis.Run(pkgs, bare())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("finding: %v", d)
	}
}

// TestFaultPackageCleanWithoutAllowlists machine-checks the fault
// subsystem (internal/fault) with every exception stripped. The whole
// point of the package is deterministic adversity: crash times come
// from the plan, drop/dup draws from the plan's own seeded stream. Any
// global randomness or wall-clock read would make fault schedules
// unreplayable, so the package must pass the bare analyzers with no
// allowlist entry.
func TestFaultPackageCleanWithoutAllowlists(t *testing.T) {
	const pkg = "distws/internal/fault"
	for _, e := range append(append([]string{}, randExempt...), wallClockOK...) {
		if pkg == e {
			t.Fatalf("%s is allowlisted (%v); fault injection must pass unexcepted", pkg, e)
		}
	}
	pkgs, err := analysis.Load("../..", pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	diags, err := analysis.Run(pkgs, bare())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("finding: %v", d)
	}
}

// TestShardedKernelCleanWithoutAllowlists machine-checks the parallel
// window coordinator (internal/sim/par): it sits inside the
// deterministic core yet runs real goroutines, so it must hold every
// invariant on its own merits — no randomness, no host clock, no lock
// hazards around the barrier, no map-ordered or select-raced control
// flow — with no allowlist entry anywhere. Its goroutines ride the
// barrierSyncPackages carve-out, whose load-bearing-ness the next test
// pins.
func TestShardedKernelCleanWithoutAllowlists(t *testing.T) {
	const pkg = "distws/internal/sim/par"
	entries, err := loadAllowlist(filepath.Join("..", "..", defaultAllowlist))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Path == pkg {
			t.Fatalf("%s is allowlisted (%q); the sharded kernel must pass unexcepted", pkg, e.Match)
		}
	}
	pkgs, err := analysis.Load("../..", pkg)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, bare())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("finding: %v", d)
	}
}

// TestBarrierSyncCarveOutIsLoadBearing strips barrierSyncPackages and
// expects detorder to flag the sharded kernel's worker goroutines: the
// carve-out is doing real work, not suppressing a rule nothing trips,
// and it stays scoped to the go statement — the package must still be
// subject to every other detorder rule.
func TestBarrierSyncCarveOutIsLoadBearing(t *testing.T) {
	pkgs, err := analysis.Load("../..", "distws/internal/sim/par")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{detorder.New(detPackages, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("internal/sim/par has no detorder findings without the barrier-sync carve-out; barrierSyncPackages is stale")
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "goroutine") {
			t.Errorf("non-goroutine detorder finding in internal/sim/par: %v", d)
		}
	}
}

// TestServePackageCleanWithoutAllowlists machine-checks the open-system
// serving layer (internal/serve) with every exception stripped. The
// compiled arrival schedule is the serving determinism contract — a
// pure function of (spec, ranks, seed) — so the package must hold the
// virtual-time, randomness and iteration-order invariants on its own
// merits: not allowlisted, and clean under the bare analyzers.
func TestServePackageCleanWithoutAllowlists(t *testing.T) {
	const pkg = "distws/internal/serve"
	for _, e := range append(append([]string{}, randExempt...), wallClockOK...) {
		if pkg == e {
			t.Fatalf("%s is allowlisted (%v); the arrival compiler must pass unexcepted", pkg, e)
		}
	}
	pkgs, err := analysis.Load("../..", pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	diags, err := analysis.Run(pkgs, bare())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("finding: %v", d)
	}
}
