// Command distwsvet runs the repository's custom static analyzers over
// the module and fails (exit 1) on any finding. It machine-checks the
// invariants the reproduction's validity rests on:
//
//	detrand     all randomness flows through internal/rng's seeded
//	            streams; no math/rand, no wall-clock seeds (the seed
//	            check follows the call graph through helpers)
//	walltime    virtual-time packages never read the host clock,
//	            directly or laundered through a helper package
//	lockcheck   critical sections release their mutex on every path and
//	            never send on a channel while holding it
//	atomicmix   a word accessed via sync/atomic is never also accessed
//	            plainly
//	handlesafe  sim.Event handles are not parked in globals or struct
//	            fields and are not used after Cancel
//	poolcheck   every comm.Message a handler drains is freed exactly
//	            once on every path (no leak, no double free, no use
//	            after free)
//	hotalloc    the 0-alloc bench-gated packages stay free of fmt
//	            calls, capturing closures, interface boxing and map
//	            ranges on paths reachable from the hot roots
//	detorder    deterministic packages avoid map iteration order,
//	            goroutines and multi-case selects
//
// Usage:
//
//	go run ./cmd/distwsvet [flags] [packages]
//
//	-run names        comma-separated analyzer subset (unknown names
//	                  are a usage error, exit 2)
//	-format text|json machine-readable findings with deterministic
//	                  ordering for CI artifacts
//	-allowlist file   diagnostic suppressions ("" disables); defaults
//	                  to the checked-in cmd/distwsvet/allowlist.json
//	-budget duration  fail if the whole run exceeds this wall time
//
// Packages default to ./... and follow go-tool patterns; run it from
// the module root (make distwsvet does). Analyzer-level configuration —
// which packages are virtual-time, hot, deterministic — lives in this
// file, in source, where review sees it change. Per-diagnostic
// exceptions live in allowlist.json with a reason each; an entry that
// no diagnostic matches fails the full-suite run, so the allowlist
// cannot accumulate dead weight.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"
	"time"

	"distws/internal/analysis"
	"distws/internal/analysis/atomicmix"
	"distws/internal/analysis/detorder"
	"distws/internal/analysis/detrand"
	"distws/internal/analysis/handlesafe"
	"distws/internal/analysis/hotalloc"
	"distws/internal/analysis/lockcheck"
	"distws/internal/analysis/poolcheck"
	"distws/internal/analysis/walltime"
)

// Analyzer-level configuration: the reviewed boundaries each invariant
// applies to.
var (
	// randExempt packages may reference math/rand. Nothing currently
	// needs to: internal/rng's generators are hand-rolled, so even the
	// generator package holds the invariant on its own merits.
	randExempt []string

	// virtualTime packages must never read the host clock. That
	// includes the observability layer (internal/obs, internal/trace):
	// its events, counters and histograms are pure functions of the
	// simulated run, timestamped in virtual nanoseconds, so traced runs
	// stay bit-identical across hosts.
	virtualTime = []string{"distws/internal"}
	// ...except the real shared-memory runtime internal/rt, whose
	// entire point is genuine elapsed time (it benchmarks the same
	// victim-selection machinery the simulator studies); its metrics
	// use the rt_ name prefix to keep the two time bases apart — and
	// the parallel-kernel wall-clock probe internal/obs/parprof/
	// wallclock, whose busy/barrier-wait measurements are host
	// diagnostics that flow only outward into reports, never into the
	// simulation (the fixture tests prove the entry is load-bearing).
	// Command-line tools and examples live outside internal/ and may
	// also time things.
	wallClockOK = []string{
		"distws/internal/rt",
		"distws/internal/obs/parprof/wallclock",
	}

	// simPath defines the Event handle type handlesafe guards;
	// commPath defines the pooled Message poolcheck tracks.
	simPath  = "distws/internal/sim"
	commPath = "distws/internal/comm"

	// poolPackages are the mailbox-handler packages whose drains own
	// the messages they poll.
	poolPackages = []string{
		"distws/internal/core",
		"distws/internal/dagws",
	}

	// hotPackages are the 0-alloc bench-gated packages (BENCH_PKGS in
	// the Makefile): hotalloc checks their functions when reachable
	// from a hot root.
	hotPackages = []string{
		"distws/internal/sim",
		"distws/internal/comm",
		"distws/internal/topology",
		"distws/internal/uts",
		"distws/internal/fault",
	}

	// hotRoots are the steady-state entry points of the per-event hot
	// path, named explicitly because two of the boundaries — the
	// latency model and the fault interposer — are interface dispatch,
	// where call-graph traversal stops. Setup code (constructors,
	// preset tables) is deliberately absent: it may allocate.
	hotRoots = []string{
		"(*distws/internal/core.engine).startQuantum",
		"(*distws/internal/core.engine).quantumEnd",
		"(*distws/internal/core.engine).onDelivery",
		"(*distws/internal/dagws.scheduler).startNext",
		"(*distws/internal/dagws.scheduler).complete",
		"(*distws/internal/dagws.scheduler).onDelivery",
		"(*distws/internal/sim.Kernel).Step",
		"(*distws/internal/comm.Network).send",
		"(*distws/internal/fault.Injector).Outcome",
		"(*distws/internal/fault.Injector).ScaleCompute",
		"(*distws/internal/fault.Injector).CrashTime",
		"(*distws/internal/topology.HierarchicalLatency).Latency",
		"(*distws/internal/topology.JitterLatency).Latency",
		"(*distws/internal/topology.UniformLatency).Latency",
		"(*distws/internal/topology.cachedLatency).Latency",
		"(distws/internal/uts.Params).AppendChildren",
		"(*distws/internal/uts.ChildGen).Reset",
		"(*distws/internal/uts.ChildGen).Child",
	}

	// detPackages are the deterministic core: everything a golden
	// figure's bytes depend on.
	detPackages = []string{
		"distws/internal/sim",
		"distws/internal/core",
		"distws/internal/comm",
		"distws/internal/uts",
		"distws/internal/term",
		"distws/internal/fault",
	}

	// barrierSyncPackages may spawn goroutines despite being part of
	// the deterministic core: the sharded kernel's workers rendezvous
	// with the coordinator at every window barrier and all cross-shard
	// traffic is merged under a total key, so host scheduling never
	// reaches an output (the sharded golden and determinism-matrix
	// tests gate the claim). detorder keeps flagging map ranges and
	// multi-case selects here.
	barrierSyncPackages = []string{"distws/internal/sim/par"}
)

// defaultAllowlist is the checked-in suppression file, relative to the
// module root the tool is documented to run from.
const defaultAllowlist = "cmd/distwsvet/allowlist.json"

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.New(randExempt),
		walltime.New(virtualTime, wallClockOK),
		lockcheck.New(),
		atomicmix.New(),
		handlesafe.New(simPath),
		poolcheck.New(commPath, poolPackages),
		hotalloc.New(hotRoots, hotPackages),
		detorder.New(detPackages, barrierSyncPackages),
	}
}

// allowEntry is one reviewed per-diagnostic exception. A diagnostic is
// suppressed when the analyzer matches, the package is path or a
// subpackage of it, and the message matches the regexp.
type allowEntry struct {
	Analyzer string `json:"analyzer"`
	Path     string `json:"path"`
	Match    string `json:"match"`
	Reason   string `json:"reason"`

	re   *regexp.Regexp
	used bool
}

func (e *allowEntry) matches(d analysis.Diagnostic) bool {
	if e.Analyzer != d.Analyzer {
		return false
	}
	if !analysis.PathMatches(d.Package, []string{e.Path}) {
		return false
	}
	return e.re.MatchString(d.Message)
}

func loadAllowlist(path string) ([]*allowEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []*allowEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	for i, e := range entries {
		if e.Analyzer == "" || e.Path == "" || e.Match == "" || e.Reason == "" {
			return nil, fmt.Errorf("%s: entry %d: analyzer, path, match and reason are all required", path, i)
		}
		re, err := regexp.Compile(e.Match)
		if err != nil {
			return nil, fmt.Errorf("%s: entry %d: bad match regexp: %v", path, i, err)
		}
		e.re = re
	}
	return entries, nil
}

// jsonDiagnostic is the machine-readable shape of one finding. Field
// order and the pre-sorted diagnostics give byte-stable output.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	Package  string `json:"package"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	Reason   string `json:"reason,omitempty"` // suppression reason, suppressed list only
}

func toJSON(d analysis.Diagnostic, reason string) jsonDiagnostic {
	return jsonDiagnostic{
		Analyzer: d.Analyzer,
		Package:  d.Package,
		File:     d.Pos.Filename,
		Line:     d.Pos.Line,
		Column:   d.Pos.Column,
		Message:  d.Message,
		Reason:   reason,
	}
}

// report is the top-level JSON document.
type report struct {
	Findings   []jsonDiagnostic `json:"findings"`
	Suppressed []jsonDiagnostic `json:"suppressed"`
	Stale      []allowEntry     `json:"stale_allowlist,omitempty"`
	Packages   int              `json:"packages"`
	Analyzers  []string         `json:"analyzers"`
	Elapsed    string           `json:"elapsed"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	start := time.Now()
	fs := flag.NewFlagSet("distwsvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runFlag := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	format := fs.String("format", "text", "output format: text or json")
	allowPath := fs.String("allowlist", defaultAllowlist, "diagnostic allowlist file (\"\" disables)")
	budget := fs.Duration("budget", 0, "fail if the run exceeds this wall time (0 = none)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: distwsvet [-run names] [-format text|json] [-allowlist file] [-budget dur] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers() {
			fmt.Fprintf(stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "distwsvet: unknown format %q (valid: text, json)\n", *format)
		return 2
	}

	all := analyzers()
	selected := all
	if *runFlag != "" {
		byName := make(map[string]*analysis.Analyzer)
		var names []string
		for _, a := range all {
			byName[a.Name] = a
			names = append(names, a.Name)
		}
		selected = nil
		for _, name := range strings.Split(*runFlag, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "distwsvet: unknown analyzer %q (valid: %s)\n", name, strings.Join(names, ", "))
				return 2
			}
			selected = append(selected, a)
		}
	}

	var allow []*allowEntry
	if *allowPath != "" {
		entries, err := loadAllowlist(*allowPath)
		if err != nil {
			fmt.Fprintf(stderr, "distwsvet: allowlist: %v\n", err)
			return 2
		}
		allow = entries
	}

	patterns := fs.Args()
	// Stale allowlist entries only mean something when every analyzer
	// ran over the whole module: a partial run legitimately leaves
	// entries unmatched.
	fullSuite := *runFlag == "" &&
		(len(patterns) == 0 || (len(patterns) == 1 && patterns[0] == "./..."))
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "distwsvet: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, selected)
	if err != nil {
		fmt.Fprintf(stderr, "distwsvet: %v\n", err)
		return 2
	}

	var findings, suppressed []analysis.Diagnostic
	var reasons []string
	for _, d := range diags {
		matched := false
		for _, e := range allow {
			if e.matches(d) {
				e.used = true
				if !matched {
					matched = true
					suppressed = append(suppressed, d)
					reasons = append(reasons, e.Reason)
				}
			}
		}
		if !matched {
			findings = append(findings, d)
		}
	}
	var stale []allowEntry
	if fullSuite {
		for _, e := range allow {
			if !e.used {
				stale = append(stale, *e)
			}
		}
	}
	elapsed := time.Since(start)

	var analyzerNames []string
	for _, a := range selected {
		analyzerNames = append(analyzerNames, a.Name)
	}
	switch *format {
	case "json":
		rep := report{
			Findings:   []jsonDiagnostic{},
			Suppressed: []jsonDiagnostic{},
			Stale:      stale,
			Packages:   len(pkgs),
			Analyzers:  analyzerNames,
			Elapsed:    elapsed.Round(time.Millisecond).String(),
		}
		for _, d := range findings {
			rep.Findings = append(rep.Findings, toJSON(d, ""))
		}
		for i, d := range suppressed {
			rep.Suppressed = append(rep.Suppressed, toJSON(d, reasons[i]))
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "distwsvet: %v\n", err)
			return 2
		}
	default:
		for _, d := range findings {
			fmt.Fprintln(stdout, d)
		}
	}

	code := 0
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "distwsvet: %d finding(s) across %d package(s)\n", len(findings), len(pkgs))
		code = 1
	}
	for _, e := range stale {
		fmt.Fprintf(stderr, "distwsvet: stale allowlist entry (nothing matches): analyzer=%s path=%s match=%q\n",
			e.Analyzer, e.Path, e.Match)
		code = 1
	}
	if *budget > 0 && elapsed > *budget {
		fmt.Fprintf(stderr, "distwsvet: run took %v, over the %v budget\n",
			elapsed.Round(time.Millisecond), *budget)
		code = 1
	}
	if code == 0 && *format == "text" {
		fmt.Fprintf(stdout, "distwsvet: %d package(s) clean (%d analyzer(s), %d suppression(s), %v)\n",
			len(pkgs), len(selected), len(suppressed), elapsed.Round(time.Millisecond))
	}
	return code
}
