// Command distwsvet runs the repository's custom static analyzers over
// the module and fails (exit 1) on any finding. It machine-checks the
// invariants the reproduction's validity rests on:
//
//	detrand    all randomness flows through internal/rng's seeded
//	           streams; no math/rand, no wall-clock seeds
//	walltime   virtual-time packages never read the host clock
//	lockcheck  critical sections release their mutex on every path and
//	           never send on a channel while holding it
//	atomicmix  a word accessed via sync/atomic is never also accessed
//	           plainly
//
// Usage:
//
//	go run ./cmd/distwsvet [-run detrand,walltime,...] [packages]
//
// Packages default to ./... and follow go-tool patterns; run it from
// the module root (make distwsvet does). Deliberate exceptions are
// encoded in the allowlists below — in configuration, not in
// suppressed diagnostics — so every exception carries its rationale
// and shows up in review when it changes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"distws/internal/analysis"
	"distws/internal/analysis/atomicmix"
	"distws/internal/analysis/detrand"
	"distws/internal/analysis/lockcheck"
	"distws/internal/analysis/walltime"
)

// Allowlists: the deliberate, reviewed exceptions to each invariant.
var (
	// randExempt may reference math/rand: internal/rng is the one
	// place raw generator machinery belongs. (It currently doesn't
	// even use math/rand — the generators are hand-rolled — but the
	// boundary is drawn here.) Time-seeding is not excepted anywhere.
	randExempt = []string{"distws/internal/rng"}

	// virtualTime packages must never read the host clock. That
	// includes the observability layer (internal/obs, internal/trace):
	// its events, counters and histograms are pure functions of the
	// simulated run, timestamped in virtual nanoseconds, so traced runs
	// stay bit-identical across hosts.
	virtualTime = []string{"distws/internal"}
	// ...except the real shared-memory runtime internal/rt, whose
	// entire point is genuine elapsed time (it benchmarks the same
	// victim-selection machinery the simulator studies); its metrics
	// use the rt_ name prefix to keep the two time bases apart.
	// Command-line tools and examples live outside internal/ and may
	// also time things.
	wallClockOK = []string{"distws/internal/rt"}
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.New(randExempt),
		walltime.New(virtualTime, wallClockOK),
		lockcheck.New(),
		atomicmix.New(),
	}
}

func main() {
	runFlag := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: distwsvet [-run names] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	selected := analyzers()
	if *runFlag != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range selected {
			byName[a.Name] = a
		}
		selected = selected[:0]
		for _, name := range strings.Split(*runFlag, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "distwsvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "distwsvet: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, selected)
	if err != nil {
		fmt.Fprintf(os.Stderr, "distwsvet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "distwsvet: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
	fmt.Printf("distwsvet: %d package(s) clean (%d analyzer(s))\n", len(pkgs), len(selected))
}
