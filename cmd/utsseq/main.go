// Command utsseq enumerates a UTS tree sequentially. It is the ground
// truth the distributed traversals are verified against, and the tool
// that measured the preset sizes recorded in EXPERIMENTS.md.
//
// Usage:
//
//	utsseq -tree H-SWEEP
//	utsseq -type binomial -r 316 -b 2000 -m 2 -q 0.49 -limit 1e7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"distws/internal/uts"
)

func main() {
	var (
		treeFlag  = flag.String("tree", "", "tree preset name (overrides the parameter flags)")
		typeFlag  = flag.String("type", "binomial", "tree type: binomial|geometric|hybrid")
		rFlag     = flag.Int("r", 316, "root seed")
		bFlag     = flag.Float64("b", 2000, "root branching factor b0")
		mFlag     = flag.Int("m", 2, "binomial non-leaf children")
		qFlag     = flag.Float64("q", 0.49, "binomial non-leaf probability")
		dFlag     = flag.Int("d", 10, "geometric depth limit")
		cutFlag   = flag.Int("cutoff", 0, "hybrid cutoff depth")
		shapeFlag = flag.String("shape", "linear", "geometric shape: linear|expdec|cyclic|fixed")
		granFlag  = flag.Int("g", 1, "hash evaluations per child (granularity)")
		limitFlag = flag.Uint64("limit", 500_000_000, "abort after this many nodes")
		allFlag   = flag.Bool("all", false, "enumerate every preset (subject to -limit)")
	)
	flag.Parse()

	if *allFlag {
		for _, name := range uts.PresetNames() {
			info := uts.MustPreset(name)
			if info.PaperSize > 0 {
				fmt.Printf("%-10s paper-scale tree (%d nodes per Table I), skipping\n", name, info.PaperSize)
				continue
			}
			enumerate(name, info.Params, *limitFlag)
		}
		return
	}

	var params uts.Params
	name := "custom"
	if *treeFlag != "" {
		info, ok := uts.Preset(*treeFlag)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown preset %q; known: %v\n", *treeFlag, uts.PresetNames())
			os.Exit(2)
		}
		params = info.Params
		name = info.Name
	} else {
		switch strings.ToLower(*typeFlag) {
		case "binomial":
			params.Type = uts.Binomial
		case "geometric":
			params.Type = uts.Geometric
		case "hybrid":
			params.Type = uts.Hybrid
		default:
			fmt.Fprintf(os.Stderr, "unknown tree type %q\n", *typeFlag)
			os.Exit(2)
		}
		switch strings.ToLower(*shapeFlag) {
		case "linear":
			params.Shape = uts.ShapeLinear
		case "expdec":
			params.Shape = uts.ShapeExpDec
		case "cyclic":
			params.Shape = uts.ShapeCyclic
		case "fixed":
			params.Shape = uts.ShapeFixed
		default:
			fmt.Fprintf(os.Stderr, "unknown shape %q\n", *shapeFlag)
			os.Exit(2)
		}
		params.RootSeed = int32(*rFlag)
		params.B0 = *bFlag
		params.NonLeafBF = *mFlag
		params.NonLeafProb = *qFlag
		params.GenMax = int32(*dFlag)
		params.CutoffDepth = int32(*cutFlag)
		params.Granularity = *granFlag
	}
	enumerate(name, params, *limitFlag)
}

func enumerate(name string, params uts.Params, limit uint64) {
	start := time.Now()
	res, ok, err := uts.CountLimited(params, limit)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	if !ok {
		fmt.Printf("%-10s aborted after %d nodes (limit) in %v\n", name, res.Nodes, elapsed.Round(time.Millisecond))
		return
	}
	rate := float64(res.Nodes) / elapsed.Seconds()
	fmt.Printf("%-10s nodes=%d leaves=%d depth=%d (%v, %.2fM nodes/s)\n",
		name, res.Nodes, res.Leaves, res.MaxDepth, elapsed.Round(time.Millisecond), rate/1e6)
}
