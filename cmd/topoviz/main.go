// Command topoviz inspects the simulated machine: it shows how a job's
// nodes are allocated on the Tofu-like torus, the distribution of
// inter-rank distances and latencies under each placement, and the
// victim-selection probability profile a given thief would use.
//
// Usage:
//
//	topoviz -ranks 1024
//	topoviz -ranks 512 -placement 8RR -thief 42
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"distws/internal/sim"
	"distws/internal/stats"
	"distws/internal/topology"
	"distws/internal/victim"
)

func main() {
	var (
		ranksFlag = flag.Int("ranks", 256, "number of ranks")
		placeFlag = flag.String("placement", "1/N", "placement: 1/N, 8RR or 8G")
		thiefFlag = flag.Int("thief", 0, "rank whose victim-selection profile to print")
		seedFlag  = flag.Uint64("seed", 1, "selector seed")
	)
	flag.Parse()

	var placement topology.Placement
	switch strings.ToUpper(*placeFlag) {
	case "1/N":
		placement = topology.OnePerNode
	case "8RR":
		placement = topology.EightRoundRobin
	case "8G":
		placement = topology.EightGrouped
	default:
		fmt.Fprintf(os.Stderr, "unknown placement %q\n", *placeFlag)
		os.Exit(2)
	}

	m := topology.KComputer()
	job, err := topology.NewJob(m, *ranksFlag, placement)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	alloc := job.Alloc

	fmt.Printf("machine: %dx%dx%d cubes (%d nodes, %d racks)\n",
		m.CubesX, m.CubesY, m.CubesZ, m.Nodes(), m.CubesX*m.CubesY)
	fmt.Printf("allocation: %d nodes in a %dx%dx%d cube box\n",
		alloc.Nodes(), alloc.DX, alloc.DY, alloc.DZ)
	racks := map[[2]int]bool{}
	for _, c := range alloc.NodeList {
		racks[[2]int{c.X, c.Y}] = true
	}
	fmt.Printf("job: %d ranks, %v placement, spanning %d rack(s), max %d hops\n\n",
		job.Ranks(), placement, len(racks), job.MaxHops())

	// Distance and latency distribution from the thief's viewpoint.
	model := topology.DefaultLatency()
	var dists, lats []float64
	for k := 0; k < job.Ranks(); k++ {
		if k == *thiefFlag {
			continue
		}
		dists = append(dists, job.Distance(*thiefFlag, k))
		lats = append(lats, model.Latency(job, *thiefFlag, k, 0).Seconds()*1e6)
	}
	fmt.Printf("from rank %d (node %v, core %d):\n", *thiefFlag, job.Coord(*thiefFlag), job.Core(*thiefFlag))
	fmt.Printf("  euclidean distance: min %.2f  p50 %.2f  max %.2f\n",
		stats.Min(dists), stats.Quantile(dists, 0.5), stats.Max(dists))
	fmt.Printf("  one-way latency:    min %.1fµs p50 %.1fµs max %.1fµs\n\n",
		stats.Min(lats), stats.Quantile(lats, 0.5), stats.Max(lats))

	printHistogram("distance histogram", dists, 12)
	fmt.Println()

	// Victim-selection probability mass by distance band, for the
	// uniform and the distance-skewed strategies.
	sel := victim.NewDistanceSkewed(job, *seedFlag)
	pdfer, ok := sel.(interface{ PDF(int) []float64 })
	if !ok {
		fmt.Fprintln(os.Stderr, "selector does not expose PDF")
		os.Exit(1)
	}
	pdf := pdfer.PDF(*thiefFlag)
	const bands = 6
	maxD := stats.Max(dists)
	bandP := make([]float64, bands)
	bandU := make([]float64, bands)
	uni := 1 / float64(job.Ranks()-1)
	for k := 0; k < job.Ranks(); k++ {
		if k == *thiefFlag {
			continue
		}
		b := 0
		if maxD > 0 {
			b = int(job.Distance(*thiefFlag, k) / (maxD + 1e-9) * bands)
		}
		bandP[b] += pdf[k]
		bandU[b] += uni
	}
	fmt.Printf("victim-selection mass by distance band (thief %d):\n", *thiefFlag)
	fmt.Printf("  %-16s %-10s %-10s %s\n", "band", "uniform", "skewed", "skew gain")
	for b := 0; b < bands; b++ {
		lo := maxD * float64(b) / bands
		hi := maxD * float64(b+1) / bands
		gain := math.NaN()
		if bandU[b] > 0 {
			gain = bandP[b] / bandU[b]
		}
		fmt.Printf("  [%5.1f, %5.1f)   %-10.4f %-10.4f %.2fx\n", lo, hi, bandU[b], bandP[b], gain)
	}

	// Latency model summary for orientation.
	fmt.Printf("\nlatency model levels (0-byte message):\n")
	fmt.Printf("  software overhead  %v\n", model.Software)
	fmt.Printf("  same node          +%v\n", model.SameNode)
	fmt.Printf("  same blade         +%v\n", model.SameBlade)
	fmt.Printf("  same cube          +%v\n", model.SameCube)
	fmt.Printf("  per torus hop      +%v\n", model.PerHop)
	_ = sim.Microsecond
}

// printHistogram renders a simple horizontal-bar histogram.
func printHistogram(title string, xs []float64, bins int) {
	lo, hi := stats.Min(xs), stats.Max(xs)
	if hi <= lo {
		hi = lo + 1
	}
	counts := stats.Histogram(xs, bins, lo, hi)
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	fmt.Println(title + ":")
	for i, c := range counts {
		bLo := lo + (hi-lo)*float64(i)/float64(bins)
		bHi := lo + (hi-lo)*float64(i+1)/float64(bins)
		bar := ""
		if maxC > 0 {
			bar = strings.Repeat("█", c*40/maxC)
		}
		fmt.Printf("  [%6.2f, %6.2f) %5d %s\n", bLo, bHi, c, bar)
	}
}
