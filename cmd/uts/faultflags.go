package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"distws/internal/fault"
	"distws/internal/sim"
)

// parseCrashSpec parses the -crash flag: a comma-separated list of
// rank@time entries, e.g. "3@40us,11@2ms". Times are virtual times
// since the start of the run, in time.ParseDuration syntax.
func parseCrashSpec(spec string) ([]fault.Crash, error) {
	var crashes []fault.Crash
	for _, entry := range strings.Split(spec, ",") {
		rank, at, ok := strings.Cut(strings.TrimSpace(entry), "@")
		if !ok {
			return nil, fmt.Errorf("crash %q: want rank@time (e.g. 3@40us)", entry)
		}
		r, err := strconv.Atoi(rank)
		if err != nil || r < 0 {
			return nil, fmt.Errorf("crash %q: bad rank %q", entry, rank)
		}
		d, err := time.ParseDuration(at)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("crash %q: bad time %q (want e.g. 40us, 2ms)", entry, at)
		}
		crashes = append(crashes, fault.Crash{Rank: r, At: sim.Time(d)})
	}
	return crashes, nil
}

// parseStragglerSpec parses the -straggler flag: a comma-separated list
// of rank@compute[xsend] entries, e.g. "5@3" (compute 3x slower) or
// "5@3x2" (compute 3x, sends 2x slower).
func parseStragglerSpec(spec string) ([]fault.Straggler, error) {
	var stragglers []fault.Straggler
	for _, entry := range strings.Split(spec, ",") {
		rank, factors, ok := strings.Cut(strings.TrimSpace(entry), "@")
		if !ok {
			return nil, fmt.Errorf("straggler %q: want rank@compute[xsend] (e.g. 5@3 or 5@3x2)", entry)
		}
		r, err := strconv.Atoi(rank)
		if err != nil || r < 0 {
			return nil, fmt.Errorf("straggler %q: bad rank %q", entry, rank)
		}
		computeStr, sendStr, hasSend := strings.Cut(factors, "x")
		s := fault.Straggler{Rank: r}
		if s.Compute, err = strconv.ParseFloat(computeStr, 64); err != nil || s.Compute < 1 {
			return nil, fmt.Errorf("straggler %q: bad compute factor %q (want >= 1)", entry, computeStr)
		}
		if hasSend {
			if s.Send, err = strconv.ParseFloat(sendStr, 64); err != nil || s.Send < 1 {
				return nil, fmt.Errorf("straggler %q: bad send factor %q (want >= 1)", entry, sendStr)
			}
		}
		stragglers = append(stragglers, s)
	}
	return stragglers, nil
}

// buildFaultPlan resolves the fault flags into at most one plan. A plan
// file fixes the complete fault schedule, so combining it with inline
// -crash/-straggler flags is a conflict, not a merge.
func buildFaultPlan(planPath, crashSpec, stragglerSpec string, seed uint64) (*fault.Plan, error) {
	if planPath != "" && (crashSpec != "" || stragglerSpec != "") {
		return nil, fmt.Errorf("-faults conflicts with -crash/-straggler: the plan file already fixes the fault schedule")
	}
	if planPath != "" {
		data, err := os.ReadFile(planPath)
		if err != nil {
			return nil, fmt.Errorf("-faults: %w", err)
		}
		plan, err := fault.ParsePlan(data)
		if err != nil {
			return nil, fmt.Errorf("-faults %s: %w", planPath, err)
		}
		return plan, nil
	}
	if crashSpec == "" && stragglerSpec == "" {
		return nil, nil
	}
	// Inline plans reuse the run seed: the same command line replays
	// the same adversity.
	plan := &fault.Plan{Seed: seed}
	var err error
	if crashSpec != "" {
		if plan.Crashes, err = parseCrashSpec(crashSpec); err != nil {
			return nil, err
		}
	}
	if stragglerSpec != "" {
		if plan.Stragglers, err = parseStragglerSpec(stragglerSpec); err != nil {
			return nil, err
		}
	}
	return plan, nil
}
