// Command uts runs one simulated distributed UTS execution and prints a
// report in the style of the reference benchmark.
//
// Usage:
//
//	uts -tree H-SMALL -ranks 128 -placement 1/N -selector Tofu -steal half
//	uts -tree T3 -ranks 8 -trace trace.jsonl
//	uts -tree T3 -ranks 32 -trace t.jsonl -chrome t.json -obs :6060
//
// -trace also captures the protocol-level event log (steal round trips,
// token hops, quantum boundaries) into the JSONL file for cmd/tracetool;
// -chrome writes the same run as Chrome trace-event JSON for
// ui.perfetto.dev; -obs serves /metrics (Prometheus), /debug/vars and
// /debug/pprof/ on the given address for the duration of the process.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"distws/internal/core"
	"distws/internal/metrics"
	"distws/internal/obs"
	"distws/internal/obs/causal"
	"distws/internal/obs/ledger"
	"distws/internal/obs/parprof"
	"distws/internal/obs/parprof/wallclock"
	"distws/internal/serve"
	"distws/internal/sim"
	"distws/internal/term"
	"distws/internal/topology"
	"distws/internal/uts"
	"distws/internal/victim"
)

func main() {
	var (
		treeFlag      = flag.String("tree", "H-SMALL", "tree preset (see -listtrees)")
		ranksFlag     = flag.Int("ranks", 64, "number of simulated MPI ranks")
		placeFlag     = flag.String("placement", "1/N", "rank placement: 1/N, 8RR or 8G")
		selFlag       = flag.String("selector", "RoundRobin", "victim selector (see -listselectors)")
		stealFlag     = flag.String("steal", "one", "steal amount: one|half")
		chunkFlag     = flag.Int("chunk", 4, "nodes per chunk (UTS default is 20; scaled experiments use 4)")
		nodeCostFlag  = flag.Duration("nodecost", 0, "virtual time per child generation (default 1µs)")
		seedFlag      = flag.Uint64("seed", 1, "random seed")
		shardsFlag    = flag.Int("shards", 1, "parallel simulation shards (conservative time windows; 1 = sequential kernel)")
		parprofFlag   = flag.Bool("parprof", false, "profile the parallel kernel: window ledger, serialization causes, and a shard scaling report")
		parwallFlag   = flag.Bool("parwall", false, "with -parprof and -shards > 1: add the wall-clock busy/barrier-wait profile (host-dependent)")
		parJSONFlag   = flag.String("parprof-json", "", "with -parprof: write the shard scaling report as JSON to this file")
		detFlag       = flag.String("termination", "Safra", "termination detector: Safra|Ring")
		traceFlag     = flag.String("trace", "", "write the activity trace + event log (JSONL) to this file")
		chromeFlag    = flag.String("chrome", "", "write a Chrome trace-event JSON file (open in Perfetto)")
		eventsFlag    = flag.Bool("events", false, "collect the protocol event log even without -trace/-chrome")
		eventBufFlag  = flag.Int("eventbuf", 0, "per-rank event ring capacity (0 = default)")
		obsFlag       = flag.String("obs", "", "serve /metrics, /debug/vars and /debug/pprof/ on this address (e.g. :6060)")
		manifestFlag  = flag.String("manifest", "", "write the run manifest (ledger JSON) to this file; diff runs with tracetool -diff")
		serveFlag     = flag.Bool("serve", false, "open-system serving mode: jobs arrive continuously instead of one closed batch (-arrivals, -tenants, -horizon); -tree sets the per-job workload")
		arrivalsFlag  = flag.String("arrivals", "poisson:2ms", "with -serve: comma-separated per-tenant arrival processes, cycled across tenants: poisson:MEAN, gamma:MEAN:SHAPE, weibull:MEAN:SHAPE — or a single replay:FILE (JSONL arrival log) feeding every tenant")
		tenantsFlag   = flag.Int("tenants", 2, "with -serve: number of traffic sources")
		horizonFlag   = flag.Duration("horizon", 50*time.Millisecond, "with -serve: arrival horizon (virtual time); the run drains admitted jobs past it")
		faultsFlag    = flag.String("faults", "", "JSON fault-plan file (crashes, stragglers, lossy links)")
		crashFlag     = flag.String("crash", "", "inline crash schedule: rank@time,... (e.g. 3@40us,11@2ms)")
		stragglerFlag = flag.String("straggler", "", "inline stragglers: rank@compute[xsend],... (e.g. 5@3x2)")
		listTrees     = flag.Bool("listtrees", false, "list tree presets and exit")
		listSel       = flag.Bool("listselectors", false, "list victim selectors and exit")
	)
	flag.Parse()

	if *listTrees {
		for _, n := range uts.PresetNames() {
			info := uts.MustPreset(n)
			fmt.Printf("%-10s %-9v %s\n", n, info.Params.Type, info.Comment)
		}
		return
	}
	if *listSel {
		for _, n := range victim.StrategyNames() {
			fmt.Println(n)
		}
		return
	}

	info, ok := uts.Preset(*treeFlag)
	if !ok {
		fatalf("unknown tree preset %q (-listtrees)", *treeFlag)
	}
	var placement topology.Placement
	switch strings.ToUpper(*placeFlag) {
	case "1/N":
		placement = topology.OnePerNode
	case "8RR":
		placement = topology.EightRoundRobin
	case "8G":
		placement = topology.EightGrouped
	default:
		fatalf("unknown placement %q (1/N, 8RR, 8G)", *placeFlag)
	}
	selector, ok := victim.Strategies[*selFlag]
	if !ok {
		fatalf("unknown selector %q (-listselectors)", *selFlag)
	}
	var steal core.StealPolicy
	switch strings.ToLower(*stealFlag) {
	case "one":
		steal = core.StealOne
	case "half":
		steal = core.StealHalf
	default:
		fatalf("unknown steal policy %q (one|half)", *stealFlag)
	}
	detector, ok := term.Detectors[*detFlag]
	if !ok {
		fatalf("unknown termination detector %q (Safra|Ring)", *detFlag)
	}

	collectEvents := *eventsFlag || *traceFlag != "" || *chromeFlag != ""
	if *eventBufFlag != 0 && !collectEvents {
		fatalf("-eventbuf has no effect without -events, -trace or -chrome")
	}
	plan, err := buildFaultPlan(*faultsFlag, *crashFlag, *stragglerFlag, *seedFlag)
	if err != nil {
		fatalf("%v", err)
	}
	if !*serveFlag {
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "arrivals", "tenants", "horizon":
				fatalf("-%s has no effect without -serve", f.Name)
			}
		})
	}
	var serveSpec *serve.Spec
	if *serveFlag {
		serveSpec, err = buildServeSpec(*arrivalsFlag, *tenantsFlag, sim.Duration(*horizonFlag), info.Params)
		if err != nil {
			fatalf("%v", err)
		}
	}
	var reg *obs.Registry
	if *obsFlag != "" {
		reg = obs.NewRegistry()
		go func() {
			if err := http.ListenAndServe(*obsFlag, obs.Handler(reg)); err != nil {
				fmt.Fprintf(os.Stderr, "uts: obs server: %v\n", err)
			}
		}()
		fmt.Printf("observability: http://%s/metrics (also /debug/vars, /debug/pprof/)\n", *obsFlag)
	}

	cfg := core.Config{
		Tree:          info.Params,
		Ranks:         *ranksFlag,
		Placement:     placement,
		Selector:      selector,
		Steal:         steal,
		ChunkSize:     *chunkFlag,
		NodeCost:      sim.Duration(*nodeCostFlag),
		Detector:      detector,
		Seed:          *seedFlag,
		CollectTrace:  *traceFlag != "" || *chromeFlag != "",
		CollectEvents: collectEvents,
		EventBuffer:   *eventBufFlag,
		Metrics:       reg,
		Faults:        plan,
		Shards:        *shardsFlag,
		ParProfile:    *parprofFlag,
		Serve:         serveSpec,
	}
	if err := checkShards(*shardsFlag, *ranksFlag); err != nil {
		fatalf("%v", err)
	}
	if *parwallFlag && !*parprofFlag {
		fatalf("-parwall requires -parprof")
	}
	if *parJSONFlag != "" && !*parprofFlag {
		fatalf("-parprof-json requires -parprof")
	}
	var wallProf *wallclock.Profile
	if *parwallFlag && *shardsFlag > 1 {
		wallProf = wallclock.New(*shardsFlag)
		cfg.ParWallProbe = wallProf
	}
	res, err := core.Run(cfg)
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("UTS distributed work-stealing simulation\n")
	fmt.Printf("  tree:            %s (%v)\n", info.Name, info.Params.Type)
	fmt.Printf("  ranks:           %d (%v placement)\n", res.Ranks, res.Placement)
	fmt.Printf("  selector:        %s, steal %v, chunk %d\n", res.Selector, res.Steal, *chunkFlag)
	fmt.Printf("  termination:     %s (%d rounds)\n", res.Detector, res.TerminationRounds)
	fmt.Printf("\n")
	fmt.Printf("  tree nodes:      %d (%d leaves, depth %d)\n", res.Nodes, res.Leaves, res.MaxDepth)
	fmt.Printf("  wallclock:       %v (virtual)\n", res.Makespan)
	fmt.Printf("  sequential time: %v (virtual)\n", res.SequentialTime)
	fmt.Printf("  speedup:         %.2f\n", res.Speedup)
	fmt.Printf("  efficiency:      %.3f\n", res.Efficiency)
	fmt.Printf("\n")
	fmt.Printf("  steal requests:  %d (%d ok, %d failed)\n", res.StealRequests, res.SuccessfulSteals, res.FailedSteals)
	fmt.Printf("  chunks moved:    %d\n", res.ChunksTransferred)
	fmt.Printf("  mean search:     %v per rank\n", res.MeanSearchTime)
	if res.MeanSessionDuration > 0 {
		fmt.Printf("  mean session:    %v\n", res.MeanSessionDuration)
	}
	fmt.Printf("  messages sent:   %d\n", res.Comm.TotalSent())
	if res.Premature {
		fmt.Printf("  WARNING: premature termination detected (incomplete traversal)\n")
	}

	if res.MaxMigrationDepth > 0 {
		fmt.Printf("  work lineage:    max migration depth %d\n", res.MaxMigrationDepth)
	}

	if st := res.Serve; st != nil {
		fmt.Printf("\n  open-system serving:\n")
		fmt.Printf("  horizon:         %v (drained at %v)\n", sim.Duration(*horizonFlag), sim.Duration(st.Finish))
		fmt.Printf("  jobs:            %d arrived = %d admitted + %d rejected; %d done\n",
			st.Arrived, st.Admitted, st.Rejected, st.Done)
		fmt.Printf("  fairness (Jain): %.3f\n", st.Jain)
		for _, ts := range st.Tenants {
			class := ts.Class
			if class == "" {
				class = "best-effort"
			}
			fmt.Printf("    %-8s %-12s arrived %4d  admitted %4d  rejected %4d  slo-met %4d  goodput %8.1f/s\n",
				ts.Name, class, ts.Arrived, ts.Admitted, ts.Rejected, ts.SLOMet, ts.GoodputPerSec)
			fmt.Printf("    %-8s %-12s sojourn p50 %v  p95 %v  p99 %v\n",
				"", "", ts.SojournP50, ts.SojournP95, ts.SojournP99)
		}
	}

	if res.PerRankFaults != nil {
		fmt.Printf("\n  fault injection:\n")
		fmt.Printf("  crashed ranks:   %d\n", res.CrashedRanks)
		fmt.Printf("  nodes generated: %d (%d completed, %d lost)\n",
			res.NodesGenerated, res.Nodes, res.LostNodes)
		fmt.Printf("  lost messages:   %d (work in flight to/from dead ranks)\n", res.LostMessages)
		fmt.Printf("  msgs dropped:    %d\n", res.Comm.TotalDropped())
		fmt.Printf("  token regens:    %d\n", res.TokenRegens)
		if res.Recoveries > 0 {
			fmt.Printf("  recoveries:      %d (mean latency %v)\n", res.Recoveries, res.MeanRecoveryLatency)
		}
		for _, f := range res.PerRankFaults {
			if !f.Crashed && f.LostNodes == 0 && f.Timeouts == 0 && f.Blacklists == 0 {
				continue
			}
			status := "survived"
			if f.Crashed {
				status = fmt.Sprintf("crashed @%v", sim.Duration(f.CrashedAt))
			}
			fmt.Printf("    rank %4d: %-18s lost %d nodes, %d timeouts, %d blacklists\n",
				f.Rank, status, f.LostNodes, f.Timeouts, f.Blacklists)
		}
	}

	if res.Trace != nil {
		c := metrics.Occupancy(res.Trace)
		fmt.Printf("  max occupancy:   %.1f%% (Wmax %d)\n", c.MaxOccupancy()*100, c.Wmax())
		fmt.Printf("  mean occupancy:  %.1f%%\n", c.MeanOccupancy()*100)
		if res.Trace.Events != nil {
			fmt.Printf("  events recorded: %d (%d dropped from bounded rings)\n",
				res.Trace.TotalEvents(), res.Trace.TotalEventsDropped())
		}
		// Causal analyses ride on the event log: the critical path
		// highlights the Chrome export, and the blame/critical/lineage
		// aggregates land in the metrics registry (outside core.Run, so
		// the engine's own exposition is untouched).
		var chromeOpts obs.ChromeOptions
		chromeOpts.ParWindows = parprof.ChromeWindows(res.Par)
		if res.Trace.Events != nil {
			g := causal.Build(res.Trace)
			p := causal.CriticalPath(g)
			causal.Publish(reg, g, p, causal.AttributeIdle(res.Trace))
			for _, s := range p.Segments {
				chromeOpts.Highlight = append(chromeOpts.Highlight, obs.HighlightSpan{
					Name: s.Kind.String(), Rank: s.Rank, Start: s.Start, End: s.End,
				})
			}
			fmt.Printf("  critical path:   %.1f%% compute, %.1f%% steal-rtt, %.1f%% transfer, %.1f%% token, %.1f%% wait\n",
				segShare(p, causal.SegCompute), segShare(p, causal.SegStealRTT),
				segShare(p, causal.SegTransfer), segShare(p, causal.SegToken), segShare(p, causal.SegWait))
		}
		if *traceFlag != "" {
			writeFile(*traceFlag, res.Trace.WriteJSONL)
			fmt.Printf("  trace written:   %s (analyze with tracetool -in %s)\n", *traceFlag, *traceFlag)
		}
		if *chromeFlag != "" {
			writeFile(*chromeFlag, func(w io.Writer) error { return obs.WriteChromeTraceOpts(w, res.Trace, chromeOpts) })
			fmt.Printf("  chrome trace:    %s (load at ui.perfetto.dev)\n", *chromeFlag)
		}
	}

	// Parallel-kernel profiling rides outside core.Run, exactly like the
	// causal analyses: the ledger is read from the Result, the sim_par_*
	// metrics publish into the registry only here, and the scaling runs
	// are fresh stripped executions — the primary run's artifacts stay
	// byte-identical to an unprofiled run's.
	if *parprofFlag {
		parprof.Publish(reg, res.Par)
		fmt.Printf("\n")
		if err := res.Par.WriteText(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		if wallProf != nil {
			if err := wallProf.WriteText(os.Stdout); err != nil {
				fatalf("%v", err)
			}
		}
		sc := runScaling(cfg)
		fmt.Printf("\n")
		if err := sc.WriteText(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		if *parJSONFlag != "" {
			writeFile(*parJSONFlag, sc.WriteJSON)
			fmt.Printf("  scaling json:    %s\n", *parJSONFlag)
		}
	}

	// Manifest emission happens after the run, reading only the Result:
	// observer-effect-free by construction (the ledger tests assert it).
	if *manifestFlag != "" {
		spec := ledger.SpecFromConfig(info.Name, "", cfg)
		spec.Selector = *selFlag
		if *detFlag != "Safra" {
			spec.Detector = *detFlag
		}
		m := ledger.FromRun(manifestID(*manifestFlag), spec, res)
		m.Generator = generator()
		if err := m.WriteFile(*manifestFlag); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("\n  manifest:        %s (compare runs with tracetool -diff)\n", *manifestFlag)
	}

	if *obsFlag != "" {
		fmt.Printf("\nrun complete; still serving %s — interrupt to exit\n", *obsFlag)
		select {}
	}
}

// buildServeSpec assembles the open-system spec from the serving flags:
// tenants t0..tN-1 share the -tree preset as their per-job workload, and
// the -arrivals entries are cycled across them. A single replay entry
// instead feeds every tenant from one JSONL arrival log (the format
// serve.WriteArrivals emits).
func buildServeSpec(arrivals string, tenants int, horizon sim.Duration, tree uts.Params) (*serve.Spec, error) {
	if tenants < 1 {
		return nil, fmt.Errorf("-tenants must be >= 1, got %d", tenants)
	}
	spec := &serve.Spec{Horizon: horizon, Placement: serve.PlaceRR}
	entries := strings.Split(arrivals, ",")
	var specs []serve.ArrivalSpec
	if len(entries) == 1 && strings.HasPrefix(entries[0], "replay:") {
		path := strings.TrimPrefix(entries[0], "replay:")
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("-arrivals: %w", err)
		}
		defer f.Close()
		traces, err := serve.ReadArrivals(f, tenants)
		if err != nil {
			return nil, fmt.Errorf("-arrivals %s: %w", path, err)
		}
		for _, tr := range traces {
			specs = append(specs, serve.ArrivalSpec{Process: serve.ProcReplay, Trace: tr})
		}
	} else {
		for _, e := range entries {
			a, err := parseArrival(strings.TrimSpace(e))
			if err != nil {
				return nil, err
			}
			specs = append(specs, a)
		}
	}
	for i := 0; i < tenants; i++ {
		spec.Tenants = append(spec.Tenants, serve.Tenant{
			Name:    fmt.Sprintf("t%d", i),
			Arrival: specs[i%len(specs)],
			Work:    serve.Workload{Kind: serve.WorkUTS, Tree: tree},
		})
	}
	return spec, nil
}

// parseArrival parses one -arrivals entry: poisson:MEAN,
// gamma:MEAN:SHAPE or weibull:MEAN:SHAPE (shape defaults to 1).
func parseArrival(entry string) (serve.ArrivalSpec, error) {
	parts := strings.Split(entry, ":")
	bad := func() (serve.ArrivalSpec, error) {
		return serve.ArrivalSpec{}, fmt.Errorf(
			"-arrivals entry %q: want poisson:MEAN, gamma:MEAN:SHAPE, weibull:MEAN:SHAPE or replay:FILE", entry)
	}
	if len(parts) < 2 {
		return bad()
	}
	mean, err := time.ParseDuration(parts[1])
	if err != nil {
		return bad()
	}
	a := serve.ArrivalSpec{Process: strings.ToLower(parts[0]), Mean: sim.Duration(mean)}
	switch a.Process {
	case serve.ProcPoisson:
		if len(parts) != 2 {
			return bad()
		}
	case serve.ProcGamma, serve.ProcWeibull:
		if len(parts) > 3 {
			return bad()
		}
		if len(parts) == 3 {
			shape, err := strconv.ParseFloat(parts[2], 64)
			if err != nil {
				return bad()
			}
			a.Shape = shape
		}
	default:
		return bad()
	}
	return a, nil
}

// manifestID derives the run label from the manifest file name.
func manifestID(path string) string {
	base := filepath.Base(path)
	base = strings.TrimSuffix(base, ".json")
	return strings.TrimSuffix(base, ".manifest")
}

// generator reports the producing binary's VCS revision when the build
// carries one. It is provenance, not configuration: ledger comparisons
// and the determinism contract exclude it.
func generator() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev == "" {
		return ""
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev + dirty
}

// segShare returns segment kind k's percentage of the critical path.
func segShare(p causal.Path, k causal.SegmentKind) float64 {
	if p.Total <= 0 {
		return 0
	}
	return 100 * float64(p.ByKind[k]) / float64(p.Total)
}

func writeFile(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	if err := write(f); err != nil {
		fatalf("writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fatalf("closing %s: %v", path, err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// scalingShards is the shard ladder the scaling report walks.
var scalingShards = []int{1, 2, 4, 8}

// runScaling re-runs the configuration across the shard ladder (capped
// at the rank count), wall-timing each run. Every ladder run is
// stripped of tracing, metrics, and the wall probe so the wall columns
// compare like with like; the virtual columns are deterministic. The
// host-clock reads live here in package main — the engine itself never
// touches wall time (cmd/distwsvet enforces that).
func runScaling(cfg core.Config) parprof.Scaling {
	var sc parprof.Scaling
	for _, s := range scalingShards {
		if s > cfg.Ranks {
			break
		}
		c := cfg
		c.Shards = s
		c.ParProfile = true
		c.ParWallProbe = nil
		c.CollectTrace, c.CollectEvents, c.EventBuffer = false, false, 0
		c.Metrics = nil
		start := time.Now()
		r, err := core.Run(c)
		if err != nil {
			// A ladder point can be invalid (e.g. a fault plan that cannot
			// shard); report it and keep the rest of the table.
			fmt.Fprintf(os.Stderr, "uts: scaling run at %d shard(s): %v\n", s, err)
			continue
		}
		sc.Rows = append(sc.Rows, parprof.RowFrom(s, r.Makespan, r.Par, time.Since(start).Seconds()))
	}
	return sc
}

// checkShards validates the -shards flag before the run starts. The
// engine re-validates (and also rejects mode combinations the flag
// cannot see, like incompatible fault plans), but catching the plain
// numeric mistakes here gives a flag-shaped message instead of a
// config error.
func checkShards(shards, ranks int) error {
	if shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", shards)
	}
	if shards > ranks {
		return fmt.Errorf("-shards %d exceeds -ranks %d: each shard needs at least one rank", shards, ranks)
	}
	return nil
}
