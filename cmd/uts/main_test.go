package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"distws/internal/core"
	"distws/internal/fault"
	"distws/internal/serve"
	"distws/internal/sim"
	"distws/internal/uts"
)

func TestParseCrashSpec(t *testing.T) {
	got, err := parseCrashSpec("3@40us, 11@2ms")
	if err != nil {
		t.Fatal(err)
	}
	want := []fault.Crash{
		{Rank: 3, At: sim.Time(40 * sim.Microsecond)},
		{Rank: 11, At: sim.Time(2 * sim.Millisecond)},
	}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("parseCrashSpec = %+v, want %+v", got, want)
	}
	for _, bad := range []string{"", "3", "3@", "@40us", "x@40us", "3@40", "3@-1ms", "-1@40us", "3@40us,,"} {
		if _, err := parseCrashSpec(bad); err == nil {
			t.Errorf("parseCrashSpec(%q) accepted", bad)
		}
	}
}

func TestParseStragglerSpec(t *testing.T) {
	got, err := parseStragglerSpec("5@3x2,7@1.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []fault.Straggler{
		{Rank: 5, Compute: 3, Send: 2},
		{Rank: 7, Compute: 1.5},
	}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("parseStragglerSpec = %+v, want %+v", got, want)
	}
	for _, bad := range []string{"", "5", "5@", "5@0.5", "5@3x0.5", "5@x2", "a@3", "5@3xb"} {
		if _, err := parseStragglerSpec(bad); err == nil {
			t.Errorf("parseStragglerSpec(%q) accepted", bad)
		}
	}
}

func TestBuildFaultPlanConflicts(t *testing.T) {
	if _, err := buildFaultPlan("plan.json", "3@40us", "", 1); err == nil ||
		!strings.Contains(err.Error(), "conflicts") {
		t.Fatalf("plan file + -crash accepted: %v", err)
	}
	if _, err := buildFaultPlan("plan.json", "", "5@3", 1); err == nil ||
		!strings.Contains(err.Error(), "conflicts") {
		t.Fatalf("plan file + -straggler accepted: %v", err)
	}
}

func TestBuildFaultPlanInline(t *testing.T) {
	plan, err := buildFaultPlan("", "", "", 1)
	if err != nil || plan != nil {
		t.Fatalf("no flags should yield no plan, got %+v, %v", plan, err)
	}
	plan, err = buildFaultPlan("", "3@40us", "5@3", 42)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 42 || len(plan.Crashes) != 1 || len(plan.Stragglers) != 1 {
		t.Fatalf("inline plan wrong: %+v", plan)
	}
}

func TestBuildFaultPlanFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	data := `{"seed": 9, "crashes": [{"rank": 2, "at": 50000}]}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	plan, err := buildFaultPlan(path, "", "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 9 || len(plan.Crashes) != 1 || plan.Crashes[0].Rank != 2 {
		t.Fatalf("parsed plan wrong: %+v", plan)
	}
	if _, err := buildFaultPlan(filepath.Join(t.TempDir(), "missing.json"), "", "", 1); err == nil {
		t.Fatal("missing plan file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"unknown_field": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := buildFaultPlan(bad, "", "", 1); err == nil {
		t.Fatal("malformed plan file accepted")
	}
}

// TestCheckShards covers the -shards flag validation, and pins that
// the combinations the flag cannot pre-check (a sharded run with a
// fault plan needing the send-path interposer) are still rejected by
// the engine the flag hands off to.
func TestCheckShards(t *testing.T) {
	if err := checkShards(1, 8); err != nil {
		t.Fatalf("shards=1: %v", err)
	}
	if err := checkShards(8, 8); err != nil {
		t.Fatalf("shards=ranks: %v", err)
	}
	for _, tc := range []struct{ shards, ranks int }{{0, 8}, {-2, 8}, {9, 8}} {
		if err := checkShards(tc.shards, tc.ranks); err == nil {
			t.Errorf("checkShards(%d, %d) accepted", tc.shards, tc.ranks)
		}
	}
	cfg := core.Config{
		Tree:   uts.MustPreset("T3S").Params,
		Ranks:  8,
		Shards: 2,
		Faults: &fault.Plan{Links: []fault.LinkFault{{From: fault.Wildcard, To: fault.Wildcard, Drop: 0.1}}},
	}
	if _, err := core.Run(cfg); err == nil || !strings.Contains(err.Error(), "interposer") {
		t.Fatalf("sharded run with link faults accepted: %v", err)
	}
}

// TestShardedRunMatchesSequential drives the same small run through
// the flag path's config at shards 1 and 4: the scalar results the
// command prints must be identical.
func TestShardedRunMatchesSequential(t *testing.T) {
	base := core.Config{
		Tree:  uts.MustPreset("T3S").Params,
		Ranks: 16,
		Seed:  1,
	}
	seq, err := core.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Shards = 4
	res, err := core.Run(par)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != seq.Makespan || res.Nodes != seq.Nodes ||
		res.StealRequests != seq.StealRequests || res.ChunksTransferred != seq.ChunksTransferred {
		t.Fatalf("shards=4 diverged: makespan %v vs %v, steals %d vs %d",
			res.Makespan, seq.Makespan, res.StealRequests, seq.StealRequests)
	}
}

func TestParseArrival(t *testing.T) {
	cases := map[string]serve.ArrivalSpec{
		"poisson:2ms":     {Process: serve.ProcPoisson, Mean: 2 * sim.Millisecond},
		"gamma:2ms:2":     {Process: serve.ProcGamma, Mean: 2 * sim.Millisecond, Shape: 2},
		"gamma:1ms":       {Process: serve.ProcGamma, Mean: sim.Millisecond},
		"weibull:2ms:1.5": {Process: serve.ProcWeibull, Mean: 2 * sim.Millisecond, Shape: 1.5},
		"Poisson:500us":   {Process: serve.ProcPoisson, Mean: 500 * sim.Microsecond},
	}
	for in, want := range cases {
		got, err := parseArrival(in)
		if err != nil {
			t.Errorf("parseArrival(%q): %v", in, err)
			continue
		}
		if got.Process != want.Process || got.Mean != want.Mean || got.Shape != want.Shape {
			t.Errorf("parseArrival(%q) = %+v, want %+v", in, got, want)
		}
	}
	for _, bad := range []string{"", "poisson", "poisson:", "poisson:2ms:3", "gamma:2ms:x", "gamma:2ms:2:9", "uniform:2ms", "poisson:nope"} {
		if _, err := parseArrival(bad); err == nil {
			t.Errorf("parseArrival(%q) accepted", bad)
		}
	}
}

func TestBuildServeSpec(t *testing.T) {
	tree := uts.MustPreset("T3").Params
	spec, err := buildServeSpec("poisson:2ms,gamma:4ms:2", 3, 30*sim.Millisecond, tree)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatalf("built spec invalid: %v", err)
	}
	if len(spec.Tenants) != 3 || spec.Horizon != 30*sim.Millisecond {
		t.Fatalf("spec shape: %d tenants, horizon %v", len(spec.Tenants), spec.Horizon)
	}
	// Entries cycle across tenants: t2 wraps back to the poisson entry.
	if spec.Tenants[0].Arrival.Process != serve.ProcPoisson ||
		spec.Tenants[1].Arrival.Process != serve.ProcGamma ||
		spec.Tenants[2].Arrival.Process != serve.ProcPoisson {
		t.Fatalf("arrival cycling wrong: %+v", spec.Tenants)
	}
	for i, tn := range spec.Tenants {
		if tn.Name != fmt.Sprintf("t%d", i) || tn.Work.Kind != serve.WorkUTS {
			t.Fatalf("tenant %d malformed: %+v", i, tn)
		}
	}

	if _, err := buildServeSpec("poisson:2ms", 0, 30*sim.Millisecond, tree); err == nil {
		t.Error("zero tenants accepted")
	}
	if _, err := buildServeSpec("replay:/no/such/file.jsonl", 2, 30*sim.Millisecond, tree); err == nil {
		t.Error("missing replay file accepted")
	}

	// The replay path feeds each tenant its own trace from one log.
	path := filepath.Join(t.TempDir(), "arr.jsonl")
	if err := os.WriteFile(path, []byte(
		"{\"tenant\":0,\"at\":1000}\n{\"tenant\":1,\"at\":2000}\n{\"tenant\":0,\"at\":3000}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err = buildServeSpec("replay:"+path, 2, 30*sim.Millisecond, tree)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatalf("replay spec invalid: %v", err)
	}
	if len(spec.Tenants[0].Arrival.Trace) != 2 || len(spec.Tenants[1].Arrival.Trace) != 1 {
		t.Fatalf("replay traces wrong: %+v", spec.Tenants)
	}
}
