package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"distws/internal/core"
	"distws/internal/fault"
	"distws/internal/sim"
	"distws/internal/uts"
)

func TestParseCrashSpec(t *testing.T) {
	got, err := parseCrashSpec("3@40us, 11@2ms")
	if err != nil {
		t.Fatal(err)
	}
	want := []fault.Crash{
		{Rank: 3, At: sim.Time(40 * sim.Microsecond)},
		{Rank: 11, At: sim.Time(2 * sim.Millisecond)},
	}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("parseCrashSpec = %+v, want %+v", got, want)
	}
	for _, bad := range []string{"", "3", "3@", "@40us", "x@40us", "3@40", "3@-1ms", "-1@40us", "3@40us,,"} {
		if _, err := parseCrashSpec(bad); err == nil {
			t.Errorf("parseCrashSpec(%q) accepted", bad)
		}
	}
}

func TestParseStragglerSpec(t *testing.T) {
	got, err := parseStragglerSpec("5@3x2,7@1.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []fault.Straggler{
		{Rank: 5, Compute: 3, Send: 2},
		{Rank: 7, Compute: 1.5},
	}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("parseStragglerSpec = %+v, want %+v", got, want)
	}
	for _, bad := range []string{"", "5", "5@", "5@0.5", "5@3x0.5", "5@x2", "a@3", "5@3xb"} {
		if _, err := parseStragglerSpec(bad); err == nil {
			t.Errorf("parseStragglerSpec(%q) accepted", bad)
		}
	}
}

func TestBuildFaultPlanConflicts(t *testing.T) {
	if _, err := buildFaultPlan("plan.json", "3@40us", "", 1); err == nil ||
		!strings.Contains(err.Error(), "conflicts") {
		t.Fatalf("plan file + -crash accepted: %v", err)
	}
	if _, err := buildFaultPlan("plan.json", "", "5@3", 1); err == nil ||
		!strings.Contains(err.Error(), "conflicts") {
		t.Fatalf("plan file + -straggler accepted: %v", err)
	}
}

func TestBuildFaultPlanInline(t *testing.T) {
	plan, err := buildFaultPlan("", "", "", 1)
	if err != nil || plan != nil {
		t.Fatalf("no flags should yield no plan, got %+v, %v", plan, err)
	}
	plan, err = buildFaultPlan("", "3@40us", "5@3", 42)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 42 || len(plan.Crashes) != 1 || len(plan.Stragglers) != 1 {
		t.Fatalf("inline plan wrong: %+v", plan)
	}
}

func TestBuildFaultPlanFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	data := `{"seed": 9, "crashes": [{"rank": 2, "at": 50000}]}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	plan, err := buildFaultPlan(path, "", "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 9 || len(plan.Crashes) != 1 || plan.Crashes[0].Rank != 2 {
		t.Fatalf("parsed plan wrong: %+v", plan)
	}
	if _, err := buildFaultPlan(filepath.Join(t.TempDir(), "missing.json"), "", "", 1); err == nil {
		t.Fatal("missing plan file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"unknown_field": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := buildFaultPlan(bad, "", "", 1); err == nil {
		t.Fatal("malformed plan file accepted")
	}
}

// TestCheckShards covers the -shards flag validation, and pins that
// the combinations the flag cannot pre-check (a sharded run with a
// fault plan needing the send-path interposer) are still rejected by
// the engine the flag hands off to.
func TestCheckShards(t *testing.T) {
	if err := checkShards(1, 8); err != nil {
		t.Fatalf("shards=1: %v", err)
	}
	if err := checkShards(8, 8); err != nil {
		t.Fatalf("shards=ranks: %v", err)
	}
	for _, tc := range []struct{ shards, ranks int }{{0, 8}, {-2, 8}, {9, 8}} {
		if err := checkShards(tc.shards, tc.ranks); err == nil {
			t.Errorf("checkShards(%d, %d) accepted", tc.shards, tc.ranks)
		}
	}
	cfg := core.Config{
		Tree:   uts.MustPreset("T3S").Params,
		Ranks:  8,
		Shards: 2,
		Faults: &fault.Plan{Links: []fault.LinkFault{{From: fault.Wildcard, To: fault.Wildcard, Drop: 0.1}}},
	}
	if _, err := core.Run(cfg); err == nil || !strings.Contains(err.Error(), "interposer") {
		t.Fatalf("sharded run with link faults accepted: %v", err)
	}
}

// TestShardedRunMatchesSequential drives the same small run through
// the flag path's config at shards 1 and 4: the scalar results the
// command prints must be identical.
func TestShardedRunMatchesSequential(t *testing.T) {
	base := core.Config{
		Tree:  uts.MustPreset("T3S").Params,
		Ranks: 16,
		Seed:  1,
	}
	seq, err := core.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Shards = 4
	res, err := core.Run(par)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != seq.Makespan || res.Nodes != seq.Nodes ||
		res.StealRequests != seq.StealRequests || res.ChunksTransferred != seq.ChunksTransferred {
		t.Fatalf("shards=4 diverged: makespan %v vs %v, steals %d vs %d",
			res.Makespan, seq.Makespan, res.StealRequests, seq.StealRequests)
	}
}
