// Command obscheck validates observability artifacts so CI can gate on
// them (the obs-smoke target of make check):
//
//	obscheck t.jsonl t.json report.json
//
// Files ending in .jsonl are parsed with trace.ReadJSONL and must pass
// trace.Validate. Files ending in .json must be valid JSON and are
// additionally checked as run manifests (ledger.Validate, including the
// causal partition identities) when they carry the manifest "schema"
// key, as Chrome trace-event files (non-empty traceEvents) when they
// carry that key, or as non-empty tracetool -format json reports when
// they are arrays. Exit status is non-zero if any file fails; each file
// gets one OK/FAIL line.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"distws/internal/obs/ledger"
	"distws/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: obscheck file.jsonl|file.json ...")
		os.Exit(2)
	}
	failed := false
	for _, path := range os.Args[1:] {
		desc, err := check(path)
		if err != nil {
			fmt.Printf("FAIL %s: %v\n", path, err)
			failed = true
			continue
		}
		fmt.Printf("OK   %s: %s\n", path, desc)
	}
	if failed {
		os.Exit(1)
	}
}

func check(path string) (string, error) {
	switch {
	case strings.HasSuffix(path, ".jsonl"):
		return checkTrace(path)
	case strings.HasSuffix(path, ".json"):
		return checkJSON(path)
	default:
		return "", fmt.Errorf("unknown extension (want .jsonl or .json)")
	}
}

func checkTrace(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	tr, err := trace.ReadJSONL(f)
	if err != nil {
		return "", err
	}
	if err := tr.Validate(); err != nil {
		return "", err
	}
	return fmt.Sprintf("trace, %d ranks, %d sessions, %d events (%d dropped)",
		tr.Ranks(), tr.TotalSessions(), tr.TotalEvents(), tr.TotalEventsDropped()), nil
}

func checkJSON(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return "", fmt.Errorf("invalid JSON: %w", err)
	}
	switch v := doc.(type) {
	case map[string]any:
		if _, ok := v["schema"]; ok {
			m, err := ledger.Decode(data)
			if err != nil {
				return "", err
			}
			if err := m.Validate(); err != nil {
				return "", err
			}
			return fmt.Sprintf("run manifest %q, %d ranks, makespan %v",
				m.ID, m.Spec.Ranks, m.Makespan()), nil
		}
		events, ok := v["traceEvents"]
		if !ok {
			return "JSON object", nil
		}
		list, ok := events.([]any)
		if !ok || len(list) == 0 {
			return "", fmt.Errorf("chrome trace has no traceEvents")
		}
		return fmt.Sprintf("chrome trace, %d events", len(list)), nil
	case []any:
		if len(v) == 0 {
			return "", fmt.Errorf("empty JSON report array")
		}
		return fmt.Sprintf("report array, %d entries", len(v)), nil
	default:
		return "", fmt.Errorf("unexpected top-level JSON %T", doc)
	}
}
