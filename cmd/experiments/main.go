// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig09 -scale default
//	experiments -run all -scale quick -o results.txt
//
// Each experiment prints the rows/series the paper reports, an ASCII
// rendering of the figure, and machine-checked "shape checks" asserting
// the paper's qualitative findings. Exit status is nonzero if any shape
// check fails.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"distws/internal/harness"
)

func main() {
	var (
		runFlag   = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		scaleFlag = flag.String("scale", "default", "experiment scale: quick|default|full")
		seedFlag  = flag.Uint64("seed", 12345, "base random seed")
		outFlag   = flag.String("o", "", "also write the reports to this file")
		jsonFlag  = flag.String("json", "", "write machine-readable reports (JSON lines) to this file")
		csvFlag   = flag.String("csv", "", "write the result tables (CSV) to this file")
		listFlag  = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *listFlag {
		for _, id := range harness.IDs() {
			e, _ := harness.Lookup(id)
			fmt.Printf("%-20s %s\n", id, e.Title)
		}
		return
	}

	scale, err := harness.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var ids []string
	if *runFlag == "all" {
		ids = harness.IDs()
	} else {
		for _, id := range strings.Split(*runFlag, ",") {
			id = strings.TrimSpace(id)
			if _, ok := harness.Lookup(id); !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; -list shows the registry\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	var out io.Writer = os.Stdout
	if *outFlag != "" {
		f, err := os.Create(*outFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}
	openOpt := func(path string) *os.File {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return f
	}
	jsonOut := openOpt(*jsonFlag)
	csvOut := openOpt(*csvFlag)

	allPass := true
	start := time.Now()
	for _, id := range ids {
		e, _ := harness.Lookup(id)
		t0 := time.Now()
		rep, err := e.Run(scale, *seedFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Fprintln(out, rep.Render())
		fmt.Fprintf(out, "(%s in %v at scale %v)\n\n", id, time.Since(t0).Round(time.Millisecond), scale)
		if jsonOut != nil {
			if err := rep.WriteJSON(jsonOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if csvOut != nil {
			if err := rep.WriteCSV(csvOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintln(csvOut)
		}
		if !rep.Passed() {
			allPass = false
		}
	}
	if jsonOut != nil {
		jsonOut.Close()
	}
	if csvOut != nil {
		csvOut.Close()
	}
	fmt.Fprintf(out, "total: %d experiment(s) in %v\n", len(ids), time.Since(start).Round(time.Second))
	if !allPass {
		fmt.Fprintln(os.Stderr, "some shape checks FAILED")
		os.Exit(1)
	}
}
