// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig09 -scale default
//	experiments -run all -scale quick -o results.txt
//	experiments -matrix -scale quick -matrix-out artifacts/runs/latest -baseline artifacts/runs/baseline
//	experiments -diff a.manifest.json,b.manifest.json
//
// Each experiment prints the rows/series the paper reports, an ASCII
// rendering of the figure, and machine-checked "shape checks" asserting
// the paper's qualitative findings. Exit status is nonzero if any shape
// check fails.
//
// -matrix runs the scenario-matrix regression harness instead: the
// (tree × selector × ranks × fault plan) grid is executed, one run
// manifest per cell lands in -matrix-out, and when -baseline names a
// committed ledger the fresh cells are gated against it with per-metric
// tolerance bands (exit 1 on any violation; per-cell diff reports land
// next to the manifests for CI upload). -perturb N multiplies network
// latency to prove the gate trips. -diff renders the causal attribution
// report between two manifests (see also tracetool -diff).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"distws/internal/harness"
	"distws/internal/obs/diff"
	"distws/internal/obs/ledger"
)

func main() {
	var (
		runFlag   = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		scaleFlag = flag.String("scale", "default", "experiment scale: quick|default|full")
		seedFlag  = flag.Uint64("seed", 12345, "base random seed")
		outFlag   = flag.String("o", "", "also write the reports to this file")
		jsonFlag  = flag.String("json", "", "write machine-readable reports (JSON lines) to this file")
		csvFlag   = flag.String("csv", "", "write the result tables (CSV) to this file")
		listFlag  = flag.Bool("list", false, "list experiment IDs and exit")

		matrixFlag   = flag.Bool("matrix", false, "run the scenario-matrix regression harness")
		matrixOut    = flag.String("matrix-out", "artifacts/runs/latest", "directory for the matrix's run manifests")
		baselineFlag = flag.String("baseline", "", "baseline ledger directory to gate the matrix against")
		perturbFlag  = flag.Int("perturb", 0, "multiply network latency by N (>1) to prove the matrix gate fails")
		diffFlag     = flag.String("diff", "", "compare two run manifests: A,B")
	)
	flag.Parse()

	if *diffFlag != "" {
		runDiff(*diffFlag)
		return
	}

	if *listFlag {
		for _, id := range harness.IDs() {
			e, _ := harness.Lookup(id)
			fmt.Printf("%-20s %s\n", id, e.Title)
		}
		return
	}

	scale, err := harness.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *matrixFlag {
		runMatrix(scale, *seedFlag, *perturbFlag, *matrixOut, *baselineFlag)
		return
	}

	var ids []string
	if *runFlag == "all" {
		ids = harness.IDs()
	} else {
		for _, id := range strings.Split(*runFlag, ",") {
			id = strings.TrimSpace(id)
			if _, ok := harness.Lookup(id); !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; -list shows the registry\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	var out io.Writer = os.Stdout
	if *outFlag != "" {
		f, err := os.Create(*outFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}
	openOpt := func(path string) *os.File {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return f
	}
	jsonOut := openOpt(*jsonFlag)
	csvOut := openOpt(*csvFlag)

	allPass := true
	start := time.Now()
	for _, id := range ids {
		e, _ := harness.Lookup(id)
		t0 := time.Now()
		rep, err := e.Run(scale, *seedFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Fprintln(out, rep.Render())
		fmt.Fprintf(out, "(%s in %v at scale %v)\n\n", id, time.Since(t0).Round(time.Millisecond), scale)
		if jsonOut != nil {
			if err := rep.WriteJSON(jsonOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if csvOut != nil {
			if err := rep.WriteCSV(csvOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintln(csvOut)
		}
		if !rep.Passed() {
			allPass = false
		}
	}
	if jsonOut != nil {
		jsonOut.Close()
	}
	if csvOut != nil {
		csvOut.Close()
	}
	fmt.Fprintf(out, "total: %d experiment(s) in %v\n", len(ids), time.Since(start).Round(time.Second))
	if !allPass {
		fmt.Fprintln(os.Stderr, "some shape checks FAILED")
		os.Exit(1)
	}
}

// runMatrix executes the scenario matrix, writes one manifest per cell,
// and optionally gates the result against a committed baseline ledger.
func runMatrix(scale harness.Scale, seed uint64, perturb int, outDir, baselineDir string) {
	start := time.Now()
	opt := harness.MatrixOptions{Scale: scale, Seed: seed, LatencyScale: perturb}
	if perturb > 1 {
		fmt.Printf("matrix: PERTURBED run — network latency x%d (the gate below should fail)\n", perturb)
	}
	manifests, err := harness.RunMatrix(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	paths, err := harness.WriteMatrix(manifests, outDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("matrix: %d cell(s) at scale %v in %v\n", len(manifests), scale, time.Since(start).Round(time.Millisecond))
	for i, m := range manifests {
		fmt.Printf("  %-28s makespan %-12v efficiency %.3f  -> %s\n",
			m.ID, m.Makespan(), m.Result.Efficiency, paths[i])
	}
	if baselineDir == "" {
		return
	}

	gate, err := harness.CompareBaseline(baselineDir, manifests, diff.DefaultTolerances())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println()
	if err := gate.Report(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if gate.OK() {
		return
	}
	// Write the per-cell attribution reports next to the manifests so
	// CI can upload them: each regressed cell gets the full causal diff
	// against its baseline, not just the violated numbers.
	base, err := ledger.ReadDir(baselineDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	reported := map[string]bool{}
	for _, v := range gate.Violations {
		id := v.Name[:strings.IndexByte(v.Name, '/')]
		if reported[id] {
			continue
		}
		reported[id] = true
		m := manifestByID(manifests, id)
		if m == nil || base[id] == nil {
			continue
		}
		path := filepath.Join(outDir, "diff-"+id+".txt")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		werr := diff.Compute(base[id], m).WriteText(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
		fmt.Printf("attribution report for %s: %s\n", id, path)
	}
	os.Exit(1)
}

func manifestByID(ms []*ledger.Manifest, id string) *ledger.Manifest {
	for _, m := range ms {
		if m.ID == id {
			return m
		}
	}
	return nil
}

// runDiff renders the causal attribution report between two manifests.
func runDiff(pair string) {
	parts := strings.Split(pair, ",")
	if len(parts) != 2 {
		fmt.Fprintf(os.Stderr, "-diff wants exactly two comma-separated manifest paths, got %q\n", pair)
		os.Exit(2)
	}
	load := func(path string) *ledger.Manifest {
		m, err := ledger.ReadFile(strings.TrimSpace(path))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return m
	}
	d := diff.Compute(load(parts[0]), load(parts[1]))
	if err := d.CheckIdentities(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := d.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
