package sample

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"distws/internal/rng"
)

func TestErrors(t *testing.T) {
	if _, err := NewDiscrete(nil); !errors.Is(err, ErrNoOutcomes) {
		t.Fatalf("nil weights: %v", err)
	}
	if _, err := NewDiscrete([]float64{1, -2, 3}); !errors.Is(err, ErrNegativeWeight) {
		t.Fatalf("negative weight: %v", err)
	}
	if _, err := NewDiscrete([]float64{0, 0}); !errors.Is(err, ErrZeroMass) {
		t.Fatalf("zero mass: %v", err)
	}
}

func TestMustNewDiscretePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewDiscrete did not panic on bad input")
		}
	}()
	MustNewDiscrete(nil)
}

func TestSingleOutcome(t *testing.T) {
	d := MustNewDiscrete([]float64{3.7})
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		if d.Sample(r) != 0 {
			t.Fatal("single-outcome distribution sampled non-zero")
		}
	}
	if d.PDF(0) != 1 {
		t.Fatalf("PDF(0) = %v", d.PDF(0))
	}
}

func TestZeroWeightNeverSampled(t *testing.T) {
	d := MustNewDiscrete([]float64{1, 0, 1, 0, 1})
	r := rng.New(2)
	for i := 0; i < 100000; i++ {
		v := d.Sample(r)
		if v == 1 || v == 3 {
			t.Fatalf("sampled zero-weight outcome %d", v)
		}
	}
}

func TestUniformCase(t *testing.T) {
	const n = 8
	w := make([]float64, n)
	for i := range w {
		w[i] = 2.5
	}
	d := MustNewDiscrete(w)
	for i := 0; i < n; i++ {
		if math.Abs(d.PDF(i)-1.0/n) > 1e-12 {
			t.Fatalf("PDF(%d) = %v", i, d.PDF(i))
		}
	}
	counts := sampleCounts(d, 80000, 3)
	for i, c := range counts {
		if math.Abs(float64(c)/80000-1.0/n) > 0.01 {
			t.Fatalf("outcome %d frequency %v, want ~%v", i, float64(c)/80000, 1.0/n)
		}
	}
}

func TestSkewedFrequencies(t *testing.T) {
	w := []float64{1, 2, 3, 4}
	d := MustNewDiscrete(w)
	const n = 400000
	counts := sampleCounts(d, n, 4)
	for i, c := range counts {
		want := w[i] / 10
		got := float64(c) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("outcome %d frequency %v, want %v", i, got, want)
		}
	}
}

func sampleCounts(d *Discrete, n int, seed uint64) []int {
	r := rng.New(seed)
	counts := make([]int, d.N())
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	return counts
}

// Property: construction succeeds for any positive weight vector and
// samples stay in range; PDF sums to 1.
func TestPropertyValidConstruction(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		w := make([]float64, len(raw))
		anyPositive := false
		for i, v := range raw {
			w[i] = float64(v)
			if v > 0 {
				anyPositive = true
			}
		}
		d, err := NewDiscrete(w)
		if !anyPositive {
			return errors.Is(err, ErrZeroMass)
		}
		if err != nil {
			return false
		}
		sum := 0.0
		for i := 0; i < d.N(); i++ {
			sum += d.PDF(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		r := rng.New(99)
		for i := 0; i < 200; i++ {
			v := d.Sample(r)
			if v < 0 || v >= len(w) || w[v] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: empirical frequencies track the PDF for random weights
// (coarse bound, large samples on small supports).
func TestPropertyFrequenciesTrackPDF(t *testing.T) {
	f := func(raw [5]uint8, seed uint64) bool {
		w := make([]float64, 5)
		anyPositive := false
		for i, v := range raw {
			w[i] = float64(v)
			if v > 0 {
				anyPositive = true
			}
		}
		if !anyPositive {
			return true
		}
		d := MustNewDiscrete(w)
		const n = 50000
		r := rng.New(seed)
		counts := make([]int, 5)
		for i := 0; i < n; i++ {
			counts[d.Sample(r)]++
		}
		for i := range w {
			if math.Abs(float64(counts[i])/n-d.PDF(i)) > 0.02 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeSupport(t *testing.T) {
	// Mimic the paper's use: 8192 ranks with 1/distance weights.
	const n = 8192
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(1+i%37)
	}
	d := MustNewDiscrete(w)
	r := rng.New(5)
	counts := make([]int, n)
	for i := 0; i < 1_000_000; i++ {
		counts[d.Sample(r)]++
	}
	// Aggregate by weight class to get statistically meaningful bins.
	classTotal := map[int]float64{}
	classCount := map[int]int{}
	for i := range w {
		classTotal[i%37] += d.PDF(i)
		classCount[i%37] += counts[i]
	}
	for class, p := range classTotal {
		got := float64(classCount[class]) / 1_000_000
		if math.Abs(got-p) > 0.005 {
			t.Fatalf("class %d frequency %v, want %v", class, got, p)
		}
	}
}

func BenchmarkSample8192(b *testing.B) {
	w := make([]float64, 8192)
	for i := range w {
		w[i] = 1 / float64(1+i)
	}
	d := MustNewDiscrete(w)
	r := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += d.Sample(r)
	}
	_ = sink
}

func BenchmarkBuild8192(b *testing.B) {
	w := make([]float64, 8192)
	for i := range w {
		w[i] = 1 / float64(1+i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = MustNewDiscrete(w)
	}
}
