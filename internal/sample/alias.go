// Package sample implements O(1) sampling from arbitrary discrete
// probability distributions using Walker's alias method.
//
// It replaces the GNU Scientific Library's gsl_ran_discrete, which the
// paper's modified UTS uses to sample the distance-skewed victim
// distribution. Construction is O(n); each draw costs one uniform draw
// and at most two table lookups.
package sample

import (
	"errors"
	"fmt"

	"distws/internal/rng"
)

// Discrete is a preprocessed discrete distribution over {0, ..., n-1}.
type Discrete struct {
	prob  []float64 // acceptance probability of the primary bucket
	alias []int32   // fallback outcome per bucket
	pdf   []float64 // normalized input weights, kept for inspection
}

// Errors returned by NewDiscrete.
var (
	ErrNoOutcomes     = errors.New("sample: empty weight vector")
	ErrNegativeWeight = errors.New("sample: negative weight")
	ErrZeroMass       = errors.New("sample: all weights are zero")
)

// NewDiscrete builds an alias table from non-negative weights. Weights
// need not be normalized. At least one weight must be positive.
func NewDiscrete(weights []float64) (*Discrete, error) {
	n := len(weights)
	if n == 0 {
		return nil, ErrNoOutcomes
	}
	var total float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("%w: weight[%d] = %v", ErrNegativeWeight, i, w)
		}
		total += w
	}
	if total == 0 {
		return nil, ErrZeroMass
	}

	d := &Discrete{
		prob:  make([]float64, n),
		alias: make([]int32, n),
		pdf:   make([]float64, n),
	}
	// Scale so the average bucket mass is exactly 1.
	scaled := make([]float64, n)
	for i, w := range weights {
		p := w / total
		d.pdf[i] = p
		scaled[i] = p * float64(n)
	}

	// Vose's stable two-worklist construction.
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i := n - 1; i >= 0; i-- {
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		d.prob[s] = scaled[s]
		d.alias[s] = l
		scaled[l] = (scaled[l] + scaled[s]) - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Whatever remains should have mass 1 up to floating-point error.
	for _, l := range large {
		d.prob[l] = 1
		d.alias[l] = l
	}
	for _, s := range small {
		d.prob[s] = 1
		d.alias[s] = s
	}
	return d, nil
}

// MustNewDiscrete is like NewDiscrete but panics on error. For use with
// weight vectors known to be valid by construction.
func MustNewDiscrete(weights []float64) *Discrete {
	d, err := NewDiscrete(weights)
	if err != nil {
		panic(err)
	}
	return d
}

// N returns the number of outcomes.
func (d *Discrete) N() int { return len(d.prob) }

// PDF returns the normalized probability of outcome i.
func (d *Discrete) PDF(i int) float64 { return d.pdf[i] }

// Sample draws one outcome using the given generator.
func (d *Discrete) Sample(r *rng.Xoshiro256) int {
	i := r.Intn(len(d.prob))
	if r.Float64() < d.prob[i] {
		return i
	}
	return int(d.alias[i])
}
