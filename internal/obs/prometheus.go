package obs

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): counters as plain samples,
// histograms as cumulative `_bucket{le="..."}` series with `_sum` and
// `_count`, matrices as `{from="i",to="j"}` labelled counters with
// zero cells omitted. Metric families are emitted in sorted name
// order, so for a deterministic run the exposition text is
// byte-for-byte reproducible — a property the tests assert.
func (g *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, name := range g.counterNames() {
		c := g.Counter(name)
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n", pn)
		fmt.Fprintf(bw, "%s %d\n", pn, c.Value())
	}
	for _, name := range g.histNames() {
		h := g.Histogram(name)
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", pn)
		var cum uint64
		for i := 0; i < histBuckets; i++ {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			cum += n
			_, hi := bucketBounds(i)
			fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", pn, hi, cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count())
		fmt.Fprintf(bw, "%s_sum %d\n", pn, h.Sum())
		fmt.Fprintf(bw, "%s_count %d\n", pn, h.Count())
	}
	for _, name := range g.matrixNames() {
		m := g.Matrix(name, 0)
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n", pn)
		for from := 0; from < m.N(); from++ {
			for to := 0; to < m.N(); to++ {
				if v := m.At(from, to); v > 0 {
					fmt.Fprintf(bw, "%s{from=\"%d\",to=\"%d\"} %d\n", pn, from, to, v)
				}
			}
		}
	}
	return bw.Flush()
}

// promName sanitizes a metric name to the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}
