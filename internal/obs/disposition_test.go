package obs

import (
	"strings"
	"testing"

	"distws/internal/trace"
)

// TestKindDispositionCoversEveryEventKind is the drift gate for the
// exporter disposition table: every event kind in the trace vocabulary
// must declare both a Chrome rendering and a Prometheus treatment.
// Adding a kind to internal/trace without extending kindDispositions
// fails here, so job-style event kinds cannot land without an explicit
// exporter decision.
func TestKindDispositionCoversEveryEventKind(t *testing.T) {
	for k := trace.EventKind(0); k < trace.NumEventKinds; k++ {
		d := KindDisposition(k)
		if d.Chrome == "" {
			t.Errorf("kind %v has no Chrome disposition; extend kindDispositions", k)
		}
		if d.Prometheus == "" {
			t.Errorf("kind %v has no Prometheus disposition; extend kindDispositions", k)
		}
		if d.Prometheus != "" && !strings.HasPrefix(d.Prometheus, "sim_") && !strings.HasPrefix(d.Prometheus, "none:") {
			t.Errorf("kind %v Prometheus disposition %q must name a sim_* metric or start with \"none:\" and a reason", k, d.Prometheus)
		}
	}
	if KindDisposition(trace.NumEventKinds) != (ExportDisposition{}) {
		t.Error("out-of-range kind returned a non-zero disposition")
	}
}

// TestJobKindsHaveServingMetrics pins the serving event kinds to their
// metric families: the disposition table is where that contract lives.
func TestJobKindsHaveServingMetrics(t *testing.T) {
	want := map[trace.EventKind]string{
		trace.EvJobArrive: "sim_serve_jobs_arrived_total",
		trace.EvJobAdmit:  "sim_serve_jobs_admitted_total",
		trace.EvJobReject: "sim_serve_jobs_rejected_total",
		trace.EvJobDone:   "sim_serve_jobs_done_total",
	}
	for k, metric := range want {
		if d := KindDisposition(k); !strings.Contains(d.Prometheus, metric) {
			t.Errorf("kind %v disposition %q does not reference %s", k, d.Prometheus, metric)
		}
	}
}
