package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a set of named metrics: monotonic counters, log-bucketed
// histograms, and dense per-link matrices. Metric creation takes a
// mutex; every update after that is a lock-free atomic, so the hot
// paths of both substrates share one implementation. In the simulator
// all updates happen on one goroutine in deterministic event order, so
// the final registry contents — and the exported text — are a pure
// function of the run.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	matrices map[string]*Matrix
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		matrices: make(map[string]*Matrix),
	}
}

// Counter returns the named counter, creating it on first use.
func (g *Registry) Counter(name string) *Counter {
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.counters[name]
	if !ok {
		c = &Counter{}
		g.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (g *Registry) Histogram(name string) *Histogram {
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.hists[name]
	if !ok {
		h = &Histogram{}
		g.hists[name] = h
	}
	return h
}

// Matrix returns the named n×n matrix, creating it on first use. A
// matrix costs n*n*8 bytes — callers gate creation at large n (the
// simulator caps it at MatrixRankLimit ranks). An existing matrix with
// a different size is returned as-is; callers pick one size per name.
func (g *Registry) Matrix(name string, n int) *Matrix {
	g.mu.Lock()
	defer g.mu.Unlock()
	m, ok := g.matrices[name]
	if !ok {
		m = &Matrix{n: n, cells: make([]atomic.Uint64, n*n)}
		g.matrices[name] = m
	}
	return m
}

// counterNames returns the registered counter names, sorted, so every
// export is deterministic.
func (g *Registry) counterNames() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	names := make([]string, 0, len(g.counters))
	for n := range g.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (g *Registry) histNames() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	names := make([]string, 0, len(g.hists))
	for n := range g.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (g *Registry) matrixNames() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	names := make([]string, 0, len(g.matrices))
	for n := range g.matrices {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Counter is a monotonic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one. Nil-safe, so call sites need no enabled check.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// histBuckets is the bucket count: bucket i holds values whose
// bits.Len64 is i, i.e. {0}, {1}, {2,3}, {4..7}, ... — 65 buckets
// cover the whole uint64 range.
const histBuckets = 65

// Histogram counts non-negative int64 observations in power-of-two
// buckets. It trades per-value storage for O(1) memory and lock-free
// updates; quantiles are estimated by linear interpolation inside the
// resolved bucket, so they carry at most a 2× bucket-width error —
// the right tool for live dashboards, while exact percentiles come
// from the event trace (StealLatency).
type Histogram struct {
	count, sum atomic.Uint64
	buckets    [histBuckets]atomic.Uint64
}

// Observe records one value. Negative values clamp to zero (virtual
// durations are non-negative by construction; the clamp keeps a buggy
// caller from corrupting bucket math). Nil-safe.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(uint64(v))
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observation, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// bucketBounds returns the value range [lo, hi] covered by bucket i.
func bucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 0
	}
	return uint64(1) << (i - 1), uint64(1)<<i - 1
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the buckets,
// interpolating linearly inside the bucket the quantile lands in.
// Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based.
	target := uint64(q*float64(total-1)) + 1
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if cum+n >= target {
			lo, hi := bucketBounds(i)
			if n == 1 || hi == lo {
				return float64(lo)
			}
			frac := float64(target-cum-1) / float64(n-1)
			return float64(lo) + frac*float64(hi-lo)
		}
		cum += n
	}
	return 0
}

// Matrix is a dense n×n grid of counters, indexed (from, to) — the
// per-link traffic matrix. Out-of-range indices are ignored rather
// than panicking: observability must never take the system down.
type Matrix struct {
	n     int
	cells []atomic.Uint64
}

// N returns the matrix dimension. Zero on nil.
func (m *Matrix) N() int {
	if m == nil {
		return 0
	}
	return m.n
}

// Inc adds one to cell (from, to). Nil-safe.
func (m *Matrix) Inc(from, to int) { m.Add(from, to, 1) }

// Add adds d to cell (from, to). Nil-safe.
func (m *Matrix) Add(from, to int, d uint64) {
	if m == nil || from < 0 || from >= m.n || to < 0 || to >= m.n {
		return
	}
	m.cells[from*m.n+to].Add(d)
}

// At returns cell (from, to).
func (m *Matrix) At(from, to int) uint64 {
	if m == nil || from < 0 || from >= m.n || to < 0 || to >= m.n {
		return 0
	}
	return m.cells[from*m.n+to].Load()
}

// Rows copies the matrix out as [from][to] counts.
func (m *Matrix) Rows() [][]uint64 {
	if m == nil {
		return nil
	}
	out := make([][]uint64, m.n)
	for i := 0; i < m.n; i++ {
		row := make([]uint64, m.n)
		for j := 0; j < m.n; j++ {
			row[j] = m.cells[i*m.n+j].Load()
		}
		out[i] = row
	}
	return out
}
