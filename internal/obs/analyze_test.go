package obs

import (
	"strings"
	"testing"

	"distws/internal/trace"
)

// analysisTrace builds a 3-rank trace with a known steal history:
//
//	rank 0 steals from 1 at t=10, work (8 nodes) arrives t=30 (success, 20ns)
//	rank 0 steals from 2 at t=50, refusal arrives t=60    (refused, 10ns)
//	rank 2 steals from 0 at t=55, gives up at t=95        (aborted, 40ns)
//
// then the termination token makes two hops (1 recv at 105, 2 recv at
// 110) and the run ends at 120.
func analysisTrace() *trace.Trace {
	return &trace.Trace{
		End:         120,
		Transitions: make([][]trace.Transition, 3),
		Sessions:    make([][]trace.Session, 3),
		Events: [][]trace.Event{
			{
				{Time: 10, Kind: trace.EvStealSend, Peer: 1},
				{Time: 30, Kind: trace.EvWorkRecv, Peer: 1, Arg: 8},
				{Time: 50, Kind: trace.EvStealSend, Peer: 2},
				{Time: 60, Kind: trace.EvNoWorkRecv, Peer: 2},
				{Time: 100, Kind: trace.EvTokenSend, Peer: 1},
			},
			{
				{Time: 20, Kind: trace.EvStealRecv, Peer: 0},
				{Time: 20, Kind: trace.EvWorkSend, Peer: 0, Arg: 8},
				{Time: 105, Kind: trace.EvTokenRecv, Peer: 0},
				{Time: 106, Kind: trace.EvTokenSend, Peer: 2},
			},
			{
				{Time: 52, Kind: trace.EvStealRecv, Peer: 0},
				{Time: 53, Kind: trace.EvNoWorkSend, Peer: 0},
				{Time: 55, Kind: trace.EvStealSend, Peer: 0},
				{Time: 95, Kind: trace.EvStealAbort, Peer: -1},
				{Time: 110, Kind: trace.EvTokenRecv, Peer: 1},
			},
		},
		EventsDropped: make([]uint64, 3),
	}
}

func TestPairSteals(t *testing.T) {
	pairs := PairSteals(analysisTrace())
	want := []StealPair{
		{Thief: 0, Victim: 1, Send: 10, End: 30, Outcome: StealSuccess, Nodes: 8},
		{Thief: 0, Victim: 2, Send: 50, End: 60, Outcome: StealRefused},
		{Thief: 2, Victim: 0, Send: 55, End: 95, Outcome: StealAborted},
	}
	if len(pairs) != len(want) {
		t.Fatalf("got %d pairs, want %d: %+v", len(pairs), len(want), pairs)
	}
	for i, p := range pairs {
		if p != want[i] {
			t.Errorf("pair %d = %+v, want %+v", i, p, want[i])
		}
	}
	if got := pairs[0].Latency(); got != 20 {
		t.Fatalf("latency = %v, want 20", got)
	}
}

func TestPairStealsEvictionAndOpenTail(t *testing.T) {
	tr := &trace.Trace{
		End:         100,
		Transitions: make([][]trace.Transition, 1),
		Sessions:    make([][]trace.Session, 1),
		Events: [][]trace.Event{{
			// First send's close event was evicted: the second send must
			// drop the orphan. The final send is still open at trace end
			// and must be dropped too.
			{Time: 10, Kind: trace.EvStealSend, Peer: 0},
			{Time: 20, Kind: trace.EvStealSend, Peer: 0},
			{Time: 30, Kind: trace.EvNoWorkRecv, Peer: 0},
			{Time: 40, Kind: trace.EvStealSend, Peer: 0},
		}},
	}
	pairs := PairSteals(tr)
	if len(pairs) != 1 || pairs[0].Send != 20 || pairs[0].Outcome != StealRefused {
		t.Fatalf("pairs = %+v, want single refused pair sent at 20", pairs)
	}
}

func TestStealLatency(t *testing.T) {
	st := StealLatency(PairSteals(analysisTrace()))
	if st.Count != 3 || st.Success != 1 || st.Refused != 1 || st.Aborted != 1 {
		t.Fatalf("counts: %+v", st)
	}
	if st.Mean != 23 { // (20+10+40)/3, integer ns
		t.Fatalf("mean = %v, want 23", st.Mean)
	}
	if st.P50 != 20 || st.Max != 40 {
		t.Fatalf("p50 = %v max = %v", st.P50, st.Max)
	}
	if st.SuccessP50 != 20 || st.NodesMoved != 8 {
		t.Fatalf("success stats: %+v", st)
	}
	if empty := StealLatency(nil); empty.Count != 0 || empty.Mean != 0 {
		t.Fatalf("empty stats: %+v", empty)
	}
}

func TestTraffic(t *testing.T) {
	m := Traffic(analysisTrace())
	want := [][]uint64{
		{0, 2, 1}, // steal-send to 1, steal-send to 2, token-send to 1
		{1, 0, 1}, // work-send to 0, token-send to 2
		{2, 0, 0}, // no-work-send + steal-send to 0
	}
	for i := range want {
		for j := range want[i] {
			if m[i][j] != want[i][j] {
				t.Fatalf("traffic[%d][%d] = %d, want %d (full: %v)", i, j, m[i][j], want[i][j], m)
			}
		}
	}
	if Traffic(&trace.Trace{Transitions: make([][]trace.Transition, 2)}) != nil {
		t.Fatal("eventless trace should yield nil traffic")
	}
}

func TestRenderHeatmap(t *testing.T) {
	m := Traffic(analysisTrace())
	out := RenderHeatmap(m, 16)
	if !strings.Contains(out, "3 ranks as 3x3 tiles") {
		t.Fatalf("header wrong:\n%s", out)
	}
	if rows := strings.Count(out, "|\n"); rows != 3 {
		t.Fatalf("want 3 heatmap rows, got %d:\n%s", rows, out)
	}
	// Aggregation path: 3 ranks into 2 tiles must not panic and must
	// conserve the hot cells.
	small := RenderHeatmap(m, 2)
	if !strings.Contains(small, "2x2 tiles") {
		t.Fatalf("aggregated header wrong:\n%s", small)
	}
	if got := RenderHeatmap(nil, 4); got != "(no traffic)\n" {
		t.Fatalf("empty heatmap = %q", got)
	}
}

func TestTerminationTail(t *testing.T) {
	tr := analysisTrace()
	st := TerminationTail(tr, PairSteals(tr))
	if st.LastTransfer != 30 {
		t.Fatalf("last transfer = %v, want 30", st.LastTransfer)
	}
	if st.Duration != 90 {
		t.Fatalf("tail duration = %v, want 90", st.Duration)
	}
	if st.Fraction != 0.75 {
		t.Fatalf("tail fraction = %v, want 0.75", st.Fraction)
	}
	if st.FailedInTail != 2 {
		t.Fatalf("failed in tail = %d, want 2", st.FailedInTail)
	}
	if st.TokenHopsInTail != 2 || st.TokenHopsTotal != 2 {
		t.Fatalf("token hops: %+v", st)
	}
}

func TestPairStealsEmptyTrace(t *testing.T) {
	if pairs := PairSteals(&trace.Trace{}); len(pairs) != 0 {
		t.Fatalf("empty trace produced pairs: %+v", pairs)
	}
	// A trace with transitions but no event log behaves the same.
	tr := &trace.Trace{End: 50, Transitions: make([][]trace.Transition, 2)}
	if pairs := PairSteals(tr); len(pairs) != 0 {
		t.Fatalf("eventless trace produced pairs: %+v", pairs)
	}
	st := TerminationTail(&trace.Trace{}, nil)
	if st.Duration != 0 || st.Fraction != 0 || st.TokenHopsTotal != 0 {
		t.Fatalf("empty-trace tail = %+v", st)
	}
}

func TestPairStealsSingleRank(t *testing.T) {
	// A single rank never steals: only local quantum events appear, and
	// the scan must ignore them all.
	tr := &trace.Trace{
		End:         100,
		Transitions: make([][]trace.Transition, 1),
		Sessions:    make([][]trace.Session, 1),
		Events: [][]trace.Event{{
			{Time: 0, Kind: trace.EvQuantumStart, Peer: -1, Arg: 1},
			{Time: 90, Kind: trace.EvQuantumEnd, Peer: -1, Arg: 90},
			{Time: 100, Kind: trace.EvTerminate, Peer: -1},
		}},
	}
	if pairs := PairSteals(tr); len(pairs) != 0 {
		t.Fatalf("single-rank trace produced pairs: %+v", pairs)
	}
	st := TerminationTail(tr, nil)
	// No transfer ever happened, so the "tail" spans the whole run.
	if st.LastTransfer != 0 || st.Duration != 100 || st.Fraction != 1 {
		t.Fatalf("single-rank tail = %+v", st)
	}
	if st.TokenHopsTotal != 0 || st.FailedInTail != 0 {
		t.Fatalf("single-rank tail = %+v", st)
	}
}

func TestPairStealsLateReplyAfterAbort(t *testing.T) {
	// Aborting steals: the thief gives up at 40, but the victim's work
	// reply was already in flight and lands at 60. The transaction ended
	// at the abort; the late delivery must not reopen or corrupt it.
	tr := &trace.Trace{
		End:         100,
		Transitions: make([][]trace.Transition, 2),
		Sessions:    make([][]trace.Session, 2),
		Events: [][]trace.Event{{
			{Time: 10, Kind: trace.EvStealSend, Peer: 1, Arg: 5},
			{Time: 40, Kind: trace.EvStealAbort, Peer: 1, Arg: 5},
			{Time: 60, Kind: trace.EvWorkRecv, Peer: 1, Arg: 12},
		}, nil},
	}
	pairs := PairSteals(tr)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %+v, want exactly one", pairs)
	}
	p := pairs[0]
	if p.Outcome != StealAborted || p.Send != 10 || p.End != 40 || p.Nodes != 0 {
		t.Fatalf("pair = %+v, want abort closed at 40 with no nodes", p)
	}
	// The banked late reply still counts as work for the tail analysis
	// only via successful pairs — of which there are none here.
	st := TerminationTail(tr, pairs)
	if st.LastTransfer != 0 || st.FailedInTail != 1 {
		t.Fatalf("tail = %+v", st)
	}
}

func TestTerminationTailTransferAtEnd(t *testing.T) {
	// A transfer completing exactly at trace end leaves a zero-length
	// tail and a zero fraction; nothing divides by zero.
	tr := &trace.Trace{
		End:         80,
		Transitions: make([][]trace.Transition, 2),
		Sessions:    make([][]trace.Session, 2),
		Events: [][]trace.Event{{
			{Time: 10, Kind: trace.EvStealSend, Peer: 1},
			{Time: 80, Kind: trace.EvWorkRecv, Peer: 1, Arg: 4},
		}, nil},
	}
	st := TerminationTail(tr, PairSteals(tr))
	if st.LastTransfer != 80 || st.Duration != 0 || st.Fraction != 0 {
		t.Fatalf("tail = %+v", st)
	}
}
