package obs

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler bundling the run's observability
// endpoints:
//
//	/metrics       the registry in Prometheus text exposition format
//	/debug/vars    expvar (Go runtime memstats, cmdline)
//	/debug/pprof/  the standard profiling endpoints (heap, profile,
//	               goroutine, trace, ...)
//
// cmd/uts and the shared-memory example mount it behind their opt-in
// -obs :addr flag; scraping /metrics during a long run watches steal
// counters and latency buckets move live, and /debug/pprof profiles
// the simulator itself (the ROADMAP's "fast as the hardware allows"
// work reads its numbers from here). This package never reads the
// host clock — handlers only render state that callers put in the
// registry.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			_ = reg.WritePrometheus(w)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "distws observability\n\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}
