package causal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"distws/internal/trace"
)

// packageSources concatenates this package's non-test Go sources,
// excluding coverage.go itself (the table must not satisfy its own
// reference check).
func packageSources(t *testing.T) string {
	t.Helper()
	names, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, name := range names {
		if strings.HasSuffix(name, "_test.go") || name == "coverage.go" {
			continue
		}
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(data)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestEveryEventKindHasDisposition is the exhaustiveness gate for the
// protocol vocabulary: adding a kind to internal/trace without deciding
// what the causal reconstruction does about it fails here, and a
// disposition that drifts from the code (a "consumed" kind no source
// mentions, an "inert" kind the code quietly started reading) fails
// too.
func TestEveryEventKindHasDisposition(t *testing.T) {
	src := packageSources(t)
	for k := trace.EventKind(0); k < trace.NumEventKinds; k++ {
		disp := kindDisposition[k]
		if disp == "" {
			t.Errorf("%v has no disposition: decide whether the causal reconstruction consumes or ignores it", k)
			continue
		}
		ident := fmt.Sprintf("Ev%s", camel(k.String()))
		referenced := strings.Contains(src, "trace."+ident)
		switch {
		case strings.HasPrefix(disp, "consumed:"):
			if !referenced {
				t.Errorf("%v is declared consumed but no source in this package references trace.%s", k, ident)
			}
		case strings.HasPrefix(disp, "inert:"):
			if referenced {
				t.Errorf("%v is declared inert but a source in this package references trace.%s; update its disposition", k, ident)
			}
		default:
			t.Errorf("%v disposition %q must start with \"consumed:\" or \"inert:\"", k, disp)
		}
	}
}

// camel maps a kind's wire name back to its Go identifier suffix:
// "steal-send" -> "StealSend", "nowork-recv" -> "NoWorkRecv".
func camel(wire string) string {
	var sb strings.Builder
	for _, part := range strings.Split(wire, "-") {
		if part == "nowork" {
			sb.WriteString("NoWork")
			continue
		}
		sb.WriteString(strings.ToUpper(part[:1]))
		sb.WriteString(part[1:])
	}
	return sb.String()
}

// TestDispositionIdentifierMapping pins the wire-name-to-identifier
// helper against the real constants, so a renamed kind cannot silently
// defeat the reference check above.
func TestDispositionIdentifierMapping(t *testing.T) {
	cases := map[trace.EventKind]string{
		trace.EvStealSend:  "EvStealSend",
		trace.EvNoWorkRecv: "EvNoWorkRecv",
		trace.EvQuantumEnd: "EvQuantumEnd",
		trace.EvMsgDrop:    "EvMsgDrop",
	}
	for k, want := range cases {
		if got := "Ev" + camel(k.String()); got != want {
			t.Errorf("identifier for %v = %s, want %s", k, got, want)
		}
	}
}
