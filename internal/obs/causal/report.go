package causal

import (
	"fmt"
	"io"

	"distws/internal/obs"
	"distws/internal/sim"
)

// pct renders part as a percentage of whole, safe on whole == 0.
func pct(part, whole sim.Duration) float64 {
	if whole <= 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// WriteBlameText renders the blame attribution as a deterministic
// fixed-width table: one row per rank, then the aggregate with each
// category's share of total rank-time (ranks × makespan).
func WriteBlameText(w io.Writer, b *Blame) error {
	makespan := sim.Duration(b.End)
	if _, err := fmt.Fprintf(w, "idle-time blame: %d ranks, makespan %s\n", b.Ranks(), makespan); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%6s %14s %14s %14s %14s %14s\n",
		"rank", "busy", "startup", "search", "in-flight", "term-tail"); err != nil {
		return err
	}
	for r, rb := range b.PerRank {
		if _, err := fmt.Fprintf(w, "%6d %14s %14s %14s %14s %14s\n",
			r, rb.Busy, rb.Startup, rb.Search, rb.InFlight, rb.TermTail); err != nil {
			return err
		}
	}
	tot := b.Total
	whole := tot.Total()
	_, err := fmt.Fprintf(w, "%6s %13.1f%% %13.1f%% %13.1f%% %13.1f%% %13.1f%%\n",
		"all",
		pct(tot.Busy, whole), pct(tot.Startup, whole), pct(tot.Search, whole),
		pct(tot.InFlight, whole), pct(tot.TermTail, whole))
	return err
}

// criticalSegmentLimit caps the per-segment listing in the text report;
// the decomposition table above it always covers the whole path.
const criticalSegmentLimit = 64

// WriteCriticalText renders the critical path: the makespan
// decomposition by segment kind, then the segment chain (capped, the
// cap is reported).
func WriteCriticalText(w io.Writer, p Path) error {
	if _, err := fmt.Fprintf(w, "critical path: %d segments, makespan %s\n", len(p.Segments), p.Total); err != nil {
		return err
	}
	for k := SegmentKind(0); k < NumSegmentKinds; k++ {
		if _, err := fmt.Fprintf(w, "%12s %14s %6.1f%%\n", k, p.ByKind[k], pct(p.ByKind[k], p.Total)); err != nil {
			return err
		}
	}
	n := len(p.Segments)
	shown := n
	if shown > criticalSegmentLimit {
		shown = criticalSegmentLimit
	}
	for _, s := range p.Segments[:shown] {
		if _, err := fmt.Fprintf(w, "  %-10s rank %4d  [%s, %s)  %s\n",
			s.Kind, s.Rank, sim.Duration(s.Start), sim.Duration(s.End), s.Duration()); err != nil {
			return err
		}
	}
	if n > shown {
		if _, err := fmt.Fprintf(w, "  ... %d more segments\n", n-shown); err != nil {
			return err
		}
	}
	return nil
}

// WriteLineageText renders the work-lineage summary: the
// migration-depth histogram and the route of the deepest steal chain.
func WriteLineageText(w io.Writer, g *Graph) error {
	depths := g.MigrationDepths()
	if _, err := fmt.Fprintf(w, "work lineage: %d transfers, max migration depth %d\n",
		len(g.Transfers), g.MaxDepth()); err != nil {
		return err
	}
	for d := 1; d < len(depths); d++ {
		if _, err := fmt.Fprintf(w, "%9s %2d %8d\n", "depth", d, depths[d]); err != nil {
			return err
		}
	}
	if deep := g.deepestTransfer(); deep >= 0 {
		route := g.ChainRanks(deep)
		if _, err := fmt.Fprintf(w, "deepest chain:"); err != nil {
			return err
		}
		for i, r := range route {
			sep := " -> "
			if i == 0 {
				sep = " "
			}
			if _, err := fmt.Fprintf(w, "%s%d", sep, r); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// deepestTransfer returns the index of the first transfer at MaxDepth,
// -1 with no transfers. First-in-sorted-order makes the choice
// deterministic.
func (g *Graph) deepestTransfer() int {
	best, depth := -1, 0
	for i, t := range g.Transfers {
		if t.Depth > depth {
			best, depth = i, t.Depth
		}
	}
	return best
}

// Publish exports the causal analyses into a metrics registry as
// aggregate counters and a migration-depth histogram. It is called
// after a run completes, never from the engine hot path, so the
// engine's own metric set — and the golden traced-run exposition — is
// unchanged. All arguments are optional: nil graph/blame or a
// zero-value path publish nothing for the missing part.
func Publish(reg *obs.Registry, g *Graph, p Path, b *Blame) {
	if reg == nil {
		return
	}
	if g != nil {
		reg.Counter("causal_transfers_total").Add(uint64(len(g.Transfers)))
		reg.Counter("causal_token_hops_total").Add(uint64(len(g.TokenHops)))
		reg.Counter("causal_quanta_total").Add(uint64(g.QuantaCount()))
		h := reg.Histogram("causal_migration_depth")
		for _, t := range g.Transfers {
			h.Observe(int64(t.Depth))
		}
	}
	if p.Total > 0 {
		reg.Counter("causal_critical_compute_ns").Add(uint64(p.ByKind[SegCompute]))
		reg.Counter("causal_critical_steal_rtt_ns").Add(uint64(p.ByKind[SegStealRTT]))
		reg.Counter("causal_critical_transfer_ns").Add(uint64(p.ByKind[SegTransfer]))
		reg.Counter("causal_critical_token_ns").Add(uint64(p.ByKind[SegToken]))
		reg.Counter("causal_critical_wait_ns").Add(uint64(p.ByKind[SegWait]))
	}
	if b != nil {
		reg.Counter("causal_busy_ns_total").Add(uint64(b.Total.Busy))
		reg.Counter("causal_blame_startup_ns_total").Add(uint64(b.Total.Startup))
		reg.Counter("causal_blame_search_ns_total").Add(uint64(b.Total.Search))
		reg.Counter("causal_blame_inflight_ns_total").Add(uint64(b.Total.InFlight))
		reg.Counter("causal_blame_termtail_ns_total").Add(uint64(b.Total.TermTail))
	}
}
