package causal

import "distws/internal/trace"

// kindDisposition states, for every protocol event kind, how the causal
// reconstruction treats it: "consumed:" kinds drive Build, Blame or the
// critical path; "inert:" kinds are deliberately not causal, with the
// reason the reconstruction stays correct without them. The table is a
// contract, not documentation: TestEveryEventKindHasDisposition fails
// compilation-free drift in both directions — a kind added to
// internal/trace without a row here (the array index forces the row to
// exist, the test forces it to be non-empty), and a row whose claim the
// package sources contradict (consumed kinds must be referenced, inert
// kinds must not be).
var kindDisposition = [trace.NumEventKinds]string{
	trace.EvStealSend: "consumed: opens a request in Blame's search/in-flight split; " +
		"its per-request id anchors Transfer lineage (ReqSendIdx) in Build",
	trace.EvStealRecv: "consumed: confirms the victim-side request match when Build " +
		"attributes a Transfer's originating request",
	trace.EvWorkSend: "consumed: the victim half of Transfer matching in Build",
	trace.EvWorkRecv: "consumed: the thief half of Transfer matching and the " +
		"work-arrival edges of the critical path",
	trace.EvNoWorkSend: "inert: refusals are charged to the thief via EvNoWorkRecv; " +
		"the victim-side record exists for the exporters only",
	trace.EvNoWorkRecv: "consumed: closes an open request in Blame's idle-time split",
	trace.EvStealAbort: "consumed: closes an open request in Blame (the thief gave up)",
	trace.EvTokenSend:  "consumed: the sender half of TokenHop matching in Build",
	trace.EvTokenRecv: "consumed: the receiver half of TokenHop matching and the " +
		"token edges of the critical path",
	trace.EvTerminate: "inert: termination time comes from the transition log and the " +
		"trace end, not from the terminate marker",
	trace.EvQuantumStart: "consumed: opens a Quantum vertex",
	trace.EvQuantumEnd:   "consumed: closes a Quantum vertex",
	trace.EvCrash: "inert: a crashed rank stops producing events, so its open quantum " +
		"has no EvQuantumEnd and is dropped — lost compute never becomes causal work",
	trace.EvStealRetry: "inert: every retry also records a fresh EvStealSend, which " +
		"carries the causal weight; the retry marker only annotates timeout counts",
	trace.EvTokenRegen: "inert: the regenerated token's own EvTokenSend drives TokenHop " +
		"matching; the marker only flags that the ring was repaired",
	trace.EvMsgDrop: "inert: a dropped message has no receive event, so tail-aligned " +
		"matching skips its unmatched send; the drop marker creates no edge",
	trace.EvJobArrive: "inert: job arrival is an open-system boundary event with no " +
		"intra-run cause; the injected work's own quantum events carry the causal weight",
	trace.EvJobAdmit: "inert: admission only gates whether root work is injected; the " +
		"injected quantum and steal events downstream carry the causal weight",
	trace.EvJobReject: "inert: a rejected job injects nothing, so there is no effect " +
		"to attribute; rejection counts live in the serve manifest, not the graph",
	trace.EvJobDone: "inert: job completion is derived bookkeeping over the work ledger; " +
		"the final leaf's quantum already ends the causal chain",
}
