package causal

import (
	"distws/internal/sim"
	"distws/internal/trace"
)

// RankBlame partitions one rank's run time: the busy span plus four
// idle categories that together cover [0, makespan] exactly.
type RankBlame struct {
	// Busy is the time the rank held work (active phases).
	Busy sim.Duration
	// Startup is the initial idle span before the rank's first work —
	// the paper's starting-latency SL(x) views this region per
	// occupancy level. A rank that never became active is all startup.
	Startup sim.Duration
	// Search is interior idle time spent hunting for a victim: posting
	// requests and absorbing refusals (the Figure 7 failed-steal flood
	// lands here), plus backoff pauses between attempts.
	Search sim.Duration
	// InFlight is interior idle time during the final, answered steal
	// request of each idle interval: the work that re-activated the
	// rank was already on the wire (request flight, victim handling,
	// chunk transfer).
	InFlight sim.Duration
	// TermTail is the final idle span for ranks that never got work
	// again before termination: steal traffic in it is pure overhead
	// while the token ring winds down.
	TermTail sim.Duration
}

// Idle sums the four idle categories.
func (b RankBlame) Idle() sim.Duration {
	return b.Startup + b.Search + b.InFlight + b.TermTail
}

// Total is Busy plus Idle; by construction it equals the makespan.
func (b RankBlame) Total() sim.Duration { return b.Busy + b.Idle() }

func (b *RankBlame) add(o RankBlame) {
	b.Busy += o.Busy
	b.Startup += o.Startup
	b.Search += o.Search
	b.InFlight += o.InFlight
	b.TermTail += o.TermTail
}

// Blame is the idle-time blame attribution of a whole run.
type Blame struct {
	// End is the makespan the per-rank partitions cover.
	End sim.Time
	// PerRank holds each rank's partition; Total the sum over ranks,
	// so Total.Total() == Ranks * End exactly.
	PerRank []RankBlame
	Total   RankBlame
}

// Ranks returns the number of ranks attributed.
func (b *Blame) Ranks() int { return len(b.PerRank) }

// AttributeIdle partitions every rank's time on [0, End] into busy
// plus the four blame categories. The partition is exact: for each
// rank Busy + Startup + Search + InFlight + TermTail == End, by
// construction, and tests assert it on real runs.
//
// The activity transitions alone fix the busy/startup/tail structure;
// the event log (when present) splits interior idle intervals at the
// last steal request still awaiting its answer when work arrived —
// everything before it is search, everything after is the transfer in
// flight. Without an event log interior idle is all search.
func AttributeIdle(tr *trace.Trace) *Blame {
	n := tr.Ranks()
	b := &Blame{End: tr.End, PerRank: make([]RankBlame, n)}
	for rank := 0; rank < n; rank++ {
		rb := &b.PerRank[rank]
		trs := tr.Transitions[rank]
		if len(trs) == 0 {
			// Never active: the whole run is startup (the rank was
			// searching, but it never saw its first work).
			rb.Startup = sim.Duration(tr.End)
			continue
		}
		var es []trace.Event
		if tr.Events != nil {
			es = tr.Events[rank]
		}
		// Ranks start idle implicitly; the first transition is Active
		// (trace.Validate), so [0, first) is the startup region.
		rb.Startup = trs[0].Time.Sub(0)
		cur := 0 // monotonic cursor into es
		for i, x := range trs {
			end := tr.End
			if i+1 < len(trs) {
				end = trs[i+1].Time
			}
			if x.State == trace.Active {
				rb.Busy += end.Sub(x.Time)
				continue
			}
			if i == len(trs)-1 {
				// Idle at termination: the tail.
				rb.TermTail += tr.End.Sub(x.Time)
				continue
			}
			// Interior idle [x.Time, end): ended by work arriving.
			// Replay the rank's steal protocol over the interval: a
			// send opens a request, a refusal or abort closes it. An
			// open request at interval end is the one the arriving
			// work answered.
			for cur < len(es) && es[cur].Time < x.Time {
				cur++
			}
			open := false
			var lastSend sim.Time
			for ; cur < len(es) && es[cur].Time < end; cur++ {
				switch es[cur].Kind {
				case trace.EvStealSend:
					open, lastSend = true, es[cur].Time
				case trace.EvNoWorkRecv, trace.EvStealAbort:
					open = false
				}
			}
			if open {
				rb.Search += lastSend.Sub(x.Time)
				rb.InFlight += end.Sub(lastSend)
			} else {
				rb.Search += end.Sub(x.Time)
			}
		}
	}
	for _, rb := range b.PerRank {
		b.Total.add(rb)
	}
	return b
}
