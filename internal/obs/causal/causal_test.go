package causal_test

import (
	"bytes"
	"strings"
	"testing"

	"distws/internal/core"
	"distws/internal/obs"
	"distws/internal/obs/causal"
	"distws/internal/sim"
	"distws/internal/trace"
	"distws/internal/uts"
	"distws/internal/victim"
)

// fixtureTrace builds a 3-rank run by hand with a known causal
// structure: rank 1 steals from rank 0 at a poll boundary, rank 2
// steals the migrated work from rank 1 at a poll boundary, rank 0
// steals it back from rank 2 mid-quantum (one-sided style, so the
// request flight binds), then the token circulates 0 -> 1 -> 2 -> 0.
func fixtureTrace() *trace.Trace {
	ev := func(t sim.Time, k trace.EventKind, peer int, arg int64) trace.Event {
		return trace.Event{Time: t, Kind: k, Peer: peer, Arg: arg}
	}
	return &trace.Trace{
		End: 430,
		Transitions: [][]trace.Transition{
			{{Time: 0, State: trace.Active}, {Time: 300, State: trace.Idle}, {Time: 360, State: trace.Active}, {Time: 400, State: trace.Idle}},
			{{Time: 150, State: trace.Active}, {Time: 250, State: trace.Idle}},
			{{Time: 300, State: trace.Active}, {Time: 400, State: trace.Idle}},
		},
		Sessions: [][]trace.Session{nil, nil, nil},
		Events: [][]trace.Event{
			{
				ev(0, trace.EvQuantumStart, -1, 3),
				ev(100, trace.EvQuantumEnd, -1, 100),
				ev(100, trace.EvStealRecv, 1, 11),
				ev(100, trace.EvWorkSend, 1, 10),
				ev(100, trace.EvQuantumStart, -1, 2),
				ev(300, trace.EvQuantumEnd, -1, 300),
				ev(320, trace.EvStealSend, 2, 33),
				ev(360, trace.EvWorkRecv, 2, 2),
				ev(360, trace.EvQuantumStart, -1, 1),
				ev(400, trace.EvQuantumEnd, -1, 340),
				ev(400, trace.EvTokenSend, 1, 0),
				ev(430, trace.EvTokenRecv, 2, 0),
				ev(430, trace.EvTerminate, -1, 0),
			},
			{
				ev(50, trace.EvStealSend, 0, 11),
				ev(150, trace.EvWorkRecv, 0, 10),
				ev(150, trace.EvQuantumStart, -1, 1),
				ev(250, trace.EvQuantumEnd, -1, 100),
				ev(250, trace.EvStealRecv, 2, 22),
				ev(250, trace.EvWorkSend, 2, 5),
				ev(410, trace.EvTokenRecv, 0, 0),
				ev(410, trace.EvTokenSend, 2, 0),
			},
			{
				ev(200, trace.EvStealSend, 1, 22),
				ev(300, trace.EvWorkRecv, 1, 5),
				ev(300, trace.EvQuantumStart, -1, 1),
				ev(350, trace.EvStealRecv, 0, 33),
				ev(350, trace.EvWorkSend, 0, 2),
				ev(400, trace.EvQuantumEnd, -1, 105),
				ev(420, trace.EvTokenRecv, 1, 0),
				ev(420, trace.EvTokenSend, 0, 0),
			},
		},
		EventsDropped: []uint64{0, 0, 0},
	}
}

func TestBuildFixtureGraph(t *testing.T) {
	g := causal.Build(fixtureTrace())
	if len(g.Transfers) != 3 {
		t.Fatalf("transfers = %d, want 3", len(g.Transfers))
	}
	want := []causal.Transfer{
		{Victim: 0, Thief: 1, Send: 100, Recv: 150, Nodes: 10, ReqSend: 50, ReqID: 11, ReqBound: false, Depth: 1, Parent: -1},
		{Victim: 1, Thief: 2, Send: 250, Recv: 300, Nodes: 5, ReqSend: 200, ReqID: 22, ReqBound: false, Depth: 2, Parent: 0},
		{Victim: 2, Thief: 0, Send: 350, Recv: 360, Nodes: 2, ReqSend: 320, ReqID: 33, ReqBound: true, Depth: 3, Parent: 1},
	}
	for i, w := range want {
		x := g.Transfers[i]
		if x.Victim != w.Victim || x.Thief != w.Thief || x.Send != w.Send || x.Recv != w.Recv ||
			x.Nodes != w.Nodes || x.ReqSend != w.ReqSend || x.ReqID != w.ReqID ||
			x.ReqBound != w.ReqBound || x.Depth != w.Depth || x.Parent != w.Parent {
			t.Errorf("transfer %d = %+v, want %+v", i, x, w)
		}
		if x.ReqSendIdx < 0 {
			t.Errorf("transfer %d: request not recovered", i)
		}
	}
	if len(g.TokenHops) != 3 {
		t.Fatalf("token hops = %d, want 3", len(g.TokenHops))
	}
	ring := [][2]int{{0, 1}, {1, 2}, {2, 0}}
	for i, h := range g.TokenHops {
		if h.From != ring[i][0] || h.To != ring[i][1] {
			t.Errorf("hop %d = %d->%d, want %d->%d", i, h.From, h.To, ring[i][0], ring[i][1])
		}
	}
	if got := g.QuantaCount(); got != 5 {
		t.Errorf("quanta = %d, want 5", got)
	}
	wantDepths := []uint64{0, 1, 1, 1}
	got := g.MigrationDepths()
	if len(got) != len(wantDepths) {
		t.Fatalf("depths = %v, want %v", got, wantDepths)
	}
	for i := range wantDepths {
		if got[i] != wantDepths[i] {
			t.Fatalf("depths = %v, want %v", got, wantDepths)
		}
	}
	if d := g.MaxDepth(); d != 3 {
		t.Errorf("max depth = %d, want 3", d)
	}
	route := g.ChainRanks(2)
	wantRoute := []int{0, 1, 2, 0}
	if len(route) != len(wantRoute) {
		t.Fatalf("chain route = %v, want %v", route, wantRoute)
	}
	for i := range wantRoute {
		if route[i] != wantRoute[i] {
			t.Fatalf("chain route = %v, want %v", route, wantRoute)
		}
	}
}

func TestCriticalPathFixture(t *testing.T) {
	g := causal.Build(fixtureTrace())
	p := causal.CriticalPath(g)
	type seg struct {
		kind       causal.SegmentKind
		rank       int
		start, end sim.Time
	}
	want := []seg{
		// The two back-to-back rank-0 quanta (0-100, 100-300) coalesce.
		{causal.SegCompute, 0, 0, 300},
		{causal.SegWait, 0, 300, 320},
		{causal.SegStealRTT, 0, 320, 350},
		{causal.SegTransfer, 0, 350, 360},
		{causal.SegCompute, 0, 360, 400},
		{causal.SegToken, 1, 400, 410},
		{causal.SegToken, 2, 410, 420},
		{causal.SegToken, 0, 420, 430},
	}
	if len(p.Segments) != len(want) {
		t.Fatalf("segments = %+v, want %d segments", p.Segments, len(want))
	}
	for i, w := range want {
		s := p.Segments[i]
		if s.Kind != w.kind || s.Rank != w.rank || s.Start != w.start || s.End != w.end {
			t.Errorf("segment %d = %+v, want %+v", i, s, w)
		}
	}
	if p.ByKind[causal.SegCompute] != 340 || p.ByKind[causal.SegStealRTT] != 30 ||
		p.ByKind[causal.SegTransfer] != 10 || p.ByKind[causal.SegToken] != 30 ||
		p.ByKind[causal.SegWait] != 20 {
		t.Errorf("ByKind = %v", p.ByKind)
	}
	var sum sim.Duration
	for _, d := range p.ByKind {
		sum += d
	}
	if sum != p.Total || p.Total != 430 {
		t.Errorf("decomposition %v does not sum to makespan: %v vs %v", p.ByKind, sum, p.Total)
	}
}

func TestBlameFixture(t *testing.T) {
	b := causal.AttributeIdle(fixtureTrace())
	want := []causal.RankBlame{
		{Busy: 340, Startup: 0, Search: 20, InFlight: 40, TermTail: 30},
		{Busy: 100, Startup: 150, Search: 0, InFlight: 0, TermTail: 180},
		{Busy: 100, Startup: 300, Search: 0, InFlight: 0, TermTail: 30},
	}
	for r, w := range want {
		if b.PerRank[r] != w {
			t.Errorf("rank %d blame = %+v, want %+v", r, b.PerRank[r], w)
		}
		if got := b.PerRank[r].Total(); got != 430 {
			t.Errorf("rank %d partition covers %v, want 430", r, got)
		}
	}
	if b.Total.Total() != 3*430 {
		t.Errorf("aggregate %v != ranks * makespan", b.Total.Total())
	}
}

// traced runs a small deterministic simulation with full event logging.
func traced(t *testing.T, mutate func(*core.Config)) *core.Result {
	t.Helper()
	cfg := core.Config{
		Tree:          uts.MustPreset("T3").Params,
		Ranks:         8,
		Selector:      victim.NewDistanceSkewed,
		Seed:          7,
		CollectEvents: true,
		EventBuffer:   1 << 20,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Events == nil {
		t.Fatal("no event log collected")
	}
	return res
}

// variants covers the protocol/selector corners whose event logs have
// different shapes (poll-boundary answers, delivery-bound answers,
// aborted steals).
func variants() map[string]func(*core.Config) {
	return map[string]func(*core.Config){
		"reference":  func(cfg *core.Config) { cfg.Selector = nil; cfg.Seed = 1 },
		"random":     func(cfg *core.Config) { cfg.Selector = victim.NewUniformRandom; cfg.Seed = 2 },
		"tofu":       nil,
		"one-sided":  func(cfg *core.Config) { cfg.Protocol = core.OneSided; cfg.Seed = 3 },
		"aborting":   func(cfg *core.Config) { cfg.StealTimeout = 5 * sim.Microsecond; cfg.Seed = 4 },
		"steal-half": func(cfg *core.Config) { cfg.Steal = core.StealHalf; cfg.Seed = 5 },
	}
}

// TestCriticalPathSumsToMakespan is the headline analytic identity in
// the style of TestEfficiencyEqualsMeanOccupancy: the extracted
// critical path is a contiguous cover of [0, makespan], so its segment
// durations sum to the makespan exactly, for every protocol variant.
func TestCriticalPathSumsToMakespan(t *testing.T) {
	for name, mutate := range variants() {
		t.Run(name, func(t *testing.T) {
			res := traced(t, mutate)
			g := causal.Build(res.Trace)
			p := causal.CriticalPath(g)
			if len(p.Segments) == 0 {
				t.Fatal("empty critical path")
			}
			var sum sim.Duration
			for _, d := range p.ByKind {
				sum += d
			}
			if sum != p.Total || p.Total != sim.Duration(res.Makespan) {
				t.Fatalf("segment kinds sum to %v, path total %v, makespan %v", sum, p.Total, res.Makespan)
			}
			// Contiguity: each segment starts where the previous ended,
			// from 0 to the makespan.
			if p.Segments[0].Start != 0 {
				t.Fatalf("path starts at %v, want 0", p.Segments[0].Start)
			}
			if last := p.Segments[len(p.Segments)-1].End; last != res.Trace.End {
				t.Fatalf("path ends at %v, want %v", last, res.Trace.End)
			}
			for i := 1; i < len(p.Segments); i++ {
				if p.Segments[i].Start != p.Segments[i-1].End {
					t.Fatalf("gap between segments %d and %d: %+v %+v", i-1, i, p.Segments[i-1], p.Segments[i])
				}
			}
			for i, s := range p.Segments {
				if s.Rank < 0 || s.Rank >= res.Ranks || s.End <= s.Start {
					t.Fatalf("malformed segment %d: %+v", i, s)
				}
			}
			if p.ByKind[causal.SegCompute] == 0 {
				t.Fatal("critical path has no compute")
			}
		})
	}
}

// TestBlamePartitionsIdleExactly: for every rank, busy plus the four
// blame categories equals the makespan, so summed over ranks the
// attribution accounts for N*T with nothing lost or double-counted.
func TestBlamePartitionsIdleExactly(t *testing.T) {
	for name, mutate := range variants() {
		t.Run(name, func(t *testing.T) {
			res := traced(t, mutate)
			b := causal.AttributeIdle(res.Trace)
			if b.Ranks() != res.Ranks {
				t.Fatalf("blame ranks = %d, want %d", b.Ranks(), res.Ranks)
			}
			for r, rb := range b.PerRank {
				if got := rb.Total(); got != sim.Duration(res.Makespan) {
					t.Fatalf("rank %d: busy %v + blamed idle %v = %v, want makespan %v",
						r, rb.Busy, rb.Idle(), got, res.Makespan)
				}
				if rb.Busy < 0 || rb.Startup < 0 || rb.Search < 0 || rb.InFlight < 0 || rb.TermTail < 0 {
					t.Fatalf("rank %d: negative category %+v", r, rb)
				}
			}
			want := sim.Duration(res.Makespan) * sim.Duration(res.Ranks)
			if got := b.Total.Total(); got != want {
				t.Fatalf("aggregate %v, want ranks*makespan %v", got, want)
			}
		})
	}
}

// TestLineageMatchesEngine cross-checks the two independent lineage
// implementations: the engine threads origin depth through live
// messages, the causal package re-derives it from the event log alone.
// With no ring evictions they must agree exactly.
func TestLineageMatchesEngine(t *testing.T) {
	for name, mutate := range variants() {
		t.Run(name, func(t *testing.T) {
			res := traced(t, mutate)
			if res.Trace.TotalEventsDropped() != 0 {
				t.Fatal("ring evictions; widen EventBuffer")
			}
			g := causal.Build(res.Trace)
			got := g.MigrationDepths()
			want := res.MigrationDepths
			if len(got) != len(want) {
				t.Fatalf("depth histogram %v, engine %v", got, want)
			}
			var transfers uint64
			for d := range want {
				if got[d] != want[d] {
					t.Fatalf("depth histogram %v, engine %v", got, want)
				}
				transfers += want[d]
			}
			if uint64(len(g.Transfers)) != transfers {
				t.Fatalf("%d transfers reconstructed, engine accepted %d", len(g.Transfers), transfers)
			}
			if g.MaxDepth() != res.MaxMigrationDepth {
				t.Fatalf("max depth %d, engine %d", g.MaxDepth(), res.MaxMigrationDepth)
			}
		})
	}
}

// TestLineageParentsAreConsistent checks the structural invariants of
// the reconstructed lineage forest on a real run.
func TestLineageParentsAreConsistent(t *testing.T) {
	res := traced(t, nil)
	g := causal.Build(res.Trace)
	for i, x := range g.Transfers {
		if x.Parent < 0 {
			if x.Depth != 1 {
				t.Fatalf("transfer %d: root at depth %d", i, x.Depth)
			}
			continue
		}
		p := g.Transfers[x.Parent]
		if p.Thief != x.Victim {
			t.Fatalf("transfer %d: parent fed rank %d, victim is %d", i, p.Thief, x.Victim)
		}
		if x.Depth != p.Depth+1 {
			t.Fatalf("transfer %d: depth %d, parent depth %d", i, x.Depth, p.Depth)
		}
		if p.Recv > x.Send {
			t.Fatalf("transfer %d: parent received at %v after child sent at %v", i, p.Recv, x.Send)
		}
		chain := g.Chain(i)
		if len(chain) != x.Depth || chain[len(chain)-1] != i {
			t.Fatalf("transfer %d: chain %v inconsistent with depth %d", i, chain, x.Depth)
		}
	}
}

func TestGraphWithoutEventLog(t *testing.T) {
	res, err := core.Run(core.Config{
		Tree:         uts.MustPreset("T3").Params,
		Ranks:        4,
		Seed:         1,
		CollectTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := causal.Build(res.Trace)
	if len(g.Transfers) != 0 || len(g.TokenHops) != 0 || g.QuantaCount() != 0 {
		t.Fatal("graph from event-free trace must be empty")
	}
	// The critical path degenerates to one unattributed segment but the
	// identity still holds.
	p := causal.CriticalPath(g)
	if len(p.Segments) != 1 || p.Segments[0].Kind != causal.SegWait {
		t.Fatalf("path = %+v", p.Segments)
	}
	if p.ByKind[causal.SegWait] != p.Total || p.Total != sim.Duration(res.Makespan) {
		t.Fatalf("wait %v, total %v, makespan %v", p.ByKind[causal.SegWait], p.Total, res.Makespan)
	}
	// Blame works from transitions alone: interior idle all counts as
	// search, and the partition identity is preserved.
	b := causal.AttributeIdle(res.Trace)
	for r, rb := range b.PerRank {
		if rb.InFlight != 0 {
			t.Fatalf("rank %d: in-flight blame without an event log", r)
		}
		if rb.Total() != sim.Duration(res.Makespan) {
			t.Fatalf("rank %d: partition covers %v", r, rb.Total())
		}
	}
}

func TestSingleRankRun(t *testing.T) {
	res := traced(t, func(cfg *core.Config) { cfg.Ranks = 1 })
	g := causal.Build(res.Trace)
	if len(g.Transfers) != 0 {
		t.Fatalf("%d transfers on a single rank", len(g.Transfers))
	}
	p := causal.CriticalPath(g)
	var sum sim.Duration
	for _, d := range p.ByKind {
		sum += d
	}
	if sum != sim.Duration(res.Makespan) {
		t.Fatalf("path sums to %v, makespan %v", sum, res.Makespan)
	}
	if p.ByKind[causal.SegStealRTT] != 0 || p.ByKind[causal.SegTransfer] != 0 {
		t.Fatalf("steal segments on a single rank: %v", p.ByKind)
	}
	b := causal.AttributeIdle(res.Trace)
	if b.PerRank[0].Total() != sim.Duration(res.Makespan) {
		t.Fatalf("partition covers %v", b.PerRank[0].Total())
	}
}

func TestEmptyAndDegenerateTraces(t *testing.T) {
	empty := &trace.Trace{}
	if g := causal.Build(empty); len(g.Transfers) != 0 || g.QuantaCount() != 0 {
		t.Fatal("empty trace produced a graph")
	}
	p := causal.CriticalPath(causal.Build(empty))
	if len(p.Segments) != 0 || p.Total != 0 {
		t.Fatalf("empty trace path = %+v", p)
	}
	b := causal.AttributeIdle(empty)
	if b.Ranks() != 0 || b.Total.Total() != 0 {
		t.Fatalf("empty trace blame = %+v", b)
	}

	// A rank with no transitions at all is all startup.
	idle := &trace.Trace{End: 100, Transitions: [][]trace.Transition{nil}}
	ib := causal.AttributeIdle(idle)
	if ib.PerRank[0].Startup != 100 || ib.PerRank[0].Total() != 100 {
		t.Fatalf("never-active rank blame = %+v", ib.PerRank[0])
	}
}

// TestEvictedPrefixStillMatches drops a prefix of one rank's event log
// (what ring eviction does) and checks matching degrades gracefully:
// the surviving suffix still pairs up and no identity breaks.
func TestEvictedPrefixStillMatches(t *testing.T) {
	res := traced(t, nil)
	full := causal.Build(res.Trace)
	if len(full.Transfers) < 4 {
		t.Skip("run too small to exercise eviction")
	}
	// Evict half of rank 0's log.
	tr := *res.Trace
	tr.Events = append([][]trace.Event(nil), res.Trace.Events...)
	cut := len(tr.Events[0]) / 2
	tr.Events[0] = tr.Events[0][cut:]
	tr.EventsDropped = append([]uint64(nil), res.Trace.EventsDropped...)
	tr.EventsDropped[0] += uint64(cut)

	g := causal.Build(&tr)
	if len(g.Transfers) > len(full.Transfers) {
		t.Fatalf("eviction created transfers: %d > %d", len(g.Transfers), len(full.Transfers))
	}
	for i, x := range g.Transfers {
		if x.Send >= x.Recv {
			t.Fatalf("transfer %d violates causality: %+v", i, x)
		}
	}
	p := causal.CriticalPath(g)
	var sum sim.Duration
	for _, d := range p.ByKind {
		sum += d
	}
	if sum != p.Total || p.Total != sim.Duration(res.Makespan) {
		t.Fatalf("evicted-trace path sums to %v, total %v", sum, p.Total)
	}
}

func TestPublish(t *testing.T) {
	res := traced(t, nil)
	g := causal.Build(res.Trace)
	p := causal.CriticalPath(g)
	b := causal.AttributeIdle(res.Trace)
	reg := obs.NewRegistry()
	causal.Publish(reg, g, p, b)

	if got := reg.Counter("causal_transfers_total").Value(); got != uint64(len(g.Transfers)) {
		t.Fatalf("transfers counter %d, want %d", got, len(g.Transfers))
	}
	if got := reg.Counter("causal_token_hops_total").Value(); got != uint64(len(g.TokenHops)) {
		t.Fatalf("token counter %d, want %d", got, len(g.TokenHops))
	}
	if got := reg.Histogram("causal_migration_depth").Count(); got != uint64(len(g.Transfers)) {
		t.Fatalf("depth histogram count %d, want %d", got, len(g.Transfers))
	}
	crit := reg.Counter("causal_critical_compute_ns").Value() +
		reg.Counter("causal_critical_steal_rtt_ns").Value() +
		reg.Counter("causal_critical_transfer_ns").Value() +
		reg.Counter("causal_critical_token_ns").Value() +
		reg.Counter("causal_critical_wait_ns").Value()
	if crit != uint64(res.Makespan) {
		t.Fatalf("critical counters sum to %d, makespan %d", crit, res.Makespan)
	}
	blame := reg.Counter("causal_busy_ns_total").Value() +
		reg.Counter("causal_blame_startup_ns_total").Value() +
		reg.Counter("causal_blame_search_ns_total").Value() +
		reg.Counter("causal_blame_inflight_ns_total").Value() +
		reg.Counter("causal_blame_termtail_ns_total").Value()
	if blame != uint64(res.Makespan)*uint64(res.Ranks) {
		t.Fatalf("blame counters sum to %d, want ranks*makespan", blame)
	}
	// Nil registry and nil parts must be safe no-ops.
	causal.Publish(nil, g, p, b)
	causal.Publish(reg, nil, causal.Path{}, nil)
}

func TestTextReportsAreDeterministic(t *testing.T) {
	res := traced(t, nil)
	g := causal.Build(res.Trace)
	p := causal.CriticalPath(g)
	b := causal.AttributeIdle(res.Trace)
	render := func() string {
		var buf bytes.Buffer
		if err := causal.WriteBlameText(&buf, b); err != nil {
			t.Fatal(err)
		}
		if err := causal.WriteCriticalText(&buf, p); err != nil {
			t.Fatal(err)
		}
		if err := causal.WriteLineageText(&buf, g); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := render()
	if a != render() {
		t.Fatal("text reports are not deterministic")
	}
	for _, want := range []string{"idle-time blame", "critical path", "work lineage", "compute", "term-tail"} {
		if !strings.Contains(a, want) {
			t.Fatalf("report missing %q:\n%s", want, a)
		}
	}
}
