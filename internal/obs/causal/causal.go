// Package causal reconstructs the causal structure of a traced
// work-stealing run from its protocol event log: which steal fed which
// rank (work lineage), what chain of compute quanta, steal round
// trips, work transfers and termination-token hops the makespan is
// made of (the critical path), and which protocol mechanism each
// rank's idle time was waiting on (blame attribution).
//
// The paper's occupancy curves and SL(x)/EL(x) latencies measure the
// *symptoms* of bad victim selection; the analyses here expose the
// *mechanism*: the failed-steal flood of Figure 7 shows up directly as
// refused-steal search blame, and the long termination tails of the
// reference round-robin policy as termination-tail blame and token
// segments on the critical path.
//
// Everything in this package is a pure function of a *trace.Trace —
// no clocks, no randomness, no instrumentation of its own — so the
// same analysis runs offline in cmd/tracetool, inside cmd/experiments
// tables, and behind a /metrics endpoint via Publish.
//
// # Event matching
//
// The engine records sends on the sender and receives on the receiver,
// and the network preserves per-pair ordering (MPI non-overtaking), so
// transfers and token hops are matched per ordered (sender, receiver)
// pair in FIFO order. The per-rank recording rings are bounded and
// evict oldest-first, so the two sides may each be missing a prefix:
// matching aligns the *tails* of the two lists and drops any pair that
// violates send-before-receive. A victim's EvStealRecv is recorded
// immediately before its EvWorkSend/EvNoWorkSend answer (same
// timestamp, adjacent in the per-rank log), which recovers the request
// id of every transfer and, through the thief's EvStealSend, the full
// request round trip.
package causal

import (
	"sort"

	"distws/internal/sim"
	"distws/internal/trace"
)

// Transfer is one successful steal reconstructed from the event log:
// work moved from Victim to Thief.
type Transfer struct {
	Victim, Thief int
	// Send is the victim's EvWorkSend time, Recv the thief's
	// EvWorkRecv time; SendIdx/RecvIdx locate the two events in the
	// respective per-rank logs.
	Send, Recv       sim.Time
	SendIdx, RecvIdx int
	// Nodes is the loot size carried by the transfer.
	Nodes int64

	// ReqSend/ReqSendIdx locate the thief's EvStealSend that this
	// transfer answered; ReqSendIdx is -1 when the request could not
	// be recovered (ring eviction). ReqID is the request id.
	ReqSend    sim.Time
	ReqSendIdx int
	ReqID      uint64
	// ReqBound reports that the victim answered the request the moment
	// it was delivered (idle victim, or the one-sided protocol's NIC):
	// the transfer was waiting on the request's flight, so the critical
	// path runs through the thief's send. When false the victim
	// answered at a quantum boundary of its own compute (a two-sided
	// busy victim), and the path runs through the victim's quantum.
	ReqBound bool

	// Depth is the loot's migration depth: 1 for work stolen from a
	// rank still holding its original lineage, d+1 for work whose
	// victim had last been fed by a depth-d transfer. Parent indexes
	// the victim's feeding transfer in Graph.Transfers, -1 at depth 1.
	Depth  int
	Parent int
}

// TokenHop is one termination-token delivery on the ring.
type TokenHop struct {
	From, To         int
	Send, Recv       sim.Time
	SendIdx, RecvIdx int
}

// Quantum is one compute quantum: a span during which a rank expanded
// nodes without polling.
type Quantum struct {
	Start, End sim.Time
}

// idxRef maps a per-rank event index to an element of a Graph slice.
type idxRef struct{ idx, ref int }

// lookupRef finds the element for event index idx in a list sorted by
// idx.
func lookupRef(list []idxRef, idx int) (int, bool) {
	i := sort.Search(len(list), func(i int) bool { return list[i].idx >= idx })
	if i < len(list) && list[i].idx == idx {
		return list[i].ref, true
	}
	return 0, false
}

// refBefore finds the element with the largest event index < idx.
func refBefore(list []idxRef, idx int) (int, bool) {
	i := sort.Search(len(list), func(i int) bool { return list[i].idx >= idx })
	if i == 0 {
		return 0, false
	}
	return list[i-1].ref, true
}

// Graph is the reconstructed causal graph of one run: compute quanta
// as vertices, transfers and token hops as edges between ranks.
type Graph struct {
	// Transfers are the matched successful steals, ordered by
	// (Send, Victim, SendIdx) so lineage parents precede children.
	Transfers []Transfer
	// TokenHops are the matched termination-token deliveries, ordered
	// by (Send, From, SendIdx).
	TokenHops []TokenHop
	// Quanta are the per-rank compute quanta, time-ordered.
	Quanta [][]Quantum

	tr *trace.Trace
	// Per-rank lookup tables from event index to the matched element:
	// recvAt resolves an EvWorkRecv to its Transfer, tokenAt an
	// EvTokenRecv to its TokenHop. Sorted by event index.
	recvAt  [][]idxRef
	tokenAt [][]idxRef
}

// Trace returns the trace the graph was built from.
func (g *Graph) Trace() *trace.Trace { return g.tr }

// Build reconstructs the causal graph from a trace. A trace without an
// event log yields an empty graph (Blame still works from transitions
// alone; CriticalPath degenerates to one unattributed segment).
func Build(tr *trace.Trace) *Graph {
	n := tr.Ranks()
	g := &Graph{
		tr:      tr,
		Quanta:  make([][]Quantum, n),
		recvAt:  make([][]idxRef, n),
		tokenAt: make([][]idxRef, n),
	}
	if tr.Events == nil {
		return g
	}

	// Index each rank's log once: send/recv event positions grouped by
	// peer, the steal-send position of every request id, and the
	// quantum spans.
	workSend := make([]map[int][]int, n)
	workRecv := make([]map[int][]int, n)
	tokSend := make([]map[int][]int, n)
	tokRecv := make([]map[int][]int, n)
	stealSendAt := make([]map[uint64]int, n)
	for r, es := range tr.Events {
		qstart := -1
		for i, e := range es {
			switch e.Kind {
			case trace.EvWorkSend:
				workSend[r] = addPeerIdx(workSend[r], e.Peer, i)
			case trace.EvWorkRecv:
				workRecv[r] = addPeerIdx(workRecv[r], e.Peer, i)
			case trace.EvTokenSend:
				tokSend[r] = addPeerIdx(tokSend[r], e.Peer, i)
			case trace.EvTokenRecv:
				tokRecv[r] = addPeerIdx(tokRecv[r], e.Peer, i)
			case trace.EvStealSend:
				if stealSendAt[r] == nil {
					stealSendAt[r] = make(map[uint64]int)
				}
				stealSendAt[r][uint64(e.Arg)] = i
			case trace.EvQuantumStart:
				qstart = i
			case trace.EvQuantumEnd:
				if qstart >= 0 {
					g.Quanta[r] = append(g.Quanta[r], Quantum{Start: es[qstart].Time, End: e.Time})
				}
				qstart = -1
			}
		}
	}

	// Match transfers per ordered (victim, thief) pair, iterating
	// receivers then sorted senders so the build is deterministic.
	for thief := 0; thief < n; thief++ {
		for _, victim := range sortedPeers(workRecv[thief]) {
			sends := workSend[victim][thief]
			recvs := workRecv[thief][victim]
			k := len(sends)
			if len(recvs) < k {
				k = len(recvs)
			}
			// Tail-align: evictions drop oldest events first, so the
			// surviving lists share a common suffix.
			so, ro := len(sends)-k, len(recvs)-k
			for i := 0; i < k; i++ {
				si, ri := sends[so+i], recvs[ro+i]
				se, re := tr.Events[victim][si], tr.Events[thief][ri]
				if se.Time >= re.Time {
					continue // misalignment; flight is >= 1ns
				}
				g.Transfers = append(g.Transfers, Transfer{
					Victim: victim, Thief: thief,
					Send: se.Time, Recv: re.Time,
					SendIdx: si, RecvIdx: ri,
					Nodes:      re.Arg,
					ReqSendIdx: -1, Parent: -1,
				})
			}
		}
	}
	for to := 0; to < n; to++ {
		for _, from := range sortedPeers(tokRecv[to]) {
			sends := tokSend[from][to]
			recvs := tokRecv[to][from]
			k := len(sends)
			if len(recvs) < k {
				k = len(recvs)
			}
			so, ro := len(sends)-k, len(recvs)-k
			for i := 0; i < k; i++ {
				si, ri := sends[so+i], recvs[ro+i]
				se, re := tr.Events[from][si], tr.Events[to][ri]
				if se.Time >= re.Time {
					continue
				}
				g.TokenHops = append(g.TokenHops, TokenHop{
					From: from, To: to,
					Send: se.Time, Recv: re.Time,
					SendIdx: si, RecvIdx: ri,
				})
			}
		}
	}

	// Recover each transfer's steal request and its binding, then
	// order transfers so every lineage parent precedes its children:
	// a parent's Recv is at or before its child's Send at the shared
	// rank, and flights are strictly positive, so sorting by Send time
	// gives parents strictly smaller keys.
	for i := range g.Transfers {
		g.resolveRequest(&g.Transfers[i], stealSendAt)
	}
	sort.SliceStable(g.Transfers, func(a, b int) bool {
		ta, tb := &g.Transfers[a], &g.Transfers[b]
		if ta.Send != tb.Send {
			return ta.Send < tb.Send
		}
		if ta.Victim != tb.Victim {
			return ta.Victim < tb.Victim
		}
		return ta.SendIdx < tb.SendIdx
	})
	sort.SliceStable(g.TokenHops, func(a, b int) bool {
		ha, hb := &g.TokenHops[a], &g.TokenHops[b]
		if ha.Send != hb.Send {
			return ha.Send < hb.Send
		}
		if ha.From != hb.From {
			return ha.From < hb.From
		}
		return ha.SendIdx < hb.SendIdx
	})

	// Lookup tables, then lineage. recvAt must be sorted by event
	// index; per rank the transfer order above already ascends in
	// RecvIdx-time, but not necessarily in index, so sort explicitly.
	for i, t := range g.Transfers {
		g.recvAt[t.Thief] = append(g.recvAt[t.Thief], idxRef{idx: t.RecvIdx, ref: i})
	}
	for i, h := range g.TokenHops {
		g.tokenAt[h.To] = append(g.tokenAt[h.To], idxRef{idx: h.RecvIdx, ref: i})
	}
	for r := range g.recvAt {
		sortRefs(g.recvAt[r])
		sortRefs(g.tokenAt[r])
	}
	for i := range g.Transfers {
		t := &g.Transfers[i]
		if ref, ok := refBefore(g.recvAt[t.Victim], t.SendIdx); ok {
			t.Parent = ref
			t.Depth = g.Transfers[ref].Depth + 1
		} else {
			t.Depth = 1
		}
	}
	return g
}

// resolveRequest recovers the steal request a transfer answered: the
// victim records EvStealRecv immediately before its EvWorkSend, and
// the thief's EvStealSend carries the same request id.
func (g *Graph) resolveRequest(t *Transfer, stealSendAt []map[uint64]int) {
	ev := g.tr.Events[t.Victim]
	if t.SendIdx == 0 {
		return
	}
	pe := ev[t.SendIdx-1]
	if pe.Kind != trace.EvStealRecv || pe.Peer != t.Thief {
		return // request observation evicted from the victim's ring
	}
	t.ReqID = uint64(pe.Arg)
	// The victim answered at a poll boundary iff an EvQuantumEnd sits
	// at the same timestamp earlier in its log (quantum end is
	// recorded before the poll that handles the request). Otherwise
	// the answer happened at delivery: the victim was idle, or the
	// one-sided protocol served the request mid-quantum.
	reqBound := true
	for j := t.SendIdx - 2; j >= 0 && ev[j].Time == pe.Time; j-- {
		if ev[j].Kind == trace.EvQuantumEnd {
			reqBound = false
			break
		}
	}
	if si, ok := stealSendAt[t.Thief][t.ReqID]; ok {
		se := g.tr.Events[t.Thief][si]
		if se.Kind == trace.EvStealSend && se.Peer == t.Victim && se.Time < t.Send {
			t.ReqSend = se.Time
			t.ReqSendIdx = si
		}
	}
	t.ReqBound = reqBound && t.ReqSendIdx >= 0
}

// addPeerIdx appends an event index to the peer-grouped map, creating
// the map on first use.
func addPeerIdx(m map[int][]int, peer, idx int) map[int][]int {
	if peer < 0 {
		return m
	}
	if m == nil {
		m = make(map[int][]int)
	}
	m[peer] = append(m[peer], idx)
	return m
}

// sortedPeers returns the map's keys in ascending order, so matching
// never depends on map iteration order.
func sortedPeers(m map[int][]int) []int {
	if len(m) == 0 {
		return nil
	}
	peers := make([]int, 0, len(m))
	for p := range m {
		peers = append(peers, p)
	}
	sort.Ints(peers)
	return peers
}

func sortRefs(list []idxRef) {
	sort.Slice(list, func(a, b int) bool { return list[a].idx < list[b].idx })
}

// MigrationDepths histograms the transfers by lineage depth:
// result[d] transfers moved work that had survived d steals. Index 0
// is always zero (a transfer is at least depth 1).
func (g *Graph) MigrationDepths() []uint64 {
	var out []uint64
	for _, t := range g.Transfers {
		for len(out) <= t.Depth {
			out = append(out, 0)
		}
		out[t.Depth]++
	}
	return out
}

// MaxDepth returns the deepest migration observed, 0 with no transfers.
func (g *Graph) MaxDepth() int {
	max := 0
	for _, t := range g.Transfers {
		if t.Depth > max {
			max = t.Depth
		}
	}
	return max
}

// Chain returns the steal chain feeding transfer i, oldest first, as
// indices into Transfers: the element at depth 1 moved work off its
// original owner's line and the last element is i itself.
func (g *Graph) Chain(i int) []int {
	var rev []int
	for j := i; j >= 0; j = g.Transfers[j].Parent {
		rev = append(rev, j)
	}
	for a, b := 0, len(rev)-1; a < b; a, b = a+1, b-1 {
		rev[a], rev[b] = rev[b], rev[a]
	}
	return rev
}

// ChainRanks renders transfer i's chain as the rank route the work
// took: victim of the first hop, then each successive thief.
func (g *Graph) ChainRanks(i int) []int {
	chain := g.Chain(i)
	ranks := make([]int, 0, len(chain)+1)
	ranks = append(ranks, g.Transfers[chain[0]].Victim)
	for _, j := range chain {
		ranks = append(ranks, g.Transfers[j].Thief)
	}
	return ranks
}

// QuantaCount returns the total number of compute quanta (the causal
// graph's vertices) across ranks.
func (g *Graph) QuantaCount() int {
	n := 0
	for _, qs := range g.Quanta {
		n += len(qs)
	}
	return n
}
