package causal

import (
	"distws/internal/sim"
	"distws/internal/trace"
)

// SegmentKind classifies one span of the critical path.
type SegmentKind uint8

const (
	// SegCompute: a rank was expanding nodes.
	SegCompute SegmentKind = iota
	// SegStealRTT: the steal request whose answer carried the critical
	// work was in flight (request send to victim answer, including
	// mailbox queueing at the victim).
	SegStealRTT
	// SegTransfer: the critical work itself was on the wire (victim's
	// work send to thief's receive).
	SegTransfer
	// SegToken: a termination token was in flight.
	SegToken
	// SegWait: residual spans the event log does not attribute —
	// startup before a rank's first event, token holding, and poll
	// granularity gaps.
	SegWait

	// NumSegmentKinds bounds the kind space for tables.
	NumSegmentKinds
)

var segmentKindNames = [NumSegmentKinds]string{
	SegCompute:  "compute",
	SegStealRTT: "steal-rtt",
	SegTransfer: "transfer",
	SegToken:    "token",
	SegWait:     "wait",
}

func (k SegmentKind) String() string {
	if int(k) < len(segmentKindNames) {
		return segmentKindNames[k]
	}
	return "unknown"
}

// Segment is one span of the critical path, attributed to a rank (for
// cross-rank spans: the receiving side's rank for transfers and
// tokens, the thief for steal round trips).
type Segment struct {
	Kind       SegmentKind
	Rank       int
	Start, End sim.Time
}

// Duration returns the segment length.
func (s Segment) Duration() sim.Duration { return s.End.Sub(s.Start) }

// Path is the extracted critical path: a contiguous chain of segments
// covering [0, makespan] exactly, so the kind totals decompose the
// makespan (sum(ByKind) == Total == trace End).
type Path struct {
	Segments []Segment
	ByKind   [NumSegmentKinds]sim.Duration
	Total    sim.Duration
}

// CriticalPath walks the causal graph backward from termination
// detection (rank 0 at the trace end) and returns the chain of
// segments that determined the makespan.
//
// The walk repeatedly explains "why did rank r only reach this point
// at time t": the latest causally relevant event at r before t is
// either a quantum boundary (the rank was computing), a matched work
// receive (the rank was fed by a transfer — the walk crosses to the
// victim's quantum, or to the thief's request when the victim answered
// at delivery), or a matched token receive (the walk crosses to the
// token's sender). Gaps between those anchors become SegWait. Each
// step extends the covered interval contiguously downward, which is
// what makes the decomposition identity exact by construction.
func CriticalPath(g *Graph) Path {
	var p Path
	tr := g.tr
	if tr == nil || tr.Ranks() == 0 || tr.End == 0 {
		return p
	}
	p.Total = sim.Duration(tr.End)
	if tr.Events == nil {
		p.Segments = []Segment{{Kind: SegWait, Rank: 0, Start: 0, End: tr.End}}
		p.ByKind[SegWait] = p.Total
		return p
	}

	// The walk emits latest-first, so a new span abuts the previously
	// emitted one at its Start; coalesce same-kind same-rank neighbours
	// (e.g. back-to-back compute quanta) into one segment.
	emit := func(kind SegmentKind, rank int, start, end sim.Time) {
		if end <= start {
			return
		}
		if n := len(p.Segments); n > 0 {
			last := &p.Segments[n-1]
			if last.Kind == kind && last.Rank == rank && last.Start == end {
				last.Start = start
				return
			}
		}
		p.Segments = append(p.Segments, Segment{Kind: kind, Rank: rank, Start: start, End: end})
	}

	// Termination is detected at rank 0; events recorded after the
	// trace end (the terminate broadcast, in-flight tokens) are skipped
	// by the time guard in the anchor scan.
	r, t := 0, tr.End
	bound := len(tr.Events[0])
	// Every step consumes at least one event index somewhere, so twice
	// the log size bounds the walk; the cap is a backstop against a
	// malformed (hand-edited) trace, not a path the engine's own traces
	// can reach.
	for steps := 2*tr.TotalEvents() + 64; t > 0; steps-- {
		if steps <= 0 {
			emit(SegWait, r, 0, t)
			break
		}
		es := tr.Events[r]
		i := bound - 1
		ref := 0
		for ; i >= 0; i-- {
			if es[i].Time > t {
				continue
			}
			k := es[i].Kind
			if k == trace.EvQuantumStart || k == trace.EvQuantumEnd {
				break
			}
			if k == trace.EvWorkRecv {
				if x, ok := lookupRef(g.recvAt[r], i); ok {
					ref = x
					break
				}
			}
			if k == trace.EvTokenRecv {
				if x, ok := lookupRef(g.tokenAt[r], i); ok {
					ref = x
					break
				}
			}
		}
		if i < 0 {
			// No causal history at this rank: startup (or a fully
			// evicted prefix).
			emit(SegWait, r, 0, t)
			break
		}
		e := es[i]
		switch e.Kind {
		case trace.EvQuantumEnd:
			emit(SegWait, r, e.Time, t)
			j := i - 1
			for j >= 0 && es[j].Kind != trace.EvQuantumStart {
				j--
			}
			if j < 0 {
				emit(SegCompute, r, 0, e.Time)
				t = 0
				break
			}
			emit(SegCompute, r, es[j].Time, e.Time)
			t, bound = es[j].Time, j
		case trace.EvQuantumStart:
			// Inside a quantum (it was cancelled by termination, or the
			// walk landed mid-quantum under the one-sided protocol).
			emit(SegCompute, r, e.Time, t)
			t, bound = e.Time, i
		case trace.EvWorkRecv:
			x := g.Transfers[ref]
			emit(SegWait, r, x.Recv, t)
			emit(SegTransfer, r, x.Send, x.Recv)
			if x.ReqBound {
				// The victim answered at delivery: the makespan was
				// waiting on the request's round trip, charged to the
				// thief that posted it.
				emit(SegStealRTT, r, x.ReqSend, x.Send)
				t, bound = x.ReqSend, x.ReqSendIdx
			} else {
				// The victim answered at its own poll boundary: follow
				// the victim's compute.
				r, t, bound = x.Victim, x.Send, x.SendIdx
			}
		case trace.EvTokenRecv:
			h := g.TokenHops[ref]
			emit(SegWait, r, h.Recv, t)
			emit(SegToken, r, h.Send, h.Recv)
			r, t, bound = h.From, h.Send, h.SendIdx
		}
	}

	// The walk emitted latest-first; present the path forward in time.
	for a, b := 0, len(p.Segments)-1; a < b; a, b = a+1, b-1 {
		p.Segments[a], p.Segments[b] = p.Segments[b], p.Segments[a]
	}
	for _, s := range p.Segments {
		p.ByKind[s.Kind] += s.Duration()
	}
	return p
}
