package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"distws/internal/sim"
	"distws/internal/trace"
)

func chromeFixture() *trace.Trace {
	tr := analysisTrace()
	tr.Transitions = [][]trace.Transition{
		{{Time: 0, State: trace.Active}, {Time: 40, State: trace.Idle}, {Time: 70, State: trace.Active}},
		{{Time: 0, State: trace.Active}},
		{{Time: 0, State: trace.Active}, {Time: 50, State: trace.Idle}},
	}
	tr.Sessions = [][]trace.Session{
		{{Start: 40, End: 70, Attempts: 2, Failed: 1, Success: true}},
		nil,
		{{Start: 50, End: 120, Attempts: 1, Failed: 1}},
	}
	return tr
}

func TestWriteChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, chromeFixture()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			ID    int            `json:"id"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}
	phases := map[string]int{}
	var threads, actives, flowStarts, flowEnds, refusedStarts, refusedEnds int
	for _, e := range doc.TraceEvents {
		phases[e.Phase]++
		switch {
		case e.Name == "thread_name":
			threads++
		case e.Name == "active" && e.Phase == "X":
			actives++
			if e.Dur <= 0 {
				t.Fatalf("active slice with non-positive duration: %+v", e)
			}
		case e.Name == "steal" && e.Phase == "s":
			flowStarts++
		case e.Name == "steal" && e.Phase == "f":
			flowEnds++
			if e.ID == 0 {
				t.Fatal("flow event without id")
			}
		case e.Name == "steal-refused" && e.Phase == "s":
			refusedStarts++
		case e.Name == "steal-refused" && e.Phase == "f":
			refusedEnds++
			if e.ID == 0 {
				t.Fatal("refused flow event without id")
			}
		}
	}
	if threads != 3 {
		t.Fatalf("thread metadata for %d ranks, want 3", threads)
	}
	// Rank 0 has two active slices, ranks 1 and 2 one each.
	if actives != 4 {
		t.Fatalf("active slices = %d, want 4", actives)
	}
	if phases["i"] == 0 {
		t.Fatal("no instant events for the protocol log")
	}
	// One successful steal → exactly one flow arrow; likewise the one
	// refused steal; the aborted steal never resolves and gets none.
	if flowStarts != 1 || flowEnds != 1 {
		t.Fatalf("flow events: %d starts, %d ends, want 1 each", flowStarts, flowEnds)
	}
	if refusedStarts != 1 || refusedEnds != 1 {
		t.Fatalf("refused flow events: %d starts, %d ends, want 1 each", refusedStarts, refusedEnds)
	}
	// Timestamps are microseconds: the t=10ns steal-send lands at 0.01.
	if !strings.Contains(buf.String(), `"ts":0.01`) {
		t.Fatal("nanosecond→microsecond conversion missing")
	}
}

func TestChromeOccupancyTrack(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, chromeFixture()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	type sample struct {
		ts     float64
		active float64
	}
	var got []sample
	for _, e := range doc.TraceEvents {
		if e.Name != "occupancy" || e.Phase != "C" {
			continue
		}
		got = append(got, sample{ts: e.TS, active: e.Args["active"].(float64)})
	}
	// Transitions: three ranks active at 0 (coalesced into one sample),
	// rank 0 idles at 40, rank 2 at 50, rank 0 resumes at 70, plus the
	// closing sample at the 120ns trace end. Timestamps in usec.
	want := []sample{{0, 3}, {0.04, 2}, {0.05, 1}, {0.07, 2}, {0.12, 2}}
	if len(got) != len(want) {
		t.Fatalf("occupancy samples = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("occupancy sample %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestWriteChromeTraceHighlight(t *testing.T) {
	var buf bytes.Buffer
	opts := ChromeOptions{Highlight: []HighlightSpan{
		{Name: "compute", Rank: 1, Start: 0, End: 40},
		{Name: "transfer", Rank: 2, Start: 40, End: 55},
		{Name: "compute", Rank: 0, Start: 55, End: 120},
	}}
	if err := WriteChromeTraceOpts(&buf, chromeFixture(), opts); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Cat   string         `json:"cat"`
			Phase string         `json:"ph"`
			PID   int            `json:"pid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var spans, procMeta int
	for _, e := range doc.TraceEvents {
		if e.Cat == "critical" && e.Phase == "X" {
			spans++
			if e.PID != 1 {
				t.Fatalf("highlight span on pid %d, want 1", e.PID)
			}
			if _, ok := e.Args["rank"]; !ok {
				t.Fatalf("highlight span without rank arg: %+v", e)
			}
		}
		if e.Name == "process_name" && e.Phase == "M" && e.PID == 1 {
			procMeta++
		}
	}
	if spans != 3 {
		t.Fatalf("highlight spans = %d, want 3", spans)
	}
	if procMeta != 1 {
		t.Fatalf("highlight process metadata = %d, want 1", procMeta)
	}

	// Without highlights the extra process must not appear.
	buf.Reset()
	if err := WriteChromeTraceOpts(&buf, chromeFixture(), ChromeOptions{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "critical path") {
		t.Fatal("highlight process emitted without highlight spans")
	}
}

func TestWriteChromeTraceEventless(t *testing.T) {
	// A trace without an event log still renders activity slices.
	tr := &trace.Trace{
		End:         100,
		Transitions: [][]trace.Transition{{{Time: 0, State: trace.Active}}},
		Sessions:    make([][]trace.Session, 1),
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
}

func TestHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim_steal_requests_total").Add(7)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		resp.Body.Close()
		return resp, buf.String()
	}

	resp, body := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content-type %q", ct)
	}
	if !strings.Contains(body, "sim_steal_requests_total 7") {
		t.Fatalf("/metrics body missing counter:\n%s", body)
	}

	resp, body = get("/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}

	resp, body = get("/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: status %d body %q", resp.StatusCode, body)
	}

	resp, _ = get("/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status %d, want 404", resp.StatusCode)
	}

	resp, _ = get("/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", resp.StatusCode)
	}
}

// TestChromeExporterCoversEveryEventKind feeds the exporter one event
// of every kind the trace vocabulary defines and checks each one comes
// out as a protocol instant under its wire name. The exporter renders
// kinds generically (Kind.String()), so this is the drift gate: a kind
// added to internal/trace whose String maps to "unknown", or a hole in
// the name table, fails here rather than silently mislabeling traces.
func TestChromeExporterCoversEveryEventKind(t *testing.T) {
	tr := &trace.Trace{
		End:         sim.Time(int64(trace.NumEventKinds) * 10),
		Transitions: [][]trace.Transition{{{Time: 0, State: trace.Active}}},
		Events:      make([][]trace.Event, 1),
	}
	for k := trace.EventKind(0); k < trace.NumEventKinds; k++ {
		tr.Events[0] = append(tr.Events[0], trace.Event{
			Time: sim.Time(int64(k) * 10), Kind: k, Peer: -1,
		})
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Cat   string `json:"cat"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	seen := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Cat == "protocol" && e.Phase == "i" {
			seen[e.Name] = true
		}
	}
	for k := trace.EventKind(0); k < trace.NumEventKinds; k++ {
		name := k.String()
		if name == "unknown" || name == "" {
			t.Errorf("kind %d has no wire name; extend eventKindNames in internal/trace", k)
			continue
		}
		if !seen[name] {
			t.Errorf("kind %v never appeared as a protocol instant in the exported trace", k)
		}
	}
	if len(seen) != int(trace.NumEventKinds) {
		t.Errorf("exporter emitted %d distinct protocol names, want %d", len(seen), trace.NumEventKinds)
	}
}

// TestChromeParWindows: the parallel-kernel process renders one
// windows lane (serialized windows named by cause) plus one lane per
// shard with the barrier-merged message counts — and stays valid JSON
// alongside the per-rank threads.
func TestChromeParWindows(t *testing.T) {
	spans := []ParWindowSpan{
		{Start: 0, End: 4000, MergedByShard: []uint32{0, 3}},
		{Start: 4000, End: 8000, Serialized: true, Cause: "token-due"},
	}
	var buf bytes.Buffer
	err := WriteChromeTraceOpts(&buf, chromeFixture(), ChromeOptions{ParWindows: spans})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Cat   string         `json:"cat"`
			Phase string         `json:"ph"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	var process, windowLanes, shardLanes, parallel, serialized, merged int
	for _, e := range doc.TraceEvents {
		if e.PID != 2 {
			continue
		}
		switch {
		case e.Name == "process_name":
			process++
			if e.Args["name"] != "parallel kernel" {
				t.Fatalf("process name = %v", e.Args["name"])
			}
		case e.Name == "thread_name" && e.Args["name"] == "windows":
			windowLanes++
		case e.Name == "thread_name":
			shardLanes++
		case e.Cat == "window" && e.Name == "parallel":
			parallel++
		case e.Cat == "window-serialized":
			serialized++
			if e.Name != "token-due" {
				t.Fatalf("serialized window named %q, want its cause", e.Name)
			}
		case e.Name == "merged":
			merged++
			if e.TID != 2 { // shard 1's lane: the only one with traffic
				t.Fatalf("merged slice on tid %d, want 2", e.TID)
			}
			if e.Args["messages"] != float64(3) {
				t.Fatalf("merged args = %v", e.Args)
			}
		}
	}
	if process != 1 || windowLanes != 1 || shardLanes != 2 {
		t.Fatalf("lanes: %d process, %d window, %d shard; want 1/1/2",
			process, windowLanes, shardLanes)
	}
	if parallel != 1 || serialized != 1 || merged != 1 {
		t.Fatalf("slices: %d parallel, %d serialized, %d merged; want 1 each",
			parallel, serialized, merged)
	}
	// Without ParWindows no PID-2 events exist (the rank process owns
	// everything): profiling stays out of unprofiled conversions.
	buf.Reset()
	if err := WriteChromeTrace(&buf, chromeFixture()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "parallel kernel") {
		t.Fatal("unprofiled conversion emitted the parallel-kernel process")
	}
}
