package obs

import (
	"fmt"
	"sort"
	"strings"

	"distws/internal/sim"
	"distws/internal/trace"
)

// StealOutcome classifies one reconstructed steal transaction.
type StealOutcome uint8

const (
	// StealSuccess: the thief received work.
	StealSuccess StealOutcome = iota
	// StealRefused: the victim answered no-work.
	StealRefused
	// StealAborted: the thief gave up before any reply arrived.
	StealAborted
)

func (o StealOutcome) String() string {
	switch o {
	case StealSuccess:
		return "success"
	case StealRefused:
		return "refused"
	default:
		return "aborted"
	}
}

// StealPair is one steal transaction reconstructed from a trace's
// protocol events: the span from the thief posting the request to it
// learning the outcome (work, refusal, or its own abort timer).
type StealPair struct {
	Thief, Victim int
	Send, End     sim.Time
	Outcome       StealOutcome
	// Nodes transferred; nonzero only on success.
	Nodes int64
}

// Latency returns the steal round trip as observed by the thief.
func (p StealPair) Latency() sim.Duration { return p.End.Sub(p.Send) }

// PairSteals reconstructs steal transactions from the event log. Each
// rank has at most one outstanding request (the protocol is
// stop-and-wait), so pairing is a per-rank scan: a steal-send opens a
// transaction, the next work/no-work delivery or abort closes it.
// Unmatched events — ring evictions, a send still open at trace end, a
// late reply to an aborted request — are skipped. Results are ordered
// by send time (ties by thief rank) for deterministic reports.
func PairSteals(tr *trace.Trace) []StealPair {
	var pairs []StealPair
	for rank, es := range tr.Events {
		open := -1 // index into pairs of this rank's pending transaction
		for _, e := range es {
			switch e.Kind {
			case trace.EvStealSend:
				// A second send with one still open means the close event
				// was evicted from the ring; drop the orphan.
				if open >= 0 {
					pairs = pairs[:open]
				}
				open = len(pairs)
				pairs = append(pairs, StealPair{
					Thief: rank, Victim: e.Peer, Send: e.Time,
				})
			case trace.EvWorkRecv:
				if open >= 0 {
					pairs[open].End = e.Time
					pairs[open].Outcome = StealSuccess
					pairs[open].Nodes = e.Arg
					open = -1
				}
			case trace.EvNoWorkRecv:
				if open >= 0 {
					pairs[open].End = e.Time
					pairs[open].Outcome = StealRefused
					open = -1
				}
			case trace.EvStealAbort:
				if open >= 0 {
					pairs[open].End = e.Time
					pairs[open].Outcome = StealAborted
					open = -1
				}
			}
		}
		if open >= 0 {
			pairs = pairs[:open] // still in flight at trace end
		}
	}
	sort.SliceStable(pairs, func(i, j int) bool {
		if pairs[i].Send != pairs[j].Send {
			return pairs[i].Send < pairs[j].Send
		}
		return pairs[i].Thief < pairs[j].Thief
	})
	return pairs
}

// StealLatencyStats summarizes steal round-trip latencies, the
// distribution Gast et al.'s latency analysis needs (arXiv:1805.00857)
// rather than the aggregate search-time means the paper tabulates.
type StealLatencyStats struct {
	Count                     int
	Success, Refused, Aborted int
	Mean, P50, P95, P99, Max  sim.Duration
	// SuccessP50 isolates the successful round trips: these include
	// the chunk transfer, so they run longer than refusals.
	SuccessP50 sim.Duration
	// NodesMoved totals the nodes carried by successful steals.
	NodesMoved int64
}

// StealLatency computes exact latency percentiles over reconstructed
// steal transactions (contrast with Histogram.Quantile's bucketed
// estimate, which serves the live /metrics endpoint).
func StealLatency(pairs []StealPair) StealLatencyStats {
	st := StealLatencyStats{Count: len(pairs)}
	if len(pairs) == 0 {
		return st
	}
	lat := make([]sim.Duration, 0, len(pairs))
	var okLat []sim.Duration
	var sum sim.Duration
	for _, p := range pairs {
		d := p.Latency()
		lat = append(lat, d)
		sum += d
		if d > st.Max {
			st.Max = d
		}
		switch p.Outcome {
		case StealSuccess:
			st.Success++
			st.NodesMoved += p.Nodes
			okLat = append(okLat, d)
		case StealRefused:
			st.Refused++
		case StealAborted:
			st.Aborted++
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	st.Mean = sum / sim.Duration(len(lat))
	st.P50 = quantileDur(lat, 0.50)
	st.P95 = quantileDur(lat, 0.95)
	st.P99 = quantileDur(lat, 0.99)
	if len(okLat) > 0 {
		sort.Slice(okLat, func(i, j int) bool { return okLat[i] < okLat[j] })
		st.SuccessP50 = quantileDur(okLat, 0.50)
	}
	return st
}

// quantileDur returns the q-quantile of sorted durations (nearest-rank).
func quantileDur(sorted []sim.Duration, q float64) sim.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// Traffic reconstructs the rank×rank protocol-message matrix from the
// trace's send events ([from][to] counts): the view that shows which
// links carry the failed-steal floods of the paper's Figure 7. Nil
// when the trace has no event log.
func Traffic(tr *trace.Trace) [][]uint64 {
	if tr.Events == nil {
		return nil
	}
	n := tr.Ranks()
	m := make([][]uint64, n)
	for i := range m {
		m[i] = make([]uint64, n)
	}
	for rank, es := range tr.Events {
		for _, e := range es {
			switch e.Kind {
			case trace.EvStealSend, trace.EvWorkSend, trace.EvNoWorkSend, trace.EvTokenSend:
				if e.Peer >= 0 && e.Peer < n {
					m[rank][e.Peer]++
				}
			}
		}
	}
	return m
}

// heatGlyphs maps log-scaled intensity to ASCII, dark to bright.
const heatGlyphs = " .:-=+*#%@"

// RenderHeatmap renders m as an ASCII heatmap of at most size×size
// tiles. When the matrix outgrows the terminal, ranks aggregate into
// tiles; glyph intensity is log-scaled so one hot link cannot wash out
// the rest of the picture.
func RenderHeatmap(m [][]uint64, size int) string {
	n := len(m)
	if n == 0 {
		return "(no traffic)\n"
	}
	if size < 1 {
		size = 1
	}
	tiles := size
	if tiles > n {
		tiles = n
	}
	agg := make([][]uint64, tiles)
	for i := range agg {
		agg[i] = make([]uint64, tiles)
	}
	var max uint64
	for i := 0; i < n; i++ {
		for j, v := range m[i] {
			ti, tj := i*tiles/n, j*tiles/n
			agg[ti][tj] += v
			if agg[ti][tj] > max {
				max = agg[ti][tj]
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "traffic matrix: %d ranks as %dx%d tiles, rows=sender, max tile %d msgs\n", n, tiles, tiles, max)
	logMax := log2u(max)
	for i := 0; i < tiles; i++ {
		b.WriteString("  |")
		for j := 0; j < tiles; j++ {
			v := agg[i][j]
			var g byte = ' '
			if v > 0 {
				idx := 1
				if logMax > 0 {
					idx = 1 + int(float64(log2u(v))/float64(logMax)*float64(len(heatGlyphs)-2)+0.5)
				}
				if idx >= len(heatGlyphs) {
					idx = len(heatGlyphs) - 1
				}
				g = heatGlyphs[idx]
			}
			b.WriteByte(g)
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// log2u is floor(log2(v))+1 for v>0, 0 for v==0 (i.e. bits.Len64
// without the import noise at this call shape).
func log2u(v uint64) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

// TailStats breaks down the termination tail: everything after the
// last successful work transfer, when remaining steal traffic is pure
// overhead and the token ring winds the run down. At scale this tail
// is where the paper's 8192-rank makespans go.
type TailStats struct {
	// LastTransfer is when the final successful steal completed.
	LastTransfer sim.Time
	// Duration is End - LastTransfer; Fraction is Duration/End.
	Duration sim.Duration
	Fraction float64
	// FailedInTail counts steals that ended (refused or aborted)
	// during the tail.
	FailedInTail int
	// TokenHopsInTail and TokenHopsTotal count termination-token
	// deliveries in the tail and over the whole run.
	TokenHopsInTail, TokenHopsTotal int
}

// TerminationTail computes the tail breakdown from a trace and its
// reconstructed steal pairs (pass PairSteals(tr)).
func TerminationTail(tr *trace.Trace, pairs []StealPair) TailStats {
	var st TailStats
	for _, p := range pairs {
		if p.Outcome == StealSuccess && p.End > st.LastTransfer {
			st.LastTransfer = p.End
		}
	}
	for _, p := range pairs {
		if p.Outcome != StealSuccess && p.End >= st.LastTransfer {
			st.FailedInTail++
		}
	}
	for _, es := range tr.Events {
		for _, e := range es {
			if e.Kind == trace.EvTokenRecv {
				st.TokenHopsTotal++
				if e.Time >= st.LastTransfer {
					st.TokenHopsInTail++
				}
			}
		}
	}
	if tr.End > st.LastTransfer {
		st.Duration = tr.End.Sub(st.LastTransfer)
	}
	if tr.End > 0 {
		st.Fraction = float64(st.Duration) / float64(tr.End)
	}
	return st
}
