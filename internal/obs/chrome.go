package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"distws/internal/sim"
	"distws/internal/trace"
)

// chromeEvent is one record of the Chrome trace-event format. Field
// names are fixed by the format (Trace Event Format spec); timestamps
// are microseconds. Perfetto and chrome://tracing both load the
// {"traceEvents": [...]} JSON object form emitted here.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	ID    int            `json:"id,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// usec converts virtual nanoseconds to trace microseconds.
func usec(t sim.Time) float64 { return float64(t) / 1e3 }

// WriteChromeTrace renders tr as Chrome trace-event JSON: one thread
// per rank, complete ("X") slices for active phases and work-discovery
// sessions, instant events for the protocol log, and flow arrows from
// each successful steal request to its work delivery. Load the file at
// ui.perfetto.dev (or chrome://tracing) to scrub through the run.
func WriteChromeTrace(w io.Writer, tr *trace.Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	first := true
	emit := func(e chromeEvent) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		return enc.Encode(e) // Encode's trailing newline is valid JSON whitespace
	}

	if err := emit(chromeEvent{
		Name: "process_name", Phase: "M", PID: 0,
		Args: map[string]any{"name": "distws simulation"},
	}); err != nil {
		return err
	}
	for rank := 0; rank < tr.Ranks(); rank++ {
		if err := emit(chromeEvent{
			Name: "thread_name", Phase: "M", PID: 0, TID: rank,
			Args: map[string]any{"name": rankLabel(rank)},
		}); err != nil {
			return err
		}
	}

	// Active phases: each active transition opens a slice that closes
	// at the next transition (or at trace end).
	for rank, trs := range tr.Transitions {
		for i, x := range trs {
			if x.State != trace.Active {
				continue
			}
			end := tr.End
			if i+1 < len(trs) {
				end = trs[i+1].Time
			}
			if err := emit(chromeEvent{
				Name: "active", Cat: "activity", Phase: "X",
				TS: usec(x.Time), Dur: usec(end) - usec(x.Time), PID: 0, TID: rank,
			}); err != nil {
				return err
			}
		}
	}

	// Work-discovery sessions as slices with their steal statistics.
	for rank, ss := range tr.Sessions {
		for _, s := range ss {
			if err := emit(chromeEvent{
				Name: "steal-search", Cat: "session", Phase: "X",
				TS: usec(s.Start), Dur: usec(s.End) - usec(s.Start), PID: 0, TID: rank,
				Args: map[string]any{
					"attempts": s.Attempts, "failed": s.Failed, "success": s.Success,
				},
			}); err != nil {
				return err
			}
		}
	}

	// Protocol events as thread-scoped instants.
	for rank, es := range tr.Events {
		for _, e := range es {
			if err := emit(chromeEvent{
				Name: e.Kind.String(), Cat: "protocol", Phase: "i", Scope: "t",
				TS: usec(e.Time), PID: 0, TID: rank,
				Args: map[string]any{"peer": e.Peer, "arg": e.Arg},
			}); err != nil {
				return err
			}
		}
	}

	// Flow arrows for successful steals: Perfetto draws an arrow from
	// the request send on the thief to the work delivery.
	for id, p := range PairSteals(tr) {
		if p.Outcome != StealSuccess {
			continue
		}
		if err := emit(chromeEvent{
			Name: "steal", Cat: "flow", Phase: "s",
			TS: usec(p.Send), PID: 0, TID: p.Thief, ID: id + 1,
		}); err != nil {
			return err
		}
		if err := emit(chromeEvent{
			Name: "steal", Cat: "flow", Phase: "f", BP: "e",
			TS: usec(p.End), PID: 0, TID: p.Thief, ID: id + 1,
			Args: map[string]any{"victim": p.Victim, "nodes": p.Nodes},
		}); err != nil {
			return err
		}
	}

	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// rankLabel zero-pads so Perfetto's lexicographic thread sort matches
// rank order.
func rankLabel(rank int) string {
	return fmt.Sprintf("rank %06d", rank)
}
