package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"distws/internal/sim"
	"distws/internal/trace"
)

// chromeEvent is one record of the Chrome trace-event format. Field
// names are fixed by the format (Trace Event Format spec); timestamps
// are microseconds. Perfetto and chrome://tracing both load the
// {"traceEvents": [...]} JSON object form emitted here.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	ID    int            `json:"id,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// usec converts virtual nanoseconds to trace microseconds.
func usec(t sim.Time) float64 { return float64(t) / 1e3 }

// HighlightSpan is one span rendered on the highlight track (PID 1) —
// the Chrome exporter's hook for derived analyses like the critical
// path. This package only draws the spans; internal/obs/causal computes
// them, keeping the exporter free of a dependency on the analysis.
type HighlightSpan struct {
	// Name labels the slice (e.g. a critical-path segment kind).
	Name string
	// Rank is attached as an argument so the viewer can cross-reference
	// the rank timeline the span came from.
	Rank       int
	Start, End sim.Time
}

// ParWindowSpan is one conservative time window rendered on the
// parallel-kernel process (PID 2). As with HighlightSpan, this package
// only draws the spans; internal/obs/parprof computes them from its
// window ledger, keeping the exporter free of the dependency.
type ParWindowSpan struct {
	Start, End sim.Time
	// Serialized windows render under their cause name so they stand
	// out from the "parallel" windows around them.
	Serialized bool
	// Cause names the serialization cause ("" for parallel windows).
	Cause string
	// MergedByShard[s] counts the staged messages merged into shard s's
	// kernel at the barrier that opened this window; nil when none.
	MergedByShard []uint32
}

// ChromeOptions selects the optional tracks of WriteChromeTraceOpts.
type ChromeOptions struct {
	// Highlight, when non-empty, adds a "critical path" process whose
	// single thread carries the given spans as slices.
	Highlight []HighlightSpan
	// ParWindows, when non-empty, adds a "parallel kernel" process:
	// one windows lane marking every barrier window (serialized ones
	// named by cause), plus one lane per shard carrying the shard's
	// barrier-merged message counts.
	ParWindows []ParWindowSpan
}

// WriteChromeTrace renders tr as Chrome trace-event JSON: one thread
// per rank, complete ("X") slices for active phases and work-discovery
// sessions, instant events for the protocol log, flow arrows for steal
// transactions, and an occupancy counter track. Load the file at
// ui.perfetto.dev (or chrome://tracing) to scrub through the run.
func WriteChromeTrace(w io.Writer, tr *trace.Trace) error {
	return WriteChromeTraceOpts(w, tr, ChromeOptions{})
}

// WriteChromeTraceOpts is WriteChromeTrace with optional extra tracks.
func WriteChromeTraceOpts(w io.Writer, tr *trace.Trace, opts ChromeOptions) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	first := true
	emit := func(e chromeEvent) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		return enc.Encode(e) // Encode's trailing newline is valid JSON whitespace
	}

	if err := emit(chromeEvent{
		Name: "process_name", Phase: "M", PID: 0,
		Args: map[string]any{"name": "distws simulation"},
	}); err != nil {
		return err
	}
	for rank := 0; rank < tr.Ranks(); rank++ {
		if err := emit(chromeEvent{
			Name: "thread_name", Phase: "M", PID: 0, TID: rank,
			Args: map[string]any{"name": rankLabel(rank)},
		}); err != nil {
			return err
		}
	}

	// Active phases: each active transition opens a slice that closes
	// at the next transition (or at trace end).
	for rank, trs := range tr.Transitions {
		for i, x := range trs {
			if x.State != trace.Active {
				continue
			}
			end := tr.End
			if i+1 < len(trs) {
				end = trs[i+1].Time
			}
			if err := emit(chromeEvent{
				Name: "active", Cat: "activity", Phase: "X",
				TS: usec(x.Time), Dur: usec(end) - usec(x.Time), PID: 0, TID: rank,
			}); err != nil {
				return err
			}
		}
	}

	// Work-discovery sessions as slices with their steal statistics.
	for rank, ss := range tr.Sessions {
		for _, s := range ss {
			if err := emit(chromeEvent{
				Name: "steal-search", Cat: "session", Phase: "X",
				TS: usec(s.Start), Dur: usec(s.End) - usec(s.Start), PID: 0, TID: rank,
				Args: map[string]any{
					"attempts": s.Attempts, "failed": s.Failed, "success": s.Success,
				},
			}); err != nil {
				return err
			}
		}
	}

	// Protocol events as thread-scoped instants.
	for rank, es := range tr.Events {
		for _, e := range es {
			if err := emit(chromeEvent{
				Name: e.Kind.String(), Cat: "protocol", Phase: "i", Scope: "t",
				TS: usec(e.Time), PID: 0, TID: rank,
				Args: map[string]any{"peer": e.Peer, "arg": e.Arg},
			}); err != nil {
				return err
			}
		}
	}

	// Flow arrows for steal transactions: Perfetto draws an arrow from
	// the request send on the thief to its resolution. Successful and
	// refused steals get separately named arrows so the failed-steal
	// floods of the paper's Figure 7 are visible as a distinct pattern;
	// aborted steals never resolve, so they stay arrow-less instants.
	for id, p := range PairSteals(tr) {
		var name string
		switch p.Outcome {
		case StealSuccess:
			name = "steal"
		case StealRefused:
			name = "steal-refused"
		default:
			continue
		}
		if err := emit(chromeEvent{
			Name: name, Cat: "flow", Phase: "s",
			TS: usec(p.Send), PID: 0, TID: p.Thief, ID: id + 1,
		}); err != nil {
			return err
		}
		if err := emit(chromeEvent{
			Name: name, Cat: "flow", Phase: "f", BP: "e",
			TS: usec(p.End), PID: 0, TID: p.Thief, ID: id + 1,
			Args: map[string]any{"victim": p.Victim, "nodes": p.Nodes},
		}); err != nil {
			return err
		}
	}

	// Occupancy counter track: the number of active ranks at each
	// transition timestamp — the paper's occupancy curve as a Perfetto
	// "C" track, O(transitions) events.
	if err := emitOccupancy(tr, emit); err != nil {
		return err
	}

	// Highlight track: derived spans (the critical path) on their own
	// process so they sit visually apart from the rank timelines.
	if len(opts.Highlight) > 0 {
		if err := emit(chromeEvent{
			Name: "process_name", Phase: "M", PID: 1,
			Args: map[string]any{"name": "critical path"},
		}); err != nil {
			return err
		}
		for _, h := range opts.Highlight {
			if err := emit(chromeEvent{
				Name: h.Name, Cat: "critical", Phase: "X",
				TS: usec(h.Start), Dur: usec(h.End) - usec(h.Start), PID: 1, TID: 0,
				Args: map[string]any{"rank": h.Rank},
			}); err != nil {
				return err
			}
		}
	}

	// Parallel-kernel track: the sharded run's window structure, with
	// serialized windows highlighted by cause and per-shard lanes for
	// the barrier-merged traffic.
	if len(opts.ParWindows) > 0 {
		if err := emitParWindows(opts.ParWindows, emit); err != nil {
			return err
		}
	}

	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// emitParWindows renders the parallel-kernel process (PID 2): TID 0 is
// the windows lane — one slice per window, serialized ones named by
// their cause — and TID 1+s is shard s's lane, carrying a slice per
// window in which the opening barrier merged messages into that shard.
func emitParWindows(spans []ParWindowSpan, emit func(chromeEvent) error) error {
	if err := emit(chromeEvent{
		Name: "process_name", Phase: "M", PID: 2,
		Args: map[string]any{"name": "parallel kernel"},
	}); err != nil {
		return err
	}
	if err := emit(chromeEvent{
		Name: "thread_name", Phase: "M", PID: 2, TID: 0,
		Args: map[string]any{"name": "windows"},
	}); err != nil {
		return err
	}
	shards := 0
	for _, s := range spans {
		if len(s.MergedByShard) > shards {
			shards = len(s.MergedByShard)
		}
	}
	for s := 0; s < shards; s++ {
		if err := emit(chromeEvent{
			Name: "thread_name", Phase: "M", PID: 2, TID: 1 + s,
			Args: map[string]any{"name": fmt.Sprintf("shard %03d", s)},
		}); err != nil {
			return err
		}
	}
	for _, w := range spans {
		name, cat := "parallel", "window"
		if w.Serialized {
			name, cat = w.Cause, "window-serialized"
		}
		if err := emit(chromeEvent{
			Name: name, Cat: cat, Phase: "X",
			TS: usec(w.Start), Dur: usec(w.End) - usec(w.Start), PID: 2, TID: 0,
		}); err != nil {
			return err
		}
		for s, n := range w.MergedByShard {
			if n == 0 {
				continue
			}
			if err := emit(chromeEvent{
				Name: "merged", Cat: "window", Phase: "X",
				TS: usec(w.Start), Dur: usec(w.End) - usec(w.Start), PID: 2, TID: 1 + s,
				Args: map[string]any{"messages": n},
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// emitOccupancy merges the per-rank transitions into one step curve of
// active-rank count and emits it as counter events.
func emitOccupancy(tr *trace.Trace, emit func(chromeEvent) error) error {
	type step struct {
		t     sim.Time
		delta int
	}
	var steps []step
	for _, trs := range tr.Transitions {
		for _, x := range trs {
			d := -1
			if x.State == trace.Active {
				d = +1
			}
			steps = append(steps, step{t: x.Time, delta: d})
		}
	}
	if len(steps) == 0 {
		return nil
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i].t < steps[j].t })
	active := 0
	for i, s := range steps {
		active += s.delta
		// Coalesce simultaneous transitions into one counter sample.
		if i+1 < len(steps) && steps[i+1].t == s.t {
			continue
		}
		if err := emit(chromeEvent{
			Name: "occupancy", Cat: "activity", Phase: "C",
			TS: usec(s.t), PID: 0, TID: 0,
			Args: map[string]any{"active": active},
		}); err != nil {
			return err
		}
	}
	// Close the curve at trace end so the last step has width.
	if last := steps[len(steps)-1].t; last < tr.End {
		return emit(chromeEvent{
			Name: "occupancy", Cat: "activity", Phase: "C",
			TS: usec(tr.End), PID: 0, TID: 0,
			Args: map[string]any{"active": active},
		})
	}
	return nil
}

// rankLabel zero-pads so Perfetto's lexicographic thread sort matches
// rank order.
func rankLabel(rank int) string {
	return fmt.Sprintf("rank %06d", rank)
}
