package diff

import (
	"fmt"
	"io"

	"distws/internal/obs/ledger"
)

// Band is one tolerance band: an observed value passes against a
// baseline when |got-base| <= Abs + Rel*|base|. The zero band demands
// exact equality. One comparator serves two consumers: the
// scenario-matrix gate (manifest metrics) and the benchmark baseline
// gate (BENCH_sim.json entries).
type Band struct {
	// Rel is the allowed relative deviation (0.05 = ±5% of |base|).
	Rel float64 `json:"rel,omitempty"`
	// Abs is the allowed absolute deviation, in the metric's own unit.
	Abs float64 `json:"abs,omitempty"`
}

// Check reports whether got is within the band around base.
func (b Band) Check(base, got float64) bool {
	dev := got - base
	if dev < 0 {
		dev = -dev
	}
	scale := base
	if scale < 0 {
		scale = -scale
	}
	return dev <= b.Abs+b.Rel*scale
}

// Violation is one metric outside its band.
type Violation struct {
	// Name identifies the metric ("cell-id/makespan_ns").
	Name string  `json:"name"`
	Base float64 `json:"base"`
	Got  float64 `json:"got"`
	Band Band    `json:"band"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %.6g -> %.6g outside band (rel %.3g, abs %.3g)",
		v.Name, v.Base, v.Got, v.Band.Rel, v.Band.Abs)
}

// Gate accumulates band checks; order of Check calls fixes the order of
// reported violations, so callers checking in a deterministic order get
// deterministic reports.
type Gate struct {
	Checked    int
	Violations []Violation
}

// Check records a violation when got falls outside band around base.
func (g *Gate) Check(name string, band Band, base, got float64) {
	g.Checked++
	if !band.Check(base, got) {
		g.Violations = append(g.Violations, Violation{Name: name, Base: base, Got: got, Band: band})
	}
}

// OK reports whether every checked metric stayed in band.
func (g *Gate) OK() bool { return len(g.Violations) == 0 }

// Report writes one line per violation (or a pass summary).
func (g *Gate) Report(w io.Writer) error {
	if g.OK() {
		_, err := fmt.Fprintf(w, "tolerance gate: %d metric(s) checked, all in band\n", g.Checked)
		return err
	}
	if _, err := fmt.Fprintf(w, "tolerance gate: %d of %d metric(s) OUT OF BAND\n",
		len(g.Violations), g.Checked); err != nil {
		return err
	}
	for _, v := range g.Violations {
		if _, err := fmt.Fprintf(w, "  FAIL %s\n", v); err != nil {
			return err
		}
	}
	return nil
}

// Tolerances is the per-metric band policy for manifest comparisons.
// The simulator is deterministic, so a regenerated baseline matches
// exactly; the bands exist to absorb small deliberate behaviour drifts
// (a retuned constant, a protocol tweak) without a rebaseline, while
// still catching real regressions.
type Tolerances struct {
	// Makespan bounds the relative makespan drift per cell.
	Makespan Band
	// Nodes bounds tree-size drift (identical trees ⇒ exact; faulted
	// cells complete fewer nodes, so the band is relative).
	Nodes Band
	// Efficiency bounds absolute efficiency drift.
	Efficiency Band
	// StealSuccessRate bounds the absolute shift of successful/total.
	StealSuccessRate Band
	// CriticalShare bounds the absolute shift of each critical-path
	// segment's share of the makespan (0.05 = five points).
	CriticalShare Band
	// BlameShare bounds the absolute shift of each blame cause's share
	// of total rank-time.
	BlameShare Band
	// LostNodes bounds fault-cell work-loss drift.
	LostNodes Band
	// SerializedShare bounds the absolute shift of the parallel kernel's
	// serialized-window share (profiled cells only).
	SerializedShare Band
	// Goodput bounds the relative drift of each tenant's SLO-met
	// goodput (serving cells only).
	Goodput Band
	// SojournP95 bounds the relative drift of each tenant's p95 sojourn
	// latency (serving cells only).
	SojournP95 Band
	// Jain bounds the absolute shift of the serving fairness index.
	Jain Band
}

// DefaultTolerances is the matrix gate's committed policy (documented
// in DESIGN.md §12).
func DefaultTolerances() Tolerances {
	return Tolerances{
		Makespan:         Band{Rel: 0.05},
		Nodes:            Band{Rel: 0.01},
		Efficiency:       Band{Abs: 0.02},
		StealSuccessRate: Band{Abs: 0.05},
		CriticalShare:    Band{Abs: 0.05},
		BlameShare:       Band{Abs: 0.05},
		LostNodes:        Band{Rel: 0.25, Abs: 64},
		SerializedShare:  Band{Abs: 0.05},
		Goodput:          Band{Rel: 0.05, Abs: 1},
		SojournP95:       Band{Rel: 0.10},
		Jain:             Band{Abs: 0.05},
	}
}

// GateManifests checks got against base under the tolerance policy,
// recording violations into g under "id/metric" names. Metrics are
// checked in a fixed order so reports are deterministic.
func GateManifests(g *Gate, id string, base, got *ledger.Manifest, t Tolerances) {
	g.Check(id+"/makespan_ns", t.Makespan, float64(base.Result.MakespanNS), float64(got.Result.MakespanNS))
	g.Check(id+"/nodes", t.Nodes, float64(base.Result.Nodes), float64(got.Result.Nodes))
	g.Check(id+"/efficiency", t.Efficiency, base.Result.Efficiency, got.Result.Efficiency)

	rate := func(m *ledger.Manifest) float64 {
		if m.Result.StealRequests == 0 {
			return 0
		}
		return float64(m.Result.SuccessfulSteals) / float64(m.Result.StealRequests)
	}
	g.Check(id+"/steal_success_rate", t.StealSuccessRate, rate(base), rate(got))

	if base.Critical != nil && got.Critical != nil {
		cshare := func(ns, makespan int64) float64 {
			if makespan == 0 {
				return 0
			}
			return float64(ns) / float64(makespan)
		}
		bc, gc := base.Critical, got.Critical
		bm, gm := base.Result.MakespanNS, got.Result.MakespanNS
		for i, pair := range [][2]int64{
			{bc.ComputeNS, gc.ComputeNS},
			{bc.StealRTTNS, gc.StealRTTNS},
			{bc.TransferNS, gc.TransferNS},
			{bc.TokenNS, gc.TokenNS},
			{bc.WaitNS, gc.WaitNS},
		} {
			g.Check(id+"/critical_share_"+SegmentNames[i], t.CriticalShare,
				cshare(pair[0], bm), cshare(pair[1], gm))
		}
	}

	if base.Blame != nil && got.Blame != nil {
		bshare := func(e ledger.BlameEntry, ns int64) float64 {
			if e.TotalNS() == 0 {
				return 0
			}
			return float64(ns) / float64(e.TotalNS())
		}
		bb, gb := base.Blame.Total, got.Blame.Total
		for i, pair := range [][2]float64{
			{bshare(bb, bb.BusyNS), bshare(gb, gb.BusyNS)},
			{bshare(bb, bb.StartupNS), bshare(gb, gb.StartupNS)},
			{bshare(bb, bb.SearchNS), bshare(gb, gb.SearchNS)},
			{bshare(bb, bb.InFlightNS), bshare(gb, gb.InFlightNS)},
			{bshare(bb, bb.TermTailNS), bshare(gb, gb.TermTailNS)},
		} {
			g.Check(id+"/blame_share_"+CauseNames[i], t.BlameShare, pair[0], pair[1])
		}
	}

	if base.Result.LostNodes != 0 || got.Result.LostNodes != 0 {
		g.Check(id+"/lost_nodes", t.LostNodes, float64(base.Result.LostNodes), float64(got.Result.LostNodes))
	}

	if base.Par != nil && got.Par != nil {
		pshare := func(p *ledger.ParSummary) float64 {
			if p.Windows == 0 {
				return 0
			}
			return float64(p.Serialized) / float64(p.Windows)
		}
		g.Check(id+"/par_serialized_share", t.SerializedShare, pshare(base.Par), pshare(got.Par))
	}

	if base.Serve != nil && got.Serve != nil {
		// The admission counts are exact (zero band): the compiled
		// schedule is a pure function of (spec, seed), so any drift is a
		// determinism break, not tuning noise.
		g.Check(id+"/serve_arrived", Band{}, float64(base.Serve.Arrived), float64(got.Serve.Arrived))
		g.Check(id+"/serve_admitted", Band{}, float64(base.Serve.Admitted), float64(got.Serve.Admitted))
		g.Check(id+"/serve_jain", t.Jain, base.Serve.Jain, got.Serve.Jain)
		n := len(base.Serve.Tenants)
		if len(got.Serve.Tenants) < n {
			n = len(got.Serve.Tenants)
		}
		for i := 0; i < n; i++ {
			bt, gt := &base.Serve.Tenants[i], &got.Serve.Tenants[i]
			g.Check(id+"/serve_goodput_"+bt.Name, t.Goodput, bt.GoodputPerSec, gt.GoodputPerSec)
			g.Check(id+"/serve_sojourn_p95_"+bt.Name, t.SojournP95,
				float64(bt.SojournP95NS), float64(gt.SojournP95NS))
		}
	}
}
