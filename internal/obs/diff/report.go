package diff

import (
	"encoding/json"
	"fmt"
	"io"

	"distws/internal/sim"
)

// dur renders a ns scalar as a virtual duration.
func dur(ns int64) string { return sim.Duration(ns).String() }

// sdur renders a delta with an explicit sign.
func sdur(ns int64) string {
	if ns >= 0 {
		return "+" + sim.Duration(ns).String()
	}
	return "-" + sim.Duration(-ns).String()
}

// share renders part as a percentage of whole ("-" when whole is 0, so
// a zero-delta diff still renders stably).
func share(part, whole int64) string {
	if whole == 0 {
		return "     -"
	}
	return fmt.Sprintf("%5.1f%%", 100*float64(part)/float64(whole))
}

// Headline is the one-sentence summary: which run is slower, by how
// much, and what the largest contributors were.
func (d *Delta) Headline() string {
	switch {
	case d.Makespan.Delta == 0:
		return fmt.Sprintf("runs are makespan-identical at %s", dur(d.Makespan.A))
	case d.Makespan.Delta > 0:
		return fmt.Sprintf("run B is %.1f%% slower: makespan %s -> %s (%s)%s",
			d.MakespanPct, dur(d.Makespan.A), dur(d.Makespan.B), sdur(d.Makespan.Delta), d.topContributors())
	default:
		return fmt.Sprintf("run B is %.1f%% faster: makespan %s -> %s (%s)%s",
			-d.MakespanPct, dur(d.Makespan.A), dur(d.Makespan.B), sdur(d.Makespan.Delta), d.topContributors())
	}
}

// topContributors names up to two critical-path segments whose deltas
// move in the makespan delta's direction, largest first.
func (d *Delta) topContributors() string {
	if d.Critical == nil {
		return ""
	}
	sign := int64(1)
	if d.Makespan.Delta < 0 {
		sign = -1
	}
	type contrib struct {
		name string
		ns   int64
	}
	var cs []contrib
	for k, s := range d.Critical.Segments {
		if sign*s.Delta > 0 {
			cs = append(cs, contrib{SegmentNames[k], sign * s.Delta})
		}
	}
	// Stable selection of the two largest (ties keep segment order).
	for i := 0; i < len(cs) && i < 2; i++ {
		best := i
		for j := i + 1; j < len(cs); j++ {
			if cs[j].ns > cs[best].ns {
				best = j
			}
		}
		cs[i], cs[best] = cs[best], cs[i]
	}
	if len(cs) == 0 {
		return ""
	}
	out := ": "
	for i := 0; i < len(cs) && i < 2; i++ {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s %s of critical path", cs[i].name, sdur(sign*cs[i].ns))
	}
	return out
}

// WriteText renders the full attribution report. The output is a pure
// function of the delta — byte-stable across runs, golden-testable.
func (d *Delta) WriteText(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("run diff: A=%s vs B=%s\n", label(d.IDA), label(d.IDB))
	if d.SameSpec {
		bw.printf("spec: identical configurations (code/version comparison)\n")
	} else if len(d.SpecChanges) > 0 {
		bw.printf("spec: configs differ in %d field(s)\n", len(d.SpecChanges))
		for _, c := range d.SpecChanges {
			bw.printf("  %s\n", c)
		}
	}
	bw.printf("\n%s\n", d.Headline())

	if d.Critical != nil {
		bw.printf("\ncritical path (per-segment deltas sum exactly to the makespan delta):\n")
		bw.printf("  %-10s %14s %14s %14s %13s\n", "segment", "A", "B", "delta", "of Δmakespan")
		for k, s := range d.Critical.Segments {
			bw.printf("  %-10s %14s %14s %14s %13s\n",
				SegmentNames[k], dur(s.A), dur(s.B), sdur(s.Delta), share(s.Delta, d.Makespan.Delta))
		}
		bw.printf("  %-10s %14s %14s %14s %13s\n",
			"total", dur(d.Makespan.A), dur(d.Makespan.B), sdur(d.Makespan.Delta),
			share(d.Critical.Sum(), d.Makespan.Delta))
	}

	if d.Blame != nil {
		bw.printf("\nidle-time blame (aggregate rank-time; deltas sum to ranks x makespan delta):\n")
		bw.printf("  %-10s %14s %14s %14s\n", "cause", "A", "B", "delta")
		for k, c := range d.Blame.Causes {
			bw.printf("  %-10s %14s %14s %14s\n", CauseNames[k], dur(c.A), dur(c.B), sdur(c.Delta))
		}
	}

	if s := d.Steals; s != nil {
		bw.printf("\nsteals: requests %d -> %d (%+d), success rate %.1f%% -> %.1f%% (%+.1fpp)\n",
			s.Requests.A, s.Requests.B, s.Requests.Delta,
			100*s.SuccessRateA, 100*s.SuccessRateB, 100*(s.SuccessRateB-s.SuccessRateA))
		bw.printf("  failed %d -> %d (%+d), aborted %d -> %d (%+d)\n",
			s.Failed.A, s.Failed.B, s.Failed.Delta, s.Aborted.A, s.Aborted.B, s.Aborted.Delta)
		if s.P50NS != nil && s.P95NS != nil && s.P99NS != nil {
			bw.printf("  latency p50 %s -> %s (%s), p95 %s -> %s (%s), p99 %s -> %s (%s)\n",
				dur(s.P50NS.A), dur(s.P50NS.B), sdur(s.P50NS.Delta),
				dur(s.P95NS.A), dur(s.P95NS.B), sdur(s.P95NS.Delta),
				dur(s.P99NS.A), dur(s.P99NS.B), sdur(s.P99NS.Delta))
		}
	}

	if p := d.Par; p != nil {
		bw.printf("\nparallel kernel (%d -> %d shard(s)):\n", p.ShardsA, p.ShardsB)
		bw.printf("  windows %d -> %d (%+d), staged %d -> %d (%+d)\n",
			p.Windows.A, p.Windows.B, p.Windows.Delta,
			p.Staged.A, p.Staged.B, p.Staged.Delta)
		bw.printf("  serialized-window share %.1f%% -> %.1f%% (%+.1fpp)\n",
			100*p.SerializedShareA, 100*p.SerializedShareB,
			100*(p.SerializedShareB-p.SerializedShareA))
		if cause, delta := p.TopCause(); cause != "" {
			bw.printf("  leading cause of the shift: %s (%+d window(s))\n", cause, delta)
		}
		for _, c := range p.Causes {
			bw.printf("    %-18s %6d -> %-6d (%+d window(s), %s serialized time)\n",
				c.Cause, c.Windows.A, c.Windows.B, c.Windows.Delta, sdur(c.VirtualNS.Delta))
		}
	}

	if len(d.TopLinks) > 0 {
		bw.printf("\ntop link movers (messages):\n")
		for _, l := range d.TopLinks {
			bw.printf("  %4d -> %-4d %8d -> %-8d (%+d)\n", l.From, l.To, l.A, l.B, l.Delta)
		}
	} else if d.PerRank != nil {
		bw.printf("\ntraffic: identical on every link\n")
	}
	return bw.err
}

// WriteJSON renders the delta as an indented JSON document.
func (d *Delta) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

func label(id string) string {
	if id == "" {
		return "(unnamed)"
	}
	return id
}

// errWriter latches the first write error so report code stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
