package diff

import (
	"bytes"
	"strings"
	"testing"

	"distws/internal/core"
	"distws/internal/obs/ledger"
	"distws/internal/topology"
	"distws/internal/uts"
	"distws/internal/victim"
)

// parManifest runs the T3 grid cell sharded and profiled, so the
// manifest carries a par section to diff.
func parManifest(t *testing.T, id string, seed uint64) *ledger.Manifest {
	t.Helper()
	cfg := core.Config{
		Tree:          uts.MustPreset("T3").Params,
		Ranks:         16,
		Placement:     topology.OnePerNode,
		Selector:      victim.NewDistanceSkewed,
		Seed:          seed,
		ChunkSize:     4,
		Shards:        4,
		ParProfile:    true,
		CollectTrace:  true,
		CollectEvents: true,
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := ledger.SpecFromConfig("T3", "", cfg)
	spec.Selector = "Tofu"
	m := ledger.FromRun(id, spec, res)
	if err := m.Validate(); err != nil {
		t.Fatalf("manifest %s invalid: %v", id, err)
	}
	return m
}

// TestParDiffSelfZero: the par delta of a run against itself is zero
// in every scalar and cause row, and still passes the diff identities.
func TestParDiffSelfZero(t *testing.T) {
	a := parManifest(t, "self", 5)
	b := parManifest(t, "self", 5)
	d := Compute(a, b)
	if err := d.CheckIdentities(); err != nil {
		t.Fatal(err)
	}
	if d.Par == nil {
		t.Fatal("diff of two profiled runs has no par section")
	}
	if !d.Zero() {
		var buf bytes.Buffer
		d.WriteText(&buf)
		t.Fatalf("self-diff of a profiled run is not zero:\n%s", buf.String())
	}
	if d.Par.SerializedShareA != d.Par.SerializedShareB {
		t.Errorf("self-diff shifted the serialized share: %v -> %v",
			d.Par.SerializedShareA, d.Par.SerializedShareB)
	}

	// A profiled run diffed against an unprofiled one has no par delta.
	cfg := Compute(a, runManifest(t, "plain", "Tofu", victim.NewDistanceSkewed, 5))
	if cfg.Par != nil {
		t.Error("par delta computed with only one profiled side")
	}
}

// TestParDiffAttribution: two profiled runs at different seeds shift
// the window ledger; the delta's cause rows must sum to the serialized
// shift (the diff identity), and the text report must name the
// serialized-window share and the leading cause.
func TestParDiffAttribution(t *testing.T) {
	a := parManifest(t, "seed5", 5)
	b := parManifest(t, "seed9", 9)
	d := Compute(a, b)
	if err := d.CheckIdentities(); err != nil {
		t.Fatal(err)
	}
	if d.Par == nil {
		t.Fatal("no par delta")
	}
	if d.Par.ShardsA != 4 || d.Par.ShardsB != 4 {
		t.Fatalf("par delta shards = %d -> %d", d.Par.ShardsA, d.Par.ShardsB)
	}
	var buf bytes.Buffer
	if err := d.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"parallel kernel", "serialized-window share"} {
		if !strings.Contains(out, want) {
			t.Errorf("par report missing %q:\n%s", want, out)
		}
	}
	if cause, _ := d.Par.TopCause(); cause != "" &&
		!strings.Contains(out, "leading cause of the shift: "+cause) {
		t.Errorf("report does not name top cause %q:\n%s", cause, out)
	}
}

// TestParGateSerializedShare: the tolerance gate bounds the
// serialized-window share when both manifests are profiled, and an
// out-of-band shift trips it.
func TestParGateSerializedShare(t *testing.T) {
	a := parManifest(t, "gate", 5)
	b := parManifest(t, "gate", 5)
	tol := DefaultTolerances()

	g := &Gate{}
	GateManifests(g, a.ID, a, b, tol)
	if !g.OK() {
		var buf bytes.Buffer
		g.Report(&buf)
		t.Fatalf("identical profiled runs fail the gate:\n%s", buf.String())
	}
	// The share check only exists when both sides are profiled: strip
	// the par sections and the checked-metric count must drop by one.
	aPlain, bPlain := *a, *b
	aPlain.Par, bPlain.Par = nil, nil
	plain := &Gate{}
	GateManifests(plain, a.ID, &aPlain, &bPlain, tol)
	if g.Checked != plain.Checked+1 {
		t.Fatalf("profiled gate checked %d metrics, unprofiled %d; want exactly one more",
			g.Checked, plain.Checked)
	}

	// Shift the share beyond the ±5pp band: every parallel window
	// becomes a serialized one (cause rows adjusted to keep the
	// manifest internally consistent).
	extra := b.Par.Windows - b.Par.Serialized
	b.Par.Causes = append(b.Par.Causes, ledger.ParCause{
		Cause: "caller-forced", Windows: extra, VirtualNS: b.Par.ParallelNS,
	})
	b.Par.Serialized = b.Par.Windows
	b.Par.SerializedNS += b.Par.ParallelNS
	b.Par.ParallelNS = 0
	if err := b.Validate(); err != nil {
		t.Fatalf("perturbed manifest no longer validates: %v", err)
	}
	g = &Gate{}
	GateManifests(g, a.ID, a, b, tol)
	if g.OK() {
		t.Fatal("all-serialized shift stayed inside the ±5pp share band")
	}
	var buf bytes.Buffer
	if err := g.Report(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "par_serialized_share") {
		t.Errorf("gate report does not name the share check:\n%s", buf.String())
	}
}
