package diff

import (
	"bytes"
	"strings"
	"testing"

	"distws/internal/core"
	"distws/internal/obs/ledger"
	"distws/internal/serve"
	"distws/internal/sim"
	"distws/internal/topology"
	"distws/internal/uts"
	"distws/internal/victim"
)

// serveManifest runs a small two-tenant serving cell, so the manifest
// carries a serve section to gate.
func serveManifest(t *testing.T, id string, seed uint64) *ledger.Manifest {
	t.Helper()
	tree := uts.Params{
		Type:        uts.Binomial,
		B0:          20,
		NonLeafBF:   2,
		NonLeafProb: 0.45,
		RootSeed:    31,
		Hash:        uts.HashFast,
	}
	cfg := core.Config{
		Ranks:     8,
		Placement: topology.OnePerNode,
		Selector:  victim.NewDistanceSkewed,
		Seed:      seed,
		ChunkSize: 4,
		Serve: &serve.Spec{
			Horizon:   50 * sim.Millisecond,
			Placement: serve.PlaceRR,
			Tenants: []serve.Tenant{
				{
					Name:    "gold",
					Arrival: serve.ArrivalSpec{Process: serve.ProcPoisson, Mean: sim.Millisecond},
					Admit:   serve.Bucket{Rate: 150, Burst: 2},
					SLO:     serve.SLO{Class: "gold", Target: 10 * sim.Millisecond},
					Work:    serve.Workload{Kind: serve.WorkUTS, Tree: tree},
				},
				{
					Name:    "silver",
					Arrival: serve.ArrivalSpec{Process: serve.ProcGamma, Mean: 6 * sim.Millisecond, Shape: 2},
					Work:    serve.Workload{Kind: serve.WorkUTS, Tree: tree},
				},
			},
		},
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := ledger.SpecFromConfig("SERVE", "", cfg)
	spec.Selector = "Tofu"
	m := ledger.FromRun(id, spec, res)
	if err := m.Validate(); err != nil {
		t.Fatalf("manifest %s invalid: %v", id, err)
	}
	return m
}

// TestServeGate: identical serving runs pass the gate; the serve checks
// only exist when both sides carry a serve section; and an out-of-band
// goodput drift — or any admission-count drift at all — trips it.
func TestServeGate(t *testing.T) {
	a := serveManifest(t, "gate", 5)
	b := serveManifest(t, "gate", 5)
	tol := DefaultTolerances()

	g := &Gate{}
	GateManifests(g, a.ID, a, b, tol)
	if !g.OK() {
		var buf bytes.Buffer
		g.Report(&buf)
		t.Fatalf("identical serving runs fail the gate:\n%s", buf.String())
	}
	// arrived + admitted + jain + 2 metrics per tenant.
	wantServeChecks := 3 + 2*len(a.Serve.Tenants)
	aPlain, bPlain := *a, *b
	aPlain.Serve, bPlain.Serve = nil, nil
	plain := &Gate{}
	GateManifests(plain, a.ID, &aPlain, &bPlain, tol)
	if g.Checked != plain.Checked+wantServeChecks {
		t.Fatalf("serving gate checked %d metrics, plain %d; want exactly %d more",
			g.Checked, plain.Checked, wantServeChecks)
	}

	// A goodput drift beyond the ±5% (+1 absolute) band trips the
	// tenant's check.
	drift := *b
	driftServe := *b.Serve
	driftServe.Tenants = append([]ledger.ServeTenantRow(nil), b.Serve.Tenants...)
	driftServe.Tenants[0].GoodputPerSec = driftServe.Tenants[0].GoodputPerSec*1.2 + 5
	drift.Serve = &driftServe
	g = &Gate{}
	GateManifests(g, a.ID, a, &drift, tol)
	if g.OK() {
		t.Fatal("20% goodput drift stayed inside the band")
	}
	var buf bytes.Buffer
	if err := g.Report(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "serve_goodput_gold") {
		t.Errorf("gate report does not name the gold goodput check:\n%s", buf.String())
	}

	// Admission counts carry a zero band: a single extra arrival is a
	// determinism break and must fail, no matter how small.
	drift2 := *b
	driftServe2 := *b.Serve
	driftServe2.Arrived++
	drift2.Serve = &driftServe2
	g = &Gate{}
	GateManifests(g, a.ID, a, &drift2, tol)
	if g.OK() {
		t.Fatal("an off-by-one arrival count passed the exact serve_arrived check")
	}
}
