package diff

import (
	"bytes"
	"strings"
	"testing"

	"distws/internal/core"
	"distws/internal/obs/ledger"
	"distws/internal/topology"
	"distws/internal/uts"
	"distws/internal/victim"
)

// runManifest executes one small traced run and builds its manifest.
func runManifest(t *testing.T, id, selName string, sel victim.Factory, seed uint64) *ledger.Manifest {
	t.Helper()
	cfg := core.Config{
		Tree:          uts.MustPreset("T3").Params,
		Ranks:         16,
		Placement:     topology.OnePerNode,
		Selector:      sel,
		Seed:          seed,
		ChunkSize:     4,
		CollectTrace:  true,
		CollectEvents: true,
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := ledger.SpecFromConfig("T3", "", cfg)
	spec.Selector = selName
	m := ledger.FromRun(id, spec, res)
	if err := m.Validate(); err != nil {
		t.Fatalf("manifest %s invalid: %v", id, err)
	}
	return m
}

// TestSelfDiffIsZero: the diff of a run against itself must be exactly
// zero everywhere — makespan, every critical segment, every blame
// cause, every steal counter, every link.
func TestSelfDiffIsZero(t *testing.T) {
	a := runManifest(t, "self", "Tofu", victim.NewDistanceSkewed, 5)
	b := runManifest(t, "self", "Tofu", victim.NewDistanceSkewed, 5)
	d := Compute(a, b)
	if err := d.CheckIdentities(); err != nil {
		t.Fatal(err)
	}
	if !d.Zero() {
		var buf bytes.Buffer
		d.WriteText(&buf)
		t.Fatalf("self-diff is not zero:\n%s", buf.String())
	}
	if !d.SameSpec || len(d.SpecChanges) != 0 {
		t.Errorf("self-diff reports spec changes: same=%v changes=%v", d.SameSpec, d.SpecChanges)
	}
	if d.Steals == nil || d.Blame == nil || d.Critical == nil || d.PerRank == nil {
		t.Error("self-diff dropped sections present in both manifests")
	}
}

// TestDiffIdentities: two runs that differ only in victim selector must
// produce per-segment critical deltas summing exactly to the makespan
// delta and per-cause blame deltas summing exactly to ranks × makespan
// delta — the acceptance identity of the diff engine.
func TestDiffIdentities(t *testing.T) {
	a := runManifest(t, "tofu", "Tofu", victim.NewDistanceSkewed, 5)
	b := runManifest(t, "rand", "Rand", victim.NewUniformRandom, 5)
	d := Compute(a, b)
	if err := d.CheckIdentities(); err != nil {
		t.Fatal(err)
	}
	if d.Critical == nil || d.Blame == nil {
		t.Fatal("diff of two traced runs is missing causal sections")
	}
	if got, want := d.Critical.Sum(), d.Makespan.Delta; got != want {
		t.Errorf("critical deltas sum to %d, want makespan delta %d", got, want)
	}
	if got, want := d.Blame.Sum(), int64(16)*d.Makespan.Delta; got != want {
		t.Errorf("blame deltas sum to %d, want 16×makespan delta %d", got, want)
	}
	if len(d.SpecChanges) != 1 || !strings.HasPrefix(d.SpecChanges[0], "selector:") {
		t.Errorf("spec changes = %v, want exactly the selector", d.SpecChanges)
	}
	if d.SameSpec {
		t.Error("different selectors reported as same spec")
	}
}

// TestReportByteStable: independently recomputed diffs of the same two
// configurations render byte-identical text and JSON.
func TestReportByteStable(t *testing.T) {
	render := func() (string, string) {
		a := runManifest(t, "tofu", "Tofu", victim.NewDistanceSkewed, 5)
		b := runManifest(t, "rand", "Rand", victim.NewUniformRandom, 5)
		d := Compute(a, b)
		var txt, js bytes.Buffer
		if err := d.WriteText(&txt); err != nil {
			t.Fatal(err)
		}
		if err := d.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return txt.String(), js.String()
	}
	t1, j1 := render()
	t2, j2 := render()
	if t1 != t2 {
		t.Errorf("text report is not byte-stable:\n--- first\n%s\n--- second\n%s", t1, t2)
	}
	if j1 != j2 {
		t.Error("JSON report is not byte-stable")
	}
	for _, want := range []string{"run diff:", "critical path", "idle-time blame", "steals:", "selector: Tofu -> Rand"} {
		if !strings.Contains(t1, want) {
			t.Errorf("text report missing %q:\n%s", want, t1)
		}
	}
	if !strings.Contains(t1, "slower") && !strings.Contains(t1, "faster") &&
		!strings.Contains(t1, "makespan-identical") {
		t.Errorf("headline missing from report:\n%s", t1)
	}
}

// TestHeadlineDirections pins the headline phrasing for both signs.
func TestHeadlineDirections(t *testing.T) {
	mk := func(a, b int64) *Delta {
		return Compute(
			&ledger.Manifest{Spec: ledger.Spec{Ranks: 1}, Result: ledger.ResultSummary{MakespanNS: a}},
			&ledger.Manifest{Spec: ledger.Spec{Ranks: 1}, Result: ledger.ResultSummary{MakespanNS: b}},
		)
	}
	if h := mk(1000, 1120).Headline(); !strings.Contains(h, "12.0% slower") {
		t.Errorf("slower headline = %q", h)
	}
	if h := mk(1000, 900).Headline(); !strings.Contains(h, "10.0% faster") {
		t.Errorf("faster headline = %q", h)
	}
	if h := mk(1000, 1000).Headline(); !strings.Contains(h, "makespan-identical") {
		t.Errorf("identical headline = %q", h)
	}
}

// TestBandCheck covers the comparator shared by the matrix and bench
// gates: exact, relative, absolute, and combined bands.
func TestBandCheck(t *testing.T) {
	cases := []struct {
		band      Band
		base, got float64
		ok        bool
	}{
		{Band{}, 5, 5, true},
		{Band{}, 5, 5.0001, false},
		{Band{Rel: 0.1}, 100, 109, true},
		{Band{Rel: 0.1}, 100, 111, false},
		{Band{Rel: 0.1}, -100, -109, true}, // relative scale uses |base|
		{Band{Abs: 3}, 10, 13, true},
		{Band{Abs: 3}, 10, 13.5, false},
		{Band{Rel: 0.05, Abs: 2}, 100, 106.9, true},
		{Band{Rel: 0.05, Abs: 2}, 100, 107.1, false},
		{Band{Abs: 1}, 0, 0.5, true}, // abs band still works at base 0
		{Band{Rel: 0.5}, 0, 0.5, false},
	}
	for i, c := range cases {
		if got := c.band.Check(c.base, c.got); got != c.ok {
			t.Errorf("case %d: Band%+v.Check(%v, %v) = %v, want %v", i, c.band, c.base, c.got, got, c.ok)
		}
	}
}

// TestGateReportsViolationsInOrder: the gate's report lists violations
// in check order with the offending values.
func TestGateReportsViolationsInOrder(t *testing.T) {
	var g Gate
	g.Check("a/ok", Band{Rel: 1}, 10, 11)
	g.Check("b/bad", Band{}, 10, 11)
	g.Check("c/bad", Band{Abs: 0.5}, 2, 3)
	if g.OK() {
		t.Fatal("gate passed with violations")
	}
	if g.Checked != 3 || len(g.Violations) != 2 {
		t.Fatalf("checked %d, violations %d", g.Checked, len(g.Violations))
	}
	var buf bytes.Buffer
	if err := g.Report(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	bi, ci := strings.Index(out, "b/bad"), strings.Index(out, "c/bad")
	if bi < 0 || ci < 0 || bi > ci {
		t.Errorf("violations missing or out of order:\n%s", out)
	}
}

// TestGateManifests: identical manifests pass the default tolerance
// policy; a makespan pushed outside its band fails, naming the cell.
func TestGateManifests(t *testing.T) {
	base := runManifest(t, "cell", "Tofu", victim.NewDistanceSkewed, 5)
	same := runManifest(t, "cell", "Tofu", victim.NewDistanceSkewed, 5)

	var pass Gate
	GateManifests(&pass, "cell", base, same, DefaultTolerances())
	if !pass.OK() {
		var buf bytes.Buffer
		pass.Report(&buf)
		t.Fatalf("identical run fails its own baseline:\n%s", buf.String())
	}

	perturbed := *same
	perturbed.Result.MakespanNS = base.Result.MakespanNS + base.Result.MakespanNS/10 // +10% > 5% band
	var fail Gate
	GateManifests(&fail, "cell", base, &perturbed, DefaultTolerances())
	if fail.OK() {
		t.Fatal("10% makespan inflation passed a 5% band")
	}
	if !strings.Contains(fail.Violations[0].Name, "cell/makespan_ns") {
		t.Errorf("violation names %v, want cell/makespan_ns first", fail.Violations)
	}
}
