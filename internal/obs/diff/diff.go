// Package diff is the causal diff engine: given two run manifests
// (internal/obs/ledger) it computes structured deltas that attribute a
// makespan difference to its causes — per-segment critical-path deltas
// (compute vs steal-rtt vs transfer vs token vs wait), per-cause
// idle-blame deltas, steal success/latency shifts, and per-rank and
// per-link traffic deltas — and renders them as a byte-stable text
// report or JSON document.
//
// Exactness contract: because each manifest's critical-path segments
// partition its makespan and each rank's blame partitions its timeline
// (ledger.Validate), the per-segment deltas sum exactly to the makespan
// delta and the per-cause blame deltas sum exactly to ranks × makespan
// delta. CheckIdentities verifies both on every computed delta, and the
// diff of a run against itself is zero everywhere (tests assert both).
//
// The same package carries the tolerance-band comparator (band.go) the
// scenario-matrix gate and the benchmark baseline gate share.
package diff

import (
	"fmt"

	"distws/internal/obs/ledger"
)

// SegmentNames orders the critical-path kinds in reports; it mirrors
// causal.SegmentKind order.
var SegmentNames = [5]string{"compute", "steal-rtt", "transfer", "token", "wait"}

// CauseNames orders the blame categories in reports.
var CauseNames = [5]string{"busy", "startup", "search", "in-flight", "term-tail"}

// Scalar is one compared quantity.
type Scalar struct {
	A     int64 `json:"a"`
	B     int64 `json:"b"`
	Delta int64 `json:"delta"`
}

func scalar(a, b int64) Scalar { return Scalar{A: a, B: b, Delta: b - a} }

// CriticalDelta decomposes the makespan delta by critical-path segment
// kind, in causal.SegmentKind order. The segment deltas sum exactly to
// the makespan delta.
type CriticalDelta struct {
	Segments [5]Scalar `json:"segments"`
}

// Sum returns the total of the per-segment deltas.
func (c *CriticalDelta) Sum() int64 {
	var s int64
	for _, x := range c.Segments {
		s += x.Delta
	}
	return s
}

// BlameDelta holds the per-cause idle-blame deltas, aggregated over
// ranks (units: rank-nanoseconds), in busy/startup/search/in-flight/
// term-tail order. When both runs have the same rank count the cause
// deltas sum exactly to ranks × makespan delta.
type BlameDelta struct {
	Causes [5]Scalar `json:"causes"`
	// Ranks is the shared rank count (0 when the two runs disagree, in
	// which case the rank-scaled identity does not apply).
	Ranks int `json:"ranks"`
}

// Sum returns the total of the per-cause deltas.
func (b *BlameDelta) Sum() int64 {
	var s int64
	for _, x := range b.Causes {
		s += x.Delta
	}
	return s
}

// StealDelta summarizes protocol shifts between the runs.
type StealDelta struct {
	Requests Scalar `json:"requests"`
	Success  Scalar `json:"success"`
	Failed   Scalar `json:"failed"`
	Aborted  Scalar `json:"aborted"`
	// SuccessRateA/B are successful / total requests, in [0,1].
	SuccessRateA float64 `json:"success_rate_a"`
	SuccessRateB float64 `json:"success_rate_b"`
	// Latency percentiles of reconstructed round trips (ns); only
	// present when both manifests carry steal summaries.
	P50NS *Scalar `json:"p50_ns,omitempty"`
	P95NS *Scalar `json:"p95_ns,omitempty"`
	P99NS *Scalar `json:"p99_ns,omitempty"`
}

// ParCauseDelta is one serialization cause's window-count shift.
type ParCauseDelta struct {
	Cause   string `json:"cause"`
	Windows Scalar `json:"windows"`
	// VirtualNS is the cause's serialized virtual-time shift.
	VirtualNS Scalar `json:"virtual_ns"`
}

// ParDelta compares the parallel-kernel window profiles: how the
// window-protocol overhead moved between the runs and which
// serialization cause drove it. Present when both manifests carry a
// par section.
type ParDelta struct {
	ShardsA int `json:"shards_a"`
	ShardsB int `json:"shards_b"`

	Windows    Scalar `json:"windows"`
	Serialized Scalar `json:"serialized"`
	Staged     Scalar `json:"staged"`
	// SerializedShareA/B are serialized/windows in [0,1].
	SerializedShareA float64 `json:"serialized_share_a"`
	SerializedShareB float64 `json:"serialized_share_b"`

	// Causes lists every cause present in either run, in A-then-B first
	// appearance order.
	Causes []ParCauseDelta `json:"causes,omitempty"`
}

// TopCause returns the cause with the largest absolute window-count
// delta ("" when no cause moved) — the diff's serialization-blame
// attribution ("serialized share rose, cause: token-due").
func (p *ParDelta) TopCause() (string, int64) {
	var name string
	var best int64
	for _, c := range p.Causes {
		d := c.Windows.Delta
		if d < 0 {
			d = -d
		}
		if d > best {
			best, name = d, c.Cause
		}
	}
	if name == "" {
		return "", 0
	}
	for _, c := range p.Causes {
		if c.Cause == name {
			return name, c.Windows.Delta
		}
	}
	return "", 0
}

// RankTraffic is one rank's sent/received message delta.
type RankTraffic struct {
	Rank     int    `json:"rank"`
	Sent     Scalar `json:"sent"`
	Received Scalar `json:"received"`
}

// LinkDelta is one link's traffic change.
type LinkDelta struct {
	From  int   `json:"from"`
	To    int   `json:"to"`
	A     int64 `json:"a"`
	B     int64 `json:"b"`
	Delta int64 `json:"delta"`
}

// Delta is the full structured comparison of run B against run A.
type Delta struct {
	IDA string `json:"id_a"`
	IDB string `json:"id_b"`
	// SameSpec is true when the two runs share a config fingerprint —
	// i.e. the diff isolates a code change, not a config change.
	SameSpec bool `json:"same_spec"`
	// SpecChanges lists the config fields that differ, "field: a -> b",
	// in declaration order. Empty when SameSpec.
	SpecChanges []string `json:"spec_changes,omitempty"`

	Makespan Scalar `json:"makespan_ns"`
	// MakespanPct is the relative makespan change in percent (+ means B
	// is slower); 0 when A's makespan is 0.
	MakespanPct float64 `json:"makespan_pct"`

	Critical *CriticalDelta `json:"critical,omitempty"`
	Blame    *BlameDelta    `json:"blame,omitempty"`
	Steals   *StealDelta    `json:"steals,omitempty"`
	Par      *ParDelta      `json:"par,omitempty"`

	// PerRank traffic deltas and the largest per-link movers, present
	// when both manifests carry traffic matrices of equal rank count.
	PerRank  []RankTraffic `json:"per_rank_traffic,omitempty"`
	TopLinks []LinkDelta   `json:"top_links,omitempty"`
}

// TopLinkLimit caps the per-link movers listed in a delta.
const TopLinkLimit = 10

// Compute builds the structured delta of run B against run A.
func Compute(a, b *ledger.Manifest) *Delta {
	d := &Delta{
		IDA:         a.ID,
		IDB:         b.ID,
		SameSpec:    a.Fingerprint == b.Fingerprint,
		SpecChanges: specChanges(a.Spec, b.Spec),
		Makespan:    scalar(a.Result.MakespanNS, b.Result.MakespanNS),
	}
	if a.Result.MakespanNS != 0 {
		d.MakespanPct = 100 * float64(d.Makespan.Delta) / float64(a.Result.MakespanNS)
	}

	if a.Critical != nil && b.Critical != nil {
		d.Critical = &CriticalDelta{Segments: [5]Scalar{
			scalar(a.Critical.ComputeNS, b.Critical.ComputeNS),
			scalar(a.Critical.StealRTTNS, b.Critical.StealRTTNS),
			scalar(a.Critical.TransferNS, b.Critical.TransferNS),
			scalar(a.Critical.TokenNS, b.Critical.TokenNS),
			scalar(a.Critical.WaitNS, b.Critical.WaitNS),
		}}
	}

	if a.Blame != nil && b.Blame != nil {
		bd := &BlameDelta{Causes: [5]Scalar{
			scalar(a.Blame.Total.BusyNS, b.Blame.Total.BusyNS),
			scalar(a.Blame.Total.StartupNS, b.Blame.Total.StartupNS),
			scalar(a.Blame.Total.SearchNS, b.Blame.Total.SearchNS),
			scalar(a.Blame.Total.InFlightNS, b.Blame.Total.InFlightNS),
			scalar(a.Blame.Total.TermTailNS, b.Blame.Total.TermTailNS),
		}}
		if a.Spec.Ranks == b.Spec.Ranks {
			bd.Ranks = a.Spec.Ranks
		}
		d.Blame = bd
	}

	d.Steals = stealDelta(a, b)
	if a.Par != nil && b.Par != nil {
		d.Par = parDelta(a.Par, b.Par)
	}

	if a.Traffic != nil && b.Traffic != nil && len(a.Traffic) == len(b.Traffic) {
		d.PerRank, d.TopLinks = trafficDeltas(a.Traffic, b.Traffic)
	}
	return d
}

// stealDelta builds the protocol shift from the Result scalars (always
// present) plus the latency percentiles (when both runs recorded them).
func stealDelta(a, b *ledger.Manifest) *StealDelta {
	ra, rb := a.Result, b.Result
	sd := &StealDelta{
		Requests: scalar(int64(ra.StealRequests), int64(rb.StealRequests)),
		Success:  scalar(int64(ra.SuccessfulSteals), int64(rb.SuccessfulSteals)),
		Failed:   scalar(int64(ra.FailedSteals), int64(rb.FailedSteals)),
		Aborted:  scalar(int64(ra.AbortedSteals), int64(rb.AbortedSteals)),
	}
	if ra.StealRequests > 0 {
		sd.SuccessRateA = float64(ra.SuccessfulSteals) / float64(ra.StealRequests)
	}
	if rb.StealRequests > 0 {
		sd.SuccessRateB = float64(rb.SuccessfulSteals) / float64(rb.StealRequests)
	}
	if a.Steals != nil && b.Steals != nil {
		p50 := scalar(a.Steals.P50NS, b.Steals.P50NS)
		p95 := scalar(a.Steals.P95NS, b.Steals.P95NS)
		p99 := scalar(a.Steals.P99NS, b.Steals.P99NS)
		sd.P50NS, sd.P95NS, sd.P99NS = &p50, &p95, &p99
		// A trace-only manifest has no engine counters; fall back to the
		// reconstructed transactions so the rates still mean something.
		if ra.StealRequests == 0 && a.Steals.Count > 0 {
			sd.Requests.A = int64(a.Steals.Count)
			sd.Success.A = int64(a.Steals.Success)
			sd.Failed.A = int64(a.Steals.Refused)
			sd.Aborted.A = int64(a.Steals.Aborted)
			sd.SuccessRateA = float64(a.Steals.Success) / float64(a.Steals.Count)
		}
		if rb.StealRequests == 0 && b.Steals.Count > 0 {
			sd.Requests.B = int64(b.Steals.Count)
			sd.Success.B = int64(b.Steals.Success)
			sd.Failed.B = int64(b.Steals.Refused)
			sd.Aborted.B = int64(b.Steals.Aborted)
			sd.SuccessRateB = float64(b.Steals.Success) / float64(b.Steals.Count)
		}
		sd.Requests.Delta = sd.Requests.B - sd.Requests.A
		sd.Success.Delta = sd.Success.B - sd.Success.A
		sd.Failed.Delta = sd.Failed.B - sd.Failed.A
		sd.Aborted.Delta = sd.Aborted.B - sd.Aborted.A
	}
	return sd
}

// parDelta compares the parallel-kernel profiles.
func parDelta(a, b *ledger.ParSummary) *ParDelta {
	pd := &ParDelta{
		ShardsA:    a.Shards,
		ShardsB:    b.Shards,
		Windows:    scalar(int64(a.Windows), int64(b.Windows)),
		Serialized: scalar(int64(a.Serialized), int64(b.Serialized)),
		Staged:     scalar(int64(a.Staged), int64(b.Staged)),
	}
	if a.Windows > 0 {
		pd.SerializedShareA = float64(a.Serialized) / float64(a.Windows)
	}
	if b.Windows > 0 {
		pd.SerializedShareB = float64(b.Serialized) / float64(b.Windows)
	}
	find := func(rows []ledger.ParCause, name string) ledger.ParCause {
		for _, r := range rows {
			if r.Cause == name {
				return r
			}
		}
		return ledger.ParCause{Cause: name}
	}
	seen := map[string]bool{}
	for _, rows := range [][]ledger.ParCause{a.Causes, b.Causes} {
		for _, r := range rows {
			if seen[r.Cause] {
				continue
			}
			seen[r.Cause] = true
			ca, cb := find(a.Causes, r.Cause), find(b.Causes, r.Cause)
			pd.Causes = append(pd.Causes, ParCauseDelta{
				Cause:     r.Cause,
				Windows:   scalar(int64(ca.Windows), int64(cb.Windows)),
				VirtualNS: scalar(ca.VirtualNS, cb.VirtualNS),
			})
		}
	}
	return pd
}

// trafficDeltas computes per-rank send/receive deltas and the TopLinkLimit
// largest per-link movers (by absolute delta; ties break by from, then
// to, for determinism).
func trafficDeltas(a, b [][]uint64) ([]RankTraffic, []LinkDelta) {
	n := len(a)
	perRank := make([]RankTraffic, n)
	var links []LinkDelta
	for i := 0; i < n; i++ {
		perRank[i].Rank = i
		for j := 0; j < n; j++ {
			av, bv := int64(a[i][j]), int64(b[i][j])
			perRank[i].Sent.A += av
			perRank[i].Sent.B += bv
			perRank[j].Received.A += av
			perRank[j].Received.B += bv
			if av != bv {
				links = append(links, LinkDelta{From: i, To: j, A: av, B: bv, Delta: bv - av})
			}
		}
	}
	for i := range perRank {
		perRank[i].Sent.Delta = perRank[i].Sent.B - perRank[i].Sent.A
		perRank[i].Received.Delta = perRank[i].Received.B - perRank[i].Received.A
	}
	// Selection sort of the top movers keeps the common all-zero case
	// allocation-light and the order fully deterministic.
	limit := TopLinkLimit
	if limit > len(links) {
		limit = len(links)
	}
	for i := 0; i < limit; i++ {
		best := i
		for j := i + 1; j < len(links); j++ {
			if linkLess(links[j], links[best]) {
				best = j
			}
		}
		links[i], links[best] = links[best], links[i]
	}
	return perRank, links[:limit]
}

func linkLess(x, y LinkDelta) bool {
	ax, ay := x.Delta, y.Delta
	if ax < 0 {
		ax = -ax
	}
	if ay < 0 {
		ay = -ay
	}
	if ax != ay {
		return ax > ay
	}
	if x.From != y.From {
		return x.From < y.From
	}
	return x.To < y.To
}

// specChanges lists the differing Spec fields in declaration order.
func specChanges(a, b ledger.Spec) []string {
	var out []string
	add := func(field, av, bv string) {
		if av != bv {
			out = append(out, fmt.Sprintf("%s: %s -> %s", field, av, bv))
		}
	}
	add("tree", a.Tree, b.Tree)
	add("ranks", fmt.Sprint(a.Ranks), fmt.Sprint(b.Ranks))
	add("placement", a.Placement, b.Placement)
	add("selector", a.Selector, b.Selector)
	add("steal", a.Steal, b.Steal)
	add("chunk_size", fmt.Sprint(a.ChunkSize), fmt.Sprint(b.ChunkSize))
	add("detector", a.Detector, b.Detector)
	add("protocol", a.Protocol, b.Protocol)
	add("node_cost_ns", fmt.Sprint(a.NodeCostNS), fmt.Sprint(b.NodeCostNS))
	add("seed", fmt.Sprint(a.Seed), fmt.Sprint(b.Seed))
	add("scale", a.Scale, b.Scale)
	add("shards", fmt.Sprint(a.Shards), fmt.Sprint(b.Shards))
	add("fault_plan", a.FaultPlanHash, b.FaultPlanHash)
	return out
}

// CheckIdentities verifies the exactness contract: the per-segment
// critical-path deltas sum to the makespan delta, and (when both runs
// share a rank count) the per-cause blame deltas sum to ranks ×
// makespan delta. A violation means a malformed manifest slipped past
// validation, so callers treat it as corruption, not as a regression.
func (d *Delta) CheckIdentities() error {
	if d.Critical != nil {
		if got, want := d.Critical.Sum(), d.Makespan.Delta; got != want {
			return fmt.Errorf("diff: critical-path deltas sum to %d ns, want makespan delta %d ns", got, want)
		}
	}
	if d.Blame != nil && d.Blame.Ranks > 0 {
		if got, want := d.Blame.Sum(), int64(d.Blame.Ranks)*d.Makespan.Delta; got != want {
			return fmt.Errorf("diff: blame deltas sum to %d rank-ns, want ranks×makespan delta %d", got, want)
		}
	}
	if d.Par != nil {
		var sum int64
		for _, c := range d.Par.Causes {
			sum += c.Windows.Delta
		}
		if sum != d.Par.Serialized.Delta {
			return fmt.Errorf("diff: par cause deltas sum to %d windows, want serialized delta %d",
				sum, d.Par.Serialized.Delta)
		}
	}
	return nil
}

// Zero reports whether the delta is empty everywhere — the required
// outcome of diffing a run against itself.
func (d *Delta) Zero() bool {
	if d.Makespan.Delta != 0 {
		return false
	}
	if d.Critical != nil {
		for _, s := range d.Critical.Segments {
			if s.Delta != 0 {
				return false
			}
		}
	}
	if d.Blame != nil {
		for _, c := range d.Blame.Causes {
			if c.Delta != 0 {
				return false
			}
		}
	}
	if d.Steals != nil {
		for _, s := range []Scalar{d.Steals.Requests, d.Steals.Success, d.Steals.Failed, d.Steals.Aborted} {
			if s.Delta != 0 {
				return false
			}
		}
	}
	if d.Par != nil {
		for _, s := range []Scalar{d.Par.Windows, d.Par.Serialized, d.Par.Staged} {
			if s.Delta != 0 {
				return false
			}
		}
		for _, c := range d.Par.Causes {
			if c.Windows.Delta != 0 || c.VirtualNS.Delta != 0 {
				return false
			}
		}
	}
	for _, r := range d.PerRank {
		if r.Sent.Delta != 0 || r.Received.Delta != 0 {
			return false
		}
	}
	return len(d.TopLinks) == 0
}
