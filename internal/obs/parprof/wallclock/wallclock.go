// Package wallclock is the wall-clock half of the parallel-kernel
// profile: a par.WallProbe that measures, per shard, how much host
// time the workers spend executing windows (busy) versus waiting at
// barriers (the window's wall span minus the shard's busy slice).
//
// This is the one package of the profiling stack allowed to read the
// host clock — it is named in cmd/distwsvet's walltime allowlist
// (wallClockOK), and a fixture test proves the entry is load-bearing.
// Everything it observes flows only into the diagnostic report: no
// wall reading can reach the simulation, so a wall-profiled run stays
// bit-identical to an unprofiled one. The per-shard slots are written
// only by their owning worker goroutine between the barrier's
// window-start receive and window-done send, the same channel-ordered
// ownership discipline the shard kernels themselves rely on, so the
// probe needs no locks (the par -race stress tests cover it).
package wallclock

import (
	"fmt"
	"io"
	"time"

	"distws/internal/sim"
	"distws/internal/sim/par"
)

// shardSlot is one shard's accumulator, padded to a cache line so the
// workers' concurrent writes do not false-share.
type shardSlot struct {
	busy    time.Duration // executing windows
	started time.Time     // current window's slice start
	_       [104]byte
}

// Profile implements par.WallProbe. Construct with New, pass as
// par.Hooks.Wall (core.Config.ParWallProbe), read after the run.
type Profile struct {
	shards []shardSlot

	windowStart time.Time
	// parallelWall / serializedWall split the summed wall span of
	// completed windows by execution mode.
	parallelWall   time.Duration
	serializedWall time.Duration
	windows        int
	current        bool // current window is serialized
}

// New returns a profile for a run over `shards` shards.
func New(shards int) *Profile {
	return &Profile{shards: make([]shardSlot, shards)}
}

// WindowStart begins a window's wall span (coordinator context).
func (p *Profile) WindowStart(start, end sim.Time, serialized bool) {
	p.windowStart = time.Now()
	p.current = serialized
}

// ShardStart begins shard's busy slice (worker context; the slot is
// owned by the calling worker for the duration of the window).
func (p *Profile) ShardStart(shard int) {
	p.shards[shard].started = time.Now()
}

// ShardDone ends shard's busy slice (worker context).
func (p *Profile) ShardDone(shard int) {
	p.shards[shard].busy += time.Since(p.shards[shard].started)
}

// WindowDone closes the window's wall span (coordinator context, all
// workers quiescent again).
func (p *Profile) WindowDone() {
	d := time.Since(p.windowStart)
	if p.current {
		p.serializedWall += d
	} else {
		p.parallelWall += d
	}
	p.windows++
}

// Windows returns the number of completed windows measured.
func (p *Profile) Windows() int { return p.windows }

// Wall returns the summed wall span of completed windows, split into
// parallel and serialized execution.
func (p *Profile) Wall() (parallel, serialized time.Duration) {
	return p.parallelWall, p.serializedWall
}

// ShardBusy returns shard s's total busy wall time.
func (p *Profile) ShardBusy(s int) time.Duration { return p.shards[s].busy }

// ShardWait returns shard s's barrier wait: the parallel windows' wall
// span minus the shard's busy slices (clamped at zero — the clock
// reads bounding a slice are not atomic with the window span's).
func (p *Profile) ShardWait(s int) time.Duration {
	w := p.parallelWall - p.shards[s].busy
	if w < 0 {
		return 0
	}
	return w
}

// WriteText renders the wall profile. Every number is host-dependent:
// the report is a diagnostic, never a determinism artifact.
func (p *Profile) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "wall-clock window profile (host-dependent): %d window(s), parallel %v, serialized %v\n",
		p.windows, p.parallelWall.Round(time.Microsecond), p.serializedWall.Round(time.Microsecond)); err != nil {
		return err
	}
	for s := range p.shards {
		if _, err := fmt.Fprintf(w, "  shard %3d: busy %v, barrier wait %v\n",
			s, p.ShardBusy(s).Round(time.Microsecond), p.ShardWait(s).Round(time.Microsecond)); err != nil {
			return err
		}
	}
	return nil
}

// Interface conformance.
var _ par.WallProbe = (*Profile)(nil)
