package parprof

import (
	"strings"
	"testing"

	"distws/internal/obs"
	"distws/internal/sim"
)

// record appends a window at index i of width la with the given cause
// and pair matrix (shards inferred from the ledger).
func record(l *Ledger, i int, la sim.Duration, cause Cause, pairs []uint32) {
	start := sim.Time(int64(i) * int64(la))
	merged := 0
	for _, n := range pairs {
		merged += int(n)
	}
	l.Record(start, start.Add(la), cause, merged, pairs)
}

func TestLedgerAggregates(t *testing.T) {
	const la = 4 * sim.Microsecond
	l := New(2, la)
	record(l, 0, la, CauseNone, nil)
	record(l, 1, la, CauseNone, []uint32{0, 3, 2, 0})
	record(l, 2, la, CauseTokenDue, []uint32{0, 1, 0, 0})
	record(l, 3, la, CauseDetector, nil)
	record(l, 4, la, CauseTokenDue, nil)

	tot := l.Totals()
	if tot.Windows != 5 || tot.Serialized != 3 || tot.Staged != 6 {
		t.Fatalf("totals = %+v", tot)
	}
	if tot.Parallel != 2*la || tot.SerializedTime != 3*la {
		t.Fatalf("time split = %v parallel, %v serialized", tot.Parallel, tot.SerializedTime)
	}
	if got := tot.ByCause[CauseTokenDue]; got.Windows != 2 || got.Virtual != 2*la {
		t.Fatalf("token-due totals = %+v", got)
	}
	if got := l.SerializedShare(); got != 0.6 {
		t.Fatalf("SerializedShare = %v, want 0.6", got)
	}
	if err := l.CheckIdentities(); err != nil {
		t.Fatalf("CheckIdentities: %v", err)
	}

	// Per-window pair matrices: only windows with traffic carry one.
	if p := l.Pairs(0); p != nil {
		t.Fatalf("window 0 pairs = %v, want nil", p)
	}
	if p := l.Pairs(1); len(p) != 4 || p[1] != 3 || p[2] != 2 {
		t.Fatalf("window 1 pairs = %v", p)
	}
	tr := l.Traffic()
	if tr[0][1] != 4 || tr[1][0] != 2 || tr[0][0] != 0 || tr[1][1] != 0 {
		t.Fatalf("traffic = %v", tr)
	}
}

func TestLedgerRecordCopiesPairs(t *testing.T) {
	const la = sim.Microsecond
	l := New(2, la)
	scratch := []uint32{1, 2, 3, 4}
	l.Record(0, sim.Time(la), CauseNone, 10, scratch)
	scratch[0], scratch[3] = 99, 99 // caller reuses its scratch
	if p := l.Pairs(0); p[0] != 1 || p[3] != 4 {
		t.Fatalf("pairs alias caller scratch: %v", p)
	}
}

func TestEmptyAndSequentialLedger(t *testing.T) {
	for _, l := range []*Ledger{New(1, 0), New(4, 2*sim.Microsecond), New(0, 0)} {
		if err := l.CheckIdentities(); err != nil {
			t.Fatalf("empty ledger fails identities: %v", err)
		}
		if l.SerializedShare() != 0 {
			t.Fatalf("empty ledger SerializedShare = %v", l.SerializedShare())
		}
	}
	if New(0, 0).Shards() != 1 {
		t.Fatal("shards < 1 must clamp to 1")
	}
	var sb strings.Builder
	if err := New(1, 0).WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no windows recorded (sequential kernel)") {
		t.Fatalf("sequential ledger text:\n%s", sb.String())
	}
}

func TestCheckIdentitiesCatchesTampering(t *testing.T) {
	const la = sim.Microsecond
	fresh := func() *Ledger {
		l := New(2, la)
		record(l, 0, la, CauseNone, []uint32{0, 2, 1, 0})
		record(l, 1, la, CauseTokenDue, nil)
		return l
	}
	for name, tamper := range map[string]func(*Ledger){
		"cause":     func(l *Ledger) { l.windows[1].Cause = CauseIdleDecision },
		"width":     func(l *Ledger) { l.windows[0].End += sim.Time(la) },
		"merged":    func(l *Ledger) { l.windows[0].Merged++ },
		"traffic":   func(l *Ledger) { l.traffic[1]++ },
		"aggregate": func(l *Ledger) { l.totals.Serialized++ },
		"pairsum":   func(l *Ledger) { l.pairArena[1]++ },
	} {
		l := fresh()
		if err := l.CheckIdentities(); err != nil {
			t.Fatalf("%s: fresh ledger fails: %v", name, err)
		}
		tamper(l)
		if err := l.CheckIdentities(); err == nil {
			t.Errorf("%s tampering not caught", name)
		}
	}
}

func TestCauseStrings(t *testing.T) {
	want := map[Cause]string{
		CauseNone:         "parallel",
		CauseDetector:     "detector-decision",
		CauseCrashPlan:    "crash-plan",
		CauseTokenDue:     "token-due",
		CauseIdleDecision: "idle-decision",
		CauseCallerForced: "caller-forced",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
		if got := c.Serialized(); got != (c != CauseNone) {
			t.Errorf("%v.Serialized() = %v", c, got)
		}
	}
	if got := Cause(200).String(); got != "Cause(200)" {
		t.Errorf("out-of-range cause renders %q", got)
	}
	// Record clamps invalid causes rather than corrupting the arrays.
	l := New(1, sim.Microsecond)
	l.Record(0, sim.Time(sim.Microsecond), Cause(200), 0, nil)
	if l.Windows()[0].Cause != CauseCallerForced {
		t.Errorf("invalid cause recorded as %v", l.Windows()[0].Cause)
	}
}

func TestWriteTextGolden(t *testing.T) {
	const la = 4 * sim.Microsecond
	l := New(2, la)
	record(l, 0, la, CauseNone, []uint32{0, 5, 3, 0})
	record(l, 1, la, CauseTokenDue, nil)
	record(l, 2, la, CauseDetector, nil)
	var sb strings.Builder
	if err := l.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `parallel-kernel profile: 2 shard(s), lookahead 4.000µs
  windows:    3 (1 parallel, 2 serialized = 66.7%)
  staged:     8 message(s) merged at barriers (cross-shard + deferred same-shard)
  serialized windows by cause (share of serialized virtual time):
    detector-decision       1 window(s)       4.000µs  50.0%
    token-due               1 window(s)       4.000µs  50.0%
`
	if sb.String() != want {
		t.Fatalf("profile text:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestScalingReport(t *testing.T) {
	const la = 4 * sim.Microsecond
	l1 := New(1, 0)
	l4 := New(4, la)
	record(l4, 0, la, CauseNone, nil)
	record(l4, 1, la, CauseTokenDue, nil)

	sc := Scaling{Rows: []ScalingRow{
		RowFrom(1, 10*sim.Millisecond, l1, 2.0),
		RowFrom(4, 10*sim.Millisecond, l4, 1.0),
	}}
	if sc.Rows[1].Windows != 2 || sc.Rows[1].Serialized != 1 ||
		sc.Rows[1].CauseWindows[CauseTokenDue] != 1 {
		t.Fatalf("row = %+v", sc.Rows[1])
	}
	var sb strings.Builder
	if err := sc.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// speedup at 4 shards = 2.0/1.0 = 2.00, efficiency 0.50.
	if !strings.Contains(out, "2.00") || !strings.Contains(out, "0.50") {
		t.Fatalf("scaling table lacks speedup/efficiency:\n%s", out)
	}
	if !strings.Contains(out, "token-due") {
		t.Fatalf("scaling table lacks cause decomposition:\n%s", out)
	}

	var jb strings.Builder
	if err := sc.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jb.String(), `"shards": 4`) {
		t.Fatalf("scaling JSON:\n%s", jb.String())
	}
	// Unmeasured wall columns render as "-" so the deterministic half of
	// the report never depends on the host.
	sc2 := Scaling{Rows: []ScalingRow{RowFrom(1, sim.Millisecond, l1, 0)}}
	sb.Reset()
	if err := sc2.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "-") {
		t.Fatalf("unmeasured wall column must render '-':\n%s", sb.String())
	}
}

func TestPublish(t *testing.T) {
	const la = 4 * sim.Microsecond
	l := New(2, la)
	record(l, 0, la, CauseNone, []uint32{0, 2, 1, 0})
	record(l, 1, la, CauseTokenDue, nil)
	record(l, 2, la, CauseTokenDue, nil)

	reg := obs.NewRegistry()
	Publish(reg, l)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"sim_par_windows_total 3",
		"sim_par_serialized_total 2",
		"sim_par_staged_total 3",
		"sim_par_parallel_ns_total 4000",
		"sim_par_serialized_ns_total 8000",
		"sim_par_cause_token_due_windows_total 2",
		"sim_par_window_merged",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "sim_par_cause_crash_plan") {
		t.Errorf("zero-valued cause metric published:\n%s", out)
	}
	// Nil registry / nil ledger are no-ops, not panics.
	Publish(nil, l)
	Publish(reg, nil)
}

func TestChromeWindows(t *testing.T) {
	const la = 4 * sim.Microsecond
	l := New(2, la)
	record(l, 0, la, CauseNone, []uint32{0, 3, 2, 0})
	record(l, 1, la, CauseDetector, nil)

	spans := ChromeWindows(l)
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Serialized || spans[0].Cause != "" {
		t.Fatalf("parallel span = %+v", spans[0])
	}
	// MergedByShard is the destination-column sum of the pair matrix.
	if got := spans[0].MergedByShard; len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("MergedByShard = %v", got)
	}
	if !spans[1].Serialized || spans[1].Cause != "detector-decision" || spans[1].MergedByShard != nil {
		t.Fatalf("serialized span = %+v", spans[1])
	}
	if ChromeWindows(nil) != nil || ChromeWindows(New(1, 0)) != nil {
		t.Fatal("empty ledgers must produce no spans")
	}
}
