// Package parprof profiles the parallel simulation kernel: a
// deterministic per-window ledger of the conservative time windows a
// sharded run executed (internal/sim/par), with a serialization-cause
// taxonomy threaded out of the sharded engine's window policy.
//
// The ledger is recorded at window barriers via par.Hooks.OnWindow —
// coordinator context, workers quiescent — so recording never races
// with simulation state and never perturbs it: a profiled run is
// byte-identical to an unprofiled one (asserted by the observer-freedom
// tests in internal/core). Everything in the ledger is virtual-time
// data and therefore bit-deterministic for a fixed (Config, Shards);
// wall-clock diagnosis lives separately in parprof/wallclock, behind
// its own flag and walltime allowlist, so the two time bases never mix.
//
// Exports: a text profile (WriteText), a shards {1,2,4,8} scaling
// report (Scaling), Prometheus counters/histograms (Publish, outside
// core.Run like causal.Publish so the engine's own exposition is
// untouched), Chrome-trace shard lanes (ChromeWindows), and the run
// manifest's `par` section (internal/obs/ledger). DESIGN.md §14
// documents the schema and the cause taxonomy.
package parprof

import (
	"fmt"

	"distws/internal/sim"
)

// Cause classifies why a window was serialized. Exactly one cause is
// recorded per window; CauseNone marks windows that ran parallel. The
// serialized causes mirror the sharded engine's trigger list
// (internal/core/engine_par.go, DESIGN.md §13) in decision order.
type Cause uint8

const (
	// CauseNone: the window ran parallel across all shards.
	CauseNone Cause = iota
	// CauseDetector: the termination detector does not implement
	// term.DecisionAware, so no window can be proven decision-free.
	CauseDetector
	// CauseCrashPlan: a fault plan with crashes is active — from the
	// first crash time onward, and after detection (dead-lettering).
	CauseCrashPlan
	// CauseTokenDue: a termination token is due at the ring initiator
	// inside the window.
	CauseTokenDue
	// CauseIdleDecision: the detector reported that a parked token at
	// the initiator could decide on its next OnIdle.
	CauseIdleDecision
	// CauseCallerForced: the par.Hooks.Serialize caller forced the
	// window without naming an engine cause. Unreachable from the
	// sharded engine (its policy is exhaustive); recorded defensively
	// for other par users.
	CauseCallerForced

	// NumCauses bounds the enum for dense per-cause arrays.
	NumCauses
)

var causeNames = [NumCauses]string{
	"parallel", "detector-decision", "crash-plan", "token-due",
	"idle-decision", "caller-forced",
}

func (c Cause) String() string {
	if c < NumCauses {
		return causeNames[c]
	}
	return fmt.Sprintf("Cause(%d)", uint8(c))
}

// Serialized reports whether the cause marks a serialized window.
func (c Cause) Serialized() bool { return c != CauseNone }

// Window is one recorded time window.
type Window struct {
	// Start and End bound the window [Start, End); the width is always
	// the run's lookahead.
	Start, End sim.Time
	// Cause is the serialization cause (CauseNone = ran parallel).
	Cause Cause
	// Merged counts the staged messages injected at the barrier that
	// opened this window: every cross-shard send, plus same-shard sends
	// due at or after the window end, which route through the merge so
	// barrier order reproduces sequential send-order tie-breaks (the
	// traffic matrix diagonal is therefore nonzero by design).
	Merged uint32
	// pairOff indexes the ledger's pair arena (-1 when Merged == 0).
	pairOff int32
}

// Serialized reports whether the window executed single-threaded.
func (w Window) Serialized() bool { return w.Cause.Serialized() }

// CauseTotals aggregates one cause's windows.
type CauseTotals struct {
	// Windows counts windows attributed to the cause.
	Windows uint64
	// Virtual is the summed window width (Windows × lookahead): the
	// virtual-time share the cause governed.
	Virtual sim.Duration
}

// Totals is the ledger's aggregate view.
type Totals struct {
	Windows    uint64
	Serialized uint64
	Staged     uint64
	// Parallel and SerializedTime split the total windowed virtual
	// time (Windows × lookahead) by execution mode.
	Parallel       sim.Duration
	SerializedTime sim.Duration
	// ByCause decomposes the windows by cause; ByCause[CauseNone] is
	// the parallel share, the rest partition the serialized share.
	ByCause [NumCauses]CauseTotals
}

// Ledger is the deterministic window ledger of one sharded run. Record
// is called once per window from the barrier (single-threaded); all
// aggregates are maintained incrementally so Totals is O(1).
type Ledger struct {
	shards    int
	lookahead sim.Duration
	windows   []Window
	// pairArena backs the per-window shard-pair matrices: each window
	// with traffic owns a shards² block at its pairOff.
	pairArena []uint32
	// traffic is the src-major shards×shards total staged-message
	// matrix over the whole run.
	traffic []uint64
	totals  Totals
}

// New returns an empty ledger for a run over the given shard count.
// lookahead 0 is legal and marks the degenerate sequential ledger
// (shards <= 1): the sequential kernel has no windows, so the ledger
// stays empty and only documents the shape of the run.
func New(shards int, lookahead sim.Duration) *Ledger {
	if shards < 1 {
		shards = 1
	}
	return &Ledger{
		shards:    shards,
		lookahead: lookahead,
		traffic:   make([]uint64, shards*shards),
	}
}

// Shards returns the run's shard count.
func (l *Ledger) Shards() int { return l.shards }

// Lookahead returns the window width Δ (0 for a sequential ledger).
func (l *Ledger) Lookahead() sim.Duration { return l.lookahead }

// Record appends one window. cause CauseNone means the window ran
// parallel; merged is the staged-message count injected at the opening
// barrier and pairs its src-major shards×shards decomposition (nil
// when merged == 0; the slice is copied, so barrier-owned scratch may
// be passed directly). Steady-state cost amortizes to zero
// allocations (BenchmarkWindowLedger gates it).
func (l *Ledger) Record(start, end sim.Time, cause Cause, merged int, pairs []uint32) {
	if cause >= NumCauses {
		cause = CauseCallerForced
	}
	w := Window{Start: start, End: end, Cause: cause, Merged: uint32(merged), pairOff: -1}
	if merged > 0 && len(pairs) == l.shards*l.shards {
		w.pairOff = int32(len(l.pairArena))
		l.pairArena = append(l.pairArena, pairs...)
		for i, n := range pairs {
			l.traffic[i] += uint64(n)
		}
	}
	l.windows = append(l.windows, w)

	width := end.Sub(start)
	l.totals.Windows++
	l.totals.Staged += uint64(merged)
	l.totals.ByCause[cause].Windows++
	l.totals.ByCause[cause].Virtual += width
	if cause.Serialized() {
		l.totals.Serialized++
		l.totals.SerializedTime += width
	} else {
		l.totals.Parallel += width
	}
}

// Reset empties the ledger while keeping its capacity, so a caller
// replaying many runs at the same shard count (the scaling ladder, the
// window-ledger benchmark) can reuse one ledger without reallocating.
func (l *Ledger) Reset() {
	l.windows = l.windows[:0]
	l.pairArena = l.pairArena[:0]
	for i := range l.traffic {
		l.traffic[i] = 0
	}
	l.totals = Totals{}
}

// Windows returns the recorded windows in execution order. The slice
// is the ledger's own storage; callers must not mutate it.
func (l *Ledger) Windows() []Window { return l.windows }

// Pairs returns window i's src-major shards×shards staged-message
// matrix, or nil when the opening barrier merged nothing. The slice
// aliases ledger storage; callers must not mutate it.
func (l *Ledger) Pairs(i int) []uint32 {
	w := l.windows[i]
	if w.pairOff < 0 {
		return nil
	}
	n := l.shards * l.shards
	return l.pairArena[w.pairOff : int(w.pairOff)+n]
}

// Totals returns the aggregate view.
func (l *Ledger) Totals() Totals { return l.totals }

// SerializedShare returns the serialized fraction of all windows in
// [0,1] (0 for an empty ledger).
func (l *Ledger) SerializedShare() float64 {
	if l.totals.Windows == 0 {
		return 0
	}
	return float64(l.totals.Serialized) / float64(l.totals.Windows)
}

// Traffic returns the whole-run shard×shard staged-message matrix
// (src-major rows), freshly allocated.
func (l *Ledger) Traffic() [][]uint64 {
	m := make([][]uint64, l.shards)
	for s := 0; s < l.shards; s++ {
		m[s] = append([]uint64(nil), l.traffic[s*l.shards:(s+1)*l.shards]...)
	}
	return m
}

// CheckIdentities verifies the ledger's internal accounting: every
// window carries exactly one cause and spans exactly one lookahead;
// the per-cause window counts and virtual-time totals partition the
// serialized totals (and, with the parallel bucket, the whole run);
// the staged total equals both the per-window merged sum and the
// traffic-matrix sum. The sharded engine's profiling tests run this on
// every recorded ledger.
func (l *Ledger) CheckIdentities() error {
	var windows, serialized, staged uint64
	var parallel, serTime sim.Duration
	var byCause [NumCauses]CauseTotals
	for i, w := range l.windows {
		if w.Cause >= NumCauses {
			return fmt.Errorf("parprof: window %d has invalid cause %d", i, w.Cause)
		}
		if l.lookahead > 0 && w.End.Sub(w.Start) != l.lookahead {
			return fmt.Errorf("parprof: window %d spans %d ns, want lookahead %d ns",
				i, w.End.Sub(w.Start), l.lookahead)
		}
		width := w.End.Sub(w.Start)
		windows++
		staged += uint64(w.Merged)
		byCause[w.Cause].Windows++
		byCause[w.Cause].Virtual += width
		if w.Serialized() {
			serialized++
			serTime += width
		} else {
			parallel += width
		}
		var pairSum uint64
		for _, n := range l.Pairs(i) {
			pairSum += uint64(n)
		}
		if w.Merged > 0 && pairSum != uint64(w.Merged) {
			return fmt.Errorf("parprof: window %d pairs sum to %d, want merged %d", i, pairSum, w.Merged)
		}
	}
	t := l.totals
	if windows != t.Windows || serialized != t.Serialized || staged != t.Staged ||
		parallel != t.Parallel || serTime != t.SerializedTime || byCause != t.ByCause {
		return fmt.Errorf("parprof: aggregate totals diverge from the recorded windows")
	}
	var causeWindows uint64
	var causeTime sim.Duration
	for c := CauseNone + 1; c < NumCauses; c++ {
		causeWindows += t.ByCause[c].Windows
		causeTime += t.ByCause[c].Virtual
	}
	if causeWindows != t.Serialized {
		return fmt.Errorf("parprof: cause windows sum to %d, want serialized total %d", causeWindows, t.Serialized)
	}
	if causeTime != t.SerializedTime {
		return fmt.Errorf("parprof: cause virtual time sums to %d ns, want serialized total %d ns", causeTime, t.SerializedTime)
	}
	var trafficSum uint64
	for _, n := range l.traffic {
		trafficSum += n
	}
	if trafficSum != t.Staged {
		return fmt.Errorf("parprof: traffic matrix sums to %d, want staged total %d", trafficSum, t.Staged)
	}
	return nil
}
