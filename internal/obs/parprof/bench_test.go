package parprof

import (
	"testing"

	"distws/internal/sim"
)

// ledgerWorkload records one window mix into l: mostly parallel
// windows, a serialized minority, and periodic barrier traffic — the
// shape a real sharded run produces. i is the window index.
func ledgerWorkload(l *Ledger, i int, la sim.Duration, pairs []uint32) {
	start := sim.Time(int64(i) * int64(la))
	cause, merged := CauseNone, 0
	if i%16 == 0 {
		cause = CauseTokenDue
	}
	p := []uint32(nil)
	if i%4 == 0 {
		p = pairs
		for _, n := range pairs {
			merged += int(n)
		}
	}
	l.Record(start, start.Add(la), cause, merged, p)
}

// BenchmarkWindowLedger measures Ledger.Record on the barrier path the
// coordinator drives once per window. The ledger is reset (capacity
// kept) every few thousand windows — longer than any real run's
// steady state — so the benchmark is allocation-free after warm-up
// and BENCH_sim.json gates it at 0 allocs/op.
func BenchmarkWindowLedger(b *testing.B) {
	const la = 4 * sim.Microsecond
	l := New(4, la)
	pairs := []uint32{0, 3, 1, 0, 2, 0, 0, 1, 0, 4, 0, 0, 1, 0, 2, 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := i % 4096
		if w == 0 {
			l.Reset()
		}
		ledgerWorkload(l, w, la, pairs)
	}
}

// TestWindowLedgerAllocFree is the alloc gate for the barrier
// recording path: once the ledger's slices have reached steady-state
// capacity, Record (and Reset) must not allocate at all.
func TestWindowLedgerAllocFree(t *testing.T) {
	const la = 4 * sim.Microsecond
	const windows = 2048
	l := New(4, la)
	pairs := []uint32{0, 3, 1, 0, 2, 0, 0, 1, 0, 4, 0, 0, 1, 0, 2, 0}
	body := func() {
		l.Reset()
		for i := 0; i < windows; i++ {
			ledgerWorkload(l, i, la, pairs)
		}
		if err := l.CheckIdentities(); err != nil {
			t.Fatal(err)
		}
	}
	body() // reach steady-state capacity before measuring
	if got := testing.AllocsPerRun(20, body); got != 0 {
		t.Fatalf("window ledger allocates %.1f allocs/run, want 0", got)
	}
}
