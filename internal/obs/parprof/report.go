package parprof

import (
	"encoding/json"
	"fmt"
	"io"

	"distws/internal/obs"
	"distws/internal/sim"
)

// pct renders part/whole as a percentage ("-" when whole is 0).
func pct(part, whole uint64) string {
	if whole == 0 {
		return "    -"
	}
	return fmt.Sprintf("%4.1f%%", 100*float64(part)/float64(whole))
}

// WriteText renders the ledger as the human-readable window profile.
// The output is a pure function of the ledger — byte-stable,
// golden-testable.
func (l *Ledger) WriteText(w io.Writer) error {
	bw := &errWriter{w: w}
	t := l.Totals()
	bw.printf("parallel-kernel profile: %d shard(s), lookahead %v\n", l.shards, l.lookahead)
	if t.Windows == 0 {
		bw.printf("  no windows recorded (sequential kernel)\n")
		return bw.err
	}
	bw.printf("  windows:    %d (%d parallel, %d serialized = %s)\n",
		t.Windows, t.Windows-t.Serialized, t.Serialized, pct(t.Serialized, t.Windows))
	bw.printf("  staged:     %d message(s) merged at barriers (cross-shard + deferred same-shard)\n", t.Staged)
	if t.Serialized > 0 {
		bw.printf("  serialized windows by cause (share of serialized virtual time):\n")
		for c := CauseNone + 1; c < NumCauses; c++ {
			ct := t.ByCause[c]
			if ct.Windows == 0 {
				continue
			}
			bw.printf("    %-18s %6d window(s)  %12v  %s\n",
				c.String(), ct.Windows, ct.Virtual,
				pct(uint64(ct.Virtual), uint64(t.SerializedTime)))
		}
	}
	return bw.err
}

// ScalingRow is one shard count's entry in a scaling report.
type ScalingRow struct {
	Shards    int          `json:"shards"`
	Makespan  sim.Duration `json:"makespan_ns"`
	Lookahead sim.Duration `json:"lookahead_ns"`

	Windows    uint64 `json:"windows"`
	Serialized uint64 `json:"serialized"`
	Staged     uint64 `json:"staged"`
	// SerializedShare is serialized/windows in [0,1].
	SerializedShare float64 `json:"serialized_share"`
	// CauseWindows decomposes the serialized windows by cause, in Cause
	// order (index 0, CauseNone, is the parallel window count).
	CauseWindows [NumCauses]uint64 `json:"cause_windows"`

	// WallSeconds is the measured host wall time of the run; 0 when
	// unmeasured. It is the one host-dependent column of the report and
	// is excluded from every determinism comparison.
	WallSeconds float64 `json:"wall_seconds,omitempty"`
}

// RowFrom builds a scaling row from one run's ledger and makespan.
func RowFrom(shards int, makespan sim.Duration, l *Ledger, wallSeconds float64) ScalingRow {
	r := ScalingRow{Shards: shards, Makespan: makespan, WallSeconds: wallSeconds}
	if l != nil {
		t := l.Totals()
		r.Lookahead = l.Lookahead()
		r.Windows = t.Windows
		r.Serialized = t.Serialized
		r.Staged = t.Staged
		r.SerializedShare = l.SerializedShare()
		for c := Cause(0); c < NumCauses; c++ {
			r.CauseWindows[c] = t.ByCause[c].Windows
		}
	}
	return r
}

// Scaling is the shard scaling report: the same configuration run at
// several shard counts, tabulating window-protocol overhead with a
// per-cause decomposition. Virtual columns are deterministic; the wall
// columns (when measured) are host diagnostics.
type Scaling struct {
	Rows []ScalingRow `json:"rows"`
}

// WriteText renders the scaling table. Wall-derived columns print "-"
// when unmeasured, so the deterministic rendering is a pure function
// of the virtual data.
func (s *Scaling) WriteText(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("shard scaling report (virtual columns deterministic; wall columns host-dependent)\n")
	bw.printf("  %6s %10s %10s %6s %10s %9s %8s %6s\n",
		"shards", "windows", "serial", "ser%", "staged", "wall(s)", "speedup", "eff")
	var base float64
	for _, r := range s.Rows {
		if r.Shards == 1 && r.WallSeconds > 0 {
			base = r.WallSeconds
		}
	}
	for _, r := range s.Rows {
		wall, speedup, eff := "        -", "       -", "     -"
		if r.WallSeconds > 0 {
			wall = fmt.Sprintf("%9.2f", r.WallSeconds)
			if base > 0 {
				sp := base / r.WallSeconds
				speedup = fmt.Sprintf("%8.2f", sp)
				eff = fmt.Sprintf("%6.2f", sp/float64(r.Shards))
			}
		}
		bw.printf("  %6d %10d %10d %5s %10d %s %s %s\n",
			r.Shards, r.Windows, r.Serialized, pct(r.Serialized, r.Windows),
			r.Staged, wall, speedup, eff)
	}
	bw.printf("  serialized windows by cause:\n")
	bw.printf("  %6s", "shards")
	for c := CauseNone + 1; c < NumCauses; c++ {
		bw.printf(" %18s", c.String())
	}
	bw.printf("\n")
	for _, r := range s.Rows {
		bw.printf("  %6d", r.Shards)
		for c := CauseNone + 1; c < NumCauses; c++ {
			bw.printf(" %18d", r.CauseWindows[c])
		}
		bw.printf("\n")
	}
	return bw.err
}

// WriteJSON renders the scaling report as an indented JSON document
// (the `make parprof-smoke` artifact).
func (s *Scaling) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Publish exports the ledger's aggregates into a metrics registry as
// the gated sim_par_* family. Like causal.Publish it runs outside
// core.Run, after the simulation: the engine's own Prometheus
// exposition stays byte-identical whether or not a run was profiled,
// which is what keeps the golden registry dumps and the sharded
// observer-freedom comparisons exact.
func Publish(reg *obs.Registry, l *Ledger) {
	if reg == nil || l == nil {
		return
	}
	t := l.Totals()
	reg.Counter("sim_par_windows_total").Add(t.Windows)
	reg.Counter("sim_par_serialized_total").Add(t.Serialized)
	reg.Counter("sim_par_staged_total").Add(t.Staged)
	reg.Counter("sim_par_parallel_ns_total").Add(uint64(t.Parallel))
	reg.Counter("sim_par_serialized_ns_total").Add(uint64(t.SerializedTime))
	for c := CauseNone + 1; c < NumCauses; c++ {
		if t.ByCause[c].Windows > 0 {
			reg.Counter("sim_par_cause_" + causeSlug(c) + "_windows_total").Add(t.ByCause[c].Windows)
		}
	}
	h := reg.Histogram("sim_par_window_merged")
	for _, w := range l.Windows() {
		h.Observe(int64(w.Merged))
	}
}

// causeSlug converts a cause name to a metric-name-safe suffix.
func causeSlug(c Cause) string {
	out := []byte(c.String())
	for i, b := range out {
		if b == '-' {
			out[i] = '_'
		}
	}
	return string(out)
}

// ChromeWindows converts the ledger into the Chrome exporter's
// parallel-kernel lanes (obs.ChromeOptions.ParWindows): one span per
// window, with the per-shard merged-message decomposition attached so
// the shard lanes show where barrier traffic landed.
func ChromeWindows(l *Ledger) []obs.ParWindowSpan {
	if l == nil || len(l.windows) == 0 {
		return nil
	}
	spans := make([]obs.ParWindowSpan, len(l.windows))
	for i, w := range l.windows {
		sp := obs.ParWindowSpan{Start: w.Start, End: w.End, Serialized: w.Serialized()}
		if w.Serialized() {
			sp.Cause = w.Cause.String()
		}
		if pairs := l.Pairs(i); pairs != nil {
			merged := make([]uint32, l.shards)
			for src := 0; src < l.shards; src++ {
				for dst := 0; dst < l.shards; dst++ {
					merged[dst] += pairs[src*l.shards+dst]
				}
			}
			sp.MergedByShard = merged
		}
		spans[i] = sp
	}
	return spans
}

// errWriter latches the first write error so report code stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
