package obs

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	g := NewRegistry()
	c := g.Counter("steals")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Counter("steals") != c {
		t.Fatal("same name returned a different counter")
	}
	var nilC *Counter
	nilC.Inc()
	nilC.Add(3)
	if nilC.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	g := NewRegistry()
	h := g.Histogram("lat")
	// 1000 observations of value 100 and 10 of value 100000: the p50
	// must land in 100's bucket [64,127], the p99.5 in 100000's
	// [65536,131071].
	for i := 0; i < 1000; i++ {
		h.Observe(100)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100000)
	}
	if h.Count() != 1010 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Sum() != 1000*100+10*100000 {
		t.Fatalf("sum %d", h.Sum())
	}
	p50 := h.Quantile(0.5)
	if p50 < 64 || p50 > 127 {
		t.Fatalf("p50 = %v, want within [64,127]", p50)
	}
	p999 := h.Quantile(0.999)
	if p999 < 65536 || p999 > 131071 {
		t.Fatalf("p99.9 = %v, want within [65536,131071]", p999)
	}
	if h.Quantile(0) > h.Quantile(1) {
		t.Fatal("quantiles not monotone")
	}
	if mean := h.Mean(); math.Abs(mean-float64(h.Sum())/1010) > 1e-9 {
		t.Fatalf("mean %v", mean)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(5)
	if nilH.Count() != 0 || nilH.Quantile(0.5) != 0 || nilH.Mean() != 0 {
		t.Fatal("nil histogram not inert")
	}
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile nonzero")
	}
	h.Observe(-17) // clamps to zero
	h.Observe(0)
	if h.Count() != 2 || h.Sum() != 0 {
		t.Fatalf("clamped observations: count %d sum %d", h.Count(), h.Sum())
	}
	if q := h.Quantile(1); q != 0 {
		t.Fatalf("all-zero quantile %v", q)
	}
	// Out-of-range q clamps instead of panicking.
	h.Observe(8)
	if h.Quantile(-1) > h.Quantile(2) {
		t.Fatal("clamped quantiles inverted")
	}
}

func TestMatrix(t *testing.T) {
	g := NewRegistry()
	m := g.Matrix("links", 3)
	m.Inc(0, 1)
	m.Inc(0, 1)
	m.Add(2, 0, 7)
	m.Inc(-1, 0) // ignored
	m.Inc(0, 99) // ignored
	if m.At(0, 1) != 2 || m.At(2, 0) != 7 || m.At(1, 1) != 0 {
		t.Fatalf("matrix cells wrong: %v", m.Rows())
	}
	rows := m.Rows()
	if len(rows) != 3 || rows[2][0] != 7 {
		t.Fatalf("rows: %v", rows)
	}
	var nilM *Matrix
	nilM.Inc(0, 0)
	if nilM.N() != 0 || nilM.At(0, 0) != 0 || nilM.Rows() != nil {
		t.Fatal("nil matrix not inert")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	g := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Counter("c").Inc()
				g.Histogram("h").Observe(int64(i))
				g.Matrix("m", 4).Inc(i%4, (i+1)%4)
			}
		}()
	}
	wg.Wait()
	if got := g.Counter("c").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
	if got := g.Histogram("h").Count(); got != 8000 {
		t.Fatalf("concurrent histogram count = %d, want 8000", got)
	}
}

func TestWritePrometheusDeterministicAndWellFormed(t *testing.T) {
	build := func() *Registry {
		g := NewRegistry()
		g.Counter("sim_steal_requests_total").Add(12)
		g.Counter("a_first_counter").Add(1)
		h := g.Histogram("sim_steal_latency_ns")
		for _, v := range []int64{10, 20, 30, 5000} {
			h.Observe(v)
		}
		m := g.Matrix("sim_link_messages", 2)
		m.Inc(0, 1)
		m.Add(1, 0, 3)
		return g
	}
	var b1, b2 bytes.Buffer
	if err := build().WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("exposition text differs between identical registries")
	}
	out := b1.String()
	for _, want := range []string{
		"# TYPE sim_steal_requests_total counter",
		"sim_steal_requests_total 12",
		"# TYPE sim_steal_latency_ns histogram",
		`sim_steal_latency_ns_bucket{le="+Inf"} 4`,
		"sim_steal_latency_ns_sum 5060",
		"sim_steal_latency_ns_count 4",
		`sim_link_messages{from="0",to="1"} 1`,
		`sim_link_messages{from="1",to="0"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Sorted family order: a_first_counter before sim_steal_requests.
	if strings.Index(out, "a_first_counter") > strings.Index(out, "sim_steal_requests_total") {
		t.Fatal("families not sorted by name")
	}
	// Cumulative buckets must be non-decreasing.
	var last int
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "sim_steal_latency_ns_bucket") {
			v, err := strconv.Atoi(line[strings.LastIndexByte(line, ' ')+1:])
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			if v < last {
				t.Fatalf("buckets not cumulative at %q", line)
			}
			last = v
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"ok_name":      "ok_name",
		"has.dots":     "has_dots",
		"9starts":      "_starts",
		"with spaces!": "with_spaces_",
		"":             "_",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
