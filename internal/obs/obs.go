// Package obs is the observability layer shared by the discrete-event
// simulator (internal/core) and the real shared-memory runtime
// (internal/rt).
//
// It has three parts:
//
//   - a protocol-level event Recorder: bounded per-rank ring buffers
//     of trace.Event (steal request/reply sends and deliveries,
//     chunk-transfer sizes, termination-token hops, quantum
//     boundaries). A nil *Recorder is the disabled recorder — every
//     method is a nil-safe no-op, cheap enough that instrumented hot
//     paths need no branching (bench_test.go's BenchmarkObservability
//     shows the disabled path within noise of no instrumentation);
//
//   - a metrics Registry of named counters, log-bucketed histograms,
//     and per-link traffic matrices. All updates are lock-free
//     atomics, so one registry serves both the single-threaded
//     simulator — where the final contents are a pure function of the
//     run, in deterministic virtual time — and the concurrent runtime,
//     whose workers feed it real timestamps. This package itself never
//     reads the host clock (the walltime analyzer enforces it);
//     internal/rt measures wall time on its own allowlisted side and
//     passes durations in as data;
//
//   - exporters: Chrome trace-event JSON (opens in Perfetto or
//     chrome://tracing), Prometheus text exposition, and an
//     http.Handler bundling /metrics with expvar and pprof, plus
//     trace analyses (steal-latency percentiles, rank×rank traffic
//     matrix, termination-tail breakdown) that cmd/tracetool reports.
package obs

import (
	"distws/internal/sim"
	"distws/internal/trace"
)

// DefaultRingCap is the default per-rank event ring capacity (events,
// not bytes). At 24 bytes per event this bounds recording memory to
// ~200 KiB per rank; runs that outgrow it keep the newest events and
// count the evicted ones.
const DefaultRingCap = 1 << 13

// Recorder accumulates protocol-level events into bounded per-rank
// rings. It is not safe for concurrent use — the simulator is
// single-threaded; the concurrent runtime uses the Registry instead.
type Recorder struct {
	rings []ring
	cap   int
}

// ring is one rank's bounded event buffer. Storage grows on demand up
// to the cap, then wraps: head indexes the oldest retained event.
type ring struct {
	buf     []trace.Event
	head    int
	dropped uint64
}

// NewRecorder returns a recorder for n ranks with the given per-rank
// ring capacity (0 means DefaultRingCap). Rings allocate lazily, so a
// large-rank run only pays for ranks that actually log events.
func NewRecorder(n, capPerRank int) *Recorder {
	if capPerRank <= 0 {
		capPerRank = DefaultRingCap
	}
	return &Recorder{rings: make([]ring, n), cap: capPerRank}
}

// Enabled reports whether events are being recorded. It is valid (and
// false) on a nil receiver.
func (r *Recorder) Enabled() bool { return r != nil }

// Record appends one event to rank's ring, evicting the oldest event
// once the ring is full. A nil receiver is the disabled fast path.
func (r *Recorder) Record(rank int, t sim.Time, kind trace.EventKind, peer int, arg int64) {
	if r == nil {
		return
	}
	g := &r.rings[rank]
	if len(g.buf) < r.cap {
		g.buf = append(g.buf, trace.Event{Time: t, Kind: kind, Peer: peer, Arg: arg})
		return
	}
	g.buf[g.head] = trace.Event{Time: t, Kind: kind, Peer: peer, Arg: arg}
	g.head++
	if g.head == len(g.buf) {
		g.head = 0
	}
	g.dropped++
}

// Dropped returns the total number of evicted events across ranks.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	var n uint64
	for i := range r.rings {
		n += r.rings[i].dropped
	}
	return n
}

// Snapshot copies the recorded events out, per rank in time order,
// together with the per-rank eviction counts. Nil on a nil receiver.
func (r *Recorder) Snapshot() ([][]trace.Event, []uint64) {
	if r == nil {
		return nil, nil
	}
	events := make([][]trace.Event, len(r.rings))
	dropped := make([]uint64, len(r.rings))
	for i := range r.rings {
		g := &r.rings[i]
		dropped[i] = g.dropped
		if len(g.buf) == 0 {
			continue
		}
		out := make([]trace.Event, 0, len(g.buf))
		out = append(out, g.buf[g.head:]...)
		out = append(out, g.buf[:g.head]...)
		events[i] = out
	}
	return events, dropped
}

// Attach copies the recorded events into tr. A nil receiver leaves tr
// untouched, so callers can attach unconditionally.
func (r *Recorder) Attach(tr *trace.Trace) {
	if r == nil || tr == nil {
		return
	}
	tr.Events, tr.EventsDropped = r.Snapshot()
}
