package obs

import (
	"testing"

	"distws/internal/sim"
	"distws/internal/trace"
)

func TestRecorderRingBounds(t *testing.T) {
	r := NewRecorder(2, 4)
	for i := 0; i < 10; i++ {
		r.Record(0, sim.Time(i), trace.EvStealSend, 1, int64(i))
	}
	r.Record(1, 0, trace.EvTerminate, -1, 0)
	events, dropped := r.Snapshot()
	if len(events[0]) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(events[0]))
	}
	if dropped[0] != 6 {
		t.Fatalf("dropped[0] = %d, want 6", dropped[0])
	}
	// Ring keeps the newest events in time order.
	for i, e := range events[0] {
		if want := int64(6 + i); e.Arg != want {
			t.Fatalf("event %d has arg %d, want %d", i, e.Arg, want)
		}
		if i > 0 && events[0][i-1].Time > e.Time {
			t.Fatal("snapshot out of time order")
		}
	}
	if len(events[1]) != 1 || dropped[1] != 0 {
		t.Fatalf("rank 1: %d events, %d dropped", len(events[1]), dropped[1])
	}
	if r.Dropped() != 6 {
		t.Fatalf("total dropped %d, want 6", r.Dropped())
	}
}

func TestRecorderNilIsDisabled(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder claims enabled")
	}
	r.Record(0, 0, trace.EvStealSend, 1, 1) // must not panic
	if ev, dr := r.Snapshot(); ev != nil || dr != nil {
		t.Fatal("nil recorder has a snapshot")
	}
	if r.Dropped() != 0 {
		t.Fatal("nil recorder dropped events")
	}
	tr := &trace.Trace{}
	r.Attach(tr)
	if tr.Events != nil {
		t.Fatal("nil recorder attached events")
	}
}

func TestRecorderAttach(t *testing.T) {
	r := NewRecorder(1, 8)
	r.Record(0, 5, trace.EvWorkSend, 2, 16)
	tr := &trace.Trace{End: 10, Transitions: make([][]trace.Transition, 1), Sessions: make([][]trace.Session, 1)}
	r.Attach(tr)
	if tr.TotalEvents() != 1 || tr.Events[0][0].Arg != 16 {
		t.Fatalf("attach lost events: %+v", tr.Events)
	}
	if len(tr.EventsDropped) != 1 {
		t.Fatal("attach lost drop counts")
	}
}

// BenchmarkRecordDisabled measures the nil-recorder fast path against
// an enabled ring: the disabled call must stay within noise of a bare
// loop so instrumented hot paths cost nothing when tracing is off.
func BenchmarkRecordDisabled(b *testing.B) {
	var r *Recorder
	for i := 0; i < b.N; i++ {
		r.Record(0, 0, trace.EvStealSend, 1, int64(i))
	}
}

func BenchmarkRecordEnabled(b *testing.B) {
	r := NewRecorder(1, DefaultRingCap)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(0, 0, trace.EvStealSend, 1, int64(i))
	}
}
