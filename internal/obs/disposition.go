package obs

import "distws/internal/trace"

// ExportDisposition records how one trace event kind is handled by the
// two exporters this package owns: the Chrome trace writer and the
// Prometheus registry exposition. Every kind must declare both — the
// coverage test walks the table, so adding a kind to internal/trace
// without deciding its exporter treatment fails the build's tests
// rather than silently rendering as a generic instant with no metric.
type ExportDisposition struct {
	// Chrome names the Chrome-trace rendering. All kinds render at
	// least as a thread-scoped protocol instant (the generic path);
	// kinds with richer treatment (flow arrows, counter lanes) say so.
	Chrome string
	// Prometheus names the engine metric family the kind's occurrences
	// feed, or states explicitly that the kind has no metric and why.
	Prometheus string
}

// kindDispositions is the per-kind table, indexed by trace.EventKind.
// The array length pins it to the vocabulary: a new kind without a row
// is a compile-time hole the coverage test reports.
var kindDispositions = [trace.NumEventKinds]ExportDisposition{
	trace.EvStealSend:    {Chrome: "protocol instant + flow-arrow start to the matching receive", Prometheus: "sim_steal_requests_total"},
	trace.EvStealRecv:    {Chrome: "protocol instant + flow-arrow finish", Prometheus: "none: victim-side receipt; request counting happens at the thief"},
	trace.EvWorkSend:     {Chrome: "protocol instant + flow-arrow start", Prometheus: "none: transfer outcome is booked at the receiver"},
	trace.EvWorkRecv:     {Chrome: "protocol instant + flow-arrow finish", Prometheus: "sim_steal_success_total"},
	trace.EvNoWorkSend:   {Chrome: "protocol instant + flow-arrow start", Prometheus: "none: failure is booked at the thief"},
	trace.EvNoWorkRecv:   {Chrome: "protocol instant + flow-arrow finish", Prometheus: "sim_steal_fail_total"},
	trace.EvTokenSend:    {Chrome: "protocol instant", Prometheus: "none: hops are counted on receipt"},
	trace.EvTokenRecv:    {Chrome: "protocol instant", Prometheus: "sim_token_hops_total"},
	trace.EvTerminate:    {Chrome: "protocol instant ending the rank's lane", Prometheus: "none: one per rank per run; Makespan carries the information"},
	trace.EvQuantumStart: {Chrome: "protocol instant (quantum boundary)", Prometheus: "none: quantum counts derive from sim_chunk_nodes and node totals"},
	trace.EvQuantumEnd:   {Chrome: "protocol instant (quantum boundary)", Prometheus: "none: see EvQuantumStart"},
	trace.EvStealAbort:   {Chrome: "protocol instant (no flow arrow: the reply never resolved)", Prometheus: "sim_steal_aborted_total"},
	trace.EvStealRetry:   {Chrome: "protocol instant", Prometheus: "none: retries are a sub-population of sim_steal_requests_total"},
	trace.EvCrash:        {Chrome: "protocol instant ending the rank's lane", Prometheus: "sim_crashes_total (fault runs only)"},
	trace.EvMsgDrop:      {Chrome: "protocol instant at the sender", Prometheus: "sim_lost_work_messages_total (fault runs only)"},
	trace.EvTokenRegen:   {Chrome: "protocol instant at the regenerating rank", Prometheus: "sim_token_regens_total (fault runs only)"},
	trace.EvJobArrive:    {Chrome: "protocol instant at the placement rank (serving runs)", Prometheus: "sim_serve_jobs_arrived_total (serving runs only)"},
	trace.EvJobAdmit:     {Chrome: "protocol instant at the placement rank (serving runs)", Prometheus: "sim_serve_jobs_admitted_total (serving runs only)"},
	trace.EvJobReject:    {Chrome: "protocol instant at the placement rank (serving runs)", Prometheus: "sim_serve_jobs_rejected_total (serving runs only)"},
	trace.EvJobDone:      {Chrome: "protocol instant at the placement rank (serving runs)", Prometheus: "sim_serve_jobs_done_total and sim_serve_job_sojourn_ns (serving runs only)"},
}

// KindDisposition returns the exporter disposition for one event kind
// (zero value for out-of-range kinds).
func KindDisposition(k trace.EventKind) ExportDisposition {
	if k < 0 || k >= trace.NumEventKinds {
		return ExportDisposition{}
	}
	return kindDispositions[k]
}
