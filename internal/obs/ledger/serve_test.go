package ledger

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"distws/internal/core"
	"distws/internal/serve"
	"distws/internal/sim"
	"distws/internal/uts"
)

// serveSpec is a small two-tenant open-system plan: a gold tenant under
// a tight token bucket (so the manifest records nonzero rejections) and
// a best-effort silver tenant.
func serveSpec() *serve.Spec {
	tree := uts.Params{
		Type:        uts.Binomial,
		B0:          20,
		NonLeafBF:   2,
		NonLeafProb: 0.45,
		RootSeed:    31,
		Hash:        uts.HashFast,
	}
	return &serve.Spec{
		Horizon:   50 * sim.Millisecond,
		Placement: serve.PlaceRR,
		Tenants: []serve.Tenant{
			{
				Name:    "gold",
				Arrival: serve.ArrivalSpec{Process: serve.ProcPoisson, Mean: sim.Millisecond},
				Admit:   serve.Bucket{Rate: 150, Burst: 2},
				SLO:     serve.SLO{Class: "gold", Target: 10 * sim.Millisecond},
				Work:    serve.Workload{Kind: serve.WorkUTS, Tree: tree},
			},
			{
				Name:    "silver",
				Arrival: serve.ArrivalSpec{Process: serve.ProcGamma, Mean: 6 * sim.Millisecond, Shape: 2},
				Work:    serve.Workload{Kind: serve.WorkUTS, Tree: tree},
			},
		},
	}
}

// serveConfig is the smallest serving run whose manifest carries a full
// serve section.
func serveConfig() core.Config {
	cfg := testConfig()
	cfg.Tree = uts.Params{}
	cfg.Ranks = 8
	cfg.Serve = serveSpec()
	return cfg
}

// serveManifest builds a validated manifest from one serving run.
func serveManifest(t *testing.T, id string) *Manifest {
	t.Helper()
	cfg := serveConfig()
	spec := SpecFromConfig("SERVE", "quick", cfg)
	spec.Selector = "Tofu"
	m := FromRun(id, spec, mustRun(t, cfg))
	if err := m.Validate(); err != nil {
		t.Fatalf("serving manifest invalid: %v", err)
	}
	return m
}

// TestServeSectionFromRun: a serving run fills the serve section with
// the admission partition identity intact globally and per tenant, and
// a closed-system run of the same shape has no serve section at all.
func TestServeSectionFromRun(t *testing.T) {
	m := serveManifest(t, "serve-section")
	s := m.Serve
	if s == nil {
		t.Fatal("serving run produced no serve section")
	}
	if m.Spec.ServeHash == "" {
		t.Fatal("serving spec has no serve hash")
	}
	if s.Arrived == 0 || s.Admitted+s.Rejected != s.Arrived {
		t.Fatalf("admission identity broken: %d arrived, %d admitted, %d rejected",
			s.Arrived, s.Admitted, s.Rejected)
	}
	if s.Done != s.Admitted {
		t.Errorf("%d done of %d admitted; serving runs drain fully", s.Done, s.Admitted)
	}
	if s.Rejected == 0 {
		t.Error("token bucket rejected nothing; the section would not pin admission control")
	}
	if s.Jain <= 0 || s.Jain > 1 {
		t.Errorf("Jain index %v out of (0, 1]", s.Jain)
	}
	if len(s.Tenants) != 2 {
		t.Fatalf("%d tenant rows, want 2", len(s.Tenants))
	}
	var arrived, admitted, rejected, done uint64
	for _, ts := range s.Tenants {
		if ts.Admitted+ts.Rejected != ts.Arrived {
			t.Errorf("tenant %s identity broken: %d arrived, %d admitted, %d rejected",
				ts.Name, ts.Arrived, ts.Admitted, ts.Rejected)
		}
		arrived += ts.Arrived
		admitted += ts.Admitted
		rejected += ts.Rejected
		done += ts.Done
	}
	if arrived != s.Arrived || admitted != s.Admitted || rejected != s.Rejected || done != s.Done {
		t.Error("tenant rows do not sum to the global counts")
	}
	if gold := s.Tenants[0]; gold.SLOMet == 0 || gold.GoodputPerSec == 0 || gold.SojournP95NS == 0 {
		t.Errorf("gold tenant row is empty: %+v", gold)
	}

	// A closed-system run gets no serve section and no serve hash.
	cfg := testConfig()
	closed := FromRun("closed", testSpec(cfg), mustRun(t, cfg))
	if closed.Serve != nil {
		t.Error("closed-system run produced a serve section")
	}
	if closed.Spec.ServeHash != "" {
		t.Error("closed-system spec carries a serve hash")
	}
}

// TestServeSectionRoundTrip: the serve section survives the file round
// trip exactly, and its JSON spells the documented field names.
func TestServeSectionRoundTrip(t *testing.T) {
	m := serveManifest(t, "serve-roundtrip")
	path := filepath.Join(t.TempDir(), m.FileName())
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Serve, m.Serve) {
		t.Fatalf("serve section changed across the round trip:\n%+v\nvs\n%+v", back.Serve, m.Serve)
	}
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"serve"`, `"serve_hash"`, `"jain"`, `"goodput_per_sec"`, `"sojourn_p95_ns"`, `"slo_met"`} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("encoded manifest lacks %s", want)
		}
	}
}

// TestServeValidateCatchesCorruption: the schema checker rejects every
// broken serve identity — the admission partition, drain accounting,
// fairness range, and tenant-row sums.
func TestServeValidateCatchesCorruption(t *testing.T) {
	for name, tamper := range map[string]func(*Manifest){
		"global partition": func(m *Manifest) { m.Serve.Admitted++ },
		"overdrain":        func(m *Manifest) { m.Serve.Done = m.Serve.Admitted + 1 },
		"jain range":       func(m *Manifest) { m.Serve.Jain = 1.5 },
		"no tenants":       func(m *Manifest) { m.Serve.Tenants = nil },
		"tenant partition": func(m *Manifest) { m.Serve.Tenants[0].Rejected++ },
		"tenant sums": func(m *Manifest) {
			m.Serve.Tenants[0].Arrived++
			m.Serve.Tenants[0].Admitted++
		},
	} {
		m := serveManifest(t, "serve-corrupt")
		tamper(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s corruption passed validation", name)
		} else if !strings.Contains(err.Error(), "serve") {
			t.Errorf("%s corruption error does not name the serve section: %v", name, err)
		}
	}
}

// TestServeHashFingerprint pins the compatibility contract: the serve
// hash enters the spec (and therefore the fingerprint) only when the
// run serves, so every pre-existing closed-system baseline keeps its
// fingerprint.
func TestServeHashFingerprint(t *testing.T) {
	if h := ServeHash(nil); h != "" {
		t.Fatalf("nil spec hashes to %q", h)
	}
	a := serveSpec()
	b := serveSpec()
	b.Horizon *= 2
	if ServeHash(a) == "" || ServeHash(a) == ServeHash(b) {
		t.Fatal("distinct serving specs must have distinct nonzero hashes")
	}

	closedCfg := testConfig()
	closed := testSpec(closedCfg)
	servingCfg := closedCfg
	servingCfg.Serve = a
	serving := SpecFromConfig("T3", "quick", servingCfg)
	serving.Selector = "Tofu"
	if closed.Fingerprint() == serving.Fingerprint() {
		t.Error("serve spec does not enter the fingerprint")
	}
	m := FromRun("closed-spec", closed, mustRun(t, closedCfg))
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte(`"serve_hash"`)) {
		t.Error("closed-system manifest spells a serve_hash field (breaks old fingerprints)")
	}
}
