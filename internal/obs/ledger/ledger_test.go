package ledger

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"distws/internal/core"
	"distws/internal/fault"
	"distws/internal/obs"
	"distws/internal/sim"
	"distws/internal/topology"
	"distws/internal/uts"
	"distws/internal/victim"
)

// testConfig is a small traced run exercising every manifest section.
func testConfig() core.Config {
	return core.Config{
		Tree:          uts.MustPreset("T3").Params,
		Ranks:         16,
		Placement:     topology.OnePerNode,
		Selector:      victim.NewDistanceSkewed,
		Seed:          11,
		ChunkSize:     4,
		CollectTrace:  true,
		CollectEvents: true,
	}
}

func testSpec(cfg core.Config) Spec {
	s := SpecFromConfig("T3", "quick", cfg)
	s.Selector = "Tofu"
	return s
}

func mustRun(t *testing.T, cfg core.Config) *core.Result {
	t.Helper()
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestManifestDeterministic: the same seed and configuration must
// produce byte-identical manifest files, including section ordering —
// the property the committed baseline ledger depends on.
func TestManifestDeterministic(t *testing.T) {
	cfg := testConfig()
	var encs [2][]byte
	for i := range encs {
		m := FromRun("det-check", testSpec(cfg), mustRun(t, cfg))
		data, err := m.Encode()
		if err != nil {
			t.Fatal(err)
		}
		encs[i] = data
	}
	if !bytes.Equal(encs[0], encs[1]) {
		t.Fatalf("manifest encoding is not deterministic:\n--- first\n%s\n--- second\n%s", encs[0], encs[1])
	}
}

// TestManifestValidates: a manifest built from a real traced run passes
// the schema checker, and its causal sections hold the exact partition
// identities (critical segments sum to the makespan; every rank's blame
// sums to the makespan).
func TestManifestValidates(t *testing.T) {
	cfg := testConfig()
	m := FromRun("validate-check", testSpec(cfg), mustRun(t, cfg))
	if err := m.Validate(); err != nil {
		t.Fatalf("fresh manifest fails validation: %v", err)
	}
	if m.Critical == nil || m.Blame == nil || m.Steals == nil || m.Traffic == nil {
		t.Fatalf("traced run should fill every section: critical=%v blame=%v steals=%v traffic=%v",
			m.Critical != nil, m.Blame != nil, m.Steals != nil, m.Traffic != nil)
	}
	if got, want := m.Critical.TotalNS(), m.Result.MakespanNS; got != want {
		t.Errorf("critical segments sum to %d, want makespan %d", got, want)
	}
	for r, b := range m.Blame.PerRank {
		if b.TotalNS() != m.Result.MakespanNS {
			t.Errorf("rank %d blame sums to %d, want makespan %d", r, b.TotalNS(), m.Result.MakespanNS)
		}
	}
}

// TestValidateCatchesCorruption: the schema checker must reject broken
// identities and fingerprints, not just malformed JSON.
func TestValidateCatchesCorruption(t *testing.T) {
	cfg := testConfig()
	fresh := func() *Manifest { return FromRun("corrupt", testSpec(cfg), mustRun(t, cfg)) }

	m := fresh()
	m.Critical.ComputeNS += 7
	if err := m.Validate(); err == nil {
		t.Error("corrupted critical sum passed validation")
	}

	m = fresh()
	m.Fingerprint = "0000000000000000"
	if err := m.Validate(); err == nil {
		t.Error("corrupted fingerprint passed validation")
	}

	m = fresh()
	m.Blame.PerRank[3].SearchNS += 1
	if err := m.Validate(); err == nil {
		t.Error("corrupted rank blame passed validation")
	}

	m = fresh()
	m.Schema = "distws/run-manifest/v0"
	if err := m.Validate(); err == nil {
		t.Error("wrong schema version passed validation")
	}
}

// TestManifestBuildIsObserverFree: building a manifest must not perturb
// the run it describes — the Result it read stays equal to a fresh run
// of the same configuration, and an exported metrics registry dumps the
// same bytes before and after the build. This is the PR 2 standard that
// keeps TestGoldenFig9 byte-identical with ledger emission enabled.
func TestManifestBuildIsObserverFree(t *testing.T) {
	cfg := testConfig()
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	res := mustRun(t, cfg)

	var before bytes.Buffer
	if err := reg.WritePrometheus(&before); err != nil {
		t.Fatal(err)
	}
	_ = FromRun("observer-check", testSpec(cfg), res)
	var after bytes.Buffer
	if err := reg.WritePrometheus(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Error("building a manifest changed the exported metrics")
	}

	cfg2 := testConfig()
	cfg2.Metrics = nil
	res2 := mustRun(t, cfg2)
	res.Trace, res2.Trace = nil, nil // traces compare elsewhere; DeepEqual on rings is slow
	if !reflect.DeepEqual(res, res2) {
		t.Error("building a manifest perturbed the Result (re-run differs)")
	}
}

// TestGoldenFig9ManifestObserverFree replicates core's golden Fig 9
// configuration (H-TINY, 128 ranks, Tofu, seed 9) and proves that
// emitting a run manifest leaves every output TestGoldenFig9 hashes
// byte-identical: the exported metrics registry and the trace. This is
// the "ledger emission enabled" clause of the PR 2 observer-effect
// standard — the golden test itself cannot import this package (core is
// below us in the import graph), so the assertion lives here.
func TestGoldenFig9ManifestObserverFree(t *testing.T) {
	if testing.Short() {
		t.Skip("128-rank golden run in -short mode")
	}
	cfg := core.Config{
		Tree:          uts.MustPreset("H-TINY").Params,
		Ranks:         128,
		Placement:     topology.OnePerNode,
		Selector:      victim.NewDistanceSkewed,
		Steal:         core.StealOne,
		Seed:          9,
		CollectTrace:  true,
		CollectEvents: true,
		Metrics:       obs.NewRegistry(),
	}
	res := mustRun(t, cfg)

	var metricsBefore, traceBefore bytes.Buffer
	if err := cfg.Metrics.WritePrometheus(&metricsBefore); err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.WriteJSONL(&traceBefore); err != nil {
		t.Fatal(err)
	}

	spec := SpecFromConfig("H-TINY", "", cfg)
	spec.Selector = "Tofu"
	m := FromRun("golden-fig9", spec, res)
	if err := m.Validate(); err != nil {
		t.Fatalf("golden manifest invalid: %v", err)
	}

	var metricsAfter, traceAfter bytes.Buffer
	if err := cfg.Metrics.WritePrometheus(&metricsAfter); err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.WriteJSONL(&traceAfter); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(metricsBefore.Bytes(), metricsAfter.Bytes()) {
		t.Error("manifest emission changed the golden run's exported metrics")
	}
	if !bytes.Equal(traceBefore.Bytes(), traceAfter.Bytes()) {
		t.Error("manifest emission changed the golden run's trace")
	}
}

// TestPlanHash pins the fault-plan commitment: nil and empty plans hash
// to "", identical plans hash identically, and any material change to
// the adversity changes the hash.
func TestPlanHash(t *testing.T) {
	if PlanHash(nil) != "" {
		t.Error("nil plan should hash to empty")
	}
	if PlanHash(&fault.Plan{Seed: 5}) != "" {
		t.Error("empty plan should hash to empty (it injects nothing)")
	}
	p := &fault.Plan{
		Seed:    7,
		Crashes: []fault.Crash{{Rank: 3, At: 1000}},
		Links:   []fault.LinkFault{{From: fault.Wildcard, To: fault.Wildcard, Drop: 0.03}},
	}
	h1 := PlanHash(p)
	h2 := PlanHash(&fault.Plan{
		Seed:    7,
		Crashes: []fault.Crash{{Rank: 3, At: 1000}},
		Links:   []fault.LinkFault{{From: fault.Wildcard, To: fault.Wildcard, Drop: 0.03}},
	})
	if h1 == "" || h1 != h2 {
		t.Errorf("identical plans hash differently: %q vs %q", h1, h2)
	}
	mutated := *p
	mutated.Crashes = []fault.Crash{{Rank: 3, At: 1001}}
	if PlanHash(&mutated) == h1 {
		t.Error("changing the crash time did not change the plan hash")
	}
}

// TestSpecFingerprint: equal specs agree, any field change disagrees.
func TestSpecFingerprint(t *testing.T) {
	a := testSpec(testConfig())
	b := testSpec(testConfig())
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("equal specs produced different fingerprints")
	}
	b.Selector = "Rand"
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different selectors produced the same fingerprint")
	}
}

// TestFileRoundTrip: WriteFile then ReadFile reproduces the manifest
// exactly, and ReadDir finds it under its canonical name.
func TestFileRoundTrip(t *testing.T) {
	cfg := testConfig()
	m := FromRun("round trip A", testSpec(cfg), mustRun(t, cfg))
	dir := t.TempDir()
	path := filepath.Join(dir, m.FileName())
	if m.FileName() != "round-trip-a.manifest.json" {
		t.Errorf("FileName = %q", m.FileName())
	}
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Error("read-back manifest differs from the written one")
	}
	all, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all["round trip A"] == nil {
		t.Errorf("ReadDir = %v, want the one manifest keyed by ID", all)
	}
}

// TestFromTrace: a manifest built from a saved trace alone carries the
// causal sections and the makespan, enough for tracetool -diff.
func TestFromTrace(t *testing.T) {
	cfg := testConfig()
	res := mustRun(t, cfg)
	m := FromTrace("trace-only", Spec{}, res.Trace)
	if m.Spec.Ranks != cfg.Ranks {
		t.Errorf("ranks %d, want %d inferred from the trace", m.Spec.Ranks, cfg.Ranks)
	}
	if m.Result.MakespanNS != int64(res.Makespan) {
		t.Errorf("makespan %d, want %d", m.Result.MakespanNS, int64(res.Makespan))
	}
	if m.Critical == nil || m.Blame == nil {
		t.Error("trace-built manifest is missing causal sections")
	}
	if got, want := m.Critical.TotalNS(), m.Result.MakespanNS; got != want {
		t.Errorf("critical segments sum to %d, want makespan %d", got, want)
	}
	if m.Makespan() != sim.Duration(res.Makespan) {
		t.Errorf("Makespan() = %v, want %v", m.Makespan(), res.Makespan)
	}
}
