package ledger

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FileName returns the canonical on-disk name for a manifest: its ID
// slugified, or the spec fingerprint when the ID is empty.
func (m *Manifest) FileName() string {
	base := slug(m.ID)
	if base == "" {
		base = m.Fingerprint
	}
	return base + ".manifest.json"
}

// WriteFile writes the canonical encoding to path, creating parent
// directories as needed.
func (m *Manifest) WriteFile(path string) error {
	data, err := m.Encode()
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile loads and validates one manifest.
func ReadFile(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// ReadDir loads every *.manifest.json under dir, sorted by file name
// for deterministic iteration, and returns them keyed by ID (file base
// name when the ID is empty).
func ReadDir(dir string) (map[string]*Manifest, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".manifest.json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	out := make(map[string]*Manifest, len(names))
	for _, name := range names {
		m, err := ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		key := m.ID
		if key == "" {
			key = strings.TrimSuffix(name, ".manifest.json")
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("ledger: duplicate manifest id %q in %s", key, dir)
		}
		out[key] = m
	}
	return out, nil
}

// slug builds a filesystem-safe fragment from a run label.
func slug(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case b.Len() > 0 && b.String()[b.Len()-1] != '-':
			b.WriteByte('-')
		}
	}
	return strings.Trim(b.String(), "-")
}
