// Package ledger is the run ledger: every simulation can emit a
// self-describing, deterministic run manifest that captures what was
// run (the full configuration fingerprint, including the fault plan
// hash) and what happened (the canonical Result summary, the causal
// critical-path decomposition, the idle-time blame attribution, steal
// latency percentiles, and the rank×rank traffic matrix).
//
// Manifests are the unit of cross-run observability (DESIGN.md §12):
// internal/obs/diff compares two of them into an attribution report,
// and the scenario-matrix harness (internal/harness) gates CI on a
// committed baseline ledger of them under artifacts/runs/.
//
// Determinism contract: a manifest is a pure function of the run it
// describes. Encode is canonical — struct fields in declaration order,
// no maps in the document, "\n"-terminated MarshalIndent — so the same
// seed and configuration always produce byte-identical manifest files
// (asserted by tests). The optional Generator provenance field is the
// one exception: it describes the producing binary, not the run, and
// every comparison ignores it.
package ledger

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"distws/internal/core"
	"distws/internal/fault"
	"distws/internal/obs"
	"distws/internal/obs/causal"
	"distws/internal/obs/parprof"
	"distws/internal/serve"
	"distws/internal/sim"
	"distws/internal/trace"
)

// Schema identifies the manifest document format; bump on breaking
// changes so obscheck and diff fail loudly on a version skew.
const Schema = "distws/run-manifest/v1"

// TrafficRankLimit caps the rank count for which manifests inline the
// full rank×rank traffic matrix, mirroring tracetool's JSON limit: past
// it the document would be dominated by an O(ranks²) block.
const TrafficRankLimit = 128

// Spec is the configuration fingerprint: every knob that determines
// the run's behaviour, in a form stable enough to hash. Two runs with
// equal Specs are replicas; two runs whose Specs differ in exactly one
// field are a controlled experiment.
type Spec struct {
	// Tree names the UTS preset (or a caller-chosen workload label).
	Tree      string `json:"tree"`
	Ranks     int    `json:"ranks"`
	Placement string `json:"placement"`
	Selector  string `json:"selector"`
	Steal     string `json:"steal"`
	ChunkSize int    `json:"chunk_size"`
	Detector  string `json:"detector,omitempty"`
	Protocol  string `json:"protocol,omitempty"`
	// NodeCostNS is the virtual compute time per node expansion.
	NodeCostNS int64  `json:"node_cost_ns"`
	Seed       uint64 `json:"seed"`
	// Scale labels the harness fidelity (quick|default|full) when the
	// run came from an experiment grid; free-standing runs leave it "".
	Scale string `json:"scale,omitempty"`
	// Shards records the parallel-kernel shard count when > 1 (omitted
	// for sequential runs, so their fingerprints are unchanged).
	Shards int `json:"shards,omitempty"`
	// FaultPlanHash commits to the exact injected adversity; "" for
	// fault-free runs.
	FaultPlanHash string `json:"fault_plan_hash,omitempty"`
	// ServeHash commits to the open-system serving spec (tenants,
	// arrival processes, admission buckets, horizon); "" for
	// closed-system runs, so their fingerprints are unchanged.
	ServeHash string `json:"serve_hash,omitempty"`
}

// Fingerprint returns a short stable digest of the spec, used as the
// identity check when diffing: runs with equal fingerprints differ only
// in code version, never in configuration.
func (s Spec) Fingerprint() string {
	data, err := json.Marshal(s)
	if err != nil {
		// Spec is a flat struct of scalars; Marshal cannot fail.
		panic(fmt.Sprintf("ledger: marshal spec: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// PlanHash returns the stable digest of a fault plan ("" for nil or
// empty plans, which behave identically to no plan at all).
func PlanHash(p *fault.Plan) string {
	if p == nil || p.Empty() {
		return ""
	}
	data, err := json.Marshal(p)
	if err != nil {
		panic(fmt.Sprintf("ledger: marshal fault plan: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// ServeHash returns the stable digest of a serving spec ("" for nil,
// i.e. a closed-system run).
func ServeHash(s *serve.Spec) string {
	if s == nil {
		return ""
	}
	data, err := json.Marshal(s)
	if err != nil {
		panic(fmt.Sprintf("ledger: marshal serve spec: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// ResultSummary is the canonical Result snapshot: every scalar the
// experiment tables print, in virtual nanoseconds where durations are
// involved.
type ResultSummary struct {
	MakespanNS     int64   `json:"makespan_ns"`
	SequentialNS   int64   `json:"sequential_ns"`
	Speedup        float64 `json:"speedup"`
	Efficiency     float64 `json:"efficiency"`
	Nodes          uint64  `json:"nodes"`
	Leaves         uint64  `json:"leaves"`
	MaxDepth       int32   `json:"max_depth"`
	NodesGenerated uint64  `json:"nodes_generated"`

	StealRequests    uint64 `json:"steal_requests"`
	SuccessfulSteals uint64 `json:"successful_steals"`
	FailedSteals     uint64 `json:"failed_steals"`
	AbortedSteals    uint64 `json:"aborted_steals"`
	ChunksMoved      uint64 `json:"chunks_moved"`
	MeanSearchNS     int64  `json:"mean_search_ns"`
	Sessions         uint64 `json:"sessions"`
	MeanSessionNS    int64  `json:"mean_session_ns"`

	MaxRankNodes uint64  `json:"max_rank_nodes"`
	MinRankNodes uint64  `json:"min_rank_nodes"`
	Imbalance    float64 `json:"imbalance"`

	TerminationRounds int  `json:"termination_rounds"`
	Premature         bool `json:"premature,omitempty"`

	MessagesSent    uint64 `json:"messages_sent"`
	MessagesDropped uint64 `json:"messages_dropped,omitempty"`

	MaxMigrationDepth int `json:"max_migration_depth,omitempty"`

	// Fault accounting; all zero for fault-free runs.
	CrashedRanks   uint64 `json:"crashed_ranks,omitempty"`
	LostNodes      uint64 `json:"lost_nodes,omitempty"`
	LostMessages   uint64 `json:"lost_messages,omitempty"`
	TokenRegens    uint64 `json:"token_regens,omitempty"`
	Recoveries     uint64 `json:"recoveries,omitempty"`
	MeanRecoveryNS int64  `json:"mean_recovery_ns,omitempty"`
}

// CriticalSummary is the critical-path decomposition: the five segment
// totals partition the makespan exactly (Validate checks the identity).
type CriticalSummary struct {
	Segments   int   `json:"segments"`
	ComputeNS  int64 `json:"compute_ns"`
	StealRTTNS int64 `json:"steal_rtt_ns"`
	TransferNS int64 `json:"transfer_ns"`
	TokenNS    int64 `json:"token_ns"`
	WaitNS     int64 `json:"wait_ns"`
}

// TotalNS sums the segment kinds; it must equal the makespan.
func (c *CriticalSummary) TotalNS() int64 {
	return c.ComputeNS + c.StealRTTNS + c.TransferNS + c.TokenNS + c.WaitNS
}

// BlameEntry is one rank's idle-time blame partition (or the aggregate
// over all ranks); the five categories sum to the rank's full timeline.
type BlameEntry struct {
	BusyNS     int64 `json:"busy_ns"`
	StartupNS  int64 `json:"startup_ns"`
	SearchNS   int64 `json:"search_ns"`
	InFlightNS int64 `json:"in_flight_ns"`
	TermTailNS int64 `json:"term_tail_ns"`
}

// TotalNS sums the five categories.
func (b BlameEntry) TotalNS() int64 {
	return b.BusyNS + b.StartupNS + b.SearchNS + b.InFlightNS + b.TermTailNS
}

// BlameSummary is the idle-time blame attribution: per rank plus the
// aggregate, whose total is exactly ranks × makespan.
type BlameSummary struct {
	PerRank []BlameEntry `json:"per_rank"`
	Total   BlameEntry   `json:"total"`
}

// ParCause is one serialization cause's row in the parallel-kernel
// profile: how many windows it serialized and how much virtual time
// those windows spanned.
type ParCause struct {
	Cause     string `json:"cause"`
	Windows   uint64 `json:"windows"`
	VirtualNS int64  `json:"virtual_ns"`
}

// ParSummary is the parallel-kernel window profile (internal/obs/
// parprof), present when the run was profiled (core.Config.ParProfile).
// Everything here is virtual-time data: byte-deterministic for a fixed
// (Config, Shards). Identities checked by Validate: the cause rows
// partition the serialized totals, ParallelNS + SerializedNS spans all
// windows, and the traffic matrix sums to Staged.
type ParSummary struct {
	Shards      int   `json:"shards"`
	LookaheadNS int64 `json:"lookahead_ns"`

	Windows    uint64 `json:"windows"`
	Serialized uint64 `json:"serialized"`
	Staged     uint64 `json:"staged"`
	// ParallelNS / SerializedNS split the windowed virtual time
	// (Windows × LookaheadNS) by execution mode.
	ParallelNS   int64 `json:"parallel_ns"`
	SerializedNS int64 `json:"serialized_ns"`

	// Causes lists the serialization causes with nonzero windows, in the
	// engine's decision order.
	Causes []ParCause `json:"causes,omitempty"`

	// Traffic is the shard×shard staged-message matrix (source-major),
	// the shard-level analogue of the manifest's rank traffic matrix.
	// The diagonal is nonzero by design: same-shard sends due beyond
	// the window also route through the barrier merge.
	Traffic [][]uint64 `json:"traffic,omitempty"`
}

// ServeTenantRow is one tenant's serving outcome in the manifest.
type ServeTenantRow struct {
	Name          string  `json:"name"`
	Class         string  `json:"class,omitempty"`
	Arrived       uint64  `json:"arrived"`
	Admitted      uint64  `json:"admitted"`
	Rejected      uint64  `json:"rejected"`
	Done          uint64  `json:"done"`
	SLOMet        uint64  `json:"slo_met"`
	GoodputPerSec float64 `json:"goodput_per_sec"`
	SojournP50NS  int64   `json:"sojourn_p50_ns"`
	SojournP95NS  int64   `json:"sojourn_p95_ns"`
	SojournP99NS  int64   `json:"sojourn_p99_ns"`
}

// ServeSummary is the open-system serving section, present when the
// run had core.Config.Serve set. Identities checked by Validate: the
// admission verdicts partition the arrivals (admitted + rejected ==
// arrived), globally and per tenant, and the tenant rows sum to the
// global counts.
type ServeSummary struct {
	Arrived  uint64 `json:"arrived"`
	Admitted uint64 `json:"admitted"`
	Rejected uint64 `json:"rejected"`
	Done     uint64 `json:"done"`
	// FinishNS is the virtual instant the run ended (== the makespan:
	// serving runs start at virtual zero).
	FinishNS int64 `json:"finish_ns"`
	// Jain is Jain's fairness index over tenant goodput, in (0, 1].
	Jain    float64          `json:"jain"`
	Tenants []ServeTenantRow `json:"tenants"`
}

// StealSummary holds the reconstructed steal-transaction statistics.
type StealSummary struct {
	Count      int   `json:"count"`
	Success    int   `json:"success"`
	Refused    int   `json:"refused"`
	Aborted    int   `json:"aborted"`
	MeanNS     int64 `json:"mean_ns"`
	P50NS      int64 `json:"p50_ns"`
	P95NS      int64 `json:"p95_ns"`
	P99NS      int64 `json:"p99_ns"`
	MaxNS      int64 `json:"max_ns"`
	NodesMoved int64 `json:"nodes_moved"`
}

// Manifest is one run's ledger entry.
type Manifest struct {
	Schema string `json:"schema"`
	// ID labels the run (a matrix cell name, a CLI-chosen tag, or "").
	ID          string `json:"id,omitempty"`
	Spec        Spec   `json:"spec"`
	Fingerprint string `json:"fingerprint"`
	// Generator is optional provenance about the producing binary (VCS
	// revision). It describes the builder, not the run: comparisons and
	// the determinism contract exclude it.
	Generator string           `json:"generator,omitempty"`
	Result    ResultSummary    `json:"result"`
	Critical  *CriticalSummary `json:"critical,omitempty"`
	Blame     *BlameSummary    `json:"blame,omitempty"`
	Steals    *StealSummary    `json:"steals,omitempty"`
	// Traffic is the rank×rank message matrix (sender-major), present
	// when the run recorded events and Ranks <= TrafficRankLimit.
	Traffic [][]uint64 `json:"traffic,omitempty"`
	// Par is the parallel-kernel window profile, present when the run
	// was profiled (core.Config.ParProfile).
	Par *ParSummary `json:"par,omitempty"`
	// Serve is the open-system serving section, present when the run
	// had core.Config.Serve set.
	Serve *ServeSummary `json:"serve,omitempty"`
}

// FromRun builds the manifest for one completed run. The build only
// reads res — it never mutates the Result, its trace, or any registry,
// so emitting a manifest is observer-effect-free (asserted by tests
// against the golden Fig 9 run). The causal analyses are included when
// the run collected the protocol event log.
func FromRun(id string, spec Spec, res *core.Result) *Manifest {
	m := &Manifest{
		Schema:      Schema,
		ID:          id,
		Spec:        spec,
		Fingerprint: spec.Fingerprint(),
		Result: ResultSummary{
			MakespanNS:     int64(res.Makespan),
			SequentialNS:   int64(res.SequentialTime),
			Speedup:        res.Speedup,
			Efficiency:     res.Efficiency,
			Nodes:          res.Nodes,
			Leaves:         res.Leaves,
			MaxDepth:       res.MaxDepth,
			NodesGenerated: res.NodesGenerated,

			StealRequests:    res.StealRequests,
			SuccessfulSteals: res.SuccessfulSteals,
			FailedSteals:     res.FailedSteals,
			AbortedSteals:    res.AbortedSteals,
			ChunksMoved:      res.ChunksTransferred,
			MeanSearchNS:     int64(res.MeanSearchTime),
			Sessions:         res.Sessions,
			MeanSessionNS:    int64(res.MeanSessionDuration),

			MaxRankNodes: res.MaxRankNodes,
			MinRankNodes: res.MinRankNodes,
			Imbalance:    res.Imbalance,

			TerminationRounds: res.TerminationRounds,
			Premature:         res.Premature,

			MessagesSent:    res.Comm.TotalSent(),
			MessagesDropped: res.Comm.TotalDropped(),

			MaxMigrationDepth: res.MaxMigrationDepth,

			CrashedRanks:   uint64(res.CrashedRanks),
			LostNodes:      res.LostNodes,
			LostMessages:   res.LostMessages,
			TokenRegens:    res.TokenRegens,
			Recoveries:     res.Recoveries,
			MeanRecoveryNS: int64(res.MeanRecoveryLatency),
		},
	}
	if res.Trace != nil {
		attachTrace(m, res.Trace)
	}
	if res.Par != nil {
		m.Par = parSummary(res.Par)
	}
	if res.Serve != nil {
		m.Serve = serveSummary(res.Serve)
	}
	return m
}

// serveSummary converts the engine's serving stats into the manifest
// section.
func serveSummary(st *serve.Stats) *ServeSummary {
	s := &ServeSummary{
		Arrived:  st.Arrived,
		Admitted: st.Admitted,
		Rejected: st.Rejected,
		Done:     st.Done,
		FinishNS: int64(st.Finish),
		Jain:     st.Jain,
	}
	for _, ts := range st.Tenants {
		s.Tenants = append(s.Tenants, ServeTenantRow{
			Name:          ts.Name,
			Class:         ts.Class,
			Arrived:       ts.Arrived,
			Admitted:      ts.Admitted,
			Rejected:      ts.Rejected,
			Done:          ts.Done,
			SLOMet:        ts.SLOMet,
			GoodputPerSec: ts.GoodputPerSec,
			SojournP50NS:  int64(ts.SojournP50),
			SojournP95NS:  int64(ts.SojournP95),
			SojournP99NS:  int64(ts.SojournP99),
		})
	}
	return s
}

// parSummary converts a window ledger into the manifest section.
func parSummary(l *parprof.Ledger) *ParSummary {
	t := l.Totals()
	p := &ParSummary{
		Shards:       l.Shards(),
		LookaheadNS:  int64(l.Lookahead()),
		Windows:      t.Windows,
		Serialized:   t.Serialized,
		Staged:       t.Staged,
		ParallelNS:   int64(t.Parallel),
		SerializedNS: int64(t.SerializedTime),
	}
	for c := parprof.CauseNone + 1; c < parprof.NumCauses; c++ {
		ct := t.ByCause[c]
		if ct.Windows == 0 {
			continue
		}
		p.Causes = append(p.Causes, ParCause{
			Cause: c.String(), Windows: ct.Windows, VirtualNS: int64(ct.Virtual),
		})
	}
	if t.Staged > 0 {
		p.Traffic = l.Traffic()
	}
	return p
}

// FromTrace builds a partial manifest from a saved trace alone: the
// causal analyses and the makespan are available, the engine-side
// Result scalars are not. tracetool -diff uses this so two raw .jsonl
// traces can be compared without their original Results.
func FromTrace(id string, spec Spec, tr *trace.Trace) *Manifest {
	if spec.Ranks == 0 {
		spec.Ranks = tr.Ranks()
	}
	m := &Manifest{
		Schema:      Schema,
		ID:          id,
		Spec:        spec,
		Fingerprint: spec.Fingerprint(),
		Result:      ResultSummary{MakespanNS: int64(tr.End)},
	}
	attachTrace(m, tr)
	return m
}

// attachTrace fills the causal sections from an activity trace.
func attachTrace(m *Manifest, tr *trace.Trace) {
	if tr.Ranks() == 0 {
		return
	}
	b := causal.AttributeIdle(tr)
	bs := &BlameSummary{Total: blameEntry(b.Total)}
	for _, rb := range b.PerRank {
		bs.PerRank = append(bs.PerRank, blameEntry(rb))
	}
	m.Blame = bs
	if tr.Events == nil {
		return
	}
	p := causal.CriticalPath(causal.Build(tr))
	m.Critical = &CriticalSummary{
		Segments:   len(p.Segments),
		ComputeNS:  int64(p.ByKind[causal.SegCompute]),
		StealRTTNS: int64(p.ByKind[causal.SegStealRTT]),
		TransferNS: int64(p.ByKind[causal.SegTransfer]),
		TokenNS:    int64(p.ByKind[causal.SegToken]),
		WaitNS:     int64(p.ByKind[causal.SegWait]),
	}
	if pairs := obs.PairSteals(tr); len(pairs) > 0 {
		st := obs.StealLatency(pairs)
		m.Steals = &StealSummary{
			Count: st.Count, Success: st.Success, Refused: st.Refused, Aborted: st.Aborted,
			MeanNS: int64(st.Mean), P50NS: int64(st.P50), P95NS: int64(st.P95),
			P99NS: int64(st.P99), MaxNS: int64(st.Max), NodesMoved: st.NodesMoved,
		}
	}
	if tr.Ranks() <= TrafficRankLimit {
		m.Traffic = obs.Traffic(tr)
	}
}

func blameEntry(b causal.RankBlame) BlameEntry {
	return BlameEntry{
		BusyNS: int64(b.Busy), StartupNS: int64(b.Startup), SearchNS: int64(b.Search),
		InFlightNS: int64(b.InFlight), TermTailNS: int64(b.TermTail),
	}
}

// SpecFromConfig derives the fingerprint spec from a core.Config plus
// the workload label the caller ran (presets are named outside core).
// The scale label is optional harness context.
func SpecFromConfig(tree, scale string, cfg core.Config) Spec {
	chunk := cfg.ChunkSize
	if chunk == 0 {
		chunk = 20 // workstack.DefaultChunkSize, without the import cycle risk
	}
	nodeCost := cfg.NodeCost
	if nodeCost == 0 {
		nodeCost = core.DefaultNodeCost
	}
	s := Spec{
		Tree:          tree,
		Ranks:         cfg.Ranks,
		Placement:     cfg.Placement.String(),
		Steal:         cfg.Steal.String(),
		ChunkSize:     chunk,
		NodeCostNS:    int64(nodeCost),
		Seed:          cfg.Seed,
		Scale:         scale,
		FaultPlanHash: PlanHash(cfg.Faults),
		ServeHash:     ServeHash(cfg.Serve),
	}
	if cfg.Shards > 1 {
		s.Shards = cfg.Shards
	}
	if cfg.Protocol != core.TwoSided {
		s.Protocol = cfg.Protocol.String()
	}
	return s
}

// Encode renders the manifest canonically: two-space MarshalIndent over
// fixed-order struct fields, terminated by a newline. Byte-stable for a
// given manifest value.
func (m *Manifest) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("ledger: encode manifest: %w", err)
	}
	return append(data, '\n'), nil
}

// Decode parses a manifest document, rejecting unknown fields so a
// schema skew fails loudly.
func Decode(data []byte) (*Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("ledger: decode manifest: %w", err)
	}
	return &m, nil
}

// Validate is the schema checker cmd/obscheck runs on every manifest:
// structural requirements plus the causal identities that make diffs
// trustworthy — blame partitions each rank's exact timeline, and the
// critical-path segments partition the makespan.
func (m *Manifest) Validate() error {
	if m.Schema != Schema {
		return fmt.Errorf("ledger: schema %q, want %q", m.Schema, Schema)
	}
	if m.Spec.Ranks < 1 {
		return fmt.Errorf("ledger: spec has %d ranks", m.Spec.Ranks)
	}
	if m.Fingerprint != m.Spec.Fingerprint() {
		return fmt.Errorf("ledger: fingerprint %q does not match spec (want %q)",
			m.Fingerprint, m.Spec.Fingerprint())
	}
	if m.Result.MakespanNS < 0 {
		return fmt.Errorf("ledger: negative makespan %d", m.Result.MakespanNS)
	}
	if m.Critical != nil {
		if got, want := m.Critical.TotalNS(), m.Result.MakespanNS; got != want {
			return fmt.Errorf("ledger: critical-path segments sum to %d ns, want makespan %d ns", got, want)
		}
	}
	if m.Blame != nil {
		if len(m.Blame.PerRank) != m.Spec.Ranks {
			return fmt.Errorf("ledger: blame covers %d ranks, spec has %d",
				len(m.Blame.PerRank), m.Spec.Ranks)
		}
		var sum BlameEntry
		for r, b := range m.Blame.PerRank {
			if b.TotalNS() != m.Result.MakespanNS {
				return fmt.Errorf("ledger: rank %d blame sums to %d ns, want makespan %d ns",
					r, b.TotalNS(), m.Result.MakespanNS)
			}
			sum.BusyNS += b.BusyNS
			sum.StartupNS += b.StartupNS
			sum.SearchNS += b.SearchNS
			sum.InFlightNS += b.InFlightNS
			sum.TermTailNS += b.TermTailNS
		}
		if sum != m.Blame.Total {
			return fmt.Errorf("ledger: blame total %+v does not equal per-rank sum %+v", m.Blame.Total, sum)
		}
	}
	if m.Traffic != nil {
		if len(m.Traffic) != m.Spec.Ranks {
			return fmt.Errorf("ledger: traffic matrix has %d rows for %d ranks",
				len(m.Traffic), m.Spec.Ranks)
		}
		for i, row := range m.Traffic {
			if len(row) != m.Spec.Ranks {
				return fmt.Errorf("ledger: traffic row %d has %d columns for %d ranks",
					i, len(row), m.Spec.Ranks)
			}
		}
	}
	if m.Par != nil {
		if err := m.Par.validate(); err != nil {
			return err
		}
	}
	if m.Serve != nil {
		if err := m.Serve.validate(); err != nil {
			return err
		}
	}
	return nil
}

// validate checks the serving section's admission partition identities.
func (s *ServeSummary) validate() error {
	if s.Admitted+s.Rejected != s.Arrived {
		return fmt.Errorf("ledger: serve admitted %d + rejected %d != arrived %d",
			s.Admitted, s.Rejected, s.Arrived)
	}
	if s.Done > s.Admitted {
		return fmt.Errorf("ledger: serve completed %d of %d admitted jobs", s.Done, s.Admitted)
	}
	if s.Jain < 0 || s.Jain > 1 {
		return fmt.Errorf("ledger: serve Jain index %v out of [0, 1]", s.Jain)
	}
	if len(s.Tenants) == 0 {
		return fmt.Errorf("ledger: serve section has no tenant rows")
	}
	var sum ServeTenantRow
	for _, t := range s.Tenants {
		if t.Admitted+t.Rejected != t.Arrived {
			return fmt.Errorf("ledger: serve tenant %q admitted %d + rejected %d != arrived %d",
				t.Name, t.Admitted, t.Rejected, t.Arrived)
		}
		sum.Arrived += t.Arrived
		sum.Admitted += t.Admitted
		sum.Rejected += t.Rejected
		sum.Done += t.Done
	}
	if sum.Arrived != s.Arrived || sum.Admitted != s.Admitted ||
		sum.Rejected != s.Rejected || sum.Done != s.Done {
		return fmt.Errorf("ledger: serve tenant rows sum to %d/%d/%d/%d (arrived/admitted/rejected/done), global says %d/%d/%d/%d",
			sum.Arrived, sum.Admitted, sum.Rejected, sum.Done,
			s.Arrived, s.Admitted, s.Rejected, s.Done)
	}
	return nil
}

// validate checks the parallel-kernel profile's internal identities.
func (p *ParSummary) validate() error {
	if p.Shards < 1 {
		return fmt.Errorf("ledger: par section has %d shards", p.Shards)
	}
	if p.LookaheadNS < 0 {
		return fmt.Errorf("ledger: par section has negative lookahead %d", p.LookaheadNS)
	}
	if p.Serialized > p.Windows {
		return fmt.Errorf("ledger: par section has %d serialized of %d windows",
			p.Serialized, p.Windows)
	}
	if p.LookaheadNS > 0 {
		if got, want := p.ParallelNS+p.SerializedNS, int64(p.Windows)*p.LookaheadNS; got != want {
			return fmt.Errorf("ledger: par window time sums to %d ns, want windows x lookahead = %d ns",
				got, want)
		}
	}
	var causeWindows uint64
	var causeNS int64
	for _, c := range p.Causes {
		if c.Cause == "" || c.Windows == 0 {
			return fmt.Errorf("ledger: par cause row %+v is empty", c)
		}
		causeWindows += c.Windows
		causeNS += c.VirtualNS
	}
	if causeWindows != p.Serialized {
		return fmt.Errorf("ledger: par cause windows sum to %d, want serialized total %d",
			causeWindows, p.Serialized)
	}
	if causeNS != p.SerializedNS {
		return fmt.Errorf("ledger: par cause time sums to %d ns, want serialized total %d ns",
			causeNS, p.SerializedNS)
	}
	if p.Traffic != nil {
		if len(p.Traffic) != p.Shards {
			return fmt.Errorf("ledger: par traffic matrix has %d rows for %d shards",
				len(p.Traffic), p.Shards)
		}
		var sum uint64
		for i, row := range p.Traffic {
			if len(row) != p.Shards {
				return fmt.Errorf("ledger: par traffic row %d has %d columns for %d shards",
					i, len(row), p.Shards)
			}
			for _, n := range row {
				sum += n
			}
		}
		if sum != p.Staged {
			return fmt.Errorf("ledger: par traffic matrix sums to %d, want staged total %d",
				sum, p.Staged)
		}
	}
	return nil
}

// Makespan returns the manifest's makespan as a virtual duration.
func (m *Manifest) Makespan() sim.Duration { return sim.Duration(m.Result.MakespanNS) }
