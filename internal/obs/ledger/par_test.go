package ledger

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"distws/internal/core"
)

// parConfig is testConfig sharded and profiled: the smallest run whose
// manifest carries a full par section (windows, causes, traffic).
func parConfig() core.Config {
	cfg := testConfig()
	cfg.Shards = 4
	cfg.ParProfile = true
	return cfg
}

// parManifest builds a validated manifest from one profiled sharded
// run.
func parManifest(t *testing.T, id string) *Manifest {
	t.Helper()
	cfg := parConfig()
	m := FromRun(id, testSpec(cfg), mustRun(t, cfg))
	if err := m.Validate(); err != nil {
		t.Fatalf("profiled manifest invalid: %v", err)
	}
	return m
}

// TestParSectionFromRun: a profiled sharded run fills the par section
// with the ledger's aggregates — nonzero windows and staged traffic, a
// square shard matrix, and cause rows that partition the serialized
// totals.
func TestParSectionFromRun(t *testing.T) {
	m := parManifest(t, "par-section")
	p := m.Par
	if p == nil {
		t.Fatal("profiled run produced no par section")
	}
	if p.Shards != 4 || p.LookaheadNS <= 0 {
		t.Fatalf("par shape: %d shards, lookahead %d ns", p.Shards, p.LookaheadNS)
	}
	if p.Windows == 0 || p.Staged == 0 {
		t.Fatalf("par section is empty: %+v", p)
	}
	if m.Spec.Shards != 4 {
		t.Fatalf("spec shards = %d, want 4", m.Spec.Shards)
	}
	var causeWindows uint64
	var causeNS int64
	for _, c := range p.Causes {
		if c.Windows == 0 {
			t.Errorf("cause row %q has zero windows", c.Cause)
		}
		causeWindows += c.Windows
		causeNS += c.VirtualNS
	}
	if causeWindows != p.Serialized || causeNS != p.SerializedNS {
		t.Errorf("cause rows sum to %d windows / %d ns, want %d / %d",
			causeWindows, causeNS, p.Serialized, p.SerializedNS)
	}

	// An unprofiled run of the same sharded configuration has no par
	// section; a profiled sequential run gets the degenerate one.
	cfg := parConfig()
	cfg.ParProfile = false
	if m := FromRun("off", testSpec(cfg), mustRun(t, cfg)); m.Par != nil {
		t.Error("unprofiled run produced a par section")
	}
	cfg = testConfig()
	cfg.ParProfile = true
	seq := FromRun("seq", testSpec(cfg), mustRun(t, cfg))
	if err := seq.Validate(); err != nil {
		t.Fatalf("sequential profiled manifest invalid: %v", err)
	}
	if seq.Par == nil || seq.Par.Shards != 1 || seq.Par.Windows != 0 {
		t.Fatalf("sequential par section = %+v", seq.Par)
	}
}

// TestParSectionRoundTrip: the par section survives the file round
// trip exactly, and its JSON spells the documented field names.
func TestParSectionRoundTrip(t *testing.T) {
	m := parManifest(t, "par-roundtrip")
	path := filepath.Join(t.TempDir(), m.FileName())
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Par, m.Par) {
		t.Fatalf("par section changed across the round trip:\n%+v\nvs\n%+v", back.Par, m.Par)
	}
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"par"`, `"shards"`, `"lookahead_ns"`, `"serialized"`, `"causes"`, `"traffic"`} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("encoded manifest lacks %s", want)
		}
	}
}

// TestParValidateCatchesCorruption: the schema checker rejects every
// broken par identity — shard shape, window accounting, cause
// partition, traffic sums.
func TestParValidateCatchesCorruption(t *testing.T) {
	for name, tamper := range map[string]func(*Manifest){
		"shards":        func(m *Manifest) { m.Par.Shards = 0 },
		"lookahead":     func(m *Manifest) { m.Par.LookaheadNS = -1 },
		"serialized":    func(m *Manifest) { m.Par.Serialized = m.Par.Windows + 1 },
		"time split":    func(m *Manifest) { m.Par.ParallelNS += 7 },
		"cause windows": func(m *Manifest) { m.Par.Causes[0].Windows++ },
		"cause time":    func(m *Manifest) { m.Par.Causes[0].VirtualNS += 7 },
		"empty cause row": func(m *Manifest) {
			m.Par.Serialized -= m.Par.Causes[0].Windows
			m.Par.SerializedNS -= m.Par.Causes[0].VirtualNS
			m.Par.ParallelNS += m.Par.Causes[0].VirtualNS
			m.Par.Causes[0].Windows = 0
			m.Par.Causes[0].VirtualNS = 0
		},
		"traffic rows": func(m *Manifest) { m.Par.Traffic = m.Par.Traffic[:1] },
		"traffic sum":  func(m *Manifest) { m.Par.Traffic[0][1]++ },
	} {
		m := parManifest(t, "par-corrupt")
		tamper(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s corruption passed validation", name)
		} else if !strings.Contains(err.Error(), "par") {
			t.Errorf("%s corruption error does not name the par section: %v", name, err)
		}
	}
}

// TestSpecShardsFingerprint pins the compatibility contract: shards
// enter the spec (and therefore the fingerprint) only when > 1, so
// every pre-existing sequential baseline keeps its fingerprint.
func TestSpecShardsFingerprint(t *testing.T) {
	seqCfg := testConfig()
	seq := testSpec(seqCfg)
	if seq.Shards != 0 {
		t.Fatalf("sequential spec records shards %d", seq.Shards)
	}
	shardedCfg := parConfig()
	sharded := testSpec(shardedCfg)
	if sharded.Shards != 4 {
		t.Fatalf("sharded spec records shards %d, want 4", sharded.Shards)
	}
	if seq.Fingerprint() == sharded.Fingerprint() {
		t.Error("shard count does not enter the fingerprint")
	}
	m := FromRun("seq-spec", seq, mustRun(t, seqCfg))
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte(`"shards"`)) {
		t.Error("sequential manifest spells a shards field (breaks old fingerprints)")
	}
}
