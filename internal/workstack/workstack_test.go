package workstack

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"distws/internal/uts"
)

// node returns a distinguishable test node.
func node(id uint32) uts.Node {
	var n uts.Node
	binary.BigEndian.PutUint32(n.State[:4], id)
	n.Height = int32(id % 7)
	return n
}

func TestNewPanicsOnBadChunkSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for chunk size 0")
		}
	}()
	New(0)
}

func TestLIFO(t *testing.T) {
	s := New(3)
	for i := uint32(0); i < 10; i++ {
		s.Push(node(i))
	}
	for i := int32(9); i >= 0; i-- {
		n, ok := s.Pop()
		if !ok {
			t.Fatalf("Pop failed at %d", i)
		}
		if got := binary.BigEndian.Uint32(n.State[:4]); got != uint32(i) {
			t.Fatalf("popped %d, want %d", got, i)
		}
	}
	if _, ok := s.Pop(); ok {
		t.Fatal("Pop on empty stack succeeded")
	}
	if !s.Empty() {
		t.Fatal("stack not empty")
	}
}

func TestLenAndChunks(t *testing.T) {
	s := New(4)
	if s.Len() != 0 || s.Chunks() != 0 || !s.Empty() {
		t.Fatal("fresh stack not empty")
	}
	for i := uint32(0); i < 9; i++ {
		s.Push(node(i))
	}
	if s.Len() != 9 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Chunks() != 3 { // 4 + 4 + 1
		t.Fatalf("Chunks = %d", s.Chunks())
	}
	s.Pop()
	if s.Len() != 8 || s.Chunks() != 2 {
		t.Fatalf("after pop: len %d chunks %d", s.Len(), s.Chunks())
	}
}

func TestPrivateChunkRule(t *testing.T) {
	s := New(5)
	// A single incomplete chunk: nothing stealable (paper §II-A).
	for i := uint32(0); i < 4; i++ {
		s.Push(node(i))
	}
	if s.StealableChunks() != 0 {
		t.Fatal("incomplete private chunk marked stealable")
	}
	if got, k := s.StealOne(); got != nil || k != 0 {
		t.Fatal("stole from private chunk")
	}
	// Exactly one full chunk: still private (it is the top).
	s.Push(node(4))
	if s.StealableChunks() != 0 {
		t.Fatal("single full chunk stealable")
	}
	// Second chunk opens: the bottom full chunk becomes stealable.
	s.Push(node(5))
	if s.StealableChunks() != 1 {
		t.Fatalf("StealableChunks = %d, want 1", s.StealableChunks())
	}
}

func TestStealOneTakesOldest(t *testing.T) {
	s := New(3)
	for i := uint32(0); i < 10; i++ {
		s.Push(node(i))
	}
	// Chunks: [0 1 2][3 4 5][6 7 8][9] — bottom chunk is 0,1,2.
	got, k := s.StealOne()
	if k != 1 || len(got) != 3 {
		t.Fatalf("stole %d chunks, %d nodes", k, len(got))
	}
	for i, n := range got {
		if id := binary.BigEndian.Uint32(n.State[:4]); id != uint32(i) {
			t.Fatalf("stolen node %d has id %d", i, id)
		}
	}
	if s.Len() != 7 {
		t.Fatalf("victim kept %d nodes, want 7", s.Len())
	}
	// Owner's pop order unaffected for remaining nodes.
	n, _ := s.Pop()
	if id := binary.BigEndian.Uint32(n.State[:4]); id != 9 {
		t.Fatalf("owner popped %d, want 9", id)
	}
}

func TestStealHalfRoundsUp(t *testing.T) {
	cases := []struct {
		chunks     int // full chunks to create (plus a partial top)
		wantStolen int
	}{
		{1, 1}, // stealable 1 -> take 1
		{2, 1},
		{3, 2},
		{4, 2},
		{5, 3},
		{7, 4},
	}
	for _, c := range cases {
		s := New(2)
		// c.chunks full chunks plus one extra node as private top.
		for i := uint32(0); i < uint32(c.chunks*2+1); i++ {
			s.Push(node(i))
		}
		if s.StealableChunks() != c.chunks {
			t.Fatalf("setup: stealable = %d, want %d", s.StealableChunks(), c.chunks)
		}
		_, k := s.StealHalf()
		if k != c.wantStolen {
			t.Fatalf("%d stealable: StealHalf took %d, want %d", c.chunks, k, c.wantStolen)
		}
	}
}

func TestStealMoreThanAvailable(t *testing.T) {
	s := New(2)
	for i := uint32(0); i < 7; i++ { // 3 full chunks + top
		s.Push(node(i))
	}
	got, k := s.Steal(100)
	if k != 3 || len(got) != 6 {
		t.Fatalf("Steal(100) took %d chunks, %d nodes", k, len(got))
	}
	if s.Len() != 1 {
		t.Fatalf("victim kept %d nodes", s.Len())
	}
}

func TestAcquire(t *testing.T) {
	victim := New(3)
	for i := uint32(0); i < 9; i++ {
		victim.Push(node(i))
	}
	thief := New(3)
	loot, k := victim.StealOne()
	thief.Acquire(loot)
	if k != 1 || thief.Len() != 3 {
		t.Fatalf("thief has %d nodes after acquiring %d chunks", thief.Len(), k)
	}
	// Thief pops the newest of the stolen nodes first.
	n, _ := thief.Pop()
	if id := binary.BigEndian.Uint32(n.State[:4]); id != 2 {
		t.Fatalf("thief popped %d, want 2", id)
	}
	st := thief.Stats()
	if st.ChunksAcquired != 1 {
		t.Fatalf("ChunksAcquired = %d", st.ChunksAcquired)
	}
	if victim.Stats().ChunksReleased != 1 {
		t.Fatalf("ChunksReleased = %d", victim.Stats().ChunksReleased)
	}
}

func TestStats(t *testing.T) {
	s := New(2)
	for i := uint32(0); i < 5; i++ {
		s.Push(node(i))
	}
	s.Pop()
	s.Pop()
	st := s.Stats()
	if st.Pushes != 5 || st.Pops != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.MaxNodesResident != 5 {
		t.Fatalf("MaxNodesResident = %d", st.MaxNodesResident)
	}
}

func TestChunkRecycling(t *testing.T) {
	// Push/pop churn should reuse chunk buffers, not grow the free list
	// unboundedly.
	s := New(8)
	for round := 0; round < 100; round++ {
		for i := uint32(0); i < 64; i++ {
			s.Push(node(i))
		}
		for i := 0; i < 64; i++ {
			s.Pop()
		}
	}
	if len(s.free) > 32 {
		t.Fatalf("free list grew to %d", len(s.free))
	}
	if !s.Empty() {
		t.Fatal("stack not empty after churn")
	}
}

// Property: for any sequence of pushes, a full steal+acquire round trip
// preserves the multiset of nodes and total count.
func TestPropertyStealPreservesNodes(t *testing.T) {
	f := func(ids []uint32, chunkSize uint8, half bool) bool {
		cs := int(chunkSize%16) + 1
		victim := New(cs)
		want := map[[20]byte]int{}
		for _, id := range ids {
			n := node(id)
			victim.Push(n)
			want[n.State]++
		}
		thief := New(cs)
		var loot []uts.Node
		if half {
			loot, _ = victim.StealHalf()
		} else {
			loot, _ = victim.StealOne()
		}
		thief.Acquire(loot)

		got := map[[20]byte]int{}
		total := 0
		for _, s := range []*Stack{victim, thief} {
			for {
				n, ok := s.Pop()
				if !ok {
					break
				}
				got[n.State]++
				total++
			}
		}
		if total != len(ids) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: StealableChunks == max(0, Chunks-1) and steals never touch
// the top chunk's nodes.
func TestPropertyStealableCount(t *testing.T) {
	f := func(n uint16, chunkSize uint8) bool {
		cs := int(chunkSize%16) + 1
		s := New(cs)
		for i := uint32(0); i < uint32(n); i++ {
			s.Push(node(i))
		}
		want := s.Chunks() - 1
		if want < 0 {
			want = 0
		}
		return s.StealableChunks() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	s := New(DefaultChunkSize)
	n := node(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Push(n)
		s.Push(n)
		s.Pop()
		s.Pop()
	}
}

func BenchmarkStealHalf(b *testing.B) {
	s := New(DefaultChunkSize)
	n := node(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 200; j++ {
			s.Push(n)
		}
		for {
			loot, k := s.StealHalf()
			if k == 0 {
				break
			}
			_ = loot
		}
		for !s.Empty() {
			s.Pop()
		}
	}
}

func TestTakeTopBypassesPrivateRule(t *testing.T) {
	s := New(3)
	if _, ok := s.TakeTop(); ok {
		t.Fatal("TakeTop on empty stack succeeded")
	}
	for i := uint32(0); i < 3; i++ { // exactly one full chunk
		s.Push(node(i))
	}
	if s.StealableChunks() != 0 {
		t.Fatal("setup: single chunk should be private")
	}
	got, ok := s.TakeTop()
	if !ok || len(got) != 3 {
		t.Fatalf("TakeTop = %v, %v", got, ok)
	}
	if !s.Empty() {
		t.Fatal("stack not empty after TakeTop")
	}
	// Partial top chunk comes back whole too.
	s.Push(node(9))
	got, ok = s.TakeTop()
	if !ok || len(got) != 1 || binary.BigEndian.Uint32(got[0].State[:4]) != 9 {
		t.Fatalf("partial TakeTop = %v, %v", got, ok)
	}
}

func TestTakeTopReturnsNewestChunk(t *testing.T) {
	s := New(2)
	for i := uint32(0); i < 6; i++ {
		s.Push(node(i))
	}
	got, ok := s.TakeTop()
	if !ok || len(got) != 2 {
		t.Fatalf("TakeTop = %v, %v", got, ok)
	}
	if binary.BigEndian.Uint32(got[1].State[:4]) != 5 {
		t.Fatalf("TakeTop returned %v, want the newest chunk", got)
	}
	if s.Len() != 4 {
		t.Fatalf("remaining %d nodes", s.Len())
	}
}

func TestDrop(t *testing.T) {
	s := New(2)
	for i := uint32(0); i < 7; i++ {
		s.Push(node(i))
	}
	if lost := s.Drop(); lost != 7 {
		t.Fatalf("Drop = %d, want 7", lost)
	}
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("stack not empty after Drop")
	}
	if lost := s.Drop(); lost != 0 {
		t.Fatalf("Drop on empty stack = %d", lost)
	}
	// The stack stays usable and reuses the recycled buffers.
	s.Push(node(9))
	if got, ok := s.Pop(); !ok || binary.BigEndian.Uint32(got.State[:4]) != 9 {
		t.Fatalf("Pop after Drop = %v, %v", got, ok)
	}
}
