// Package workstack implements the chunked work stack of the reference
// UTS work-stealing implementation.
//
// Work items (tree nodes) are managed in fixed-size chunks (default 20
// nodes, the UTS default the paper keeps): memory is allocated per
// chunk rather than per node, and the chunk is also the steal
// granularity. The top chunk — the one the owner is pushing to and
// popping from — is always private: a stack holding a single
// (possibly incomplete) chunk has nothing to steal. Thieves take whole
// chunks from the bottom of the stack, which holds the oldest, usually
// shallowest nodes, whose subtrees tend to be the largest.
//
// The stack is single-owner: in the discrete-event simulation each rank
// manipulates its own stack only (steals happen via messages, with the
// victim packaging chunks itself, as in the paper's two-sided MPI
// implementation). The concurrent shared-memory variant lives in
// package rt.
package workstack

import (
	"fmt"

	"distws/internal/uts"
)

// DefaultChunkSize is the UTS default of 20 nodes per chunk; the paper
// keeps this value throughout ("the authors of UTS have previously
// stated that this size provides good performance").
const DefaultChunkSize = 20

// Stack is a chunked LIFO work stack.
type Stack struct {
	chunkSize int
	// chunks[0] is the bottom (steal end); chunks[len-1] is the top
	// (work end). Every chunk except the top one is full.
	chunks [][]uts.Node
	// free is a small recycling pool of chunk buffers.
	free [][]uts.Node

	// Counters for UTS-style statistics.
	pushes, pops uint64
	released     uint64 // chunks handed to thieves
	acquired     uint64 // chunks received from victims
	maxNodes     int
}

// New returns an empty stack with the given chunk size (nodes per
// chunk). It panics if chunkSize < 1.
func New(chunkSize int) *Stack {
	if chunkSize < 1 {
		panic(fmt.Sprintf("workstack: chunk size %d < 1", chunkSize))
	}
	return &Stack{chunkSize: chunkSize}
}

// ChunkSize returns the configured nodes-per-chunk.
func (s *Stack) ChunkSize() int { return s.chunkSize }

// Len returns the total number of nodes on the stack.
func (s *Stack) Len() int {
	if len(s.chunks) == 0 {
		return 0
	}
	return (len(s.chunks)-1)*s.chunkSize + len(s.chunks[len(s.chunks)-1])
}

// Empty reports whether the stack holds no nodes.
func (s *Stack) Empty() bool { return len(s.chunks) == 0 }

// Chunks returns the number of chunks on the stack, counting a partial
// top chunk.
func (s *Stack) Chunks() int { return len(s.chunks) }

// newChunk returns an empty chunk buffer, recycling freed ones.
func (s *Stack) newChunk() []uts.Node {
	if n := len(s.free); n > 0 {
		c := s.free[n-1]
		s.free = s.free[:n-1]
		return c[:0]
	}
	return make([]uts.Node, 0, s.chunkSize)
}

func (s *Stack) recycle(c []uts.Node) {
	if len(s.free) < 32 {
		s.free = append(s.free, c[:0])
	}
}

// Push adds a node to the top of the stack.
func (s *Stack) Push(n uts.Node) {
	top := len(s.chunks) - 1
	if top < 0 || len(s.chunks[top]) == s.chunkSize {
		s.chunks = append(s.chunks, s.newChunk())
		top++
	}
	s.chunks[top] = append(s.chunks[top], n)
	s.pushes++
	if l := s.Len(); l > s.maxNodes {
		s.maxNodes = l
	}
}

// Pop removes and returns the most recently pushed node.
func (s *Stack) Pop() (uts.Node, bool) {
	top := len(s.chunks) - 1
	if top < 0 {
		return uts.Node{}, false
	}
	c := s.chunks[top]
	n := c[len(c)-1]
	c = c[:len(c)-1]
	if len(c) == 0 {
		s.recycle(s.chunks[top])
		s.chunks[top] = nil
		s.chunks = s.chunks[:top]
	} else {
		s.chunks[top] = c
	}
	s.pops++
	return n, true
}

// StealableChunks returns how many chunks a thief could take right now:
// all full chunks below the private top chunk.
func (s *Stack) StealableChunks() int {
	if len(s.chunks) <= 1 {
		return 0
	}
	return len(s.chunks) - 1
}

// Steal removes up to want chunks from the bottom of the stack and
// returns their nodes flattened, oldest chunk first, along with the
// number of chunks taken. It takes fewer than want when fewer are
// stealable, and nil when nothing is stealable. The top chunk is never
// taken.
func (s *Stack) Steal(want int) ([]uts.Node, int) {
	avail := s.StealableChunks()
	if want > avail {
		want = avail
	}
	if want <= 0 {
		return nil, 0
	}
	out := make([]uts.Node, 0, want*s.chunkSize)
	for i := 0; i < want; i++ {
		out = append(out, s.chunks[i]...)
	}
	for i := 0; i < want; i++ {
		s.recycle(s.chunks[i])
	}
	rest := copy(s.chunks, s.chunks[want:])
	for i := rest; i < len(s.chunks); i++ {
		s.chunks[i] = nil
	}
	s.chunks = s.chunks[:rest]
	s.released += uint64(want)
	return out, want
}

// StealOne removes the bottom chunk, the paper's reference steal
// granularity ("a thief will steal a single chunk of nodes").
func (s *Stack) StealOne() ([]uts.Node, int) { return s.Steal(1) }

// StealHalf removes half of the stealable chunks, rounded up — the
// strategy of paper §IV-C ("stealing half the work of the victim is an
// optimal strategy").
func (s *Stack) StealHalf() ([]uts.Node, int) {
	return s.Steal((s.StealableChunks() + 1) / 2)
}

// Drop discards every node on the stack and returns how many were
// lost. It exists for fault injection: a fail-stop crash takes the
// rank's local work with it. The chunk buffers are recycled, but no
// lifetime counter moves — dropped nodes were pushed and never popped,
// which is exactly how a crash looks from the outside.
func (s *Stack) Drop() int {
	lost := s.Len()
	for i := range s.chunks {
		s.recycle(s.chunks[i])
		s.chunks[i] = nil
	}
	s.chunks = s.chunks[:0]
	return lost
}

// TakeTop removes and returns the top chunk regardless of the
// private-chunk rule. It exists for owners reclaiming work from their
// own shared stack (package rt): the private-top rule protects a chunk
// the owner is working from, which does not apply to a stack used only
// as a transfer area — without this bypass the final chunk would be
// unreachable by owner (Steal refuses it) and thieves alike.
func (s *Stack) TakeTop() ([]uts.Node, bool) {
	top := len(s.chunks) - 1
	if top < 0 {
		return nil, false
	}
	out := append([]uts.Node(nil), s.chunks[top]...)
	s.recycle(s.chunks[top])
	s.chunks[top] = nil
	s.chunks = s.chunks[:top]
	s.pops += uint64(len(out))
	return out, true
}

// Acquire pushes stolen nodes onto the stack, preserving their order
// (they arrive oldest-first and are pushed bottom-up so the thief pops
// the newest stolen node first, as the reference implementation does).
func (s *Stack) Acquire(nodes []uts.Node) {
	for _, n := range nodes {
		s.Push(n)
	}
	s.acquired += uint64((len(nodes) + s.chunkSize - 1) / s.chunkSize)
}

// Stats are lifetime counters of the stack.
type Stats struct {
	Pushes, Pops     uint64
	ChunksReleased   uint64
	ChunksAcquired   uint64
	MaxNodesResident int
}

// Stats returns the stack's lifetime counters.
func (s *Stack) Stats() Stats {
	return Stats{
		Pushes:           s.pushes,
		Pops:             s.pops,
		ChunksReleased:   s.released,
		ChunksAcquired:   s.acquired,
		MaxNodesResident: s.maxNodes,
	}
}
