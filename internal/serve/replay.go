package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"distws/internal/sim"
)

// Arrival is one line of a JSONL arrival log: a tenant index and a
// virtual arrival instant in nanoseconds.
type Arrival struct {
	Tenant int      `json:"tenant"`
	At     sim.Time `json:"at"`
}

// ReadArrivals parses a JSONL arrival log (one Arrival object per
// line, blank lines ignored) into per-tenant replay traces for
// tenants 0..tenants-1. Lines naming an out-of-range tenant are an
// error: a replay that silently drops traffic is a regression trap.
func ReadArrivals(r io.Reader, tenants int) ([][]sim.Time, error) {
	traces := make([][]sim.Time, tenants)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		trimmed := false
		for _, c := range raw {
			if c != ' ' && c != '\t' && c != '\r' {
				trimmed = true
				break
			}
		}
		if !trimmed {
			continue
		}
		var a Arrival
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&a); err != nil {
			return nil, fmt.Errorf("serve: arrivals line %d: %w", line, err)
		}
		if a.Tenant < 0 || a.Tenant >= tenants {
			return nil, fmt.Errorf("serve: arrivals line %d: tenant %d out of range [0, %d)", line, a.Tenant, tenants)
		}
		if a.At < 0 {
			return nil, fmt.Errorf("serve: arrivals line %d: negative arrival time %v", line, a.At)
		}
		traces[a.Tenant] = append(traces[a.Tenant], a.At)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serve: reading arrivals: %w", err)
	}
	return traces, nil
}

// WriteArrivals emits a schedule's arrivals as a JSONL log, one line
// per job in arrival order — the capture half of the replay loop: a
// stochastic run's arrivals can be logged once and replayed forever.
func WriteArrivals(w io.Writer, sched *Schedule) error {
	bw := bufio.NewWriter(w)
	for i := range sched.Jobs {
		j := &sched.Jobs[i]
		b, err := json.Marshal(Arrival{Tenant: int(j.Tenant), At: j.At})
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
