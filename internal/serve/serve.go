// Package serve turns the closed-system engine into an open-system,
// multi-tenant job service: jobs (UTS trees or layered DAGs) arrive
// continuously from seeded stochastic processes, pass per-tenant
// admission control, get rooted at a placement-chosen rank, and the
// run ends when the virtual-time horizon has passed and every admitted
// job has drained.
//
// Determinism is the load-bearing property. The entire open-loop
// arrival schedule — every arrival instant, every admission verdict,
// every placement, every job's workload — is resolved by Compile
// before the simulation starts, as a pure function of (Spec, ranks,
// seed). The engine then merely replays the schedule: injection events
// are pre-scheduled on the owning kernels, so a serving run is
// bit-deterministic for a fixed (Config, seed) at any shard count,
// including under the conservative window barrier of internal/sim/par.
//
// The model follows the multi-client ServeGen-style generators of LLM
// serving simulators (ROADMAP open item 1): per-tenant
// Poisson/Gamma/Weibull inter-arrival processes plus a replay source
// for regression, token-bucket admission, SLO classes with sojourn
// targets, and goodput/fairness (Jain index) as first-class outputs.
package serve

import (
	"fmt"
	"math"

	"distws/internal/dag"
	"distws/internal/sim"
	"distws/internal/uts"
)

// Arrival process names accepted by ArrivalSpec.Process.
const (
	ProcPoisson = "poisson"
	ProcGamma   = "gamma"
	ProcWeibull = "weibull"
	// ProcReplay replays the explicit instants in ArrivalSpec.Trace
	// (typically loaded from a JSONL arrival log; see ReadArrivals).
	ProcReplay = "replay"
)

// Workload kinds accepted by Workload.Kind.
const (
	WorkUTS = "uts"
	WorkDAG = "dag"
)

// Placement policies accepted by Spec.Placement.
const (
	// PlaceRR roots the i-th arriving job at rank i mod ranks.
	PlaceRR = "rr"
	// PlaceRandom roots each job at a seeded-uniform random rank.
	PlaceRandom = "random"
	// PlaceSingle roots every job at rank 0 (the pathological hot-spot
	// baseline).
	PlaceSingle = "single"
)

// ArrivalSpec describes one tenant's arrival process. All processes
// are parameterized by the mean inter-arrival time, so tenants with
// different distributions but equal Mean offer equal load.
type ArrivalSpec struct {
	// Process is one of ProcPoisson, ProcGamma, ProcWeibull, ProcReplay.
	Process string `json:"process"`
	// Mean is the mean inter-arrival time (ignored by ProcReplay).
	Mean sim.Duration `json:"mean,omitempty"`
	// Shape is the Gamma shape k (>= 0.05) or the Weibull shape k
	// (>= 0.05); ignored by Poisson and replay. Zero means 1 (both
	// distributions then degenerate to the exponential).
	Shape float64 `json:"shape,omitempty"`
	// Trace lists explicit arrival instants for ProcReplay; instants at
	// or past the horizon are dropped by Compile.
	Trace []sim.Time `json:"trace,omitempty"`
}

// Bucket is a token-bucket admission policy: tokens refill at Rate per
// virtual second up to Burst, and admitting one job costs one token.
// A zero Rate disables admission control for the tenant (every
// arrival is admitted, subject only to Spec.MaxJobs).
type Bucket struct {
	Rate  float64 `json:"rate,omitempty"`
	Burst float64 `json:"burst,omitempty"`
}

// SLO is a tenant's service-level class: a completion counts toward
// goodput only if its sojourn time (completion minus arrival) is
// within Target.
type SLO struct {
	Class string `json:"class,omitempty"`
	// Target is the sojourn-latency target; zero means every
	// completion counts (best-effort class).
	Target sim.Duration `json:"target,omitempty"`
}

// Workload describes the work one tenant's jobs carry.
type Workload struct {
	// Kind is WorkUTS or WorkDAG.
	Kind string `json:"kind"`
	// Tree is the UTS parameter set for WorkUTS jobs. Compile varies
	// RootSeed per job (base + per-tenant job sequence number), so
	// consecutive jobs explore distinct trees of the same family.
	Tree uts.Params `json:"tree,omitempty"`
	// DAG is the task-graph parameter set for WorkDAG jobs. Compile
	// varies Seed per job. Each DAG layer becomes one injection wave:
	// a task of cost C is modeled as max(1, round(C/nodeCost))
	// guaranteed-leaf nodes, and wave w+1 is injected only once wave w
	// has fully drained — the layer barrier stands in for the task
	// dependencies.
	DAG dag.Params `json:"dag,omitempty"`
}

// Tenant is one traffic source.
type Tenant struct {
	Name    string      `json:"name"`
	Arrival ArrivalSpec `json:"arrival"`
	Admit   Bucket      `json:"admit,omitempty"`
	SLO     SLO         `json:"slo,omitempty"`
	Work    Workload    `json:"work"`
}

// Spec configures one open-system serving run. It rides on
// core.Config and is validated there alongside Shards.
type Spec struct {
	// Horizon is the arrival window: arrivals are generated strictly
	// before it, and the run ends no earlier than it (later if
	// admitted jobs are still draining). Required, > 0.
	Horizon sim.Duration `json:"horizon"`
	// MaxJobs caps the number of admitted jobs across all tenants
	// (admission-ordered); 0 means unlimited.
	MaxJobs int `json:"maxJobs,omitempty"`
	// Placement is PlaceRR (the default when empty), PlaceRandom or
	// PlaceSingle.
	Placement string `json:"placement,omitempty"`
	// Tenants are the traffic sources; at least one is required.
	Tenants []Tenant `json:"tenants"`
}

// Validate reports specification errors.
func (s *Spec) Validate() error {
	if s.Horizon <= 0 {
		return fmt.Errorf("serve: horizon %v (must be positive)", s.Horizon)
	}
	if s.MaxJobs < 0 {
		return fmt.Errorf("serve: negative job cap %d", s.MaxJobs)
	}
	switch s.Placement {
	case "", PlaceRR, PlaceRandom, PlaceSingle:
	default:
		return fmt.Errorf("serve: unknown placement %q", s.Placement)
	}
	if len(s.Tenants) == 0 {
		return fmt.Errorf("serve: no tenants")
	}
	for i := range s.Tenants {
		t := &s.Tenants[i]
		if err := t.validate(); err != nil {
			return fmt.Errorf("serve: tenant %d (%q): %w", i, t.Name, err)
		}
	}
	return nil
}

func (t *Tenant) validate() error {
	switch t.Arrival.Process {
	case ProcPoisson, ProcGamma, ProcWeibull:
		if t.Arrival.Mean <= 0 {
			return fmt.Errorf("%s arrivals need a positive mean, got %v", t.Arrival.Process, t.Arrival.Mean)
		}
		if t.Arrival.Process != ProcPoisson && t.Arrival.Shape != 0 && t.Arrival.Shape < 0.05 {
			return fmt.Errorf("%s shape %g (must be >= 0.05)", t.Arrival.Process, t.Arrival.Shape)
		}
	case ProcReplay:
		for _, at := range t.Arrival.Trace {
			if at < 0 {
				return fmt.Errorf("replay arrival at negative time %v", at)
			}
		}
	default:
		return fmt.Errorf("unknown arrival process %q", t.Arrival.Process)
	}
	if t.Admit.Rate < 0 || t.Admit.Burst < 0 {
		return fmt.Errorf("negative admission rate or burst")
	}
	if t.SLO.Target < 0 {
		return fmt.Errorf("negative SLO target %v", t.SLO.Target)
	}
	switch t.Work.Kind {
	case WorkUTS:
		if err := t.Work.Tree.Validate(); err != nil {
			return fmt.Errorf("uts workload: %w", err)
		}
	case WorkDAG:
		if err := t.Work.DAG.Validate(); err != nil {
			return fmt.Errorf("dag workload: %w", err)
		}
	default:
		return fmt.Errorf("unknown workload kind %q", t.Work.Kind)
	}
	return nil
}

// shape returns the effective distribution shape (zero means 1).
func (a ArrivalSpec) shape() float64 {
	if a.Shape == 0 {
		return 1
	}
	return a.Shape
}

// burst returns the effective bucket capacity: at least one token, or
// the admission could never admit anything.
func (b Bucket) burst() float64 {
	if b.Burst < 1 {
		return 1
	}
	return b.Burst
}

// Admitter is the token-bucket admission state for one tenant,
// advanced in arrival-time order. The zero value is invalid; use
// NewAdmitter.
type Admitter struct {
	rate   float64 // tokens per nanosecond
	burst  float64
	tokens float64
	last   sim.Time
}

// NewAdmitter builds the admission state for one bucket policy. The
// bucket starts full.
func NewAdmitter(b Bucket) Admitter {
	burst := b.burst()
	return Admitter{
		rate:   b.Rate / float64(sim.Second),
		burst:  burst,
		tokens: burst,
	}
}

// Admit charges one arrival at instant t (non-decreasing across
// calls) and reports whether the bucket admits it.
func (a *Admitter) Admit(t sim.Time) bool {
	if a.rate == 0 {
		return true
	}
	a.tokens += float64(t-a.last) * a.rate
	if a.tokens > a.burst {
		a.tokens = a.burst
	}
	a.last = t
	if a.tokens < 1 {
		return false
	}
	a.tokens--
	return true
}

// meanScale converts the distribution's unit-mean draw scale so that
// draws average Mean. For Weibull the unit-scale mean is Γ(1+1/k).
func weibullScale(mean sim.Duration, k float64) float64 {
	return float64(mean) / math.Gamma(1+1/k)
}
