package serve

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"distws/internal/dag"
	"distws/internal/sim"
	"distws/internal/uts"
)

func testTree() uts.Params {
	return uts.Params{
		Type: uts.Binomial, RootSeed: 42, B0: 40,
		NonLeafBF: 2, NonLeafProb: 0.49, Hash: uts.HashFast,
	}
}

func testSpec() *Spec {
	return &Spec{
		Horizon: 50 * sim.Millisecond,
		Tenants: []Tenant{
			{
				Name:    "batch",
				Arrival: ArrivalSpec{Process: ProcPoisson, Mean: 2 * sim.Millisecond},
				Admit:   Bucket{Rate: 400, Burst: 4},
				SLO:     SLO{Class: "gold", Target: 5 * sim.Millisecond},
				Work:    Workload{Kind: WorkUTS, Tree: testTree()},
			},
			{
				Name:    "interactive",
				Arrival: ArrivalSpec{Process: ProcGamma, Mean: 3 * sim.Millisecond, Shape: 2},
				SLO:     SLO{Class: "silver"},
				Work:    Workload{Kind: WorkUTS, Tree: testTree()},
			},
		},
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		edit func(*Spec)
		want string
	}{
		{"zero horizon", func(s *Spec) { s.Horizon = 0 }, "horizon"},
		{"negative cap", func(s *Spec) { s.MaxJobs = -1 }, "job cap"},
		{"bad placement", func(s *Spec) { s.Placement = "hash" }, "placement"},
		{"no tenants", func(s *Spec) { s.Tenants = nil }, "no tenants"},
		{"bad process", func(s *Spec) { s.Tenants[0].Arrival.Process = "pareto" }, "arrival process"},
		{"zero mean", func(s *Spec) { s.Tenants[0].Arrival.Mean = 0 }, "positive mean"},
		{"tiny shape", func(s *Spec) { s.Tenants[1].Arrival.Shape = 0.01 }, "shape"},
		{"negative rate", func(s *Spec) { s.Tenants[0].Admit.Rate = -1 }, "admission rate"},
		{"negative target", func(s *Spec) { s.Tenants[0].SLO.Target = -1 }, "SLO target"},
		{"bad kind", func(s *Spec) { s.Tenants[0].Work.Kind = "mapreduce" }, "workload kind"},
		{"bad tree", func(s *Spec) { s.Tenants[0].Work.Tree = uts.Params{Type: uts.TreeType(99)} }, "uts workload"},
	}
	for _, c := range cases {
		s := testSpec()
		c.edit(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
	}
	if err := testSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestCompileDeterministic(t *testing.T) {
	a, err := Compile(testSpec(), 16, 7, sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(testSpec(), 16, 7, sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical (spec, ranks, seed, nodeCost) compiled to different schedules")
	}
	c, err := Compile(testSpec(), 16, 8, sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Jobs, c.Jobs) {
		t.Fatal("different seeds compiled to identical schedules")
	}
	if len(a.Jobs) == 0 {
		t.Fatal("no arrivals compiled")
	}
	last := sim.Time(-1)
	for i := range a.Jobs {
		j := &a.Jobs[i]
		if j.ID != uint32(i) {
			t.Fatalf("job %d has ID %d", i, j.ID)
		}
		if j.At < last {
			t.Fatalf("job %d arrives at %v before predecessor at %v", i, j.At, last)
		}
		last = j.At
		if j.At >= sim.Time(0).Add(a.Spec.Horizon) {
			t.Fatalf("job %d arrives at %v, at or past the horizon", i, j.At)
		}
		if j.Root < 0 || int(j.Root) >= a.Ranks {
			t.Fatalf("job %d rooted at rank %d of %d", i, j.Root, a.Ranks)
		}
		if j.Admitted {
			if len(j.Waves) == 0 || len(j.Waves[0]) == 0 {
				t.Fatalf("admitted job %d has no wave-0 work", i)
			}
			for _, w := range j.Waves {
				for _, n := range w {
					if n.Job != j.ID {
						t.Fatalf("job %d wave node tagged %d", i, n.Job)
					}
				}
			}
		} else if j.Waves != nil {
			t.Fatalf("rejected job %d carries waves", i)
		}
	}
}

func TestAdmissionPartitionAndCap(t *testing.T) {
	s := testSpec()
	s.MaxJobs = 5
	sched, err := Compile(s, 8, 99, sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	admitted, rejected := 0, 0
	for i := range sched.Jobs {
		if sched.Jobs[i].Admitted {
			admitted++
		} else {
			rejected++
		}
	}
	if admitted != sched.Admitted {
		t.Fatalf("Admitted = %d, counted %d", sched.Admitted, admitted)
	}
	if admitted+rejected != len(sched.Jobs) {
		t.Fatal("admitted + rejected != arrived")
	}
	if admitted > 5 {
		t.Fatalf("MaxJobs=5 but %d admitted", admitted)
	}
	if admitted != 5 {
		t.Fatalf("expected the cap to bind (5 admitted), got %d of %d arrivals", admitted, len(sched.Jobs))
	}
}

func TestTokenBucketThrottles(t *testing.T) {
	// 100 arrivals 1ms apart against a 100/s bucket (one token per
	// 10ms) with burst 1: the bucket admits the first arrival and then
	// at most one per 10ms window.
	a := NewAdmitter(Bucket{Rate: 100, Burst: 1})
	admitted := 0
	for i := 0; i < 100; i++ {
		if a.Admit(sim.Time(i) * sim.Time(sim.Millisecond)) {
			admitted++
		}
	}
	if admitted < 10 || admitted > 11 {
		t.Fatalf("100/s bucket admitted %d of 100 arrivals over 99ms, want ~10", admitted)
	}
	// A zero rate admits everything.
	free := NewAdmitter(Bucket{})
	for i := 0; i < 10; i++ {
		if !free.Admit(sim.Time(i)) {
			t.Fatal("unlimited bucket rejected an arrival")
		}
	}
}

func TestGenMeansRoughlyMatch(t *testing.T) {
	const n = 20000
	for _, proc := range []ArrivalSpec{
		{Process: ProcPoisson, Mean: sim.Millisecond},
		{Process: ProcGamma, Mean: sim.Millisecond, Shape: 3},
		{Process: ProcGamma, Mean: sim.Millisecond, Shape: 0.5},
		{Process: ProcWeibull, Mean: sim.Millisecond, Shape: 1.5},
		{Process: ProcWeibull, Mean: sim.Millisecond, Shape: 0.8},
	} {
		g := NewGen(proc, 1234, 0)
		var last sim.Time
		for i := 0; i < n; i++ {
			at, ok := g.Next()
			if !ok {
				t.Fatalf("%s exhausted", proc.Process)
			}
			if at <= last && i > 0 {
				t.Fatalf("%s: non-increasing arrivals", proc.Process)
			}
			last = at
		}
		mean := float64(last) / n
		if math.Abs(mean-float64(proc.Mean)) > 0.05*float64(proc.Mean) {
			t.Errorf("%s shape=%g: empirical mean inter-arrival %.0fns, want %.0fns ±5%%",
				proc.Process, proc.Shape, mean, float64(proc.Mean))
		}
	}
}

func TestReplayRoundtrip(t *testing.T) {
	sched, err := Compile(testSpec(), 8, 3, sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteArrivals(&buf, sched); err != nil {
		t.Fatal(err)
	}
	traces, err := ReadArrivals(bytes.NewReader(buf.Bytes()), len(sched.Spec.Tenants))
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the spec in replay mode: same arrivals, same admission
	// verdicts, same placements.
	rs := testSpec()
	for ti := range rs.Tenants {
		rs.Tenants[ti].Arrival = ArrivalSpec{Process: ProcReplay, Trace: traces[ti]}
	}
	replayed, err := Compile(rs, 8, 3, sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed.Jobs) != len(sched.Jobs) {
		t.Fatalf("replay compiled %d jobs, original %d", len(replayed.Jobs), len(sched.Jobs))
	}
	for i := range sched.Jobs {
		o, r := &sched.Jobs[i], &replayed.Jobs[i]
		if o.At != r.At || o.Tenant != r.Tenant || o.Admitted != r.Admitted || o.Root != r.Root {
			t.Fatalf("job %d diverged under replay: %+v vs %+v", i, o, r)
		}
	}

	if _, err := ReadArrivals(strings.NewReader(`{"tenant":9,"at":1}`), 2); err == nil {
		t.Fatal("out-of-range tenant accepted")
	}
	if _, err := ReadArrivals(strings.NewReader(`{"tenant":0,"at":1,"x":2}`), 2); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestDAGWavesAreGuaranteedLeaves(t *testing.T) {
	s := testSpec()
	s.Tenants[0].Work = Workload{Kind: WorkDAG, DAG: dag.Params{
		Seed: 5, Layers: 3, WidthMean: 2, EdgesPerTask: 1.5,
		LocalityWindow: 1, CostMean: 4 * sim.Microsecond, DataMean: 64,
	}}
	sched, err := Compile(s, 8, 11, sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	sawDAG := false
	for i := range sched.Jobs {
		j := &sched.Jobs[i]
		if !j.Admitted || j.Tenant != 0 {
			continue
		}
		sawDAG = true
		if len(j.Waves) != 3 {
			t.Fatalf("dag job %d has %d waves, want one per layer (3)", i, len(j.Waves))
		}
		for w := range j.Waves {
			if len(j.Waves[w]) == 0 {
				t.Fatalf("dag job %d wave %d empty", i, w)
			}
			for k := range j.Waves[w] {
				n := j.Waves[w][k]
				if got := j.Tree.NumChildren(&n); got != 0 {
					t.Fatalf("dag node generates %d children; waves must be pure leaves", got)
				}
			}
		}
	}
	if !sawDAG {
		t.Fatal("no admitted DAG jobs compiled")
	}
}

func TestStatsPartitionAndJain(t *testing.T) {
	sched, err := Compile(testSpec(), 8, 21, sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	done := make([]sim.Time, len(sched.Jobs))
	for i := range done {
		done[i] = -1
	}
	// Complete every admitted job 1ms after arrival.
	for i := range sched.Jobs {
		if sched.Jobs[i].Admitted {
			done[i] = sched.Jobs[i].At.Add(sim.Millisecond)
		}
	}
	finish := sim.Time(0).Add(sched.Spec.Horizon)
	st := sched.Stats(done, finish)
	if st.Admitted+st.Rejected != st.Arrived {
		t.Fatalf("admitted %d + rejected %d != arrived %d", st.Admitted, st.Rejected, st.Arrived)
	}
	if st.Done != st.Admitted {
		t.Fatalf("done %d != admitted %d with every job completed", st.Done, st.Admitted)
	}
	var arrived, admitted, rejected uint64
	for ti := range st.Tenants {
		ts := &st.Tenants[ti]
		if ts.Admitted+ts.Rejected != ts.Arrived {
			t.Fatalf("tenant %d: admitted+rejected != arrived", ti)
		}
		arrived += ts.Arrived
		admitted += ts.Admitted
		rejected += ts.Rejected
		if ts.Done > 0 {
			if ts.SojournP50 != sim.Millisecond || ts.SojournP99 != sim.Millisecond {
				t.Fatalf("tenant %d: constant 1ms sojourns but p50=%v p99=%v", ti, ts.SojournP50, ts.SojournP99)
			}
			// 1ms is inside both tenants' targets (5ms and best-effort).
			if ts.SLOMet != ts.Done {
				t.Fatalf("tenant %d: %d SLO-met of %d done at 1ms sojourn", ti, ts.SLOMet, ts.Done)
			}
		}
	}
	if arrived != st.Arrived || admitted != st.Admitted || rejected != st.Rejected {
		t.Fatal("tenant rows do not sum to the global partition")
	}
	if st.Jain <= 0 || st.Jain > 1 {
		t.Fatalf("Jain index %g outside (0, 1]", st.Jain)
	}
	// Nothing served: Jain defined as 1.
	none := make([]sim.Time, len(sched.Jobs))
	for i := range none {
		none[i] = -1
	}
	if got := sched.Stats(none, finish).Jain; got != 1 {
		t.Fatalf("Jain = %g with nothing served, want 1", got)
	}
}

// TestServeArrivalsAllocFree pins the hot path of Compile — sampling
// and admission — at zero allocations per arrival, the same gate the
// bench-smoke target checks for the kernel hot paths.
func TestServeArrivalsAllocFree(t *testing.T) {
	g := NewGen(ArrivalSpec{Process: ProcGamma, Mean: sim.Millisecond, Shape: 2}, 7, 0)
	a := NewAdmitter(Bucket{Rate: 500, Burst: 2})
	var admitted int
	allocs := testing.AllocsPerRun(2000, func() {
		at, _ := g.Next()
		if a.Admit(at) {
			admitted++
		}
	})
	if allocs != 0 {
		t.Fatalf("arrival sampling + admission allocates %.1f/op, want 0", allocs)
	}
	if admitted == 0 {
		t.Fatal("nothing admitted; the measured loop is not exercising admission")
	}
}
