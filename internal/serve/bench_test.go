package serve

import (
	"testing"

	"distws/internal/sim"
)

// BenchmarkServeArrivals measures the Compile hot path: one arrival
// draw plus its token-bucket admission. Folded into BENCH_sim.json by
// cmd/benchjson and gated at 0 allocs/op.
func BenchmarkServeArrivals(b *testing.B) {
	g := NewGen(ArrivalSpec{Process: ProcGamma, Mean: sim.Millisecond, Shape: 2}, 7, 0)
	a := NewAdmitter(Bucket{Rate: 500, Burst: 2})
	var admitted uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at, _ := g.Next()
		if a.Admit(at) {
			admitted++
		}
	}
	_ = admitted
}
