package serve

import (
	"math"

	"distws/internal/rng"
	"distws/internal/sim"
)

// Gen draws one tenant's arrival instants in order. It is the
// hot-path half of Compile — Next performs no allocation (gated by
// BenchmarkServeArrivals), so schedules with millions of arrivals
// compile in linear time and constant garbage.
type Gen struct {
	proc  string
	r     *rng.Xoshiro256
	now   sim.Time
	mean  sim.Duration
	shape float64
	scale float64 // weibull draw scale
	// gamma Marsaglia-Tsang constants for shape d = k - 1/3 (k >= 1).
	gd, gc float64
	// boost is U^(1/k) shape augmentation for gamma k < 1.
	boost bool
	trace []sim.Time
	ti    int
}

// NewGen builds the generator for one tenant's arrival spec. The
// stream is seeded from (seed, tenant index), so tenants are
// statistically independent but jointly a pure function of the run
// seed.
func NewGen(a ArrivalSpec, seed uint64, tenant int) *Gen {
	g := &Gen{
		proc:  a.Process,
		mean:  a.Mean,
		shape: a.shape(),
		trace: a.Trace,
	}
	g.r = rng.New(rng.Mix64(seed ^ rng.Mix64(uint64(tenant)+0x5e47a9f3c1d208b7)))
	switch a.Process {
	case ProcWeibull:
		g.scale = weibullScale(a.Mean, g.shape)
	case ProcGamma:
		k := g.shape
		if k < 1 {
			g.boost = true
			k++
		}
		g.gd = k - 1.0/3.0
		g.gc = 1 / math.Sqrt(9*g.gd)
	}
	return g
}

// Next returns the next arrival instant, or ok=false when the process
// is exhausted (replay only; stochastic processes never exhaust).
func (g *Gen) Next() (sim.Time, bool) {
	switch g.proc {
	case ProcReplay:
		if g.ti >= len(g.trace) {
			return 0, false
		}
		t := g.trace[g.ti]
		g.ti++
		return t, true
	case ProcPoisson:
		g.now = g.now.Add(durScale(g.mean, g.exp()))
	case ProcGamma:
		// Gamma(k, θ) with θ = mean/k keeps the draw mean at Mean.
		g.now = g.now.Add(durScale(g.mean, g.gamma()/g.shape))
	case ProcWeibull:
		d := sim.Duration(g.scale * math.Pow(g.exp(), 1/g.shape))
		if d < 1 {
			d = 1
		}
		g.now = g.now.Add(d)
	}
	return g.now, true
}

// durScale converts a unit-mean draw into a duration around mean,
// clamped to at least one nanosecond so time always advances.
func durScale(mean sim.Duration, f float64) sim.Duration {
	d := sim.Duration(float64(mean) * f)
	if d < 1 {
		d = 1
	}
	return d
}

// exp draws a unit-mean exponential.
func (g *Gen) exp() float64 {
	// 1-U is in (0, 1], so the log is finite.
	return -math.Log(1 - g.r.Float64())
}

// gamma draws Gamma(shape, 1) by Marsaglia-Tsang squeeze, with the
// U^(1/k) boost for shape < 1.
func (g *Gen) gamma() float64 {
	for {
		x := g.r.NormFloat64()
		v := 1 + g.gc*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return g.finishGamma(v)
		}
		if u > 0 && math.Log(u) < 0.5*x*x+g.gd*(1-v+math.Log(v)) {
			return g.finishGamma(v)
		}
	}
}

func (g *Gen) finishGamma(v float64) float64 {
	d := g.gd * v
	if g.boost {
		// Shape was augmented by one; undo with the U^(1/k) factor.
		d *= math.Pow(g.r.Float64(), 1/g.shape)
	}
	return d
}
