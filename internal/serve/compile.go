package serve

import (
	"encoding/binary"
	"fmt"
	"sort"

	"distws/internal/dag"
	"distws/internal/rng"
	"distws/internal/sim"
	"distws/internal/uts"
)

// maxArrivalsPerTenant bounds runaway schedules (a tiny mean against a
// huge horizon); Compile fails loudly rather than truncating silently.
const maxArrivalsPerTenant = 1 << 20

// Job is one compiled arrival: everything the engine needs to replay
// it is resolved here, before the simulation starts.
type Job struct {
	// ID is the job's index in Schedule.Jobs and the value stamped
	// into uts.Node.Job for every node the job owns.
	ID uint32
	// Tenant and Seq identify the source: Seq is the job's per-tenant
	// arrival sequence number.
	Tenant int32
	Seq    int32
	// At is the arrival instant (strictly before the horizon).
	At sim.Time
	// Admitted is the token-bucket (and job-cap) verdict. Rejected
	// jobs inject nothing; they exist for the EvJobReject record and
	// the admitted+rejected == arrived identity.
	Admitted bool
	// Root is the placement-chosen rank the job's waves are injected
	// at (assigned to rejected jobs too — routing precedes admission).
	Root int32
	// Tree is the parameter set governing expansion of this job's
	// nodes (admitted jobs only). UTS jobs carry the tenant's tree
	// with a per-job RootSeed; DAG jobs carry the synthetic
	// guaranteed-leaf parameters.
	Tree uts.Params
	// Waves are the injection waves (admitted jobs only): wave 0 goes
	// in at the arrival instant, wave w+1 once wave w has fully
	// drained. UTS jobs have exactly one wave holding the root; DAG
	// jobs have one wave per layer.
	Waves [][]uts.Node
}

// Schedule is the compiled open-loop arrival plan: a pure function of
// (Spec, ranks, seed, nodeCost), replayed verbatim by the engine.
type Schedule struct {
	Spec     *Spec
	Ranks    int
	Seed     uint64
	NodeCost sim.Duration

	// Jobs in arrival order (ties broken by tenant, then sequence).
	Jobs []Job
	// Admitted counts jobs with Admitted set.
	Admitted int
	// LastArrival is the latest arrival instant (-1 when no jobs).
	LastArrival sim.Time
	// InjectedNodes is the total node count across all admitted jobs'
	// waves — the schedule's offered load in NodeCost units for DAG
	// jobs, and the injected roots for UTS jobs (whose load unfolds
	// during the run).
	InjectedNodes int64
}

// Compile resolves every random choice of the serving run: arrival
// instants, admission verdicts, placements, and each admitted job's
// workload. nodeCost calibrates DAG task costs into guaranteed-leaf
// node counts; it must match the engine's Config.NodeCost.
func Compile(spec *Spec, ranks int, seed uint64, nodeCost sim.Duration) (*Schedule, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if ranks < 1 {
		return nil, fmt.Errorf("serve: %d ranks", ranks)
	}
	if nodeCost <= 0 {
		return nil, fmt.Errorf("serve: non-positive node cost %v", nodeCost)
	}
	sched := &Schedule{
		Spec:        spec,
		Ranks:       ranks,
		Seed:        seed,
		NodeCost:    nodeCost,
		LastArrival: -1,
	}

	// Phase 1: draw every tenant's arrival instants up to the horizon.
	horizon := sim.Time(0).Add(spec.Horizon)
	for ti := range spec.Tenants {
		t := &spec.Tenants[ti]
		g := NewGen(t.Arrival, seed, ti)
		var seq int32
		for {
			at, ok := g.Next()
			if !ok || at >= horizon {
				break
			}
			if at < 0 {
				continue
			}
			sched.Jobs = append(sched.Jobs, Job{
				Tenant: int32(ti),
				Seq:    seq,
				At:     at,
			})
			seq++
			if seq > maxArrivalsPerTenant {
				return nil, fmt.Errorf("serve: tenant %d (%q) generates more than %d arrivals before the horizon",
					ti, t.Name, maxArrivalsPerTenant)
			}
		}
	}

	// Phase 2: merge into global arrival order. The (At, Tenant, Seq)
	// key is a total order, so the sort is deterministic. Replay
	// traces may be unsorted; per-tenant Seq is reassigned afterward
	// so sequence numbers always follow time.
	sort.Slice(sched.Jobs, func(i, j int) bool {
		a, b := &sched.Jobs[i], &sched.Jobs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		return a.Seq < b.Seq
	})
	seqs := make([]int32, len(spec.Tenants))
	for i := range sched.Jobs {
		j := &sched.Jobs[i]
		j.Seq = seqs[j.Tenant]
		seqs[j.Tenant]++
	}

	// Phase 3: placement and admission in arrival order.
	placeRng := rng.New(rng.Mix64(seed ^ 0x9a1f64c58bd02e73))
	admitters := make([]Admitter, len(spec.Tenants))
	for ti := range spec.Tenants {
		admitters[ti] = NewAdmitter(spec.Tenants[ti].Admit)
	}
	for i := range sched.Jobs {
		j := &sched.Jobs[i]
		j.ID = uint32(i)
		switch spec.Placement {
		case PlaceRandom:
			j.Root = int32(placeRng.Uint64n(uint64(ranks)))
		case PlaceSingle:
			j.Root = 0
		default: // PlaceRR
			j.Root = int32(i % ranks)
		}
		j.Admitted = admitters[j.Tenant].Admit(j.At)
		if j.Admitted && spec.MaxJobs > 0 && sched.Admitted >= spec.MaxJobs {
			j.Admitted = false
		}
		if j.Admitted {
			sched.Admitted++
		}
		if j.At > sched.LastArrival {
			sched.LastArrival = j.At
		}
	}

	// Phase 4: materialize the admitted jobs' workloads.
	for i := range sched.Jobs {
		j := &sched.Jobs[i]
		if !j.Admitted {
			continue
		}
		t := &spec.Tenants[j.Tenant]
		switch t.Work.Kind {
		case WorkUTS:
			tree := t.Work.Tree
			tree.RootSeed += j.Seq
			root := tree.Root()
			root.Job = j.ID
			j.Tree = tree
			j.Waves = [][]uts.Node{{root}}
			sched.InjectedNodes++
		case WorkDAG:
			p := t.Work.DAG
			p.Seed = rng.Mix64(p.Seed ^ rng.Mix64(uint64(j.ID)+0x7c3a))
			waves, n, err := dagWaves(p, j.ID, nodeCost)
			if err != nil {
				return nil, fmt.Errorf("serve: tenant %d job %d: %w", j.Tenant, j.ID, err)
			}
			j.Tree = dagLeafParams
			j.Waves = waves
			sched.InjectedNodes += n
		}
	}
	return sched, nil
}

// dagLeafParams guarantees every synthetic DAG node is a leaf: the
// geometric law yields zero children at Height >= GenMax, and every
// synthetic node is built at height 1 with GenMax 1. Expanding one
// costs exactly one NodeCost unit, so a task of cost C modeled as
// round(C/NodeCost) nodes consumes ~C of virtual compute.
var dagLeafParams = uts.Params{
	Type:   uts.Geometric,
	B0:     1,
	GenMax: 1,
	Shape:  uts.ShapeFixed,
}

// dagWaves compiles one DAG job into per-layer injection waves.
func dagWaves(p dag.Params, jobID uint32, nodeCost sim.Duration) ([][]uts.Node, int64, error) {
	g, err := dag.Generate(p)
	if err != nil {
		return nil, 0, err
	}
	layers := 0
	for i := range g.Tasks {
		if int(g.Tasks[i].Layer)+1 > layers {
			layers = int(g.Tasks[i].Layer) + 1
		}
	}
	waves := make([][]uts.Node, layers)
	var total int64
	for i := range g.Tasks {
		t := &g.Tasks[i]
		k := int((t.Cost + nodeCost/2) / nodeCost)
		if k < 1 {
			k = 1
		}
		w := int(t.Layer)
		for u := 0; u < k; u++ {
			waves[w] = append(waves[w], dagNode(jobID, t.ID, u))
			total++
		}
	}
	return waves, total, nil
}

// dagNode builds one synthetic guaranteed-leaf node. The state bytes
// only need to be deterministic — the node never generates children,
// so they never feed a hash chain.
func dagNode(jobID uint32, task int32, unit int) uts.Node {
	n := uts.Node{Height: 1, Job: jobID}
	v := rng.Mix64(uint64(jobID)<<32 | uint64(uint32(task)))
	binary.BigEndian.PutUint64(n.State[0:8], v)
	binary.BigEndian.PutUint64(n.State[8:16], rng.Mix64(v^uint64(unit)))
	binary.BigEndian.PutUint32(n.State[16:20], uint32(unit))
	return n
}
