package serve

import (
	"sort"

	"distws/internal/sim"
)

// TenantStats is one tenant's serving outcome.
type TenantStats struct {
	Name  string
	Class string
	// Partition identity: Admitted + Rejected == Arrived, checked by
	// the manifest gate.
	Arrived, Admitted, Rejected uint64
	// Done counts admitted jobs that completed before the run ended
	// (all of them, once the drain finished).
	Done uint64
	// SLOMet counts completions whose sojourn time met the tenant's
	// SLO target (every completion when the target is zero).
	SLOMet uint64
	// GoodputPerSec is SLO-met completions per virtual second of the
	// arrival horizon — the serving throughput that survives both
	// admission and the latency target.
	GoodputPerSec float64
	// Sojourn percentiles over completed jobs (nearest-rank); zero
	// when the tenant completed nothing.
	SojournP50, SojournP95, SojournP99 sim.Duration
}

// Stats summarizes one serving run, computed after the kernels drain
// from the compiled schedule and the per-job completion instants.
type Stats struct {
	Arrived, Admitted, Rejected, Done uint64
	// Finish is the virtual instant the run ended: the horizon, or the
	// last job completion if the drain outlived it.
	Finish sim.Time
	// Jain is Jain's fairness index over the tenants' goodput:
	// (Σx)²/(n·Σx²), 1.0 for perfect fairness, 1/n for a single
	// tenant hogging everything. Defined as 1.0 when no tenant has
	// goodput (nothing was served, nothing was unfair).
	Jain float64
	// Tenants in spec order.
	Tenants []TenantStats
}

// Stats derives the serving summary. done[id] is job id's completion
// instant, negative for jobs that never completed (rejected jobs, or
// an aborted run); finish is the run's end instant.
func (s *Schedule) Stats(done []sim.Time, finish sim.Time) *Stats {
	st := &Stats{
		Finish:  finish,
		Tenants: make([]TenantStats, len(s.Spec.Tenants)),
	}
	sojourns := make([][]sim.Duration, len(s.Spec.Tenants))
	for ti := range s.Spec.Tenants {
		t := &s.Spec.Tenants[ti]
		st.Tenants[ti].Name = t.Name
		st.Tenants[ti].Class = t.SLO.Class
	}
	for i := range s.Jobs {
		j := &s.Jobs[i]
		ts := &st.Tenants[j.Tenant]
		ts.Arrived++
		st.Arrived++
		if !j.Admitted {
			ts.Rejected++
			st.Rejected++
			continue
		}
		ts.Admitted++
		st.Admitted++
		if int(j.ID) >= len(done) || done[j.ID] < 0 {
			continue
		}
		ts.Done++
		st.Done++
		sojourn := done[j.ID].Sub(j.At)
		sojourns[j.Tenant] = append(sojourns[j.Tenant], sojourn)
		target := s.Spec.Tenants[j.Tenant].SLO.Target
		if target == 0 || sojourn <= target {
			ts.SLOMet++
		}
	}
	horizonSec := float64(s.Spec.Horizon) / float64(sim.Second)
	var sum, sumSq float64
	for ti := range st.Tenants {
		ts := &st.Tenants[ti]
		if horizonSec > 0 {
			ts.GoodputPerSec = float64(ts.SLOMet) / horizonSec
		}
		sj := sojourns[ti]
		sort.Slice(sj, func(a, b int) bool { return sj[a] < sj[b] })
		ts.SojournP50 = percentile(sj, 50)
		ts.SojournP95 = percentile(sj, 95)
		ts.SojournP99 = percentile(sj, 99)
		sum += ts.GoodputPerSec
		sumSq += ts.GoodputPerSec * ts.GoodputPerSec
	}
	if sumSq > 0 {
		st.Jain = sum * sum / (float64(len(st.Tenants)) * sumSq)
	} else {
		st.Jain = 1
	}
	return st
}

// percentile is the nearest-rank percentile of a sorted slice (zero
// when empty).
func percentile(sorted []sim.Duration, p int) sim.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 * n)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
