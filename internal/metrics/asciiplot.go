package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named line of an ASCII plot.
type Series struct {
	Name string
	X, Y []float64
}

// ASCIIPlot renders series as a fixed-size character plot, used by the
// experiment tools to show figure shapes directly in a terminal. Each
// series is drawn with its own marker; axes are annotated with the data
// ranges. Points with NaN Y values are skipped.
func ASCIIPlot(title string, series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	markers := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if i >= len(s.Y) || math.IsNaN(s.Y[i]) {
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		return title + "\n(no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if i >= len(s.Y) || math.IsNaN(s.Y[i]) {
				continue
			}
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = m
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%10.4g ┤%s\n", ymax, string(grid[0]))
	for r := 1; r < height-1; r++ {
		fmt.Fprintf(&b, "%10s │%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(&b, "%10.4g ┤%s\n", ymin, string(grid[height-1]))
	fmt.Fprintf(&b, "%10s └%s\n", "", strings.Repeat("─", width))
	fmt.Fprintf(&b, "%11s%-*.4g%*.4g\n", "", width/2, xmin, width-width/2, xmax)

	names := make([]string, 0, len(series))
	for si, s := range series {
		names = append(names, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "%11s%s\n", "", strings.Join(names, "   "))
	return b.String()
}
