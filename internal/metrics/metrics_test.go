package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"distws/internal/sim"
	"distws/internal/trace"
)

// buildTrace constructs a trace where rank i is active on the given
// [start, end) intervals.
func buildTrace(end sim.Time, intervals [][][2]sim.Time) *trace.Trace {
	r := trace.NewRecorder(len(intervals))
	for rank, spans := range intervals {
		for _, span := range spans {
			r.Record(rank, span[0], trace.Active)
			r.Record(rank, span[1], trace.Idle)
		}
	}
	return r.Finish(end)
}

func TestOccupancyBasic(t *testing.T) {
	// Rank 0 active [10,90), rank 1 active [20,50) and [60,80).
	tr := buildTrace(100, [][][2]sim.Time{
		{{10, 90}},
		{{20, 50}, {60, 80}},
	})
	c := Occupancy(tr)
	cases := []struct {
		at   sim.Time
		want int
	}{
		{0, 0}, {5, 0}, {10, 1}, {15, 1}, {20, 2}, {49, 2},
		{50, 1}, {55, 1}, {60, 2}, {79, 2}, {80, 1}, {90, 0}, {99, 0},
	}
	for _, cse := range cases {
		if got := c.WorkersAt(cse.at); got != cse.want {
			t.Fatalf("WorkersAt(%d) = %d, want %d", cse.at, got, cse.want)
		}
	}
	if c.Wmax() != 2 {
		t.Fatalf("Wmax = %d", c.Wmax())
	}
	if c.MaxOccupancy() != 1.0 {
		t.Fatalf("MaxOccupancy = %v", c.MaxOccupancy())
	}
}

func TestMeanOccupancy(t *testing.T) {
	// One rank active half the time: mean occupancy 0.5.
	tr := buildTrace(100, [][][2]sim.Time{{{0, 50}}})
	c := Occupancy(tr)
	if got := c.MeanOccupancy(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("MeanOccupancy = %v, want 0.5", got)
	}
	// Two ranks, one always active, one never: 0.5 again.
	tr2 := buildTrace(100, [][][2]sim.Time{{{0, 100}}, {}})
	if got := Occupancy(tr2).MeanOccupancy(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("MeanOccupancy = %v, want 0.5", got)
	}
}

func TestStartingLatency(t *testing.T) {
	// 4 ranks becoming active at t = 0, 10, 20, 30 and staying busy
	// until t = 100 (makespan 100).
	tr := buildTrace(100, [][][2]sim.Time{
		{{0, 100}}, {{10, 100}}, {{20, 100}}, {{30, 100}},
	})
	c := Occupancy(tr)
	cases := []struct {
		x    float64
		want float64
	}{
		{0.25, 0.0},  // 1 worker at t=0
		{0.5, 0.10},  // 2 workers at t=10
		{0.75, 0.20}, // 3 workers at t=20
		{1.0, 0.30},  // all at t=30
	}
	for _, cse := range cases {
		sl, ok := c.StartingLatency(cse.x)
		if !ok {
			t.Fatalf("SL(%v) unreachable", cse.x)
		}
		if math.Abs(sl-cse.want) > 1e-12 {
			t.Fatalf("SL(%v) = %v, want %v", cse.x, sl, cse.want)
		}
	}
}

func TestEndingLatency(t *testing.T) {
	// Mirror image: ranks go idle at 70, 80, 90, 100.
	tr := buildTrace(100, [][][2]sim.Time{
		{{0, 100}}, {{0, 90}}, {{0, 80}}, {{0, 70}},
	})
	c := Occupancy(tr)
	cases := []struct {
		x    float64
		want float64
	}{
		{1.0, 0.30},  // 4 workers last at t=70
		{0.75, 0.20}, // 3 workers until 80
		{0.5, 0.10},
		{0.25, 0.0}, // 1 worker until the very end
	}
	for _, cse := range cases {
		el, ok := c.EndingLatency(cse.x)
		if !ok {
			t.Fatalf("EL(%v) unreachable", cse.x)
		}
		if math.Abs(el-cse.want) > 1e-12 {
			t.Fatalf("EL(%v) = %v, want %v", cse.x, el, cse.want)
		}
	}
}

func TestUnreachableOccupancy(t *testing.T) {
	// Only 1 of 4 ranks ever works: SL/EL above 25% must report
	// unreachable — the situation of the paper's Figure 5 (43% max).
	tr := buildTrace(100, [][][2]sim.Time{{{0, 100}}, {}, {}, {}})
	c := Occupancy(tr)
	if _, ok := c.StartingLatency(0.5); ok {
		t.Fatal("SL(50%) reported reachable")
	}
	if _, ok := c.EndingLatency(0.5); ok {
		t.Fatal("EL(50%) reported reachable")
	}
	if c.MaxOccupancy() != 0.25 {
		t.Fatalf("MaxOccupancy = %v", c.MaxOccupancy())
	}
}

func TestPaperExampleSL(t *testing.T) {
	// Paper §III: "an execution where the first time 10% of the
	// processes have work happens 5% of the execution time after
	// beginning has SL(10%) = 5%."
	// 10 ranks; rank 0 active from t=50 (5% of 1000).
	intervals := make([][][2]sim.Time, 10)
	intervals[0] = [][2]sim.Time{{50, 1000}}
	tr := buildTrace(1000, intervals)
	sl, ok := Occupancy(tr).StartingLatency(0.10)
	if !ok || math.Abs(sl-0.05) > 1e-12 {
		t.Fatalf("SL(10%%) = %v ok=%v, want 0.05", sl, ok)
	}
}

func TestLatencyCurveAndSamples(t *testing.T) {
	tr := buildTrace(100, [][][2]sim.Time{
		{{0, 100}}, {{10, 100}}, {{20, 100}}, {{30, 100}},
	})
	c := Occupancy(tr)
	xs := OccupancySamples(4, 1.0)
	if len(xs) != 4 || xs[0] != 0.25 || xs[3] != 1.0 {
		t.Fatalf("samples %v", xs)
	}
	pts := c.LatencyCurve(xs)
	for _, p := range pts {
		if !p.Reached {
			t.Fatalf("point %+v unreachable", p)
		}
		if p.SL < 0 || p.SL > 1 || p.EL < 0 || p.EL > 1 {
			t.Fatalf("latency outside [0,1]: %+v", p)
		}
	}
	if pts[0].SL > pts[3].SL {
		t.Fatal("SL not monotone in occupancy")
	}
	// Capped samples.
	capped := OccupancySamples(10, 0.45)
	if len(capped) != 4 { // 0.1 .. 0.4
		t.Fatalf("capped samples %v", capped)
	}
}

func TestStepsCopy(t *testing.T) {
	tr := buildTrace(10, [][][2]sim.Time{{{1, 9}}})
	c := Occupancy(tr)
	times, counts := c.Steps()
	times[0] = 12345
	counts[0] = 99
	t2, c2 := c.Steps()
	if t2[0] == 12345 || c2[0] == 99 {
		t.Fatal("Steps did not return copies")
	}
}

func TestCorruptTracePanics(t *testing.T) {
	// An idle transition without a preceding active one makes the
	// worker count negative.
	tr := &trace.Trace{
		End:         10,
		Transitions: [][]trace.Transition{{{Time: 2, State: trace.Idle}}},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("corrupt trace did not panic")
		}
	}()
	Occupancy(tr)
}

// Property: SL is non-decreasing and EL non-increasing... EL is also
// non-decreasing in x (harder to keep high occupancy late). Check
// monotonicity of both and that SL(x) <= 1.
func TestPropertySLELMonotone(t *testing.T) {
	f := func(starts []uint8, lens []uint8) bool {
		n := len(starts)
		if n == 0 || n > 32 || len(lens) == 0 {
			return true
		}
		intervals := make([][][2]sim.Time, n)
		var end sim.Time = 1
		for i := range starts {
			s := sim.Time(starts[i])
			l := sim.Duration(lens[i%len(lens)]) + 1
			e := s.Add(l)
			intervals[i] = [][2]sim.Time{{s, e}}
			if e > end {
				end = e
			}
		}
		c := Occupancy(buildTrace(end, intervals))
		var prevSL, prevEL float64
		for _, x := range OccupancySamples(10, 1.0) {
			sl, ok1 := c.StartingLatency(x)
			el, ok2 := c.EndingLatency(x)
			if !ok1 || !ok2 {
				break
			}
			if sl < prevSL-1e-12 || el < prevEL-1e-12 {
				return false
			}
			if sl < 0 || sl > 1 || el < 0 || el > 1 {
				return false
			}
			prevSL, prevEL = sl, el
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestASCIIPlot(t *testing.T) {
	out := ASCIIPlot("demo",
		[]Series{
			{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}},
			{Name: "b", X: []float64{0, 1, 2}, Y: []float64{4, 1, 0}},
		}, 20, 6)
	if !strings.Contains(out, "demo") || !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Fatalf("plot missing elements:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no markers plotted")
	}
	empty := ASCIIPlot("empty", nil, 20, 6)
	if !strings.Contains(empty, "no data") {
		t.Fatalf("empty plot: %s", empty)
	}
	// NaN points are skipped, not plotted.
	nan := ASCIIPlot("nan", []Series{{Name: "a", X: []float64{0, 1}, Y: []float64{math.NaN(), 2}}}, 20, 6)
	if strings.Contains(nan, "no data") {
		t.Fatal("single valid point treated as no data")
	}
}
