package metrics

import (
	"strings"
	"testing"

	"distws/internal/sim"
	"distws/internal/trace"
)

func TestLifestoryRendering(t *testing.T) {
	// Rank 0 active the whole run; rank 1 active the second half;
	// rank 2 never active.
	tr := buildTrace(100, [][][2]sim.Time{
		{{0, 100}},
		{{50, 100}},
		{},
	})
	out := Lifestory(tr, 10, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 3 ranks
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	row0 := lines[1][strings.Index(lines[1], "|")+1:]
	if strings.ContainsAny(row0, ".+") {
		t.Fatalf("always-active rank shows idle buckets: %q", row0)
	}
	row2 := lines[3][strings.Index(lines[3], "|")+1:]
	if strings.Contains(row2, "#") {
		t.Fatalf("never-active rank shows active buckets: %q", row2)
	}
	row1 := lines[2][strings.Index(lines[2], "|")+1:]
	if !strings.HasPrefix(row1, ".....") || !strings.HasSuffix(strings.TrimSuffix(row1, "|"), "#####") {
		t.Fatalf("half-active rank wrong: %q", row1)
	}
}

func TestLifestorySampling(t *testing.T) {
	// 100 ranks but only 10 rows: output must subsample evenly.
	intervals := make([][][2]sim.Time, 100)
	for i := range intervals {
		intervals[i] = [][2]sim.Time{{0, 100}}
	}
	tr := buildTrace(100, intervals)
	out := Lifestory(tr, 20, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 11 {
		t.Fatalf("%d lines for 10 rows", len(lines))
	}
	if !strings.Contains(lines[1], "     0 |") || !strings.Contains(lines[10], "    90 |") {
		t.Fatalf("sampling labels wrong:\n%s", out)
	}
}

func TestLifestoryEmpty(t *testing.T) {
	tr := trace.NewRecorder(0).Finish(0)
	if !strings.Contains(Lifestory(tr, 10, 5), "empty") {
		t.Fatal("empty trace not handled")
	}
}

func TestLifestoryPartialBucket(t *testing.T) {
	// Active only for a small fraction of one bucket: '+' marker.
	tr := buildTrace(1000, [][][2]sim.Time{{{0, 10}}})
	out := Lifestory(tr, 10, 1)
	row := out[strings.Index(out, "|")+1:]
	if row[0] != '+' && row[0] != '#' {
		t.Fatalf("brief activity invisible: %q", row)
	}
	if strings.Count(row[:10], "#")+strings.Count(row[:10], "+") > 1 {
		t.Fatalf("activity bleeds across buckets: %q", row)
	}
}

func TestSessionsStats(t *testing.T) {
	r := trace.NewRecorder(2)
	r.BeginSession(0, 0)
	r.SessionAttempt(0, true)
	r.SessionAttempt(0, true)
	r.EndSession(0, 10_000, true) // 10µs
	r.BeginSession(1, 0)
	r.SessionAttempt(1, false)
	r.EndSession(1, 30_000, true) // 30µs
	tr := r.Finish(100_000)
	st := Sessions(tr)
	if st.Count != 2 || st.Failed != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.Mean < 19e-6 || st.Mean > 21e-6 {
		t.Fatalf("mean %v, want ~20µs", st.Mean)
	}
	if st.P99 < st.P50 {
		t.Fatal("quantiles inverted")
	}
	empty := Sessions(trace.NewRecorder(1).Finish(10))
	if empty.Count != 0 || empty.Mean != 0 {
		t.Fatalf("empty stats %+v", empty)
	}
}
