package metrics

import (
	"fmt"
	"sort"
	"strings"

	"distws/internal/sim"
	"distws/internal/trace"
)

// Lifestory renders per-rank activity bars over time — the "lifestory"
// graphic of Saraswat et al. that the paper's §VI relates its traces
// to. Each row is one rank; '#' marks active time, '.' idle time,
// sampled into width buckets over [0, trace.End]. When the trace has
// more ranks than maxRows, evenly spaced ranks are shown.
func Lifestory(tr *trace.Trace, width, maxRows int) string {
	if width < 8 {
		width = 8
	}
	if maxRows < 1 {
		maxRows = 1
	}
	n := tr.Ranks()
	if n == 0 || tr.End == 0 {
		return "(empty trace)\n"
	}
	rows := n
	if rows > maxRows {
		rows = maxRows
	}
	var b strings.Builder
	fmt.Fprintf(&b, "lifestories: %d of %d ranks, %v makespan, '#'=active\n", rows, n, sim.Duration(tr.End))
	for i := 0; i < rows; i++ {
		rank := i * n / rows
		b.WriteString(fmt.Sprintf("%6d |", rank))
		b.WriteString(lifestoryRow(tr, rank, width))
		b.WriteString("|\n")
	}
	return b.String()
}

// lifestoryRow renders one rank's activity into width buckets: a bucket
// is '#' when the rank was active for at least half of it, '+' when
// active for some of it, '.' otherwise.
func lifestoryRow(tr *trace.Trace, rank, width int) string {
	row := make([]byte, width)
	bucket := float64(tr.End) / float64(width)
	transitions := tr.Transitions[rank]
	for i := range row {
		lo := sim.Time(float64(i) * bucket)
		hi := sim.Time(float64(i+1) * bucket)
		if hi > tr.End {
			hi = tr.End
		}
		active := activeWithin(transitions, lo, hi, tr.End)
		span := hi.Sub(lo)
		switch {
		case span > 0 && float64(active) >= 0.5*float64(span):
			row[i] = '#'
		case active > 0:
			row[i] = '+'
		default:
			row[i] = '.'
		}
	}
	return string(row)
}

// activeWithin returns the active time of a rank inside [lo, hi).
func activeWithin(transitions []trace.Transition, lo, hi, end sim.Time) sim.Duration {
	var total sim.Duration
	for i, t := range transitions {
		if t.State != trace.Active {
			continue
		}
		start := t.Time
		stop := end
		if i+1 < len(transitions) {
			stop = transitions[i+1].Time
		}
		if start < lo {
			start = lo
		}
		if stop > hi {
			stop = hi
		}
		if stop > start {
			total += stop.Sub(start)
		}
	}
	return total
}

// SessionStats summarizes the work-discovery sessions of a trace:
// count, mean, and selected quantiles of session duration in seconds.
type SessionStats struct {
	Count          int
	Mean, P50, P99 float64
	// Failed is the total failed steal attempts across sessions.
	Failed int
}

// Sessions computes SessionStats over all ranks of a trace.
func Sessions(tr *trace.Trace) SessionStats {
	var durations []float64
	st := SessionStats{}
	for _, ss := range tr.Sessions {
		for _, s := range ss {
			durations = append(durations, s.Duration().Seconds())
			st.Failed += s.Failed
		}
	}
	st.Count = len(durations)
	if st.Count == 0 {
		return st
	}
	sort.Float64s(durations)
	var sum float64
	for _, d := range durations {
		sum += d
	}
	st.Mean = sum / float64(st.Count)
	st.P50 = durations[st.Count/2]
	st.P99 = durations[st.Count*99/100]
	return st
}
