// Package metrics computes the paper's load-balancing efficiency
// measures from activity traces (§III):
//
//   - workers(t): the number of ranks in an active phase at time t;
//   - the occupancy ratio O(t) = workers(t)/N and its maximum Wmax;
//   - the starting latency SL(x) = min{t : O(t) >= x} / T;
//   - the ending latency EL(x) = (T - max{t : O(t) >= x}) / T.
//
// SL(x) is how quickly, relative to the whole run, the scheduler first
// got a fraction x of the ranks busy; EL(x) is how close to the end it
// last kept them busy. An ideal scheduler has both near zero for x
// close to 1.
package metrics

import (
	"fmt"
	"sort"

	"distws/internal/sim"
	"distws/internal/trace"
)

// OccupancyCurve is the step function workers(t) of one execution.
type OccupancyCurve struct {
	// N is the number of ranks; T the makespan.
	N int
	T sim.Time
	// times[i] is the instant the worker count becomes workers[i]; the
	// count holds until times[i+1] (or T for the last entry). times is
	// strictly increasing and starts at 0 with workers[0] ranks active
	// (normally 0 or 1).
	times   []sim.Time
	workers []int
	wmax    int
}

// Occupancy folds a trace's per-rank transitions into the global
// workers(t) curve.
func Occupancy(tr *trace.Trace) *OccupancyCurve {
	type delta struct {
		t sim.Time
		d int
	}
	var deltas []delta
	for _, rankTr := range tr.Transitions {
		for _, x := range rankTr {
			if x.State == trace.Active {
				deltas = append(deltas, delta{x.Time, +1})
			} else {
				deltas = append(deltas, delta{x.Time, -1})
			}
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].t < deltas[j].t })

	c := &OccupancyCurve{N: tr.Ranks(), T: tr.End}
	cur := 0
	c.times = append(c.times, 0)
	c.workers = append(c.workers, 0)
	for i := 0; i < len(deltas); {
		t := deltas[i].t
		for i < len(deltas) && deltas[i].t == t {
			cur += deltas[i].d
			i++
		}
		if cur < 0 || cur > c.N {
			panic(fmt.Sprintf("metrics: workers(t) = %d outside [0, %d] — corrupt trace", cur, c.N))
		}
		if t == c.times[len(c.times)-1] {
			c.workers[len(c.workers)-1] = cur
		} else {
			c.times = append(c.times, t)
			c.workers = append(c.workers, cur)
		}
		if cur > c.wmax {
			c.wmax = cur
		}
	}
	return c
}

// Wmax returns the maximum number of simultaneously active ranks.
func (c *OccupancyCurve) Wmax() int { return c.wmax }

// MaxOccupancy returns Wmax/N.
func (c *OccupancyCurve) MaxOccupancy() float64 {
	if c.N == 0 {
		return 0
	}
	return float64(c.wmax) / float64(c.N)
}

// WorkersAt returns workers(t).
func (c *OccupancyCurve) WorkersAt(t sim.Time) int {
	// Find the last step at or before t.
	i := sort.Search(len(c.times), func(i int) bool { return c.times[i] > t }) - 1
	if i < 0 {
		return 0
	}
	return c.workers[i]
}

// Steps returns copies of the curve's breakpoints: times[i] is when the
// active count becomes counts[i].
func (c *OccupancyCurve) Steps() (times []sim.Time, counts []int) {
	return append([]sim.Time(nil), c.times...), append([]int(nil), c.workers...)
}

// MeanOccupancy returns the time-averaged occupancy ratio over [0, T]:
// the area under O(t) divided by T. Equal to the parallel efficiency of
// the run when work never idles while resident.
func (c *OccupancyCurve) MeanOccupancy() float64 {
	if c.T == 0 || c.N == 0 {
		return 0
	}
	var area float64
	for i, w := range c.workers {
		end := c.T
		if i+1 < len(c.times) {
			end = c.times[i+1]
		}
		area += float64(w) * float64(end-c.times[i])
	}
	return area / (float64(c.T) * float64(c.N))
}

// threshold converts an occupancy fraction to a worker count, treating
// x as "at least a fraction x of ranks active". x = 0 maps to 1 worker
// (occupancy strictly positive reads better than the trivial 0).
func (c *OccupancyCurve) threshold(x float64) int {
	w := int(float64(c.N) * x)
	if float64(w) < float64(c.N)*x {
		w++
	}
	if w < 1 {
		w = 1
	}
	return w
}

// StartingLatency returns SL(x): the first time the occupancy ratio
// reached x, as a fraction of the makespan. ok is false when the run
// never reached that occupancy (the paper's 8192-rank run never exceeds
// 43%, Figure 5).
func (c *OccupancyCurve) StartingLatency(x float64) (sl float64, ok bool) {
	need := c.threshold(x)
	for i, w := range c.workers {
		if w >= need {
			if c.T == 0 {
				return 0, true
			}
			return float64(c.times[i]) / float64(c.T), true
		}
	}
	return 0, false
}

// EndingLatency returns EL(x): how far before the end of the run the
// occupancy ratio was last at least x, as a fraction of the makespan.
func (c *OccupancyCurve) EndingLatency(x float64) (el float64, ok bool) {
	need := c.threshold(x)
	for i := len(c.workers) - 1; i >= 0; i-- {
		if c.workers[i] >= need {
			// The occupancy holds until the next step (or T).
			end := c.T
			if i+1 < len(c.times) {
				end = c.times[i+1]
			}
			if c.T == 0 {
				return 0, true
			}
			return float64(c.T-end) / float64(c.T), true
		}
	}
	return 0, false
}

// LatencyPoint is one (occupancy, SL, EL) sample of Figures 4/5/12/13.
type LatencyPoint struct {
	Occupancy float64
	SL, EL    float64
	// Reached is false when the run never attained this occupancy; SL
	// and EL are then meaningless.
	Reached bool
}

// LatencyCurve samples SL and EL at the given occupancy fractions.
func (c *OccupancyCurve) LatencyCurve(xs []float64) []LatencyPoint {
	pts := make([]LatencyPoint, len(xs))
	for i, x := range xs {
		sl, ok1 := c.StartingLatency(x)
		el, ok2 := c.EndingLatency(x)
		pts[i] = LatencyPoint{Occupancy: x, SL: sl, EL: el, Reached: ok1 && ok2}
	}
	return pts
}

// OccupancySamples returns evenly spaced occupancy fractions
// 1/n, 2/n, ..., up to max (inclusive), for latency curves.
func OccupancySamples(n int, max float64) []float64 {
	var xs []float64
	for i := 1; i <= n; i++ {
		x := float64(i) / float64(n)
		if x > max+1e-12 {
			break
		}
		xs = append(xs, x)
	}
	return xs
}
