package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"distws/internal/fault"
	"distws/internal/obs"
	"distws/internal/sim"
	"distws/internal/topology"
	"distws/internal/uts"
	"distws/internal/victim"
)

// runDump executes cfg with a fresh metrics registry and returns the
// canonical golden dump — the same byte-exact surface TestGoldenFig9
// gates, so "two runs are equivalent" below always means "every
// externally visible output matches".
func runDump(t *testing.T, cfg Config) []byte {
	t.Helper()
	cfg.Metrics = obs.NewRegistry()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return goldenDump(res, cfg.Metrics)
}

// TestShardedGoldenFig9 is the multi-shard golden gate: the Figure 9
// golden configuration must reproduce the seed-era golden file
// byte-for-byte when partitioned across 2 and 4 shard kernels. With
// shards=1 Run bypasses the sharded path entirely (TestGoldenFig9
// covers it); here every barrier, staging merge, and serialized
// endgame window has to land on the exact sequential outputs.
func TestShardedGoldenFig9(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_fig9.txt"))
	if err != nil {
		t.Fatalf("missing golden file (run TestGoldenFig9 -update first): %v", err)
	}
	for _, shards := range []int{2, 4} {
		cfg := goldenFig9Config()
		cfg.Shards = shards
		got := runDump(t, cfg)
		if !bytes.Equal(got, want) {
			t.Fatalf("shards=%d: sharded run drifted from the sequential golden\n%s",
				shards, diffHint(want, got))
		}
	}
}

// TestShardedDeterminismMatrix pins the shard-count invariance
// contract on Figure-9-style configurations: the same (config, seed)
// run at shards ∈ {1, 2, 3, 4, 8} produces byte-identical canonical
// dumps. Three is deliberately in the set — 96 ranks do not divide
// evenly by it, so the contiguous partition has unequal shards.
func TestShardedDeterminismMatrix(t *testing.T) {
	for _, tc := range []struct {
		name string
		sel  victim.Factory
	}{
		{"DistanceSkewed", victim.NewDistanceSkewed},
		{"RoundRobin", victim.NewRoundRobin},
		{"UniformRandom", victim.NewUniformRandom},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := Config{
				Tree:          uts.MustPreset("H-TINY").Params,
				Ranks:         96,
				Placement:     topology.OnePerNode,
				Selector:      tc.sel,
				Steal:         StealOne,
				Seed:          9,
				CollectTrace:  true,
				CollectEvents: true,
			}
			base.Shards = 1
			want := runDump(t, base)
			for _, shards := range []int{2, 3, 4, 8} {
				cfg := base
				cfg.Shards = shards
				if got := runDump(t, cfg); !bytes.Equal(got, want) {
					t.Fatalf("shards=%d diverged from shards=1\n%s",
						shards, diffHint(want, got))
				}
			}
		})
	}
}

// TestShardedRepeatBitIdentical pins the hard determinism contract on
// an adversarial configuration: 8 ranks per node under distance-skewed
// selection with half-stealing maximizes symmetric same-instant
// collisions (equidistant thieves firing at the same victim in the
// same nanosecond), the one regime where the sharded tie order is
// allowed to differ from the sequential kernel's insertion order. Even
// there, a fixed (config, seed, shards) triple must be bit-identical
// across repetitions — wall-clock interleaving must never leak in.
func TestShardedRepeatBitIdentical(t *testing.T) {
	cfg := Config{
		Tree:          uts.MustPreset("H-TINY").Params,
		Ranks:         96,
		Placement:     topology.EightRoundRobin,
		Selector:      victim.NewDistanceSkewed,
		Steal:         StealHalf,
		Seed:          42,
		Shards:        2,
		CollectTrace:  true,
		CollectEvents: true,
	}
	first := runDump(t, cfg)
	for run := 2; run <= 3; run++ {
		if got := runDump(t, cfg); !bytes.Equal(got, first) {
			t.Fatalf("run %d of identical (config, shards) differed from run 1\n%s",
				run, diffHint(first, got))
		}
	}
}

// TestShardedEquivalenceDensePlacement checks shard-count invariance
// on the dense 8-ranks-per-node placement for the selectors whose
// steal traffic is collision-free there (round-robin and uniform
// random spread requests instead of concentrating them on near
// victims).
func TestShardedEquivalenceDensePlacement(t *testing.T) {
	for _, tc := range []struct {
		name string
		sel  victim.Factory
	}{
		{"RoundRobin", victim.NewRoundRobin},
		{"UniformRandom", victim.NewUniformRandom},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := Config{
				Tree:          uts.MustPreset("H-TINY").Params,
				Ranks:         96,
				Placement:     topology.EightRoundRobin,
				Selector:      tc.sel,
				Steal:         StealHalf,
				Seed:          42,
				CollectTrace:  true,
				CollectEvents: true,
			}
			want := runDump(t, base)
			cfg := base
			cfg.Shards = 2
			if got := runDump(t, cfg); !bytes.Equal(got, want) {
				t.Fatalf("shards=2 diverged from sequential\n%s", diffHint(want, got))
			}
		})
	}
}

// TestShardedCrashPlan runs a crash-only fault plan sharded: windows
// from the first crash onward serialize, so the run must match the
// sequential engine exactly — crashed-rank count, loss accounting, and
// the full dump.
func TestShardedCrashPlan(t *testing.T) {
	base := Config{
		Tree:      uts.MustPreset("H-TINY").Params,
		Ranks:     64,
		Placement: topology.OnePerNode,
		Selector:  victim.NewRoundRobin,
		Steal:     StealOne,
		Seed:      7,
		Faults: &fault.Plan{
			Seed: 3,
			Crashes: []fault.Crash{
				{Rank: 5, At: sim.Time(40 * sim.Microsecond)},
				{Rank: 41, At: sim.Time(90 * sim.Microsecond)},
			},
		},
	}
	want := runDump(t, base)
	for _, shards := range []int{2, 4} {
		cfg := base
		cfg.Shards = shards
		if got := runDump(t, cfg); !bytes.Equal(got, want) {
			t.Fatalf("shards=%d crash run diverged from sequential\n%s",
				shards, diffHint(want, got))
		}
	}
}

// TestShardedComputeStragglerPlan covers the one fault class that runs
// through parallel windows without serializing until detection: pure
// compute stragglers (no crash schedule, no send-path interposer).
func TestShardedComputeStragglerPlan(t *testing.T) {
	base := Config{
		Tree:      uts.MustPreset("H-TINY").Params,
		Ranks:     64,
		Placement: topology.OnePerNode,
		Selector:  victim.NewRoundRobin,
		Steal:     StealOne,
		Seed:      7,
		Faults: &fault.Plan{
			Seed:       3,
			Stragglers: []fault.Straggler{{Rank: 9, Compute: 4}},
		},
	}
	want := runDump(t, base)
	cfg := base
	cfg.Shards = 4
	if got := runDump(t, cfg); !bytes.Equal(got, want) {
		t.Fatalf("sharded straggler run diverged from sequential\n%s", diffHint(want, got))
	}
}

// TestShardedRejects pins the validation and capability boundaries of
// the sharded path.
func TestShardedRejects(t *testing.T) {
	valid := func() Config {
		return Config{
			Tree:      uts.MustPreset("T3S").Params,
			Ranks:     8,
			Placement: topology.OnePerNode,
			Seed:      1,
		}
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"negative", func(c *Config) { c.Shards = -1 }, "shards"},
		{"more shards than ranks", func(c *Config) { c.Shards = 9 }, "must not exceed ranks"},
		{"jitter latency", func(c *Config) {
			c.Shards = 2
			c.Latency = topology.NewJitterLatency(topology.DefaultLatency(), 0.1, 5)
		}, "JitterLatency"},
		{"link faults", func(c *Config) {
			c.Shards = 2
			c.Faults = &fault.Plan{Links: []fault.LinkFault{{From: fault.Wildcard, To: fault.Wildcard, Drop: 0.1}}}
		}, "interposer"},
		{"send straggler", func(c *Config) {
			c.Shards = 2
			c.Faults = &fault.Plan{Stragglers: []fault.Straggler{{Rank: 1, Send: 2}}}
		}, "interposer"},
		{"test probe", func(c *Config) {
			c.Shards = 2
			c.testProbe = func(interface{}) {}
			c.testProbeEvery = sim.Microsecond
		}, "testProbe"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid()
			tc.mut(&cfg)
			_, err := Run(cfg)
			if err == nil {
				t.Fatal("invalid sharded config accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestShardedWindowStress drives many barrier crossings with all the
// concurrent machinery loaded — dense placement, half-stealing,
// metrics, event rings, a crash plan — across several shard counts.
// Its real job is under `make race`: any unsynchronized access in the
// routers, staging queues, shared selector state, or the detector's
// per-rank arrays trips the race detector here.
func TestShardedWindowStress(t *testing.T) {
	for _, shards := range []int{2, 5, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := Config{
				Tree:          uts.MustPreset("H-TINY").Params,
				Ranks:         80,
				Placement:     topology.EightRoundRobin,
				Selector:      victim.NewDistanceSkewed,
				Steal:         StealHalf,
				Seed:          uint64(1000 + shards),
				Shards:        shards,
				CollectTrace:  true,
				CollectEvents: true,
				Faults: &fault.Plan{
					Seed:    11,
					Crashes: []fault.Crash{{Rank: 17, At: sim.Time(2 * sim.Millisecond)}},
				},
			}
			cfg.Metrics = obs.NewRegistry()
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.CrashedRanks != 1 {
				t.Fatalf("crashed ranks %d, want 1", res.CrashedRanks)
			}
			checkAccounting(t, res)
		})
	}
}
