package core

import (
	"bytes"
	"reflect"
	"testing"

	"distws/internal/obs"
	"distws/internal/trace"
	"distws/internal/uts"
	"distws/internal/victim"
)

// TestObserverEffect asserts that turning observability on does not
// perturb the simulation: a run with the event log and a metrics
// registry attached must produce bit-identical results to a bare run of
// the same configuration. This is the contract that makes traces
// trustworthy — what you observe is what would have happened anyway.
func TestObserverEffect(t *testing.T) {
	cfg := Config{
		Tree:     uts.MustPreset("T3").Params,
		Ranks:    16,
		Selector: victim.NewUniformRandom,
		Steal:    StealHalf,
		Seed:     7,
	}
	bare, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	obsCfg := cfg
	obsCfg.CollectTrace = true
	obsCfg.CollectEvents = true
	obsCfg.Metrics = obs.NewRegistry()
	traced, err := Run(obsCfg)
	if err != nil {
		t.Fatal(err)
	}

	// The traced result carries the trace and the session stat derived
	// from it; zero those out, then everything else must match exactly.
	scrub := func(r *Result) Result {
		c := *r
		c.Trace = nil
		c.MeanSessionDuration = 0
		return c
	}
	if !reflect.DeepEqual(scrub(bare), scrub(traced)) {
		t.Fatalf("observability changed the run:\nbare:   %+v\ntraced: %+v", scrub(bare), scrub(traced))
	}
}

// TestEventLogConsistent cross-checks the event log against the
// engine's own counters on a traced run.
func TestEventLogConsistent(t *testing.T) {
	cfg := Config{
		Tree:          uts.MustPreset("T3").Params,
		Ranks:         8,
		Selector:      victim.NewRoundRobin,
		Seed:          3,
		CollectEvents: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("CollectEvents did not imply a trace")
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Trace.TotalEventsDropped() != 0 {
		t.Fatalf("tiny run overflowed the default ring: %d dropped", res.Trace.TotalEventsDropped())
	}
	counts := res.Trace.EventCounts()
	if counts[trace.EvStealSend] != res.StealRequests {
		t.Fatalf("steal-send events %d != requests %d", counts[trace.EvStealSend], res.StealRequests)
	}
	if counts[trace.EvWorkSend] != res.SuccessfulSteals {
		t.Fatalf("work-send events %d != successes %d", counts[trace.EvWorkSend], res.SuccessfulSteals)
	}
	if counts[trace.EvNoWorkRecv] != res.FailedSteals {
		t.Fatalf("nowork-recv events %d != fails %d", counts[trace.EvNoWorkRecv], res.FailedSteals)
	}
	if counts[trace.EvTerminate] != uint64(cfg.Ranks) {
		t.Fatalf("terminate events %d != ranks %d", counts[trace.EvTerminate], cfg.Ranks)
	}
	if counts[trace.EvQuantumStart] == 0 || counts[trace.EvTokenRecv] == 0 {
		t.Fatalf("missing quantum or token events: %v", counts)
	}

	// The reconstructed steal transactions must match the counters too.
	pairs := obs.PairSteals(res.Trace)
	st := obs.StealLatency(pairs)
	if uint64(st.Success) != res.SuccessfulSteals || uint64(st.Refused) != res.FailedSteals {
		t.Fatalf("paired %d success / %d refused, counters say %d / %d",
			st.Success, st.Refused, res.SuccessfulSteals, res.FailedSteals)
	}
	for _, p := range pairs {
		if p.Latency() <= 0 {
			t.Fatalf("non-positive steal latency: %+v", p)
		}
	}
}

// TestMetricsDeterministic runs the same configuration twice with fresh
// registries and requires byte-identical Prometheus exposition: the
// metrics are a pure function of the (virtual-time) run.
func TestMetricsDeterministic(t *testing.T) {
	expo := func() []byte {
		reg := obs.NewRegistry()
		if _, err := Run(Config{
			Tree:     uts.MustPreset("T3").Params,
			Ranks:    16,
			Selector: victim.NewDistanceSkewed,
			Seed:     11,
			Metrics:  reg,
		}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := expo(), expo()
	if !bytes.Equal(a, b) {
		t.Fatalf("registry not deterministic:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	if !bytes.Contains(a, []byte(MetricStealRequests)) ||
		!bytes.Contains(a, []byte(MetricStealLatency+"_count")) ||
		!bytes.Contains(a, []byte(MetricLinkMessages+"{from=")) {
		t.Fatalf("exposition missing expected families:\n%s", a)
	}
}

// TestMetricsMatchCounters checks the registry totals against the
// result counters, and that the matrix is absent past MatrixRankLimit.
func TestMetricsMatchCounters(t *testing.T) {
	reg := obs.NewRegistry()
	res, err := Run(Config{
		Tree:     uts.MustPreset("T3").Params,
		Ranks:    8,
		Selector: victim.NewRoundRobin,
		Seed:     5,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricStealRequests).Value(); got != res.StealRequests {
		t.Fatalf("counter %d != result %d", got, res.StealRequests)
	}
	if got := reg.Counter(MetricStealSuccess).Value(); got != res.SuccessfulSteals {
		t.Fatalf("success counter %d != result %d", got, res.SuccessfulSteals)
	}
	if got := reg.Counter(MetricStealFail).Value(); got != res.FailedSteals {
		t.Fatalf("fail counter %d != result %d", got, res.FailedSteals)
	}
	if got := reg.Histogram(MetricStealLatency).Count(); got != res.SuccessfulSteals+res.FailedSteals+res.AbortedSteals {
		t.Fatalf("latency observations %d != closed steals %d", got,
			res.SuccessfulSteals+res.FailedSteals+res.AbortedSteals)
	}
	m := reg.Matrix(MetricLinkMessages, 8)
	var total uint64
	for i := 0; i < m.N(); i++ {
		for j := 0; j < m.N(); j++ {
			total += m.At(i, j)
		}
	}
	if total == 0 {
		t.Fatal("link matrix empty on an 8-rank run")
	}
}
