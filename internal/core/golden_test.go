package core

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"distws/internal/obs"
	"distws/internal/topology"
	"distws/internal/uts"
	"distws/internal/victim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current implementation")

// goldenFig9Config is a mid-size Figure 9 run: distance-skewed (Tofu)
// victim selection under 1/N placement, the configuration the paper's
// headline result is built from. It is large enough to exercise every
// hot path the performance work touches (steal traffic, token rounds,
// backoff, work transfers) while staying fast enough for CI.
func goldenFig9Config() Config {
	return Config{
		Tree:          uts.MustPreset("H-TINY").Params,
		Ranks:         128,
		Placement:     topology.OnePerNode,
		Selector:      victim.NewDistanceSkewed,
		Steal:         StealOne,
		Seed:          9,
		CollectTrace:  true,
		CollectEvents: true,
	}
}

// goldenDump renders a run's externally visible outputs — the Result
// fields the experiment tables print and the full exported metrics —
// in a canonical text form. Any behavioural drift in the simulation
// substrate shows up as a byte diff here.
func goldenDump(res *Result, reg *obs.Registry) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "[result]\n")
	fmt.Fprintf(&b, "ranks %d placement %v selector %s steal %v detector %s\n",
		res.Ranks, res.Placement, res.Selector, res.Steal, res.Detector)
	fmt.Fprintf(&b, "nodes %d leaves %d maxdepth %d\n", res.Nodes, res.Leaves, res.MaxDepth)
	fmt.Fprintf(&b, "makespan %d sequential %d speedup %.9f efficiency %.9f\n",
		int64(res.Makespan), int64(res.SequentialTime), res.Speedup, res.Efficiency)
	fmt.Fprintf(&b, "steals req %d fail %d success %d aborted %d\n",
		res.StealRequests, res.FailedSteals, res.SuccessfulSteals, res.AbortedSteals)
	fmt.Fprintf(&b, "searchtime %d sessions %d meansession %d\n",
		int64(res.MeanSearchTime), res.Sessions, int64(res.MeanSessionDuration))
	fmt.Fprintf(&b, "chunks %d maxnodes %d minnodes %d imbalance %.9f\n",
		res.ChunksTransferred, res.MaxRankNodes, res.MinRankNodes, res.Imbalance)
	fmt.Fprintf(&b, "rounds %d premature %v\n", res.TerminationRounds, res.Premature)
	fmt.Fprintf(&b, "comm sent %v\n", res.Comm.Sent)
	fmt.Fprintf(&b, "comm bytes %v\n", res.Comm.Bytes)
	fmt.Fprintf(&b, "comm received %v\n", res.Comm.Received)
	if res.Trace != nil {
		fmt.Fprintf(&b, "trace events %v dropped %d\n",
			res.Trace.EventCounts(), res.Trace.TotalEventsDropped())
	}
	fmt.Fprintf(&b, "[prometheus]\n")
	if err := reg.WritePrometheus(&b); err != nil {
		panic(err)
	}
	return b.Bytes()
}

// TestGoldenFig9 extends the observer-effect test into a golden-result
// test: the traced mid-size Fig 9 run must produce byte-identical
// experiment output and exported metrics across every change to the
// simulation substrate. The golden file was generated from the seed
// implementation (container/heap kernel, unpooled messaging, uncached
// latencies); the arena kernel, message pooling, latency cache and
// batched UTS hashing all must reproduce it exactly.
//
// Regenerate (only for a deliberate, documented behaviour change) with:
//
//	go test ./internal/core -run TestGoldenFig9 -update
func TestGoldenFig9(t *testing.T) {
	cfg := goldenFig9Config()
	cfg.Metrics = obs.NewRegistry()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := goldenDump(res, cfg.Metrics)

	path := filepath.Join("testdata", "golden_fig9.txt")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden mismatch: simulation output drifted from the seed behaviour\n%s",
			diffHint(want, got))
	}

	// The observer must still not affect the run: a bare (untraced,
	// unmetered) run of the same config reaches the same result.
	bare := goldenFig9Config()
	bare.CollectTrace, bare.CollectEvents = false, false
	bres, err := Run(bare)
	if err != nil {
		t.Fatal(err)
	}
	if bres.Nodes != res.Nodes || bres.Makespan != res.Makespan ||
		bres.StealRequests != res.StealRequests || bres.FailedSteals != res.FailedSteals {
		t.Fatalf("observer effect: bare run diverged (nodes %d vs %d, makespan %d vs %d)",
			bres.Nodes, res.Nodes, bres.Makespan, res.Makespan)
	}
}

// diffHint locates the first differing line for a readable failure.
func diffHint(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("first diff at line %d:\nwant: %s\ngot:  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line count differs: want %d, got %d", len(wl), len(gl))
}
