package core

import (
	"fmt"

	"distws/internal/comm"
	"distws/internal/obs"
	"distws/internal/sim"
	"distws/internal/term"
	"distws/internal/topology"
	"distws/internal/trace"
	"distws/internal/uts"
	"distws/internal/victim"
	"distws/internal/workstack"
)

// rankState is a rank's scheduling state.
type rankState uint8

const (
	// rsWorking: the rank has work and a quantum event scheduled.
	rsWorking rankState = iota
	// rsSearching: the rank sent a steal request and awaits the reply.
	rsSearching
	// rsBackoff: the rank is idle, pausing between steal attempts.
	rsBackoff
	// rsDone: the rank observed termination.
	rsDone
)

// Backoff controls how idle ranks throttle steal attempts once a long
// run of consecutive failures indicates global work scarcity. The
// reference implementation retries immediately forever; simulating
// 8192 ranks in one address space makes that O(N^2) tail traffic
// prohibitively expensive, so after Threshold consecutive failures the
// thief waits Base, doubling up to Max, resetting on success. Set
// Threshold < 0 to disable (reference-faithful); the ablation bench
// A6 shows the experiment conclusions are insensitive to this knob.
type Backoff struct {
	Threshold int
	Base, Max sim.Duration
}

// DefaultBackoff is used when Config.Backoff is the zero value.
var DefaultBackoff = Backoff{
	Threshold: 64,
	Base:      100 * sim.Microsecond,
	Max:       2 * sim.Millisecond,
}

// rank is the per-rank engine state.
type rank struct {
	state rankState
	stack *workstack.Stack

	// Tree statistics. units is the accumulated expansion cost in
	// NodeCost units (one per child generated, one per leaf).
	nodes, leaves, units uint64
	maxDepth             int32

	// In-progress node expansion, resumable across quanta so that a
	// high-fanout node (e.g. a root with thousands of children) does
	// not create a polling blackout. The node being expanded is staged
	// in gen; expNext < expTotal while children remain to generate.
	gen               uts.ChildGen
	expNext, expTotal int

	// Steal statistics.
	requests, fails, successes uint64
	aborted                    uint64
	// lineage is the migration depth of the work the rank currently
	// holds: 0 for rank 0's root work, and d+1 after accepting a
	// transfer whose loot had depth d. Victims stamp outgoing loot with
	// lineage+1, so steal chains i→j→k are recoverable from transfers.
	lineage       int
	consecFails   int
	backoff       sim.Duration
	pendingVictim int    // victim of the outstanding request
	reqID         uint64 // id of the outstanding request
	waitStart     sim.Time
	idleSince     sim.Time     // start of the current work-discovery session
	searchWait    sim.Duration // total time waiting for replies
	sessions      uint64

	// deferred holds messages delivered mid-quantum that the one-sided
	// protocol does not serve at delivery time (tokens, replies); they
	// are processed at the next poll.
	deferred []*comm.Message

	// quantum is the pending quantum-end event, if any (zero when none).
	quantum sim.Event
	// extraDelay accumulates steal-response packaging costs that push
	// the next quantum start.
	extraDelay sim.Duration
}

type engine struct {
	cfg    Config
	kernel *sim.Kernel
	job    *topology.Job
	net    *comm.Network
	det    term.Detector
	sel    victim.Selector
	rec    *trace.Recorder
	ev     *obs.Recorder  // protocol event rings; nil when disabled
	met    *engineMetrics // registry handles; nil when disabled
	ranks  []rank

	// rankArg[r] is rank r's index boxed once at startup, and
	// quantumEndFn the shared quantum-end callback: together they let
	// startQuantum schedule through the kernel's closure-free AfterArg
	// path instead of allocating a closure per quantum.
	rankArg      []any
	quantumEndFn func(any)

	backoffCfg Backoff

	workSent, workReceived uint64
	nodesSent              uint64
	// migDepths[d] counts accepted transfers whose loot had migration
	// depth d; grown on demand (depths start at 1, so index 0 stays 0).
	migDepths  []uint64
	detectedAt sim.Time
	detected   bool
	doneCount  int
}

// Result summarizes one simulated execution.
type Result struct {
	// Config echo for reports.
	Ranks     int
	Placement topology.Placement
	Selector  string
	Steal     StealPolicy

	// Tree totals, verified against sequential enumeration by tests.
	Nodes    uint64
	Leaves   uint64
	MaxDepth int32

	// Makespan is the virtual time at which termination was detected at
	// rank 0 (what the benchmark's wall clock would report).
	Makespan sim.Duration
	// SequentialTime is the total expansion cost (child generations
	// times NodeCost): the virtual time one rank would need to search
	// the whole tree, the baseline for Speedup and Efficiency.
	SequentialTime sim.Duration
	Speedup        float64
	Efficiency     float64

	// Steal statistics (paper §V-A).
	StealRequests    uint64
	FailedSteals     uint64
	SuccessfulSteals uint64
	// AbortedSteals counts requests abandoned by their timeout (only
	// nonzero when Config.StealTimeout enables aborting steals).
	AbortedSteals uint64
	// MeanSearchTime is the average, over ranks, of the total time each
	// rank spent waiting for steal answers ("search time").
	MeanSearchTime sim.Duration
	// MeanSessionDuration is the average work-discovery session length
	// (Figure 10); zero if tracing was disabled or no sessions exist.
	MeanSessionDuration sim.Duration
	Sessions            uint64

	// ChunksTransferred counts chunks moved by successful steals.
	ChunksTransferred uint64

	// MigrationDepths histograms the work-lineage depth of accepted
	// transfers: MigrationDepths[d] transfers carried loot that had
	// survived d steals since rank 0's root work (depth 1 = stolen
	// straight from the root owner's line). MaxMigrationDepth is the
	// longest steal chain observed.
	MigrationDepths   []uint64
	MaxMigrationDepth int

	// Load imbalance across ranks, as the UTS reports print: the
	// fraction of all nodes expanded by the busiest and laziest rank,
	// and the ratio busiest/mean ("imbalance", 1.0 = perfect).
	MaxRankNodes, MinRankNodes uint64
	Imbalance                  float64

	// Termination detection.
	Detector          string
	TerminationRounds int
	// Premature is true when the detector fired while work remained —
	// possible for the Ring detector with in-flight messages, never for
	// Safra. The node counts are then incomplete.
	Premature bool

	// Comm is the network traffic summary.
	Comm comm.Stats

	// Trace is the activity trace, when Config.CollectTrace was set.
	Trace *trace.Trace
}

// Run executes the configured simulation to termination and returns its
// results. The run is deterministic: identical configurations produce
// identical results.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	job, err := topology.NewJob(cfg.Machine, cfg.Ranks, cfg.Placement)
	if err != nil {
		return nil, err
	}

	e := &engine{
		cfg:        cfg,
		kernel:     sim.NewKernel(),
		job:        job,
		det:        cfg.Detector(cfg.Ranks),
		ranks:      make([]rank, cfg.Ranks),
		backoffCfg: cfg.backoff(),
	}
	e.kernel.SetTimeLimit(cfg.MaxVirtualTime)
	e.net = comm.New(e.kernel, job, cfg.Latency)
	e.sel = cfg.Selector(job, cfg.Seed)
	if cfg.CollectTrace || cfg.CollectEvents {
		// The event log rides on the trace, so CollectEvents implies it.
		e.rec = trace.NewRecorder(cfg.Ranks)
	}
	if cfg.CollectEvents {
		e.ev = obs.NewRecorder(cfg.Ranks, cfg.EventBuffer)
	}
	e.met = newEngineMetrics(cfg.Metrics, cfg.Ranks)
	e.rankArg = make([]any, cfg.Ranks)
	e.quantumEndFn = func(a any) { e.quantumEnd(a.(int)) }
	for i := range e.rankArg {
		e.rankArg[i] = i
	}
	for i := range e.ranks {
		e.ranks[i].stack = workstack.New(cfg.ChunkSize)
		e.ranks[i].pendingVictim = -1
		r := i
		e.net.SetNotify(r, func() { e.onDelivery(r) })
	}

	// Rank 0 owns the root; everyone else starts searching at t = 0.
	root := cfg.Tree.Root()
	e.ranks[0].stack.Push(root)
	e.recordState(0, 0, trace.Active)
	e.startQuantum(0)
	for r := 1; r < cfg.Ranks; r++ {
		e.goIdle(r)
	}

	if cfg.testProbe != nil && cfg.testProbeEvery > 0 {
		var tick func()
		tick = func() {
			cfg.testProbe(e)
			if !e.detected {
				e.kernel.After(cfg.testProbeEvery, tick)
			}
		}
		e.kernel.After(cfg.testProbeEvery, tick)
	}

	if err := e.kernel.Run(); err != nil {
		return nil, fmt.Errorf("core: simulation aborted at virtual %v after %d events: %w",
			e.kernel.Now(), e.kernel.Dispatched(), err)
	}
	if !e.detected {
		return nil, fmt.Errorf("core: event queue drained without termination detection")
	}
	return e.result(), nil
}

// backoff resolves the backoff policy from the config.
func (c Config) backoff() Backoff {
	// The zero value selects the default; Threshold < 0 disables.
	if (c.BackoffPolicy == Backoff{}) {
		return DefaultBackoff
	}
	return c.BackoffPolicy
}

func (e *engine) recordState(r int, t sim.Time, s trace.State) {
	if e.rec != nil {
		e.rec.Record(r, t, s)
	}
}

// startQuantum expands up to PollInterval nodes from rank r's stack and
// schedules the quantum-end event after the corresponding virtual
// compute time (plus any accumulated steal-response overhead). The
// stack mutation happens eagerly; it becomes observable to thieves at
// quantum end, which is when the rank polls its mailbox — matching a
// two-sided MPI process that only makes communication progress between
// node expansions.
func (e *engine) startQuantum(r int) {
	rk := &e.ranks[r]
	rk.state = rsWorking
	e.ev.Record(r, e.kernel.Now(), trace.EvQuantumStart, -1, int64(rk.stack.Len()))
	// Expansion cost is dominated by child generation (one hash chain
	// per child), so a leaf costs one unit and an internal node one
	// unit per child. Child generation is resumable: a quantum ends
	// after PollInterval units even in the middle of a high-fanout
	// node, so the rank keeps polling at a bounded period.
	start := rk.units
	for rk.units-start < uint64(e.cfg.PollInterval) {
		if rk.expNext < rk.expTotal {
			rk.stack.Push(rk.gen.Child(rk.expNext))
			rk.expNext++
			rk.units++
			continue
		}
		node, ok := rk.stack.Pop()
		if !ok {
			break
		}
		rk.nodes++
		if node.Height > rk.maxDepth {
			rk.maxDepth = node.Height
		}
		nchild := rk.gen.Reset(e.cfg.Tree, &node)
		if nchild == 0 {
			rk.leaves++
			rk.units++
			continue
		}
		rk.expNext = 0
		rk.expTotal = nchild
	}
	dur := sim.Duration(rk.units-start)*e.cfg.NodeCost + rk.extraDelay
	rk.extraDelay = 0
	rk.quantum = e.kernel.AfterArg(dur, e.quantumEndFn, e.rankArg[r])
}

func (e *engine) quantumEnd(r int) {
	rk := &e.ranks[r]
	rk.quantum = sim.Event{}
	if rk.state == rsDone {
		return
	}
	e.ev.Record(r, e.kernel.Now(), trace.EvQuantumEnd, -1, int64(rk.units))
	e.pollMailbox(r)
	if rk.state == rsDone {
		return
	}
	if !rk.stack.Empty() || rk.expNext < rk.expTotal {
		e.startQuantum(r)
		return
	}
	e.goIdle(r)
}

// goIdle transitions rank r from working (or initial state) to idle:
// trace the phase change, open a work-discovery session, let the
// termination detector act, then start searching for a victim.
func (e *engine) goIdle(r int) {
	rk := &e.ranks[r]
	now := e.kernel.Now()
	rk.state = rsBackoff // idle until sendSteal marks it searching
	rk.extraDelay = 0    // request-handling debt is moot once idle
	rk.idleSince = now
	e.recordState(r, now, trace.Idle)
	if e.rec != nil {
		e.rec.BeginSession(r, now)
	}
	rk.sessions++
	e.forwardTokens(e.det.OnIdle(r))
	if e.checkTermination() {
		return
	}
	if e.cfg.Ranks == 1 {
		// No one to steal from; wait for the detector (which must have
		// fired above for a single rank).
		rk.state = rsBackoff
		return
	}
	e.sendSteal(r)
}

// sendSteal picks the next victim and posts a steal request, arming the
// abort timer when aborting steals are enabled.
func (e *engine) sendSteal(r int) {
	rk := &e.ranks[r]
	v := e.sel.Next(r)
	rk.pendingVictim = v
	rk.reqID++
	id := rk.reqID
	rk.requests++
	rk.waitStart = e.kernel.Now()
	rk.state = rsSearching
	e.ev.Record(r, rk.waitStart, trace.EvStealSend, v, int64(id))
	if e.met != nil {
		e.met.stealRequests.Inc()
	}
	e.met.link(r, v)
	e.net.SendID(r, v, comm.TagStealRequest, id, 16)
	if e.cfg.StealTimeout > 0 {
		e.kernel.After(e.cfg.StealTimeout, func() { e.abortSteal(r, v, id) })
	}
}

// abortSteal gives up on an outstanding request whose reply is late
// (aborting steals, Dinan et al.). A late work reply is still accepted
// if it ever arrives.
func (e *engine) abortSteal(r, v int, id uint64) {
	rk := &e.ranks[r]
	if rk.state != rsSearching || rk.reqID != id {
		return // the reply arrived, or this rank moved on
	}
	now := e.kernel.Now()
	rk.searchWait += now.Sub(rk.waitStart)
	rk.aborted++
	rk.consecFails++
	rk.pendingVictim = -1
	e.ev.Record(r, now, trace.EvStealAbort, v, int64(id))
	if e.met != nil {
		e.met.stealAborted.Inc()
		e.met.stealLatency.Observe(int64(now.Sub(rk.waitStart)))
	}
	e.sel.Observe(r, v, false)
	if e.rec != nil {
		e.rec.SessionAttempt(r, true)
	}
	e.retryOrBackoff(r)
}

// onDelivery is the network notify hook: it runs at message delivery
// time. Idle ranks handle traffic immediately, like an MPI process
// spinning on probe. Working ranks normally wait for their next poll;
// under the one-sided protocol, steal requests are served right away
// (the "NIC" answers without interrupting the computation) and other
// traffic is deferred to the poll.
func (e *engine) onDelivery(r int) {
	rk := &e.ranks[r]
	if rk.state == rsWorking {
		if e.cfg.Protocol == OneSided {
			for _, m := range e.net.Poll(r) {
				if m.Tag == comm.TagStealRequest {
					e.handle(r, m)
					e.net.Free(m)
				} else {
					rk.deferred = append(rk.deferred, m)
				}
			}
		}
		return
	}
	e.pollMailbox(r)
}

// pollMailbox drains and handles all delivered (and deferred) messages
// for rank r. Handling never re-enters a poll of the same rank (sends
// deliver at least 1ns later), so the network's Poll scratch can be
// walked in place and each message freed as soon as it is handled.
func (e *engine) pollMailbox(r int) {
	rk := &e.ranks[r]
	if len(rk.deferred) > 0 {
		msgs := rk.deferred
		rk.deferred = rk.deferred[:0]
		for _, m := range msgs {
			e.handle(r, m)
			e.net.Free(m)
		}
	}
	for _, m := range e.net.Poll(r) {
		e.handle(r, m)
		e.net.Free(m)
	}
}

func (e *engine) handle(r int, m *comm.Message) {
	rk := &e.ranks[r]
	switch m.Tag {
	case comm.TagStealRequest:
		e.handleStealRequest(r, m.From, m.ID)

	case comm.TagWork:
		if rk.state == rsDone {
			// A work message can be in flight past a (Ring-detected)
			// termination; dropping it leaves workSent != workReceived,
			// which flags the run as premature.
			return
		}
		now := e.kernel.Now()
		// Work is always accepted — even a reply to an aborted request
		// (the nodes would otherwise be lost). Safra's counters must see
		// every accepted transfer.
		e.workReceived++
		e.det.WorkReceived(r)
		e.sel.Observe(r, m.From, true)
		rk.successes++
		rk.consecFails = 0
		rk.backoff = 0
		// Work lineage: the loot's migration depth becomes the rank's
		// (also when banking a late reply below — the banked nodes mix
		// into the stack, and the freshest transfer wins).
		rk.lineage = m.Lineage
		e.noteMigration(m.Lineage)
		e.ev.Record(r, now, trace.EvWorkRecv, m.From, int64(len(m.Nodes)))
		if e.met != nil {
			e.met.stealSuccess.Inc()
		}
		switch rk.state {
		case rsSearching, rsBackoff:
			if rk.state == rsSearching && m.ID == rk.reqID {
				rk.searchWait += now.Sub(rk.waitStart)
				if e.met != nil {
					e.met.stealLatency.Observe(int64(now.Sub(rk.waitStart)))
				}
			}
			rk.pendingVictim = -1
			if e.rec != nil {
				e.rec.SessionAttempt(r, false)
				e.rec.EndSession(r, now, true)
			}
			if e.met != nil {
				e.met.session.Observe(int64(now.Sub(rk.idleSince)))
			}
			e.recordState(r, now, trace.Active)
			rk.stack.Acquire(m.Nodes)
			e.startQuantum(r)
		case rsWorking:
			// Late reply to an aborted request: just bank the nodes.
			rk.stack.Acquire(m.Nodes)
		}

	case comm.TagNoWork:
		if rk.state == rsDone {
			return
		}
		if rk.state != rsSearching || m.ID != rk.reqID {
			// Stale reply to an aborted request.
			return
		}
		now := e.kernel.Now()
		rk.searchWait += now.Sub(rk.waitStart)
		rk.fails++
		rk.consecFails++
		rk.pendingVictim = -1
		e.ev.Record(r, now, trace.EvNoWorkRecv, m.From, int64(m.ID))
		if e.met != nil {
			e.met.stealFail.Inc()
			e.met.stealLatency.Observe(int64(now.Sub(rk.waitStart)))
		}
		e.sel.Observe(r, m.From, false)
		if e.rec != nil {
			e.rec.SessionAttempt(r, true)
		}
		e.retryOrBackoff(r)

	case comm.TagToken:
		e.ev.Record(r, e.kernel.Now(), trace.EvTokenRecv, m.From, 0)
		if e.met != nil {
			e.met.tokenHops.Inc()
		}
		idle := rk.state != rsWorking
		e.forwardTokens(e.det.OnToken(r, m.Token, idle))
		e.checkTermination()

	case comm.TagTerminate:
		e.finishRank(r)

	default:
		panic(fmt.Sprintf("core: unexpected tag %v", m.Tag))
	}
}

// handleStealRequest answers thief's request against rank v's stack.
func (e *engine) handleStealRequest(v, thief int, id uint64) {
	rk := &e.ranks[v]
	now := e.kernel.Now()
	e.ev.Record(v, now, trace.EvStealRecv, thief, int64(id))
	if rk.state == rsDone {
		// Termination already detected; the thief will receive its own
		// terminate message. Answer no-work to be safe.
		e.ev.Record(v, now, trace.EvNoWorkSend, thief, int64(id))
		e.met.link(v, thief)
		e.net.SendID(v, thief, comm.TagNoWork, id, 16)
		return
	}
	// Answering costs the victim compute time whether or not it has
	// work to give; the flood of failed steals the paper measures
	// (Figure 7) slows victims down through exactly this term. Idle
	// victims answer from otherwise-wasted time, and under the
	// one-sided protocol the network hardware serves the request, so
	// only working two-sided ranks accrue the delay.
	twoSided := e.cfg.Protocol == TwoSided
	if twoSided && rk.state == rsWorking {
		rk.extraDelay += e.cfg.HandleRequestCost
	}
	var loot []uts.Node
	var chunks int
	switch e.cfg.Steal {
	case StealHalf:
		loot, chunks = rk.stack.StealHalf()
	default:
		loot, chunks = rk.stack.StealOne()
	}
	if chunks == 0 {
		e.ev.Record(v, now, trace.EvNoWorkSend, thief, int64(id))
		e.met.link(v, thief)
		e.net.SendID(v, thief, comm.TagNoWork, id, 16)
		return
	}
	e.det.WorkSent(v)
	e.workSent++
	e.nodesSent += uint64(len(loot))
	if twoSided {
		rk.extraDelay += e.cfg.StealResponseCost
	}
	e.ev.Record(v, now, trace.EvWorkSend, thief, int64(len(loot)))
	e.met.link(v, thief)
	if e.met != nil {
		e.met.chunkNodes.Observe(int64(len(loot)))
	}
	e.net.SendNodes(v, thief, id, loot, rk.lineage+1, len(loot)*uts.NodeBytes)
}

// noteMigration tallies one accepted transfer at the given migration
// depth, growing the histogram on demand.
func (e *engine) noteMigration(depth int) {
	if depth < 0 {
		depth = 0
	}
	for len(e.migDepths) <= depth {
		e.migDepths = append(e.migDepths, 0)
	}
	e.migDepths[depth]++
}

// retryOrBackoff continues an idle rank's search, inserting a pause
// once consecutive failures pass the backoff threshold.
func (e *engine) retryOrBackoff(r int) {
	rk := &e.ranks[r]
	b := e.backoffCfg
	if b.Threshold < 0 || rk.consecFails < b.Threshold {
		e.sendSteal(r)
		return
	}
	if rk.backoff == 0 {
		rk.backoff = b.Base
	} else if rk.backoff < b.Max {
		rk.backoff *= 2
		if rk.backoff > b.Max {
			rk.backoff = b.Max
		}
	}
	rk.state = rsBackoff
	e.kernel.After(rk.backoff, func() {
		if e.ranks[r].state == rsBackoff {
			e.sendSteal(r)
		}
	})
}

// forwardTokens transmits detector-emitted tokens on the ring.
func (e *engine) forwardTokens(sends []term.Send) {
	for _, s := range sends {
		// The sender is the ring predecessor of the destination.
		from := (s.To - 1 + e.cfg.Ranks) % e.cfg.Ranks
		e.ev.Record(from, e.kernel.Now(), trace.EvTokenSend, s.To, 0)
		e.met.link(from, s.To)
		e.net.SendToken(from, s.To, s.Token, term.TokenBytes)
	}
}

// checkTermination broadcasts termination once the detector fires.
// It returns true if termination has been detected.
func (e *engine) checkTermination() bool {
	if !e.det.Terminated() {
		return e.detected
	}
	if e.detected {
		return true
	}
	e.detected = true
	e.detectedAt = e.kernel.Now()
	// Detection happens at rank 0 for both detectors.
	e.finishRank(0)
	for r := 1; r < e.cfg.Ranks; r++ {
		e.net.SendID(0, r, comm.TagTerminate, 0, 8)
	}
	return true
}

// finishRank marks r done and closes its trace state.
func (e *engine) finishRank(r int) {
	rk := &e.ranks[r]
	if rk.state == rsDone {
		return
	}
	now := e.kernel.Now()
	e.ev.Record(r, now, trace.EvTerminate, -1, 0)
	if e.rec != nil && rk.state != rsWorking {
		e.rec.EndSession(r, now, false)
	}
	e.kernel.Cancel(rk.quantum) // no-op when no quantum is pending
	rk.quantum = sim.Event{}
	rk.state = rsDone
	e.doneCount++
}

// result assembles the Result after the kernel drains.
func (e *engine) result() *Result {
	res := &Result{
		Ranks:     e.cfg.Ranks,
		Placement: e.cfg.Placement,
		Selector:  e.sel.Name(),
		Steal:     e.cfg.Steal,
		Detector:  e.det.Name(),
		Makespan:  sim.Duration(e.detectedAt),
		Comm:      e.net.Stats(),
	}
	var totalSearch sim.Duration
	var remaining int
	var totalUnits uint64
	res.MinRankNodes = ^uint64(0)
	for i := range e.ranks {
		rk := &e.ranks[i]
		res.Nodes += rk.nodes
		res.Leaves += rk.leaves
		totalUnits += rk.units
		if rk.nodes > res.MaxRankNodes {
			res.MaxRankNodes = rk.nodes
		}
		if rk.nodes < res.MinRankNodes {
			res.MinRankNodes = rk.nodes
		}
		if rk.maxDepth > res.MaxDepth {
			res.MaxDepth = rk.maxDepth
		}
		res.StealRequests += rk.requests
		res.FailedSteals += rk.fails
		res.SuccessfulSteals += rk.successes
		res.AbortedSteals += rk.aborted
		res.Sessions += rk.sessions
		totalSearch += rk.searchWait
		remaining += rk.stack.Len()
		res.ChunksTransferred += rk.stack.Stats().ChunksAcquired
	}
	res.MeanSearchTime = totalSearch / sim.Duration(e.cfg.Ranks)
	res.SequentialTime = sim.Duration(totalUnits) * e.cfg.NodeCost
	if res.Makespan > 0 {
		res.Speedup = float64(res.SequentialTime) / float64(res.Makespan)
		res.Efficiency = res.Speedup / float64(e.cfg.Ranks)
	}
	if res.Nodes > 0 {
		mean := float64(res.Nodes) / float64(e.cfg.Ranks)
		res.Imbalance = float64(res.MaxRankNodes) / mean
	}
	res.MigrationDepths = e.migDepths
	res.MaxMigrationDepth = len(e.migDepths) - 1
	if res.MaxMigrationDepth < 0 {
		res.MaxMigrationDepth = 0
	}
	res.TerminationRounds = e.det.Rounds()
	res.Premature = remaining > 0 || e.workSent != e.workReceived
	if e.rec != nil {
		res.Trace = e.rec.Finish(e.detectedAt)
		if d, ok := res.Trace.MeanSessionDuration(); ok {
			res.MeanSessionDuration = d
		}
		e.ev.Attach(res.Trace)
	}
	return res
}
