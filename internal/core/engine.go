package core

import (
	"fmt"

	"distws/internal/comm"
	"distws/internal/fault"
	"distws/internal/obs"
	"distws/internal/obs/parprof"
	"distws/internal/serve"
	"distws/internal/sim"
	"distws/internal/term"
	"distws/internal/topology"
	"distws/internal/trace"
	"distws/internal/uts"
	"distws/internal/victim"
	"distws/internal/workstack"
)

// rankState is a rank's scheduling state.
type rankState uint8

const (
	// rsWorking: the rank has work and a quantum event scheduled.
	rsWorking rankState = iota
	// rsSearching: the rank sent a steal request and awaits the reply.
	rsSearching
	// rsBackoff: the rank is idle, pausing between steal attempts.
	rsBackoff
	// rsDone: the rank observed termination.
	rsDone
	// rsCrashed: the rank fail-stopped (fault injection); it never acts
	// again and everything addressed to it is discarded on arrival.
	rsCrashed
)

// Backoff controls how idle ranks throttle steal attempts once a long
// run of consecutive failures indicates global work scarcity. The
// reference implementation retries immediately forever; simulating
// 8192 ranks in one address space makes that O(N^2) tail traffic
// prohibitively expensive, so after Threshold consecutive failures the
// thief waits Base, doubling up to Max, resetting on success. Set
// Threshold < 0 to disable (reference-faithful); the ablation bench
// A6 shows the experiment conclusions are insensitive to this knob.
type Backoff struct {
	Threshold int
	Base, Max sim.Duration

	// BlacklistAfter and BlacklistFor extend the policy under a fault
	// plan: after BlacklistAfter consecutive timeouts against the same
	// victim, the thief stops picking it for BlacklistFor of virtual
	// time (a crashed rank never answers, so retrying it is pure
	// waste). Zero values select the defaults below. Without a fault
	// plan the fields are ignored — fault-free timeouts come from the
	// aborting-steals ablation, where the victim is alive and merely
	// slow, and skipping it would change the experiment.
	BlacklistAfter int
	BlacklistFor   sim.Duration
}

// DefaultBackoff is used when Config.Backoff is the zero value.
var DefaultBackoff = Backoff{
	Threshold:      64,
	Base:           100 * sim.Microsecond,
	Max:            2 * sim.Millisecond,
	BlacklistAfter: 2,
	BlacklistFor:   1 * sim.Millisecond,
}

// rank is the per-rank engine state.
type rank struct {
	state rankState
	stack *workstack.Stack

	// Tree statistics. units is the accumulated expansion cost in
	// NodeCost units (one per child generated, one per leaf).
	nodes, leaves, units uint64
	maxDepth             int32
	// generated counts nodes this rank materialized: rank 0's root plus
	// every child it pushed. Summed over ranks it bounds the whole
	// tree; under fault injection the accounting invariant is
	// completed + lost == generated.
	generated uint64

	// In-progress node expansion, resumable across quanta so that a
	// high-fanout node (e.g. a root with thousands of children) does
	// not create a polling blackout. The node being expanded is staged
	// in gen; expNext < expTotal while children remain to generate.
	gen               uts.ChildGen
	expNext, expTotal int

	// Steal statistics.
	requests, fails, successes uint64
	aborted                    uint64
	// lineage is the migration depth of the work the rank currently
	// holds: 0 for rank 0's root work, and d+1 after accepting a
	// transfer whose loot had depth d. Victims stamp outgoing loot with
	// lineage+1, so steal chains i→j→k are recoverable from transfers.
	lineage       int
	consecFails   int
	backoff       sim.Duration
	pendingVictim int    // victim of the outstanding request
	reqID         uint64 // id of the outstanding request
	waitStart     sim.Time
	idleSince     sim.Time     // start of the current work-discovery session
	searchWait    sim.Duration // total time waiting for replies
	sessions      uint64

	// deferred holds messages delivered mid-quantum that the one-sided
	// protocol does not serve at delivery time (tokens, replies); they
	// are processed at the next poll.
	deferred []*comm.Message

	// quantum is the pending quantum-end event, if any (zero when none).
	quantum sim.Event
	// extraDelay accumulates steal-response packaging costs that push
	// the next quantum start.
	extraDelay sim.Duration

	// consecTimeouts counts steal timeouts since the last reply, and
	// lastAborted flags that the next request is a post-timeout retry
	// (traced as EvStealRetry).
	consecTimeouts int
	lastAborted    bool

	// Fault-injection state; the maps are allocated (and the fields
	// touched) only when a fault plan is active.
	crashedAt    sim.Time
	lostNodes    uint64
	timeouts     map[int]int      // per-victim consecutive timeouts
	blackUntil   map[int]sim.Time // victim → blacklisted until
	blacklists   uint64
	recovering   bool     // a steal timed out; work not yet refound
	recoverStart sim.Time // when the first timeout of the outage hit
}

type engine struct {
	cfg    Config
	kernel *sim.Kernel
	job    *topology.Job
	net    *comm.Network
	det    term.Detector
	sel    victim.Selector
	rec    *trace.Recorder
	ev     *obs.Recorder  // protocol event rings; nil when disabled
	met    *engineMetrics // registry handles; nil when disabled
	ranks  []rank

	// rankArg[r] is rank r's index boxed once at startup, and
	// quantumEndFn the shared quantum-end callback: together they let
	// startQuantum schedule through the kernel's closure-free AfterArg
	// path instead of allocating a closure per quantum.
	rankArg      []any
	quantumEndFn func(any)

	backoffCfg Backoff

	// Fault injection. inj is nil for fault-free runs, keeping every
	// hot path on its existing branch-free course; blAfter/blFor are
	// the resolved blacklist policy and reprobeFn the shared deferred
	// lone-survivor check (see scheduleReprobe).
	inj       *fault.Injector
	blAfter   int
	blFor     sim.Duration
	reprobeFn func()

	crashes      int
	lostNodes    uint64
	lostMsgs     uint64
	tokenRegens  uint64
	recoveries   uint64
	recoverTotal sim.Duration

	workSent, workReceived uint64
	nodesSent              uint64
	// migDepths[d] counts accepted transfers whose loot had migration
	// depth d; grown on demand (depths start at 1, so index 0 stays 0).
	migDepths  []uint64
	detectedAt sim.Time
	detected   bool
	doneCount  int

	// sv is the open-system serving state (engine_serve.go): nil for
	// closed-system runs, shared across the shard engines of a sharded
	// serving run. svDelta and svLastDec are this engine's per-window
	// job-accounting deltas, folded at barriers (sharded runs only).
	sv        *serveState
	svDelta   []int64
	svLastDec []sim.Time

	// par links the engine into a sharded run (engine_par.go): nil for
	// sequential runs, where every field above is engine-global. In a
	// sharded run each shard owns one engine; ranks, det, sel, rec, ev
	// and met are shared across the shard engines while the counters
	// above are per-shard partial sums merged by mergeTotals.
	par *parShared
}

// Result summarizes one simulated execution.
type Result struct {
	// Config echo for reports.
	Ranks     int
	Placement topology.Placement
	Selector  string
	Steal     StealPolicy

	// Tree totals, verified against sequential enumeration by tests.
	Nodes    uint64
	Leaves   uint64
	MaxDepth int32

	// Makespan is the virtual time at which termination was detected at
	// rank 0 (what the benchmark's wall clock would report).
	Makespan sim.Duration
	// SequentialTime is the total expansion cost (child generations
	// times NodeCost): the virtual time one rank would need to search
	// the whole tree, the baseline for Speedup and Efficiency.
	SequentialTime sim.Duration
	Speedup        float64
	Efficiency     float64

	// Steal statistics (paper §V-A).
	StealRequests    uint64
	FailedSteals     uint64
	SuccessfulSteals uint64
	// AbortedSteals counts requests abandoned by their timeout (only
	// nonzero when Config.StealTimeout enables aborting steals).
	AbortedSteals uint64
	// MeanSearchTime is the average, over ranks, of the total time each
	// rank spent waiting for steal answers ("search time").
	MeanSearchTime sim.Duration
	// MeanSessionDuration is the average work-discovery session length
	// (Figure 10); zero if tracing was disabled or no sessions exist.
	MeanSessionDuration sim.Duration
	Sessions            uint64

	// ChunksTransferred counts chunks moved by successful steals.
	ChunksTransferred uint64

	// MigrationDepths histograms the work-lineage depth of accepted
	// transfers: MigrationDepths[d] transfers carried loot that had
	// survived d steals since rank 0's root work (depth 1 = stolen
	// straight from the root owner's line). MaxMigrationDepth is the
	// longest steal chain observed.
	MigrationDepths   []uint64
	MaxMigrationDepth int

	// Load imbalance across ranks, as the UTS reports print: the
	// fraction of all nodes expanded by the busiest and laziest rank,
	// and the ratio busiest/mean ("imbalance", 1.0 = perfect).
	MaxRankNodes, MinRankNodes uint64
	Imbalance                  float64

	// Termination detection.
	Detector          string
	TerminationRounds int
	// Premature is true when the detector fired while work remained —
	// possible for the Ring detector with in-flight messages, never for
	// Safra. The node counts are then incomplete.
	Premature bool

	// Comm is the network traffic summary.
	Comm comm.Stats

	// NodesGenerated is the number of tree nodes materialized across
	// all ranks (rank 0's root plus every child pushed). Fault-free it
	// equals Nodes; under fault injection the shortfall is exactly the
	// work that died: Nodes + LostNodes == NodesGenerated.
	NodesGenerated uint64

	// Fault-injection summary, populated only when Config.Faults was
	// active (all zero / nil otherwise).
	CrashedRanks int
	// LostNodes counts nodes destroyed by faults: stacks wiped by
	// crashes plus loot in work messages that were dropped or
	// dead-lettered at a crashed rank.
	LostNodes uint64
	// LostMessages counts work messages that were never processed.
	LostMessages uint64
	// TokenRegens counts termination tokens regenerated after a crash
	// took one down (or took the ring initiator).
	TokenRegens uint64
	// Recoveries counts outages survived by thieves: episodes from a
	// first steal timeout to the next successful work receipt.
	// MeanRecoveryLatency averages their durations.
	Recoveries          uint64
	MeanRecoveryLatency sim.Duration
	// PerRankFaults is the per-rank fault table.
	PerRankFaults []RankFault

	// Trace is the activity trace, when Config.CollectTrace was set.
	Trace *trace.Trace

	// Serve is the serving summary, when Config.Serve was set (nil
	// otherwise): per-tenant arrival/admission/completion counts,
	// sojourn percentiles, goodput and the Jain fairness index.
	Serve *serve.Stats

	// Par is the parallel-kernel window ledger, when Config.ParProfile
	// was set (nil otherwise). For sequential runs (Shards <= 1) it is
	// the empty degenerate ledger: one shard, no windows. The ledger is
	// excluded from every determinism artifact the engine emits — the
	// golden registry dumps and observer-freedom comparisons never see
	// it — but is itself bit-deterministic for a fixed (Config, Shards).
	Par *parprof.Ledger
}

// RankFault is one rank's row in the fault table.
type RankFault struct {
	Rank    int
	Crashed bool
	// CrashedAt is the virtual time of death (-1 if it survived).
	CrashedAt sim.Time
	// LostNodes counts nodes this rank owned that died: its stack at
	// crash time, plus loot it sent that was dropped or dead-lettered.
	LostNodes uint64
	// Timeouts and Blacklists count this rank's steal timeouts and the
	// victims it temporarily blacklisted after repeated timeouts.
	Timeouts   uint64
	Blacklists uint64
}

// Run executes the configured simulation to termination and returns its
// results. The run is deterministic: identical configurations produce
// identical results.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	job, err := topology.NewJob(cfg.Machine, cfg.Ranks, cfg.Placement)
	if err != nil {
		return nil, err
	}
	if cfg.Shards > 1 {
		return runSharded(cfg, job)
	}

	e := &engine{
		cfg:        cfg,
		kernel:     sim.NewKernel(),
		job:        job,
		det:        cfg.Detector(cfg.Ranks),
		ranks:      make([]rank, cfg.Ranks),
		backoffCfg: cfg.backoff(),
	}
	e.kernel.SetTimeLimit(cfg.MaxVirtualTime)
	e.net = comm.New(e.kernel, job, cfg.Latency)
	e.sel = cfg.Selector(job, cfg.Seed)
	inj, err := fault.Compile(cfg.Faults, cfg.Ranks, e.kernel)
	if err != nil {
		return nil, err
	}
	e.inj = inj
	sv, err := compileServe(cfg)
	if err != nil {
		return nil, err
	}
	if sv != nil {
		e.sv = sv
		e.det = openDetector{}
		sv.resolveFn = e.svResolve
	}
	if cfg.CollectTrace || cfg.CollectEvents {
		// The event log rides on the trace, so CollectEvents implies it.
		e.rec = trace.NewRecorder(cfg.Ranks)
	}
	if cfg.CollectEvents {
		e.ev = obs.NewRecorder(cfg.Ranks, cfg.EventBuffer)
	}
	e.met = newEngineMetrics(cfg.Metrics, cfg.Ranks, inj != nil, cfg.serveTenants())
	e.rankArg = make([]any, cfg.Ranks)
	e.quantumEndFn = func(a any) { e.quantumEnd(a.(int)) }
	for i := range e.rankArg {
		e.rankArg[i] = i
	}
	for i := range e.ranks {
		e.ranks[i].stack = workstack.New(cfg.ChunkSize)
		e.ranks[i].pendingVictim = -1
		r := i
		e.net.SetNotify(r, func() { e.onDelivery(r) })
	}
	if inj != nil {
		e.blAfter, e.blFor = e.backoffCfg.BlacklistAfter, e.backoffCfg.BlacklistFor
		if e.blAfter <= 0 {
			e.blAfter = DefaultBackoff.BlacklistAfter
		}
		if e.blFor <= 0 {
			e.blFor = DefaultBackoff.BlacklistFor
		}
		e.reprobeFn = e.reprobeSurvivor
		for i := range e.ranks {
			e.ranks[i].crashedAt = -1
			e.ranks[i].timeouts = make(map[int]int)
			e.ranks[i].blackUntil = make(map[int]sim.Time)
		}
		// Crash-only plans skip the interposer entirely; link faults
		// and straggler send multipliers need it on the send path.
		if inj.NeedsInterposer() {
			inj.OnDrop = e.onMessageDrop
			inj.OnDup = e.onMessageDup
			e.net.SetInterposer(inj)
		}
		for _, c := range cfg.Faults.SortedCrashes() {
			c := c
			e.kernel.At(c.At, func() { e.crashRank(c.Rank) })
		}
	}

	if e.sv == nil {
		// Rank 0 owns the root; everyone else starts searching at t = 0.
		root := cfg.Tree.Root()
		e.ranks[0].stack.Push(root)
		e.ranks[0].generated++
		e.recordState(0, 0, trace.Active)
		e.startQuantum(0)
		for r := 1; r < cfg.Ranks; r++ {
			e.goIdle(r)
		}
	} else {
		// Serving: no pre-seeded root — every rank starts idle and the
		// compiled arrivals (plus the horizon tick) drive the run.
		for r := 0; r < cfg.Ranks; r++ {
			e.goIdle(r)
		}
		e.svSchedule()
	}

	if cfg.testProbe != nil && cfg.testProbeEvery > 0 {
		var tick func()
		tick = func() {
			cfg.testProbe(e)
			if !e.detected {
				e.kernel.After(cfg.testProbeEvery, tick)
			}
		}
		e.kernel.After(cfg.testProbeEvery, tick)
	}

	if err := e.kernel.Run(); err != nil {
		return nil, fmt.Errorf("core: simulation aborted at virtual %v after %d events: %w",
			e.kernel.Now(), e.kernel.Dispatched(), err)
	}
	if !e.detected {
		return nil, fmt.Errorf("core: event queue drained without termination detection")
	}
	res := e.resultFrom(e.totals())
	if cfg.ParProfile {
		// Sequential degenerate: one shard, no windows. Documents the
		// run's shape so profiling tooling needs no special casing.
		res.Par = parprof.New(1, 0)
	}
	return res, nil
}

// kernelFor returns the kernel owning rank r's events: e.kernel in a
// sequential run, and the owning shard's kernel in a sharded one.
// Event handles are arena slots of the kernel that issued them, so a
// cancel must go through that kernel — cancelling rank r's quantum via
// another shard's kernel would poison an unrelated arena slot.
func (e *engine) kernelFor(r int) *sim.Kernel {
	if e.par == nil {
		return e.kernel
	}
	return e.par.sk.Kernel(e.par.shardOf[r])
}

// backoff resolves the backoff policy from the config.
func (c Config) backoff() Backoff {
	// The zero value selects the default; Threshold < 0 disables.
	if (c.BackoffPolicy == Backoff{}) {
		return DefaultBackoff
	}
	return c.BackoffPolicy
}

func (e *engine) recordState(r int, t sim.Time, s trace.State) {
	if e.rec != nil {
		e.rec.Record(r, t, s)
	}
}

// startQuantum expands up to PollInterval nodes from rank r's stack and
// schedules the quantum-end event after the corresponding virtual
// compute time (plus any accumulated steal-response overhead). The
// stack mutation happens eagerly; it becomes observable to thieves at
// quantum end, which is when the rank polls its mailbox — matching a
// two-sided MPI process that only makes communication progress between
// node expansions.
func (e *engine) startQuantum(r int) {
	rk := &e.ranks[r]
	rk.state = rsWorking
	e.ev.Record(r, e.kernel.Now(), trace.EvQuantumStart, -1, int64(rk.stack.Len()))
	// Expansion cost is dominated by child generation (one hash chain
	// per child), so a leaf costs one unit and an internal node one
	// unit per child. Child generation is resumable: a quantum ends
	// after PollInterval units even in the middle of a high-fanout
	// node, so the rank keeps polling at a bounded period.
	start := rk.units
	for rk.units-start < uint64(e.cfg.PollInterval) {
		if rk.expNext < rk.expTotal {
			rk.stack.Push(rk.gen.Child(rk.expNext))
			rk.expNext++
			rk.units++
			rk.generated++
			continue
		}
		node, ok := rk.stack.Pop()
		if !ok {
			break
		}
		rk.nodes++
		if node.Height > rk.maxDepth {
			rk.maxDepth = node.Height
		}
		var nchild int
		if e.sv == nil {
			nchild = rk.gen.Reset(e.cfg.Tree, &node)
		} else {
			// Serving: each job's nodes expand under the job's own params.
			nchild = rk.gen.Reset(e.sv.sched.Jobs[node.Job].Tree, &node)
		}
		if nchild == 0 {
			rk.leaves++
			rk.units++
			if e.sv != nil {
				e.svConsume(node.Job, -1)
			}
			continue
		}
		if e.sv != nil && nchild > 1 {
			e.svConsume(node.Job, int64(nchild-1))
		}
		rk.expNext = 0
		rk.expTotal = nchild
	}
	compute := sim.Duration(rk.units-start) * e.cfg.NodeCost
	if e.inj != nil {
		compute = e.inj.ScaleCompute(r, compute)
	}
	dur := compute + rk.extraDelay
	rk.extraDelay = 0
	rk.quantum = e.kernel.AfterArg(dur, e.quantumEndFn, e.rankArg[r])
}

func (e *engine) quantumEnd(r int) {
	rk := &e.ranks[r]
	rk.quantum = sim.Event{}
	if rk.state == rsDone || rk.state == rsCrashed {
		return
	}
	e.ev.Record(r, e.kernel.Now(), trace.EvQuantumEnd, -1, int64(rk.units))
	e.pollMailbox(r)
	if rk.state == rsDone {
		return
	}
	if !rk.stack.Empty() || rk.expNext < rk.expTotal {
		e.startQuantum(r)
		return
	}
	e.goIdle(r)
}

// goIdle transitions rank r from working (or initial state) to idle:
// trace the phase change, open a work-discovery session, let the
// termination detector act, then start searching for a victim.
func (e *engine) goIdle(r int) {
	rk := &e.ranks[r]
	now := e.kernel.Now()
	rk.state = rsBackoff // idle until sendSteal marks it searching
	rk.extraDelay = 0    // request-handling debt is moot once idle
	rk.idleSince = now
	e.recordState(r, now, trace.Idle)
	if e.rec != nil {
		e.rec.BeginSession(r, now)
	}
	rk.sessions++
	e.forwardTokens(e.det.OnIdle(r))
	if e.checkTermination() {
		return
	}
	if e.cfg.Ranks == 1 {
		// No one to steal from; wait for the detector (which must have
		// fired above for a single rank).
		rk.state = rsBackoff
		return
	}
	e.sendSteal(r)
}

// sendSteal picks the next victim and posts a steal request, arming the
// abort timer when aborting steals are enabled.
func (e *engine) sendSteal(r int) {
	rk := &e.ranks[r]
	v := e.sel.Next(r)
	if e.inj != nil {
		v = e.skipBlacklisted(r, v)
	}
	rk.pendingVictim = v
	rk.reqID++
	id := rk.reqID
	rk.requests++
	rk.waitStart = e.kernel.Now()
	rk.state = rsSearching
	if rk.lastAborted {
		rk.lastAborted = false
		e.ev.Record(r, rk.waitStart, trace.EvStealRetry, v, int64(rk.consecTimeouts))
	}
	e.ev.Record(r, rk.waitStart, trace.EvStealSend, v, int64(id))
	if e.met != nil {
		e.met.stealRequests.Inc()
	}
	e.met.link(r, v)
	e.net.SendID(r, v, comm.TagStealRequest, id, 16)
	if e.cfg.StealTimeout > 0 {
		e.kernel.After(e.cfg.StealTimeout, func() { e.abortSteal(r, v, id) })
	}
}

// skipBlacklisted re-rolls the victim choice past temporarily
// blacklisted ranks (bounded, so a thief surrounded by corpses still
// sends — and times out — rather than spinning).
func (e *engine) skipBlacklisted(r, v int) int {
	rk := &e.ranks[r]
	if len(rk.blackUntil) == 0 {
		return v
	}
	now := e.kernel.Now()
	for tries := 0; tries < 8; tries++ {
		until, ok := rk.blackUntil[v]
		if !ok {
			return v
		}
		if now >= until {
			delete(rk.blackUntil, v)
			return v
		}
		v = e.sel.Next(r)
	}
	return v
}

// abortSteal gives up on an outstanding request whose reply is late
// (aborting steals, Dinan et al.). A late work reply is still accepted
// if it ever arrives.
func (e *engine) abortSteal(r, v int, id uint64) {
	rk := &e.ranks[r]
	if rk.state != rsSearching || rk.reqID != id {
		return // the reply arrived, or this rank moved on
	}
	now := e.kernel.Now()
	rk.searchWait += now.Sub(rk.waitStart)
	rk.aborted++
	rk.consecFails++
	rk.consecTimeouts++
	rk.lastAborted = true
	rk.pendingVictim = -1
	if e.inj != nil {
		if !rk.recovering {
			rk.recovering = true
			rk.recoverStart = rk.waitStart
		}
		rk.timeouts[v]++
		if rk.timeouts[v] >= e.blAfter {
			delete(rk.timeouts, v)
			rk.blackUntil[v] = now.Add(e.blFor)
			rk.blacklists++
		}
	}
	e.ev.Record(r, now, trace.EvStealAbort, v, int64(id))
	if e.met != nil {
		e.met.stealAborted.Inc()
		e.met.stealLatency.Observe(int64(now.Sub(rk.waitStart)))
	}
	e.sel.Observe(r, v, false)
	if e.rec != nil {
		e.rec.SessionAttempt(r, true)
	}
	e.retryOrBackoff(r)
}

// crashRank fail-stops rank r at the current virtual time: its stack
// and queued mailbox die with it, the termination ring heals around
// the corpse (regenerating any token it held), and every later
// delivery to it is discarded on arrival.
func (e *engine) crashRank(r int) {
	rk := &e.ranks[r]
	if rk.state == rsDone || rk.state == rsCrashed {
		return // termination beat the crash; nothing left to kill
	}
	now := e.kernel.Now()
	wasWorking := rk.state == rsWorking
	stackLost := uint64(rk.stack.Drop())
	rk.expNext, rk.expTotal = 0, 0 // staged children were never generated
	rk.crashedAt = now
	rk.lostNodes += stackLost
	e.lostNodes += stackLost
	e.crashes++
	e.kernel.Cancel(rk.quantum)
	rk.quantum = sim.Event{}
	rk.state = rsCrashed
	e.ev.Record(r, now, trace.EvCrash, -1, int64(stackLost))
	if e.met != nil {
		e.met.crashes.Inc()
		e.met.lostNodes.Add(stackLost)
	}
	if wasWorking {
		e.recordState(r, now, trace.Idle)
	} else if e.rec != nil {
		e.rec.EndSession(r, now, false)
	}
	// Messages already delivered (or deferred to the next poll) die
	// unread.
	if len(rk.deferred) > 0 {
		msgs := rk.deferred
		rk.deferred = rk.deferred[:0]
		for _, m := range msgs {
			e.deadLetter(m)
		}
	}
	for _, m := range e.net.Poll(r) {
		e.deadLetter(m)
	}
	// Heal the termination ring; a token lost with the corpse — or the
	// initiator role itself — moves to the lowest surviving rank.
	initr := e.initiator()
	initIdle := initr >= 0 &&
		e.ranks[initr].state != rsWorking && e.ranks[initr].state != rsDone
	sends := e.det.RemoveRank(r, initIdle)
	e.forwardTokens(sends)
	if initIdle && len(sends) == 0 {
		// The (possibly new) initiator is already idle but the removal
		// emitted nothing — this happens when the crashed rank was the
		// initiator before any round started. Left alone, the first
		// round would wait for an OnIdle that may never come again, so
		// nudge the initiator now (a no-op if a round is in flight).
		e.forwardTokens(e.det.OnIdle(initr))
	}
	if !e.checkTermination() {
		e.scheduleReprobe()
	}
}

// deadLetter discards a message addressed to a crashed rank. Lost loot
// is booked against the sender, and the sender's in-flight message
// count is resolved so the termination detector does not wait forever
// for a receive that cannot happen.
func (e *engine) deadLetter(m *comm.Message) {
	e.ev.Record(m.From, e.kernel.Now(), trace.EvMsgDrop, m.To, int64(len(m.Nodes)))
	if m.Tag == comm.TagWork {
		e.noteWorkLost(m)
	}
	e.net.Free(m)
}

// noteWorkLost books a work message destroyed by a fault (dropped on a
// link, or dead-lettered at a crashed rank).
func (e *engine) noteWorkLost(m *comm.Message) {
	n := uint64(len(m.Nodes))
	e.lostNodes += n
	e.lostMsgs++
	e.ranks[m.From].lostNodes += n
	e.det.WorkLost(m.From)
	if e.met != nil {
		e.met.lostNodes.Add(n)
		e.met.lostMessages.Inc()
	}
	e.scheduleReprobe()
}

// onMessageDrop is the injector's drop observer: it runs inside the
// send path, before the network reclaims the message.
func (e *engine) onMessageDrop(m *comm.Message) {
	e.ev.Record(m.From, e.kernel.Now(), trace.EvMsgDrop, m.To, int64(len(m.Nodes)))
	if m.Tag == comm.TagWork {
		e.noteWorkLost(m)
	}
}

// onMessageDup is the injector's duplication observer.
func (e *engine) onMessageDup(m *comm.Message) {
	if e.met != nil {
		e.met.dupMessages.Inc()
	}
}

// initiator returns the termination ring's current initiator: the
// lowest-numbered surviving rank (rank 0 until it crashes).
func (e *engine) initiator() int {
	if e.inj == nil {
		return 0
	}
	for r := range e.ranks {
		if e.ranks[r].state != rsCrashed {
			return r
		}
	}
	return 0
}

// scheduleReprobe arms a deferred check for the lone-survivor endgame.
// When crashes shrink the ring to one rank, no tokens circulate, so a
// WorkLost resolution arriving while the survivor idles would never
// re-trigger the detector on its own. Deferred one tick because loss
// resolution can fire from inside a message send.
func (e *engine) scheduleReprobe() {
	if e.inj == nil || e.detected {
		return
	}
	e.kernel.After(1, e.reprobeFn)
}

func (e *engine) reprobeSurvivor() {
	if e.detected {
		return
	}
	surv, alive := -1, 0
	for r := range e.ranks {
		if e.ranks[r].state != rsCrashed {
			surv = r
			if alive++; alive > 1 {
				return
			}
		}
	}
	if alive != 1 {
		return
	}
	if rk := &e.ranks[surv]; rk.state == rsWorking || rk.state == rsDone {
		return
	}
	e.forwardTokens(e.det.OnIdle(surv))
	e.checkTermination()
}

// onDelivery is the network notify hook: it runs at message delivery
// time. Idle ranks handle traffic immediately, like an MPI process
// spinning on probe. Working ranks normally wait for their next poll;
// under the one-sided protocol, steal requests are served right away
// (the "NIC" answers without interrupting the computation) and other
// traffic is deferred to the poll.
func (e *engine) onDelivery(r int) {
	rk := &e.ranks[r]
	if rk.state == rsCrashed {
		// The corpse answers nothing; everything addressed to it dies
		// in the mailbox, with lost loot resolved against the sender.
		for _, m := range e.net.Poll(r) {
			e.deadLetter(m)
		}
		return
	}
	if rk.state == rsWorking {
		if e.cfg.Protocol == OneSided {
			for _, m := range e.net.Poll(r) {
				if m.Tag == comm.TagStealRequest {
					e.handle(r, m)
					e.net.Free(m)
				} else {
					rk.deferred = append(rk.deferred, m)
				}
			}
		}
		return
	}
	e.pollMailbox(r)
}

// pollMailbox drains and handles all delivered (and deferred) messages
// for rank r. Handling never re-enters a poll of the same rank (sends
// deliver at least 1ns later), so the network's Poll scratch can be
// walked in place and each message freed as soon as it is handled.
func (e *engine) pollMailbox(r int) {
	rk := &e.ranks[r]
	if len(rk.deferred) > 0 {
		msgs := rk.deferred
		rk.deferred = rk.deferred[:0]
		for _, m := range msgs {
			e.handle(r, m)
			e.net.Free(m)
		}
	}
	for _, m := range e.net.Poll(r) {
		e.handle(r, m)
		e.net.Free(m)
	}
}

func (e *engine) handle(r int, m *comm.Message) {
	rk := &e.ranks[r]
	switch m.Tag {
	case comm.TagStealRequest:
		e.handleStealRequest(r, m.From, m.ID)

	case comm.TagWork:
		if rk.state == rsDone {
			// A work message can be in flight past a (Ring-detected)
			// termination; dropping it leaves workSent != workReceived,
			// which flags the run as premature. Under fault injection
			// the loot still counts as lost nodes so that
			// completed + lost == generated holds even then — but not
			// as a lost message, which would mask the prematurity.
			if e.inj != nil {
				n := uint64(len(m.Nodes))
				e.lostNodes += n
				e.ranks[m.From].lostNodes += n
			}
			return
		}
		now := e.kernel.Now()
		// Work is always accepted — even a reply to an aborted request
		// (the nodes would otherwise be lost). Safra's counters must see
		// every accepted transfer.
		e.workReceived++
		e.det.WorkReceived(r)
		e.sel.Observe(r, m.From, true)
		rk.successes++
		rk.consecFails = 0
		rk.consecTimeouts = 0
		rk.lastAborted = false
		rk.backoff = 0
		if e.inj != nil {
			delete(rk.timeouts, m.From)
			if rk.recovering {
				rk.recovering = false
				e.recoveries++
				d := now.Sub(rk.recoverStart)
				e.recoverTotal += d
				if e.met != nil {
					e.met.recoveryLatency.Observe(int64(d))
				}
			}
		}
		// Work lineage: the loot's migration depth becomes the rank's
		// (also when banking a late reply below — the banked nodes mix
		// into the stack, and the freshest transfer wins).
		rk.lineage = m.Lineage
		e.noteMigration(m.Lineage)
		e.ev.Record(r, now, trace.EvWorkRecv, m.From, int64(len(m.Nodes)))
		if e.met != nil {
			e.met.stealSuccess.Inc()
		}
		switch rk.state {
		case rsSearching, rsBackoff:
			if rk.state == rsSearching && m.ID == rk.reqID {
				rk.searchWait += now.Sub(rk.waitStart)
				if e.met != nil {
					e.met.stealLatency.Observe(int64(now.Sub(rk.waitStart)))
				}
			}
			rk.pendingVictim = -1
			if e.rec != nil {
				e.rec.SessionAttempt(r, false)
				e.rec.EndSession(r, now, true)
			}
			if e.met != nil {
				e.met.session.Observe(int64(now.Sub(rk.idleSince)))
			}
			e.recordState(r, now, trace.Active)
			rk.stack.Acquire(m.Nodes)
			e.startQuantum(r)
		case rsWorking:
			// Late reply to an aborted request: just bank the nodes.
			rk.stack.Acquire(m.Nodes)
		}

	case comm.TagNoWork:
		if rk.state == rsDone {
			return
		}
		if rk.state != rsSearching || m.ID != rk.reqID {
			// Stale reply to an aborted request.
			return
		}
		now := e.kernel.Now()
		rk.searchWait += now.Sub(rk.waitStart)
		rk.fails++
		rk.consecFails++
		rk.consecTimeouts = 0
		rk.lastAborted = false
		rk.pendingVictim = -1
		if e.inj != nil {
			// The victim answered: it is alive, whatever the timeout
			// tally said.
			delete(rk.timeouts, m.From)
		}
		e.ev.Record(r, now, trace.EvNoWorkRecv, m.From, int64(m.ID))
		if e.met != nil {
			e.met.stealFail.Inc()
			e.met.stealLatency.Observe(int64(now.Sub(rk.waitStart)))
		}
		e.sel.Observe(r, m.From, false)
		if e.rec != nil {
			e.rec.SessionAttempt(r, true)
		}
		e.retryOrBackoff(r)

	case comm.TagToken:
		e.ev.Record(r, e.kernel.Now(), trace.EvTokenRecv, m.From, 0)
		if e.met != nil {
			e.met.tokenHops.Inc()
		}
		idle := rk.state != rsWorking
		e.forwardTokens(e.det.OnToken(r, m.Token, idle))
		e.checkTermination()

	case comm.TagTerminate:
		e.finishRank(r)

	default:
		panic(fmt.Sprintf("core: unexpected tag %v", m.Tag))
	}
}

// handleStealRequest answers thief's request against rank v's stack.
func (e *engine) handleStealRequest(v, thief int, id uint64) {
	rk := &e.ranks[v]
	now := e.kernel.Now()
	e.ev.Record(v, now, trace.EvStealRecv, thief, int64(id))
	if rk.state == rsDone {
		// Termination already detected; the thief will receive its own
		// terminate message. Answer no-work to be safe.
		e.ev.Record(v, now, trace.EvNoWorkSend, thief, int64(id))
		e.met.link(v, thief)
		e.net.SendID(v, thief, comm.TagNoWork, id, 16)
		return
	}
	// Answering costs the victim compute time whether or not it has
	// work to give; the flood of failed steals the paper measures
	// (Figure 7) slows victims down through exactly this term. Idle
	// victims answer from otherwise-wasted time, and under the
	// one-sided protocol the network hardware serves the request, so
	// only working two-sided ranks accrue the delay.
	twoSided := e.cfg.Protocol == TwoSided
	if twoSided && rk.state == rsWorking {
		rk.extraDelay += e.cfg.HandleRequestCost
	}
	var loot []uts.Node
	var chunks int
	switch e.cfg.Steal {
	case StealHalf:
		loot, chunks = rk.stack.StealHalf()
	default:
		loot, chunks = rk.stack.StealOne()
	}
	if chunks == 0 {
		e.ev.Record(v, now, trace.EvNoWorkSend, thief, int64(id))
		e.met.link(v, thief)
		e.net.SendID(v, thief, comm.TagNoWork, id, 16)
		return
	}
	e.det.WorkSent(v)
	e.workSent++
	e.nodesSent += uint64(len(loot))
	if twoSided {
		rk.extraDelay += e.cfg.StealResponseCost
	}
	e.ev.Record(v, now, trace.EvWorkSend, thief, int64(len(loot)))
	e.met.link(v, thief)
	if e.met != nil {
		e.met.chunkNodes.Observe(int64(len(loot)))
	}
	e.net.SendNodes(v, thief, id, loot, rk.lineage+1, len(loot)*uts.NodeBytes)
}

// noteMigration tallies one accepted transfer at the given migration
// depth, growing the histogram on demand.
func (e *engine) noteMigration(depth int) {
	if depth < 0 {
		depth = 0
	}
	for len(e.migDepths) <= depth {
		e.migDepths = append(e.migDepths, 0)
	}
	e.migDepths[depth]++
}

// retryOrBackoff continues an idle rank's search, inserting a pause
// once consecutive failures pass the backoff threshold.
func (e *engine) retryOrBackoff(r int) {
	rk := &e.ranks[r]
	b := e.backoffCfg
	if b.Threshold < 0 || rk.consecFails < b.Threshold {
		e.sendSteal(r)
		return
	}
	if rk.backoff == 0 {
		rk.backoff = b.Base
	} else if rk.backoff < b.Max {
		rk.backoff *= 2
		if rk.backoff > b.Max {
			rk.backoff = b.Max
		}
	}
	rk.state = rsBackoff
	e.kernel.After(rk.backoff, func() {
		if e.ranks[r].state == rsBackoff {
			e.sendSteal(r)
		}
	})
}

// forwardTokens transmits detector-emitted tokens on the ring.
func (e *engine) forwardTokens(sends []term.Send) {
	for _, s := range sends {
		now := e.kernel.Now()
		if s.Regen {
			// The previous token died with a crashed rank (or the rank
			// was the initiator itself); the healed ring starts over.
			e.tokenRegens++
			e.ev.Record(s.From, now, trace.EvTokenRegen, s.To, int64(s.Token.Round))
			if e.met != nil {
				e.met.tokenRegens.Inc()
			}
		}
		e.ev.Record(s.From, now, trace.EvTokenSend, s.To, 0)
		e.met.link(s.From, s.To)
		e.net.SendToken(s.From, s.To, s.Token, term.TokenBytes)
	}
}

// checkTermination broadcasts termination once the detector fires.
// It returns true if termination has been detected.
func (e *engine) checkTermination() bool {
	if !e.det.Terminated() {
		return e.detected
	}
	if e.detected {
		return true
	}
	e.detected = true
	e.detectedAt = e.kernel.Now()
	if e.par != nil {
		// Only serialized windows can decide (the serialization policy
		// guarantees it), so this single-threaded broadcast of the flag
		// to the sibling shard engines is race-free; they observe it in
		// later windows through the barrier's happens-before edge.
		e.par.markDetected(e.detectedAt)
	}
	// Detection happens at the ring initiator — rank 0 for both
	// detectors unless crashes moved the role to a higher survivor.
	initr := e.initiator()
	e.finishRank(initr)
	for r := 0; r < e.cfg.Ranks; r++ {
		if r == initr || e.ranks[r].state == rsCrashed {
			continue
		}
		e.net.SendID(initr, r, comm.TagTerminate, 0, 8)
	}
	return true
}

// finishRank marks r done and closes its trace state.
func (e *engine) finishRank(r int) {
	rk := &e.ranks[r]
	if rk.state == rsDone || rk.state == rsCrashed {
		return
	}
	now := e.kernel.Now()
	e.ev.Record(r, now, trace.EvTerminate, -1, 0)
	if e.rec != nil && rk.state != rsWorking {
		e.rec.EndSession(r, now, false)
	}
	e.kernelFor(r).Cancel(rk.quantum) // no-op when no quantum is pending
	rk.quantum = sim.Event{}
	rk.state = rsDone
	e.doneCount++
}

// engineTotals are the engine-global counters a Result needs. A
// sequential run has exactly one engine, so totals() is the whole
// story; a sharded run sums one per shard engine with mergeTotals —
// every field is a plain sum, so the merge is exact, not approximate.
type engineTotals struct {
	workSent, workReceived uint64
	lostMsgs               uint64
	migDepths              []uint64
	comm                   comm.Stats

	crashes      int
	lostNodes    uint64
	tokenRegens  uint64
	recoveries   uint64
	recoverTotal sim.Duration
}

// totals snapshots this engine's global counters.
func (e *engine) totals() engineTotals {
	return engineTotals{
		workSent:     e.workSent,
		workReceived: e.workReceived,
		lostMsgs:     e.lostMsgs,
		migDepths:    e.migDepths,
		comm:         e.net.Stats(),
		crashes:      e.crashes,
		lostNodes:    e.lostNodes,
		tokenRegens:  e.tokenRegens,
		recoveries:   e.recoveries,
		recoverTotal: e.recoverTotal,
	}
}

// mergeTotals sums per-shard engine totals into one.
func mergeTotals(ts []engineTotals) engineTotals {
	var m engineTotals
	for _, t := range ts {
		m.workSent += t.workSent
		m.workReceived += t.workReceived
		m.lostMsgs += t.lostMsgs
		for len(m.migDepths) < len(t.migDepths) {
			m.migDepths = append(m.migDepths, 0)
		}
		for d, c := range t.migDepths {
			m.migDepths[d] += c
		}
		for tag := range t.comm.Sent {
			m.comm.Sent[tag] += t.comm.Sent[tag]
			m.comm.Bytes[tag] += t.comm.Bytes[tag]
			m.comm.Received[tag] += t.comm.Received[tag]
			m.comm.Dropped[tag] += t.comm.Dropped[tag]
			m.comm.Duplicated[tag] += t.comm.Duplicated[tag]
		}
		m.crashes += t.crashes
		m.lostNodes += t.lostNodes
		m.tokenRegens += t.tokenRegens
		m.recoveries += t.recoveries
		m.recoverTotal += t.recoverTotal
	}
	return m
}

// resultFrom assembles the Result after the kernel(s) drain. The
// per-rank state it walks is shared across shard engines, so any
// engine of a sharded run can build the result from the merged totals.
func (e *engine) resultFrom(t engineTotals) *Result {
	res := &Result{
		Ranks:     e.cfg.Ranks,
		Placement: e.cfg.Placement,
		Selector:  e.sel.Name(),
		Steal:     e.cfg.Steal,
		Detector:  e.det.Name(),
		Makespan:  sim.Duration(e.detectedAt),
		Comm:      t.comm,
	}
	var totalSearch sim.Duration
	var remaining int
	var totalUnits uint64
	res.MinRankNodes = ^uint64(0)
	for i := range e.ranks {
		rk := &e.ranks[i]
		res.Nodes += rk.nodes
		res.Leaves += rk.leaves
		res.NodesGenerated += rk.generated
		totalUnits += rk.units
		if rk.nodes > res.MaxRankNodes {
			res.MaxRankNodes = rk.nodes
		}
		if rk.nodes < res.MinRankNodes {
			res.MinRankNodes = rk.nodes
		}
		if rk.maxDepth > res.MaxDepth {
			res.MaxDepth = rk.maxDepth
		}
		res.StealRequests += rk.requests
		res.FailedSteals += rk.fails
		res.SuccessfulSteals += rk.successes
		res.AbortedSteals += rk.aborted
		res.Sessions += rk.sessions
		totalSearch += rk.searchWait
		remaining += rk.stack.Len()
		res.ChunksTransferred += rk.stack.Stats().ChunksAcquired
	}
	res.MeanSearchTime = totalSearch / sim.Duration(e.cfg.Ranks)
	res.SequentialTime = sim.Duration(totalUnits) * e.cfg.NodeCost
	if res.Makespan > 0 {
		res.Speedup = float64(res.SequentialTime) / float64(res.Makespan)
		res.Efficiency = res.Speedup / float64(e.cfg.Ranks)
	}
	if res.Nodes > 0 {
		mean := float64(res.Nodes) / float64(e.cfg.Ranks)
		res.Imbalance = float64(res.MaxRankNodes) / mean
	}
	res.MigrationDepths = t.migDepths
	res.MaxMigrationDepth = len(t.migDepths) - 1
	if res.MaxMigrationDepth < 0 {
		res.MaxMigrationDepth = 0
	}
	res.TerminationRounds = e.det.Rounds()
	res.Premature = remaining > 0 || t.workSent != t.workReceived+t.lostMsgs
	if e.inj != nil {
		res.CrashedRanks = t.crashes
		res.LostNodes = t.lostNodes
		res.LostMessages = t.lostMsgs
		res.TokenRegens = t.tokenRegens
		res.Recoveries = t.recoveries
		if t.recoveries > 0 {
			res.MeanRecoveryLatency = t.recoverTotal / sim.Duration(t.recoveries)
		}
		res.PerRankFaults = make([]RankFault, e.cfg.Ranks)
		for i := range e.ranks {
			rk := &e.ranks[i]
			res.PerRankFaults[i] = RankFault{
				Rank:       i,
				Crashed:    rk.state == rsCrashed,
				CrashedAt:  rk.crashedAt,
				LostNodes:  rk.lostNodes,
				Timeouts:   rk.aborted,
				Blacklists: rk.blacklists,
			}
		}
	}
	if e.sv != nil {
		res.Serve = e.sv.sched.Stats(e.sv.doneAt, e.detectedAt)
	}
	if e.rec != nil {
		res.Trace = e.rec.Finish(e.detectedAt)
		if d, ok := res.Trace.MeanSessionDuration(); ok {
			res.MeanSessionDuration = d
		}
		e.ev.Attach(res.Trace)
	}
	return res
}
