// Package core is the distributed work-stealing engine — the system the
// paper studies, rebuilt over a simulated cluster.
//
// Each MPI rank of the reference UTS implementation becomes an
// event-driven state machine scheduled by a discrete-event kernel. A
// working rank expands tree nodes in quanta and polls its mailbox
// between quanta (the paper's two-sided MPI model: a victim must stop
// working to answer steal requests). An idle rank picks victims with a
// pluggable selection strategy, sends steal requests and waits for
// replies; termination is detected by a distributed token algorithm.
//
// The engine records the UTS statistics the paper reports (failed
// steals, search time, work-discovery sessions) and, optionally, the
// activity trace behind the paper's scheduling-latency metric.
package core

import (
	"errors"
	"fmt"

	"distws/internal/fault"
	"distws/internal/obs"
	"distws/internal/serve"
	"distws/internal/sim"
	"distws/internal/sim/par"
	"distws/internal/term"
	"distws/internal/topology"
	"distws/internal/uts"
	"distws/internal/victim"
	"distws/internal/workstack"
)

// StealPolicy is the amount of work a successful steal transfers.
type StealPolicy uint8

const (
	// StealOne transfers a single chunk, as the reference UTS does.
	StealOne StealPolicy = iota
	// StealHalf transfers half the victim's stealable chunks (§IV-C).
	StealHalf
)

func (p StealPolicy) String() string {
	if p == StealHalf {
		return "Half"
	}
	return "One"
}

// Protocol selects how steal requests reach a victim.
type Protocol uint8

const (
	// TwoSided is the reference model: the victim answers requests only
	// when it polls between node expansions, and pays CPU time for
	// every answer. This is the protocol the paper studies.
	TwoSided Protocol = iota
	// OneSided models RDMA-style steals (the paper's §VII future work,
	// and the ARMCI implementation of Dinan et al. discussed in §VI):
	// requests are served at delivery time without interrupting the
	// victim's computation and without per-request victim CPU cost.
	OneSided
)

func (p Protocol) String() string {
	if p == OneSided {
		return "OneSided"
	}
	return "TwoSided"
}

// Defaults used when Config fields are zero.
const (
	// DefaultNodeCost calibrates one node expansion to ~1 µs of virtual
	// time, close to the paper's measured 970k nodes/second per rank.
	DefaultNodeCost = 1 * sim.Microsecond
	// DefaultStealResponseCost is the victim-side CPU time to package
	// and post a work reply to one steal request.
	DefaultStealResponseCost = 500 * sim.Nanosecond
	// DefaultHandleRequestCost is the victim-side CPU time consumed by
	// every steal request it answers, successful or not — the paper's
	// "a worker stops advancing the computation to answer steal
	// requests from others, thus slowing down the application". Failed
	// steals are pure overhead for the victim too.
	DefaultHandleRequestCost = 600 * sim.Nanosecond
	// DefaultMaxVirtualTime aborts runaway simulations.
	DefaultMaxVirtualTime = sim.Time(24 * 3600 * 1e9) // one virtual day
	// DefaultFaultStealTimeout arms aborting steals when a lossy fault
	// plan is active and Config.StealTimeout was left zero: without a
	// timeout, a thief whose request (or its reply) died with a crashed
	// rank or a dropped message would wait forever.
	DefaultFaultStealTimeout = 100 * sim.Microsecond
)

// Config describes one simulated execution.
type Config struct {
	// Tree is the UTS workload.
	Tree uts.Params

	// Machine is the simulated system; zero value means the K Computer.
	Machine topology.Machine
	// Ranks is the number of MPI ranks (required, >= 1).
	Ranks int
	// Placement maps ranks to nodes (1/N, 8RR, 8G).
	Placement topology.Placement

	// Selector builds the victim-selection strategy; nil means the
	// reference round-robin.
	Selector victim.Factory
	// Steal is the steal-amount policy.
	Steal StealPolicy
	// ChunkSize is nodes per chunk; 0 means the UTS default of 20.
	ChunkSize int
	// PollInterval is the number of node expansions between mailbox
	// polls; 0 means 1, matching the reference implementation, whose
	// work loop makes MPI progress on every iteration. Larger values
	// model a coarser progress engine (ablation A2) — they inflate the
	// victim-side component of the steal round trip until physical
	// latency differences stop mattering.
	PollInterval int

	// NodeCost is the virtual compute time per node expansion; 0 means
	// DefaultNodeCost. Work granularity (paper §V-B) scales this by the
	// tree's SHA-round count — use GranularityCost.
	NodeCost sim.Duration
	// StealResponseCost is victim CPU time to package work for one
	// successful steal; 0 means DefaultStealResponseCost.
	StealResponseCost sim.Duration
	// HandleRequestCost is victim CPU time per steal request answered,
	// successful or not; 0 means DefaultHandleRequestCost.
	HandleRequestCost sim.Duration
	// Latency is the network model; nil means topology.DefaultLatency.
	Latency topology.LatencyModel

	// Detector builds the termination detector; nil means Safra.
	Detector term.Factory

	// Protocol selects the steal transport (two-sided polling, as in
	// the paper, or one-sided RDMA-style).
	Protocol Protocol

	// StealTimeout, when positive, enables aborting steals (Dinan et
	// al., paper §VI): a thief that has waited longer than this for a
	// reply abandons it and tries another victim. Work arriving late is
	// still accepted. Zero disables aborts (reference behaviour).
	StealTimeout sim.Duration

	// BackoffPolicy throttles steal retries after long failure runs;
	// the zero value selects DefaultBackoff, Threshold < 0 disables
	// throttling entirely (reference-faithful immediate retry).
	BackoffPolicy Backoff

	// Faults, when non-nil, is the deterministic fault plan injected
	// into the run (internal/fault): fail-stop crashes, stragglers, and
	// link-level drop/duplication/latency spikes. A nil (or empty) plan
	// keeps every fault-free fast path: the run is bit-identical to one
	// built without the field. Lossy plans arm DefaultFaultStealTimeout
	// unless StealTimeout is set explicitly.
	Faults *fault.Plan

	// Shards partitions the ranks across that many parallel simulation
	// kernels (internal/sim/par) synchronized by conservative time
	// windows; 0 or 1 runs the classic sequential kernel, byte-identical
	// to builds without the feature. For any fixed (Config, Shards) the
	// run is bit-identical across repetitions — that is the hard
	// determinism contract. The Result is additionally independent of
	// the shard count unless the configuration produces symmetric
	// same-instant collisions (two messages sent at the same nanosecond
	// arriving at the same rank at the same nanosecond): there the
	// sequential kernel breaks the tie by its global insertion counter,
	// an order no windowed simulator can reconstruct, and the sharded
	// runs use the canonical (deliver, sent, sender) order instead. The
	// paper's Figure-9 configurations are collision-free and the
	// determinism-matrix test pins their shard-count invariance. Shards
	// must not exceed Ranks; sharding is incompatible with stateful
	// latency models (topology.JitterLatency) and with fault plans that
	// need the send-path interposer (link faults, straggler send
	// multipliers).
	Shards int

	// ParProfile enables the parallel-kernel window ledger
	// (internal/obs/parprof): Result.Par records every conservative time
	// window with its serialization cause and barrier traffic. Recording
	// happens only at window barriers (coordinator context, workers
	// quiescent), so a profiled run is byte-identical to an unprofiled
	// one — traces, metrics, and results never change (observer freedom,
	// asserted by tests). With Shards <= 1 the ledger is the empty
	// sequential degenerate (no windows). The engine never publishes the
	// ledger to Config.Metrics; callers opt in via parprof.Publish.
	ParProfile bool

	// ParWallProbe, when non-nil and Shards > 1, receives wall-clock
	// window callbacks (par.WallProbe) for the busy/barrier-wait profile
	// in parprof/wallclock. Wall readings flow only outward into
	// diagnostics, never into the simulation, so the run stays
	// bit-deterministic. Ignored by the sequential kernel.
	ParWallProbe par.WallProbe

	// Serve, when non-nil, switches the engine into open-system serving
	// mode (internal/serve, DESIGN.md §15): instead of a single tree
	// rooted at rank 0, jobs arrive continuously from the spec's tenants
	// under admission control, each rooted at a placement-chosen rank,
	// and the run ends when the arrival horizon has passed and every
	// admitted job drained. Config.Tree is ignored (each job carries its
	// own workload); the termination detector is replaced by the open
	// detector. The serving run is a pure function of (Config, Seed) —
	// including under Shards >= 2 — and a nil Serve keeps every closed-
	// system path byte-identical to builds without the feature. Serving
	// is incompatible with fault plans: job-completion accounting
	// assumes no work is ever lost.
	Serve *serve.Spec

	// Seed drives every random choice of the run.
	Seed uint64

	// CollectTrace enables the activity trace (paper §III). Costs
	// memory proportional to the number of phase transitions.
	CollectTrace bool

	// CollectEvents enables the protocol-level event log (internal/obs):
	// bounded per-rank rings of steal, token, and quantum events attached
	// to Result.Trace. Implies CollectTrace. Recording never perturbs the
	// simulation — a traced run and an untraced run of the same
	// configuration produce identical results (asserted by tests).
	CollectEvents bool
	// EventBuffer caps the per-rank event ring when CollectEvents is set;
	// 0 means obs.DefaultRingCap. Runs that outgrow the ring keep the
	// newest events and report the eviction count.
	EventBuffer int

	// Metrics, when non-nil, receives named counters and histograms
	// (steal outcomes, round-trip latency, session lengths, chunk sizes,
	// and — up to MatrixRankLimit ranks — the per-link traffic matrix).
	// The simulator writes virtual-time durations, so the registry's
	// final contents are deterministic for a deterministic Config.
	Metrics *obs.Registry

	// MaxVirtualTime aborts the run if the virtual clock passes it;
	// 0 means DefaultMaxVirtualTime.
	MaxVirtualTime sim.Time

	// testProbe, when set (package-internal, for tests and debugging),
	// is invoked with the engine every testProbeEvery of virtual time.
	testProbe      func(e interface{})
	testProbeEvery sim.Duration
}

// serveTenants is the tenant count for serving-metric registration
// (0 when serving is disabled).
func (c Config) serveTenants() int {
	if c.Serve == nil {
		return 0
	}
	return len(c.Serve.Tenants)
}

// GranularityCost returns the node cost for a tree whose node creation
// runs the given number of SHA rounds, scaling DefaultNodeCost the way
// the paper's granularity experiment does (§V-B).
func GranularityCost(shaRounds int) sim.Duration {
	if shaRounds < 1 {
		shaRounds = 1
	}
	return sim.Duration(shaRounds) * DefaultNodeCost
}

// withDefaults returns a copy of c with zero values replaced.
func (c Config) withDefaults() Config {
	if c.Machine == (topology.Machine{}) {
		c.Machine = topology.KComputer()
	}
	if c.Selector == nil {
		c.Selector = victim.NewRoundRobin
	}
	if c.ChunkSize == 0 {
		c.ChunkSize = workstack.DefaultChunkSize
	}
	if c.PollInterval == 0 {
		c.PollInterval = 1
	}
	if c.NodeCost == 0 {
		c.NodeCost = DefaultNodeCost
	}
	if c.StealResponseCost == 0 {
		c.StealResponseCost = DefaultStealResponseCost
	}
	if c.HandleRequestCost == 0 {
		c.HandleRequestCost = DefaultHandleRequestCost
	}
	if c.Latency == nil {
		c.Latency = topology.DefaultLatency()
	}
	if c.Detector == nil {
		c.Detector = term.NewSafra
	}
	if c.MaxVirtualTime == 0 {
		c.MaxVirtualTime = DefaultMaxVirtualTime
	}
	if c.StealTimeout == 0 && c.Faults != nil && c.Faults.Lossy() {
		c.StealTimeout = DefaultFaultStealTimeout
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Tree.Validate(); err != nil {
		return err
	}
	if c.Ranks < 1 {
		return fmt.Errorf("core: %d ranks", c.Ranks)
	}
	if c.ChunkSize < 0 || c.PollInterval < 0 {
		return errors.New("core: negative chunk size or poll interval")
	}
	if c.NodeCost < 0 || c.StealResponseCost < 0 {
		return errors.New("core: negative cost")
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(c.Ranks); err != nil {
			return err
		}
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: %d shards", c.Shards)
	}
	if c.Shards > c.Ranks {
		return fmt.Errorf("core: %d shards for %d ranks (shards must not exceed ranks)", c.Shards, c.Ranks)
	}
	if c.Shards > 1 {
		if _, ok := c.Latency.(*topology.JitterLatency); ok {
			return errors.New("core: JitterLatency is stateful and admits no sound lookahead bound; it cannot be sharded")
		}
	}
	if c.Serve != nil {
		if err := c.Serve.Validate(); err != nil {
			return err
		}
		if c.Faults != nil && !c.Faults.Empty() {
			return errors.New("core: serving mode is incompatible with fault plans (job accounting assumes no lost work)")
		}
		mvt := c.MaxVirtualTime
		if mvt == 0 {
			mvt = DefaultMaxVirtualTime
		}
		if sim.Time(0).Add(c.Serve.Horizon) >= mvt {
			return fmt.Errorf("core: serving horizon %v reaches MaxVirtualTime %v", c.Serve.Horizon, mvt)
		}
	}
	return nil
}
