package core

// Open-system serving mode (DESIGN.md §15): Config.Serve turns the
// closed-system batch engine into a continuously loaded job service.
// The entire arrival schedule — instants, admission verdicts,
// placements, per-job workloads — is compiled before the simulation
// starts (internal/serve), so the engine merely replays it: arrival
// events are pre-scheduled on the kernel owning each job's placement
// rank (the same pattern as crash pre-scheduling), and the run ends
// when the horizon has passed and every admitted job has drained.
//
// Job-completion accounting rides a per-job live-node counter: an
// injected wave adds its node count, expanding an internal node adds
// (children - 1), and consuming a leaf subtracts one. A job's nodes
// are tagged (uts.Node.Job) and follow the work wherever steals carry
// it, so live[j] reaching zero means no node of job j exists anywhere
// — stacks, staged expansions, or in-flight loot.
//
// Under Shards >= 2 the counter cannot be shared: pops happen inside
// parallel windows on many engines at once. Each shard engine instead
// accumulates deltas (svDelta) and latches its last dec instant
// (svLastDec); the coordinator folds them into the shared counters at
// each window barrier — workers quiescent, single-threaded — where it
// also injects follow-up DAG waves and decides the finish. The
// serving detector never serializes a window (it implements
// term.DecisionAware with a constant false), so serving runs keep the
// parallel kernel parallel. Sequential runs resolve completions on a
// zero-delay event instead, which keeps resolution out of the middle
// of startQuantum's expansion loop.
//
// Closed-system runs never touch any of this: every hook is behind a
// nil check on engine.sv, and TestGoldenFig9 pins byte-identity.

import (
	"distws/internal/serve"
	"distws/internal/sim"
	"distws/internal/sim/par"
	"distws/internal/term"
	"distws/internal/trace"
	"distws/internal/uts"
)

// openDetector stands in for the termination detector in serving
// mode: an open system ends by schedule (horizon plus drain), not by
// distributed detection, so it never fires and circulates no tokens.
// IdleDecisionPossible is constantly false, which keeps every sharded
// window parallel (engine_par.go's serialization policy).
type openDetector struct{}

func (openDetector) Name() string                              { return "Open" }
func (openDetector) WorkSent(int)                              {}
func (openDetector) WorkReceived(int)                          {}
func (openDetector) WorkLost(int)                              {}
func (openDetector) OnIdle(int) []term.Send                    { return nil }
func (openDetector) OnToken(int, term.Token, bool) []term.Send { return nil }
func (openDetector) RemoveRank(int, bool) []term.Send          { return nil }
func (openDetector) Terminated() bool                          { return false }
func (openDetector) Rounds() int                               { return 0 }
func (openDetector) IdleDecisionPossible(int) bool             { return false }

// serveState is the run-wide serving bookkeeping. In a sharded run it
// is shared by the shard engines like ranks/det/sel: the slices are
// written only by a job's owning engine during windows (arrival
// injection) or by the coordinator at barriers (delta folding, wave
// scheduling, completion), never concurrently.
type serveState struct {
	spec  *serve.Spec
	sched *serve.Schedule

	// live[j] is job j's node population; zero after injection means
	// the job's current wave fully drained. waveNext[j] is the next
	// wave to inject; doneAt[j] the completion instant (-1 while
	// running); lastDec[j] the sequential dec-to-zero latch.
	live     []int64
	waveNext []int32
	doneAt   []sim.Time
	lastDec  []sim.Time

	doneJobs  int
	maxDone   sim.Time
	horizonAt sim.Time

	// Sequential-engine resolve machinery: completions detected inside
	// startQuantum are parked in pending and resolved by a zero-delay
	// event, so wave injection never mutates the stack being expanded.
	horizonTicked bool
	pending       []uint32
	armed         bool
	resolveFn     func()
	finished      bool
}

func newServeState(sched *serve.Schedule) *serveState {
	n := len(sched.Jobs)
	sv := &serveState{
		spec:      sched.Spec,
		sched:     sched,
		live:      make([]int64, n),
		waveNext:  make([]int32, n),
		doneAt:    make([]sim.Time, n),
		lastDec:   make([]sim.Time, n),
		maxDone:   -1,
		horizonAt: sim.Time(0).Add(sched.Spec.Horizon),
	}
	for i := range sv.doneAt {
		sv.doneAt[i] = -1
		sv.lastDec[i] = -1
	}
	return sv
}

// compileServe builds the schedule and serve state for a validated
// config (nil when serving is disabled).
func compileServe(cfg Config) (*serveState, error) {
	if cfg.Serve == nil {
		return nil, nil
	}
	sched, err := serve.Compile(cfg.Serve, cfg.Ranks, cfg.Seed, cfg.NodeCost)
	if err != nil {
		return nil, err
	}
	return newServeState(sched), nil
}

// svSchedule pre-schedules every arrival on this engine's kernel plus
// the horizon tick. Sequential runs call it once; sharded runs route
// each job through the engine owning its placement rank instead (see
// runSharded), exactly like crash pre-scheduling.
func (e *engine) svSchedule() {
	sv := e.sv
	for i := range sv.sched.Jobs {
		idx := i
		e.kernel.At(sv.sched.Jobs[i].At, func() { e.svArrive(idx) })
	}
	e.kernel.At(sv.horizonAt, func() { e.svHorizon() })
}

// svArrive replays one compiled arrival: record the arrival and its
// admission verdict, and inject wave 0 at the placement rank. Runs on
// the engine owning the rank (in sharded mode, inside a parallel
// window — it touches only this shard's ranks, this job's slots, and
// atomic counters).
func (e *engine) svArrive(idx int) {
	sv := e.sv
	j := &sv.sched.Jobs[idx]
	now := e.kernel.Now()
	root, tenant := int(j.Root), int(j.Tenant)
	e.ev.Record(root, now, trace.EvJobArrive, tenant, int64(j.ID))
	if e.met != nil {
		e.met.jobsArrived.Inc()
	}
	if !j.Admitted {
		e.ev.Record(root, now, trace.EvJobReject, tenant, int64(j.ID))
		if e.met != nil {
			e.met.jobsRejected.Inc()
		}
		return
	}
	e.ev.Record(root, now, trace.EvJobAdmit, tenant, int64(j.ID))
	if e.met != nil {
		e.met.jobsAdmitted.Inc()
	}
	sv.live[idx] += int64(len(j.Waves[0]))
	sv.waveNext[idx] = 1
	e.injectNodes(root, j.Waves[0])
}

// injectNodes roots a wave of fresh work at rank r, mirroring the
// work-acceptance half of the TagWork handler: an idle rank ends its
// discovery session and starts computing; a working rank banks the
// nodes into its stack.
func (e *engine) injectNodes(r int, nodes []uts.Node) {
	rk := &e.ranks[r]
	now := e.kernel.Now()
	rk.generated += uint64(len(nodes))
	switch rk.state {
	case rsWorking:
		for i := range nodes {
			rk.stack.Push(nodes[i])
		}
	case rsSearching, rsBackoff:
		// A pending steal reply becomes stale: TagNoWork is dropped by
		// the reqID check and TagWork loot is banked, so clearing the
		// victim here loses nothing.
		rk.pendingVictim = -1
		rk.lineage = 0
		if e.rec != nil {
			e.rec.EndSession(r, now, true)
		}
		if e.met != nil {
			e.met.session.Observe(int64(now.Sub(rk.idleSince)))
		}
		e.recordState(r, now, trace.Active)
		for i := range nodes {
			rk.stack.Push(nodes[i])
		}
		e.startQuantum(r)
	case rsDone, rsCrashed:
		// Unreachable: the run only finishes after every admitted job
		// drained, and serving excludes fault plans.
	}
}

// svConsume books a node expansion against its job: d is
// (children - 1) for an internal node and -1 for a leaf. Called from
// startQuantum's expansion loop.
func (e *engine) svConsume(job uint32, d int64) {
	if e.par != nil {
		// Parallel window: engine-local delta, folded at the barrier.
		e.svDelta[job] += d
		if d < 0 {
			e.svLastDec[job] = e.kernel.Now()
		}
		return
	}
	sv := e.sv
	sv.live[job] += d
	if d < 0 && sv.live[job] == 0 {
		sv.lastDec[job] = e.kernel.Now()
		sv.pending = append(sv.pending, job)
		if !sv.armed {
			sv.armed = true
			e.kernel.After(0, sv.resolveFn)
		}
	}
}

// svResolve drains the sequential completion queue: each parked job
// either receives its next wave or completes.
func (e *engine) svResolve() {
	sv := e.sv
	sv.armed = false
	for i := 0; i < len(sv.pending); i++ {
		job := sv.pending[i]
		if sv.live[job] != 0 || sv.doneAt[job] >= 0 {
			continue
		}
		j := &sv.sched.Jobs[job]
		if int(sv.waveNext[job]) < len(j.Waves) {
			w := j.Waves[sv.waveNext[job]]
			sv.waveNext[job]++
			sv.live[job] += int64(len(w))
			e.injectNodes(int(j.Root), w)
			continue
		}
		e.svComplete(job, sv.lastDec[job])
	}
	sv.pending = sv.pending[:0]
	e.svCheckFinish()
}

// svComplete books job completion at instant at.
func (e *engine) svComplete(job uint32, at sim.Time) {
	sv := e.sv
	j := &sv.sched.Jobs[job]
	sv.doneAt[job] = at
	if at > sv.maxDone {
		sv.maxDone = at
	}
	sv.doneJobs++
	e.ev.Record(int(j.Root), at, trace.EvJobDone, int(j.Tenant), int64(j.ID))
	if e.met != nil {
		e.met.jobsDone.Inc()
		sojourn := int64(at.Sub(j.At))
		e.met.jobSojourn.Observe(sojourn)
		e.met.tenantSojourn[j.Tenant].Observe(sojourn)
	}
}

// svHorizon is the horizon tick: it keeps the kernel alive through
// the arrival window and, sequentially, arms the finish check.
func (e *engine) svHorizon() {
	if e.par != nil {
		return // the barrier decides from window bounds instead
	}
	e.sv.horizonTicked = true
	e.svCheckFinish()
}

// svCheckFinish ends a sequential serving run once the horizon has
// ticked and every admitted job completed. The finish instant is the
// current virtual time: the horizon itself when the jobs drained
// early, or the final completion when the drain outlived it.
func (e *engine) svCheckFinish() {
	sv := e.sv
	if sv.finished || !sv.horizonTicked || sv.doneJobs != sv.sched.Admitted {
		return
	}
	sv.finished = true
	e.serveFinish(e.kernel.Now())
}

// serveFinish ends the run at instant at: every rank is marked done
// and its pending quantum cancelled. Events still queued (steal
// retries, in-flight replies) no-op against rsDone ranks, so the
// kernels drain. Called from sequential event context or from a
// window barrier (workers quiescent); at never precedes a recorded
// transition in either case.
func (e *engine) serveFinish(at sim.Time) {
	e.detected = true
	e.detectedAt = at
	if e.par != nil {
		e.par.markDetected(at)
	}
	for r := range e.ranks {
		rk := &e.ranks[r]
		if rk.state == rsDone {
			continue
		}
		e.ev.Record(r, at, trace.EvTerminate, -1, 0)
		if e.rec != nil && rk.state != rsWorking {
			e.rec.EndSession(r, at, false)
		}
		e.kernelFor(r).Cancel(rk.quantum)
		rk.quantum = sim.Event{}
		rk.state = rsDone
		e.doneCount++
	}
}

// serveBarrier folds the shard engines' per-window deltas into the
// shared job counters, injects follow-up waves, and decides the
// finish. Runs in the coordinator at each window barrier: workers are
// quiescent, so cross-shard reads and writes are single-threaded and
// the fold order (jobs ascending, shards ascending) is fixed.
func (ps *parShared) serveBarrier(info par.WindowInfo) {
	e0 := ps.engines[0]
	sv := e0.sv
	if sv.finished {
		return
	}
	for j := range sv.live {
		var last sim.Time = -1
		for _, en := range ps.engines {
			if en.svDelta[j] != 0 {
				sv.live[j] += en.svDelta[j]
				en.svDelta[j] = 0
			}
			if en.svLastDec[j] >= 0 {
				if en.svLastDec[j] > last {
					last = en.svLastDec[j]
				}
				en.svLastDec[j] = -1
			}
		}
		if sv.live[j] != 0 || sv.waveNext[j] == 0 || sv.doneAt[j] >= 0 {
			continue
		}
		if last < 0 {
			last = info.Start
		}
		job := &sv.sched.Jobs[j]
		if int(sv.waveNext[j]) < len(job.Waves) {
			w := job.Waves[sv.waveNext[j]]
			sv.waveNext[j]++
			sv.live[j] += int64(len(w))
			root := int(job.Root)
			oe := ps.engines[ps.shardOf[root]]
			oe.kernel.At(info.Start, func() { oe.injectNodes(root, w) })
			continue
		}
		e0.svComplete(uint32(j), last)
	}
	if sv.doneJobs == sv.sched.Admitted && info.Start > sv.horizonAt {
		sv.finished = true
		e0.serveFinish(info.Start)
	}
}
