package core

import (
	"testing"

	"distws/internal/sim"
	"distws/internal/uts"
	"distws/internal/victim"
)

func TestOneSidedCountsCorrectly(t *testing.T) {
	want := seqCount(t, "T3")
	for _, steal := range []StealPolicy{StealOne, StealHalf} {
		res, err := Run(Config{
			Tree:     uts.MustPreset("T3").Params,
			Ranks:    8,
			Selector: victim.NewUniformRandom,
			Steal:    steal,
			Protocol: OneSided,
			Seed:     31,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Nodes != want.Nodes || res.Leaves != want.Leaves {
			t.Fatalf("one-sided %v: %d/%d nodes/leaves, want %d/%d",
				steal, res.Nodes, res.Leaves, want.Nodes, want.Leaves)
		}
		if res.Premature {
			t.Fatalf("one-sided %v flagged premature", steal)
		}
	}
}

func TestOneSidedFasterStealsUnderLoad(t *testing.T) {
	// One-sided steals bypass the victim's polling loop and per-request
	// CPU costs, so mean search time must not be worse than two-sided
	// on the same workload (it is the point of the paper's §VII and of
	// Dinan et al.'s design).
	run := func(p Protocol) *Result {
		res, err := Run(Config{
			Tree:      uts.MustPreset("H-TINY").Params,
			Ranks:     64,
			ChunkSize: 4,
			Selector:  victim.NewUniformRandom,
			Steal:     StealHalf,
			Protocol:  p,
			// Exaggerate the two-sided handicap: coarse polling.
			PollInterval: 50,
			Seed:         13,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	two := run(TwoSided)
	one := run(OneSided)
	if one.Nodes != two.Nodes {
		t.Fatalf("protocols disagree on node count: %d vs %d", one.Nodes, two.Nodes)
	}
	if one.MeanSearchTime > two.MeanSearchTime {
		t.Fatalf("one-sided search %v slower than two-sided %v", one.MeanSearchTime, two.MeanSearchTime)
	}
	if one.Makespan >= two.Makespan {
		t.Fatalf("one-sided makespan %v not better than two-sided %v under coarse polling", one.Makespan, two.Makespan)
	}
}

func TestAbortingStealsComplete(t *testing.T) {
	want := seqCount(t, "T3S")
	res, err := Run(Config{
		Tree:         uts.MustPreset("T3S").Params,
		Ranks:        32,
		ChunkSize:    4,
		Selector:     victim.NewUniformRandom,
		Steal:        StealHalf,
		StealTimeout: 5 * sim.Microsecond, // aggressive: most waits abort
		Seed:         17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != want.Nodes {
		t.Fatalf("aborting run counted %d nodes, want %d", res.Nodes, want.Nodes)
	}
	if res.Premature {
		t.Fatal("aborting run flagged premature")
	}
	if res.AbortedSteals == 0 {
		t.Fatal("no aborts despite a 5µs timeout")
	}
}

func TestAbortTimeoutLongerThanRTTNeverFires(t *testing.T) {
	res, err := Run(Config{
		Tree:         uts.MustPreset("T3").Params,
		Ranks:        8,
		Selector:     victim.NewUniformRandom,
		StealTimeout: sim.Second, // far beyond any round trip
		Seed:         19,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AbortedSteals != 0 {
		t.Fatalf("%d aborts with a 1s timeout", res.AbortedSteals)
	}
}

func TestAbortsDisabledByDefault(t *testing.T) {
	res, err := Run(Config{
		Tree:     uts.MustPreset("T3").Params,
		Ranks:    8,
		Selector: victim.NewUniformRandom,
		Seed:     23,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AbortedSteals != 0 {
		t.Fatal("aborts counted without StealTimeout")
	}
}

func TestOneSidedWithAborts(t *testing.T) {
	// The two extensions compose.
	want := seqCount(t, "T3")
	res, err := Run(Config{
		Tree:         uts.MustPreset("T3").Params,
		Ranks:        16,
		ChunkSize:    4,
		Selector:     victim.NewDistanceSkewed,
		Steal:        StealHalf,
		Protocol:     OneSided,
		StealTimeout: 10 * sim.Microsecond,
		Seed:         29,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != want.Nodes || res.Premature {
		t.Fatalf("composed run wrong: %d nodes (want %d), premature=%v",
			res.Nodes, want.Nodes, res.Premature)
	}
}

func TestProtocolString(t *testing.T) {
	if TwoSided.String() != "TwoSided" || OneSided.String() != "OneSided" {
		t.Fatal("protocol names")
	}
}

func TestAbortingDeterministic(t *testing.T) {
	cfg := Config{
		Tree:         uts.MustPreset("T3").Params,
		Ranks:        16,
		ChunkSize:    4,
		Selector:     victim.NewUniformRandom,
		StealTimeout: 8 * sim.Microsecond,
		Seed:         37,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.AbortedSteals != b.AbortedSteals {
		t.Fatalf("aborting runs not deterministic: %v/%d vs %v/%d",
			a.Makespan, a.AbortedSteals, b.Makespan, b.AbortedSteals)
	}
}
