package core

import (
	"reflect"
	"testing"

	"distws/internal/fault"
	"distws/internal/sim"
	"distws/internal/trace"
	"distws/internal/uts"
	"distws/internal/victim"
)

// faultConfig is a small traced run used by the fault tests.
func faultConfig(plan *fault.Plan) Config {
	return Config{
		Tree:   uts.MustPreset("T3").Params,
		Ranks:  16,
		Seed:   7,
		Faults: plan,
	}
}

// checkAccounting asserts the fault-injection conservation law: every
// node the run materialized either completed or is booked as lost.
func checkAccounting(t *testing.T, res *Result) {
	t.Helper()
	if res.Nodes+res.LostNodes != res.NodesGenerated {
		t.Fatalf("accounting broken: completed %d + lost %d != generated %d",
			res.Nodes, res.LostNodes, res.NodesGenerated)
	}
}

// TestFaultAccountingAllSelectors runs an identical crash + straggler +
// lossy-link plan against every victim-selection policy: each surviving
// run must terminate, and completed + lost == generated must hold.
func TestFaultAccountingAllSelectors(t *testing.T) {
	want := seqCount(t, "T3")
	plan := &fault.Plan{
		Seed:       99,
		Crashes:    []fault.Crash{{Rank: 3, At: sim.Time(40 * sim.Microsecond)}, {Rank: 11, At: sim.Time(90 * sim.Microsecond)}},
		Stragglers: []fault.Straggler{{Rank: 5, Compute: 3, Send: 2}},
		Links:      []fault.LinkFault{{From: fault.Wildcard, To: fault.Wildcard, Drop: 0.05}},
	}
	for name, factory := range victim.Strategies {
		cfg := faultConfig(plan)
		cfg.Selector = factory
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.CrashedRanks != 2 {
			t.Fatalf("%s: %d crashed ranks, want 2", name, res.CrashedRanks)
		}
		checkAccounting(t, res)
		if res.NodesGenerated > want.Nodes {
			t.Fatalf("%s: generated %d nodes from a %d-node tree", name, res.NodesGenerated, want.Nodes)
		}
		if res.Premature {
			t.Fatalf("%s: Safra run flagged premature despite loss resolution", name)
		}
		if res.Nodes == want.Nodes && res.LostNodes == 0 && res.LostMessages == 0 {
			// Possible in principle (crashes hitting empty stacks, no
			// drop ever selecting a work message) but with 5% wildcard
			// drop it would mean the plan injected nothing observable.
			if res.Comm.TotalDropped() == 0 {
				t.Fatalf("%s: the fault plan had no observable effect", name)
			}
		}
	}
}

// TestFaultRepeatDeterminism runs the same faulted configuration twice
// and requires byte-identical results: the injector draws from its own
// seeded stream, so adversity replays exactly.
func TestFaultRepeatDeterminism(t *testing.T) {
	plan := &fault.Plan{
		Seed:    4,
		Crashes: []fault.Crash{{Rank: 2, At: sim.Time(60 * sim.Microsecond)}},
		Links:   []fault.LinkFault{{From: fault.Wildcard, To: fault.Wildcard, Drop: 0.1, Dup: 0.1}},
	}
	cfg := faultConfig(plan)
	cfg.Selector = victim.NewDistanceSkewed
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("faulted runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestEmptyPlanEquivalentToNil: an empty plan compiles to no injector
// and the run is identical to a plan-free one.
func TestEmptyPlanEquivalentToNil(t *testing.T) {
	a, err := Run(faultConfig(&fault.Plan{Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(faultConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("empty plan diverged from nil plan:\n%+v\n%+v", a, b)
	}
	if a.PerRankFaults != nil || a.CrashedRanks != 0 {
		t.Fatalf("empty plan populated fault summary: %+v", a)
	}
}

// TestCrashRankZero kills the root owner and ring initiator early: the
// initiator role must move to rank 1 and the run still terminate.
func TestCrashRankZero(t *testing.T) {
	plan := &fault.Plan{
		Crashes: []fault.Crash{{Rank: 0, At: sim.Time(30 * sim.Microsecond)}},
	}
	cfg := faultConfig(plan)
	cfg.CollectEvents = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, res)
	if !res.PerRankFaults[0].Crashed || res.PerRankFaults[0].CrashedAt != sim.Time(30*sim.Microsecond) {
		t.Fatalf("rank 0 fault row wrong: %+v", res.PerRankFaults[0])
	}
	counts := res.Trace.EventCounts()
	if int(trace.EvCrash) >= len(counts) || counts[trace.EvCrash] != 1 {
		t.Fatalf("crash not traced: %v", counts)
	}
}

// TestAllButOneCrashed kills every rank except the last: the lone
// survivor must still detect termination (the degenerate one-rank
// ring), and the whole tree minus the losses must balance.
func TestAllButOneCrashed(t *testing.T) {
	// All seven die at the same instant, before the run can finish:
	// the engine removes them back-to-back (sorted by rank), healing
	// the ring through seven consecutive initiator successions.
	plan := &fault.Plan{}
	for r := 0; r < 7; r++ {
		plan.Crashes = append(plan.Crashes,
			fault.Crash{Rank: r, At: sim.Time(25 * sim.Microsecond)})
	}
	cfg := Config{
		Tree:   uts.MustPreset("T3").Params,
		Ranks:  8,
		Seed:   3,
		Faults: plan,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CrashedRanks != 7 {
		t.Fatalf("%d crashed ranks, want 7", res.CrashedRanks)
	}
	checkAccounting(t, res)
}

// TestStragglerSlowsMakespan: a compute straggler on the root owner
// must strictly lengthen the run without losing any work.
func TestStragglerSlowsMakespan(t *testing.T) {
	base, err := Run(faultConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	plan := &fault.Plan{Stragglers: []fault.Straggler{{Rank: 0, Compute: 4}}}
	slow, err := Run(faultConfig(plan))
	if err != nil {
		t.Fatal(err)
	}
	if slow.Makespan <= base.Makespan {
		t.Fatalf("straggler did not slow the run: %v <= %v", slow.Makespan, base.Makespan)
	}
	if slow.LostNodes != 0 || slow.Nodes != base.Nodes {
		t.Fatalf("straggler lost work: %+v", slow)
	}
	checkAccounting(t, slow)
}

// TestDropsRecovered: heavy control-plane loss must be survivable —
// timeouts retry, lost loot is re-counted, and the tree still balances.
func TestDropsRecovered(t *testing.T) {
	plan := &fault.Plan{
		Seed:  11,
		Links: []fault.LinkFault{{From: fault.Wildcard, To: fault.Wildcard, Drop: 0.25}},
	}
	res, err := Run(faultConfig(plan))
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.TotalDropped() == 0 {
		t.Fatal("25% wildcard drop dropped nothing")
	}
	checkAccounting(t, res)
	if res.Premature {
		t.Fatal("Safra run flagged premature despite loss resolution")
	}
}

// TestDuplicationHarmless: duplicated control messages are absorbed by
// the request-ID protocol; no work is lost or double-counted.
func TestDuplicationHarmless(t *testing.T) {
	want := seqCount(t, "T3")
	plan := &fault.Plan{
		Seed:  12,
		Links: []fault.LinkFault{{From: fault.Wildcard, To: fault.Wildcard, Dup: 0.3}},
	}
	res, err := Run(faultConfig(plan))
	if err != nil {
		t.Fatal(err)
	}
	var duplicated uint64
	for _, d := range res.Comm.Duplicated {
		duplicated += d
	}
	if duplicated == 0 {
		t.Fatal("30% wildcard duplication duplicated nothing")
	}
	if res.Nodes != want.Nodes || res.LostNodes != 0 {
		t.Fatalf("duplication corrupted the tree count: got %d/%d lost %d, want %d",
			res.Nodes, res.NodesGenerated, res.LostNodes, want.Nodes)
	}
	checkAccounting(t, res)
}

// TestInvalidPlanRejected: a plan referencing out-of-range ranks must
// fail Run before any event is scheduled.
func TestInvalidPlanRejected(t *testing.T) {
	plan := &fault.Plan{Crashes: []fault.Crash{{Rank: 99, At: 1000}}}
	if _, err := Run(faultConfig(plan)); err == nil {
		t.Fatal("out-of-range crash rank accepted")
	}
	all := &fault.Plan{}
	for r := 0; r < 16; r++ {
		all.Crashes = append(all.Crashes, fault.Crash{Rank: r, At: 1000})
	}
	if _, err := Run(faultConfig(all)); err == nil {
		t.Fatal("plan with no survivors accepted")
	}
}

// TestCrashRecoveryObservable: crashing a mid-run victim must surface
// in the protocol observables — a crash event, steal timeouts against
// the corpse, and (once a thief refinds work) recovery episodes.
func TestCrashRecoveryObservable(t *testing.T) {
	plan := &fault.Plan{
		Crashes: []fault.Crash{
			{Rank: 1, At: sim.Time(40 * sim.Microsecond)},
			{Rank: 2, At: sim.Time(40 * sim.Microsecond)},
		},
	}
	cfg := faultConfig(plan)
	cfg.CollectEvents = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, res)
	if res.AbortedSteals == 0 {
		t.Fatal("no steal ever timed out against the crashed ranks")
	}
	counts := res.Trace.EventCounts()
	if int(trace.EvCrash) >= len(counts) || counts[trace.EvCrash] != 2 {
		t.Fatalf("crashes not traced: %v", counts)
	}
	if int(trace.EvStealRetry) < len(counts) && counts[trace.EvStealRetry] == 0 {
		t.Fatal("timeouts retried but no retry event recorded")
	}
}
