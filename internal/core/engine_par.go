package core

// Sharded execution (DESIGN.md §13): the ranks are partitioned
// contiguously across Config.Shards engines, one per shard, each
// driving its own sequential sim.Kernel and comm.Network. The shard
// kernels advance in lockstep over conservative time windows
// (internal/sim/par) whose width is the minimum cross-shard message
// latency of the topology (topology.MinCrossLatency): no message
// staged during a window can be due before the window ends, so each
// shard may run its window to completion without hearing from the
// others. Cross-shard messages are claimed on the send path by a
// comm router, staged into per-shard-pair queues and merged at the
// barrier in (when, sent, sender, seq) order — a total order that does
// not depend on how the window's goroutines interleaved.
//
// Windows in which a non-local decision could occur are serialized:
// the coordinator steps the shard kernels one virtual instant at a
// time in global timestamp order (ties to the lowest shard index),
// which is exactly a sequential simulation. The triggers are
//
//  1. the detector does not implement term.DecisionAware (no way to
//     rule a verdict out, so never run parallel),
//  2. a fault plan with crashes, from the first crash time onward —
//     crash handling scans and mutates cross-shard state (ring
//     healing, dead-lettering, the initiator scan),
//  3. a fault plan once termination is detected (a premature Ring
//     verdict can dead-letter in-flight work at done ranks, booking
//     loss against remote senders),
//  4. a termination token is due at the initiator inside the window
//     (OnToken at the initiator can decide), and
//  5. the detector reports a parked token at the initiator could
//     decide on its next OnIdle (term.DecisionAware).
//
// Triggers 4 and 5 make every verdict land in a serialized window, so
// Result.Makespan and the termination broadcast are single-threaded
// and deterministic. Everything that runs during parallel windows
// touches only per-rank state owned by the executing shard, lock-free
// atomic metrics, or detector per-rank arrays whose shared fields
// (round, membership, colors of other ranks) are frozen while windows
// run parallel; the -race stress tests pin this.

import (
	"errors"
	"fmt"

	"distws/internal/comm"
	"distws/internal/fault"
	"distws/internal/obs"
	"distws/internal/obs/parprof"
	"distws/internal/sim"
	"distws/internal/sim/par"
	"distws/internal/term"
	"distws/internal/topology"
	"distws/internal/trace"
	"distws/internal/workstack"
)

// parShared is the state shared by the shard engines of one sharded
// run and their window coordinator.
type parShared struct {
	sk      *par.ShardedKernel
	engines []*engine
	// shardOf[r] is rank r's owning shard (contiguous partition).
	shardOf []int
	// da is the detector's serialization capability; nil forces every
	// window serialized.
	da term.DecisionAware
	// init is the current ring initiator, recomputed at each barrier
	// (it only moves when a crash kills it, which happens serialized);
	// routers read it concurrently during windows, so it must not be
	// recomputed mid-window.
	init int

	// haveCrash / firstCrash describe the fault plan's crash schedule.
	haveCrash  bool
	firstCrash sim.Time

	// serialized is the current window's mode, written by the
	// coordinator at the barrier and read by the routers during the
	// window (the barrier provides the happens-before edge). Serialized
	// windows bypass staging: the coordinator interleaves the shards in
	// global timestamp order, so a cross-shard message may be injected
	// into the destination kernel directly — which is also what makes
	// sub-lookahead deliveries (e.g. a terminate broadcast to a rank
	// near the initiator) legal there.
	serialized bool

	// notes[s] collects the delivery times of termination tokens shard
	// s sent toward the initiator (single writer per slice); the
	// coordinator drains them into pending at each barrier and
	// serializes any window in which one is due.
	notes   [][]sim.Time
	pending []sim.Time

	// prof, when non-nil, is the window ledger (Config.ParProfile);
	// cause carries the current window's serialization cause from the
	// Serialize decision to the OnWindow record. Both live purely in
	// coordinator context — recording never touches simulation state, so
	// a profiled run is byte-identical to an unprofiled one.
	prof  *parprof.Ledger
	cause parprof.Cause
}

// markDetected broadcasts the termination verdict to every shard
// engine. Only called from serialized windows (single-threaded).
func (ps *parShared) markDetected(at sim.Time) {
	for _, e := range ps.engines {
		e.detected = true
		e.detectedAt = at
	}
}

// router builds shard s's comm router: it claims every message bound
// for another shard, plus intra-shard messages due at or after the
// current window's end, and notes termination tokens headed for the
// initiator. Staging the beyond-window intra-shard deliveries is what
// keeps same-instant arrivals at one rank in sequential order: a
// cross-shard request and a local one delivered at the same nanosecond
// both go through the (when, sent, sender) merge, which ranks the
// earlier send first exactly as the sequential kernel's insertion
// order does. Only sub-window intra-shard deliveries take the direct
// path, and those can never tie with a barrier-merged message (a
// staged message due inside window [W, W+Δ) would have had to be sent
// before W, so it was merged at a barrier at or before W and already
// sits ahead of the window's resident events).
func (ps *parShared) router(s int) func(*comm.Message, sim.Duration) bool {
	return func(m *comm.Message, delay sim.Duration) bool {
		d := ps.shardOf[m.To]
		when := m.SentAt.Add(delay)
		if ps.serialized {
			if d == s {
				return false // global timestamp order: normal path is exact
			}
			if m.Tag == comm.TagToken && m.To == ps.init {
				ps.notes[s] = append(ps.notes[s], when)
			}
			ps.sk.Kernel(d).AtArg(when, ps.engines[d].net.DeliverFn(), m)
			return true
		}
		if d == s && when < ps.sk.WindowEnd() {
			return false // fires this window; cannot tie with staged arrivals
		}
		if m.Tag == comm.TagToken && m.To == ps.init {
			ps.notes[s] = append(ps.notes[s], when)
		}
		ps.sk.Stage(s, d, when, m.SentAt, m.From, ps.engines[d].net.DeliverFn(), m)
		return true
	}
}

// serializeWindow is the coordinator's per-window policy hook; see the
// package comment for the trigger list. The decision's cause is latched
// in ps.cause for the OnWindow ledger record.
func (ps *parShared) serializeWindow(start, end sim.Time) bool {
	ps.cause = ps.windowCause(start, end)
	return ps.cause.Serialized()
}

// windowCause evaluates the serialization triggers in decision order
// and names the first that fires (parprof's cause taxonomy), or
// CauseNone for a window that may run parallel.
func (ps *parShared) windowCause(start, end sim.Time) parprof.Cause {
	for s := range ps.notes {
		ps.pending = append(ps.pending, ps.notes[s]...)
		ps.notes[s] = ps.notes[s][:0]
	}
	keep := ps.pending[:0]
	tokenDue := false
	for _, t := range ps.pending {
		if t < start {
			continue // delivered in a past window
		}
		if t < end {
			tokenDue = true
		}
		keep = append(keep, t)
	}
	ps.pending = keep
	e0 := ps.engines[0]
	ps.init = e0.initiator()
	switch {
	case ps.da == nil:
		return parprof.CauseDetector
	case e0.inj != nil && ((ps.haveCrash && end > ps.firstCrash) || e0.detected):
		return parprof.CauseCrashPlan
	case tokenDue:
		return parprof.CauseTokenDue
	case ps.da.IdleDecisionPossible(ps.init):
		return parprof.CauseIdleDecision
	}
	return parprof.CauseNone
}

// runSharded executes cfg across cfg.Shards window-synchronized shard
// engines. Reached from Run once the config validated and the job
// placed; cfg.Shards >= 2 here.
func runSharded(cfg Config, job *topology.Job) (*Result, error) {
	if cfg.testProbe != nil {
		return nil, errors.New("core: testProbe is incompatible with Shards > 1")
	}
	shards := cfg.Shards
	shardOf := make([]int, cfg.Ranks)
	for r := range shardOf {
		shardOf[r] = r * shards / cfg.Ranks
	}
	lookahead, cross, err := topology.MinCrossLatency(job, shardOf, cfg.Latency)
	if err != nil {
		return nil, fmt.Errorf("core: shards=%d: %w", shards, err)
	}
	if !cross {
		// Unreachable for 2 <= shards <= ranks (every shard is
		// nonempty), but fail loudly rather than divide time by zero.
		return nil, fmt.Errorf("core: shards=%d: partition has no cross-shard rank pair", shards)
	}

	inj, err := fault.Compile(cfg.Faults, cfg.Ranks, nil)
	if err != nil {
		return nil, err
	}
	if inj.NeedsInterposer() {
		return nil, errors.New("core: fault plans with link faults or straggler send multipliers need the send-path interposer and cannot be sharded")
	}

	sk := par.New(shards, lookahead)
	det := cfg.Detector(cfg.Ranks)
	sv, err := compileServe(cfg)
	if err != nil {
		return nil, err
	}
	if sv != nil {
		// Serving replaces the detector; the open detector's constant
		// IdleDecisionPossible=false keeps every window parallel.
		det = openDetector{}
	}
	da, _ := det.(term.DecisionAware)
	ps := &parShared{
		sk:      sk,
		shardOf: shardOf,
		da:      da,
		notes:   make([][]sim.Time, shards),
	}
	if inj != nil {
		for _, c := range cfg.Faults.SortedCrashes() {
			if !ps.haveCrash || c.At < ps.firstCrash {
				ps.haveCrash, ps.firstCrash = true, c.At
			}
		}
	}

	// Shared run state: exactly what the sequential engine would build,
	// wired into every shard engine.
	sel := cfg.Selector(job, cfg.Seed)
	var rec *trace.Recorder
	var ev *obs.Recorder
	if cfg.CollectTrace || cfg.CollectEvents {
		rec = trace.NewRecorder(cfg.Ranks)
	}
	if cfg.CollectEvents {
		ev = obs.NewRecorder(cfg.Ranks, cfg.EventBuffer)
	}
	met := newEngineMetrics(cfg.Metrics, cfg.Ranks, inj != nil, cfg.serveTenants())
	ranks := make([]rank, cfg.Ranks)
	rankArg := make([]any, cfg.Ranks)
	for i := range rankArg {
		rankArg[i] = i
	}

	engines := make([]*engine, shards)
	for s := range engines {
		e := &engine{
			cfg:        cfg,
			kernel:     sk.Kernel(s),
			job:        job,
			det:        det,
			sel:        sel,
			rec:        rec,
			ev:         ev,
			met:        met,
			ranks:      ranks,
			rankArg:    rankArg,
			backoffCfg: cfg.backoff(),
			inj:        inj,
			sv:         sv,
			par:        ps,
		}
		e.kernel.SetTimeLimit(cfg.MaxVirtualTime)
		e.net = comm.New(e.kernel, job, cfg.Latency)
		e.quantumEndFn = func(a any) { e.quantumEnd(a.(int)) }
		engines[s] = e
	}
	ps.engines = engines
	for s, e := range engines {
		e.net.SetRouter(ps.router(s))
	}
	for r := 0; r < cfg.Ranks; r++ {
		ranks[r].stack = workstack.New(cfg.ChunkSize)
		ranks[r].pendingVictim = -1
		r := r
		e := engines[shardOf[r]]
		e.net.SetNotify(r, func() { e.onDelivery(r) })
	}
	if inj != nil {
		for _, e := range engines {
			e.blAfter, e.blFor = e.backoffCfg.BlacklistAfter, e.backoffCfg.BlacklistFor
			if e.blAfter <= 0 {
				e.blAfter = DefaultBackoff.BlacklistAfter
			}
			if e.blFor <= 0 {
				e.blFor = DefaultBackoff.BlacklistFor
			}
			e := e
			e.reprobeFn = e.reprobeSurvivor
		}
		for i := range ranks {
			ranks[i].crashedAt = -1
			ranks[i].timeouts = make(map[int]int)
			ranks[i].blackUntil = make(map[int]sim.Time)
		}
		for _, c := range cfg.Faults.SortedCrashes() {
			c := c
			oe := engines[shardOf[c.Rank]]
			oe.kernel.At(c.At, func() { oe.crashRank(c.Rank) })
		}
	}

	e0 := engines[0]
	if sv == nil {
		// Seed the work exactly as the sequential engine does, in rank
		// order (single-threaded: the windows have not started).
		root := cfg.Tree.Root()
		ranks[0].stack.Push(root)
		ranks[0].generated++
		e0.recordState(0, 0, trace.Active)
		e0.startQuantum(0)
		for r := 1; r < cfg.Ranks; r++ {
			engines[shardOf[r]].goIdle(r)
		}
	} else {
		// Serving: every rank starts idle; each compiled arrival is
		// pre-scheduled on the kernel owning its placement rank (the
		// crash pre-scheduling pattern). The per-engine delta arrays
		// carry job accounting from parallel windows to the barrier
		// fold, and a no-op horizon tick keeps shard 0's kernel (and
		// hence the windows) alive through a quiet arrival plan.
		for _, e := range engines {
			e.svDelta = make([]int64, len(sv.sched.Jobs))
			e.svLastDec = make([]sim.Time, len(sv.sched.Jobs))
			for i := range e.svLastDec {
				e.svLastDec[i] = -1
			}
		}
		for r := 0; r < cfg.Ranks; r++ {
			engines[shardOf[r]].goIdle(r)
		}
		for i := range sv.sched.Jobs {
			idx := i
			oe := engines[shardOf[sv.sched.Jobs[i].Root]]
			oe.kernel.At(sv.sched.Jobs[i].At, func() { oe.svArrive(idx) })
		}
		e0.kernel.At(sv.horizonAt, func() {})
	}

	if cfg.ParProfile {
		ps.prof = parprof.New(shards, lookahead)
	}
	hooks := par.Hooks{
		Serialize: ps.serializeWindow,
		OnWindow: func(info par.WindowInfo) {
			ps.serialized = info.Serialized
			if sv != nil {
				// Workers are quiescent and the upcoming window has not
				// started: fold the job-accounting deltas, inject due
				// waves at info.Start, and decide the finish.
				ps.serveBarrier(info)
			}
			if ps.prof == nil {
				return
			}
			cause := parprof.CauseNone
			if info.Serialized {
				// ps.cause was latched by serializeWindow for this
				// window; CauseCallerForced is the defensive fallback
				// for par users whose Serialize bypasses the policy.
				if cause = ps.cause; cause == parprof.CauseNone {
					cause = parprof.CauseCallerForced
				}
			}
			ps.prof.Record(info.Start, info.End, cause, info.Merged, info.Pairs)
		},
		Wall: cfg.ParWallProbe,
	}
	if err := sk.Run(hooks); err != nil {
		return nil, fmt.Errorf("core: sharded simulation (%d shards) aborted: %w", shards, err)
	}
	if !e0.detected {
		return nil, fmt.Errorf("core: event queue drained without termination detection")
	}
	totals := make([]engineTotals, shards)
	for s, e := range engines {
		totals[s] = e.totals()
	}
	res := e0.resultFrom(mergeTotals(totals))
	res.Par = ps.prof
	return res, nil
}
