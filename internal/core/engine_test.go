package core

import (
	"testing"

	"distws/internal/metrics"
	"distws/internal/sim"
	"distws/internal/term"
	"distws/internal/topology"
	"distws/internal/uts"
	"distws/internal/victim"
)

// seqCount caches sequential enumerations of the test trees.
var seqCache = map[string]uts.CountResult{}

func seqCount(t testing.TB, preset string) uts.CountResult {
	t.Helper()
	if r, ok := seqCache[preset]; ok {
		return r
	}
	r, err := uts.CountSequential(uts.MustPreset(preset).Params)
	if err != nil {
		t.Fatal(err)
	}
	seqCache[preset] = r
	return r
}

func TestValidateConfig(t *testing.T) {
	bad := Config{Tree: uts.MustPreset("T3").Params, Ranks: 0}
	if _, err := Run(bad); err == nil {
		t.Fatal("zero ranks accepted")
	}
	badTree := Config{Tree: uts.Params{Type: uts.Binomial, NonLeafBF: 2, NonLeafProb: 0.6}, Ranks: 2}
	if _, err := Run(badTree); err == nil {
		t.Fatal("supercritical tree accepted")
	}
}

func TestSingleRankMatchesSequential(t *testing.T) {
	want := seqCount(t, "T3")
	res, err := Run(Config{
		Tree:  uts.MustPreset("T3").Params,
		Ranks: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != want.Nodes || res.Leaves != want.Leaves || res.MaxDepth != want.MaxDepth {
		t.Fatalf("got %d/%d/%d, want %+v", res.Nodes, res.Leaves, res.MaxDepth, want)
	}
	if res.Premature {
		t.Fatal("single-rank run flagged premature")
	}
	// Makespan ~ sequential time (single worker, no steals).
	if res.Makespan < res.SequentialTime {
		t.Fatalf("makespan %v < sequential %v", res.Makespan, res.SequentialTime)
	}
	if res.Efficiency > 1.0 || res.Efficiency < 0.9 {
		t.Fatalf("single-rank efficiency %v", res.Efficiency)
	}
	if res.StealRequests != 0 || res.FailedSteals != 0 {
		t.Fatalf("phantom steals: %+v", res)
	}
}

func TestAllStrategiesCountCorrectly(t *testing.T) {
	want := seqCount(t, "T3")
	for name, factory := range victim.Strategies {
		for _, steal := range []StealPolicy{StealOne, StealHalf} {
			res, err := Run(Config{
				Tree:     uts.MustPreset("T3").Params,
				Ranks:    8,
				Selector: factory,
				Steal:    steal,
				Seed:     7,
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, steal, err)
			}
			if res.Nodes != want.Nodes || res.Leaves != want.Leaves {
				t.Fatalf("%s/%v: counted %d nodes / %d leaves, want %d / %d",
					name, steal, res.Nodes, res.Leaves, want.Nodes, want.Leaves)
			}
			if res.MaxDepth != want.MaxDepth {
				t.Fatalf("%s/%v: depth %d, want %d", name, steal, res.MaxDepth, want.MaxDepth)
			}
			if res.Premature {
				t.Fatalf("%s/%v: premature termination with Safra", name, steal)
			}
			if res.Speedup <= 0 || res.Speedup > 8 {
				t.Fatalf("%s/%v: speedup %v", name, steal, res.Speedup)
			}
		}
	}
}

func TestAllPlacementsCountCorrectly(t *testing.T) {
	want := seqCount(t, "T3S")
	for _, p := range []topology.Placement{topology.OnePerNode, topology.EightRoundRobin, topology.EightGrouped} {
		res, err := Run(Config{
			Tree:      uts.MustPreset("T3S").Params,
			Ranks:     32,
			Placement: p,
			Selector:  victim.NewUniformRandom,
			Steal:     StealHalf,
			Seed:      11,
		})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.Nodes != want.Nodes {
			t.Fatalf("%v: %d nodes, want %d", p, res.Nodes, want.Nodes)
		}
		if res.Efficiency <= 0.2 {
			t.Fatalf("%v: efficiency %v suspiciously low at 32 ranks", p, res.Efficiency)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{
		Tree:         uts.MustPreset("T3").Params,
		Ranks:        16,
		Selector:     victim.NewDistanceSkewed,
		Steal:        StealHalf,
		Seed:         42,
		CollectTrace: true,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.FailedSteals != b.FailedSteals ||
		a.StealRequests != b.StealRequests || a.Nodes != b.Nodes ||
		a.MeanSearchTime != b.MeanSearchTime {
		t.Fatalf("same-seed runs differ:\n%+v\n%+v", a, b)
	}
	if a.Trace.TotalSessions() != b.Trace.TotalSessions() {
		t.Fatal("traces differ")
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	base := Config{
		Tree:     uts.MustPreset("T3").Params,
		Ranks:    16,
		Selector: victim.NewUniformRandom,
		Seed:     1,
	}
	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Seed = 2
	b, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if a.Nodes != b.Nodes {
		t.Fatal("node counts must not depend on the seed")
	}
	if a.Makespan == b.Makespan && a.StealRequests == b.StealRequests {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

func TestTraceIsValidAndConsistent(t *testing.T) {
	res, err := Run(Config{
		Tree:         uts.MustPreset("T3").Params,
		Ranks:        8,
		Selector:     victim.NewUniformRandom,
		Seed:         3,
		CollectTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("no trace collected")
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Trace.End != sim.Time(res.Makespan) {
		t.Fatalf("trace end %v != makespan %v", res.Trace.End, res.Makespan)
	}
	c := metrics.Occupancy(res.Trace)
	if c.Wmax() < 1 || c.Wmax() > 8 {
		t.Fatalf("Wmax = %d", c.Wmax())
	}
	mo := c.MeanOccupancy()
	if mo <= 0 || mo > 1 {
		t.Fatalf("mean occupancy %v", mo)
	}
	// Mean occupancy equals efficiency up to overheads (the busy time
	// is exactly nodes * nodeCost).
	if mo < res.Efficiency-1e-9 {
		t.Fatalf("mean occupancy %v below efficiency %v", mo, res.Efficiency)
	}
	// Sessions recorded.
	if res.Sessions == 0 || res.Trace.TotalSessions() == 0 {
		t.Fatal("no work-discovery sessions recorded")
	}
	if res.MeanSessionDuration <= 0 {
		t.Fatalf("mean session duration %v", res.MeanSessionDuration)
	}
}

func TestNoTraceByDefault(t *testing.T) {
	res, err := Run(Config{Tree: uts.MustPreset("T3").Params, Ranks: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("trace collected without CollectTrace")
	}
}

func TestRingDetectorSmallRuns(t *testing.T) {
	want := seqCount(t, "T3")
	res, err := Run(Config{
		Tree:     uts.MustPreset("T3").Params,
		Ranks:    8,
		Selector: victim.NewUniformRandom,
		Detector: term.NewRing,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detector != "Ring" {
		t.Fatalf("detector %q", res.Detector)
	}
	// The ring detector may in principle fire early; if it did not,
	// counts must match. Either way the Premature flag must be accurate.
	if res.Premature {
		if res.Nodes >= want.Nodes {
			t.Fatal("flagged premature but counted everything")
		}
	} else if res.Nodes != want.Nodes {
		t.Fatalf("not premature yet counted %d of %d nodes", res.Nodes, want.Nodes)
	}
}

func TestStealHalfTransfersMoreChunks(t *testing.T) {
	mk := func(p StealPolicy) *Result {
		res, err := Run(Config{
			Tree:      uts.MustPreset("H-SMALL").Params,
			Ranks:     16,
			ChunkSize: 4,
			Selector:  victim.NewUniformRandom,
			Steal:     p,
			Seed:      9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one, half := mk(StealOne), mk(StealHalf)
	if one.SuccessfulSteals == 0 || half.SuccessfulSteals == 0 {
		t.Fatal("no steals happened")
	}
	cpsOne := float64(one.ChunksTransferred) / float64(one.SuccessfulSteals)
	cpsHalf := float64(half.ChunksTransferred) / float64(half.SuccessfulSteals)
	if cpsOne > 1.0001 {
		t.Fatalf("StealOne moved %.2f chunks per steal", cpsOne)
	}
	if cpsHalf <= 1.05 {
		t.Fatalf("StealHalf moved only %.2f chunks per steal", cpsHalf)
	}
}

func TestWorkConservationUnderChunkSizes(t *testing.T) {
	want := seqCount(t, "T3")
	for _, cs := range []int{1, 4, 20, 64} {
		res, err := Run(Config{
			Tree:      uts.MustPreset("T3").Params,
			Ranks:     8,
			Selector:  victim.NewUniformRandom,
			ChunkSize: cs,
			Seed:      13,
		})
		if err != nil {
			t.Fatalf("chunk %d: %v", cs, err)
		}
		if res.Nodes != want.Nodes {
			t.Fatalf("chunk %d: %d nodes, want %d", cs, res.Nodes, want.Nodes)
		}
	}
}

func TestBackoffDisabledStillCorrect(t *testing.T) {
	want := seqCount(t, "T3")
	res, err := Run(Config{
		Tree:          uts.MustPreset("T3").Params,
		Ranks:         8,
		Selector:      victim.NewUniformRandom,
		BackoffPolicy: Backoff{Threshold: -1},
		Seed:          17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != want.Nodes || res.Premature {
		t.Fatalf("backoff-disabled run wrong: %d nodes, premature=%v", res.Nodes, res.Premature)
	}
}

func TestUniformLatencyMakesSelectorsEquivalent(t *testing.T) {
	// Under a flat latency model the Tofu selector loses its advantage:
	// its makespan must be within noise of uniform random. This guards
	// against the selector accidentally encoding anything beyond
	// distance weighting.
	flat := &topology.UniformLatency{Fixed: 5 * sim.Microsecond}
	run := func(f victim.Factory, seed uint64) sim.Duration {
		res, err := Run(Config{
			Tree:     uts.MustPreset("T3S").Params,
			Ranks:    32,
			Selector: f,
			Latency:  flat,
			Steal:    StealHalf,
			Seed:     seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	var randTotal, tofuTotal sim.Duration
	for seed := uint64(0); seed < 3; seed++ {
		randTotal += run(victim.NewUniformRandom, seed)
		tofuTotal += run(victim.NewDistanceSkewed, seed)
	}
	ratio := float64(tofuTotal) / float64(randTotal)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("flat-latency Tofu/Rand makespan ratio %v, want ~1", ratio)
	}
}

func TestSpeedupBoundedByRanks(t *testing.T) {
	res, err := Run(Config{
		Tree:     uts.MustPreset("T3S").Params,
		Ranks:    64,
		Selector: victim.NewDistanceSkewed,
		Steal:    StealHalf,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup > 64 {
		t.Fatalf("speedup %v exceeds rank count", res.Speedup)
	}
	if res.Speedup < 1 {
		t.Fatalf("64 ranks slower than sequential: %v", res.Speedup)
	}
	if res.Makespan < res.SequentialTime/64 {
		t.Fatal("makespan below critical-path bound")
	}
}

func TestGranularityCost(t *testing.T) {
	if GranularityCost(0) != DefaultNodeCost || GranularityCost(1) != DefaultNodeCost {
		t.Fatal("base granularity")
	}
	if GranularityCost(24) != 24*DefaultNodeCost {
		t.Fatal("scaled granularity")
	}
}

func TestCommCountersConsistent(t *testing.T) {
	res, err := Run(Config{
		Tree:     uts.MustPreset("T3").Params,
		Ranks:    8,
		Selector: victim.NewUniformRandom,
		Seed:     23,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Comm
	// Every steal request got exactly one reply.
	requests := s.SentByTag(0) // TagStealRequest
	replies := s.SentByTag(1) + s.SentByTag(2)
	if requests != replies {
		t.Fatalf("%d requests but %d replies", requests, replies)
	}
	if res.StealRequests != requests {
		t.Fatalf("engine counted %d requests, network %d", res.StealRequests, requests)
	}
	// Replies to requests outstanding at termination are dropped, so
	// the gap is bounded by one request per rank.
	answered := res.SuccessfulSteals + res.FailedSteals
	if answered > res.StealRequests {
		t.Fatalf("more answers than requests: %d > %d", answered, res.StealRequests)
	}
	if res.StealRequests-answered > uint64(res.Ranks) {
		t.Fatalf("steal accounting: %d requests, %d answered, gap > ranks",
			res.StealRequests, answered)
	}
}

func TestRoundRobinWorseAtScale(t *testing.T) {
	// The paper's headline observation, in miniature: at a few hundred
	// ranks the deterministic round-robin selection is slower and fails
	// more than uniform random selection (paper Figures 3, 6, 7).
	run := func(f victim.Factory) *Result {
		res, err := Run(Config{
			Tree:          uts.MustPreset("H-SMALL").Params,
			Ranks:         256,
			ChunkSize:     4,
			Selector:      f,
			Seed:          29,
			BackoffPolicy: Backoff{Threshold: -1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rr := run(victim.NewRoundRobin)
	rnd := run(victim.NewUniformRandom)
	if rr.FailedSteals <= rnd.FailedSteals {
		t.Fatalf("round robin failed %d <= random %d", rr.FailedSteals, rnd.FailedSteals)
	}
	if rr.Makespan <= rnd.Makespan {
		t.Fatalf("round robin makespan %v <= random %v", rr.Makespan, rnd.Makespan)
	}
}

func BenchmarkRunT3Rand16(b *testing.B) {
	cfg := Config{
		Tree:     uts.MustPreset("T3").Params,
		Ranks:    16,
		Selector: victim.NewUniformRandom,
		Steal:    StealHalf,
		Seed:     1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunT3STofu64(b *testing.B) {
	cfg := Config{
		Tree:     uts.MustPreset("T3S").Params,
		Ranks:    64,
		Selector: victim.NewDistanceSkewed,
		Steal:    StealHalf,
		Seed:     1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestImbalanceStatistics(t *testing.T) {
	res, err := Run(Config{
		Tree:      uts.MustPreset("H-TINY").Params,
		Ranks:     16,
		ChunkSize: 4,
		Selector:  victim.NewUniformRandom,
		Steal:     StealHalf,
		Seed:      41,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxRankNodes < res.MinRankNodes {
		t.Fatalf("max %d < min %d", res.MaxRankNodes, res.MinRankNodes)
	}
	if res.MaxRankNodes > res.Nodes {
		t.Fatal("max rank nodes exceeds total")
	}
	mean := float64(res.Nodes) / 16
	if res.Imbalance < 1.0-1e-9 {
		t.Fatalf("imbalance %v below 1 (max %d, mean %.1f)", res.Imbalance, res.MaxRankNodes, mean)
	}
	// Single rank: perfectly "balanced" by definition.
	solo, err := Run(Config{Tree: uts.MustPreset("T3").Params, Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if solo.Imbalance != 1.0 || solo.MaxRankNodes != solo.Nodes || solo.MinRankNodes != solo.Nodes {
		t.Fatalf("solo imbalance stats wrong: %+v", solo)
	}
}
