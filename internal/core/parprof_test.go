package core

import (
	"bytes"
	"fmt"
	"testing"

	"distws/internal/fault"
	"distws/internal/obs"
	"distws/internal/obs/parprof"
	"distws/internal/sim"
	"distws/internal/term"
	"distws/internal/topology"
	"distws/internal/uts"
	"distws/internal/victim"
)

// runProfiled executes cfg with ParProfile on and a fresh registry,
// returning the canonical golden dump plus the recorded window ledger.
// The ledger is identity-checked on every call: each window must carry
// exactly one cause, and the per-cause virtual-time shares must
// partition the serialized totals.
func runProfiled(t *testing.T, cfg Config) ([]byte, *parprof.Ledger) {
	t.Helper()
	cfg.ParProfile = true
	cfg.Metrics = obs.NewRegistry()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Par == nil {
		t.Fatal("ParProfile run returned no ledger")
	}
	if err := res.Par.CheckIdentities(); err != nil {
		t.Fatal(err)
	}
	return goldenDump(res, cfg.Metrics), res.Par
}

// ledgerDump renders every byte of ledger state — per-window rows,
// pair matrices, aggregate totals, the traffic matrix — so repeat-run
// comparisons assert bit-determinism of the profile itself, not just
// of its aggregates.
func ledgerDump(l *parprof.Ledger) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "shards=%d lookahead=%d\n", l.Shards(), int64(l.Lookahead()))
	for i, w := range l.Windows() {
		fmt.Fprintf(&buf, "w%d %d..%d cause=%s merged=%d pairs=%v\n",
			i, int64(w.Start), int64(w.End), w.Cause, w.Merged, l.Pairs(i))
	}
	fmt.Fprintf(&buf, "totals=%+v traffic=%v\n", l.Totals(), l.Traffic())
	l.WriteText(&buf)
	return buf.Bytes()
}

// TestParProfileObserverFreedom is the tentpole acceptance check:
// profiling a sharded run must not perturb it. The golden Figure 9
// configuration at 2 and 4 shards produces a byte-identical canonical
// dump (results, trace, event log, Prometheus exposition) with and
// without ParProfile — recording happens at barriers, in coordinator
// context, and sim_par_* metrics only exist via parprof.Publish
// outside Run.
func TestParProfileObserverFreedom(t *testing.T) {
	for _, shards := range []int{2, 4} {
		cfg := goldenFig9Config()
		cfg.Shards = shards
		want := runDump(t, cfg)
		got, l := runProfiled(t, cfg)
		if !bytes.Equal(got, want) {
			t.Fatalf("shards=%d: profiling perturbed the run\n%s",
				shards, diffHint(want, got))
		}
		if l.Shards() != shards || l.Lookahead() <= 0 {
			t.Fatalf("shards=%d: ledger shape = %d shards, lookahead %v",
				shards, l.Shards(), l.Lookahead())
		}
		if tot := l.Totals(); tot.Windows == 0 || tot.Staged == 0 {
			t.Fatalf("shards=%d: profiled run recorded no activity: %+v", shards, tot)
		}
	}
}

// TestParProfileSequentialRun pins the degenerate ledger: the
// sequential kernel has no windows, so a profiled shards<=1 run
// returns the documented empty single-shard ledger — and stays
// byte-identical to the unprofiled sequential run.
func TestParProfileSequentialRun(t *testing.T) {
	cfg := goldenFig9Config()
	want := runDump(t, cfg)
	got, l := runProfiled(t, cfg)
	if !bytes.Equal(got, want) {
		t.Fatalf("profiling perturbed the sequential run\n%s", diffHint(want, got))
	}
	if l.Shards() != 1 || l.Lookahead() != 0 {
		t.Fatalf("sequential ledger shape: %d shards, lookahead %v", l.Shards(), l.Lookahead())
	}
	if len(l.Windows()) != 0 || l.SerializedShare() != 0 {
		t.Fatalf("sequential ledger is not empty: %d windows", len(l.Windows()))
	}
}

// noDecision hides a detector's term.DecisionAware implementation, so
// the sharded engine can never prove a window decision-free.
type noDecision struct{ term.Detector }

// TestParProfileAllSerialized covers the all-serialized edge: with a
// decision-blind detector every window must serialize under
// CauseDetector, the parallel share must be exactly zero — and the run
// must still match the sequential engine byte for byte (serialized
// windows are the fallback that makes any detector shardable).
func TestParProfileAllSerialized(t *testing.T) {
	base := Config{
		Tree:          uts.MustPreset("H-TINY").Params,
		Ranks:         32,
		Placement:     topology.OnePerNode,
		Selector:      victim.NewRoundRobin,
		Steal:         StealOne,
		Seed:          5,
		Detector:      func(n int) term.Detector { return noDecision{term.NewSafra(n)} },
		CollectTrace:  true,
		CollectEvents: true,
	}
	want := runDump(t, base)
	cfg := base
	cfg.Shards = 4
	got, l := runProfiled(t, cfg)
	if !bytes.Equal(got, want) {
		t.Fatalf("all-serialized sharded run diverged from sequential\n%s", diffHint(want, got))
	}
	tot := l.Totals()
	if tot.Windows == 0 || tot.Serialized != tot.Windows || tot.Parallel != 0 {
		t.Fatalf("decision-blind run not fully serialized: %+v", tot)
	}
	if tot.ByCause[parprof.CauseDetector].Windows != tot.Windows {
		t.Fatalf("windows not attributed to detector-decision: %+v", tot.ByCause)
	}
	if l.SerializedShare() != 1 {
		t.Fatalf("SerializedShare = %v, want 1", l.SerializedShare())
	}
}

// TestParProfileCrashCause checks the crash-plan attribution: a
// sharded crash run serializes every window from the first crash
// onward, and the ledger blames those windows on crash-plan, not on
// the routine token traffic.
func TestParProfileCrashCause(t *testing.T) {
	cfg := Config{
		Tree:      uts.MustPreset("H-TINY").Params,
		Ranks:     64,
		Placement: topology.OnePerNode,
		Selector:  victim.NewRoundRobin,
		Steal:     StealOne,
		Seed:      7,
		Shards:    4,
		Faults: &fault.Plan{
			Seed: 3,
			Crashes: []fault.Crash{
				{Rank: 5, At: sim.Time(40 * sim.Microsecond)},
				{Rank: 41, At: sim.Time(90 * sim.Microsecond)},
			},
		},
	}
	_, l := runProfiled(t, cfg)
	tot := l.Totals()
	if tot.ByCause[parprof.CauseCrashPlan].Windows == 0 {
		t.Fatalf("crash run attributed no windows to crash-plan: %+v", tot.ByCause)
	}
	// From the first crash time onward every window serializes: the last
	// window must not be parallel.
	ws := l.Windows()
	if last := ws[len(ws)-1]; !last.Serialized() {
		t.Fatalf("final window of a crash run ran parallel: %+v", last)
	}
}

// TestParProfileRepeatByteDeterminism pins bit-determinism of the
// ledger itself on the adversarial dense-placement configuration: a
// fixed (config, seed, shards) triple must reproduce every window row,
// pair matrix, and aggregate byte-for-byte across repetitions.
func TestParProfileRepeatByteDeterminism(t *testing.T) {
	cfg := Config{
		Tree:          uts.MustPreset("H-TINY").Params,
		Ranks:         96,
		Placement:     topology.EightRoundRobin,
		Selector:      victim.NewDistanceSkewed,
		Steal:         StealHalf,
		Seed:          42,
		Shards:        4,
		CollectTrace:  true,
		CollectEvents: true,
	}
	dump, l := runProfiled(t, cfg)
	first, firstLedger := dump, ledgerDump(l)
	for run := 2; run <= 3; run++ {
		dump, l := runProfiled(t, cfg)
		if !bytes.Equal(dump, first) {
			t.Fatalf("run %d dump differed from run 1\n%s", run, diffHint(first, dump))
		}
		if got := ledgerDump(l); !bytes.Equal(got, firstLedger) {
			t.Fatalf("run %d ledger differed from run 1\n%s", run, diffHint(firstLedger, got))
		}
	}
}
