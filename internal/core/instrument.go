package core

import (
	"strconv"

	"distws/internal/obs"
)

// MatrixRankLimit caps the rank count for which the engine maintains a
// dense per-link traffic matrix in the metrics registry: the matrix is
// O(Ranks²) memory, which at the paper's 8192-rank scale would dwarf
// the simulation state itself. Beyond the limit the matrix is simply
// absent from the registry; cmd/tracetool reconstructs full traffic
// matrices from the event log instead.
const MatrixRankLimit = 1024

// Metric names the engine publishes into Config.Metrics. The _ns
// histograms hold virtual nanoseconds: for a deterministic
// configuration the registry contents are a pure function of the run,
// which the determinism test asserts by comparing exposition text.
const (
	MetricStealRequests = "sim_steal_requests_total"
	MetricStealSuccess  = "sim_steal_success_total"
	MetricStealFail     = "sim_steal_fail_total"
	MetricStealAborted  = "sim_steal_aborted_total"
	MetricTokenHops     = "sim_token_hops_total"
	MetricStealLatency  = "sim_steal_latency_ns"
	MetricSession       = "sim_session_ns"
	MetricChunkNodes    = "sim_chunk_nodes"
	MetricLinkMessages  = "sim_link_messages"
)

// Fault metric names, registered only when a fault plan is active so
// that fault-free expositions (pinned by the golden test) are
// byte-identical with or without the subsystem compiled in.
const (
	MetricCrashes         = "sim_crashes_total"
	MetricLostNodes       = "sim_lost_nodes_total"
	MetricLostMessages    = "sim_lost_work_messages_total"
	MetricDupMessages     = "sim_duplicated_messages_total"
	MetricTokenRegens     = "sim_token_regens_total"
	MetricRecoveryLatency = "sim_recovery_latency_ns"
)

// Serving metric names, registered only when Config.Serve is set — the
// same gating discipline as the fault metrics, so closed-system
// expositions stay byte-identical. The per-tenant sojourn histograms
// are MetricJobSojourn suffixed with "_tenant<i>".
const (
	MetricJobsArrived  = "sim_serve_jobs_arrived_total"
	MetricJobsAdmitted = "sim_serve_jobs_admitted_total"
	MetricJobsRejected = "sim_serve_jobs_rejected_total"
	MetricJobsDone     = "sim_serve_jobs_done_total"
	MetricJobSojourn   = "sim_serve_job_sojourn_ns"
)

// engineMetrics pre-resolves the registry handles the hot paths touch,
// so instrumentation costs one nil check plus an atomic add instead of
// a map lookup. A nil *engineMetrics disables metrics collection; the
// obs handles are themselves nil-safe, so a partially populated struct
// (e.g. links absent past MatrixRankLimit) needs no extra branching.
type engineMetrics struct {
	stealRequests *obs.Counter
	stealSuccess  *obs.Counter
	stealFail     *obs.Counter
	stealAborted  *obs.Counter
	tokenHops     *obs.Counter
	stealLatency  *obs.Histogram
	session       *obs.Histogram
	chunkNodes    *obs.Histogram
	links         *obs.Matrix

	// Fault handles; nil (and hence no-ops) for fault-free runs, which
	// keeps them out of the registry's exposition.
	crashes         *obs.Counter
	lostNodes       *obs.Counter
	lostMessages    *obs.Counter
	dupMessages     *obs.Counter
	tokenRegens     *obs.Counter
	recoveryLatency *obs.Histogram

	// Serving handles; nil for closed-system runs.
	jobsArrived   *obs.Counter
	jobsAdmitted  *obs.Counter
	jobsRejected  *obs.Counter
	jobsDone      *obs.Counter
	jobSojourn    *obs.Histogram
	tenantSojourn []*obs.Histogram
}

// newEngineMetrics resolves the handle set for a run: the core handles
// always, the fault handles when a fault plan is active, and the
// serving handles (including tenants per-tenant sojourn histograms)
// when tenants > 0.
func newEngineMetrics(reg *obs.Registry, ranks int, faulted bool, tenants int) *engineMetrics {
	if reg == nil {
		return nil
	}
	m := &engineMetrics{
		stealRequests: reg.Counter(MetricStealRequests),
		stealSuccess:  reg.Counter(MetricStealSuccess),
		stealFail:     reg.Counter(MetricStealFail),
		stealAborted:  reg.Counter(MetricStealAborted),
		tokenHops:     reg.Counter(MetricTokenHops),
		stealLatency:  reg.Histogram(MetricStealLatency),
		session:       reg.Histogram(MetricSession),
		chunkNodes:    reg.Histogram(MetricChunkNodes),
	}
	if ranks <= MatrixRankLimit {
		m.links = reg.Matrix(MetricLinkMessages, ranks)
	}
	if faulted {
		m.crashes = reg.Counter(MetricCrashes)
		m.lostNodes = reg.Counter(MetricLostNodes)
		m.lostMessages = reg.Counter(MetricLostMessages)
		m.dupMessages = reg.Counter(MetricDupMessages)
		m.tokenRegens = reg.Counter(MetricTokenRegens)
		m.recoveryLatency = reg.Histogram(MetricRecoveryLatency)
	}
	if tenants > 0 {
		m.jobsArrived = reg.Counter(MetricJobsArrived)
		m.jobsAdmitted = reg.Counter(MetricJobsAdmitted)
		m.jobsRejected = reg.Counter(MetricJobsRejected)
		m.jobsDone = reg.Counter(MetricJobsDone)
		m.jobSojourn = reg.Histogram(MetricJobSojourn)
		m.tenantSojourn = make([]*obs.Histogram, tenants)
		for i := range m.tenantSojourn {
			m.tenantSojourn[i] = reg.Histogram(MetricJobSojourn + "_tenant" + strconv.Itoa(i))
		}
	}
	return m
}

// link counts one protocol message on the from→to link. Nil-safe on
// both the metrics struct and the (possibly rank-capped) matrix.
func (m *engineMetrics) link(from, to int) {
	if m != nil {
		m.links.Inc(from, to)
	}
}
