package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"distws/internal/dag"
	"distws/internal/obs"
	"distws/internal/serve"
	"distws/internal/sim"
	"distws/internal/uts"
	"distws/internal/victim"
)

// serveTestSpec is a two-tenant open-system plan small enough for the
// unit tests: a gold tenant under a token bucket with a latency SLO,
// and a best-effort silver tenant, both injecting tiny UTS trees.
func serveTestSpec() *serve.Spec {
	tree := uts.Params{
		Type:        uts.Binomial,
		B0:          20,
		NonLeafBF:   2,
		NonLeafProb: 0.45,
		RootSeed:    31,
		Hash:        uts.HashFast,
	}
	return &serve.Spec{
		Horizon:   50 * sim.Millisecond,
		Placement: serve.PlaceRR,
		Tenants: []serve.Tenant{
			{
				Name:    "gold",
				Arrival: serve.ArrivalSpec{Process: serve.ProcPoisson, Mean: sim.Millisecond},
				Admit:   serve.Bucket{Rate: 150, Burst: 2},
				SLO:     serve.SLO{Class: "gold", Target: 10 * sim.Millisecond},
				Work:    serve.Workload{Kind: serve.WorkUTS, Tree: tree},
			},
			{
				Name:    "silver",
				Arrival: serve.ArrivalSpec{Process: serve.ProcGamma, Mean: 6 * sim.Millisecond, Shape: 2},
				Work:    serve.Workload{Kind: serve.WorkUTS, Tree: tree},
			},
		},
	}
}

func serveTestConfig(shards int) Config {
	return Config{
		Ranks:        8,
		Shards:       shards,
		Serve:        serveTestSpec(),
		Seed:         7,
		CollectTrace: true,
	}
}

// serveFingerprint reduces a serving run to a comparable byte blob:
// the full Result (minus the pointer-laden trace), the trace's event
// tallies, and the Prometheus exposition.
func serveFingerprint(t *testing.T, cfg Config) string {
	t.Helper()
	cfg.Metrics = obs.NewRegistry()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Serve == nil {
		t.Fatal("serving run returned nil Serve stats")
	}
	var b bytes.Buffer
	tr := res.Trace
	st := res.Serve
	res.Trace = nil
	res.Par = nil
	res.Serve = nil // a pointer would print as an address
	fmt.Fprintf(&b, "%+v\n", *res)
	fmt.Fprintf(&b, "%+v\n", *st)
	if tr != nil {
		n := 0
		for _, trs := range tr.Transitions {
			n += len(trs)
		}
		fmt.Fprintf(&b, "end=%v transitions=%d\n", tr.End, n)
	}
	if err := cfg.Metrics.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

// TestServeDeterministic pins the headline guarantee: a serving run is
// a pure function of (Config, seed), sequentially and under Shards=4.
func TestServeDeterministic(t *testing.T) {
	for _, shards := range []int{0, 4} {
		a := serveFingerprint(t, serveTestConfig(shards))
		b := serveFingerprint(t, serveTestConfig(shards))
		if a != b {
			t.Errorf("shards=%d: repeat serving runs differ:\n--- first ---\n%s\n--- second ---\n%s", shards, a, b)
		}
	}
}

// TestServeStats checks the serving summary end to end: the admission
// partition identity, full drain of admitted jobs, positive makespan
// bounded below by the horizon, and a defined Jain index.
func TestServeStats(t *testing.T) {
	for _, shards := range []int{0, 4} {
		cfg := serveTestConfig(shards)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("shards=%d: Run: %v", shards, err)
		}
		st := res.Serve
		if st == nil {
			t.Fatalf("shards=%d: nil Serve stats", shards)
		}
		if st.Arrived == 0 {
			t.Fatalf("shards=%d: no arrivals over a 50ms horizon", shards)
		}
		if st.Admitted+st.Rejected != st.Arrived {
			t.Errorf("shards=%d: admitted %d + rejected %d != arrived %d", shards, st.Admitted, st.Rejected, st.Arrived)
		}
		if st.Done != st.Admitted {
			t.Errorf("shards=%d: %d done of %d admitted (run must drain)", shards, st.Done, st.Admitted)
		}
		if st.Rejected == 0 {
			t.Errorf("shards=%d: token bucket rejected nothing; spec too loose to test admission", shards)
		}
		if st.Jain <= 0 || st.Jain > 1 {
			t.Errorf("shards=%d: Jain index %v out of (0, 1]", shards, st.Jain)
		}
		var perTenantArrived uint64
		for _, ts := range st.Tenants {
			if ts.Admitted+ts.Rejected != ts.Arrived {
				t.Errorf("shards=%d: tenant %s: admitted %d + rejected %d != arrived %d",
					shards, ts.Name, ts.Admitted, ts.Rejected, ts.Arrived)
			}
			perTenantArrived += ts.Arrived
		}
		if perTenantArrived != st.Arrived {
			t.Errorf("shards=%d: tenant rows sum to %d arrivals, global says %d", shards, perTenantArrived, st.Arrived)
		}
		horizon := sim.Duration(cfg.Serve.Horizon)
		if res.Makespan < horizon {
			t.Errorf("shards=%d: makespan %v shorter than the %v horizon", shards, res.Makespan, horizon)
		}
		if res.Premature {
			t.Errorf("shards=%d: serving run flagged premature", shards)
		}
		if res.Detector != "Open" {
			t.Errorf("shards=%d: detector %q, want Open", shards, res.Detector)
		}
		if res.Nodes == 0 || res.Nodes != res.NodesGenerated {
			t.Errorf("shards=%d: nodes %d generated %d (serving loses no work)", shards, res.Nodes, res.NodesGenerated)
		}
		if tr := res.Trace; tr != nil {
			if err := tr.Validate(); err != nil {
				t.Errorf("shards=%d: trace invalid: %v", shards, err)
			}
		}
	}
}

// TestServeSingleRank covers the degenerate serving cluster: one rank,
// no steal traffic, jobs still arrive, drain, and the horizon ends the
// run.
func TestServeSingleRank(t *testing.T) {
	cfg := serveTestConfig(0)
	cfg.Ranks = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Serve.Done != res.Serve.Admitted {
		t.Errorf("%d done of %d admitted", res.Serve.Done, res.Serve.Admitted)
	}
}

// TestServeDAGWorkload runs a DAG tenant through the engine: waves
// inject layer by layer, and the job accounting still drains.
func TestServeDAGWorkload(t *testing.T) {
	spec := &serve.Spec{
		Horizon:   20 * sim.Millisecond,
		Placement: serve.PlaceRandom,
		Tenants: []serve.Tenant{{
			Name:    "batch",
			Arrival: serve.ArrivalSpec{Process: serve.ProcPoisson, Mean: 5 * sim.Millisecond},
			Work: serve.Workload{Kind: serve.WorkDAG, DAG: dag.Params{
				Seed:           9,
				Layers:         3,
				WidthMean:      4,
				EdgesPerTask:   1.5,
				LocalityWindow: 1,
				CostMean:       20 * sim.Microsecond,
				DataMean:       256,
			}},
		}},
	}
	for _, shards := range []int{0, 2} {
		cfg := Config{Ranks: 4, Shards: shards, Serve: spec, Seed: 11}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("shards=%d: Run: %v", shards, err)
		}
		if res.Serve.Arrived == 0 || res.Serve.Done != res.Serve.Admitted {
			t.Errorf("shards=%d: arrived %d, done %d of %d admitted",
				shards, res.Serve.Arrived, res.Serve.Done, res.Serve.Admitted)
		}
	}
}

// TestServeConfigValidate covers the core-level Serve checks layered on
// top of serve.Spec.Validate.
func TestServeConfigValidate(t *testing.T) {
	base := serveTestConfig(0)
	if err := base.Validate(); err != nil {
		t.Fatalf("valid serving config rejected: %v", err)
	}
	huge := serveTestConfig(0)
	huge.Serve.Horizon = sim.Duration(DefaultMaxVirtualTime)
	if err := huge.Validate(); err == nil {
		t.Error("horizon at MaxVirtualTime accepted")
	}
	bad := serveTestConfig(0)
	bad.Serve.Tenants = nil
	if err := bad.Validate(); err == nil {
		t.Error("tenantless serving spec accepted")
	}
}

// TestServeClosedRunUntouched pins observer freedom in the other
// direction: a closed-system run built with a nil Serve is identical,
// field for field, to the same run on a config that never heard of
// serving (trivially itself — the check is that nothing serving-
// related leaks into the result or exposition).
func TestServeClosedRunUntouched(t *testing.T) {
	cfg := Config{
		Tree: uts.Params{
			Type:        uts.Binomial,
			B0:          200,
			NonLeafBF:   4,
			NonLeafProb: 0.22,
			RootSeed:    5,
			Hash:        uts.HashFast,
		},
		Ranks:    4,
		Selector: victim.NewUniformRandom,
		Seed:     3,
	}
	cfg.Metrics = obs.NewRegistry()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Serve != nil {
		t.Error("closed-system result carries Serve stats")
	}
	var b bytes.Buffer
	if err := cfg.Metrics.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b.Bytes(), []byte("sim_serve_")) {
		t.Error("closed-system exposition contains serving metrics")
	}
}

// TestServeScheduleMatchesEngine cross-checks the compiled schedule
// against the engine's replay: every admitted job completes at or
// after its arrival, and rejected jobs never complete.
func TestServeScheduleMatchesEngine(t *testing.T) {
	cfg := serveTestConfig(0)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := serve.Compile(cfg.Serve, cfg.Ranks, cfg.Seed, DefaultNodeCost)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Serve.Arrived, uint64(len(sched.Jobs)); got != want {
		t.Fatalf("engine saw %d arrivals, schedule has %d", got, want)
	}
	want := sched.Stats(make([]sim.Time, 0), 0)
	if got := res.Serve; !reflect.DeepEqual(
		[]uint64{got.Arrived, got.Admitted, got.Rejected},
		[]uint64{want.Arrived, want.Admitted, want.Rejected}) {
		t.Errorf("admission counts diverge: engine %+v schedule %+v", got, want)
	}
}
