package core

import (
	"testing"
	"testing/quick"

	"distws/internal/sim"
	"distws/internal/term"
	"distws/internal/topology"
	"distws/internal/uts"
	"distws/internal/victim"
)

// TestPropertyConservationAcrossConfigSpace drives the engine through
// randomized corners of its configuration space and asserts the one
// invariant every run must satisfy: the traversal counts exactly the
// sequential tree, with no premature termination (Safra).
func TestPropertyConservationAcrossConfigSpace(t *testing.T) {
	want := seqCount(t, "T3")
	tree := uts.MustPreset("T3").Params
	selectors := []victim.Factory{
		victim.NewRoundRobin, victim.NewUniformRandom, victim.NewDistanceSkewed,
		victim.NewLastVictim, victim.NewHierarchical, victim.NewLifeline,
	}
	placements := []topology.Placement{
		topology.OnePerNode, topology.EightRoundRobin, topology.EightGrouped,
	}
	f := func(ranksRaw, chunkRaw, pollRaw, selRaw, plRaw uint8, half, oneSided, aborts bool, seed uint64) bool {
		ranks := int(ranksRaw%16) + 1
		pl := placements[int(plRaw)%len(placements)]
		if pl != topology.OnePerNode {
			ranks = ((ranks + 7) / 8) * 8 // 8-per-node placements need multiples of 8
		}
		cfg := Config{
			Tree:         tree,
			Ranks:        ranks,
			Placement:    pl,
			Selector:     selectors[int(selRaw)%len(selectors)],
			ChunkSize:    int(chunkRaw%8) + 1,
			PollInterval: int(pollRaw%30) + 1,
			Seed:         seed,
		}
		if half {
			cfg.Steal = StealHalf
		}
		if oneSided {
			cfg.Protocol = OneSided
		}
		if aborts {
			cfg.StealTimeout = 7 * sim.Microsecond
		}
		res, err := Run(cfg)
		if err != nil {
			t.Logf("config error: %v", err)
			return false
		}
		if res.Premature {
			t.Logf("premature: %+v", cfg)
			return false
		}
		return res.Nodes == want.Nodes && res.Leaves == want.Leaves && res.MaxDepth == want.MaxDepth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRingDetectorAccounting asserts that with the
// reference-style ring detector, the Premature flag and the node counts
// are always mutually consistent across random configurations.
func TestPropertyRingDetectorAccounting(t *testing.T) {
	want := seqCount(t, "T3")
	tree := uts.MustPreset("T3").Params
	f := func(ranksRaw, chunkRaw uint8, half bool, seed uint64) bool {
		cfg := Config{
			Tree:      tree,
			Ranks:     int(ranksRaw%12) + 2,
			Selector:  victim.NewUniformRandom,
			ChunkSize: int(chunkRaw%6) + 1,
			Detector:  term.NewRing,
			Seed:      seed,
		}
		if half {
			cfg.Steal = StealHalf
		}
		res, err := Run(cfg)
		if err != nil {
			return false
		}
		if res.Premature {
			return res.Nodes < want.Nodes
		}
		return res.Nodes == want.Nodes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
