package trace

import "distws/internal/sim"

// EventKind identifies one protocol-level trace event. The activity
// trace (Transition/Session) answers *when* ranks were busy; the event
// log answers *why*: where steal round trips go, which links carry the
// failed-steal floods of the paper's Figure 7, and what the
// termination tail looks like hop by hop.
type EventKind uint8

// The protocol event taxonomy. Send events are recorded on the sending
// rank with Peer = destination; receive events on the receiving rank
// with Peer = source. Arg is kind-specific (documented per kind).
const (
	// EvStealSend: a thief posts a steal request. Peer = victim,
	// Arg = request id.
	EvStealSend EventKind = iota
	// EvStealRecv: the victim observes the request. Peer = thief,
	// Arg = request id.
	EvStealRecv
	// EvWorkSend: the victim posts stolen work. Peer = thief,
	// Arg = nodes transferred (the chunk-transfer size).
	EvWorkSend
	// EvWorkRecv: the thief receives work. Peer = victim, Arg = nodes.
	EvWorkRecv
	// EvNoWorkSend: the victim declines. Peer = thief, Arg = request id.
	EvNoWorkSend
	// EvNoWorkRecv: the thief receives the refusal. Peer = victim,
	// Arg = request id.
	EvNoWorkRecv
	// EvStealAbort: the thief abandons an outstanding request (aborting
	// steals). Peer = victim, Arg = request id.
	EvStealAbort
	// EvTokenSend: a termination token leaves a rank. Peer = successor.
	EvTokenSend
	// EvTokenRecv: a termination token arrives. Peer = predecessor.
	EvTokenRecv
	// EvTerminate: the rank observes termination. Peer = -1.
	EvTerminate
	// EvQuantumStart: a compute quantum begins. Peer = -1, Arg = the
	// rank's stack length at quantum start.
	EvQuantumStart
	// EvQuantumEnd: a compute quantum ends. Peer = -1, Arg = the rank's
	// cumulative expansion units (deltas between consecutive quantum
	// ends give per-quantum work).
	EvQuantumEnd
	// EvCrash: the rank fail-stops (fault injection). Peer = -1,
	// Arg = nodes lost from its local stack at the instant of death.
	EvCrash
	// EvStealRetry: a thief re-sends after a timed-out request.
	// Peer = the new victim, Arg = consecutive timeouts so far.
	EvStealRetry
	// EvTokenRegen: the termination ring regenerates a token lost with a
	// crashed rank. Recorded on the initiator alongside the EvTokenSend
	// of the fresh token. Peer = successor, Arg = new round number.
	EvTokenRegen
	// EvMsgDrop: a message was lost — dropped by the faulty link or
	// addressed to a crashed rank. Recorded on the sender at the moment
	// the loss is resolved. Peer = destination, Arg = nodes lost
	// (0 for control messages).
	EvMsgDrop
	// EvJobArrive: an open-system job arrives from a tenant (serving
	// mode). Recorded on the job's placement rank. Peer = tenant index,
	// Arg = job id.
	EvJobArrive
	// EvJobAdmit: the tenant's admission token bucket accepts the job
	// and its root work is injected. Peer = tenant index, Arg = job id.
	EvJobAdmit
	// EvJobReject: the admission bucket (or the job cap) turns the job
	// away; no work is injected. Peer = tenant index, Arg = job id.
	EvJobReject
	// EvJobDone: the last node of an admitted job is consumed anywhere
	// in the system. Recorded on the job's placement rank at the
	// completion instant. Peer = tenant index, Arg = job id.
	EvJobDone

	// NumEventKinds bounds the kind space for validation and tables.
	NumEventKinds
)

var eventKindNames = [NumEventKinds]string{
	EvStealSend:    "steal-send",
	EvStealRecv:    "steal-recv",
	EvWorkSend:     "work-send",
	EvWorkRecv:     "work-recv",
	EvNoWorkSend:   "nowork-send",
	EvNoWorkRecv:   "nowork-recv",
	EvStealAbort:   "steal-abort",
	EvTokenSend:    "token-send",
	EvTokenRecv:    "token-recv",
	EvTerminate:    "terminate",
	EvQuantumStart: "quantum-start",
	EvQuantumEnd:   "quantum-end",
	EvCrash:        "crash",
	EvStealRetry:   "steal-retry",
	EvTokenRegen:   "token-regen",
	EvMsgDrop:      "msg-drop",
	EvJobArrive:    "job-arrive",
	EvJobAdmit:     "job-admit",
	EvJobReject:    "job-reject",
	EvJobDone:      "job-done",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// ParseEventKind maps a wire name back to its kind.
func ParseEventKind(s string) (EventKind, bool) {
	for k, name := range eventKindNames {
		if name == s {
			return EventKind(k), true
		}
	}
	return NumEventKinds, false
}

// Event is one protocol-level occurrence on one rank.
type Event struct {
	Time sim.Time
	Kind EventKind
	// Peer is the other rank involved, or -1 when the event is local.
	Peer int
	// Arg is the kind-specific payload (see the kind constants).
	Arg int64
}

// TotalEvents returns the number of recorded protocol events across
// ranks (excluding dropped ones).
func (t *Trace) TotalEvents() int {
	n := 0
	for _, es := range t.Events {
		n += len(es)
	}
	return n
}

// TotalEventsDropped returns the number of events evicted from the
// bounded recording rings across ranks.
func (t *Trace) TotalEventsDropped() uint64 {
	var n uint64
	for _, d := range t.EventsDropped {
		n += d
	}
	return n
}

// EventCounts tallies the recorded events by kind. The slice is
// trimmed of trailing zero counts, so its length is one past the
// highest kind that actually occurred; runs predating a kind's
// introduction tally identically before and after the taxonomy grows.
func (t *Trace) EventCounts() []uint64 {
	var counts [NumEventKinds]uint64
	for _, es := range t.Events {
		for _, e := range es {
			if e.Kind < NumEventKinds {
				counts[e.Kind]++
			}
		}
	}
	n := len(counts)
	for n > 0 && counts[n-1] == 0 {
		n--
	}
	return counts[:n:n]
}
