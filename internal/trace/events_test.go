package trace

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
)

// eventTrace builds a small two-rank trace with a protocol event log:
// rank 1 steals from rank 0 once (refused), then once successfully.
func eventTrace() *Trace {
	r := NewRecorder(2)
	r.Record(0, 0, Active)
	r.BeginSession(1, 0)
	r.SessionAttempt(1, true)
	r.SessionAttempt(1, false)
	r.EndSession(1, 40, true)
	r.Record(1, 40, Active)
	t := r.Finish(100)
	t.Events = [][]Event{
		{
			{Time: 5, Kind: EvStealRecv, Peer: 1, Arg: 1},
			{Time: 5, Kind: EvNoWorkSend, Peer: 1, Arg: 1},
			{Time: 25, Kind: EvStealRecv, Peer: 1, Arg: 2},
			{Time: 25, Kind: EvWorkSend, Peer: 1, Arg: 8},
			{Time: 100, Kind: EvTerminate, Peer: -1},
		},
		{
			{Time: 0, Kind: EvStealSend, Peer: 0, Arg: 1},
			{Time: 10, Kind: EvNoWorkRecv, Peer: 0, Arg: 1},
			{Time: 20, Kind: EvStealSend, Peer: 0, Arg: 2},
			{Time: 40, Kind: EvWorkRecv, Peer: 0, Arg: 8},
			{Time: 101, Kind: EvTerminate, Peer: -1},
		},
	}
	t.EventsDropped = []uint64{0, 3}
	return t
}

func TestEventKindNames(t *testing.T) {
	for k := EventKind(0); k < NumEventKinds; k++ {
		name := k.String()
		if name == "" || name == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		back, ok := ParseEventKind(name)
		if !ok || back != k {
			t.Fatalf("ParseEventKind(%q) = %v, %v; want %v", name, back, ok, k)
		}
	}
	if _, ok := ParseEventKind("nonsense"); ok {
		t.Fatal("parsed a nonsense kind")
	}
}

func TestEventsJSONLRoundTrip(t *testing.T) {
	tr := eventTrace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("source trace invalid: %v", err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped trace invalid: %v", err)
	}
	if !reflect.DeepEqual(tr.Events, back.Events) {
		t.Fatalf("events changed in round trip:\n got %+v\nwant %+v", back.Events, tr.Events)
	}
	if !reflect.DeepEqual(tr.EventsDropped, back.EventsDropped) {
		t.Fatalf("drop counts changed: got %v want %v", back.EventsDropped, tr.EventsDropped)
	}
	if back.TotalEvents() != 10 {
		t.Fatalf("TotalEvents = %d, want 10", back.TotalEvents())
	}
	if back.TotalEventsDropped() != 3 {
		t.Fatalf("TotalEventsDropped = %d, want 3", back.TotalEventsDropped())
	}
	counts := back.EventCounts()
	if counts[EvStealSend] != 2 || counts[EvWorkRecv] != 1 || counts[EvTerminate] != 2 {
		t.Fatalf("unexpected event counts %v", counts)
	}
}

func TestEventlessTraceHasNilEvents(t *testing.T) {
	r := NewRecorder(1)
	r.Record(0, 0, Active)
	var buf bytes.Buffer
	if err := r.Finish(10).WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Events != nil || back.EventsDropped != nil {
		t.Fatal("eventless trace grew event fields on round trip")
	}
}

func TestEventValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Trace)
	}{
		{"unknown kind", func(tr *Trace) { tr.Events[0][0].Kind = NumEventKinds }},
		{"bad peer", func(tr *Trace) { tr.Events[0][0].Peer = 99 }},
		{"negative time", func(tr *Trace) { tr.Events[0][0].Time = -1 }},
		{"out of order", func(tr *Trace) { tr.Events[0][0].Time = 90 }},
		{"rank mismatch", func(tr *Trace) { tr.Events = tr.Events[:1] }},
	}
	for _, tc := range cases {
		tr := eventTrace()
		tc.mutate(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a corrupt trace", tc.name)
		}
	}
}

func TestSkewShiftsEvents(t *testing.T) {
	tr := eventTrace()
	skewed, offsets := tr.InjectSkew(7, 5)
	restored := skewed.CorrectSkew(offsets)
	// Clamping at [0, End] makes injection lossy at the boundaries, so
	// compare only events that stayed inside the window.
	for rank := range tr.Events {
		for i, orig := range tr.Events[rank] {
			shifted := orig.Time.Add(offsets[rank])
			if shifted < 0 || shifted > tr.End {
				continue
			}
			if got := restored.Events[rank][i].Time; got != orig.Time {
				t.Fatalf("rank %d event %d: restored time %d, want %d", rank, i, got, orig.Time)
			}
		}
	}
}

// --- reader hardening ---------------------------------------------------

func TestReadJSONLCorruptLine(t *testing.T) {
	tr := eventTrace()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	lines[2] = `{"kind": "transition", "rank": oops}`
	_, err := ReadJSONL(strings.NewReader(strings.Join(lines, "\n")))
	if err == nil {
		t.Fatal("corrupt line accepted")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error does not name the corrupt line: %v", err)
	}
}

func TestReadJSONLTruncatedFile(t *testing.T) {
	tr := eventTrace()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	// Cut the file mid-record, as a crashed writer would leave it.
	cut := buf.String()[:buf.Len()-9]
	_, err := ReadJSONL(strings.NewReader(cut))
	if err == nil {
		t.Fatal("truncated file accepted")
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("error does not mention truncation: %v", err)
	}
}

func TestReadJSONLOversizedLine(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(`{"kind":"meta","ranks":1,"end":10}` + "\n")
	buf.WriteString(`{"kind":"transition","rank":0,"state":"`)
	buf.WriteString(strings.Repeat("x", MaxLineBytes+1))
	buf.WriteString(`"}` + "\n")
	_, err := ReadJSONL(&buf)
	if err == nil {
		t.Fatal("oversized line accepted")
	}
	if !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("error does not mention the size limit: %v", err)
	}
}

func TestReadJSONLEmptyAndGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadJSONL(strings.NewReader("\x00\x01binary\x02")); err == nil {
		t.Fatal("binary garbage accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"kind":"meta","ranks":1,"end":5}` + "\n" + `{"kind":"wat"}`)); err == nil {
		t.Fatal("unknown record kind accepted")
	}
	// Blank lines between records are tolerated.
	ok := `{"kind":"meta","ranks":1,"end":5}` + "\n\n" + `{"kind":"transition","rank":0,"t":1,"state":"active"}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(ok)); err != nil {
		t.Fatalf("blank line rejected: %v", err)
	}
}

// errReader fails after its content to exercise scanner error paths.
type errReader struct {
	r    io.Reader
	done bool
}

func (e *errReader) Read(p []byte) (int, error) {
	if !e.done {
		n, err := e.r.Read(p)
		if err == io.EOF {
			e.done = true
			return n, nil
		}
		return n, err
	}
	return 0, io.ErrUnexpectedEOF
}

func TestReadJSONLReaderError(t *testing.T) {
	_, err := ReadJSONL(&errReader{r: strings.NewReader(`{"kind":"meta","ranks":1,"end":5}` + "\n")})
	if err == nil {
		t.Fatal("reader error swallowed")
	}
}
