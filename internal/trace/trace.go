// Package trace implements the lightweight scheduler activity trace the
// paper's scheduling-latency metric is computed from (§III).
//
// A rank is *active* while its stack contains work — including the time
// it spends answering steal requests in between node expansions — and
// *idle* otherwise. The trace records only the transitions between the
// two states ("the trace only contains a time and the new state at each
// phase transition, so it is lightweight"), plus the work-discovery
// sessions used by Figure 10.
//
// The paper corrects its traces for clock skew across nodes; a
// simulator has a perfectly synchronized clock, but the same machinery
// is provided (skew injection and correction) so the methodology can be
// validated end to end.
package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"distws/internal/rng"
	"distws/internal/sim"
)

// State is a rank's scheduling state.
type State uint8

// The two phases of the paper's activity model.
const (
	Idle State = iota
	Active
)

func (s State) String() string {
	if s == Active {
		return "active"
	}
	return "idle"
}

// Transition is one phase change of one rank.
type Transition struct {
	Time  sim.Time
	State State
}

// Session is one work-discovery session: the span from a rank
// exhausting its work to it having work again (or the application
// terminating). Figure 10 reports the average duration of these.
type Session struct {
	Start, End sim.Time
	// Attempts is the number of steal requests sent during the session.
	Attempts int
	// Failed counts the attempts answered negatively.
	Failed int
	// Success is false for the final session ended by termination.
	Success bool
}

// Duration returns the session length.
func (s Session) Duration() sim.Duration { return s.End.Sub(s.Start) }

// Trace is a complete recorded execution.
type Trace struct {
	// End is the application makespan (virtual time of termination).
	End sim.Time
	// Transitions per rank, time-ordered, states alternating.
	Transitions [][]Transition
	// Sessions per rank, time-ordered.
	Sessions [][]Session
	// Events is the protocol-level event log per rank, time-ordered;
	// nil when event recording (internal/obs) was disabled. Events can
	// carry timestamps past End: the terminate broadcast and in-flight
	// tokens land after detection at rank 0.
	Events [][]Event
	// EventsDropped counts, per rank, the events evicted from the
	// bounded recording ring (oldest first). Nonzero means the event
	// log is a suffix of the run, not the whole run.
	EventsDropped []uint64
}

// Ranks returns the number of ranks in the trace.
func (t *Trace) Ranks() int { return len(t.Transitions) }

// Recorder accumulates a Trace during a run. All methods must be called
// with non-decreasing timestamps per rank (the simulator guarantees
// this); consecutive same-state records are deduplicated.
type Recorder struct {
	transitions [][]Transition
	sessions    [][]Session
	open        []Session // currently open session per rank, Start >= 0
	hasOpen     []bool
}

// NewRecorder returns a recorder for n ranks. All ranks start Idle at
// time 0 implicitly; the first Active record creates the first
// transition.
func NewRecorder(n int) *Recorder {
	return &Recorder{
		transitions: make([][]Transition, n),
		sessions:    make([][]Session, n),
		open:        make([]Session, n),
		hasOpen:     make([]bool, n),
	}
}

// Record notes that rank entered state s at time t. Recording the
// state the rank is already in is a no-op.
func (r *Recorder) Record(rank int, t sim.Time, s State) {
	tr := r.transitions[rank]
	if len(tr) == 0 {
		if s == Idle {
			return // ranks start idle
		}
	} else if tr[len(tr)-1].State == s {
		return
	}
	r.transitions[rank] = append(tr, Transition{Time: t, State: s})
}

// BeginSession opens a work-discovery session for rank at time t.
// A session already open for the rank is a programming error.
func (r *Recorder) BeginSession(rank int, t sim.Time) {
	if r.hasOpen[rank] {
		panic(fmt.Sprintf("trace: rank %d already has an open session", rank))
	}
	r.open[rank] = Session{Start: t}
	r.hasOpen[rank] = true
}

// SessionAttempt counts one steal request in rank's open session.
func (r *Recorder) SessionAttempt(rank int, failed bool) {
	if !r.hasOpen[rank] {
		return
	}
	r.open[rank].Attempts++
	if failed {
		r.open[rank].Failed++
	}
}

// EndSession closes rank's open session at time t. success records
// whether the session ended with work (true) or with termination.
func (r *Recorder) EndSession(rank int, t sim.Time, success bool) {
	if !r.hasOpen[rank] {
		return
	}
	s := r.open[rank]
	s.End = t
	s.Success = success
	r.sessions[rank] = append(r.sessions[rank], s)
	r.hasOpen[rank] = false
}

// Finish closes any open sessions at end and returns the trace.
func (r *Recorder) Finish(end sim.Time) *Trace {
	for rank := range r.open {
		if r.hasOpen[rank] {
			r.EndSession(rank, end, false)
		}
	}
	return &Trace{
		End:         end,
		Transitions: r.transitions,
		Sessions:    r.sessions,
	}
}

// Validate checks the structural invariants of a trace: per-rank
// transitions strictly alternate states with non-decreasing times and
// sessions nest within idle phases' bounds.
func (t *Trace) Validate() error {
	for rank, trs := range t.Transitions {
		for i, tr := range trs {
			if tr.Time < 0 || tr.Time > t.End {
				return fmt.Errorf("trace: rank %d transition %d at %d outside [0, %d]", rank, i, tr.Time, t.End)
			}
			if i > 0 {
				if trs[i-1].Time > tr.Time {
					return fmt.Errorf("trace: rank %d transitions out of order at %d", rank, i)
				}
				if trs[i-1].State == tr.State {
					return fmt.Errorf("trace: rank %d repeated state at %d", rank, i)
				}
			}
		}
		if len(trs) > 0 && trs[0].State != Active {
			return fmt.Errorf("trace: rank %d first transition is %v, want active", rank, trs[0].State)
		}
	}
	for rank, ss := range t.Sessions {
		for i, s := range ss {
			if s.End < s.Start {
				return fmt.Errorf("trace: rank %d session %d ends before it starts", rank, i)
			}
			if s.Failed > s.Attempts {
				return fmt.Errorf("trace: rank %d session %d failed %d > attempts %d", rank, i, s.Failed, s.Attempts)
			}
		}
	}
	if t.Events != nil && len(t.Events) != len(t.Transitions) {
		return fmt.Errorf("trace: %d event ranks, %d transition ranks", len(t.Events), len(t.Transitions))
	}
	for rank, es := range t.Events {
		for i, e := range es {
			if e.Time < 0 {
				return fmt.Errorf("trace: rank %d event %d at negative time %d", rank, i, e.Time)
			}
			if e.Kind >= NumEventKinds {
				return fmt.Errorf("trace: rank %d event %d has unknown kind %d", rank, i, e.Kind)
			}
			if e.Peer < -1 || e.Peer >= t.Ranks() {
				return fmt.Errorf("trace: rank %d event %d names invalid peer %d", rank, i, e.Peer)
			}
			if i > 0 && es[i-1].Time > e.Time {
				return fmt.Errorf("trace: rank %d events out of order at %d", rank, i)
			}
		}
	}
	return nil
}

// TotalSessions returns the number of recorded sessions across ranks.
func (t *Trace) TotalSessions() int {
	n := 0
	for _, ss := range t.Sessions {
		n += len(ss)
	}
	return n
}

// MeanSessionDuration returns the average work-discovery session
// length across all ranks (Figure 10's metric), and false when there
// are no sessions.
func (t *Trace) MeanSessionDuration() (sim.Duration, bool) {
	var sum sim.Duration
	n := 0
	for _, ss := range t.Sessions {
		for _, s := range ss {
			sum += s.Duration()
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / sim.Duration(n), true
}

// ---------------------------------------------------------------------
// Clock skew

// InjectSkew returns a copy of the trace with every rank's timestamps
// shifted by a random per-rank offset in [-maxSkew, +maxSkew], clamped
// to [0, End]. This emulates unsynchronized node clocks so the
// correction path (paper §III: "the trace modified to account for clock
// skew") can be tested. The returned offsets can undo the injection via
// CorrectSkew.
func (t *Trace) InjectSkew(seed uint64, maxSkew sim.Duration) (*Trace, []sim.Duration) {
	r := rng.New(seed)
	offsets := make([]sim.Duration, t.Ranks())
	for i := range offsets {
		offsets[i] = sim.Duration(r.Intn(int(2*maxSkew+1))) - maxSkew
	}
	return t.shift(offsets, true), offsets
}

// CorrectSkew returns a copy of the trace with each rank's known clock
// offset subtracted, restoring a common timebase.
func (t *Trace) CorrectSkew(offsets []sim.Duration) *Trace {
	neg := make([]sim.Duration, len(offsets))
	for i, o := range offsets {
		neg[i] = -o
	}
	return t.shift(neg, false)
}

func (t *Trace) shift(offsets []sim.Duration, clamp bool) *Trace {
	out := &Trace{
		End:         t.End,
		Transitions: make([][]Transition, t.Ranks()),
		Sessions:    make([][]Session, t.Ranks()),
	}
	adj := func(rank int, ts sim.Time) sim.Time {
		v := ts.Add(offsets[rank])
		if clamp {
			if v < 0 {
				v = 0
			}
			if v > t.End {
				v = t.End
			}
		}
		return v
	}
	for rank, trs := range t.Transitions {
		if trs == nil {
			continue
		}
		ns := make([]Transition, len(trs))
		for i, tr := range trs {
			ns[i] = Transition{Time: adj(rank, tr.Time), State: tr.State}
		}
		out.Transitions[rank] = ns
	}
	for rank, ss := range t.Sessions {
		if ss == nil {
			continue
		}
		ncopy := make([]Session, len(ss))
		for i, s := range ss {
			s.Start = adj(rank, s.Start)
			s.End = adj(rank, s.End)
			ncopy[i] = s
		}
		out.Sessions[rank] = ncopy
	}
	if t.Events != nil {
		out.Events = make([][]Event, t.Ranks())
		for rank, es := range t.Events {
			if es == nil {
				continue
			}
			ncopy := make([]Event, len(es))
			for i, e := range es {
				e.Time = adj(rank, e.Time)
				ncopy[i] = e
			}
			out.Events[rank] = ncopy
		}
	}
	if t.EventsDropped != nil {
		out.EventsDropped = append([]uint64(nil), t.EventsDropped...)
	}
	return out
}

// ---------------------------------------------------------------------
// JSONL serialization

// jsonRecord is the wire form of one trace line.
type jsonRecord struct {
	Kind  string   `json:"kind"` // "meta", "transition", "session", "event" or "drops"
	Rank  int      `json:"rank,omitempty"`
	Time  sim.Time `json:"t,omitempty"`
	State string   `json:"state,omitempty"`
	End   sim.Time `json:"end,omitempty"`
	// Session fields.
	Start    sim.Time `json:"start,omitempty"`
	Attempts int      `json:"attempts,omitempty"`
	Failed   int      `json:"failed,omitempty"`
	Success  bool     `json:"success,omitempty"`
	Ranks    int      `json:"ranks,omitempty"`
	// Protocol-event fields. Peer 0 is omitted on the wire and decodes
	// back to 0, so omitempty is lossless here; Peer -1 (no peer) is
	// written explicitly. "drops" records reuse Arg for the count.
	Ev   string `json:"ev,omitempty"`
	Peer int    `json:"peer,omitempty"`
	Arg  int64  `json:"arg,omitempty"`
}

// WriteJSONL serializes the trace as JSON Lines: a meta record followed
// by transition and session records.
func (t *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonRecord{Kind: "meta", Ranks: t.Ranks(), End: t.End}); err != nil {
		return err
	}
	for rank, trs := range t.Transitions {
		for _, tr := range trs {
			if err := enc.Encode(jsonRecord{Kind: "transition", Rank: rank, Time: tr.Time, State: tr.State.String()}); err != nil {
				return err
			}
		}
	}
	for rank, ss := range t.Sessions {
		for _, s := range ss {
			if err := enc.Encode(jsonRecord{
				Kind: "session", Rank: rank,
				Start: s.Start, End: s.End,
				Attempts: s.Attempts, Failed: s.Failed, Success: s.Success,
			}); err != nil {
				return err
			}
		}
	}
	for rank, es := range t.Events {
		for _, e := range es {
			if err := enc.Encode(jsonRecord{
				Kind: "event", Rank: rank, Time: e.Time,
				Ev: e.Kind.String(), Peer: e.Peer, Arg: e.Arg,
			}); err != nil {
				return err
			}
		}
	}
	for rank, d := range t.EventsDropped {
		if d == 0 {
			continue
		}
		if err := enc.Encode(jsonRecord{Kind: "drops", Rank: rank, Arg: int64(d)}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// MaxLineBytes bounds one JSONL record line on read. Records written
// by WriteJSONL are a few hundred bytes; a line past this limit means
// the input is not a trace (binary junk, a concatenated corpus, a
// pathological generator) and is rejected with a clear error instead
// of being silently split or ballooning memory.
const MaxLineBytes = 1 << 20

// lineReader yields one JSONL record per call with line-accurate
// errors for oversized, truncated, and corrupt input.
type lineReader struct {
	sc   *bufio.Scanner
	line int
}

func newLineReader(r io.Reader) *lineReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), MaxLineBytes)
	return &lineReader{sc: sc}
}

// next decodes the next non-blank line into rec. It returns io.EOF at
// clean end of input and a line-numbered error otherwise. A final line
// cut off mid-record (no trailing newline, partial JSON) is reported
// as truncated rather than as a bare syntax error.
func (lr *lineReader) next(rec *jsonRecord) error {
	for lr.sc.Scan() {
		lr.line++
		b := bytes.TrimSpace(lr.sc.Bytes())
		if len(b) == 0 {
			continue
		}
		*rec = jsonRecord{}
		if err := json.Unmarshal(b, rec); err != nil {
			var syn *json.SyntaxError
			if errors.As(err, &syn) && syn.Offset >= int64(len(b)) {
				return fmt.Errorf("trace: line %d: truncated record (file cut off mid-write?): %w", lr.line, err)
			}
			return fmt.Errorf("trace: line %d: corrupt record: %w", lr.line, err)
		}
		return nil
	}
	if err := lr.sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return fmt.Errorf("trace: line %d: record exceeds %d bytes — not a JSONL trace?", lr.line+1, MaxLineBytes)
		}
		return fmt.Errorf("trace: line %d: %w", lr.line+1, err)
	}
	return io.EOF
}

// ReadJSONL parses a trace previously written by WriteJSONL. Input is
// read line by line with a bounded buffer (MaxLineBytes); corrupt,
// truncated, or oversized lines produce errors naming the line.
func ReadJSONL(r io.Reader) (*Trace, error) {
	lr := newLineReader(r)
	var meta jsonRecord
	if err := lr.next(&meta); err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("trace: empty input, expected meta record")
		}
		return nil, fmt.Errorf("trace: reading meta record: %w", err)
	}
	if meta.Kind != "meta" || meta.Ranks <= 0 {
		return nil, fmt.Errorf("trace: malformed meta record %+v", meta)
	}
	t := &Trace{
		End:         meta.End,
		Transitions: make([][]Transition, meta.Ranks),
		Sessions:    make([][]Session, meta.Ranks),
	}
	for {
		var rec jsonRecord
		err := lr.next(&rec)
		if err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if rec.Rank < 0 || rec.Rank >= meta.Ranks {
			return nil, fmt.Errorf("trace: line %d: record for invalid rank %d", lr.line, rec.Rank)
		}
		switch rec.Kind {
		case "transition":
			st := Idle
			if rec.State == "active" {
				st = Active
			}
			t.Transitions[rec.Rank] = append(t.Transitions[rec.Rank], Transition{Time: rec.Time, State: st})
		case "session":
			t.Sessions[rec.Rank] = append(t.Sessions[rec.Rank], Session{
				Start: rec.Start, End: rec.End,
				Attempts: rec.Attempts, Failed: rec.Failed, Success: rec.Success,
			})
		case "event":
			kind, ok := ParseEventKind(rec.Ev)
			if !ok {
				return nil, fmt.Errorf("trace: line %d: unknown event kind %q", lr.line, rec.Ev)
			}
			if t.Events == nil {
				t.Events = make([][]Event, meta.Ranks)
			}
			t.Events[rec.Rank] = append(t.Events[rec.Rank], Event{
				Time: rec.Time, Kind: kind, Peer: rec.Peer, Arg: rec.Arg,
			})
		case "drops":
			if t.EventsDropped == nil {
				t.EventsDropped = make([]uint64, meta.Ranks)
			}
			if rec.Arg < 0 {
				return nil, fmt.Errorf("trace: line %d: negative drop count %d", lr.line, rec.Arg)
			}
			t.EventsDropped[rec.Rank] = uint64(rec.Arg)
		default:
			return nil, fmt.Errorf("trace: line %d: unknown record kind %q", lr.line, rec.Kind)
		}
	}
	for rank := range t.Transitions {
		sort.SliceStable(t.Transitions[rank], func(a, b int) bool {
			return t.Transitions[rank][a].Time < t.Transitions[rank][b].Time
		})
	}
	for rank := range t.Events {
		sort.SliceStable(t.Events[rank], func(a, b int) bool {
			return t.Events[rank][a].Time < t.Events[rank][b].Time
		})
	}
	if t.Events != nil && t.EventsDropped == nil {
		t.EventsDropped = make([]uint64, meta.Ranks)
	}
	return t, nil
}
