package trace

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"distws/internal/sim"
)

func TestRecorderDedupsAndOrders(t *testing.T) {
	r := NewRecorder(2)
	r.Record(0, 0, Idle) // ranks start idle: no-op
	r.Record(0, 10, Active)
	r.Record(0, 15, Active) // duplicate state: no-op
	r.Record(0, 20, Idle)
	r.Record(1, 5, Active)
	tr := r.Finish(100)
	if len(tr.Transitions[0]) != 2 {
		t.Fatalf("rank 0 has %d transitions, want 2", len(tr.Transitions[0]))
	}
	if tr.Transitions[0][0] != (Transition{10, Active}) || tr.Transitions[0][1] != (Transition{20, Idle}) {
		t.Fatalf("rank 0 transitions %v", tr.Transitions[0])
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSessions(t *testing.T) {
	r := NewRecorder(1)
	r.Record(0, 0, Active)
	r.Record(0, 50, Idle)
	r.BeginSession(0, 50)
	r.SessionAttempt(0, true)
	r.SessionAttempt(0, false)
	r.EndSession(0, 80, true)
	r.Record(0, 80, Active)
	tr := r.Finish(100)
	ss := tr.Sessions[0]
	if len(ss) != 1 {
		t.Fatalf("%d sessions", len(ss))
	}
	s := ss[0]
	if s.Start != 50 || s.End != 80 || s.Attempts != 2 || s.Failed != 1 || !s.Success {
		t.Fatalf("session %+v", s)
	}
	if s.Duration() != 30 {
		t.Fatalf("duration %v", s.Duration())
	}
}

func TestOpenSessionClosedAtFinish(t *testing.T) {
	r := NewRecorder(1)
	r.BeginSession(0, 90)
	tr := r.Finish(100)
	s := tr.Sessions[0][0]
	if s.End != 100 || s.Success {
		t.Fatalf("open session not closed by Finish: %+v", s)
	}
}

func TestDoubleBeginPanics(t *testing.T) {
	r := NewRecorder(1)
	r.BeginSession(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("double BeginSession did not panic")
		}
	}()
	r.BeginSession(0, 2)
}

func TestAttemptOutsideSessionIgnored(t *testing.T) {
	r := NewRecorder(1)
	r.SessionAttempt(0, true) // no open session: no-op
	r.EndSession(0, 5, true)  // no open session: no-op
	tr := r.Finish(10)
	if len(tr.Sessions[0]) != 0 {
		t.Fatal("phantom session recorded")
	}
}

func TestMeanSessionDuration(t *testing.T) {
	r := NewRecorder(2)
	r.BeginSession(0, 0)
	r.EndSession(0, 10, true)
	r.BeginSession(1, 0)
	r.EndSession(1, 30, true)
	tr := r.Finish(50)
	mean, ok := tr.MeanSessionDuration()
	if !ok || mean != 20 {
		t.Fatalf("mean = %v ok = %v, want 20", mean, ok)
	}
	if tr.TotalSessions() != 2 {
		t.Fatalf("TotalSessions = %d", tr.TotalSessions())
	}
	empty := NewRecorder(1).Finish(10)
	if _, ok := empty.MeanSessionDuration(); ok {
		t.Fatal("mean of empty trace ok")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	mk := func() *Trace {
		r := NewRecorder(1)
		r.Record(0, 10, Active)
		r.Record(0, 20, Idle)
		return r.Finish(100)
	}
	good := mk()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad1 := mk()
	bad1.Transitions[0][1].Time = 5 // out of order
	if bad1.Validate() == nil {
		t.Fatal("out-of-order transitions accepted")
	}
	bad2 := mk()
	bad2.Transitions[0][1].State = Active // repeated state
	if bad2.Validate() == nil {
		t.Fatal("repeated state accepted")
	}
	bad3 := mk()
	bad3.Transitions[0][0].Time = 101 // beyond end
	if bad3.Validate() == nil {
		t.Fatal("transition beyond End accepted")
	}
	bad4 := mk()
	bad4.Sessions[0] = []Session{{Start: 10, End: 5}}
	if bad4.Validate() == nil {
		t.Fatal("inverted session accepted")
	}
}

func TestSkewRoundTrip(t *testing.T) {
	r := NewRecorder(4)
	for rank := 0; rank < 4; rank++ {
		r.Record(rank, sim.Time(10*rank+100), Active)
		r.Record(rank, sim.Time(10*rank+500), Idle)
		r.BeginSession(rank, sim.Time(10*rank+500))
		r.EndSession(rank, sim.Time(10*rank+600), true)
	}
	orig := r.Finish(1000)
	skewed, offsets := orig.InjectSkew(42, 50)
	// Skew must actually move something.
	if reflect.DeepEqual(orig.Transitions, skewed.Transitions) {
		t.Fatal("skew injection changed nothing")
	}
	fixed := skewed.CorrectSkew(offsets)
	if !reflect.DeepEqual(orig.Transitions, fixed.Transitions) {
		t.Fatal("skew correction did not restore transitions")
	}
	if !reflect.DeepEqual(orig.Sessions, fixed.Sessions) {
		t.Fatal("skew correction did not restore sessions")
	}
}

func TestSkewClamping(t *testing.T) {
	r := NewRecorder(1)
	r.Record(0, 1, Active)
	r.Record(0, 999, Idle)
	orig := r.Finish(1000)
	skewed, _ := orig.InjectSkew(7, 5000)
	for _, tr := range skewed.Transitions[0] {
		if tr.Time < 0 || tr.Time > 1000 {
			t.Fatalf("skewed time %d outside [0, 1000]", tr.Time)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := NewRecorder(3)
	r.Record(0, 10, Active)
	r.Record(0, 90, Idle)
	r.Record(2, 5, Active)
	r.BeginSession(1, 0)
	r.SessionAttempt(1, true)
	r.EndSession(1, 44, true)
	orig := r.Finish(100)

	var buf bytes.Buffer
	if err := orig.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.End != orig.End || back.Ranks() != orig.Ranks() {
		t.Fatalf("meta mismatch: %+v", back)
	}
	if !reflect.DeepEqual(orig.Transitions, back.Transitions) {
		t.Fatalf("transitions mismatch:\n%v\n%v", orig.Transitions, back.Transitions)
	}
	if !reflect.DeepEqual(orig.Sessions, back.Sessions) {
		t.Fatalf("sessions mismatch:\n%v\n%v", orig.Sessions, back.Sessions)
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewBufferString("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadJSONL(bytes.NewBufferString(`{"kind":"transition","rank":0}` + "\n")); err == nil {
		t.Fatal("missing meta accepted")
	}
	if _, err := ReadJSONL(bytes.NewBufferString(`{"kind":"meta","ranks":1,"end":10}` + "\n" + `{"kind":"transition","rank":7,"t":1}` + "\n")); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, err := ReadJSONL(bytes.NewBufferString(`{"kind":"meta","ranks":1,"end":10}` + "\n" + `{"kind":"bogus","rank":0}` + "\n")); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// Property: for any alternating schedule, Validate passes and the skew
// round trip is the identity.
func TestPropertyRecorderInvariants(t *testing.T) {
	f := func(gaps []uint8, seed uint64) bool {
		r := NewRecorder(1)
		// Keep timestamps at least maxSkew (3) away from 0 and End so
		// injection never clamps; clamping is deliberately lossy.
		now := sim.Time(10)
		state := Active
		for _, g := range gaps {
			now = now.Add(sim.Duration(g) + 1)
			r.Record(0, now, state)
			if state == Active {
				state = Idle
			} else {
				state = Active
			}
		}
		tr := r.Finish(now.Add(10))
		if tr.Validate() != nil {
			return false
		}
		skewed, off := tr.InjectSkew(seed, 3)
		fixed := skewed.CorrectSkew(off)
		return reflect.DeepEqual(tr.Transitions, fixed.Transitions)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
