package dag

import (
	"reflect"
	"testing"
	"testing/quick"

	"distws/internal/sim"
)

func defaultParams(seed uint64) Params {
	return Params{
		Seed: seed, Layers: 20, WidthMean: 16, EdgesPerTask: 2,
		LocalityWindow: 2, CostMean: 10 * sim.Microsecond, DataMean: 4096,
	}
}

func TestValidateParams(t *testing.T) {
	good := defaultParams(1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Layers: 0, WidthMean: 1, LocalityWindow: 1, CostMean: 1},
		{Layers: 1, WidthMean: 0, LocalityWindow: 1, CostMean: 1},
		{Layers: 1, WidthMean: 1, LocalityWindow: 0, CostMean: 1},
		{Layers: 1, WidthMean: 1, LocalityWindow: 1, CostMean: 0},
		{Layers: 1, WidthMean: 1, LocalityWindow: 1, CostMean: 1, EdgesPerTask: -1},
		{Layers: 1, WidthMean: 1, LocalityWindow: 1, CostMean: 1, DataMean: -1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Fatalf("bad params %d accepted", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(defaultParams(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(defaultParams(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-seed graphs differ")
	}
	c, err := Generate(defaultParams(8))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Tasks, c.Tasks) {
		t.Fatal("different seeds gave identical graphs")
	}
}

func TestGraphStructure(t *testing.T) {
	g, err := Generate(defaultParams(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Len() < 20 {
		t.Fatalf("only %d tasks", g.Len())
	}
	if len(g.Roots) == 0 {
		t.Fatal("no roots")
	}
	// First-layer tasks have no preds; all roots are layer 0...
	// (later-layer tasks always draw at least one pred).
	for _, r := range g.Roots {
		if g.Tasks[r].Layer != 0 {
			t.Fatalf("root %d on layer %d", r, g.Tasks[r].Layer)
		}
	}
	// Locality window respected.
	for i := range g.Tasks {
		for _, pred := range g.Tasks[i].Preds {
			if d := g.Tasks[i].Layer - g.Tasks[pred].Layer; d < 1 || d > int32(defaultParams(3).LocalityWindow) {
				t.Fatalf("edge %d->%d spans %d layers", pred, i, d)
			}
		}
	}
}

func TestTotals(t *testing.T) {
	g, err := Generate(defaultParams(5))
	if err != nil {
		t.Fatal(err)
	}
	var cost sim.Duration
	var bytes int64
	for i := range g.Tasks {
		cost += g.Tasks[i].Cost
		for _, b := range g.Tasks[i].PredData {
			bytes += int64(b)
		}
	}
	if cost != g.TotalCost {
		t.Fatalf("TotalCost %v, recomputed %v", g.TotalCost, cost)
	}
	if bytes != g.TotalBytes {
		t.Fatalf("TotalBytes %d, recomputed %d", g.TotalBytes, bytes)
	}
}

func TestCriticalPath(t *testing.T) {
	g, err := Generate(defaultParams(9))
	if err != nil {
		t.Fatal(err)
	}
	cp := g.CriticalPath()
	if cp <= 0 || cp > g.TotalCost {
		t.Fatalf("critical path %v vs total %v", cp, g.TotalCost)
	}
	// The critical path is at least the heaviest single task and at
	// least the heaviest chain layer count * min cost.
	var maxTask sim.Duration
	for i := range g.Tasks {
		if g.Tasks[i].Cost > maxTask {
			maxTask = g.Tasks[i].Cost
		}
	}
	if cp < maxTask {
		t.Fatalf("critical path %v below heaviest task %v", cp, maxTask)
	}
}

func TestSingleLayerGraph(t *testing.T) {
	p := Params{Seed: 1, Layers: 1, WidthMean: 8, EdgesPerTask: 2, LocalityWindow: 1, CostMean: 1000}
	g, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Roots) != g.Len() {
		t.Fatal("single-layer graph should be all roots")
	}
	if g.TotalBytes != 0 {
		t.Fatal("edges in a single-layer graph")
	}
}

// Property: generated graphs always validate, IDs are topological, and
// the critical path is monotone under the partial order.
func TestPropertyGeneratedGraphsValid(t *testing.T) {
	f := func(seed uint64, layersRaw, widthRaw uint8) bool {
		p := Params{
			Seed:   seed,
			Layers: int(layersRaw%12) + 1, WidthMean: int(widthRaw%8) + 1,
			EdgesPerTask: 1.5, LocalityWindow: 2,
			CostMean: 5 * sim.Microsecond, DataMean: 256,
		}
		g, err := Generate(p)
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		return g.CriticalPath() <= g.TotalCost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
