// Package dag generates random task graphs for scheduling experiments.
//
// The paper's §VII names work stealing with data dependencies as the
// natural next study, where "stealing a task can trigger massive
// communications", and points at random DAG generation (Cordeiro et
// al., SIMUTools 2010) as the workload source. This package implements
// a layer-by-layer random DAG generator in that spirit: tasks are
// arranged in layers, every task (except in the first layer) draws
// predecessors from the previous layers, task costs are heavy-tailed,
// and every edge carries a data size that must travel if producer and
// consumer run on different ranks.
//
// Generation is deterministic: the same parameters always produce the
// same graph.
package dag

import (
	"fmt"
	"math"

	"distws/internal/rng"
	"distws/internal/sim"
)

// Params describes a random layered DAG.
type Params struct {
	Seed uint64
	// Layers and WidthMean control the shape: each layer holds a
	// Poisson-ish number of tasks around WidthMean (at least 1).
	Layers    int
	WidthMean int
	// EdgesPerTask is the mean number of predecessors drawn for each
	// non-root task (at least 1 to keep the graph connected).
	EdgesPerTask float64
	// LocalityWindow limits how far back (in layers) predecessors can
	// be; 1 means only the previous layer.
	LocalityWindow int
	// CostMean is the mean task execution cost. Costs are drawn from a
	// heavy-tailed (log-normal-ish) distribution around it.
	CostMean sim.Duration
	// DataMean is the mean bytes carried by one edge.
	DataMean int
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.Layers < 1 {
		return fmt.Errorf("dag: %d layers", p.Layers)
	}
	if p.WidthMean < 1 {
		return fmt.Errorf("dag: width mean %d", p.WidthMean)
	}
	if p.EdgesPerTask < 0 {
		return fmt.Errorf("dag: negative edges per task")
	}
	if p.LocalityWindow < 1 {
		return fmt.Errorf("dag: locality window %d", p.LocalityWindow)
	}
	if p.CostMean <= 0 {
		return fmt.Errorf("dag: non-positive cost mean")
	}
	if p.DataMean < 0 {
		return fmt.Errorf("dag: negative data mean")
	}
	return nil
}

// Task is one node of the graph.
type Task struct {
	ID    int32
	Layer int32
	Cost  sim.Duration
	// Preds and Succs are task IDs; PredData[i] is the bytes flowing
	// over the edge from Preds[i].
	Preds    []int32
	PredData []int
	Succs    []int32
}

// Graph is a generated DAG. Tasks are stored in topological order
// (layer by layer), so Tasks[i].Preds all have IDs < i.
type Graph struct {
	Params Params
	Tasks  []Task
	// Roots are the tasks with no predecessors.
	Roots []int32
	// TotalCost is the sum of task costs (sequential compute time).
	TotalCost sim.Duration
	// TotalBytes is the sum of edge data sizes.
	TotalBytes int64
}

// Generate builds the graph.
func Generate(p Params) (*Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(p.Seed)
	g := &Graph{Params: p}

	// Layer widths: 1 + geometric-ish variation around WidthMean.
	layerStart := make([]int32, 0, p.Layers+1)
	var id int32
	for l := 0; l < p.Layers; l++ {
		layerStart = append(layerStart, id)
		width := 1 + r.Intn(2*p.WidthMean-1) // mean ~= WidthMean
		for k := 0; k < width; k++ {
			cost := heavyTailedCost(r, p.CostMean)
			g.Tasks = append(g.Tasks, Task{ID: id, Layer: int32(l), Cost: cost})
			g.TotalCost += cost
			id++
		}
	}
	layerStart = append(layerStart, id)

	// Edges: each non-first-layer task draws predecessors from the
	// locality window.
	for l := 1; l < p.Layers; l++ {
		loLayer := l - p.LocalityWindow
		if loLayer < 0 {
			loLayer = 0
		}
		lo, hi := layerStart[loLayer], layerStart[l]
		candidates := int(hi - lo)
		for t := layerStart[l]; t < layerStart[l+1]; t++ {
			task := &g.Tasks[t]
			npred := 1
			if p.EdgesPerTask > 1 {
				npred = 1 + r.Intn(int(2*p.EdgesPerTask-1))
			}
			if npred > candidates {
				npred = candidates
			}
			seen := map[int32]bool{}
			for len(task.Preds) < npred {
				pred := lo + int32(r.Intn(candidates))
				if seen[pred] {
					continue
				}
				seen[pred] = true
				data := edgeBytes(r, p.DataMean)
				task.Preds = append(task.Preds, pred)
				task.PredData = append(task.PredData, data)
				g.TotalBytes += int64(data)
				g.Tasks[pred].Succs = append(g.Tasks[pred].Succs, task.ID)
			}
		}
	}

	for i := range g.Tasks {
		if len(g.Tasks[i].Preds) == 0 {
			g.Roots = append(g.Roots, g.Tasks[i].ID)
		}
	}
	return g, nil
}

// heavyTailedCost draws exp(N(0, 0.75)) * mean, clamped to [mean/16,
// 32*mean]: most tasks near the mean, a heavy right tail.
func heavyTailedCost(r *rng.Xoshiro256, mean sim.Duration) sim.Duration {
	f := math.Exp(0.75 * r.NormFloat64())
	c := sim.Duration(float64(mean) * f)
	if c < mean/16 {
		c = mean / 16
	}
	if c > 32*mean {
		c = 32 * mean
	}
	if c < 1 {
		c = 1
	}
	return c
}

// edgeBytes draws an edge payload around the mean.
func edgeBytes(r *rng.Xoshiro256, mean int) int {
	if mean == 0 {
		return 0
	}
	return 1 + r.Intn(2*mean-1)
}

// Len returns the task count.
func (g *Graph) Len() int { return len(g.Tasks) }

// Validate checks structural invariants: topological ID order,
// symmetric adjacency, in-window predecessors.
func (g *Graph) Validate() error {
	for i := range g.Tasks {
		t := &g.Tasks[i]
		if t.ID != int32(i) {
			return fmt.Errorf("dag: task %d has ID %d", i, t.ID)
		}
		if len(t.Preds) != len(t.PredData) {
			return fmt.Errorf("dag: task %d pred/data length mismatch", i)
		}
		for _, pred := range t.Preds {
			if pred >= t.ID {
				return fmt.Errorf("dag: task %d depends on later task %d", i, pred)
			}
			found := false
			for _, s := range g.Tasks[pred].Succs {
				if s == t.ID {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("dag: edge %d->%d not mirrored", pred, i)
			}
		}
	}
	return nil
}

// CriticalPath returns the longest compute-cost path through the graph:
// the makespan lower bound with infinite ranks and free communication.
func (g *Graph) CriticalPath() sim.Duration {
	finish := make([]sim.Duration, len(g.Tasks))
	var cp sim.Duration
	for i := range g.Tasks {
		t := &g.Tasks[i]
		var ready sim.Duration
		for _, pred := range t.Preds {
			if finish[pred] > ready {
				ready = finish[pred]
			}
		}
		finish[i] = ready + t.Cost
		if finish[i] > cp {
			cp = finish[i]
		}
	}
	return cp
}
