// Package comm provides the simulated message-passing substrate the
// work-stealing runtime runs on.
//
// It models the properties of the two-sided MPI communication the
// reference UTS implementation uses on the K Computer:
//
//   - a message from rank i to rank k is visible to k only after the
//     one-way latency given by the topology's latency model;
//   - delivery is passive: a busy receiver observes messages only when
//     it polls its mailbox (matching MPI progress made between node
//     expansions), while an idle receiver can register a notification
//     callback (matching a rank spinning on MPI_Test);
//   - per-pair message ordering is preserved (MPI non-overtaking): the
//     latency model is distance-based, so messages between a fixed pair
//     take equal delay and FIFO event dispatch preserves send order.
//
// All traffic is counted, per tag, for the statistics the paper reports
// (steal requests, failures, work transfers).
package comm

import (
	"fmt"

	"distws/internal/sim"
	"distws/internal/topology"
)

// Tag identifies the protocol role of a message.
type Tag uint8

// Protocol tags used by the work-stealing runtime.
const (
	// TagStealRequest is a thief asking a victim for work.
	TagStealRequest Tag = iota
	// TagWork is a victim's positive answer carrying stolen chunks.
	TagWork
	// TagNoWork is a victim's negative answer (failed steal).
	TagNoWork
	// TagToken is the termination-detection token.
	TagToken
	// TagTerminate is the broadcast ending the computation.
	TagTerminate

	numTags
)

func (t Tag) String() string {
	switch t {
	case TagStealRequest:
		return "StealRequest"
	case TagWork:
		return "Work"
	case TagNoWork:
		return "NoWork"
	case TagToken:
		return "Token"
	case TagTerminate:
		return "Terminate"
	default:
		return fmt.Sprintf("Tag(%d)", uint8(t))
	}
}

// Message is one in-flight or delivered message.
type Message struct {
	From, To int
	Tag      Tag
	// Payload carries protocol data; its concrete type depends on Tag.
	Payload any
	// Size is the modeled wire size in bytes, used for the bandwidth
	// term of the latency model.
	Size        int
	SentAt      sim.Time
	DeliveredAt sim.Time
}

// Stats aggregates traffic counters.
type Stats struct {
	Sent     [numTags]uint64
	Bytes    [numTags]uint64
	Received [numTags]uint64
}

// TotalSent returns the number of messages sent across all tags.
func (s *Stats) TotalSent() uint64 {
	var t uint64
	for _, v := range s.Sent {
		t += v
	}
	return t
}

// SentByTag returns the number of messages sent with the given tag.
func (s *Stats) SentByTag(tag Tag) uint64 { return s.Sent[tag] }

// Network is the simulated interconnect for one job.
type Network struct {
	kernel *sim.Kernel
	job    *topology.Job
	model  topology.LatencyModel

	mailbox [][]*Message
	notify  []func()
	stats   Stats
}

// New creates a network for the given job over the kernel. The latency
// model must not be nil.
func New(k *sim.Kernel, job *topology.Job, model topology.LatencyModel) *Network {
	if model == nil {
		panic("comm: nil latency model")
	}
	n := job.Ranks()
	return &Network{
		kernel:  k,
		job:     job,
		model:   model,
		mailbox: make([][]*Message, n),
		notify:  make([]func(), n),
	}
}

// Ranks returns the number of ranks attached to the network.
func (n *Network) Ranks() int { return len(n.mailbox) }

// Job returns the placed job the network was built for.
func (n *Network) Job() *topology.Job { return n.job }

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() Stats { return n.stats }

// Send queues a message for delivery after the model's one-way latency.
// It is valid to send to oneself (used by the token ring at N=1); the
// same-node latency applies.
func (n *Network) Send(from, to int, tag Tag, payload any, size int) {
	if to < 0 || to >= len(n.mailbox) {
		panic(fmt.Sprintf("comm: send to invalid rank %d", to))
	}
	m := &Message{
		From:    from,
		To:      to,
		Tag:     tag,
		Payload: payload,
		Size:    size,
		SentAt:  n.kernel.Now(),
	}
	n.stats.Sent[tag]++
	n.stats.Bytes[tag] += uint64(size)
	delay := n.model.Latency(n.job, from, to, size)
	if delay < 0 {
		panic(fmt.Sprintf("comm: negative latency %v", delay))
	}
	if delay == 0 {
		// No transfer is instantaneous; a strictly positive delay also
		// prevents degenerate latency models from creating zero-time
		// request/reply livelocks in the simulator.
		delay = 1
	}
	n.kernel.After(delay, func() {
		m.DeliveredAt = n.kernel.Now()
		n.mailbox[to] = append(n.mailbox[to], m)
		if fn := n.notify[to]; fn != nil {
			fn()
		}
	})
}

// Poll drains and returns rank's delivered messages in delivery order.
// It returns nil when the mailbox is empty.
func (n *Network) Poll(rank int) []*Message {
	msgs := n.mailbox[rank]
	if len(msgs) == 0 {
		return nil
	}
	n.mailbox[rank] = nil
	for _, m := range msgs {
		n.stats.Received[m.Tag]++
	}
	return msgs
}

// Pending reports whether rank has delivered-but-unpolled messages.
func (n *Network) Pending(rank int) bool { return len(n.mailbox[rank]) > 0 }

// SetNotify installs fn to be invoked (at delivery virtual time)
// whenever a message is delivered to rank. Passing nil uninstalls it.
// The callback fires for every delivery, including ones that land while
// a previous callback's messages are still unpolled; receivers must
// tolerate spurious wakeups.
func (n *Network) SetNotify(rank int, fn func()) { n.notify[rank] = fn }
