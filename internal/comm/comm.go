// Package comm provides the simulated message-passing substrate the
// work-stealing runtime runs on.
//
// It models the properties of the two-sided MPI communication the
// reference UTS implementation uses on the K Computer:
//
//   - a message from rank i to rank k is visible to k only after the
//     one-way latency given by the topology's latency model;
//   - delivery is passive: a busy receiver observes messages only when
//     it polls its mailbox (matching MPI progress made between node
//     expansions), while an idle receiver can register a notification
//     callback (matching a rank spinning on MPI_Test);
//   - per-pair message ordering is preserved (MPI non-overtaking): the
//     latency model is distance-based, so messages between a fixed pair
//     take equal delay and FIFO event dispatch preserves send order.
//
// All traffic is counted, per tag, for the statistics the paper reports
// (steal requests, failures, work transfers).
//
// The send/deliver/poll cycle is the second-hottest loop of the
// simulator (after the event kernel), so the package is written to be
// allocation-free at steady state: Message objects come from a free
// list (returned via Free), the fixed protocol kinds travel in typed
// union fields instead of boxed `any` payloads, delivery is scheduled
// through the kernel's closure-free AfterArg path, and per-rank
// mailboxes are reusable ring buffers whose backing arrays are released
// once they sit far above the recent high-water occupancy.
package comm

import (
	"fmt"

	"distws/internal/sim"
	"distws/internal/term"
	"distws/internal/topology"
	"distws/internal/uts"
)

// Tag identifies the protocol role of a message.
type Tag uint8

// Protocol tags used by the work-stealing runtime.
const (
	// TagStealRequest is a thief asking a victim for work.
	TagStealRequest Tag = iota
	// TagWork is a victim's positive answer carrying stolen chunks.
	TagWork
	// TagNoWork is a victim's negative answer (failed steal).
	TagNoWork
	// TagToken is the termination-detection token.
	TagToken
	// TagTerminate is the broadcast ending the computation.
	TagTerminate

	numTags
)

func (t Tag) String() string {
	switch t {
	case TagStealRequest:
		return "StealRequest"
	case TagWork:
		return "Work"
	case TagNoWork:
		return "NoWork"
	case TagToken:
		return "Token"
	case TagTerminate:
		return "Terminate"
	default:
		return fmt.Sprintf("Tag(%d)", uint8(t))
	}
}

// Message is one in-flight or delivered message.
//
// The fixed protocol kinds carry their data in the typed union fields
// (ID, Nodes, Token) selected by Tag, so the hot protocol path never
// boxes payloads into an interface. Extension protocols built on the
// network (package dagws, tests) may instead ship arbitrary data in
// Payload via the generic Send.
type Message struct {
	From, To int
	Tag      Tag

	// ID correlates a steal request with its reply; it is valid for
	// TagStealRequest, TagWork and TagNoWork.
	ID uint64
	// Nodes is the stolen loot of a TagWork reply.
	Nodes []uts.Node
	// Lineage is the migration depth of a TagWork reply's loot: how many
	// successful steals the work has survived since rank 0's root
	// (depth 0). Thieves record it so steal chains i→j→k are recoverable.
	Lineage int
	// Token is the termination-detection token of a TagToken message.
	Token term.Token
	// Payload carries extension data for messages sent with the generic
	// Send; nil for the typed protocol kinds.
	Payload any

	// Size is the modeled wire size in bytes, used for the bandwidth
	// term of the latency model.
	Size        int
	SentAt      sim.Time
	DeliveredAt sim.Time
}

// Stats aggregates traffic counters. Dropped and Duplicated stay zero
// unless an interposer (fault injection) is installed.
type Stats struct {
	Sent       [numTags]uint64
	Bytes      [numTags]uint64
	Received   [numTags]uint64
	Dropped    [numTags]uint64
	Duplicated [numTags]uint64
}

// TotalSent returns the number of messages sent across all tags.
func (s *Stats) TotalSent() uint64 {
	var t uint64
	for _, v := range s.Sent {
		t += v
	}
	return t
}

// SentByTag returns the number of messages sent with the given tag.
func (s *Stats) SentByTag(tag Tag) uint64 { return s.Sent[tag] }

// TotalDropped returns the number of messages lost in transit across
// all tags (zero without an interposer).
func (s *Stats) TotalDropped() uint64 {
	var t uint64
	for _, v := range s.Dropped {
		t += v
	}
	return t
}

// Interposer sits between send and delivery and decides each message's
// fate: how many copies arrive (0 drops it, 1 is normal transit, 2
// duplicates it) and with what delay. Implementations must be
// deterministic functions of the virtual-time event order — the fault
// injector in internal/fault draws from its own seeded stream. A nil
// interposer is the fast path: send() takes one predicted branch and
// performs no calls or allocations.
type Interposer interface {
	// Outcome inspects an outgoing message and the delay the latency
	// model assigned. It returns the number of copies to deliver and the
	// (possibly inflated) delay. The message is owned by the network;
	// implementations must not retain it.
	Outcome(m *Message, delay sim.Duration) (copies int, newDelay sim.Duration)
}

// mailbox is one rank's delivered-but-unpolled queue: a ring buffer
// that Poll drains in delivery order. Only deliveries add to it and a
// poll removes everything, so the occupancy seen by Poll is exactly the
// high-water mark since the previous poll.
type mailbox struct {
	buf  []*Message
	head int // index of the oldest message
	n    int // occupancy
	hw   int // decaying high-water occupancy across recent polls
}

// mailboxShrinkMin is the smallest backing-array capacity worth
// releasing; below it the shrink bookkeeping costs more than the
// memory it could recover.
const mailboxShrinkMin = 64

func (m *mailbox) push(msg *Message) {
	if m.n == len(m.buf) {
		m.grow()
	}
	m.buf[(m.head+m.n)%len(m.buf)] = msg
	m.n++
}

func (m *mailbox) grow() {
	newCap := 2 * len(m.buf)
	if newCap == 0 {
		newCap = 8
	}
	buf := make([]*Message, newCap)
	for i := 0; i < m.n; i++ {
		buf[i] = m.buf[(m.head+i)%len(m.buf)]
	}
	m.buf = buf
	m.head = 0
}

// drainInto appends the queued messages, oldest first, to out and
// empties the ring. A drain is also where the peak-capacity fix lives:
// a burst of failed steals can balloon a mailbox to thousands of slots
// that the steady state never fills again, so once the decaying
// high-water occupancy sits far below the backing array's capacity the
// array is released instead of pinning peak memory for the whole run.
func (m *mailbox) drainInto(out []*Message) []*Message {
	for i := 0; i < m.n; i++ {
		msg := m.buf[(m.head+i)%len(m.buf)]
		m.buf[(m.head+i)%len(m.buf)] = nil
		out = append(out, msg)
	}
	// Halving decay: hw tracks the largest drain of the recent past and
	// forgets a one-off burst within a few polls.
	m.hw /= 2
	if m.n > m.hw {
		m.hw = m.n
	}
	m.head = 0
	m.n = 0
	if len(m.buf) >= mailboxShrinkMin && len(m.buf) > 8*m.hw {
		m.buf = nil // re-grown on demand, sized to current traffic
	}
	return out
}

// Network is the simulated interconnect for one job.
type Network struct {
	kernel *sim.Kernel
	job    *topology.Job
	model  topology.LatencyModel

	mailbox []mailbox
	notify  []func()
	stats   Stats

	// interposer, when non-nil, decides per-message drop/duplicate/delay
	// outcomes (fault injection). Nil in fault-free runs.
	interposer Interposer

	// router, when non-nil, is offered every message after the latency
	// model has priced it and may claim it for out-of-band delivery. The
	// sharded engine (internal/sim/par wiring in core) claims messages
	// whose destination rank lives on another shard and re-injects them
	// into the owning shard's kernel at the barrier; the sender's
	// Sent/Bytes counters have already been taken when the router runs.
	// Nil in sequential runs — the hot path costs one predicted branch.
	router func(m *Message, delay sim.Duration) bool

	// pool is the Message free list; Free returns messages to it.
	pool []*Message
	// pollBuf is per-rank scratch reused across Poll calls.
	pollBuf [][]*Message
	// deliver is the single delivery callback shared by all sends,
	// scheduled through AfterArg so a send allocates no closure.
	deliver func(any)
}

// New creates a network for the given job over the kernel. The latency
// model must not be nil.
func New(k *sim.Kernel, job *topology.Job, model topology.LatencyModel) *Network {
	if model == nil {
		panic("comm: nil latency model")
	}
	nranks := job.Ranks()
	n := &Network{
		kernel:  k,
		job:     job,
		model:   topology.SendModel(model, job),
		mailbox: make([]mailbox, nranks),
		notify:  make([]func(), nranks),
		pollBuf: make([][]*Message, nranks),
	}
	n.deliver = func(a any) {
		m := a.(*Message)
		m.DeliveredAt = n.kernel.Now()
		n.mailbox[m.To].push(m)
		if fn := n.notify[m.To]; fn != nil {
			fn()
		}
	}
	return n
}

// Ranks returns the number of ranks attached to the network.
func (n *Network) Ranks() int { return len(n.mailbox) }

// Job returns the placed job the network was built for.
func (n *Network) Job() *topology.Job { return n.job }

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() Stats { return n.stats }

// alloc takes a zeroed Message from the free list, or the heap when the
// list is empty.
func (n *Network) alloc() *Message {
	if last := len(n.pool) - 1; last >= 0 {
		m := n.pool[last]
		n.pool[last] = nil
		n.pool = n.pool[:last]
		return m
	}
	return &Message{}
}

// Free returns a polled message to the network's free list. Callers
// that retain no reference to a message (or anything it carries) after
// handling it should free it so the steady-state protocol traffic
// recycles a small working set instead of allocating per send. Freeing
// is optional — unfreed messages are simply collected — and a message
// must not be used after it is freed.
func (n *Network) Free(m *Message) {
	*m = Message{}
	n.pool = append(n.pool, m)
}

// send queues m for delivery after the model's one-way latency. It is
// valid to send to oneself (used by the token ring at N=1); the
// same-node latency applies.
func (n *Network) send(m *Message) {
	from, to := m.From, m.To
	if to < 0 || to >= len(n.mailbox) {
		panic(fmt.Sprintf("comm: send to invalid rank %d", to))
	}
	m.SentAt = n.kernel.Now()
	n.stats.Sent[m.Tag]++
	n.stats.Bytes[m.Tag] += uint64(m.Size)
	delay := n.model.Latency(n.job, from, to, m.Size)
	if delay < 0 {
		panic(fmt.Sprintf("comm: negative latency %v", delay))
	}
	if delay == 0 {
		// No transfer is instantaneous; a strictly positive delay also
		// prevents degenerate latency models from creating zero-time
		// request/reply livelocks in the simulator.
		delay = 1
	}
	if n.router != nil && n.router(m, delay) {
		// Claimed for cross-shard delivery; the router owns the message
		// until it re-injects it on the destination shard.
		return
	}
	if n.interposer != nil {
		copies, d := n.interposer.Outcome(m, delay)
		if d > 0 {
			delay = d
		}
		if copies <= 0 {
			// Lost in transit: the sent/bytes counters above stand (the
			// bytes hit the wire) but the message never arrives.
			n.stats.Dropped[m.Tag]++
			n.Free(m)
			return
		}
		n.kernel.AfterArg(delay, n.deliver, m)
		for c := 1; c < copies; c++ {
			// Duplicate delivery: the copy rides the same delay and lands
			// right after the original (FIFO event order).
			dup := n.alloc()
			*dup = *m
			n.stats.Duplicated[dup.Tag]++
			n.kernel.AfterArg(delay, n.deliver, dup)
		}
		return
	}
	n.kernel.AfterArg(delay, n.deliver, m)
}

// Send queues a message whose payload is not one of the fixed protocol
// kinds; extension protocols layered on the network use it. The typed
// senders below cover the hot protocol traffic without boxing.
func (n *Network) Send(from, to int, tag Tag, payload any, size int) {
	m := n.alloc()
	m.From, m.To, m.Tag, m.Payload, m.Size = from, to, tag, payload, size
	n.send(m)
}

// SendID queues a protocol message that carries only a request id:
// steal requests, no-work replies and the terminate broadcast.
func (n *Network) SendID(from, to int, tag Tag, id uint64, size int) {
	m := n.alloc()
	m.From, m.To, m.Tag, m.ID, m.Size = from, to, tag, id, size
	n.send(m)
}

// SendNodes queues a TagWork reply carrying stolen nodes for request id.
// lineage is the loot's migration depth (the victim's depth plus one).
func (n *Network) SendNodes(from, to int, id uint64, nodes []uts.Node, lineage, size int) {
	m := n.alloc()
	m.From, m.To, m.Tag, m.ID, m.Nodes, m.Size = from, to, TagWork, id, nodes, size
	m.Lineage = lineage
	n.send(m)
}

// SendToken queues a TagToken message carrying a termination token.
func (n *Network) SendToken(from, to int, tok term.Token, size int) {
	m := n.alloc()
	m.From, m.To, m.Tag, m.Token, m.Size = from, to, TagToken, tok, size
	n.send(m)
}

// Poll drains and returns rank's delivered messages in delivery order.
// It returns nil when the mailbox is empty. The returned slice is
// scratch owned by the network: it is valid until the next Poll of the
// same rank, so callers must not retain it. Callers done with a message
// should pass it to Free.
func (n *Network) Poll(rank int) []*Message {
	mb := &n.mailbox[rank]
	if mb.n == 0 {
		return nil
	}
	msgs := mb.drainInto(n.pollBuf[rank][:0])
	n.pollBuf[rank] = msgs[:0]
	for _, m := range msgs {
		n.stats.Received[m.Tag]++
	}
	return msgs
}

// Pending reports whether rank has delivered-but-unpolled messages.
func (n *Network) Pending(rank int) bool { return n.mailbox[rank].n > 0 }

// SetInterposer installs (or, with nil, removes) the message
// interposer consulted on every send. It must be set before traffic
// starts; swapping it mid-run would break replay determinism.
func (n *Network) SetInterposer(ip Interposer) {
	if ip != nil && n.router != nil {
		panic("comm: router and interposer are mutually exclusive")
	}
	n.interposer = ip
}

// SetRouter installs (or, with nil, removes) the cross-shard message
// router consulted on every send. Like the interposer it must be set
// before traffic starts; the two are mutually exclusive (the sharded
// engine rejects fault plans that need an interposer).
func (n *Network) SetRouter(fn func(m *Message, delay sim.Duration) bool) {
	if fn != nil && n.interposer != nil {
		panic("comm: router and interposer are mutually exclusive")
	}
	n.router = fn
}

// DeliverFn exposes the network's shared delivery callback so the
// sharded engine can schedule a claimed message on this network's
// kernel (via AtArg at send time + latency): the delivery then stamps
// DeliveredAt, lands in the destination mailbox and fires its notify
// exactly as a local send would.
func (n *Network) DeliverFn() func(any) { return n.deliver }

// SetNotify installs fn to be invoked (at delivery virtual time)
// whenever a message is delivered to rank. Passing nil uninstalls it.
// The callback fires for every delivery, including ones that land while
// a previous callback's messages are still unpolled; receivers must
// tolerate spurious wakeups.
func (n *Network) SetNotify(rank int, fn func()) { n.notify[rank] = fn }
