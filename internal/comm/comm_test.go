package comm

import (
	"testing"

	"distws/internal/sim"
	"distws/internal/term"
	"distws/internal/topology"
	"distws/internal/uts"
)

func testNetwork(t *testing.T, nranks int) (*sim.Kernel, *Network) {
	t.Helper()
	k := sim.NewKernel()
	job, err := topology.NewJob(topology.KComputer(), nranks, topology.OnePerNode)
	if err != nil {
		t.Fatal(err)
	}
	return k, New(k, job, topology.DefaultLatency())
}

func TestSendDeliversAfterLatency(t *testing.T) {
	k, n := testNetwork(t, 4)
	var deliveredAt sim.Time
	n.Send(0, 1, TagStealRequest, "hello", 16)
	if n.Pending(1) {
		t.Fatal("message visible before latency elapsed")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	msgs := n.Poll(1)
	if len(msgs) != 1 {
		t.Fatalf("polled %d messages, want 1", len(msgs))
	}
	m := msgs[0]
	deliveredAt = m.DeliveredAt
	if m.From != 0 || m.To != 1 || m.Tag != TagStealRequest || m.Payload != "hello" {
		t.Fatalf("message corrupted: %+v", m)
	}
	if deliveredAt <= m.SentAt {
		t.Fatal("delivery not after send")
	}
	want := topology.DefaultLatency().Latency(n.Job(), 0, 1, 16)
	if got := deliveredAt.Sub(m.SentAt); got != want {
		t.Fatalf("latency %v, want %v", got, want)
	}
}

func TestPollDrains(t *testing.T) {
	k, n := testNetwork(t, 2)
	n.Send(0, 1, TagWork, 1, 0)
	n.Send(0, 1, TagWork, 2, 0)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(n.Poll(1)); got != 2 {
		t.Fatalf("first poll: %d", got)
	}
	if n.Poll(1) != nil {
		t.Fatal("second poll returned messages")
	}
	if n.Pending(1) {
		t.Fatal("Pending after drain")
	}
}

func TestPairwiseFIFO(t *testing.T) {
	k, n := testNetwork(t, 2)
	const count = 50
	for i := 0; i < count; i++ {
		n.Send(0, 1, TagWork, i, 8)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	msgs := n.Poll(1)
	if len(msgs) != count {
		t.Fatalf("got %d messages", len(msgs))
	}
	for i, m := range msgs {
		if m.Payload.(int) != i {
			t.Fatalf("message %d carries %v: FIFO violated", i, m.Payload)
		}
	}
}

func TestNotifyFiresAtDelivery(t *testing.T) {
	k, n := testNetwork(t, 2)
	var wokenAt []sim.Time
	n.SetNotify(1, func() { wokenAt = append(wokenAt, k.Now()) })
	n.Send(0, 1, TagStealRequest, nil, 0)
	n.Send(0, 1, TagStealRequest, nil, 0)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(wokenAt) != 2 {
		t.Fatalf("notify fired %d times, want 2", len(wokenAt))
	}
	msgs := n.Poll(1)
	if msgs[0].DeliveredAt != wokenAt[0] {
		t.Fatal("notify time != delivery time")
	}
	// Uninstall and verify silence.
	n.SetNotify(1, nil)
	n.Send(0, 1, TagStealRequest, nil, 0)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(wokenAt) != 2 {
		t.Fatal("notify fired after uninstall")
	}
}

func TestSelfSend(t *testing.T) {
	k, n := testNetwork(t, 1)
	n.Send(0, 0, TagToken, nil, 4)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(n.Poll(0)) != 1 {
		t.Fatal("self-send not delivered")
	}
}

func TestSendToInvalidRankPanics(t *testing.T) {
	_, n := testNetwork(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on invalid destination")
		}
	}()
	n.Send(0, 5, TagWork, nil, 0)
}

func TestStatsCounters(t *testing.T) {
	k, n := testNetwork(t, 3)
	n.Send(0, 1, TagStealRequest, nil, 10)
	n.Send(1, 0, TagNoWork, nil, 4)
	n.Send(0, 2, TagStealRequest, nil, 10)
	n.Send(2, 0, TagWork, nil, 200)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	n.Poll(0)
	n.Poll(1)
	n.Poll(2)
	s := n.Stats()
	if s.SentByTag(TagStealRequest) != 2 || s.SentByTag(TagNoWork) != 1 || s.SentByTag(TagWork) != 1 {
		t.Fatalf("sent counters wrong: %+v", s.Sent)
	}
	if s.Bytes[TagStealRequest] != 20 || s.Bytes[TagWork] != 200 {
		t.Fatalf("byte counters wrong: %+v", s.Bytes)
	}
	if s.TotalSent() != 4 {
		t.Fatalf("TotalSent = %d", s.TotalSent())
	}
	if s.Received[TagStealRequest] != 2 || s.Received[TagWork] != 1 || s.Received[TagNoWork] != 1 {
		t.Fatalf("received counters wrong: %+v", s.Received)
	}
}

func TestLatencyHeterogeneity(t *testing.T) {
	// A message to a nearby rank must arrive before a same-time message
	// to a distant rank — the property the whole paper depends on.
	k := sim.NewKernel()
	job, err := topology.NewJob(topology.KComputer(), 1024, topology.OnePerNode)
	if err != nil {
		t.Fatal(err)
	}
	n := New(k, job, topology.DefaultLatency())
	var nearAt, farAt sim.Time
	n.SetNotify(1, func() { nearAt = k.Now() })
	n.SetNotify(1023, func() { farAt = k.Now() })
	n.Send(0, 1, TagStealRequest, nil, 0)
	n.Send(0, 1023, TagStealRequest, nil, 0)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if nearAt == 0 || farAt == 0 {
		t.Fatal("messages not delivered")
	}
	if nearAt >= farAt {
		t.Fatalf("near delivery %v not before far delivery %v", nearAt, farAt)
	}
}

func TestTagString(t *testing.T) {
	for tag, want := range map[Tag]string{
		TagStealRequest: "StealRequest",
		TagWork:         "Work",
		TagNoWork:       "NoWork",
		TagToken:        "Token",
		TagTerminate:    "Terminate",
		Tag(99):         "Tag(99)",
	} {
		if got := tag.String(); got != want {
			t.Errorf("Tag(%d).String() = %q, want %q", uint8(tag), got, want)
		}
	}
}

func TestRanksAndNilModelPanic(t *testing.T) {
	k, n := testNetwork(t, 3)
	_ = k
	if n.Ranks() != 3 {
		t.Fatalf("Ranks = %d", n.Ranks())
	}
	job := n.Job()
	defer func() {
		if recover() == nil {
			t.Fatal("nil latency model accepted")
		}
	}()
	New(sim.NewKernel(), job, nil)
}

func TestZeroLatencyClampedToOneNanosecond(t *testing.T) {
	k := sim.NewKernel()
	job, err := topology.NewJob(topology.KComputer(), 2, topology.OnePerNode)
	if err != nil {
		t.Fatal(err)
	}
	n := New(k, job, &topology.UniformLatency{Fixed: 0})
	n.Send(0, 1, TagWork, nil, 0)
	var at sim.Time
	n.SetNotify(1, func() { at = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 1 {
		t.Fatalf("zero-latency message delivered at %d, want clamped to 1ns", at)
	}
}

func TestMailboxReleasesPeakCapacity(t *testing.T) {
	k, n := testNetwork(t, 2)
	// A burst — e.g. the flood of failed steals near termination —
	// balloons the mailbox ring far past its steady-state occupancy.
	const burst = 1000
	for i := 0; i < burst; i++ {
		n.Send(0, 1, TagWork, i, 8)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(n.Poll(1)); got != burst {
		t.Fatalf("drained %d messages, want %d", got, burst)
	}
	peak := len(n.mailbox[1].buf)
	if peak < burst {
		t.Fatalf("ring capacity %d never reached the burst size %d", peak, burst)
	}
	// Steady-state traffic is one message per poll; within a few polls
	// the decaying high-water mark must let the ring release the
	// burst-sized backing array instead of pinning it for the run.
	for i := 0; i < 10; i++ {
		n.Send(0, 1, TagWork, i, 8)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if got := len(n.Poll(1)); got != 1 {
			t.Fatalf("poll %d drained %d messages, want 1", i, got)
		}
	}
	if got := len(n.mailbox[1].buf); got >= peak {
		t.Fatalf("ring capacity still %d after steady-state polls, want it released below the %d peak", got, peak)
	}
}

func TestMessagePoolRecyclesFreedMessages(t *testing.T) {
	k, n := testNetwork(t, 2)
	n.SendNodes(0, 1, 7, make([]uts.Node, 3), 2, 60)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	msgs := n.Poll(1)
	if len(msgs) != 1 {
		t.Fatalf("polled %d messages, want 1", len(msgs))
	}
	first := msgs[0]
	if first.Tag != TagWork || first.ID != 7 || len(first.Nodes) != 3 || first.Lineage != 2 {
		t.Fatalf("typed fields corrupted: %+v", first)
	}
	n.Free(first)
	// The next send must reuse the freed message, fully re-zeroed: no
	// stale loot or payload may leak between protocol messages.
	n.SendID(1, 0, TagStealRequest, 9, 16)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	msgs = n.Poll(0)
	if len(msgs) != 1 {
		t.Fatalf("polled %d messages, want 1", len(msgs))
	}
	m := msgs[0]
	if m != first {
		t.Fatal("freed message not recycled by the pool")
	}
	if m.Tag != TagStealRequest || m.ID != 9 || m.Nodes != nil || m.Payload != nil || m.Token != (term.Token{}) {
		t.Fatalf("recycled message carries stale state: %+v", m)
	}
}

func TestSendTokenCarriesToken(t *testing.T) {
	k, n := testNetwork(t, 2)
	tok := term.Token{Color: term.Black, Count: 5, Round: 2}
	n.SendToken(0, 1, tok, 16)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	msgs := n.Poll(1)
	if len(msgs) != 1 || msgs[0].Tag != TagToken || msgs[0].Token != tok {
		t.Fatalf("token message corrupted: %+v", msgs[0])
	}
}

// scriptedInterposer drops, duplicates, or delays by tag — a test
// double for the fault injector.
type scriptedInterposer struct {
	dropTag Tag
	dupTag  Tag
	delay   sim.Duration // replaces the model delay when nonzero
}

func (s *scriptedInterposer) Outcome(m *Message, delay sim.Duration) (int, sim.Duration) {
	if s.delay != 0 {
		delay = s.delay
	}
	switch m.Tag {
	case s.dropTag:
		return 0, delay
	case s.dupTag:
		return 2, delay
	}
	return 1, delay
}

func TestInterposerDropsAndDuplicates(t *testing.T) {
	k, n := testNetwork(t, 2)
	n.SetInterposer(&scriptedInterposer{dropTag: TagNoWork, dupTag: TagStealRequest})
	n.SendID(0, 1, TagStealRequest, 7, 8)
	n.SendID(0, 1, TagNoWork, 7, 8)
	n.SendID(0, 1, TagWork, 7, 8)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	msgs := n.Poll(1)
	if len(msgs) != 3 {
		t.Fatalf("polled %d messages, want 3 (dup request + work, no-work dropped)", len(msgs))
	}
	// FIFO: the original precedes its duplicate.
	if msgs[0].Tag != TagStealRequest || msgs[1].Tag != TagStealRequest || msgs[2].Tag != TagWork {
		t.Fatalf("unexpected delivery order: %v %v %v", msgs[0].Tag, msgs[1].Tag, msgs[2].Tag)
	}
	if msgs[1].ID != 7 || msgs[1].From != 0 {
		t.Fatalf("duplicate lost its fields: %+v", msgs[1])
	}
	st := n.Stats()
	if st.Dropped[TagNoWork] != 1 || st.TotalDropped() != 1 {
		t.Fatalf("dropped counters: %+v", st.Dropped)
	}
	if st.Duplicated[TagStealRequest] != 1 {
		t.Fatalf("duplicated counters: %+v", st.Duplicated)
	}
	// Sent counts the original sends only; Received counts what arrived.
	if st.Sent[TagStealRequest] != 1 || st.Received[TagStealRequest] != 2 {
		t.Fatalf("sent/received: %d/%d", st.Sent[TagStealRequest], st.Received[TagStealRequest])
	}
	if st.Received[TagNoWork] != 0 {
		t.Fatal("dropped message was received")
	}
}

func TestInterposerDelaysDelivery(t *testing.T) {
	k, n := testNetwork(t, 2)
	n.SendID(0, 1, TagWork, 1, 8)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	base := n.Poll(1)[0].DeliveredAt
	spike := 10 * base
	n.SetInterposer(&scriptedInterposer{dropTag: numTags, dupTag: numTags, delay: sim.Duration(spike)})
	start := k.Now()
	n.SendID(0, 1, TagWork, 2, 8)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	got := n.Poll(1)[0].DeliveredAt - start
	if got != sim.Time(spike) {
		t.Fatalf("interposed delay %v, want %v", got, spike)
	}
}

func TestInterposerDroppedMessageIsPooled(t *testing.T) {
	k, n := testNetwork(t, 2)
	n.SetInterposer(&scriptedInterposer{dropTag: TagNoWork, dupTag: numTags})
	n.SendID(0, 1, TagNoWork, 1, 8)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// The dropped message went straight back to the free list: the next
	// alloc must reuse it rather than touch the heap.
	if len(n.pool) != 1 {
		t.Fatalf("pool holds %d messages after a drop, want 1", len(n.pool))
	}
	recycled := n.pool[0]
	n.SendID(0, 1, TagWork, 2, 8)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	msgs := n.Poll(1)
	if len(msgs) != 1 || msgs[0] != recycled {
		t.Fatal("drop did not recycle the message through the pool")
	}
}
