package comm

import (
	"testing"

	"distws/internal/sim"
	"distws/internal/topology"
)

// BenchmarkCommSend measures the full life of a steal-request message:
// send, latency lookup, delivery dispatch, and the receiver's poll.
// This is the dominant per-message cost of every simulated steal. The
// alloc gate (TestCommSendAllocFree) requires it to be allocation-free
// after warm-up.
func BenchmarkCommSend(b *testing.B) {
	kernel := sim.NewKernel()
	job, err := topology.NewJob(topology.KComputer(), 64, topology.OnePerNode)
	if err != nil {
		b.Fatal(err)
	}
	n := New(kernel, job, topology.DefaultLatency())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := i & 63
		to := (i * 7) & 63
		n.SendID(from, to, TagStealRequest, uint64(i), 16)
		if err := kernel.Run(); err != nil {
			b.Fatal(err)
		}
		for _, m := range n.Poll(to) {
			n.Free(m)
		}
	}
}

// TestCommSendAllocFree is the alloc gate for the messaging hot path:
// once the message pool, mailbox rings and poll scratch have reached
// steady-state capacity, a send/deliver/poll/free cycle must not
// allocate at all.
func TestCommSendAllocFree(t *testing.T) {
	kernel := sim.NewKernel()
	job, err := topology.NewJob(topology.KComputer(), 64, topology.OnePerNode)
	if err != nil {
		t.Fatal(err)
	}
	n := New(kernel, job, topology.DefaultLatency())
	i := 0
	body := func() {
		for k := 0; k < 100; k++ {
			from := i & 63
			to := (i * 7) & 63
			n.SendID(from, to, TagStealRequest, uint64(i), 16)
			i++
			if err := kernel.Run(); err != nil {
				t.Fatal(err)
			}
			for _, m := range n.Poll(to) {
				n.Free(m)
			}
		}
	}
	body() // reach steady-state capacity before measuring
	if got := testing.AllocsPerRun(20, body); got != 0 {
		t.Fatalf("comm send hot path allocates %.1f allocs/run, want 0", got)
	}
}
