package comm

import (
	"testing"

	"distws/internal/sim"
	"distws/internal/topology"
)

// TestRouterClaimsMessages checks the cross-shard hook: a claimed
// message is not delivered locally, the sender's Sent counters still
// stand, and re-injecting it through the destination network's
// DeliverFn lands it in the right mailbox with the right DeliveredAt.
func TestRouterClaimsMessages(t *testing.T) {
	job, err := topology.NewJob(topology.KComputer(), 8, topology.OnePerNode)
	if err != nil {
		t.Fatal(err)
	}
	model := topology.DefaultLatency()
	kSrc, kDst := sim.NewKernel(), sim.NewKernel()
	src := New(kSrc, job, model)
	dst := New(kDst, job, model)

	type claimed struct {
		m     *Message
		delay sim.Duration
	}
	var claims []claimed
	src.SetRouter(func(m *Message, delay sim.Duration) bool {
		if m.To >= 4 { // "other shard"
			claims = append(claims, claimed{m, delay})
			return true
		}
		return false
	})

	src.SendID(0, 5, TagStealRequest, 42, 8) // cross: claimed
	src.SendID(0, 2, TagNoWork, 7, 8)        // local: normal path
	if len(claims) != 1 || claims[0].m.To != 5 || claims[0].m.ID != 42 {
		t.Fatalf("router claims = %+v, want one claim for rank 5", claims)
	}
	if got := src.Stats().Sent[TagStealRequest]; got != 1 {
		t.Fatalf("sender Sent[StealRequest] = %d, want 1 (counted before routing)", got)
	}
	if err := kSrc.Run(); err != nil {
		t.Fatal(err)
	}
	if src.Pending(5) {
		t.Fatal("claimed message was delivered locally")
	}
	if !src.Pending(2) {
		t.Fatal("unclaimed local message was not delivered")
	}

	// Barrier-style re-injection on the destination network's kernel.
	c := claims[0]
	at := c.m.SentAt.Add(c.delay)
	kDst.AtArg(at, dst.DeliverFn(), c.m)
	if err := kDst.Run(); err != nil {
		t.Fatal(err)
	}
	msgs := dst.Poll(5)
	if len(msgs) != 1 || msgs[0].ID != 42 || msgs[0].DeliveredAt != at {
		t.Fatalf("cross delivery = %+v, want ID 42 at %v", msgs, at)
	}
	if got := dst.Stats().Received[TagStealRequest]; got != 1 {
		t.Fatalf("destination Received = %d, want 1", got)
	}
}

// TestRouterInterposerExclusive pins the mutual exclusion: fault
// interposition draws from an order-dependent stream, which the
// parallel windows would scramble.
func TestRouterInterposerExclusive(t *testing.T) {
	job, err := topology.NewJob(topology.KComputer(), 2, topology.OnePerNode)
	if err != nil {
		t.Fatal(err)
	}
	n := New(sim.NewKernel(), job, topology.DefaultLatency())
	n.SetRouter(func(*Message, sim.Duration) bool { return false })
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetInterposer after SetRouter did not panic")
			}
		}()
		n.SetInterposer(dropAll{})
	}()

	n2 := New(sim.NewKernel(), job, topology.DefaultLatency())
	n2.SetInterposer(dropAll{})
	defer func() {
		if recover() == nil {
			t.Error("SetRouter after SetInterposer did not panic")
		}
	}()
	n2.SetRouter(func(*Message, sim.Duration) bool { return false })
}

type dropAll struct{}

func (dropAll) Outcome(*Message, sim.Duration) (int, sim.Duration) { return 0, 0 }
