package rt

import (
	"fmt"
	"runtime"
	"testing"

	"distws/internal/uts"
)

// stressPreset picks the tree so the full matrix below stays inside a
// `go test -race -short` CI budget: H-TINY is ~20k nodes, H-SMALL
// ~1.2M.
func stressPreset() string {
	if testing.Short() {
		return "H-TINY"
	}
	return "H-SMALL"
}

// TestStressAllSelectorsUnderRace runs every victim-selection policy
// against both queue designs with more workers than cores, checking
// the traversal against sequential counts. Its job is to hand the race
// detector the full protocol surface — chunk release/reacquire under
// the per-worker mutex, Chase–Lev pop-vs-steal arbitration, the
// pending-counter termination protocol — under every selector's
// distinct contention pattern.
func TestStressAllSelectorsUnderRace(t *testing.T) {
	preset := stressPreset()
	want := seq(t, preset)
	workers := runtime.GOMAXPROCS(0) + 2
	if workers < 4 {
		workers = 4
	}

	for _, queue := range []Queue{Chunked, ChaseLev} {
		for _, sel := range []SelectorKind{RoundRobin, Random, RingSkewed} {
			for _, half := range []bool{false, true} {
				if queue == ChaseLev && half {
					continue // StealHalf does not apply to the deque
				}
				name := fmt.Sprintf("%s/%s/half=%v", queue, sel, half)
				t.Run(name, func(t *testing.T) {
					res, err := Run(Config{
						Tree:      uts.MustPreset(preset).Params,
						Workers:   workers,
						Queue:     queue,
						ChunkSize: 4,
						Selector:  sel,
						StealHalf: half,
						Seed:      7,
					})
					if err != nil {
						t.Fatal(err)
					}
					if res.Nodes != want.Nodes || res.Leaves != want.Leaves || res.MaxDepth != want.MaxDepth {
						t.Fatalf("got nodes/leaves/depth %d/%d/%d, want %d/%d/%d",
							res.Nodes, res.Leaves, res.MaxDepth, want.Nodes, want.Leaves, want.MaxDepth)
					}
				})
			}
		}
	}
}

// TestStressRepeatedSmallRuns hammers startup and termination — the
// window where the pending counter decides global shutdown while
// thieves are mid-steal — which a single long traversal exercises only
// once per run.
func TestStressRepeatedSmallRuns(t *testing.T) {
	rounds := 40
	if testing.Short() {
		rounds = 10
	}
	want := seq(t, "T3")
	for _, queue := range []Queue{Chunked, ChaseLev} {
		for round := 0; round < rounds; round++ {
			res, err := Run(Config{
				Tree:     uts.MustPreset("T3").Params,
				Workers:  6,
				Queue:    queue,
				Selector: SelectorKind(round % 3),
				Seed:     uint64(round),
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Nodes != want.Nodes {
				t.Fatalf("%s round %d: got %d nodes, want %d", queue, round, res.Nodes, want.Nodes)
			}
		}
	}
}
