package rt

import (
	"testing"

	"distws/internal/uts"
)

func seq(t testing.TB, preset string) uts.CountResult {
	t.Helper()
	res, err := uts.CountSequential(uts.MustPreset(preset).Params)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	tree := uts.MustPreset("T3").Params
	bad := []Config{
		{Tree: uts.Params{Type: uts.Binomial, NonLeafBF: 2, NonLeafProb: 0.9}},
		{Tree: tree, Workers: -1},
		{Tree: tree, ChunkSize: -2},
		{Tree: tree, ChunkSize: 10, ReleaseThreshold: 5},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestSingleWorkerMatchesSequential(t *testing.T) {
	want := seq(t, "T3")
	res, err := Run(Config{Tree: uts.MustPreset("T3").Params, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != want.Nodes || res.Leaves != want.Leaves || res.MaxDepth != want.MaxDepth {
		t.Fatalf("got %d/%d/%d want %+v", res.Nodes, res.Leaves, res.MaxDepth, want)
	}
	if res.Steals != 0 {
		t.Fatalf("single worker stole %d times", res.Steals)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	want := seq(t, "H-TINY")
	for _, workers := range []int{2, 4, 8} {
		for _, sel := range []SelectorKind{RoundRobin, Random, RingSkewed} {
			for _, half := range []bool{false, true} {
				res, err := Run(Config{
					Tree:      uts.MustPreset("H-TINY").Params,
					Workers:   workers,
					ChunkSize: 8,
					Selector:  sel,
					StealHalf: half,
					Seed:      42,
				})
				if err != nil {
					t.Fatalf("%d workers %v half=%v: %v", workers, sel, half, err)
				}
				if res.Nodes != want.Nodes || res.Leaves != want.Leaves {
					t.Fatalf("%d workers %v half=%v: %d/%d nodes/leaves, want %d/%d",
						workers, sel, half, res.Nodes, res.Leaves, want.Nodes, want.Leaves)
				}
				if res.MaxDepth != want.MaxDepth {
					t.Fatalf("depth %d want %d", res.MaxDepth, want.MaxDepth)
				}
			}
		}
	}
}

func TestRepeatedRunsAllComplete(t *testing.T) {
	// Hammer the termination path: many short runs with different
	// schedules must all count exactly the tree.
	want := seq(t, "T3")
	tree := uts.MustPreset("T3").Params
	for i := 0; i < 30; i++ {
		res, err := Run(Config{Tree: tree, Workers: 4, ChunkSize: 2, Seed: uint64(i), Selector: Random})
		if err != nil {
			t.Fatal(err)
		}
		if res.Nodes != want.Nodes {
			t.Fatalf("run %d counted %d nodes, want %d", i, res.Nodes, want.Nodes)
		}
	}
}

func TestWorkActuallySpreads(t *testing.T) {
	res, err := Run(Config{
		Tree:    uts.MustPreset("H-SMALL").Params,
		Workers: 4, Selector: Random, StealHalf: true, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steals == 0 {
		t.Fatal("no steals on a 900k-node tree with 4 workers")
	}
	if res.ChunksReleased == 0 {
		t.Fatal("no chunks released")
	}
}

func TestSelectorKindString(t *testing.T) {
	for k, want := range map[SelectorKind]string{
		RoundRobin: "RoundRobin", Random: "Random", RingSkewed: "RingSkewed",
		SelectorKind(9): "SelectorKind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q", uint8(k), got)
		}
	}
}

func TestRingDist(t *testing.T) {
	cases := []struct{ a, b, n, want int }{
		{0, 1, 8, 1}, {0, 7, 8, 1}, {0, 4, 8, 4}, {2, 2, 8, 0}, {1, 6, 8, 3},
	}
	for _, c := range cases {
		if got := ringDist(c.a, c.b, c.n); got != c.want {
			t.Errorf("ringDist(%d,%d,%d) = %d want %d", c.a, c.b, c.n, got, c.want)
		}
	}
}

func BenchmarkTraverseSerial(b *testing.B) {
	tree := uts.MustPreset("H-TINY").Params
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Tree: tree, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraverseParallel(b *testing.B) {
	tree := uts.MustPreset("H-TINY").Params
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Tree: tree, Selector: RingSkewed, StealHalf: true, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestChaseLevMatchesSequential(t *testing.T) {
	want := seq(t, "H-TINY")
	for _, workers := range []int{1, 2, 4, 8} {
		for _, sel := range []SelectorKind{RoundRobin, Random, RingSkewed} {
			res, err := Run(Config{
				Tree:     uts.MustPreset("H-TINY").Params,
				Workers:  workers,
				Queue:    ChaseLev,
				Selector: sel,
				Seed:     31,
			})
			if err != nil {
				t.Fatalf("%d workers %v: %v", workers, sel, err)
			}
			if res.Nodes != want.Nodes || res.Leaves != want.Leaves || res.MaxDepth != want.MaxDepth {
				t.Fatalf("%d workers %v: %d/%d/%d, want %d/%d/%d", workers, sel,
					res.Nodes, res.Leaves, res.MaxDepth, want.Nodes, want.Leaves, want.MaxDepth)
			}
		}
	}
}

func TestChaseLevRepeatedRuns(t *testing.T) {
	want := seq(t, "T3")
	tree := uts.MustPreset("T3").Params
	for i := 0; i < 30; i++ {
		res, err := Run(Config{Tree: tree, Workers: 4, Queue: ChaseLev, Selector: Random, Seed: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Nodes != want.Nodes {
			t.Fatalf("run %d counted %d nodes, want %d", i, res.Nodes, want.Nodes)
		}
	}
}

func TestQueueString(t *testing.T) {
	if Chunked.String() != "Chunked" || ChaseLev.String() != "ChaseLev" {
		t.Fatal("queue names")
	}
}
