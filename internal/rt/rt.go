// Package rt is a real shared-memory work-stealing runtime: it executes
// a UTS traversal on goroutines pinned one per CPU-ish worker, with
// chunked per-worker stacks and pluggable victim selection.
//
// It complements the discrete-event simulator: the simulator studies
// distributed-memory effects at thousands of ranks with virtual time,
// while this runtime demonstrates (and benchmarks, with real wall-clock
// time and allocation counts) the same chunked-stack and
// victim-selection machinery under genuine concurrency. Victim
// "distance" here is the ring distance between worker indices, a proxy
// for cache/NUMA locality.
//
// Two queue designs are provided (Config.Queue): the UTS chunked
// design — a private node buffer plus a mutex-protected shared stack,
// with surplus released in chunks and thieves taking whole chunks —
// and the lock-free Chase–Lev deque (internal/deque), which the
// paper's §VI cites in its discussion of steal contention.
package rt

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"distws/internal/deque"
	"distws/internal/obs"
	"distws/internal/rng"
	"distws/internal/uts"
	"distws/internal/workstack"
)

// SelectorKind picks the victim-selection strategy.
type SelectorKind uint8

const (
	// RoundRobin scans workers deterministically, as the reference UTS.
	RoundRobin SelectorKind = iota
	// Random picks victims uniformly.
	Random
	// RingSkewed weighs victims by inverse ring distance between worker
	// indices — the shared-memory analogue of the paper's Tofu
	// selection.
	RingSkewed
)

func (k SelectorKind) String() string {
	switch k {
	case RoundRobin:
		return "RoundRobin"
	case Random:
		return "Random"
	case RingSkewed:
		return "RingSkewed"
	default:
		return fmt.Sprintf("SelectorKind(%d)", uint8(k))
	}
}

// Queue selects the per-worker queue implementation.
type Queue uint8

const (
	// Chunked is the UTS design: a private buffer plus a
	// mutex-protected shared stack of chunks.
	Chunked Queue = iota
	// ChaseLev uses the lock-free Chase–Lev deque (internal/deque),
	// Cilk-style: thieves take single nodes from the top with a CAS.
	// The paper's §VI cites Chase & Lev for steal-contention issues;
	// this mode lets the benchmarks compare the two designs directly.
	// ChunkSize/ReleaseThreshold/StealHalf do not apply.
	ChaseLev
)

func (q Queue) String() string {
	if q == ChaseLev {
		return "ChaseLev"
	}
	return "Chunked"
}

// Config describes one parallel traversal.
type Config struct {
	Tree uts.Params
	// Workers defaults to GOMAXPROCS.
	Workers int
	// Queue selects the queue design (default Chunked).
	Queue Queue
	// ChunkSize defaults to the UTS chunk of 20 nodes (Chunked only).
	ChunkSize int
	// ReleaseThreshold is the private-buffer size above which a chunk
	// is released to the shared stack; defaults to 2*ChunkSize
	// (Chunked only).
	ReleaseThreshold int
	Selector         SelectorKind
	// StealHalf takes half the victim's chunks instead of one
	// (Chunked only).
	StealHalf bool
	Seed      uint64

	// Metrics, when non-nil, receives live counters, a wall-clock
	// work-acquisition latency histogram, and the worker×worker probe
	// matrix. Updates are lock-free atomics on the hot path; the
	// time.Now calls they require are gated behind the nil check, so an
	// uninstrumented run never reads the clock mid-loop. This package is
	// the walltime analyzer's allowlisted side: it measures real time
	// itself and feeds durations into the registry as plain numbers.
	Metrics *obs.Registry
}

// Metric names the runtime publishes into Config.Metrics. The rt_
// prefix separates real wall-clock series from the simulator's virtual
// sim_ series, so a dashboard can never conflate the two time bases.
const (
	MetricSteals       = "rt_steals_total"
	MetricFailedSteals = "rt_failed_steals_total"
	MetricChunks       = "rt_chunks_released_total"
	MetricNodes        = "rt_nodes_total"
	MetricStealWait    = "rt_steal_wait_ns"
	MetricProbes       = "rt_probe_matrix"
	MetricMigration    = "rt_migration_depth"
)

// rtMetrics pre-resolves registry handles so workers pay one atomic op
// per update instead of a map lookup under the registry mutex.
type rtMetrics struct {
	steals    *obs.Counter
	fails     *obs.Counter
	chunks    *obs.Counter
	stealWait *obs.Histogram
	migration *obs.Histogram
	probes    *obs.Matrix
}

func newRTMetrics(reg *obs.Registry, workers int) *rtMetrics {
	if reg == nil {
		return nil
	}
	return &rtMetrics{
		steals:    reg.Counter(MetricSteals),
		fails:     reg.Counter(MetricFailedSteals),
		chunks:    reg.Counter(MetricChunks),
		stealWait: reg.Histogram(MetricStealWait),
		migration: reg.Histogram(MetricMigration),
		probes:    reg.Matrix(MetricProbes, workers),
	}
}

// Result summarizes a parallel traversal.
type Result struct {
	Nodes    uint64
	Leaves   uint64
	MaxDepth int32
	Elapsed  time.Duration
	// Steals and FailedSteals count successful chunk thefts and empty
	// probes across all workers.
	Steals       uint64
	FailedSteals uint64
	// ChunksReleased counts private-to-shared transfers.
	ChunksReleased uint64
	Workers        int
}

type worker struct {
	id    int
	local []uts.Node

	mu     sync.Mutex
	shared *workstack.Stack

	// dq replaces local/shared in ChaseLev mode.
	dq *deque.Deque[uts.Node]

	rand *rng.Xoshiro256
	next int // round-robin cursor

	nodes, leaves uint64
	maxDepth      int32
	steals, fails uint64
	released      uint64

	// gen is the migration depth of the work the worker currently
	// holds — the shared-memory analogue of the simulator's work
	// lineage. Thieves read their victim's gen and store gen+1, so it
	// is atomic: both sides touch it concurrently. Only maintained when
	// metrics are on (it feeds rt_migration_depth and nothing else).
	gen atomic.Int64

	_ [4]uint64 // pad against false sharing of hot fields
}

type pool struct {
	cfg     Config
	workers []*worker
	// pending counts tree nodes resident anywhere (private buffers,
	// shared stacks, or in a thief's hands). It is updated atomically
	// with each expansion (children added, parent removed in one add),
	// so it reaches zero exactly when the traversal is complete —
	// a race-free termination criterion.
	pending atomic.Int64
	met     *rtMetrics // nil when Config.Metrics is unset
}

// Run traverses the tree in parallel and returns exact statistics.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Tree.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 1 {
		return nil, errors.New("rt: non-positive worker count")
	}
	if cfg.ChunkSize == 0 {
		cfg.ChunkSize = workstack.DefaultChunkSize
	}
	if cfg.ChunkSize < 1 {
		return nil, errors.New("rt: non-positive chunk size")
	}
	if cfg.ReleaseThreshold == 0 {
		cfg.ReleaseThreshold = 2 * cfg.ChunkSize
	}
	if cfg.ReleaseThreshold < cfg.ChunkSize {
		return nil, errors.New("rt: release threshold below chunk size")
	}

	p := &pool{cfg: cfg, workers: make([]*worker, cfg.Workers)}
	p.met = newRTMetrics(cfg.Metrics, cfg.Workers)
	for i := range p.workers {
		p.workers[i] = &worker{
			id:     i,
			shared: workstack.New(cfg.ChunkSize),
			rand:   rng.New(rng.Mix64(cfg.Seed) ^ rng.Mix64(uint64(i)+0xabcdef)),
			next:   (i + 1) % cfg.Workers,
		}
		if cfg.Queue == ChaseLev {
			p.workers[i].dq = deque.New[uts.Node](256)
		}
	}
	if cfg.Queue == ChaseLev {
		root := cfg.Tree.Root()
		p.workers[0].dq.PushBottom(&root)
	} else {
		p.workers[0].local = append(p.workers[0].local, cfg.Tree.Root())
	}
	p.pending.Store(1)

	start := time.Now()
	var wg sync.WaitGroup
	for _, w := range p.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			p.runWorker(w)
		}(w)
	}
	wg.Wait()

	res := &Result{Elapsed: time.Since(start), Workers: cfg.Workers}
	for _, w := range p.workers {
		res.Nodes += w.nodes
		res.Leaves += w.leaves
		if w.maxDepth > res.MaxDepth {
			res.MaxDepth = w.maxDepth
		}
		res.Steals += w.steals
		res.FailedSteals += w.fails
		res.ChunksReleased += w.released
	}
	if reg := cfg.Metrics; reg != nil {
		// Node totals come from the per-worker tallies at the end — one
		// atomic per expansion would tax the hottest loop for a number
		// that only settles at termination. The steal-side series are
		// fed live so a /metrics scrape mid-run shows them moving.
		reg.Counter(MetricNodes).Add(res.Nodes)
	}
	return res, nil
}

// runWorker is the worker main loop: expand local work, release
// surplus, and steal when starved.
func (p *pool) runWorker(w *worker) {
	if p.cfg.Queue == ChaseLev {
		p.runWorkerDeque(w)
		return
	}
	for {
		if len(w.local) > 0 {
			p.expand(w)
			continue
		}
		if p.reacquire(w) {
			continue
		}
		if p.stealLoop(w) {
			continue
		}
		return // global termination
	}
}

// runWorkerDeque is the Chase–Lev variant: the deque is both the local
// stack (owner end) and the steal target (thief end).
func (p *pool) runWorkerDeque(w *worker) {
	for {
		n, ok := w.dq.PopBottom()
		if !ok {
			if p.stealLoopDeque(w) {
				continue
			}
			return
		}
		w.nodes++
		if n.Height > w.maxDepth {
			w.maxDepth = n.Height
		}
		nchild := p.cfg.Tree.NumChildren(n)
		if nchild == 0 {
			w.leaves++
		}
		// Count the children BEFORE they become stealable: a thief could
		// otherwise steal and finish a child (decrementing pending)
		// while this node's +nchild is still unapplied, driving pending
		// to zero with work outstanding. (The chunked mode is safe by
		// construction: children sit in the private buffer until after
		// the add.) Overshoot in the other direction is harmless —
		// pending only needs to be an upper bound until quiescence.
		p.pending.Add(int64(nchild) - 1)
		for i := 0; i < nchild; i++ {
			child := p.cfg.Tree.Child(n, i)
			w.dq.PushBottom(&child)
		}
	}
}

// stealLoopDeque hunts single nodes from victims' deque tops.
func (p *pool) stealLoopDeque(w *worker) bool {
	if p.cfg.Workers == 1 {
		return false
	}
	var waitStart time.Time
	if p.met != nil {
		waitStart = time.Now()
	}
	for spins := 0; ; spins++ {
		if p.pending.Load() == 0 {
			return false
		}
		vi := p.selectVictim(w)
		v := p.workers[vi]
		if p.met != nil {
			p.met.probes.Inc(w.id, vi)
		}
		n, st := v.dq.Steal()
		if st == deque.OK {
			w.steals++
			if p.met != nil {
				p.met.steals.Inc()
				p.met.stealWait.Observe(int64(time.Since(waitStart)))
				d := v.gen.Load() + 1
				w.gen.Store(d)
				p.met.migration.Observe(d)
			}
			w.dq.PushBottom(n)
			return true
		}
		if st == deque.Empty {
			w.fails++
			if p.met != nil {
				p.met.fails.Inc()
			}
		}
		if spins%64 == 63 {
			runtime.Gosched()
		}
	}
}

// expand processes one node from the private buffer and releases
// surplus to the shared stack.
func (p *pool) expand(w *worker) {
	n := w.local[len(w.local)-1]
	w.local = w.local[:len(w.local)-1]
	w.nodes++
	if n.Height > w.maxDepth {
		w.maxDepth = n.Height
	}
	before := len(w.local)
	w.local = p.cfg.Tree.AppendChildren(w.local, &n)
	nchild := len(w.local) - before
	if nchild == 0 {
		w.leaves++
	}
	p.pending.Add(int64(nchild) - 1)
	if len(w.local) > p.cfg.ReleaseThreshold {
		p.release(w)
	}
}

// release moves the oldest chunk of private nodes to the shared stack.
func (p *pool) release(w *worker) {
	cs := p.cfg.ChunkSize
	w.mu.Lock()
	for _, n := range w.local[:cs] {
		w.shared.Push(n)
	}
	w.mu.Unlock()
	w.local = append(w.local[:0], w.local[cs:]...)
	w.released++
	if p.met != nil {
		p.met.chunks.Inc()
	}
}

// reacquire pulls a chunk back from the worker's own shared stack. It
// uses TakeTop, not Steal: the private-chunk rule does not apply to an
// owner reclaiming its own released work (and Steal would strand the
// final chunk forever — unreachable by owner and thieves alike).
func (p *pool) reacquire(w *worker) bool {
	w.mu.Lock()
	loot, ok := w.shared.TakeTop()
	w.mu.Unlock()
	if !ok {
		return false
	}
	w.local = append(w.local, loot...)
	return true
}

// selectVictim picks the next victim for w under the configured policy.
func (p *pool) selectVictim(w *worker) int {
	n := p.cfg.Workers
	switch p.cfg.Selector {
	case Random:
		v := w.rand.Intn(n - 1)
		if v >= w.id {
			v++
		}
		return v
	case RingSkewed:
		// Rejection-sample with weight 1/ringDistance.
		for {
			v := w.rand.Intn(n - 1)
			if v >= w.id {
				v++
			}
			d := ringDist(w.id, v, n)
			if d <= 1 || w.rand.Float64() < 1/float64(d) {
				return v
			}
		}
	default: // RoundRobin
		v := w.next
		if v == w.id {
			v = (v + 1) % n
		}
		w.next = (v + 1) % n
		return v
	}
}

func ringDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}

// stealLoop hunts for work until it finds some (true) or the pending
// counter shows the traversal is complete (false). The counter can
// never return to zero's complement: once it reaches zero no node
// exists anywhere, so no expansion can increment it again.
func (p *pool) stealLoop(w *worker) bool {
	if p.cfg.Workers == 1 {
		return false
	}
	var waitStart time.Time
	if p.met != nil {
		waitStart = time.Now()
	}
	for spins := 0; ; spins++ {
		if p.pending.Load() == 0 {
			return false
		}
		vi := p.selectVictim(w)
		v := p.workers[vi]
		if p.met != nil {
			p.met.probes.Inc(w.id, vi)
		}
		v.mu.Lock()
		var loot []uts.Node
		var k int
		if p.cfg.StealHalf {
			loot, k = v.shared.StealHalf()
		} else {
			loot, k = v.shared.StealOne()
		}
		v.mu.Unlock()
		if k > 0 {
			w.steals++
			if p.met != nil {
				p.met.steals.Inc()
				p.met.stealWait.Observe(int64(time.Since(waitStart)))
				d := v.gen.Load() + 1
				w.gen.Store(d)
				p.met.migration.Observe(d)
			}
			w.local = append(w.local, loot...)
			return true
		}
		w.fails++
		if p.met != nil {
			p.met.fails.Inc()
		}
		if spins%64 == 63 {
			runtime.Gosched()
		}
	}
}
