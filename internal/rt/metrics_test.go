package rt

import (
	"bytes"
	"testing"

	"distws/internal/obs"
	"distws/internal/uts"
)

// TestMetricsRegistry runs an instrumented traversal and checks the
// registry agrees with the Result tallies. Exercised under -race by
// make check, which is the point: counter updates are lock-free
// atomics fed concurrently by every worker.
func TestMetricsRegistry(t *testing.T) {
	for _, q := range []Queue{Chunked, ChaseLev} {
		reg := obs.NewRegistry()
		res, err := Run(Config{
			Tree:    uts.MustPreset("T3").Params,
			Workers: 4,
			Queue:   q,
			Seed:    9,
			Metrics: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := reg.Counter(MetricSteals).Value(); got != res.Steals {
			t.Fatalf("%v: steals counter %d != result %d", q, got, res.Steals)
		}
		if got := reg.Counter(MetricFailedSteals).Value(); got != res.FailedSteals {
			t.Fatalf("%v: fails counter %d != result %d", q, got, res.FailedSteals)
		}
		if got := reg.Counter(MetricChunks).Value(); got != res.ChunksReleased {
			t.Fatalf("%v: chunks counter %d != result %d", q, got, res.ChunksReleased)
		}
		if got := reg.Counter(MetricNodes).Value(); got != res.Nodes {
			t.Fatalf("%v: nodes counter %d != result %d", q, got, res.Nodes)
		}
		if res.Steals > 0 && reg.Histogram(MetricStealWait).Count() != res.Steals {
			t.Fatalf("%v: wait histogram %d observations, %d steals",
				q, reg.Histogram(MetricStealWait).Count(), res.Steals)
		}
		if res.Steals > 0 && reg.Histogram(MetricMigration).Count() != res.Steals {
			t.Fatalf("%v: migration histogram %d observations, %d steals",
				q, reg.Histogram(MetricMigration).Count(), res.Steals)
		}
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(buf.Bytes(), []byte(MetricNodes)) {
			t.Fatalf("%v: exposition missing node counter:\n%s", q, buf.String())
		}
	}
}

// TestMetricsDisabled makes sure a nil registry stays the fast path.
func TestMetricsDisabled(t *testing.T) {
	res, err := Run(Config{Tree: uts.MustPreset("T3").Params, Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes == 0 {
		t.Fatal("empty traversal")
	}
}
