// Package fault is the deterministic fault-injection subsystem.
//
// A Plan is a declarative, JSON-serializable description of every
// adversity a run must survive: fail-stop rank crashes at chosen
// virtual times, stragglers (per-rank compute and send-latency
// multipliers), per-link message drop/duplication probabilities, and
// transient latency spikes on selected links. Compile turns a plan
// into an Injector that interposes at the comm.Network boundary
// (comm.Interposer) and answers the engine's crash-schedule and
// straggler queries.
//
// Determinism contract: the subsystem touches no wall clock and no
// global randomness. Probabilistic outcomes (drop, duplicate) are
// drawn from the plan's own seeded stream (internal/rng) in the order
// messages are sent, which the simulator's event order makes a pure
// function of (plan, seed, config). The same plan over the same run
// therefore drops the same messages — byte-identical Results across
// repeats, which the chaos experiment and tests assert.
//
// Protocol exemptions, chosen so every surviving run still terminates:
//
//   - TagToken and TagTerminate are never dropped or duplicated. Token
//     loss happens only when a rank crashes while holding one, and the
//     termination ring heals that case (see internal/term); exempting
//     the detector's own traffic from link faults means no extra
//     watchdog machinery is needed for liveness.
//   - TagWork is never duplicated: a duplicate would alias the stolen
//     node slice and double-count tree work, breaking the engine's
//     completed + lost == generated accounting. Steal requests and
//     refusals may duplicate freely; the request/reply ID protocol
//     already discards stale replies.
package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"distws/internal/sim"
)

// Crash fail-stops a rank at a virtual time. The rank loses its local
// stack and every message already in its mailbox; in-flight messages
// addressed to it are lost on arrival.
type Crash struct {
	Rank int `json:"rank"`
	// At is the virtual time of death, in simulated nanoseconds.
	At sim.Time `json:"at"`
}

// Straggler slows one rank down: Compute multiplies its node-expansion
// quanta, Send multiplies the latency of every message it sends. A
// zero multiplier means "leave unchanged" (i.e. 1.0).
type Straggler struct {
	Rank    int     `json:"rank"`
	Compute float64 `json:"compute,omitempty"`
	Send    float64 `json:"send,omitempty"`
}

// LinkFault degrades the link From→To. From and/or To may be Wildcard
// to match any sender/receiver; the first matching rule in plan order
// wins. Drop and Dup are per-message probabilities in [0,1] drawn from
// the plan's stream; Spike* define a transient window during which the
// link's latency is multiplied by SpikeFactor.
type LinkFault struct {
	From int     `json:"from"`
	To   int     `json:"to"`
	Drop float64 `json:"drop,omitempty"`
	Dup  float64 `json:"dup,omitempty"`
	// SpikeStart/SpikeEnd bound the latency spike window [start, end) in
	// virtual nanoseconds; SpikeFactor multiplies the latency inside it.
	SpikeStart  sim.Time `json:"spike_start,omitempty"`
	SpikeEnd    sim.Time `json:"spike_end,omitempty"`
	SpikeFactor float64  `json:"spike_factor,omitempty"`
}

// Wildcard matches any rank in a LinkFault's From/To position.
const Wildcard = -1

// Plan is a complete, seeded fault scenario.
type Plan struct {
	// Seed seeds the plan's private random stream (drop/dup draws). It
	// is independent of the engine's work-stealing seed so the same
	// adversity can be replayed against different victim policies.
	Seed       uint64      `json:"seed"`
	Crashes    []Crash     `json:"crashes,omitempty"`
	Stragglers []Straggler `json:"stragglers,omitempty"`
	Links      []LinkFault `json:"links,omitempty"`
}

// ParsePlan decodes a JSON plan, rejecting unknown fields so a typo'd
// plan file fails loudly instead of silently injecting nothing.
func ParsePlan(data []byte) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("fault: parse plan: %w", err)
	}
	return &p, nil
}

// Validate checks the plan against a rank count. It requires at least
// one rank to survive all crashes: a run with no survivors has no one
// left to detect termination.
func (p *Plan) Validate(ranks int) error {
	if ranks < 1 {
		return fmt.Errorf("fault: plan for %d ranks", ranks)
	}
	crashed := make(map[int]bool, len(p.Crashes))
	for _, c := range p.Crashes {
		if c.Rank < 0 || c.Rank >= ranks {
			return fmt.Errorf("fault: crash rank %d out of range [0,%d)", c.Rank, ranks)
		}
		if c.At <= 0 {
			return fmt.Errorf("fault: crash of rank %d at non-positive time %d", c.Rank, c.At)
		}
		if crashed[c.Rank] {
			return fmt.Errorf("fault: rank %d crashes twice", c.Rank)
		}
		crashed[c.Rank] = true
	}
	if len(crashed) >= ranks {
		return fmt.Errorf("fault: all %d ranks crash; at least one must survive", ranks)
	}
	for _, s := range p.Stragglers {
		if s.Rank < 0 || s.Rank >= ranks {
			return fmt.Errorf("fault: straggler rank %d out of range [0,%d)", s.Rank, ranks)
		}
		if s.Compute < 0 || s.Send < 0 {
			return fmt.Errorf("fault: straggler rank %d has negative multiplier", s.Rank)
		}
	}
	for i, l := range p.Links {
		if (l.From != Wildcard && (l.From < 0 || l.From >= ranks)) ||
			(l.To != Wildcard && (l.To < 0 || l.To >= ranks)) {
			return fmt.Errorf("fault: link rule %d endpoints (%d,%d) out of range", i, l.From, l.To)
		}
		if l.Drop < 0 || l.Drop > 1 || l.Dup < 0 || l.Dup > 1 {
			return fmt.Errorf("fault: link rule %d probabilities outside [0,1]", i)
		}
		if l.SpikeFactor != 0 {
			if l.SpikeFactor < 1 {
				return fmt.Errorf("fault: link rule %d spike factor %v < 1", i, l.SpikeFactor)
			}
			if l.SpikeEnd <= l.SpikeStart {
				return fmt.Errorf("fault: link rule %d spike window [%d,%d) is empty", i, l.SpikeStart, l.SpikeEnd)
			}
		}
	}
	return nil
}

// Empty reports whether the plan injects nothing at all; an empty plan
// behaves identically to a nil one.
func (p *Plan) Empty() bool {
	return len(p.Crashes) == 0 && len(p.Stragglers) == 0 && len(p.Links) == 0
}

// Lossy reports whether the plan can destroy messages: rank crashes
// dead-letter everything addressed to them, and link rules may drop
// outright. Lossy plans need steal timeouts for liveness — a thief
// whose request or reply died would otherwise wait forever — so the
// engine arms a default StealTimeout for them.
func (p *Plan) Lossy() bool {
	if len(p.Crashes) > 0 {
		return true
	}
	for _, l := range p.Links {
		if l.Drop > 0 {
			return true
		}
	}
	return false
}

// SortedCrashes returns the plan's crashes ordered by time then rank —
// the order the engine schedules them in.
func (p *Plan) SortedCrashes() []Crash {
	cs := append([]Crash(nil), p.Crashes...)
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].At != cs[j].At {
			return cs[i].At < cs[j].At
		}
		return cs[i].Rank < cs[j].Rank
	})
	return cs
}
