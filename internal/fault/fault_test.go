package fault

import (
	"encoding/json"
	"strings"
	"testing"

	"distws/internal/comm"
	"distws/internal/sim"
	"distws/internal/topology"
)

func testPlan() *Plan {
	return &Plan{
		Seed:       42,
		Crashes:    []Crash{{Rank: 3, At: 1e6}, {Rank: 1, At: 5e5}},
		Stragglers: []Straggler{{Rank: 2, Compute: 4, Send: 2}},
		Links: []LinkFault{
			{From: Wildcard, To: 0, Drop: 0.5},
			{From: 1, To: 2, Dup: 1, SpikeStart: 100, SpikeEnd: 200, SpikeFactor: 10},
		},
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p := testPlan()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Fatalf("round trip changed the plan:\n%s\n%s", data, again)
	}
}

func TestParsePlanRejectsUnknownFields(t *testing.T) {
	_, err := ParsePlan([]byte(`{"seed":1,"crashs":[{"rank":0,"at":5}]}`))
	if err == nil || !strings.Contains(err.Error(), "crashs") {
		t.Fatalf("typo'd field accepted: %v", err)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want string // substring of the error; "" = valid
	}{
		{"valid", *testPlan(), ""},
		{"crash rank out of range", Plan{Crashes: []Crash{{Rank: 8, At: 1}}}, "out of range"},
		{"crash at time zero", Plan{Crashes: []Crash{{Rank: 0, At: 0}}}, "non-positive"},
		{"double crash", Plan{Crashes: []Crash{{Rank: 0, At: 1}, {Rank: 0, At: 2}}}, "twice"},
		{"no survivors", Plan{Crashes: []Crash{
			{Rank: 0, At: 1}, {Rank: 1, At: 1}, {Rank: 2, At: 1}, {Rank: 3, At: 1},
			{Rank: 4, At: 1}, {Rank: 5, At: 1}, {Rank: 6, At: 1}, {Rank: 7, At: 1},
		}}, "survive"},
		{"straggler out of range", Plan{Stragglers: []Straggler{{Rank: -2}}}, "out of range"},
		{"negative multiplier", Plan{Stragglers: []Straggler{{Rank: 0, Compute: -1}}}, "negative"},
		{"link endpoint out of range", Plan{Links: []LinkFault{{From: 9, To: 0}}}, "out of range"},
		{"drop above one", Plan{Links: []LinkFault{{From: 0, To: 1, Drop: 1.5}}}, "[0,1]"},
		{"spike factor below one", Plan{Links: []LinkFault{{From: 0, To: 1, SpikeFactor: 0.5}}}, "spike factor"},
		{"empty spike window", Plan{Links: []LinkFault{{From: 0, To: 1, SpikeFactor: 2}}}, "empty"},
	}
	for _, c := range cases {
		err := c.plan.Validate(8)
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestCompileNilAndEmpty(t *testing.T) {
	k := sim.NewKernel()
	for _, p := range []*Plan{nil, {}, {Seed: 7}} {
		inj, err := Compile(p, 4, k)
		if err != nil || inj != nil {
			t.Fatalf("Compile(%+v) = %v, %v; want nil, nil", p, inj, err)
		}
	}
	// The nil injector answers every query with the identity.
	var inj *Injector
	if inj.NeedsInterposer() {
		t.Fatal("nil injector wants an interposer")
	}
	if _, ok := inj.CrashTime(0); ok {
		t.Fatal("nil injector schedules a crash")
	}
	if d := inj.ScaleCompute(0, 100); d != 100 {
		t.Fatalf("nil injector scaled compute to %d", d)
	}
}

func TestSortedCrashes(t *testing.T) {
	p := testPlan()
	cs := p.SortedCrashes()
	if len(cs) != 2 || cs[0].Rank != 1 || cs[1].Rank != 3 {
		t.Fatalf("crashes not time-ordered: %+v", cs)
	}
	if p.Crashes[0].Rank != 3 {
		t.Fatal("SortedCrashes mutated the plan")
	}
}

func TestNeedsInterposer(t *testing.T) {
	k := sim.NewKernel()
	crashOnly := &Plan{Crashes: []Crash{{Rank: 1, At: 10}}}
	inj, err := Compile(crashOnly, 4, k)
	if err != nil {
		t.Fatal(err)
	}
	if inj == nil || inj.NeedsInterposer() {
		t.Fatal("crash-only plan must compile but stay off the send path")
	}
	computeOnly := &Plan{Stragglers: []Straggler{{Rank: 0, Compute: 3}}}
	inj, err = Compile(computeOnly, 4, k)
	if err != nil {
		t.Fatal(err)
	}
	if inj.NeedsInterposer() {
		t.Fatal("compute-only straggler does not touch sends")
	}
	for _, p := range []*Plan{
		{Stragglers: []Straggler{{Rank: 0, Send: 3}}},
		{Links: []LinkFault{{From: 0, To: 1, Drop: 0.1}}},
	} {
		inj, err = Compile(p, 4, k)
		if err != nil {
			t.Fatal(err)
		}
		if !inj.NeedsInterposer() {
			t.Fatalf("plan %+v must interpose", p)
		}
	}
}

func TestStragglerMultipliers(t *testing.T) {
	k := sim.NewKernel()
	inj, err := Compile(&Plan{Stragglers: []Straggler{{Rank: 2, Compute: 4, Send: 2}}}, 4, k)
	if err != nil {
		t.Fatal(err)
	}
	if d := inj.ScaleCompute(2, 100); d != 400 {
		t.Fatalf("compute multiplier: %d, want 400", d)
	}
	if d := inj.ScaleCompute(0, 100); d != 100 {
		t.Fatalf("non-straggler scaled: %d", d)
	}
	m := &comm.Message{From: 2, To: 0, Tag: comm.TagStealRequest}
	copies, delay := inj.Outcome(m, 100)
	if copies != 1 || delay != 200 {
		t.Fatalf("send multiplier: copies=%d delay=%d, want 1, 200", copies, delay)
	}
}

func TestSpikeWindow(t *testing.T) {
	k := sim.NewKernel()
	plan := &Plan{Links: []LinkFault{{From: 0, To: 1, SpikeStart: 100, SpikeEnd: 200, SpikeFactor: 10}}}
	inj, err := Compile(plan, 2, k)
	if err != nil {
		t.Fatal(err)
	}
	m := &comm.Message{From: 0, To: 1, Tag: comm.TagWork}
	if _, d := inj.Outcome(m, 7); d != 7 {
		t.Fatalf("spike applied outside its window at t=0: %d", d)
	}
	// Advance the clock into the window.
	k.After(150, func() {
		if _, d := inj.Outcome(m, 7); d != 70 {
			t.Errorf("spike not applied at t=150: %d", d)
		}
	})
	k.After(250, func() {
		if _, d := inj.Outcome(m, 7); d != 7 {
			t.Errorf("spike still applied at t=250: %d", d)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolExemptions(t *testing.T) {
	k := sim.NewKernel()
	plan := &Plan{Links: []LinkFault{{From: Wildcard, To: Wildcard, Drop: 1, Dup: 1}}}
	inj, err := Compile(plan, 2, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range []comm.Tag{comm.TagToken, comm.TagTerminate} {
		m := &comm.Message{From: 0, To: 1, Tag: tag}
		if copies, _ := inj.Outcome(m, 10); copies != 1 {
			t.Fatalf("%v affected by link faults (copies=%d)", tag, copies)
		}
	}
	// Drop=1 kills every eligible message.
	m := &comm.Message{From: 0, To: 1, Tag: comm.TagStealRequest}
	if copies, _ := inj.Outcome(m, 10); copies != 0 {
		t.Fatal("drop=1 delivered a steal request")
	}
	// Work is droppable but never duplicated.
	dupOnly := &Plan{Links: []LinkFault{{From: Wildcard, To: Wildcard, Dup: 1}}}
	inj, err = Compile(dupOnly, 2, k)
	if err != nil {
		t.Fatal(err)
	}
	if copies, _ := inj.Outcome(&comm.Message{Tag: comm.TagWork, To: 1}, 10); copies != 1 {
		t.Fatal("TagWork was duplicated")
	}
	if copies, _ := inj.Outcome(&comm.Message{Tag: comm.TagNoWork, To: 1}, 10); copies != 2 {
		t.Fatal("TagNoWork not duplicated at dup=1")
	}
}

// outcomes feeds n identical messages and returns the drop/dup decision
// sequence — the injector's observable random behavior.
func outcomes(inj *Injector, n int) []int {
	seq := make([]int, n)
	m := &comm.Message{From: 0, To: 1, Tag: comm.TagStealRequest}
	for k := range seq {
		seq[k], _ = inj.Outcome(m, 10)
	}
	return seq
}

func TestDropDrawsAreSeedDeterministic(t *testing.T) {
	k := sim.NewKernel()
	plan := &Plan{Seed: 9, Links: []LinkFault{{From: Wildcard, To: Wildcard, Drop: 0.3, Dup: 0.3}}}
	a, err := Compile(plan, 2, k)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Compile(plan, 2, k)
	sa, sb := outcomes(a, 200), outcomes(b, 200)
	for idx := range sa {
		if sa[idx] != sb[idx] {
			t.Fatalf("same plan diverged at draw %d: %d vs %d", idx, sa[idx], sb[idx])
		}
	}
	drops := 0
	for _, c := range sa {
		if c == 0 {
			drops++
		}
	}
	if drops == 0 || drops == 200 {
		t.Fatalf("drop=0.3 produced %d/200 drops", drops)
	}
	other := *plan
	other.Seed = 10
	c, _ := Compile(&other, 2, k)
	if sc := outcomes(c, 200); equalInts(sc, sa) {
		t.Fatal("different seeds produced identical outcome sequences")
	}
}

func equalInts(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestNilPlanAllocFree is the fast-path gate: a nil (or empty) plan
// compiles to no injector at all, so the engine never installs an
// interposer and the send/poll cycle keeps the pooled zero-allocation
// guarantee untouched — fault support must cost nothing when unused.
func TestNilPlanAllocFree(t *testing.T) {
	k := sim.NewKernel()
	job, err := topology.NewJob(topology.KComputer(), 4, topology.OnePerNode)
	if err != nil {
		t.Fatal(err)
	}
	for _, plan := range []*Plan{nil, {Seed: 9}} {
		inj, err := Compile(plan, 4, k)
		if err != nil {
			t.Fatal(err)
		}
		if inj != nil {
			t.Fatalf("plan %+v compiled to a live injector", plan)
		}
	}
	n := comm.New(k, job, topology.DefaultLatency())
	i := 0
	body := func() {
		for j := 0; j < 16; j++ {
			n.SendID(i&3, (i+1)&3, comm.TagStealRequest, uint64(i), 8)
			i++
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			for r := 0; r < 4; r++ {
				for _, m := range n.Poll(r) {
					n.Free(m)
				}
			}
		}
	}
	body() // reach steady-state pool capacity before measuring
	if avg := testing.AllocsPerRun(50, body); avg != 0 {
		t.Fatalf("nil-plan send/poll cycle allocates %.1f times per run", avg)
	}
}

// TestInjectorSendAllocFree is the hot-path gate for faulted runs: with
// an injector interposed on the network, the steady-state send/poll
// cycle must still allocate nothing — rule matching, spike checks and
// the rng draws are all in-place. (The nil-interposer path is gated by
// TestCommSendAllocFree in internal/comm.)
func TestInjectorSendAllocFree(t *testing.T) {
	k := sim.NewKernel()
	job, err := topology.NewJob(topology.KComputer(), 4, topology.OnePerNode)
	if err != nil {
		t.Fatal(err)
	}
	n := comm.New(k, job, topology.DefaultLatency())
	plan := &Plan{
		Seed:       3,
		Stragglers: []Straggler{{Rank: 1, Send: 2}},
		Links: []LinkFault{
			{From: 2, To: 3, Drop: 0.5, Dup: 0.5},
			{From: Wildcard, To: 2, SpikeStart: 0, SpikeEnd: 1 << 40, SpikeFactor: 2},
		},
	}
	inj, err := Compile(plan, 4, k)
	if err != nil {
		t.Fatal(err)
	}
	n.SetInterposer(inj)
	body := func() {
		n.SendID(0, 1, comm.TagStealRequest, 1, 8) // no matching rule
		n.SendID(2, 3, comm.TagNoWork, 1, 8)       // drop/dup draws
		n.SendID(1, 2, comm.TagWork, 1, 8)         // straggler + spike
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		for _, r := range []int{1, 2, 3} {
			for _, m := range n.Poll(r) {
				n.Free(m)
			}
		}
	}
	body() // warm the pools and mailboxes
	body()
	if avg := testing.AllocsPerRun(50, body); avg != 0 {
		t.Fatalf("faulted send/poll cycle allocates %.1f times per run", avg)
	}
}
