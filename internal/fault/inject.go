package fault

import (
	"distws/internal/comm"
	"distws/internal/rng"
	"distws/internal/sim"
)

// Injector is a compiled fault plan bound to one run. It implements
// comm.Interposer for the link faults and straggler send multipliers,
// and answers the engine's crash-schedule and compute-multiplier
// queries. One injector serves one run: its random stream advances as
// messages flow, so reuse across runs would change outcomes.
type Injector struct {
	kernel *sim.Kernel
	rng    *rng.Xoshiro256

	// crashAt[r] is rank r's time of death, or -1.
	crashAt []sim.Time
	// computeMul/sendMul are per-rank straggler multipliers; nil when
	// the plan has no stragglers (so the common case costs one nil
	// check, not a per-rank table walk).
	computeMul []float64
	sendMul    []float64
	// links are the compiled drop/dup/spike rules, first match wins.
	links []LinkFault

	// OnDrop, when set, observes every message the injector decides to
	// drop, before the network reclaims it. The engine uses it to
	// account lost work and resolve the termination detector's message
	// counts. It must not retain the message.
	OnDrop func(m *comm.Message)
	// OnDup observes every message the injector decides to duplicate.
	OnDup func(m *comm.Message)
}

// Compile validates plan against the rank count and binds it to the
// kernel's virtual clock. A nil or empty plan compiles to a nil
// injector: the caller keeps its fault-free fast paths.
func Compile(plan *Plan, ranks int, kernel *sim.Kernel) (*Injector, error) {
	if plan == nil || plan.Empty() {
		return nil, nil
	}
	if err := plan.Validate(ranks); err != nil {
		return nil, err
	}
	inj := &Injector{
		kernel:  kernel,
		rng:     rng.New(plan.Seed),
		crashAt: make([]sim.Time, ranks),
	}
	for r := range inj.crashAt {
		inj.crashAt[r] = -1
	}
	for _, c := range plan.Crashes {
		inj.crashAt[c.Rank] = c.At
	}
	if len(plan.Stragglers) > 0 {
		inj.computeMul = make([]float64, ranks)
		inj.sendMul = make([]float64, ranks)
		for r := 0; r < ranks; r++ {
			inj.computeMul[r], inj.sendMul[r] = 1, 1
		}
		for _, s := range plan.Stragglers {
			if s.Compute > 0 {
				inj.computeMul[s.Rank] = s.Compute
			}
			if s.Send > 0 {
				inj.sendMul[s.Rank] = s.Send
			}
		}
	}
	inj.links = append([]LinkFault(nil), plan.Links...)
	return inj, nil
}

// NeedsInterposer reports whether the injector must sit on the
// network's send path at all. Crash-only plans return false, keeping
// the messaging hot path exactly as fault-free runs have it.
func (i *Injector) NeedsInterposer() bool {
	if i == nil {
		return false
	}
	if len(i.links) > 0 {
		return true
	}
	for _, m := range i.sendMul {
		if m != 1 {
			return true
		}
	}
	return false
}

// CrashTime returns rank's scheduled time of death, if any.
func (i *Injector) CrashTime(rank int) (sim.Time, bool) {
	if i == nil || i.crashAt == nil {
		return 0, false
	}
	t := i.crashAt[rank]
	return t, t >= 0
}

// ScaleCompute applies rank's straggler compute multiplier to a
// quantum duration.
func (i *Injector) ScaleCompute(rank int, d sim.Duration) sim.Duration {
	if i == nil || i.computeMul == nil {
		return d
	}
	return scale(d, i.computeMul[rank])
}

// ruleFor returns the first link rule matching from→to, or nil.
func (i *Injector) ruleFor(from, to int) *LinkFault {
	for k := range i.links {
		l := &i.links[k]
		if (l.From == Wildcard || l.From == from) && (l.To == Wildcard || l.To == to) {
			return l
		}
	}
	return nil
}

// dropEligible reports whether the protocol tolerates losing a message
// of this tag; see the package comment for the exemption rationale.
func dropEligible(tag comm.Tag) bool {
	return tag == comm.TagStealRequest || tag == comm.TagWork || tag == comm.TagNoWork
}

// Outcome implements comm.Interposer: straggler send delay, spike
// windows, then the drop/dup draws from the plan's stream.
func (i *Injector) Outcome(m *comm.Message, delay sim.Duration) (int, sim.Duration) {
	if i.sendMul != nil {
		delay = scale(delay, i.sendMul[m.From])
	}
	r := i.ruleFor(m.From, m.To)
	if r == nil {
		return 1, delay
	}
	if r.SpikeFactor != 0 {
		if now := i.kernel.Now(); now >= r.SpikeStart && now < r.SpikeEnd {
			delay = scale(delay, r.SpikeFactor)
		}
	}
	if !dropEligible(m.Tag) {
		return 1, delay
	}
	if r.Drop > 0 && i.rng.Float64() < r.Drop {
		if i.OnDrop != nil {
			i.OnDrop(m)
		}
		return 0, delay
	}
	if r.Dup > 0 && m.Tag != comm.TagWork && i.rng.Float64() < r.Dup {
		if i.OnDup != nil {
			i.OnDup(m)
		}
		return 2, delay
	}
	return 1, delay
}

// scale multiplies a duration by a factor, keeping it at least 1ns so
// degenerate factors cannot create zero-time delivery loops.
func scale(d sim.Duration, f float64) sim.Duration {
	if f == 1 {
		return d
	}
	s := sim.Duration(float64(d) * f)
	if s < 1 {
		s = 1
	}
	return s
}
