package victim

import (
	"math"
	"testing"

	"distws/internal/topology"
)

func testJob(t testing.TB, nranks int, p topology.Placement) *topology.Job {
	t.Helper()
	job, err := topology.NewJob(topology.KComputer(), nranks, p)
	if err != nil {
		t.Fatal(err)
	}
	return job
}

func TestRoundRobinSequence(t *testing.T) {
	job := testJob(t, 8, topology.OnePerNode)
	s := NewRoundRobin(job, 0)
	// Thief 0: victims 1,2,3,...,7, then wraps skipping itself: 1,2,...
	want := []int{1, 2, 3, 4, 5, 6, 7, 1, 2}
	for i, w := range want {
		if got := s.Next(0); got != w {
			t.Fatalf("attempt %d: got %d want %d", i, got, w)
		}
	}
	// Thief 6 starts at 7, wraps over 0 and skips itself at 6.
	want6 := []int{7, 0, 1, 2, 3, 4, 5, 7}
	for i, w := range want6 {
		if got := s.Next(6); got != w {
			t.Fatalf("thief 6 attempt %d: got %d want %d", i, got, w)
		}
	}
}

func TestRoundRobinStatePersistsAcrossObserve(t *testing.T) {
	// Paper: "a successful steal does not impact this choice: the next
	// search for work will start at the neighbor of the last victim."
	job := testJob(t, 4, topology.OnePerNode)
	s := NewRoundRobin(job, 0)
	first := s.Next(0) // 1
	s.Observe(0, first, true)
	if got := s.Next(0); got != 2 {
		t.Fatalf("after successful steal of 1, next = %d, want 2", got)
	}
}

func TestUniformRandomCoverageAndExclusion(t *testing.T) {
	job := testJob(t, 16, topology.OnePerNode)
	s := NewUniformRandom(job, 7)
	counts := make([]int, 16)
	const draws = 32000
	for i := 0; i < draws; i++ {
		v := s.Next(3)
		if v == 3 {
			t.Fatal("uniform selector returned the thief")
		}
		counts[v]++
	}
	for j, c := range counts {
		if j == 3 {
			continue
		}
		got := float64(c) / draws
		if math.Abs(got-1.0/15) > 0.01 {
			t.Fatalf("rank %d frequency %v, want ~%v", j, got, 1.0/15)
		}
	}
}

func TestSelectorDeterminism(t *testing.T) {
	job := testJob(t, 64, topology.OnePerNode)
	for name, factory := range Strategies {
		a := factory(job, 99)
		b := factory(job, 99)
		for i := 0; i < 500; i++ {
			thief := i % 64
			va, vb := a.Next(thief), b.Next(thief)
			if va != vb {
				t.Fatalf("%s: same-seed selectors diverged at draw %d", name, i)
			}
			a.Observe(thief, va, i%5 == 0)
			b.Observe(thief, vb, i%5 == 0)
		}
	}
}

func TestSelectorsNeverReturnThief(t *testing.T) {
	job := testJob(t, 32, topology.EightGrouped)
	for name, factory := range Strategies {
		s := factory(job, 3)
		for i := 0; i < 2000; i++ {
			thief := i % 32
			v := s.Next(thief)
			if v == thief {
				t.Fatalf("%s returned the thief itself", name)
			}
			if v < 0 || v >= 32 {
				t.Fatalf("%s returned out-of-range rank %d", name, v)
			}
			s.Observe(thief, v, i%7 == 0)
		}
	}
}

func TestDistanceSkewedPDF(t *testing.T) {
	job := testJob(t, 256, topology.OnePerNode)
	s := NewDistanceSkewed(job, 1).(*distanceSkewed)
	pdf := s.PDF(0)
	if len(pdf) != 256 {
		t.Fatalf("pdf length %d", len(pdf))
	}
	if pdf[0] != 0 {
		t.Fatal("thief has non-zero selection probability")
	}
	sum := 0.0
	for _, p := range pdf {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("pdf sums to %v", sum)
	}
	// Closer ranks must be more probable: compare the nearest other
	// rank with the farthest.
	near, far := -1, -1
	nd, fd := math.Inf(1), 0.0
	for j := 1; j < 256; j++ {
		d := job.Distance(0, j)
		if d < nd {
			nd, near = d, j
		}
		if d > fd {
			fd, far = d, j
		}
	}
	if pdf[near] <= pdf[far] {
		t.Fatalf("near rank %d (d=%v) p=%v not more probable than far rank %d (d=%v) p=%v",
			near, nd, pdf[near], far, fd, pdf[far])
	}
	// And the ratio must follow the weights: p ~ 1/d.
	wantRatio := fd / nd
	gotRatio := pdf[near] / pdf[far]
	if math.Abs(gotRatio-wantRatio)/wantRatio > 1e-9 {
		t.Fatalf("probability ratio %v, want %v", gotRatio, wantRatio)
	}
}

func TestDistanceSkewedSameNodeWeight(t *testing.T) {
	// Under 8G, ranks 0..7 share a node: distance 0, weight 1 — the
	// highest possible. They must dominate the PDF.
	job := testJob(t, 64, topology.EightGrouped)
	s := NewDistanceSkewed(job, 1).(*distanceSkewed)
	w := s.Weights(0)
	for j := 1; j < 8; j++ {
		if w[j] != 1 {
			t.Fatalf("same-node weight w[0][%d] = %v, want 1", j, w[j])
		}
	}
	for j := 8; j < 64; j++ {
		d := job.Distance(0, j)
		if d <= 0 {
			t.Fatalf("cross-node pair (0,%d) at distance %v", j, d)
		}
		if want := 1 / d; math.Abs(w[j]-want) > 1e-12 {
			t.Fatalf("cross-node weight w[0][%d] = %v, want 1/d = %v", j, w[j], want)
		}
	}
}

func TestDistanceSkewedEmpiricalMatchesPDF(t *testing.T) {
	job := testJob(t, 128, topology.OnePerNode)
	s := NewDistanceSkewed(job, 5).(*distanceSkewed)
	pdf := s.PDF(0)
	const draws = 200000
	counts := make([]int, 128)
	for i := 0; i < draws; i++ {
		counts[s.Next(0)]++
	}
	for j := 1; j < 128; j++ {
		got := float64(counts[j]) / draws
		if math.Abs(got-pdf[j]) > 0.008 {
			t.Fatalf("rank %d frequency %v vs pdf %v", j, got, pdf[j])
		}
	}
}

func TestDistanceSkewedRejectionMatchesAlias(t *testing.T) {
	// Above aliasThreshold the selector switches to rejection sampling;
	// both must realize the same distribution. Compare empirical
	// frequencies of the rejection path against the exact PDF on a job
	// large enough to trigger it.
	job := testJob(t, 4096, topology.OnePerNode)
	s := NewDistanceSkewed(job, 11).(*distanceSkewed)
	if s.useAlias {
		t.Fatal("test setup: expected rejection mode at 4096 ranks")
	}
	pdf := s.PDF(0)
	const draws = 300000
	counts := make([]int, 4096)
	for i := 0; i < draws; i++ {
		counts[s.Next(0)]++
	}
	// Aggregate into 16 distance-ordered bins to get stable statistics.
	type rankP struct {
		j int
		p float64
	}
	var byP []rankP
	for j := 1; j < 4096; j++ {
		byP = append(byP, rankP{j, pdf[j]})
	}
	const bins = 16
	per := len(byP) / bins
	for b := 0; b < bins; b++ {
		var wantP, gotP float64
		for i := b * per; i < (b+1)*per; i++ {
			wantP += byP[i].p
			gotP += float64(counts[byP[i].j]) / draws
		}
		if math.Abs(gotP-wantP) > 0.01 {
			t.Fatalf("bin %d: empirical %v vs pdf %v", b, gotP, wantP)
		}
	}
}

func TestDistanceSkewedExpZeroIsUniform(t *testing.T) {
	job := testJob(t, 64, topology.OnePerNode)
	s := NewDistanceSkewedExp(job, 1, 0).(*distanceSkewed)
	pdf := s.PDF(5)
	for j := 0; j < 64; j++ {
		if j == 5 {
			continue
		}
		if math.Abs(pdf[j]-1.0/63) > 1e-9 {
			t.Fatalf("k=0 pdf[%d] = %v, want uniform %v", j, pdf[j], 1.0/63)
		}
	}
	if s.Name() != "Tofu^0" {
		t.Fatalf("Name = %q", s.Name())
	}
}

func TestLastVictimRetriesOnSuccess(t *testing.T) {
	job := testJob(t, 16, topology.OnePerNode)
	s := NewLastVictim(job, 5)
	v := s.Next(2)
	s.Observe(2, v, true)
	if got := s.Next(2); got != v {
		t.Fatalf("after success on %d, next = %d", v, got)
	}
	// After a failure on the retried victim, fall back to random.
	s.Observe(2, v, false)
	seenOther := false
	for i := 0; i < 50; i++ {
		if s.Next(2) != v {
			seenOther = true
			break
		}
	}
	if !seenOther {
		t.Fatal("LastVictim stuck on failed victim")
	}
}

func TestHierarchicalPrefersClose(t *testing.T) {
	job := testJob(t, 64, topology.EightGrouped)
	s := NewHierarchical(job, 9)
	// First attempts of a search must stay on the thief's node
	// (ranks 8..15 for thief 8).
	for trial := 0; trial < 20; trial++ {
		s.Observe(8, 0, true) // reset escalation
		v := s.Next(8)
		if v < 8 || v > 15 {
			t.Fatalf("first attempt went off-node to %d", v)
		}
	}
	// Without successes the search must eventually escalate off-node.
	s.Observe(8, 0, true)
	offNode := false
	for i := 0; i < 20; i++ {
		if v := s.Next(8); v < 8 || v > 15 {
			offNode = true
			break
		}
	}
	if !offNode {
		t.Fatal("hierarchical selector never escalated")
	}
}

func TestLifelineCyclesLinks(t *testing.T) {
	job := testJob(t, 16, topology.OnePerNode)
	s := NewLifeline(job, 3).(*lifeline)
	// Exhaust the random attempts.
	for i := 0; i < randomAttemptsBeforeLifeline; i++ {
		s.Next(0)
	}
	// Then the thief cycles deterministically through hypercube links
	// 1, 2, 4, 8.
	want := []int{1, 2, 4, 8, 1, 2}
	for i, w := range want {
		if got := s.Next(0); got != w {
			t.Fatalf("lifeline attempt %d: got %d want %d", i, got, w)
		}
	}
	// Success resets to random phase.
	s.Observe(0, 1, true)
	if s.attempts[0] != 0 {
		t.Fatal("success did not reset lifeline attempts")
	}
}

func TestStrategyRegistry(t *testing.T) {
	names := StrategyNames()
	if len(names) != 6 {
		t.Fatalf("expected 6 strategies, got %v", names)
	}
	job := testJob(t, 8, topology.OnePerNode)
	for _, n := range names {
		s := Strategies[n](job, 1)
		if s == nil {
			t.Fatalf("factory %q returned nil", n)
		}
		if s.Name() == "" {
			t.Fatalf("strategy %q has empty name", n)
		}
	}
}

func TestTwoRankJob(t *testing.T) {
	// Degenerate case: with 2 ranks every selector must return the
	// other rank.
	job := testJob(t, 2, topology.OnePerNode)
	for name, factory := range Strategies {
		s := factory(job, 1)
		for i := 0; i < 20; i++ {
			if v := s.Next(0); v != 1 {
				t.Fatalf("%s: Next(0) = %d with 2 ranks", name, v)
			}
			if v := s.Next(1); v != 0 {
				t.Fatalf("%s: Next(1) = %d with 2 ranks", name, v)
			}
		}
	}
}

func BenchmarkRoundRobinNext(b *testing.B) {
	job := testJob(b, 1024, topology.OnePerNode)
	s := NewRoundRobin(job, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next(i % 1024)
	}
}

func BenchmarkTofuAliasNext(b *testing.B) {
	job := testJob(b, 1024, topology.OnePerNode)
	s := NewDistanceSkewed(job, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next(i % 1024)
	}
}

func BenchmarkTofuRejectionNext(b *testing.B) {
	job := testJob(b, 8192, topology.OnePerNode)
	s := NewDistanceSkewed(job, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next(i % 8192)
	}
}
