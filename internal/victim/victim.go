// Package victim implements the victim-selection strategies the paper
// studies, plus extensions used as ablation baselines.
//
// The paper's three strategies:
//
//   - RoundRobin — the reference UTS scheme: deterministic, rank i
//     first targets i+1 mod N and walks the ring; the walk position
//     persists across steals (§II-A).
//   - UniformRandom — the textbook scheme backing the theoretical
//     analyses of work stealing (§IV-A, "Rand").
//   - DistanceSkewed — the paper's contribution (§IV-B, "Tofu"):
//     victim j is drawn with probability proportional to
//     1/euclidean_distance(i, j) in the machine's 6-D coordinate space
//     (weight 1 when the distance is 0, i.e. same node).
//
// Extensions (not in the paper, used by the ablation benches):
// LastVictim, Hierarchical and Lifeline — see their constructors.
//
// Selectors are stateful per job: they hold per-rank walk positions,
// PRNG streams and sampling tables. They are not safe for concurrent
// use; the discrete-event simulator is single-threaded per run.
package victim

import (
	"fmt"
	"math"
	"sort"

	"distws/internal/rng"
	"distws/internal/sample"
	"distws/internal/topology"
)

// Selector chooses steal victims for thieves.
type Selector interface {
	// Name identifies the strategy in reports.
	Name() string
	// Next returns the rank the thief should try to steal from next.
	// The result is always a valid rank different from thief (for jobs
	// with at least two ranks).
	Next(thief int) int
	// Observe reports the outcome of a steal attempt so stateful
	// strategies can adapt. Implementations may ignore it.
	Observe(thief, victim int, success bool)
}

// Factory builds a selector for a placed job. The seed must make the
// selector's random choices reproducible.
type Factory func(job *topology.Job, seed uint64) Selector

// ---------------------------------------------------------------------
// RoundRobin

type roundRobin struct {
	n    int
	next []int
}

// NewRoundRobin returns the reference UTS deterministic selector:
// thief i's first victim is (i+1) mod N, and each subsequent request
// (regardless of outcome) targets the following rank, skipping the
// thief itself.
func NewRoundRobin(job *topology.Job, _ uint64) Selector {
	n := job.Ranks()
	rr := &roundRobin{n: n, next: make([]int, n)}
	for i := range rr.next {
		rr.next[i] = (i + 1) % n
	}
	return rr
}

func (r *roundRobin) Name() string { return "RoundRobin" }

func (r *roundRobin) Next(thief int) int {
	v := r.next[thief]
	if v == thief {
		v = (v + 1) % r.n
	}
	r.next[thief] = (v + 1) % r.n
	return v
}

func (r *roundRobin) Observe(int, int, bool) {}

// ---------------------------------------------------------------------
// UniformRandom

type uniformRandom struct {
	n    int
	rand []*rng.Xoshiro256
}

// NewUniformRandom returns the classical selector: each attempt draws a
// victim uniformly from the other ranks.
func NewUniformRandom(job *topology.Job, seed uint64) Selector {
	n := job.Ranks()
	u := &uniformRandom{n: n, rand: perRankStreams(n, seed)}
	return u
}

func perRankStreams(n int, seed uint64) []*rng.Xoshiro256 {
	streams := make([]*rng.Xoshiro256, n)
	for i := range streams {
		streams[i] = rng.New(rng.Mix64(seed) ^ rng.Mix64(uint64(i)+0x51ed270693c5e191))
	}
	return streams
}

func (u *uniformRandom) Name() string { return "Rand" }

func (u *uniformRandom) Next(thief int) int {
	if u.n < 2 {
		return thief
	}
	v := u.rand[thief].Intn(u.n - 1)
	if v >= thief {
		v++
	}
	return v
}

func (u *uniformRandom) Observe(int, int, bool) {}

// ---------------------------------------------------------------------
// DistanceSkewed ("Tofu")

// aliasThreshold is the rank count up to which per-thief alias tables
// are built (lazily). Above it the selector uses exact rejection
// sampling instead: with N ranks each table costs O(N) memory per
// thief, which at 8192 simulated ranks in one address space would need
// gigabytes, whereas the real distributed implementation pays O(N) per
// process. Both methods sample the same distribution.
const aliasThreshold = 2048

type distanceSkewed struct {
	job      *topology.Job
	n        int
	exponent float64
	rand     []*rng.Xoshiro256
	tables   []*sample.Discrete // lazily built, nil above aliasThreshold
	useAlias bool
}

// NewDistanceSkewed returns the paper's latency-aware selector with the
// paper's weight w(i,j) = 1/e(i,j) (and 1 when e = 0).
func NewDistanceSkewed(job *topology.Job, seed uint64) Selector {
	return NewDistanceSkewedExp(job, seed, 1)
}

// NewDistanceSkewedExp generalizes the weight to 1/e(i,j)^k. k = 0
// degenerates to uniform random selection (used by ablation A5);
// larger k concentrates steals more locally.
func NewDistanceSkewedExp(job *topology.Job, seed uint64, k float64) Selector {
	n := job.Ranks()
	return &distanceSkewed{
		job:      job,
		n:        n,
		exponent: k,
		rand:     perRankStreams(n, seed),
		tables:   make([]*sample.Discrete, n),
		useAlias: n <= aliasThreshold,
	}
}

func (d *distanceSkewed) Name() string {
	if d.exponent == 1 {
		return "Tofu"
	}
	return fmt.Sprintf("Tofu^%g", d.exponent)
}

// weight returns w(thief, j) per the paper: 1/e^k, or 1 at distance 0.
func (d *distanceSkewed) weight(thief, j int) float64 {
	e := d.job.Distance(thief, j)
	if e == 0 {
		return 1
	}
	return 1 / math.Pow(e, d.exponent)
}

// Weights returns the unnormalized weight vector for a thief, with
// weight 0 at the thief's own index. Used for Figure 8 and by tests.
func (d *distanceSkewed) Weights(thief int) []float64 {
	w := make([]float64, d.n)
	for j := range w {
		if j != thief {
			w[j] = d.weight(thief, j)
		}
	}
	return w
}

// PDF returns the normalized selection probabilities p(thief, ·) —
// exactly the p(i,j) of paper §IV-B.
func (d *distanceSkewed) PDF(thief int) []float64 {
	w := d.Weights(thief)
	var sum float64
	for _, v := range w {
		sum += v
	}
	for j := range w {
		w[j] /= sum
	}
	return w
}

func (d *distanceSkewed) Next(thief int) int {
	if d.n < 2 {
		return thief
	}
	if d.useAlias {
		t := d.tables[thief]
		if t == nil {
			t = sample.MustNewDiscrete(d.Weights(thief))
			d.tables[thief] = t
		}
		return t.Sample(d.rand[thief])
	}
	// Rejection sampling. All weights are in (0, 1]: distinct nodes are
	// at distance >= 1 so 1/e^k <= 1 for k >= 0, and same-node pairs
	// have weight exactly 1. Expected iterations = 1/mean(weight).
	r := d.rand[thief]
	for {
		v := r.Intn(d.n - 1)
		if v >= thief {
			v++
		}
		if r.Float64() < d.weight(thief, v) {
			return v
		}
	}
}

func (d *distanceSkewed) Observe(int, int, bool) {}

// ---------------------------------------------------------------------
// LastVictim (extension)

type lastVictim struct {
	uniform Selector
	last    []int
	retry   []bool
}

// NewLastVictim returns a selector that first retries the last victim
// that yielded work (a classical locality heuristic) and falls back to
// uniform random selection otherwise.
func NewLastVictim(job *topology.Job, seed uint64) Selector {
	n := job.Ranks()
	lv := &lastVictim{
		uniform: NewUniformRandom(job, seed),
		last:    make([]int, n),
		retry:   make([]bool, n),
	}
	for i := range lv.last {
		lv.last[i] = -1
	}
	return lv
}

func (l *lastVictim) Name() string { return "LastVictim" }

func (l *lastVictim) Next(thief int) int {
	if l.retry[thief] && l.last[thief] >= 0 {
		l.retry[thief] = false
		return l.last[thief]
	}
	return l.uniform.Next(thief)
}

func (l *lastVictim) Observe(thief, victim int, success bool) {
	if success {
		l.last[thief] = victim
		l.retry[thief] = true
	}
}

// ---------------------------------------------------------------------
// Hierarchical (extension)

type hierarchical struct {
	job  *topology.Job
	n    int
	rand []*rng.Xoshiro256
	// tiers[thief] lists the other ranks sorted by hierarchy level:
	// same node, same blade, same cube, same rack, rest. Built lazily.
	tiers    [][]int
	tierEnds [][5]int
	// cursor counts attempts in the current search to escalate levels.
	attempts []int
}

// NewHierarchical returns a two-level-style selector in the spirit of
// Min et al. and Quintin & Wagner (paper §VI): it retries close ranks
// (same node, blade, cube, rack) a few times before escalating to a
// uniform draw over everything. Unlike DistanceSkewed it uses fixed
// hierarchy levels rather than continuous distances.
func NewHierarchical(job *topology.Job, seed uint64) Selector {
	n := job.Ranks()
	return &hierarchical{
		job:      job,
		n:        n,
		rand:     perRankStreams(n, seed),
		tiers:    make([][]int, n),
		tierEnds: make([][5]int, n),
		attempts: make([]int, n),
	}
}

func (h *hierarchical) Name() string { return "Hierarchical" }

func (h *hierarchical) build(thief int) {
	level := func(j int) int {
		p, q := h.job.Coord(thief), h.job.Coord(j)
		switch {
		case p == q:
			return 0
		case topology.SameBlade(p, q):
			return 1
		case topology.SameCube(p, q):
			return 2
		case topology.SameRack(p, q):
			return 3
		default:
			return 4
		}
	}
	others := make([]int, 0, h.n-1)
	for j := 0; j < h.n; j++ {
		if j != thief {
			others = append(others, j)
		}
	}
	sort.SliceStable(others, func(a, b int) bool { return level(others[a]) < level(others[b]) })
	var ends [5]int
	for idx, j := range others {
		l := level(j)
		for k := l; k < 5; k++ {
			ends[k] = idx + 1
		}
	}
	// ends[k] = count of ranks at level <= k.
	h.tiers[thief] = others
	h.tierEnds[thief] = ends
}

// attemptsPerLevel is how many draws a thief makes within one hierarchy
// level before widening the candidate set.
const attemptsPerLevel = 2

func (h *hierarchical) Next(thief int) int {
	if h.n < 2 {
		return thief
	}
	if h.tiers[thief] == nil {
		h.build(thief)
	}
	lvl := h.attempts[thief] / attemptsPerLevel
	if lvl > 4 {
		lvl = 4
	}
	h.attempts[thief]++
	// Find the narrowest non-empty candidate set at or above lvl.
	end := 0
	for l := lvl; l < 5; l++ {
		if e := h.tierEnds[thief][l]; e > 0 {
			end = e
			break
		}
	}
	if end == 0 {
		end = len(h.tiers[thief])
	}
	return h.tiers[thief][h.rand[thief].Intn(end)]
}

func (h *hierarchical) Observe(thief, _ int, success bool) {
	if success {
		h.attempts[thief] = 0
	}
}

// ---------------------------------------------------------------------
// Lifeline (extension)

type lifeline struct {
	job   *topology.Job
	n     int
	rand  []*rng.Xoshiro256
	links [][]int
	// pos cycles through lifeline links after random attempts fail.
	attempts []int
}

// randomAttemptsBeforeLifeline mirrors the threshold w of
// lifeline-based global load balancing (Saraswat et al., paper §VI):
// after this many random attempts the thief turns to its lifelines.
const randomAttemptsBeforeLifeline = 3

// NewLifeline returns a simplified lifeline selector: each rank has
// log2(N) hypercube neighbors as lifelines; a thief tries uniform
// random victims first and then cycles deterministically through its
// lifelines. (The full lifeline scheme makes idle workers passive; a
// pull-only simplification keeps the Selector interface uniform. The
// point of including it is a steal-*pattern* baseline, not a faithful
// X10 GLB port.)
func NewLifeline(job *topology.Job, seed uint64) Selector {
	n := job.Ranks()
	l := &lifeline{
		job:      job,
		n:        n,
		rand:     perRankStreams(n, seed),
		links:    make([][]int, n),
		attempts: make([]int, n),
	}
	for i := 0; i < n; i++ {
		for bit := 1; bit < n; bit <<= 1 {
			if peer := i ^ bit; peer < n && peer != i {
				l.links[i] = append(l.links[i], peer)
			}
		}
		if len(l.links[i]) == 0 { // n == 1
			l.links[i] = []int{i}
		}
	}
	return l
}

func (l *lifeline) Name() string { return "Lifeline" }

func (l *lifeline) Next(thief int) int {
	if l.n < 2 {
		return thief
	}
	a := l.attempts[thief]
	l.attempts[thief]++
	if a < randomAttemptsBeforeLifeline {
		v := l.rand[thief].Intn(l.n - 1)
		if v >= thief {
			v++
		}
		return v
	}
	links := l.links[thief]
	return links[(a-randomAttemptsBeforeLifeline)%len(links)]
}

func (l *lifeline) Observe(thief, _ int, success bool) {
	if success {
		l.attempts[thief] = 0
	}
}

// ---------------------------------------------------------------------
// Registry

// Strategies lists the built-in selector factories by report name.
var Strategies = map[string]Factory{
	"RoundRobin":   NewRoundRobin,
	"Rand":         NewUniformRandom,
	"Tofu":         NewDistanceSkewed,
	"LastVictim":   NewLastVictim,
	"Hierarchical": NewHierarchical,
	"Lifeline":     NewLifeline,
}

// StrategyNames returns the registered names, sorted.
func StrategyNames() []string {
	names := make([]string, 0, len(Strategies))
	for n := range Strategies {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
