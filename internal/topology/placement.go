package topology

import "fmt"

// Placement names one of the paper's three rank-to-node mappings
// (paper §II-B, Figure 2).
type Placement int

const (
	// OnePerNode ("1/N") places one rank per compute node: rank i runs
	// on allocated node i.
	OnePerNode Placement = iota
	// EightRoundRobin ("8RR") places 8 ranks per node with round-robin
	// numbering: ranks i, i+nnodes, i+2*nnodes, ... share node i, so
	// consecutive ranks land on different nodes.
	EightRoundRobin
	// EightGrouped ("8G") packs consecutive ranks: ranks 8k..8k+7 share
	// node k.
	EightGrouped
)

func (p Placement) String() string {
	switch p {
	case OnePerNode:
		return "1/N"
	case EightRoundRobin:
		return "8RR"
	case EightGrouped:
		return "8G"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// RanksPerNode returns how many ranks share a compute node under p.
func (p Placement) RanksPerNode() int {
	if p == OnePerNode {
		return 1
	}
	return CoresPerNode
}

// Job is a set of ranks placed on an allocation. It provides the
// coordinate, core and distance queries the work-stealing runtime and
// victim selectors need.
type Job struct {
	Alloc     *Allocation
	Placement Placement
	// coord[i] is the node coordinate of rank i; core[i] its core index.
	coord []Coord
	core  []int
}

// NewJob allocates nodes on machine m for nranks ranks under the given
// placement policy and returns the placed job. The number of compute
// nodes used is nranks for OnePerNode and nranks/8 otherwise (nranks
// must then be a multiple of 8).
func NewJob(m Machine, nranks int, p Placement) (*Job, error) {
	if nranks <= 0 {
		return nil, fmt.Errorf("topology: non-positive rank count %d", nranks)
	}
	rpn := p.RanksPerNode()
	if nranks%rpn != 0 {
		return nil, fmt.Errorf("topology: %d ranks not divisible by %d ranks/node (%v)", nranks, rpn, p)
	}
	nnodes := nranks / rpn
	alloc, err := Allocate(m, nnodes)
	if err != nil {
		return nil, err
	}
	return PlaceJob(alloc, nranks, p)
}

// PlaceJob places nranks ranks on an existing allocation.
func PlaceJob(alloc *Allocation, nranks int, p Placement) (*Job, error) {
	rpn := p.RanksPerNode()
	if nranks%rpn != 0 {
		return nil, fmt.Errorf("topology: %d ranks not divisible by %d ranks/node (%v)", nranks, rpn, p)
	}
	nnodes := nranks / rpn
	if nnodes > alloc.Nodes() {
		return nil, fmt.Errorf("%w: placement needs %d nodes, allocation has %d", ErrTooLarge, nnodes, alloc.Nodes())
	}
	j := &Job{
		Alloc:     alloc,
		Placement: p,
		coord:     make([]Coord, nranks),
		core:      make([]int, nranks),
	}
	for rank := 0; rank < nranks; rank++ {
		var node, core int
		switch p {
		case OnePerNode:
			node, core = rank, 0
		case EightRoundRobin:
			node, core = rank%nnodes, rank/nnodes
		case EightGrouped:
			node, core = rank/CoresPerNode, rank%CoresPerNode
		default:
			return nil, fmt.Errorf("topology: unknown placement %v", p)
		}
		j.coord[rank] = alloc.NodeList[node]
		j.core[rank] = core
	}
	return j, nil
}

// Ranks returns the number of ranks in the job.
func (j *Job) Ranks() int { return len(j.coord) }

// Coord returns the node coordinate of a rank.
func (j *Job) Coord(rank int) Coord { return j.coord[rank] }

// Core returns the core index a rank occupies on its node.
func (j *Job) Core(rank int) int { return j.core[rank] }

// SameNode reports whether two ranks share a compute node.
func (j *Job) SameNode(i, k int) bool { return j.coord[i] == j.coord[k] }

// Distance returns the Euclidean 6-D distance between the nodes hosting
// ranks i and k — the e(i,j) of the paper's skewed selection. Ranks on
// the same node are at distance 0.
func (j *Job) Distance(i, k int) float64 {
	return Euclid(j.coord[i], j.coord[k])
}

// Hops returns the link count between the nodes hosting ranks i and k.
func (j *Job) Hops(i, k int) int {
	return j.Alloc.Machine.Hops(j.coord[i], j.coord[k])
}

// MaxHops returns the largest hop count between any rank pair, computed
// over the allocation's bounding box (cheap: the maximum is realized at
// box corners under Manhattan/torus metrics).
func (j *Job) MaxHops() int {
	a := j.Alloc
	m := a.Machine
	corner1 := Coord{0, 0, 0, 0, 0, 0}
	corner2 := Coord{a.DX - 1, a.DY - 1, a.DZ - 1, SizeA - 1, SizeB - 1, SizeC - 1}
	return m.Hops(corner1, corner2)
}
