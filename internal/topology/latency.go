package topology

import (
	"fmt"

	"distws/internal/rng"
	"distws/internal/sim"
)

// LatencyModel computes the virtual one-way message latency between two
// ranks of a job for a payload of the given size.
type LatencyModel interface {
	// Latency returns the delay between rank i sending a message of
	// size bytes and rank k being able to observe it.
	Latency(j *Job, i, k int, bytes int) sim.Duration
}

// HierarchicalLatency models the Tofu network levels the paper
// describes: shared-memory transfer inside a node, the dedicated blade
// transport, intra-cube links, and per-hop torus link cost beyond,
// plus a bandwidth term. Absolute values are synthetic (we are not on
// the K Computer); what the reproduction depends on is their ordering
// and spread, which follows the paper's description that "latencies
// between nodes in the same blade are lower than inside the cube or
// across racks".
type HierarchicalLatency struct {
	// Software is the fixed send+receive overhead applied to every
	// message, regardless of distance (MPI stack traversal).
	Software sim.Duration
	// SameNode is the extra cost of a transfer between two ranks on the
	// same compute node (shared memory copy).
	SameNode sim.Duration
	// SameBlade is the extra cost over the dedicated blade transport.
	SameBlade sim.Duration
	// SameCube is the extra cost between blades of one cube.
	SameCube sim.Duration
	// PerHop is the added cost per torus link crossed for nodes in
	// different cubes.
	PerHop sim.Duration
	// BytesPerSecond is the link bandwidth used for the payload term.
	// Zero disables the bandwidth term.
	BytesPerSecond float64
}

// DefaultLatency returns the calibration used throughout the
// experiments. The constants are loosely modeled on measured Tofu MPI
// latencies (a few microseconds short-range; tens of microseconds at
// 10+ hops once software overhead and contention are included) and on
// the paper's observation that allocations of 8192 nodes span more than
// 80 racks with >10-hop routes.
func DefaultLatency() *HierarchicalLatency {
	return &HierarchicalLatency{
		Software:       2 * sim.Microsecond,
		SameNode:       400 * sim.Nanosecond,
		SameBlade:      1200 * sim.Nanosecond,
		SameCube:       2 * sim.Microsecond,
		PerHop:         800 * sim.Nanosecond,
		BytesPerSecond: 5e9, // 5 GB/s Tofu link
	}
}

// Latency implements LatencyModel.
func (h *HierarchicalLatency) Latency(j *Job, i, k int, bytes int) sim.Duration {
	d := h.Software
	p, q := j.Coord(i), j.Coord(k)
	switch {
	case p == q:
		d += h.SameNode
	case SameBlade(p, q):
		d += h.SameBlade
	case SameCube(p, q):
		d += h.SameCube
	default:
		d += h.SameCube + sim.Duration(j.Alloc.Machine.Hops(p, q))*h.PerHop
	}
	if h.BytesPerSecond > 0 && bytes > 0 {
		d += sim.Duration(float64(bytes) / h.BytesPerSecond * 1e9)
	}
	return d
}

// JitterLatency wraps another model and perturbs every latency by a
// multiplicative pseudo-random factor in [1-Frac, 1+Frac]. Real
// networks see contention and OS noise; this model checks that the
// reproduction's conclusions do not depend on perfectly clean
// latencies (ablation A9). The jitter stream is seeded, and the
// simulator's call order is deterministic, so runs remain reproducible.
type JitterLatency struct {
	Base LatencyModel
	// Frac is the maximum relative deviation (0.2 = ±20%).
	Frac float64
	rand *rng.Xoshiro256
}

// NewJitterLatency wraps base with ±frac deterministic jitter.
func NewJitterLatency(base LatencyModel, frac float64, seed uint64) *JitterLatency {
	if frac < 0 || frac >= 1 {
		panic(fmt.Sprintf("topology: jitter fraction %v outside [0, 1)", frac))
	}
	return &JitterLatency{Base: base, Frac: frac, rand: rng.New(seed)}
}

// Latency implements LatencyModel.
func (j *JitterLatency) Latency(job *Job, i, k int, bytes int) sim.Duration {
	d := j.Base.Latency(job, i, k, bytes)
	f := 1 + j.Frac*(2*j.rand.Float64()-1)
	out := sim.Duration(float64(d) * f)
	if out < 1 {
		out = 1
	}
	return out
}

// UniformLatency is a flat model: every message takes the same time
// regardless of placement. It represents the "all processes are
// equidistant" assumption the paper calls out as unrealistic, and is
// used as an ablation baseline (under it, uniform random selection and
// distance-skewed selection must perform identically).
type UniformLatency struct {
	Fixed          sim.Duration
	BytesPerSecond float64
}

// Latency implements LatencyModel.
func (u *UniformLatency) Latency(_ *Job, _, _ int, bytes int) sim.Duration {
	d := u.Fixed
	if u.BytesPerSecond > 0 && bytes > 0 {
		d += sim.Duration(float64(bytes) / u.BytesPerSecond * 1e9)
	}
	return d
}

// LatencyTableRankLimit bounds the dense rank-pair distance table the
// latency cache builds: jobs with more ranks than this skip the table
// (8 bytes per rank pair — 8 MiB at the default 1024 — would cost half
// a gigabyte at the paper's 8192-rank runs) and memoize only the
// bandwidth term. It mirrors core.MatrixRankLimit, which gates the
// rank-pair steal matrix for the same reason.
var LatencyTableRankLimit = 1024

// byteTableMax bounds the memo for the bandwidth term: protocol
// messages (requests, replies, tokens) and typical loot batches are
// well under this; larger transfers fall back to direct computation.
const byteTableMax = 4096

// cachedLatency wraps a HierarchicalLatency with memoization for the
// network's per-send lookups. The distance term is a pure function of
// the rank pair, served from a lazily filled dense table when the job
// is small enough; the bandwidth term is a pure function of the byte
// count, served from a small table indexed by size. Both memos store
// the exact value the wrapped model computes — the cache changes
// per-send cost, never a single latency.
type cachedLatency struct {
	h   *HierarchicalLatency
	job *Job
	n   int
	// dist[i*n+k] is the distance-dependent part of Latency(i, k); 0
	// means "not computed yet" (a genuinely zero distance term is then
	// recomputed each time, which stays correct).
	dist []sim.Duration
	// bytesTab[b] is the bandwidth term for a b-byte payload, same
	// zero-means-unfilled convention.
	bytesTab []sim.Duration
}

// SendModel returns the latency model the network should use for its
// per-send lookups: a memoizing wrapper when the model is the
// hierarchical Tofu model, the model itself otherwise. Only pure
// models are cacheable — JitterLatency advances an RNG on every call,
// so caching it would change the jitter stream — and UniformLatency is
// already cheaper than a table lookup.
func SendModel(m LatencyModel, j *Job) LatencyModel {
	h, ok := m.(*HierarchicalLatency)
	if !ok {
		return m
	}
	c := &cachedLatency{h: h, job: j, n: j.Ranks(), bytesTab: make([]sim.Duration, byteTableMax)}
	if c.n <= LatencyTableRankLimit {
		c.dist = make([]sim.Duration, c.n*c.n)
	}
	return c
}

// distTerm computes the distance-dependent part of the wrapped model's
// Latency — the same arithmetic with the bandwidth term left out.
func (c *cachedLatency) distTerm(i, k int) sim.Duration {
	h := c.h
	d := h.Software
	p, q := c.job.Coord(i), c.job.Coord(k)
	switch {
	case p == q:
		d += h.SameNode
	case SameBlade(p, q):
		d += h.SameBlade
	case SameCube(p, q):
		d += h.SameCube
	default:
		d += h.SameCube + sim.Duration(c.job.Alloc.Machine.Hops(p, q))*h.PerHop
	}
	return d
}

// Latency implements LatencyModel.
func (c *cachedLatency) Latency(j *Job, i, k int, bytes int) sim.Duration {
	if j != c.job {
		// The cache is keyed to one placed job; serve foreign jobs from
		// the wrapped model rather than from another job's distances.
		return c.h.Latency(j, i, k, bytes)
	}
	var d sim.Duration
	if c.dist != nil {
		idx := i*c.n + k
		d = c.dist[idx]
		if d == 0 {
			d = c.distTerm(i, k)
			c.dist[idx] = d
		}
	} else {
		d = c.distTerm(i, k)
	}
	if c.h.BytesPerSecond > 0 && bytes > 0 {
		if bytes < len(c.bytesTab) {
			b := c.bytesTab[bytes]
			if b == 0 {
				b = sim.Duration(float64(bytes) / c.h.BytesPerSecond * 1e9)
				c.bytesTab[bytes] = b
			}
			d += b
		} else {
			d += sim.Duration(float64(bytes) / c.h.BytesPerSecond * 1e9)
		}
	}
	return d
}
