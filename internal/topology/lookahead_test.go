package topology

import (
	"testing"

	"distws/internal/sim"
)

// bruteMinCross is the reference implementation: the minimum zero-byte
// latency over every cross-shard rank pair, clamped to the network's
// 1ns floor.
func bruteMinCross(j *Job, shardOf []int, m LatencyModel) (sim.Duration, bool) {
	min, ok := sim.Duration(0), false
	for i := 0; i < j.Ranks(); i++ {
		for k := 0; k < j.Ranks(); k++ {
			if i == k || shardOf[i] == shardOf[k] {
				continue
			}
			d := m.Latency(j, i, k, 0)
			if !ok || d < min {
				min, ok = d, true
			}
		}
	}
	if ok && min < 1 {
		min = 1
	}
	return min, ok
}

// contiguous assigns ranks to shards in equal-as-possible consecutive
// blocks, the partition the engine uses.
func contiguous(n, shards int) []int {
	out := make([]int, n)
	for r := 0; r < n; r++ {
		out[r] = r * shards / n
	}
	return out
}

// stripes assigns rank r to shard r%shards — a worst case for the
// hierarchy fast path, since every node or blade tends to span shards.
func stripes(n, shards int) []int {
	out := make([]int, n)
	for r := 0; r < n; r++ {
		out[r] = r % shards
	}
	return out
}

// TestMinCrossLatencyExact checks the tiered hierarchical fast path
// against the brute-force pairwise minimum across placements, shard
// counts and partition shapes, including cube-aligned boundaries that
// force the hop-scan fallback.
func TestMinCrossLatencyExact(t *testing.T) {
	model := DefaultLatency()
	cases := []struct {
		name      string
		ranks     int
		placement Placement
		part      func(n, shards int) []int
		shards    int
	}{
		{"1N-contig-2", 64, OnePerNode, contiguous, 2},
		{"1N-contig-7", 97, OnePerNode, contiguous, 7},
		{"8RR-contig-4", 128, EightRoundRobin, contiguous, 4},
		{"8G-contig-4", 128, EightGrouped, contiguous, 4},
		{"8G-contig-3", 96, EightGrouped, contiguous, 3},
		{"1N-stripes-4", 64, OnePerNode, stripes, 4},
		{"8G-stripes-8", 128, EightGrouped, stripes, 8},
		// 24 nodes = exactly two cubes; splitting at rank 12 aligns the
		// shard boundary with the cube boundary, so no cross pair shares
		// a cube and the beyond-cube hop scan decides the bound.
		{"1N-cube-aligned", 24, OnePerNode, contiguous, 2},
		{"1N-cube-aligned-4", 48, OnePerNode, contiguous, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			job, err := NewJob(KComputer(), tc.ranks, tc.placement)
			if err != nil {
				t.Fatal(err)
			}
			shardOf := tc.part(tc.ranks, tc.shards)
			got, ok, err := MinCrossLatency(job, shardOf, model)
			if err != nil {
				t.Fatal(err)
			}
			want, wantOK := bruteMinCross(job, shardOf, model)
			if ok != wantOK || got != want {
				t.Fatalf("MinCrossLatency = (%v, %v), brute force = (%v, %v)", got, ok, want, wantOK)
			}
		})
	}
}

// TestMinCrossLatencyUnordered uses a pathological model whose level
// constants are NOT monotone in hierarchy distance (a blade transfer
// cheaper than a shared-memory copy), which the fast path must still
// get exactly right: it may not assume SameNode ≤ SameBlade ≤ SameCube.
func TestMinCrossLatencyUnordered(t *testing.T) {
	model := &HierarchicalLatency{
		Software:  sim.Microsecond,
		SameNode:  900 * sim.Nanosecond,
		SameBlade: 100 * sim.Nanosecond,
		SameCube:  500 * sim.Nanosecond,
		PerHop:    10 * sim.Nanosecond,
	}
	for _, placement := range []Placement{OnePerNode, EightRoundRobin, EightGrouped} {
		job, err := NewJob(KComputer(), 64, placement)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{2, 3, 8} {
			for _, part := range []func(int, int) []int{contiguous, stripes} {
				shardOf := part(64, shards)
				got, ok, err := MinCrossLatency(job, shardOf, model)
				if err != nil {
					t.Fatal(err)
				}
				want, wantOK := bruteMinCross(job, shardOf, model)
				if ok != wantOK || got != want {
					t.Fatalf("%v shards=%d: MinCrossLatency = (%v, %v), brute force = (%v, %v)",
						placement, shards, got, ok, want, wantOK)
				}
			}
		}
	}
}

// TestMinCrossLatencyUniform covers the flat model, including the 1ns
// clamp when the fixed latency is zero.
func TestMinCrossLatencyUniform(t *testing.T) {
	job, err := NewJob(KComputer(), 16, OnePerNode)
	if err != nil {
		t.Fatal(err)
	}
	shardOf := contiguous(16, 2)
	got, ok, err := MinCrossLatency(job, shardOf, &UniformLatency{Fixed: 3 * sim.Microsecond})
	if err != nil || !ok || got != 3*sim.Microsecond {
		t.Fatalf("uniform: got (%v, %v, %v)", got, ok, err)
	}
	got, ok, err = MinCrossLatency(job, shardOf, &UniformLatency{Fixed: 0})
	if err != nil || !ok || got != 1 {
		t.Fatalf("uniform zero: got (%v, %v, %v), want 1ns clamp", got, ok, err)
	}
}

// TestMinCrossLatencyGenericModel exercises the brute-force fallback
// for a custom pure model and checks it agrees with the reference scan.
func TestMinCrossLatencyGenericModel(t *testing.T) {
	job, err := NewJob(KComputer(), 32, EightGrouped)
	if err != nil {
		t.Fatal(err)
	}
	model := rankGapLatency{}
	shardOf := stripes(32, 4)
	got, ok, err := MinCrossLatency(job, shardOf, model)
	if err != nil {
		t.Fatal(err)
	}
	want, wantOK := bruteMinCross(job, shardOf, model)
	if ok != wantOK || got != want {
		t.Fatalf("generic: got (%v, %v), want (%v, %v)", got, ok, want, wantOK)
	}
}

// rankGapLatency is an artificial pure model: latency grows with rank
// distance, so the minimum sits on adjacent ranks in distinct shards.
type rankGapLatency struct{}

func (rankGapLatency) Latency(_ *Job, i, k int, _ int) sim.Duration {
	d := i - k
	if d < 0 {
		d = -d
	}
	return sim.Duration(d) * 100 * sim.Nanosecond
}

// TestMinCrossLatencyEdges pins the degenerate inputs: a single-shard
// map reports no bound, a jitter model and a bad shard map error out.
func TestMinCrossLatencyEdges(t *testing.T) {
	job, err := NewJob(KComputer(), 8, OnePerNode)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := MinCrossLatency(job, make([]int, 8), DefaultLatency()); ok || err != nil {
		t.Fatalf("single shard: ok=%v err=%v, want no bound", ok, err)
	}
	if _, _, err := MinCrossLatency(job, []int{0, 1}, DefaultLatency()); err == nil {
		t.Fatal("short shard map: want error")
	}
	jit := NewJitterLatency(DefaultLatency(), 0.2, 1)
	if _, _, err := MinCrossLatency(job, contiguous(8, 2), jit); err == nil {
		t.Fatal("jitter model: want error")
	}
}
