package topology

import (
	"fmt"

	"distws/internal/sim"
)

// MinCrossLatency returns the minimum zero-byte message latency between
// any pair of ranks assigned to different shards by shardOf (a rank →
// shard map with one entry per rank of the job). This is the
// conservative lookahead bound for the sharded simulation kernel
// (internal/sim/par): no cross-shard message can be delivered earlier
// than its send time plus this value, because the bandwidth term only
// ever adds latency and the network clamps every delay to at least 1ns
// — which is also the floor applied to the returned value.
//
// The model must be pure (a deterministic function of the rank pair):
// *HierarchicalLatency and *UniformLatency are served by exact fast
// paths, any other model by brute force over all cross-shard pairs,
// which calls m.Latency once per pair. Stateful models such as
// *JitterLatency are rejected — probing them would both advance their
// stream and invalidate the bound (a jitter draw can undercut the base
// latency).
//
// The second return value is false when no cross-shard pair exists
// (fewer than two distinct shards), in which case the bound is
// meaningless and the caller should not window at all.
func MinCrossLatency(j *Job, shardOf []int, m LatencyModel) (sim.Duration, bool, error) {
	n := j.Ranks()
	if len(shardOf) != n {
		return 0, false, fmt.Errorf("topology: shard map has %d entries for %d ranks", len(shardOf), n)
	}
	cross := false
	for i := 1; i < n; i++ {
		if shardOf[i] != shardOf[0] {
			cross = true
			break
		}
	}
	if !cross {
		return 0, false, nil
	}
	switch mm := m.(type) {
	case *HierarchicalLatency:
		d, err := minCrossHierarchical(j, shardOf, mm)
		return clampMin(d), true, err
	case *UniformLatency:
		return clampMin(mm.Fixed), true, nil
	case *JitterLatency:
		return 0, false, fmt.Errorf("topology: jitter latency is stateful; no sound lookahead bound")
	default:
		min := sim.Duration(0)
		first := true
		for i := 0; i < n; i++ {
			for k := i + 1; k < n; k++ {
				if shardOf[i] == shardOf[k] {
					continue
				}
				d := m.Latency(j, i, k, 0)
				if first || d < min {
					min, first = d, false
				}
			}
		}
		return clampMin(min), true, nil
	}
}

func clampMin(d sim.Duration) sim.Duration {
	if d < 1 {
		return 1
	}
	return d
}

// nodeEntry is one distinct (node coordinate, shard) combination of the
// job; the hierarchical fast path works on these rather than on rank
// pairs, since the distance term of the latency only depends on the two
// node coordinates.
type nodeEntry struct {
	c Coord
	s int
}

type bladeKey struct{ x, y, z, b int }
type cubeKey struct{ x, y, z int }

// minCrossHierarchical computes the exact minimum cross-shard latency
// under the hierarchical model without enumerating all rank pairs. The
// model's distance term takes one of four shapes — SameNode, SameBlade,
// SameCube, or SameCube + hops·PerHop — so it suffices to know which
// shapes occur across shard boundaries (cheap grouping by node, blade
// and cube) and, only when no two cross-shard nodes share a cube, the
// minimum hop count between cross-shard nodes (a pair scan over
// distinct node coordinates, not ranks). Durations are assumed
// non-negative, which makes the beyond-cube shape dominate SameCube;
// no ordering among SameNode/SameBlade/SameCube is assumed.
func minCrossHierarchical(j *Job, shardOf []int, h *HierarchicalLatency) (sim.Duration, error) {
	if h.SameNode < 0 || h.SameBlade < 0 || h.SameCube < 0 || h.PerHop < 0 {
		return 0, fmt.Errorf("topology: negative latency components %+v", *h)
	}
	n := j.Ranks()
	// Distinct (coord, shard) entries in first-rank order, plus the
	// node-spans-shards check.
	seen := make(map[nodeEntry]bool, n)
	nodeShard := make(map[Coord]int, n)
	var entries []nodeEntry
	sameNode := false
	for r := 0; r < n; r++ {
		e := nodeEntry{c: j.Coord(r), s: shardOf[r]}
		if s0, ok := nodeShard[e.c]; !ok {
			nodeShard[e.c] = e.s
		} else if s0 != e.s {
			sameNode = true
		}
		if !seen[e] {
			seen[e] = true
			entries = append(entries, e)
		}
	}

	best := sim.Duration(-1)
	better := func(d sim.Duration) {
		if best < 0 || d < best {
			best = d
		}
	}
	if sameNode {
		better(h.SameNode)
	}
	// Blade and cube groups: a pairwise check within each group is tiny
	// (a blade holds NodesPerBlade nodes, a cube NodesPerCube).
	if groupSpansShards(entries, func(e nodeEntry) bladeKey {
		return bladeKey{e.c.X, e.c.Y, e.c.Z, e.c.B}
	}, func(p, q Coord) bool { return p != q }) {
		better(h.SameBlade)
	}
	if best < 0 || h.SameCube < best {
		if groupSpansShards(entries, func(e nodeEntry) cubeKey {
			return cubeKey{e.c.X, e.c.Y, e.c.Z}
		}, func(p, q Coord) bool { return !SameBlade(p, q) }) {
			better(h.SameCube)
		}
	}
	if best < 0 || h.SameCube < best {
		// The beyond-cube shape is SameCube + hops·PerHop ≥ SameCube
		// (hops ≥ 1, components non-negative), so it only matters while
		// SameCube itself could still improve the minimum. Scan distinct
		// cross-shard node pairs in different cubes for the minimum hop
		// count — quadratic in nodes, but reached only when the shard
		// boundary aligns exactly with cube boundaries.
		machine := j.Alloc.Machine
		minHops := -1
		for i := 0; i < len(entries); i++ {
			for k := i + 1; k < len(entries); k++ {
				p, q := entries[i], entries[k]
				if p.s == q.s || SameCube(p.c, q.c) {
					continue
				}
				if hh := machine.Hops(p.c, q.c); minHops < 0 || hh < minHops {
					minHops = hh
				}
			}
		}
		if minHops >= 0 {
			better(h.SameCube + sim.Duration(minHops)*h.PerHop)
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("topology: no cross-shard pair found")
	}
	return h.Software + best, nil
}

// groupSpansShards reports whether any group (as keyed by key) contains
// two entries in different shards whose coordinates satisfy pairOK.
func groupSpansShards[K comparable](entries []nodeEntry, key func(nodeEntry) K, pairOK func(p, q Coord) bool) bool {
	groups := make(map[K][]int, len(entries))
	for i, e := range entries {
		k := key(e)
		for _, gi := range groups[k] {
			g := entries[gi]
			if g.s != e.s && pairOK(g.c, e.c) {
				return true
			}
		}
		groups[k] = append(groups[k], i)
	}
	return false
}
