package topology

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstants(t *testing.T) {
	if NodesPerCube != 12 {
		t.Fatalf("NodesPerCube = %d, want 12 (2x3x2)", NodesPerCube)
	}
	if NodesPerRack != 96 {
		t.Fatalf("NodesPerRack = %d, want 96 (paper §IV-B)", NodesPerRack)
	}
}

func TestKComputerSize(t *testing.T) {
	m := KComputer()
	if n := m.Nodes(); n != 82944 {
		t.Fatalf("KComputer nodes = %d, want 82944", n)
	}
}

func TestMachineValidate(t *testing.T) {
	if err := (Machine{1, 1, 1}).Validate(); err != nil {
		t.Fatalf("valid machine rejected: %v", err)
	}
	for _, m := range []Machine{{0, 1, 1}, {1, -1, 1}, {1, 1, 0}} {
		if m.Validate() == nil {
			t.Fatalf("invalid machine %+v accepted", m)
		}
	}
}

func TestEuclid(t *testing.T) {
	a := Coord{0, 0, 0, 0, 0, 0}
	if Euclid(a, a) != 0 {
		t.Fatal("distance to self not 0")
	}
	b := Coord{3, 4, 0, 0, 0, 0}
	if got := Euclid(a, b); got != 5 {
		t.Fatalf("Euclid = %v, want 5", got)
	}
	c := Coord{1, 1, 1, 1, 1, 1}
	if got := Euclid(a, c); math.Abs(got-math.Sqrt(6)) > 1e-12 {
		t.Fatalf("Euclid = %v, want sqrt(6)", got)
	}
	if Euclid(a, b) != Euclid(b, a) {
		t.Fatal("Euclid not symmetric")
	}
}

func TestTorusDist(t *testing.T) {
	cases := []struct{ a, b, size, want int }{
		{0, 0, 8, 0},
		{0, 1, 8, 1},
		{0, 7, 8, 1}, // wraps
		{0, 4, 8, 4},
		{2, 6, 8, 4},
		{0, 2, 3, 1}, // b-ring of size 3 wraps
		{0, 0, 1, 0},
		{0, 5, 1, 0}, // degenerate dimension
	}
	for _, c := range cases {
		if got := torusDist(c.a, c.b, c.size); got != c.want {
			t.Errorf("torusDist(%d,%d,%d) = %d, want %d", c.a, c.b, c.size, got, c.want)
		}
	}
}

func TestHops(t *testing.T) {
	m := Machine{CubesX: 4, CubesY: 4, CubesZ: 8}
	a := Coord{0, 0, 0, 0, 0, 0}
	if m.Hops(a, a) != 0 {
		t.Fatal("hops to self not 0")
	}
	sameBlade := Coord{0, 0, 0, 1, 0, 0}
	if got := m.Hops(a, sameBlade); got != 1 {
		t.Fatalf("same-blade hops = %d, want 1", got)
	}
	sameCube := Coord{0, 0, 0, 1, 2, 1}
	// a:1 + b: torus(0,2,3)=1 + c:1 = 3
	if got := m.Hops(a, sameCube); got != 3 {
		t.Fatalf("intra-cube hops = %d, want 3", got)
	}
	wrapX := Coord{3, 0, 0, 0, 0, 0}
	if got := m.Hops(a, wrapX); got != 1 {
		t.Fatalf("torus-wrap hops = %d, want 1", got)
	}
	far := Coord{2, 2, 4, 1, 1, 1}
	if got := m.Hops(a, far); got != 2+2+4+1+1+1 {
		t.Fatalf("far hops = %d", got)
	}
}

func TestHopsNeverZeroForDistinctNodes(t *testing.T) {
	// A 1x1x1 machine still has 12 distinct nodes; hops between any two
	// distinct nodes must be >= 1 even when torus wrap collapses.
	m := Machine{1, 1, 1}
	alloc, err := Allocate(m, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range alloc.NodeList {
		for k, q := range alloc.NodeList {
			h := m.Hops(p, q)
			if i == k && h != 0 {
				t.Fatalf("self hops %d", h)
			}
			if i != k && h < 1 {
				t.Fatalf("hops(%v,%v) = %d", p, q, h)
			}
		}
	}
}

func TestHierarchyPredicates(t *testing.T) {
	a := Coord{1, 2, 3, 0, 1, 0}
	sameBlade := Coord{1, 2, 3, 1, 1, 1}
	sameCube := Coord{1, 2, 3, 0, 2, 0}
	sameRack := Coord{1, 2, 5, 0, 1, 0}
	other := Coord{2, 2, 3, 0, 1, 0}
	if !SameBlade(a, sameBlade) || !SameCube(a, sameBlade) || !SameRack(a, sameBlade) {
		t.Fatal("same-blade relations")
	}
	if SameBlade(a, sameCube) || !SameCube(a, sameCube) {
		t.Fatal("same-cube relations")
	}
	if SameCube(a, sameRack) || !SameRack(a, sameRack) {
		t.Fatal("same-rack relations")
	}
	if SameRack(a, other) {
		t.Fatal("cross-rack detected as same rack")
	}
}

func TestAllocateErrors(t *testing.T) {
	m := Machine{2, 2, 2}
	if _, err := Allocate(m, 0); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := Allocate(m, m.Nodes()+1); err == nil {
		t.Fatal("oversized allocation accepted")
	}
	if _, err := Allocate(Machine{0, 1, 1}, 1); err == nil {
		t.Fatal("invalid machine accepted")
	}
}

func TestAllocateExactAndCompact(t *testing.T) {
	m := KComputer()
	for _, n := range []int{1, 12, 13, 96, 128, 1024, 8192} {
		alloc, err := Allocate(m, n)
		if err != nil {
			t.Fatalf("Allocate(%d): %v", n, err)
		}
		if alloc.Nodes() != n {
			t.Fatalf("Allocate(%d) returned %d nodes", n, alloc.Nodes())
		}
		// All nodes unique and inside the declared box.
		seen := map[Coord]bool{}
		for _, c := range alloc.NodeList {
			if seen[c] {
				t.Fatalf("duplicate node %v in allocation of %d", c, n)
			}
			seen[c] = true
			if c.X >= alloc.DX || c.Y >= alloc.DY || c.Z >= alloc.DZ {
				t.Fatalf("node %v outside box %dx%dx%d", c, alloc.DX, alloc.DY, alloc.DZ)
			}
		}
		// Box is not absurdly large.
		if alloc.DX*alloc.DY*alloc.DZ*NodesPerCube >= 2*n+2*NodesPerCube*(alloc.DY*alloc.DZ) {
			t.Fatalf("box %dx%dx%d too loose for %d nodes", alloc.DX, alloc.DY, alloc.DZ, n)
		}
	}
}

func TestAllocationBladeContiguity(t *testing.T) {
	// Within one cube, allocation order must enumerate blade by blade so
	// 8G places groups on as few blades as possible.
	m := KComputer()
	alloc, err := Allocate(m, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i += 4 {
		blade := alloc.NodeList[i].B
		for k := i; k < i+4; k++ {
			if alloc.NodeList[k].B != blade {
				t.Fatalf("nodes %d..%d not on one blade: %v", i, i+3, alloc.NodeList[i:i+4])
			}
		}
	}
}

func TestAllocate8192SpansManyRacks(t *testing.T) {
	// Paper: "an allocation of 8192 nodes can easily span across more
	// than 80 racks" and routes can exceed 10 hops.
	m := KComputer()
	alloc, err := Allocate(m, 8192)
	if err != nil {
		t.Fatal(err)
	}
	racks := map[[2]int]bool{}
	for _, c := range alloc.NodeList {
		racks[[2]int{c.X, c.Y}] = true
	}
	if len(racks) < 80 {
		t.Fatalf("8192-node allocation spans %d racks, paper says >80", len(racks))
	}
	job, err := PlaceJob(alloc, 8192, OnePerNode)
	if err != nil {
		t.Fatal(err)
	}
	if job.MaxHops() <= 10 {
		t.Fatalf("max hops = %d, paper observed >10", job.MaxHops())
	}
}

func TestPlacementPolicies(t *testing.T) {
	m := KComputer()
	const nranks = 64

	oneN, err := NewJob(m, nranks, OnePerNode)
	if err != nil {
		t.Fatal(err)
	}
	if oneN.Alloc.Nodes() != nranks {
		t.Fatalf("1/N used %d nodes, want %d", oneN.Alloc.Nodes(), nranks)
	}
	for i := 0; i < nranks; i++ {
		if oneN.Core(i) != 0 {
			t.Fatalf("1/N rank %d on core %d", i, oneN.Core(i))
		}
		for k := i + 1; k < nranks; k++ {
			if oneN.SameNode(i, k) {
				t.Fatalf("1/N ranks %d,%d share a node", i, k)
			}
		}
	}

	g, err := NewJob(m, nranks, EightGrouped)
	if err != nil {
		t.Fatal(err)
	}
	if g.Alloc.Nodes() != nranks/8 {
		t.Fatalf("8G used %d nodes, want %d", g.Alloc.Nodes(), nranks/8)
	}
	for i := 0; i < nranks; i++ {
		if want := i % 8; g.Core(i) != want {
			t.Fatalf("8G rank %d core %d, want %d", i, g.Core(i), want)
		}
		if !g.SameNode(i, i-i%8) {
			t.Fatalf("8G rank %d not with group leader", i)
		}
	}
	// Consecutive ranks in the same group share a node.
	if !g.SameNode(0, 7) || g.SameNode(7, 8) {
		t.Fatal("8G grouping wrong at boundary")
	}

	rr, err := NewJob(m, nranks, EightRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	nnodes := nranks / 8
	for i := 0; i < nranks; i++ {
		if want := i / nnodes; rr.Core(i) != want {
			t.Fatalf("8RR rank %d core %d, want %d", i, rr.Core(i), want)
		}
	}
	// Ranks i and i+nnodes share a node; consecutive ranks do not
	// (except where the allocation is a single node).
	if !rr.SameNode(0, nnodes) {
		t.Fatal("8RR ranks 0 and nnodes should share a node")
	}
	if rr.SameNode(0, 1) {
		t.Fatal("8RR consecutive ranks share a node")
	}
}

func TestPlacementDivisibility(t *testing.T) {
	m := KComputer()
	if _, err := NewJob(m, 12, EightGrouped); err == nil {
		t.Fatal("8G with 12 ranks accepted")
	}
	if _, err := NewJob(m, 0, OnePerNode); err == nil {
		t.Fatal("zero ranks accepted")
	}
}

func TestJobDistanceSymmetryAndIdentity(t *testing.T) {
	m := KComputer()
	job, err := NewJob(m, 128, OnePerNode)
	if err != nil {
		t.Fatal(err)
	}
	f := func(i, k uint8) bool {
		a, b := int(i)%128, int(k)%128
		if job.Distance(a, b) != job.Distance(b, a) {
			return false
		}
		if a == b && job.Distance(a, b) != 0 {
			return false
		}
		if a != b && job.Placement == OnePerNode && job.Distance(a, b) <= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality holds for Euclid over arbitrary coords.
func TestPropertyEuclidTriangle(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz int8) bool {
		a := Coord{int(ax), int(ay), int(az), 0, 0, 0}
		b := Coord{int(bx), int(by), int(bz), 1, 1, 1}
		c := Coord{int(cx), int(cy), int(cz), 0, 2, 1}
		return Euclid(a, c) <= Euclid(a, b)+Euclid(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: hop metric is symmetric and satisfies identity.
func TestPropertyHopsMetric(t *testing.T) {
	m := Machine{CubesX: 6, CubesY: 5, CubesZ: 8}
	alloc, err := Allocate(m, 240)
	if err != nil {
		t.Fatal(err)
	}
	f := func(i, k uint8) bool {
		p := alloc.NodeList[int(i)%240]
		q := alloc.NodeList[int(k)%240]
		h1, h2 := m.Hops(p, q), m.Hops(q, p)
		if h1 != h2 {
			return false
		}
		if p == q {
			return h1 == 0
		}
		return h1 >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
