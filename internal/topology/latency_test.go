package topology

import (
	"testing"

	"distws/internal/sim"
)

func TestHierarchicalLatencyOrdering(t *testing.T) {
	m := KComputer()
	// 8G over 1024 ranks: ranks 0..7 share node 0, 8..11 next node on
	// the same blade, etc.
	job, err := NewJob(m, 1024, EightGrouped)
	if err != nil {
		t.Fatal(err)
	}
	h := DefaultLatency()

	sameNode := h.Latency(job, 0, 1, 0)
	var sameBlade, sameCube, crossCube, far sim.Duration
	for k := 8; k < 1024; k += 8 {
		p, q := job.Coord(0), job.Coord(k)
		switch {
		case SameBlade(p, q) && sameBlade == 0:
			sameBlade = h.Latency(job, 0, k, 0)
		case !SameBlade(p, q) && SameCube(p, q) && sameCube == 0:
			sameCube = h.Latency(job, 0, k, 0)
		case !SameCube(p, q) && crossCube == 0:
			crossCube = h.Latency(job, 0, k, 0)
		}
	}
	far = h.Latency(job, 0, 1016, 0)
	if sameBlade == 0 || sameCube == 0 || crossCube == 0 {
		t.Fatal("test setup: did not find all hierarchy levels")
	}
	if !(sameNode < sameBlade && sameBlade < sameCube && sameCube < crossCube) {
		t.Fatalf("latency ordering violated: node=%v blade=%v cube=%v cross=%v",
			sameNode, sameBlade, sameCube, crossCube)
	}
	if far < crossCube {
		t.Fatalf("far rank latency %v < nearest cross-cube latency %v", far, crossCube)
	}
}

func TestLatencySymmetry(t *testing.T) {
	m := KComputer()
	job, err := NewJob(m, 256, OnePerNode)
	if err != nil {
		t.Fatal(err)
	}
	h := DefaultLatency()
	for i := 0; i < 256; i += 17 {
		for k := 0; k < 256; k += 13 {
			if h.Latency(job, i, k, 64) != h.Latency(job, k, i, 64) {
				t.Fatalf("latency not symmetric for (%d,%d)", i, k)
			}
		}
	}
}

func TestBandwidthTerm(t *testing.T) {
	m := KComputer()
	job, err := NewJob(m, 16, OnePerNode)
	if err != nil {
		t.Fatal(err)
	}
	h := DefaultLatency()
	small := h.Latency(job, 0, 1, 0)
	big := h.Latency(job, 0, 1, 1<<20)
	// 1 MiB at 5 GB/s is ~210 µs.
	bytes := float64(1 << 20)
	wantExtra := sim.Duration(bytes / 5e9 * 1e9)
	if got := big - small; got < wantExtra-sim.Microsecond || got > wantExtra+sim.Microsecond {
		t.Fatalf("bandwidth term = %v, want ~%v", got, wantExtra)
	}
}

func TestUniformLatencyIgnoresPlacement(t *testing.T) {
	m := KComputer()
	job, err := NewJob(m, 1024, OnePerNode)
	if err != nil {
		t.Fatal(err)
	}
	u := &UniformLatency{Fixed: 5 * sim.Microsecond}
	base := u.Latency(job, 0, 1, 0)
	for k := 2; k < 1024; k += 97 {
		if u.Latency(job, 0, k, 0) != base {
			t.Fatalf("uniform latency varies with rank %d", k)
		}
	}
	if u.Latency(job, 0, 1, 1000) != base {
		t.Fatal("bandwidth term applied with zero BytesPerSecond")
	}
	u.BytesPerSecond = 1e9
	if u.Latency(job, 0, 1, 1000) <= base {
		t.Fatal("bandwidth term missing")
	}
}

func TestLatencyPositive(t *testing.T) {
	m := KComputer()
	for _, p := range []Placement{OnePerNode, EightRoundRobin, EightGrouped} {
		job, err := NewJob(m, 64, p)
		if err != nil {
			t.Fatal(err)
		}
		h := DefaultLatency()
		for i := 0; i < 64; i++ {
			for k := 0; k < 64; k++ {
				if d := h.Latency(job, i, k, 0); d <= 0 {
					t.Fatalf("%v: non-positive latency %v between %d and %d", p, d, i, k)
				}
			}
		}
	}
}

func TestJitterLatencyBounds(t *testing.T) {
	m := KComputer()
	job, err := NewJob(m, 64, OnePerNode)
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultLatency()
	j := NewJitterLatency(base, 0.2, 7)
	for i := 0; i < 5000; i++ {
		a, b := i%64, (i*31+1)%64
		d := j.Latency(job, a, b, 100)
		ref := base.Latency(job, a, b, 100)
		lo := sim.Duration(float64(ref) * 0.79)
		hi := sim.Duration(float64(ref) * 1.21)
		if d < lo || d > hi {
			t.Fatalf("jittered latency %v outside [%v, %v]", d, lo, hi)
		}
	}
}

func TestJitterLatencyDeterministicStream(t *testing.T) {
	m := KComputer()
	job, err := NewJob(m, 16, OnePerNode)
	if err != nil {
		t.Fatal(err)
	}
	a := NewJitterLatency(DefaultLatency(), 0.3, 42)
	b := NewJitterLatency(DefaultLatency(), 0.3, 42)
	for i := 0; i < 1000; i++ {
		if a.Latency(job, 0, 1+i%15, 64) != b.Latency(job, 0, 1+i%15, 64) {
			t.Fatalf("same-seed jitter streams diverged at call %d", i)
		}
	}
}

func TestJitterLatencyNeverZero(t *testing.T) {
	m := KComputer()
	job, err := NewJob(m, 4, OnePerNode)
	if err != nil {
		t.Fatal(err)
	}
	j := NewJitterLatency(&UniformLatency{Fixed: 1}, 0.9, 1)
	for i := 0; i < 1000; i++ {
		if d := j.Latency(job, 0, 1, 0); d < 1 {
			t.Fatalf("jittered latency %v below 1ns", d)
		}
	}
}

func TestJitterLatencyPanicsOnBadFrac(t *testing.T) {
	for _, frac := range []float64{-0.1, 1.0, 2.0} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("frac %v accepted", frac)
				}
			}()
			NewJitterLatency(DefaultLatency(), frac, 1)
		}()
	}
}

// TestSendModelMatchesUncached is the exactness contract of the latency
// cache: for every rank pair and a spread of payload sizes (including
// ones past the byte-table bound), the cached model must return the
// bit-identical duration the plain model computes, on both the dense-
// table and the beyond-limit paths.
func TestSendModelMatchesUncached(t *testing.T) {
	job, err := NewJob(KComputer(), 96, OnePerNode)
	if err != nil {
		t.Fatal(err)
	}
	plain := DefaultLatency()
	sizes := []int{0, 1, 8, 16, 200, byteTableMax - 1, byteTableMax, 1 << 20}
	check := func(cached LatencyModel) {
		t.Helper()
		for i := 0; i < job.Ranks(); i += 7 {
			for k := 0; k < job.Ranks(); k++ {
				for _, sz := range sizes {
					want := plain.Latency(job, i, k, sz)
					// Twice: the first call fills the memo, the second reads it.
					if got := cached.Latency(job, i, k, sz); got != want {
						t.Fatalf("cold cache: Latency(%d, %d, %d) = %v, want %v", i, k, sz, got, want)
					}
					if got := cached.Latency(job, i, k, sz); got != want {
						t.Fatalf("warm cache: Latency(%d, %d, %d) = %v, want %v", i, k, sz, got, want)
					}
				}
			}
		}
	}
	check(SendModel(plain, job))

	// Beyond the table gate the cache must degrade, not misbehave.
	defer func(old int) { LatencyTableRankLimit = old }(LatencyTableRankLimit)
	LatencyTableRankLimit = 8
	gated := SendModel(plain, job)
	if gated.(*cachedLatency).dist != nil {
		t.Fatal("dense table built past LatencyTableRankLimit")
	}
	check(gated)
}

// TestSendModelPassThrough: stateful or already-cheap models must come
// back unwrapped — caching JitterLatency would freeze its RNG stream.
func TestSendModelPassThrough(t *testing.T) {
	job, err := NewJob(KComputer(), 4, OnePerNode)
	if err != nil {
		t.Fatal(err)
	}
	jit := NewJitterLatency(DefaultLatency(), 0.2, 1)
	if SendModel(jit, job) != LatencyModel(jit) {
		t.Fatal("JitterLatency was wrapped")
	}
	uni := &UniformLatency{Fixed: 5}
	if SendModel(uni, job) != LatencyModel(uni) {
		t.Fatal("UniformLatency was wrapped")
	}
}

// TestSendModelForeignJob: a lookup against a job other than the one
// the cache was built for must not read that job's table.
func TestSendModelForeignJob(t *testing.T) {
	jobA, err := NewJob(KComputer(), 64, OnePerNode)
	if err != nil {
		t.Fatal(err)
	}
	jobB, err := NewJob(KComputer(), 64, EightRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	cached := SendModel(DefaultLatency(), jobA)
	for i := 0; i < 64; i += 5 {
		for k := 0; k < 64; k++ {
			want := DefaultLatency().Latency(jobB, i, k, 16)
			if got := cached.Latency(jobB, i, k, 16); got != want {
				t.Fatalf("foreign job: Latency(%d, %d) = %v, want %v", i, k, got, want)
			}
		}
	}
}
