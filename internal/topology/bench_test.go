package topology

import (
	"testing"

	"distws/internal/sim"
)

// BenchmarkLatencyLookup measures the per-send latency computation for
// steal-request-sized messages across a 512-rank job — the lookup the
// network performs for every simulated message.
func BenchmarkLatencyLookup(b *testing.B) {
	job, err := NewJob(KComputer(), 512, OnePerNode)
	if err != nil {
		b.Fatal(err)
	}
	model := SendModel(DefaultLatency(), job)
	var sink sim.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := i & 511
		to := (i * 37) & 511
		sink += model.Latency(job, from, to, 16)
	}
	_ = sink
}
