// Package topology models a K Computer-like machine: compute nodes
// addressed by 6-dimensional Tofu coordinates, organized hierarchically
// into blades, cubes and racks, with a job allocator and rank-placement
// policies matching the paper's experimental setups.
//
// Geometry (paper §IV-B):
//
//   - 4 nodes form a blade and share a dedicated transport;
//   - 3 blades form a 2x3x2 "cube" of 12 nodes, spanning the three
//     intra-cube dimensions (a, b, c) with sizes (2, 3, 2) — the blade
//     index is the b coordinate;
//   - cubes are joined in a 3-D mesh/torus (x, y, z), with one dimension
//     (z, 8 cubes) staying inside a rack and two (x, y) across racks,
//     so a rack holds 8*12 = 96 nodes.
//
// A node's global coordinate is therefore (x, y, z, a, b, c). The
// paper's skewed victim selection weighs ranks by the inverse Euclidean
// distance between these coordinates.
package topology

import (
	"errors"
	"fmt"
	"math"
)

// Intra-cube dimension sizes. These are properties of the Tofu unit
// cell, not configuration.
const (
	SizeA = 2
	SizeB = 3
	SizeC = 2

	// NodesPerCube is the number of compute nodes in one 2x3x2 cube.
	NodesPerCube = SizeA * SizeB * SizeC
	// CubesPerRack is the extent of the intra-rack dimension (z).
	CubesPerRack = 8
	// NodesPerRack is 96 on the K Computer, as the paper notes.
	NodesPerRack = NodesPerCube * CubesPerRack
	// CoresPerNode is the SPARC64 VIIIfx core count.
	CoresPerNode = 8
)

// Coord is the 6-D Tofu coordinate of a compute node.
type Coord struct {
	X, Y, Z int // inter-cube mesh/torus (z = position inside the rack)
	A, B, C int // intra-cube position; B is the blade index
}

func (c Coord) String() string {
	return fmt.Sprintf("(%d,%d,%d,%d,%d,%d)", c.X, c.Y, c.Z, c.A, c.B, c.C)
}

// Euclid returns the Euclidean distance between two node coordinates in
// the 6-D space, exactly as the paper's p(i,j) weighting uses it.
func Euclid(p, q Coord) float64 {
	dx := float64(p.X - q.X)
	dy := float64(p.Y - q.Y)
	dz := float64(p.Z - q.Z)
	da := float64(p.A - q.A)
	db := float64(p.B - q.B)
	dc := float64(p.C - q.C)
	return math.Sqrt(dx*dx + dy*dy + dz*dz + da*da + db*db + dc*dc)
}

// Machine describes a full system as a 3-D arrangement of cubes:
// CubesX x CubesY racks-worth in the two cross-rack dimensions and
// CubesZ cubes along the intra-rack dimension.
type Machine struct {
	CubesX, CubesY, CubesZ int
}

// KComputer returns the dimensions of the machine used in the paper:
// 864 racks (24 x 36) of 8 cubes each, 82944 compute nodes.
func KComputer() Machine {
	return Machine{CubesX: 24, CubesY: 36, CubesZ: CubesPerRack}
}

// Nodes returns the total number of compute nodes in the machine.
func (m Machine) Nodes() int {
	return m.CubesX * m.CubesY * m.CubesZ * NodesPerCube
}

// Validate reports whether the machine dimensions are usable.
func (m Machine) Validate() error {
	if m.CubesX <= 0 || m.CubesY <= 0 || m.CubesZ <= 0 {
		return fmt.Errorf("topology: non-positive machine dimensions %+v", m)
	}
	return nil
}

// Hops returns the number of network links a message crosses between
// two nodes: Manhattan distance with wraparound on the torus dimensions
// (x, y, z and the intra-cube b ring) and plain mesh distance on a and
// c. Two nodes on the same blade are 1 hop apart over the blade
// transport; the same node is 0 hops.
func (m Machine) Hops(p, q Coord) int {
	if p == q {
		return 0
	}
	h := torusDist(p.X, q.X, m.CubesX) +
		torusDist(p.Y, q.Y, m.CubesY) +
		torusDist(p.Z, q.Z, m.CubesZ) +
		abs(p.A-q.A) +
		torusDist(p.B, q.B, SizeB) +
		abs(p.C-q.C)
	if h == 0 {
		// Distinct nodes must be at least one hop apart; torus wrap on a
		// dimension of size 1 can collapse the distance.
		h = 1
	}
	return h
}

func torusDist(a, b, size int) int {
	if size <= 1 {
		return 0
	}
	d := abs(a - b)
	if wrap := size - d; wrap < d {
		return wrap
	}
	return d
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// SameBlade reports whether two nodes share a blade (same cube, same
// blade index b, adjacent only through the blade transport).
func SameBlade(p, q Coord) bool {
	return p.X == q.X && p.Y == q.Y && p.Z == q.Z && p.B == q.B
}

// SameCube reports whether two nodes are in the same 12-node cube.
func SameCube(p, q Coord) bool {
	return p.X == q.X && p.Y == q.Y && p.Z == q.Z
}

// SameRack reports whether two nodes are in the same rack (same x, y).
func SameRack(p, q Coord) bool {
	return p.X == q.X && p.Y == q.Y
}

// Allocation is a set of compute nodes assigned to a job, in allocation
// order. The K Computer's scheduler allocates nodes as a compact 3-D
// rectangle of cubes that minimizes average hop distance; Allocate
// reproduces that policy deterministically.
type Allocation struct {
	Machine Machine
	// DX, DY, DZ are the cube-rectangle dimensions of the allocation.
	DX, DY, DZ int
	// NodeList holds the allocated node coordinates; rank placement
	// policies index into this list.
	NodeList []Coord
}

// ErrTooLarge is returned when a job does not fit the machine.
var ErrTooLarge = errors.New("topology: allocation exceeds machine size")

// Allocate reserves nnodes compute nodes as the most compact cube
// rectangle available: among all (dx, dy, dz) boxes with enough nodes it
// picks the one minimizing the box's mean intra-box hop distance proxy
// (dx+dy+dz, then volume). Nodes are enumerated cube by cube in
// (x, y, z) lexicographic order and blade by blade inside each cube, and
// the first nnodes are returned.
func Allocate(m Machine, nnodes int) (*Allocation, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if nnodes <= 0 {
		return nil, fmt.Errorf("topology: non-positive node count %d", nnodes)
	}
	if nnodes > m.Nodes() {
		return nil, fmt.Errorf("%w: want %d nodes, machine has %d", ErrTooLarge, nnodes, m.Nodes())
	}

	cubes := (nnodes + NodesPerCube - 1) / NodesPerCube
	bestDX, bestDY, bestDZ := -1, -1, -1
	bestSpan, bestVol := math.MaxInt, math.MaxInt
	for dz := 1; dz <= m.CubesZ; dz++ {
		for dy := 1; dy <= m.CubesY; dy++ {
			// Smallest dx that fits the remaining cubes.
			dx := (cubes + dy*dz - 1) / (dy * dz)
			if dx > m.CubesX {
				continue
			}
			span := dx + dy + dz
			vol := dx * dy * dz
			if span < bestSpan || (span == bestSpan && vol < bestVol) {
				bestSpan, bestVol = span, vol
				bestDX, bestDY, bestDZ = dx, dy, dz
			}
		}
	}
	if bestDX < 0 {
		return nil, fmt.Errorf("%w: no box fits %d cubes", ErrTooLarge, cubes)
	}

	alloc := &Allocation{Machine: m, DX: bestDX, DY: bestDY, DZ: bestDZ}
	alloc.NodeList = make([]Coord, 0, nnodes)
Fill:
	for x := 0; x < bestDX; x++ {
		for y := 0; y < bestDY; y++ {
			for z := 0; z < bestDZ; z++ {
				// Enumerate the cube blade by blade (b outer) so that
				// blade-mates are consecutive in allocation order.
				for b := 0; b < SizeB; b++ {
					for a := 0; a < SizeA; a++ {
						for c := 0; c < SizeC; c++ {
							alloc.NodeList = append(alloc.NodeList, Coord{x, y, z, a, b, c})
							if len(alloc.NodeList) == nnodes {
								break Fill
							}
						}
					}
				}
			}
		}
	}
	return alloc, nil
}

// Nodes returns the number of allocated nodes.
func (a *Allocation) Nodes() int { return len(a.NodeList) }
