package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanSum(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Sum([]float64{0.1, 0.2, 0.3}); math.Abs(got-0.6) > 1e-15 {
		t.Fatalf("Sum = %v", got)
	}
}

func TestKahanCompensation(t *testing.T) {
	// 1 + 1e-16 repeated: naive summation loses the small terms.
	xs := make([]float64, 1_000_001)
	xs[0] = 1
	for i := 1; i < len(xs); i++ {
		xs[i] = 1e-16
	}
	got := Sum(xs)
	want := 1 + 1e-10
	if math.Abs(got-want) > 1e-13 {
		t.Fatalf("compensated sum = %.17g, want %.17g", got, want)
	}
}

func TestStddev(t *testing.T) {
	if Stddev([]float64{5}) != 0 {
		t.Fatal("Stddev of singleton")
	}
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	// Sample stddev with n-1: variance = 32/7.
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Stddev = %v, want %v", got, want)
	}
}

func TestMinMax(t *testing.T) {
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max")
	}
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile([]float64{7}, 0.3) != 7 {
		t.Fatal("singleton quantile")
	}
	// Input must not be mutated.
	unsorted := []float64{3, 1, 2}
	Quantile(unsorted, 0.5)
	if unsorted[0] != 3 {
		t.Fatal("Quantile mutated input")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.5, 1, 1.5, 2, 9.99, 10}
	h := Histogram(xs, 5, 0, 10)
	if len(h) != 5 {
		t.Fatalf("bins %v", h)
	}
	// [0,2): 0, 0.5, 1, 1.5 -> 4; [8,10]: 9.99 and 10 -> 2.
	if h[0] != 4 || h[4] != 2 {
		t.Fatalf("histogram %v", h)
	}
	if Histogram(xs, 0, 0, 1) != nil || Histogram(xs, 3, 5, 5) != nil {
		t.Fatal("degenerate histograms not nil")
	}
	// Out-of-range values ignored.
	h2 := Histogram([]float64{-1, 11}, 2, 0, 10)
	if h2[0] != 0 || h2[1] != 0 {
		t.Fatalf("out-of-range counted: %v", h2)
	}
}

// Property: Min <= Quantile(q) <= Max and quantiles are monotone in q.
func TestPropertyQuantileBounds(t *testing.T) {
	f := func(raw []uint16, q1, q2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		a := float64(q1%101) / 100
		b := float64(q2%101) / 100
		if a > b {
			a, b = b, a
		}
		qa, qb := Quantile(xs, a), Quantile(xs, b)
		return qa >= Min(xs) && qb <= Max(xs) && qa <= qb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram counts sum to the number of in-range values.
func TestPropertyHistogramTotal(t *testing.T) {
	f := func(raw []uint8, bins uint8) bool {
		n := int(bins%10) + 1
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		h := Histogram(xs, n, 0, 255)
		total := 0
		for _, c := range h {
			total += c
		}
		return total == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
