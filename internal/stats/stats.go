// Package stats provides the small descriptive-statistics helpers the
// experiment harness reports with.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Sum returns the sum of xs using Kahan compensation.
func Sum(xs []float64) float64 {
	var sum, c float64
	for _, x := range xs {
		y := x - c
		t := sum + y
		c = (t - sum) - y
		sum = t
	}
	return sum
}

// Stddev returns the sample standard deviation (n-1 denominator), or 0
// when fewer than two values are given.
func Stddev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min returns the smallest value, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice
// or out-of-range q.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Histogram bins xs into n equal-width buckets over [min, max] and
// returns the counts. Values exactly at max land in the last bucket.
func Histogram(xs []float64, n int, min, max float64) []int {
	if n <= 0 || max <= min {
		return nil
	}
	counts := make([]int, n)
	width := (max - min) / float64(n)
	for _, x := range xs {
		if x < min || x > max {
			continue
		}
		b := int((x - min) / width)
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	return counts
}
