package harness

import (
	"fmt"
	"runtime"
	"sync"

	"distws/internal/core"
	"distws/internal/fault"
	"distws/internal/serve"
	"distws/internal/sim"
	"distws/internal/term"
	"distws/internal/topology"
	"distws/internal/uts"
	"distws/internal/victim"
)

// Variant names a (selector, steal policy) combination the way the
// paper does.
type Variant struct {
	Name     string
	Selector victim.Factory
	Steal    core.StealPolicy
}

// The paper's variants.
var (
	Reference     = Variant{"Reference", victim.NewRoundRobin, core.StealOne}
	ReferenceHalf = Variant{"Reference Half", victim.NewRoundRobin, core.StealHalf}
	Rand          = Variant{"Rand", victim.NewUniformRandom, core.StealOne}
	RandHalf      = Variant{"Rand Half", victim.NewUniformRandom, core.StealHalf}
	Tofu          = Variant{"Tofu", victim.NewDistanceSkewed, core.StealOne}
	TofuHalf      = Variant{"Tofu Half", victim.NewDistanceSkewed, core.StealHalf}
)

// ExperimentChunkSize is the steal granularity used by the scaled
// experiments: the UTS default of 20 is scaled down to 4 in proportion
// to the tree sizes (DESIGN.md §2); ablation A1 sweeps it.
const ExperimentChunkSize = 4

// backoffThresholdRanks is the rank count above which the experiments
// enable retry backoff to bound simulation cost (DESIGN.md §6).
const backoffThresholdRanks = 1024

// Run describes one simulation of an experiment grid.
type Run struct {
	Label     string
	Variant   Variant
	Ranks     int
	Placement topology.Placement
	Tree      uts.Params
	NodeCost  sim.Duration
	Trace     bool
	// Events additionally captures the protocol event log (implies a
	// trace); DumpTraces exports the result for tracetool / Perfetto.
	Events bool
	Seed   uint64
	// ChunkSize overrides ExperimentChunkSize when nonzero.
	ChunkSize int
	// PollInterval overrides the default of 1 when nonzero.
	PollInterval int
	// Detector overrides the default (Safra) when set.
	Detector term.Factory
	// Backoff overrides the scale-based default when non-zero.
	Backoff core.Backoff
	// Protocol selects the steal transport (default two-sided).
	Protocol core.Protocol
	// StealTimeout enables aborting steals when positive.
	StealTimeout sim.Duration
	// Latency overrides the default hierarchical model when set.
	Latency topology.LatencyModel
	// Faults injects a deterministic fault plan when set (chaos runs).
	Faults *fault.Plan
	// Shards runs the simulation on the sharded parallel kernel when > 1.
	Shards int
	// ParProfile records the parallel-kernel window ledger into the
	// result (core.Config.ParProfile).
	ParProfile bool
	// Serve switches the run into open-system serving mode when set
	// (core.Config.Serve); Tree is then ignored. Serving runs keep the
	// retry backoff enabled regardless of rank count — idle ranks spin
	// between arrivals, and unthrottled retries would dominate the
	// event count without changing any serving metric.
	Serve *serve.Spec
}

// config materializes the core.Config for a run.
func (r Run) config() core.Config {
	cs := r.ChunkSize
	if cs == 0 {
		cs = ExperimentChunkSize
	}
	cfg := core.Config{
		Tree:          r.Tree,
		Ranks:         r.Ranks,
		Placement:     r.Placement,
		Selector:      r.Variant.Selector,
		Steal:         r.Variant.Steal,
		ChunkSize:     cs,
		PollInterval:  r.PollInterval,
		NodeCost:      r.NodeCost,
		Seed:          r.Seed,
		CollectTrace:  r.Trace,
		CollectEvents: r.Events,
		Detector:      r.Detector,
		Protocol:      r.Protocol,
		StealTimeout:  r.StealTimeout,
		Latency:       r.Latency,
		Faults:        r.Faults,
		Shards:        r.Shards,
		ParProfile:    r.ParProfile,
		Serve:         r.Serve,
	}
	switch {
	case r.Backoff != (core.Backoff{}):
		cfg.BackoffPolicy = r.Backoff
	case r.Serve != nil:
		// Serving: keep the default backoff (see the Serve field).
	case r.Ranks <= backoffThresholdRanks:
		cfg.BackoffPolicy = core.Backoff{Threshold: -1}
	}
	return cfg
}

// Outcome pairs a run with its result.
type Outcome struct {
	Run    Run
	Result *core.Result
}

// Execute runs the grid, parallelizing across host CPUs. Results come
// back in input order; the first simulation error aborts the batch.
func Execute(runs []Run) ([]Outcome, error) {
	out := make([]Outcome, len(runs))
	errs := make([]error, len(runs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := range runs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := core.Run(runs[i].config())
			if err != nil {
				errs[i] = fmt.Errorf("harness: run %q (n=%d, %v): %w",
					runs[i].Variant.Name, runs[i].Ranks, runs[i].Placement, err)
				return
			}
			out[i] = Outcome{Run: runs[i], Result: res}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// sweepRanks returns the rank counts of the paper's large sweeps at
// each scale. The paper uses 1024-8192; Default is 1/8 of that.
func sweepRanks(s Scale) []int {
	switch s {
	case Quick:
		return []int{32, 64, 128}
	case Full:
		return []int{256, 512, 1024, 2048}
	default:
		return []int{128, 256, 512, 1024}
	}
}

// sweepTree returns the workload tree for the large sweeps.
func sweepTree(s Scale) uts.Params {
	switch s {
	case Quick:
		return uts.MustPreset("H-SMALL").Params
	case Full:
		return uts.MustPreset("H-FULL").Params
	default:
		return uts.MustPreset("H-SWEEP").Params
	}
}

// fig2Ranks returns the small-scale rank counts (paper: 8-128).
func fig2Ranks(s Scale) []int {
	if s == Quick {
		return []int{8, 16, 32}
	}
	return []int{8, 16, 32, 64, 128}
}

// fig2Tree returns the workload for the small-scale efficiency and
// latency studies (Figures 2 and 4). H-EVEN has many shallow binomial
// subtrees so that, as in the paper's 2.8e9-node runs, per-rank work
// dwarfs both the distribution ramp and the drain tail.
func fig2Tree(s Scale) uts.Params {
	if s == Quick {
		return uts.MustPreset("H-TINY").Params
	}
	return uts.MustPreset("H-EVEN").Params
}

// placements are the paper's three allocations in presentation order.
var placements = []topology.Placement{
	topology.OnePerNode,
	topology.EightRoundRobin,
	topology.EightGrouped,
}

// fmtFloat renders a float compactly for tables.
func fmtFloat(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}

// fmtDur renders a virtual duration for tables.
func fmtDur(d sim.Duration) string { return d.String() }
