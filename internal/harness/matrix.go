package harness

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"distws/internal/obs/diff"
	"distws/internal/obs/ledger"
	"distws/internal/serve"
	"distws/internal/sim"
	"distws/internal/topology"
	"distws/internal/uts"
)

// The scenario matrix is the regression harness behind `make
// matrix-smoke`: a small grid of (tree preset × victim selector × rank
// count × fault plan) cells, each executed deterministically and
// summarized into a run manifest (internal/obs/ledger). CI compares the
// freshly generated ledger against the committed baseline under
// artifacts/runs/baseline/ with per-metric tolerance bands
// (internal/obs/diff), so a performance or resilience regression in any
// cell fails the build with an attribution report instead of a bare
// number.

// matrixVariants are the policies the matrix tracks: the paper's
// reference, uniform random, and the distance-skewed winner. The grid
// stays small on purpose — it is a smoke gate, not the full Fig. 9
// sweep.
var matrixVariants = []Variant{Reference, Rand, Tofu}

// matrixRanks returns the grid's rank counts per scale.
func matrixRanks(scale Scale) []int {
	switch scale {
	case Quick:
		return []int{16, 32}
	case Full:
		return []int{128, 256}
	default:
		return []int{64, 128}
	}
}

// matrixTree names the grid's workload preset per scale.
func matrixTree(scale Scale) string {
	if scale == Quick {
		return "H-TINY"
	}
	return "H-SMALL"
}

// MatrixOptions parameterizes one matrix execution.
type MatrixOptions struct {
	Scale Scale
	Seed  uint64
	// LatencyScale multiplies every network latency when > 1. It models
	// a code regression (the configuration fingerprint is unchanged —
	// only behaviour shifts), and exists so the tolerance gate can be
	// proven to fail: `make matrix-smoke PERTURB=3` must go red.
	LatencyScale int
}

// inflatedLatency scales a latency model uniformly; the deliberate
// regression behind MatrixOptions.LatencyScale.
type inflatedLatency struct {
	base topology.LatencyModel
	mul  int64
}

func (l inflatedLatency) Latency(j *topology.Job, i, k int, bytes int) sim.Duration {
	return sim.Duration(int64(l.base.Latency(j, i, k, bytes)) * l.mul)
}

// matrixCell pairs a run with its manifest identity.
type matrixCell struct {
	id   string
	tree string
	run  Run
}

// cellID derives the deterministic manifest ID for one cell.
func cellID(tree string, ranks int, variant string, chaos bool) string {
	id := fmt.Sprintf("%s-%d-%s", strings.ToLower(tree), ranks,
		strings.ReplaceAll(strings.ToLower(variant), " ", "-"))
	if chaos {
		id += "-chaos"
	}
	return id
}

// matrixParShards is the shard count of the matrix's profiled sharded
// cell: large enough for real cross-shard traffic, small enough that
// every scale's rank counts can host it.
const matrixParShards = 4

// matrixServeSpec is the serving cell's fixed two-tenant plan: a gold
// tenant under a tight token bucket (so the baseline pins nonzero
// rejections) and a best-effort silver tenant, both injecting small
// trees (E[nodes] ≈ 200, ≈200µs of serial work per job). The offered
// load is absolute, not scaled to the cell's rank count — the cell is
// a schema and determinism gate, not a saturation study.
func matrixServeSpec(scale Scale) *serve.Spec {
	tree := uts.Params{
		Type:        uts.Binomial,
		B0:          20,
		NonLeafBF:   2,
		NonLeafProb: 0.45,
		RootSeed:    31,
		Hash:        uts.HashFast,
	}
	horizon := 20 * sim.Millisecond
	if scale != Quick {
		horizon = 40 * sim.Millisecond
	}
	return &serve.Spec{
		Horizon:   horizon,
		Placement: serve.PlaceRR,
		Tenants: []serve.Tenant{
			{
				Name:    "gold",
				Arrival: serve.ArrivalSpec{Process: serve.ProcPoisson, Mean: sim.Millisecond},
				Admit:   serve.Bucket{Rate: 150, Burst: 2},
				SLO:     serve.SLO{Class: "gold", Target: 10 * sim.Millisecond},
				Work:    serve.Workload{Kind: serve.WorkUTS, Tree: tree},
			},
			{
				Name:    "silver",
				Arrival: serve.ArrivalSpec{Process: serve.ProcGamma, Mean: 6 * sim.Millisecond, Shape: 2},
				SLO:     serve.SLO{Class: "best-effort"},
				Work:    serve.Workload{Kind: serve.WorkUTS, Tree: tree},
			},
		},
	}
}

// matrixCells builds the fault-free grid in presentation order.
func matrixCells(opt MatrixOptions) []matrixCell {
	tree := matrixTree(opt.Scale)
	params := uts.MustPreset(tree).Params
	var cells []matrixCell
	for _, ranks := range matrixRanks(opt.Scale) {
		for _, v := range matrixVariants {
			id := cellID(tree, ranks, v.Name, false)
			cells = append(cells, matrixCell{
				id:   id,
				tree: tree,
				run: Run{
					Label: id, Variant: v,
					Ranks: ranks, Placement: topology.OnePerNode, Tree: params,
					NodeCost: experimentNodeCost, Trace: true, Events: true,
					Seed: opt.Seed,
				},
			})
		}
	}
	return cells
}

// RunMatrix executes the scenario grid plus one calibrated chaos cell
// and returns the manifests in cell order. The chaos plan derives from
// a dedicated fault-free, unperturbed calibration run, so it is a pure
// function of (scale, seed): a LatencyScale perturbation shifts cell
// behaviour without shifting any configuration fingerprint.
func RunMatrix(opt MatrixOptions) ([]*ledger.Manifest, error) {
	cells := matrixCells(opt)
	tree := matrixTree(opt.Scale)
	params := uts.MustPreset(tree).Params
	chaosRanks := matrixRanks(opt.Scale)[len(matrixRanks(opt.Scale))-1]

	cal, err := Execute([]Run{{
		Label: "matrix calibrate", Variant: Reference,
		Ranks: chaosRanks, Placement: topology.OnePerNode, Tree: params,
		NodeCost: experimentNodeCost, Seed: opt.Seed,
	}})
	if err != nil {
		return nil, err
	}
	plan := chaosPlan(chaosRanks, cal[0].Result.Makespan, opt.Seed)
	chaosID := cellID(tree, chaosRanks, Tofu.Name, true)
	cells = append(cells, matrixCell{
		id:   chaosID,
		tree: tree,
		run: Run{
			Label: chaosID, Variant: Tofu,
			Ranks: chaosRanks, Placement: topology.OnePerNode, Tree: params,
			NodeCost: experimentNodeCost, Trace: true, Events: true,
			Seed: opt.Seed, Faults: plan,
		},
	})

	// One sharded, window-profiled cell: its manifest carries the `par`
	// section, so the tolerance gate tracks the serialized-window share
	// (and the par schema itself round-trips through the baseline).
	parID := cellID(tree, chaosRanks, Tofu.Name, false) + fmt.Sprintf("-par%d", matrixParShards)
	cells = append(cells, matrixCell{
		id:   parID,
		tree: tree,
		run: Run{
			Label: parID, Variant: Tofu,
			Ranks: chaosRanks, Placement: topology.OnePerNode, Tree: params,
			NodeCost: experimentNodeCost, Trace: true, Events: true,
			Seed: opt.Seed, Shards: matrixParShards, ParProfile: true,
		},
	})

	// One open-system serving cell: its manifest carries the `serve`
	// section (per-tenant goodput, sojourn percentiles, admission
	// counts, Jain), so the tolerance gate tracks serving behaviour and
	// the serve schema round-trips through the baseline. The workload is
	// the spec's own small per-tenant tree, not the scale preset — job
	// size stays bounded while rank counts grow with scale.
	serveID := fmt.Sprintf("serve-%d-%s", chaosRanks, strings.ToLower(Tofu.Name))
	cells = append(cells, matrixCell{
		id:   serveID,
		tree: "SERVE",
		run: Run{
			Label: serveID, Variant: Tofu,
			Ranks: chaosRanks, Placement: topology.OnePerNode,
			NodeCost: experimentNodeCost, Trace: true, Events: true,
			Seed: opt.Seed, Serve: matrixServeSpec(opt.Scale),
		},
	})

	runs := make([]Run, len(cells))
	for i, c := range cells {
		runs[i] = c.run
		if opt.LatencyScale > 1 {
			runs[i].Latency = inflatedLatency{topology.DefaultLatency(), int64(opt.LatencyScale)}
		}
	}
	outs, err := Execute(runs)
	if err != nil {
		return nil, err
	}

	manifests := make([]*ledger.Manifest, len(outs))
	for i, o := range outs {
		spec := ledger.SpecFromConfig(cells[i].tree, opt.Scale.String(), o.Run.config())
		spec.Selector = o.Run.Variant.Name
		m := ledger.FromRun(cells[i].id, spec, o.Result)
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("harness: matrix cell %s produced an invalid manifest: %w", cells[i].id, err)
		}
		manifests[i] = m
	}
	return manifests, nil
}

// WriteMatrix writes one manifest file per cell into dir and returns
// the written paths in cell order.
func WriteMatrix(manifests []*ledger.Manifest, dir string) ([]string, error) {
	paths := make([]string, len(manifests))
	for i, m := range manifests {
		path := filepath.Join(dir, m.FileName())
		if err := m.WriteFile(path); err != nil {
			return nil, err
		}
		paths[i] = path
	}
	return paths, nil
}

// CompareBaseline gates freshly generated manifests against the
// committed baseline ledger in baselineDir. Structural mismatches —
// missing or extra cells, or a configuration fingerprint drift (the
// grid itself changed, so bands are meaningless and a rebaseline is
// required) — come back as errors; metric drifts within a known grid
// accumulate as tolerance-band violations in the returned gate.
func CompareBaseline(baselineDir string, got []*ledger.Manifest, tol diff.Tolerances) (*diff.Gate, error) {
	base, err := ledger.ReadDir(baselineDir)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(got))
	g := &diff.Gate{}
	for _, m := range got {
		b, ok := base[m.ID]
		if !ok {
			return nil, fmt.Errorf("harness: cell %q has no baseline manifest in %s (run `make matrix-baseline` and commit it)", m.ID, baselineDir)
		}
		seen[m.ID] = true
		if b.Fingerprint != m.Fingerprint {
			d := diff.Compute(b, m)
			return nil, fmt.Errorf("harness: cell %q configuration drifted from its baseline (%s; rebaseline with `make matrix-baseline`)",
				m.ID, strings.Join(d.SpecChanges, "; "))
		}
		diff.GateManifests(g, m.ID, b, m, tol)
	}
	var stale []string
	for id := range base {
		if !seen[id] {
			stale = append(stale, id)
		}
	}
	if len(stale) > 0 {
		sort.Strings(stale)
		return nil, fmt.Errorf("harness: baseline %s has cell(s) the matrix no longer produces: %s (rebaseline with `make matrix-baseline`)",
			baselineDir, strings.Join(stale, ", "))
	}
	return g, nil
}
