package harness

import (
	"fmt"

	"distws/internal/core"
	"distws/internal/metrics"
	"distws/internal/sim"
	"distws/internal/term"
	"distws/internal/topology"
	"distws/internal/uts"
	"distws/internal/victim"
)

// Ablations probe the design choices DESIGN.md calls out. They are not
// figures from the paper, but each connects to a claim in it.

func init() {
	register(Experiment{ID: "ablation-chunk", Title: "A1: chunk size sweep", Run: runAblationChunk})
	register(Experiment{ID: "ablation-poll", Title: "A2: poll interval (progress-engine granularity)", Run: runAblationPoll})
	register(Experiment{ID: "ablation-selectors", Title: "A3: all victim selectors", Run: runAblationSelectors})
	register(Experiment{ID: "ablation-term", Title: "A4: termination detectors", Run: runAblationTerm})
	register(Experiment{ID: "ablation-skew", Title: "A5: skew exponent", Run: runAblationSkew})
	register(Experiment{ID: "ablation-backoff", Title: "A6: retry backoff", Run: runAblationBackoff})
	register(Experiment{ID: "ablation-protocol", Title: "A7: one-sided vs two-sided steals", Run: runAblationProtocol})
	register(Experiment{ID: "ablation-aborts", Title: "A8: aborting steals", Run: runAblationAborts})
	register(Experiment{ID: "ablation-jitter", Title: "A9: latency jitter robustness", Run: runAblationJitter})
}

func ablationRanks(scale Scale) int {
	switch scale {
	case Quick:
		return 64
	case Full:
		return 512
	default:
		return 256
	}
}

func ablationTree(scale Scale) uts.Params {
	if scale == Quick {
		return uts.MustPreset("H-TINY").Params
	}
	return uts.MustPreset("H-SMALL").Params
}

// runAblationChunk sweeps the steal granularity. The paper keeps the
// UTS default of 20 nodes per chunk; at our scaled tree sizes the sweep
// shows the stealability cliff that motivated scaling the chunk down
// (DESIGN.md §2): large chunks leave near-critical stacks unstealable.
func runAblationChunk(scale Scale, seed uint64) (*Report, error) {
	ranks := ablationRanks(scale)
	tree := ablationTree(scale)
	chunks := []int{1, 2, 4, 8, 20, 64}
	var runs []Run
	for _, cs := range chunks {
		runs = append(runs, Run{
			Label: fmt.Sprintf("chunk=%d", cs), Variant: RandHalf,
			Ranks: ranks, Placement: topology.OnePerNode, Tree: tree,
			NodeCost: experimentNodeCost, Seed: seed, ChunkSize: cs,
		})
	}
	outs, err := Execute(runs)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "ablation-chunk",
		Title: fmt.Sprintf("A1: chunk size sweep (%d ranks, Rand Half)", ranks),
		Paper: "Olivier et al. (cited in §II-A) studied chunk size; the paper fixes 20.",
	}
	t := &Table{Title: "Chunk size vs performance", Columns: []string{"chunk", "speedup", "efficiency", "failed steals", "chunks moved"}}
	var s metrics.Series
	s.Name = "speedup"
	best, bestChunk := 0.0, 0
	var sp20, sp4 float64
	for i, o := range outs {
		r := o.Result
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", chunks[i]), fmtFloat(r.Speedup, 1), fmtFloat(r.Efficiency, 3),
			fmt.Sprintf("%d", r.FailedSteals), fmt.Sprintf("%d", r.ChunksTransferred),
		})
		s.X = append(s.X, float64(chunks[i]))
		s.Y = append(s.Y, r.Speedup)
		if r.Speedup > best {
			best, bestChunk = r.Speedup, chunks[i]
		}
		if chunks[i] == 20 {
			sp20 = r.Speedup
		}
		if chunks[i] == 4 {
			sp4 = r.Speedup
		}
	}
	rep.Tables = append(rep.Tables, t)
	rep.Plots = append(rep.Plots, metrics.ASCIIPlot("speedup vs chunk size", []metrics.Series{s}, 48, 10))
	rep.Checks = append(rep.Checks, ShapeCheck{
		Desc:   "at scaled-down tree sizes, the experiment chunk (4) outperforms the paper's chunk of 20",
		Pass:   sp4 > sp20,
		Detail: fmt.Sprintf("chunk4 %.1f vs chunk20 %.1f; best %.1f at chunk=%d", sp4, sp20, best, bestChunk),
	})
	return rep, nil
}

// runAblationPoll shows why the engine polls every node expansion:
// coarser progress engines inflate the victim-side response delay until
// latency-aware selection cannot matter.
func runAblationPoll(scale Scale, seed uint64) (*Report, error) {
	ranks := ablationRanks(scale)
	tree := ablationTree(scale)
	polls := []int{1, 5, 20, 100}
	var runs []Run
	for _, p := range polls {
		runs = append(runs, Run{
			Label: fmt.Sprintf("poll=%d", p), Variant: TofuHalf,
			Ranks: ranks, Placement: topology.OnePerNode, Tree: tree,
			NodeCost: experimentNodeCost, Seed: seed, PollInterval: p,
		})
	}
	outs, err := Execute(runs)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "ablation-poll",
		Title: fmt.Sprintf("A2: poll interval (%d ranks, Tofu Half)", ranks),
		Paper: "The reference MPI implementation makes communication progress every work-loop iteration (§II-A).",
	}
	t := &Table{Title: "Poll interval vs performance", Columns: []string{"poll (cost units)", "speedup", "mean search time (ms)"}}
	var first, last float64
	for i, o := range outs {
		r := o.Result
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", polls[i]), fmtFloat(r.Speedup, 1),
			fmtFloat(r.MeanSearchTime.Seconds()*1e3, 3),
		})
		if i == 0 {
			first = r.Speedup
		}
		last = r.Speedup
	}
	rep.Tables = append(rep.Tables, t)
	rep.Checks = append(rep.Checks, ShapeCheck{
		Desc:   "a coarser progress engine degrades performance",
		Pass:   last < first,
		Detail: fmt.Sprintf("speedup %.1f at poll=1 vs %.1f at poll=%d", first, last, polls[len(polls)-1]),
	})
	return rep, nil
}

// runAblationSelectors compares the paper's three strategies with the
// extension baselines (LastVictim, Hierarchical, Lifeline).
func runAblationSelectors(scale Scale, seed uint64) (*Report, error) {
	ranks := ablationRanks(scale)
	tree := ablationTree(scale)
	sels := []struct {
		name string
		f    victim.Factory
	}{
		{"RoundRobin", victim.NewRoundRobin},
		{"Rand", victim.NewUniformRandom},
		{"Tofu", victim.NewDistanceSkewed},
		{"LastVictim", victim.NewLastVictim},
		{"Hierarchical", victim.NewHierarchical},
		{"Lifeline", victim.NewLifeline},
	}
	var runs []Run
	for _, s := range sels {
		runs = append(runs, Run{
			Label: s.name, Variant: Variant{s.name, s.f, core.StealHalf},
			Ranks: ranks, Placement: topology.OnePerNode, Tree: tree,
			NodeCost: experimentNodeCost, Seed: seed,
		})
	}
	outs, err := Execute(runs)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "ablation-selectors",
		Title: fmt.Sprintf("A3: selector comparison (%d ranks, StealHalf, 1/N)", ranks),
		Paper: "Extends §IV with the hierarchical and lifeline baselines from the related work (§VI).",
	}
	t := &Table{Title: "Selector vs performance", Columns: []string{"selector", "speedup", "failed steals", "mean search (ms)"}}
	speed := map[string]float64{}
	for i, o := range outs {
		r := o.Result
		speed[sels[i].name] = r.Speedup
		t.Rows = append(t.Rows, []string{
			sels[i].name, fmtFloat(r.Speedup, 1), fmt.Sprintf("%d", r.FailedSteals),
			fmtFloat(r.MeanSearchTime.Seconds()*1e3, 3),
		})
	}
	rep.Tables = append(rep.Tables, t)
	if scale == Quick {
		// At toy scale the selectors are within noise of each other;
		// only sanity-check that none collapses.
		rep.Checks = append(rep.Checks, ShapeCheck{
			Desc:   "all selectors complete within 2x of each other (toy scale; see Default for the ordering)",
			Pass:   speed["Rand"] > 0.5*speed["RoundRobin"] && speed["Tofu"] > 0.5*speed["RoundRobin"],
			Detail: fmt.Sprintf("RR %.1f, Rand %.1f, Tofu %.1f", speed["RoundRobin"], speed["Rand"], speed["Tofu"]),
		})
	} else {
		rep.Checks = append(rep.Checks, ShapeCheck{
			Desc:   "every randomized selector beats the deterministic round robin",
			Pass:   speed["Rand"] > speed["RoundRobin"] && speed["Tofu"] > speed["RoundRobin"],
			Detail: fmt.Sprintf("RR %.1f, Rand %.1f, Tofu %.1f", speed["RoundRobin"], speed["Rand"], speed["Tofu"]),
		})
	}
	return rep, nil
}

// runAblationTerm compares Safra against the reference-style ring.
func runAblationTerm(scale Scale, seed uint64) (*Report, error) {
	ranks := ablationRanks(scale)
	tree := ablationTree(scale)
	dets := []struct {
		name string
		f    term.Factory
	}{{"Safra", term.NewSafra}, {"Ring", term.NewRing}}
	var runs []Run
	for _, d := range dets {
		runs = append(runs, Run{
			Label: d.name, Variant: RandHalf, Ranks: ranks,
			Placement: topology.OnePerNode, Tree: tree,
			NodeCost: experimentNodeCost, Seed: seed, Detector: d.f,
		})
	}
	outs, err := Execute(runs)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "ablation-term",
		Title: fmt.Sprintf("A4: termination detection (%d ranks, Rand Half)", ranks),
		Paper: "The reference uses a token ring (§II-A); Safra adds message counting for provable safety.",
	}
	t := &Table{Title: "Detector comparison", Columns: []string{"detector", "makespan", "token rounds", "nodes counted", "premature"}}
	var nodes []uint64
	for i, o := range outs {
		r := o.Result
		nodes = append(nodes, r.Nodes)
		t.Rows = append(t.Rows, []string{
			dets[i].name, fmtDur(r.Makespan), fmt.Sprintf("%d", r.TerminationRounds),
			fmt.Sprintf("%d", r.Nodes), fmt.Sprintf("%v", r.Premature),
		})
	}
	rep.Tables = append(rep.Tables, t)
	rep.Checks = append(rep.Checks, ShapeCheck{
		Desc:   "both detectors complete the traversal with identical node counts",
		Pass:   len(nodes) == 2 && nodes[0] == nodes[1] && !outs[0].Result.Premature,
		Detail: fmt.Sprintf("Safra %d vs Ring %d nodes", nodes[0], nodes[1]),
	})
	return rep, nil
}

// runAblationSkew sweeps the weight exponent k in w = 1/d^k; k = 0 is
// uniform random, k = 1 is the paper's choice.
func runAblationSkew(scale Scale, seed uint64) (*Report, error) {
	ranks := ablationRanks(scale)
	tree := ablationTree(scale)
	exps := []float64{0, 0.5, 1, 2, 4}
	var runs []Run
	for _, k := range exps {
		k := k
		f := func(job *topology.Job, s uint64) victim.Selector {
			return victim.NewDistanceSkewedExp(job, s, k)
		}
		runs = append(runs, Run{
			Label: fmt.Sprintf("k=%g", k), Variant: Variant{fmt.Sprintf("Tofu^%g Half", k), f, core.StealHalf},
			Ranks: ranks, Placement: topology.OnePerNode, Tree: tree,
			NodeCost: experimentNodeCost, Seed: seed,
		})
	}
	outs, err := Execute(runs)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "ablation-skew",
		Title: fmt.Sprintf("A5: skew exponent sweep (%d ranks, StealHalf, 1/N)", ranks),
		Paper: "The paper weighs victims by 1/e(i,j); the sweep shows the conclusions do not hinge on the exact exponent.",
	}
	t := &Table{Title: "Skew exponent vs performance", Columns: []string{"k", "speedup", "mean search (ms)"}}
	var speeds []float64
	for i, o := range outs {
		r := o.Result
		speeds = append(speeds, r.Speedup)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", exps[i]), fmtFloat(r.Speedup, 1),
			fmtFloat(r.MeanSearchTime.Seconds()*1e3, 3),
		})
	}
	rep.Tables = append(rep.Tables, t)
	lo, hi := speeds[0], speeds[0]
	for _, s := range speeds {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	rep.Checks = append(rep.Checks, ShapeCheck{
		Desc:   "performance is robust to the skew exponent (no pathological collapse)",
		Pass:   lo > 0.5*hi,
		Detail: fmt.Sprintf("speedups in [%.1f, %.1f]", lo, hi),
	})
	return rep, nil
}

// runAblationBackoff quantifies the effect of the retry backoff the
// large simulations use (DESIGN.md §6).
func runAblationBackoff(scale Scale, seed uint64) (*Report, error) {
	ranks := ablationRanks(scale)
	tree := ablationTree(scale)
	policies := []struct {
		name string
		b    core.Backoff
	}{
		{"disabled (reference)", core.Backoff{Threshold: -1}},
		{"default", core.DefaultBackoff},
	}
	var runs []Run
	for _, p := range policies {
		runs = append(runs, Run{
			Label: p.name, Variant: RandHalf, Ranks: ranks,
			Placement: topology.OnePerNode, Tree: tree,
			NodeCost: experimentNodeCost, Seed: seed, Backoff: p.b,
		})
	}
	outs, err := Execute(runs)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "ablation-backoff",
		Title: fmt.Sprintf("A6: retry backoff (%d ranks, Rand Half)", ranks),
		Paper: "The reference retries failed steals immediately; backoff is a simulation-cost control for very large runs.",
	}
	t := &Table{Title: "Backoff policy comparison", Columns: []string{"policy", "speedup", "failed steals", "nodes"}}
	var speeds []float64
	var nodes []uint64
	for i, o := range outs {
		r := o.Result
		speeds = append(speeds, r.Speedup)
		nodes = append(nodes, r.Nodes)
		t.Rows = append(t.Rows, []string{
			policies[i].name, fmtFloat(r.Speedup, 1),
			fmt.Sprintf("%d", r.FailedSteals), fmt.Sprintf("%d", r.Nodes),
		})
	}
	rep.Tables = append(rep.Tables, t)
	rep.Checks = append(rep.Checks,
		ShapeCheck{
			Desc:   "backoff does not change what is computed",
			Pass:   nodes[0] == nodes[1],
			Detail: fmt.Sprintf("%d vs %d nodes", nodes[0], nodes[1]),
		},
		ShapeCheck{
			Desc:   "backoff changes performance by a bounded factor",
			Pass:   speeds[1] > 0.5*speeds[0] && speeds[1] < 2*speeds[0],
			Detail: fmt.Sprintf("disabled %.1f vs default %.1f", speeds[0], speeds[1]),
		},
	)
	return rep, nil
}

// runAblationProtocol compares the paper's two-sided steal transport
// against an RDMA-style one-sided transport (the paper's §VII future
// work) for both a good and a bad victim selector.
func runAblationProtocol(scale Scale, seed uint64) (*Report, error) {
	ranks := ablationRanks(scale)
	tree := ablationTree(scale)
	entries := []struct {
		name     string
		variant  Variant
		protocol core.Protocol
	}{
		{"Reference / two-sided", Reference, core.TwoSided},
		{"Reference / one-sided", Reference, core.OneSided},
		{"Tofu Half / two-sided", TofuHalf, core.TwoSided},
		{"Tofu Half / one-sided", TofuHalf, core.OneSided},
	}
	var runs []Run
	for _, e := range entries {
		runs = append(runs, Run{
			Label: e.name, Variant: e.variant, Ranks: ranks,
			Placement: topology.OnePerNode, Tree: tree,
			NodeCost: experimentNodeCost, Seed: seed, Protocol: e.protocol,
		})
	}
	outs, err := Execute(runs)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "ablation-protocol",
		Title: fmt.Sprintf("A7: steal transport (%d ranks, 1/N)", ranks),
		Paper: "§VII suggests one-sided communication as the next optimization beyond victim selection.",
	}
	t := &Table{Title: "Transport comparison", Columns: []string{"configuration", "speedup", "mean search (ms)", "failed steals"}}
	speed := map[string]float64{}
	var nodes []uint64
	for i, o := range outs {
		r := o.Result
		speed[entries[i].name] = r.Speedup
		nodes = append(nodes, r.Nodes)
		t.Rows = append(t.Rows, []string{
			entries[i].name, fmtFloat(r.Speedup, 1),
			fmtFloat(r.MeanSearchTime.Seconds()*1e3, 3),
			fmt.Sprintf("%d", r.FailedSteals),
		})
	}
	rep.Tables = append(rep.Tables, t)
	sameNodes := true
	for _, n := range nodes[1:] {
		if n != nodes[0] {
			sameNodes = false
		}
	}
	rep.Checks = append(rep.Checks,
		ShapeCheck{
			Desc:   "both transports compute the same traversal",
			Pass:   sameNodes,
			Detail: fmt.Sprintf("node counts %v", nodes),
		},
		ShapeCheck{
			Desc: "removing the victim-interruption cost (one-sided) never hurts performance materially",
			Pass: speed["Reference / one-sided"] >= speed["Reference / two-sided"]*0.8 &&
				speed["Tofu Half / one-sided"] >= speed["Tofu Half / two-sided"]*0.8,
			Detail: fmt.Sprintf("reference %.1f -> %.1f, Tofu Half %.1f -> %.1f",
				speed["Reference / two-sided"], speed["Reference / one-sided"],
				speed["Tofu Half / two-sided"], speed["Tofu Half / one-sided"]),
		},
	)
	return rep, nil
}

// runAblationAborts measures aborting steals (Dinan et al., §VI) at
// several timeout values.
func runAblationAborts(scale Scale, seed uint64) (*Report, error) {
	ranks := ablationRanks(scale)
	tree := ablationTree(scale)
	timeouts := []sim.Duration{0, 200 * sim.Microsecond, 50 * sim.Microsecond, 10 * sim.Microsecond}
	var runs []Run
	for _, to := range timeouts {
		runs = append(runs, Run{
			Label: fmt.Sprintf("timeout=%v", to), Variant: RandHalf,
			Ranks: ranks, Placement: topology.OnePerNode, Tree: tree,
			NodeCost: experimentNodeCost, Seed: seed, StealTimeout: to,
		})
	}
	outs, err := Execute(runs)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "ablation-aborts",
		Title: fmt.Sprintf("A8: aborting steals (%d ranks, Rand Half)", ranks),
		Paper: "Dinan et al.'s aborting steals let a steal fail fast when no work is available (§VI).",
	}
	t := &Table{Title: "Abort timeout vs behaviour", Columns: []string{"timeout", "speedup", "aborted", "nodes"}}
	var nodes []uint64
	for i, o := range outs {
		r := o.Result
		nodes = append(nodes, r.Nodes)
		label := "disabled"
		if timeouts[i] > 0 {
			label = fmtDur(timeouts[i])
		}
		t.Rows = append(t.Rows, []string{
			label, fmtFloat(r.Speedup, 1),
			fmt.Sprintf("%d", r.AbortedSteals), fmt.Sprintf("%d", r.Nodes),
		})
	}
	rep.Tables = append(rep.Tables, t)
	sameNodes := true
	for _, n := range nodes[1:] {
		if n != nodes[0] {
			sameNodes = false
		}
	}
	rep.Checks = append(rep.Checks,
		ShapeCheck{
			Desc:   "aborting steals never lose work",
			Pass:   sameNodes,
			Detail: fmt.Sprintf("node counts %v", nodes),
		},
		ShapeCheck{
			Desc:   "aggressive timeouts actually abort",
			Pass:   outs[len(outs)-1].Result.AbortedSteals > 0,
			Detail: fmt.Sprintf("%d aborts at the tightest timeout", outs[len(outs)-1].Result.AbortedSteals),
		},
	)
	return rep, nil
}

// runAblationJitter re-runs the reference-vs-random comparison under
// multiplicative latency noise to show the reproduction's conclusions
// do not depend on perfectly clean latencies.
func runAblationJitter(scale Scale, seed uint64) (*Report, error) {
	ranks := ablationRanks(scale)
	tree := ablationTree(scale)
	fracs := []float64{0, 0.1, 0.3}
	var runs []Run
	for _, frac := range fracs {
		for _, v := range []Variant{Reference, RandHalf} {
			var lat topology.LatencyModel
			if frac > 0 {
				lat = topology.NewJitterLatency(topology.DefaultLatency(), frac, seed)
			}
			runs = append(runs, Run{
				Label: fmt.Sprintf("%s@%.0f%%", v.Name, frac*100), Variant: v,
				Ranks: ranks, Placement: topology.OnePerNode, Tree: tree,
				NodeCost: experimentNodeCost, Seed: seed, Latency: lat,
			})
		}
	}
	outs, err := Execute(runs)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "ablation-jitter",
		Title: fmt.Sprintf("A9: latency jitter (%d ranks, 1/N)", ranks),
		Paper: "Robustness check: the paper's orderings should survive network noise.",
	}
	t := &Table{Title: "Makespan under latency jitter", Columns: []string{"jitter", "Reference", "Rand Half", "Rand Half wins"}}
	ok := true
	for i, frac := range fracs {
		ref := outs[2*i].Result
		rnd := outs[2*i+1].Result
		wins := rnd.Makespan < ref.Makespan
		if scale != Quick && !wins {
			ok = false
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("±%.0f%%", frac*100), fmtDur(ref.Makespan), fmtDur(rnd.Makespan),
			fmt.Sprintf("%v", wins),
		})
	}
	rep.Tables = append(rep.Tables, t)
	if scale == Quick {
		rep.Checks = append(rep.Checks, ShapeCheck{
			Desc:   "jittered runs complete correctly (ordering checked at default scale)",
			Pass:   true,
			Detail: "toy scale",
		})
	} else {
		rep.Checks = append(rep.Checks, ShapeCheck{
			Desc:   "random selection beats the reference at every jitter level",
			Pass:   ok,
			Detail: fmt.Sprintf("jitter levels %v", fracs),
		})
	}
	return rep, nil
}
