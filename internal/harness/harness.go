// Package harness defines the reproduction experiments: one runnable
// experiment per table and figure of the paper, plus ablations. Each
// experiment builds a set of simulator configurations, runs them (in
// parallel across host CPUs — every simulation itself is
// deterministic and single-threaded), and renders a report with the
// same rows or series the paper presents, together with machine-checked
// "shape checks" asserting the paper's qualitative findings.
package harness

import (
	"fmt"
	"sort"
	"strings"
)

// Scale selects experiment fidelity. Scaled-down rank counts and trees
// keep the default reproduction runnable in minutes; Full approaches
// the paper's scales where affordable.
type Scale int

const (
	// Quick is for tests and smoke runs: small trees, few ranks.
	Quick Scale = iota
	// Default regenerates every figure at 1/8 of the paper's rank
	// counts in minutes.
	Default
	// Full pushes to 2048+ simulated ranks with ~40M-node trees; expect
	// tens of minutes.
	Full
)

func (s Scale) String() string {
	switch s {
	case Quick:
		return "quick"
	case Default:
		return "default"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// ParseScale converts a flag value to a Scale.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "quick":
		return Quick, nil
	case "default", "":
		return Default, nil
	case "full":
		return Full, nil
	default:
		return 0, fmt.Errorf("harness: unknown scale %q (quick|default|full)", s)
	}
}

// ShapeCheck is one machine-verified qualitative finding.
type ShapeCheck struct {
	// Desc states the paper's claim being checked.
	Desc string
	// Pass reports whether this run's data supports it.
	Pass bool
	// Detail quantifies the observation.
	Detail string
}

// Table is a formatted result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Render aligns the table into a string.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Report is the outcome of one experiment.
type Report struct {
	ID    string
	Title string
	// Paper summarizes what the paper's corresponding figure shows.
	Paper  string
	Tables []*Table
	// Plots holds ASCII renderings of the figure's series.
	Plots []string
	// Checks are the verified qualitative findings.
	Checks []ShapeCheck
	// Notes records scaling decisions or caveats for this run.
	Notes []string
}

// Passed reports whether all shape checks succeeded.
func (r *Report) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Render formats the full report.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	if r.Paper != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.Paper)
	}
	b.WriteByte('\n')
	for _, t := range r.Tables {
		b.WriteString(t.Render())
		b.WriteByte('\n')
	}
	for _, p := range r.Plots {
		b.WriteString(p)
		b.WriteByte('\n')
	}
	if len(r.Checks) > 0 {
		b.WriteString("shape checks:\n")
		for _, c := range r.Checks {
			mark := "PASS"
			if !c.Pass {
				mark = "FAIL"
			}
			fmt.Fprintf(&b, "  [%s] %s", mark, c.Desc)
			if c.Detail != "" {
				fmt.Fprintf(&b, " (%s)", c.Detail)
			}
			b.WriteByte('\n')
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	// Run executes the experiment at the given scale with the given
	// base seed.
	Run func(scale Scale, seed uint64) (*Report, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("harness: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Lookup returns a registered experiment.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs returns all experiment IDs, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
