package harness

import (
	"fmt"

	"distws/internal/serve"
	"distws/internal/sim"
	"distws/internal/topology"
	"distws/internal/uts"
)

// The serving experiment exercises the open-system layer
// (internal/serve): jobs arrive continuously from two tenants, and the
// sweep pushes the gold tenant's arrival rate through the cluster's
// service capacity for three victim selectors, tabulating the
// saturation knee — goodput tracks the offered rate while the cluster
// keeps up, then flattens (and the sojourn tail explodes) once the
// offered load crosses capacity.

func init() {
	register(Experiment{ID: "serving", Title: "S1: open-system serving saturation (goodput vs arrival rate)", Run: runServing})
}

// servingJobTree is the per-job workload of the serving sweep: a
// binomial tree with E[nodes] = B0/(1-BF*p) = 200/0.12 ≈ 1667, i.e.
// ≈1.7ms of serial work at the experiments' 1µs node cost. Compile
// varies RootSeed per job, so consecutive jobs are distinct members of
// this family.
func servingJobTree() uts.Params {
	return uts.Params{
		Type:        uts.Binomial,
		B0:          200,
		NonLeafBF:   4,
		NonLeafProb: 0.22,
		RootSeed:    42,
		Hash:        uts.HashFast,
	}
}

// servingJobCost is the expected serial cost of one servingJobTree job
// (E[nodes] × experimentNodeCost), the unit the sweep's load factors
// are expressed in.
const servingJobCost = 1667 * sim.Microsecond

func servingRanks(scale Scale) int {
	switch scale {
	case Quick:
		return 8
	case Full:
		return 32
	default:
		return 16
	}
}

func servingHorizon(scale Scale) sim.Duration {
	switch scale {
	case Quick:
		return 20 * sim.Millisecond
	case Full:
		return 80 * sim.Millisecond
	default:
		return 40 * sim.Millisecond
	}
}

// servingLoads are the gold tenant's offered-load factors ρ =
// offered/capacity; the knee sits at ρ ≈ 1.
func servingLoads(scale Scale) []float64 {
	if scale == Full {
		return []float64{0.25, 0.5, 1, 2, 4}
	}
	return []float64{0.25, 0.5, 1, 2}
}

// servingSpec builds the two-tenant spec for one sweep point: the gold
// tenant offers ρ × capacity under a token bucket and a latency SLO,
// and a fixed best-effort silver tenant supplies light background load
// so fairness (Jain) is measured over a real mix.
func servingSpec(scale Scale, rho float64) *serve.Spec {
	ranks := servingRanks(scale)
	horizon := servingHorizon(scale)
	// capacity = ranks/jobCost jobs per second; offered = ρ × capacity,
	// so the mean inter-arrival time is jobCost/(ranks × ρ).
	mean := sim.Duration(float64(servingJobCost) / (float64(ranks) * rho))
	capacityPerSec := float64(ranks) * float64(sim.Second) / float64(servingJobCost)
	return &serve.Spec{
		Horizon:   horizon,
		Placement: serve.PlaceRR,
		Tenants: []serve.Tenant{
			{
				Name:    "gold",
				Arrival: serve.ArrivalSpec{Process: serve.ProcPoisson, Mean: mean},
				// The bucket sits above capacity: admission is not the
				// bottleneck below the knee, but it sheds part of the
				// overload at ρ ≥ 2 instead of letting the queue grow
				// without bound.
				Admit: serve.Bucket{Rate: 1.5 * capacityPerSec, Burst: 4},
				SLO:   serve.SLO{Class: "gold", Target: 5 * sim.Millisecond},
				Work:  serve.Workload{Kind: serve.WorkUTS, Tree: servingJobTree()},
			},
			{
				Name:    "silver",
				Arrival: serve.ArrivalSpec{Process: serve.ProcGamma, Mean: horizon / 16, Shape: 2},
				SLO:     serve.SLO{Class: "best-effort"},
				Work:    serve.Workload{Kind: serve.WorkUTS, Tree: servingJobTree()},
			},
		},
	}
}

func runServing(scale Scale, seed uint64) (*Report, error) {
	ranks := servingRanks(scale)
	loads := servingLoads(scale)
	selectors := []Variant{Reference, Rand, Tofu}

	rep := &Report{
		ID:    "serving",
		Title: fmt.Sprintf("S1: open-system serving saturation (%d ranks, horizon %v)", ranks, servingHorizon(scale)),
		Paper: "extension: the paper studies one closed batch; here jobs arrive continuously and victim selection meets queueing.",
	}
	capacityPerSec := float64(ranks) * float64(sim.Second) / float64(servingJobCost)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"job: E[%v] serial work; service capacity ≈ %.0f jobs/s at %d ranks; gold SLO 5ms under a 1.5×-capacity token bucket",
		servingJobCost, capacityPerSec, ranks))

	// One grid, executed in parallel: selectors share the seed, so for a
	// fixed load every selector faces the byte-identical arrival,
	// admission and placement schedule.
	var runs []Run
	for _, rho := range loads {
		for _, v := range selectors {
			runs = append(runs, Run{
				Label:     fmt.Sprintf("serving rho=%.2f %s", rho, v.Name),
				Variant:   v,
				Ranks:     ranks,
				Placement: topology.OnePerNode,
				NodeCost:  experimentNodeCost,
				Seed:      seed,
				Serve:     servingSpec(scale, rho),
			})
		}
	}
	outs, err := Execute(runs)
	if err != nil {
		return nil, err
	}

	knee := &Table{
		Title:   "Gold goodput and p95 sojourn vs offered load (the saturation knee)",
		Columns: []string{"load ρ", "offered/s"},
	}
	for _, v := range selectors {
		knee.Columns = append(knee.Columns, v.Name+" goodput/s", v.Name+" p95")
	}

	// gold[selector][load index] = gold-tenant stats for the knee checks.
	gold := make(map[string][]serve.TenantStats, len(selectors))
	for li, rho := range loads {
		row := []string{fmtFloat(rho, 2), fmtFloat(rho*capacityPerSec, 0)}
		for vi, v := range selectors {
			st := outs[li*len(selectors)+vi].Result.Serve
			if st == nil {
				return nil, fmt.Errorf("harness: serving run %q returned no serving stats", runs[li*len(selectors)+vi].Label)
			}
			if st.Admitted+st.Rejected != st.Arrived || st.Done != st.Admitted {
				return nil, fmt.Errorf("harness: serving run %q books %d arrived, %d admitted, %d rejected, %d done",
					runs[li*len(selectors)+vi].Label, st.Arrived, st.Admitted, st.Rejected, st.Done)
			}
			g := st.Tenants[0]
			gold[v.Name] = append(gold[v.Name], g)
			row = append(row, fmtFloat(g.GoodputPerSec, 0), fmtDur(g.SojournP95))
		}
		knee.Rows = append(knee.Rows, row)
	}
	rep.Tables = append(rep.Tables, knee)

	// Per-tenant breakdown at the knee (ρ = 1) for the winning selector.
	kneeIdx := 0
	for i, rho := range loads {
		if rho == 1 {
			kneeIdx = i
		}
	}
	tenants := &Table{
		Title:   fmt.Sprintf("Per-tenant outcome at ρ=%.2f (Tofu)", loads[kneeIdx]),
		Columns: []string{"tenant", "class", "arrived", "admitted", "rejected", "done", "SLO met", "goodput/s", "p50", "p95", "p99"},
	}
	kneeStats := outs[kneeIdx*len(selectors)+2].Result.Serve
	for _, ts := range kneeStats.Tenants {
		tenants.Rows = append(tenants.Rows, []string{
			ts.Name, ts.Class,
			fmt.Sprintf("%d", ts.Arrived), fmt.Sprintf("%d", ts.Admitted),
			fmt.Sprintf("%d", ts.Rejected), fmt.Sprintf("%d", ts.Done),
			fmt.Sprintf("%d", ts.SLOMet), fmtFloat(ts.GoodputPerSec, 0),
			fmtDur(ts.SojournP50), fmtDur(ts.SojournP95), fmtDur(ts.SojournP99),
		})
	}
	rep.Tables = append(rep.Tables, tenants)
	rep.Notes = append(rep.Notes, fmt.Sprintf("Jain fairness at ρ=%.2f (Tofu): %s",
		loads[kneeIdx], fmtFloat(kneeStats.Jain, 3)))

	// Shape checks. The admission identity and full drain were already
	// enforced as hard errors above; the checks below pin the queueing
	// story.
	first, last := loads[0], loads[len(loads)-1]
	offeredRatio := last / first
	for _, v := range selectors {
		g := gold[v.Name]
		lo, hi := g[0], g[len(g)-1]
		gain := 0.0
		if lo.GoodputPerSec > 0 {
			gain = hi.GoodputPerSec / lo.GoodputPerSec
		}
		rep.Checks = append(rep.Checks, ShapeCheck{
			Desc: fmt.Sprintf("%s: goodput saturates past the knee (sublinear in offered load)", v.Name),
			Pass: lo.GoodputPerSec > 0 && gain < offeredRatio,
			Detail: fmt.Sprintf("offered ×%.0f, goodput ×%.2f (%.0f/s → %.0f/s)",
				offeredRatio, gain, lo.GoodputPerSec, hi.GoodputPerSec),
		})
		rep.Checks = append(rep.Checks, ShapeCheck{
			Desc: fmt.Sprintf("%s: overload inflates the sojourn tail", v.Name),
			Pass: hi.SojournP95 > lo.SojournP95,
			Detail: fmt.Sprintf("p95 %v at ρ=%.2f vs %v at ρ=%.2f",
				lo.SojournP95, first, hi.SojournP95, last),
		})
	}
	return rep, nil
}
