package harness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// jsonReport is the machine-readable form of a Report.
type jsonReport struct {
	ID     string       `json:"id"`
	Title  string       `json:"title"`
	Paper  string       `json:"paper,omitempty"`
	Tables []jsonTable  `json:"tables,omitempty"`
	Checks []ShapeCheck `json:"checks,omitempty"`
	Notes  []string     `json:"notes,omitempty"`
	Passed bool         `json:"passed"`
}

type jsonTable struct {
	Title   string     `json:"title,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// WriteJSON serializes the report (without the ASCII plots) as a single
// JSON object, for downstream plotting or regression tracking.
func (r *Report) WriteJSON(w io.Writer) error {
	out := jsonReport{
		ID: r.ID, Title: r.Title, Paper: r.Paper,
		Checks: r.Checks, Notes: r.Notes, Passed: r.Passed(),
	}
	for _, t := range r.Tables {
		out.Tables = append(out.Tables, jsonTable{Title: t.Title, Columns: t.Columns, Rows: t.Rows})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteCSV emits every table of the report as CSV sections separated by
// blank lines, with a leading comment line naming the table. Cells are
// quoted minimally (values here never contain quotes).
func (r *Report) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, t := range r.Tables {
		if i > 0 {
			fmt.Fprintln(bw)
		}
		fmt.Fprintf(bw, "# %s: %s\n", r.ID, t.Title)
		writeCSVRow(bw, t.Columns)
		for _, row := range t.Rows {
			writeCSVRow(bw, row)
		}
	}
	return bw.Flush()
}

// DumpTraces writes every traced outcome as JSONL under dir (created
// if absent), one file per run named after its label and rank count.
// Outcomes without a trace are skipped. Returns the written paths, in
// outcome order, so callers can hand them to tracetool or attach them
// as CI artifacts.
func DumpTraces(outcomes []Outcome, dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for i, o := range outcomes {
		if o.Result == nil || o.Result.Trace == nil {
			continue
		}
		name := fmt.Sprintf("%02d-%s-%d.jsonl", i, slug(o.Run.Label, o.Run.Variant.Name), o.Run.Ranks)
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return paths, err
		}
		if err := o.Result.Trace.WriteJSONL(f); err != nil {
			f.Close()
			return paths, fmt.Errorf("harness: dumping trace %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return paths, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// slug builds a filesystem-safe name fragment from run labels.
func slug(parts ...string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.Join(parts, " ")) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case b.Len() > 0 && b.String()[b.Len()-1] != '-':
			b.WriteByte('-')
		}
	}
	return strings.Trim(b.String(), "-")
}

func writeCSVRow(w io.Writer, cells []string) {
	quoted := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		quoted[i] = c
	}
	fmt.Fprintln(w, strings.Join(quoted, ","))
}
