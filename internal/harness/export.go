package harness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// jsonReport is the machine-readable form of a Report.
type jsonReport struct {
	ID     string       `json:"id"`
	Title  string       `json:"title"`
	Paper  string       `json:"paper,omitempty"`
	Tables []jsonTable  `json:"tables,omitempty"`
	Checks []ShapeCheck `json:"checks,omitempty"`
	Notes  []string     `json:"notes,omitempty"`
	Passed bool         `json:"passed"`
}

type jsonTable struct {
	Title   string     `json:"title,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// WriteJSON serializes the report (without the ASCII plots) as a single
// JSON object, for downstream plotting or regression tracking.
func (r *Report) WriteJSON(w io.Writer) error {
	out := jsonReport{
		ID: r.ID, Title: r.Title, Paper: r.Paper,
		Checks: r.Checks, Notes: r.Notes, Passed: r.Passed(),
	}
	for _, t := range r.Tables {
		out.Tables = append(out.Tables, jsonTable{Title: t.Title, Columns: t.Columns, Rows: t.Rows})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteCSV emits every table of the report as CSV sections separated by
// blank lines, with a leading comment line naming the table. Cells are
// quoted minimally (values here never contain quotes).
func (r *Report) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, t := range r.Tables {
		if i > 0 {
			fmt.Fprintln(bw)
		}
		fmt.Fprintf(bw, "# %s: %s\n", r.ID, t.Title)
		writeCSVRow(bw, t.Columns)
		for _, row := range t.Rows {
			writeCSVRow(bw, row)
		}
	}
	return bw.Flush()
}

func writeCSVRow(w io.Writer, cells []string) {
	quoted := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		quoted[i] = c
	}
	fmt.Fprintln(w, strings.Join(quoted, ","))
}
