package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"distws/internal/obs/diff"
	"distws/internal/obs/ledger"
)

// matrixOpts is the quick-scale matrix every test runs.
func matrixOpts() MatrixOptions { return MatrixOptions{Scale: Quick, Seed: 12345} }

// TestMatrixDeterministic: two executions of the same matrix produce
// byte-identical manifest files — the property that makes the committed
// baseline ledger meaningful.
func TestMatrixDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run in -short mode")
	}
	run := func() [][]byte {
		ms, err := RunMatrix(matrixOpts())
		if err != nil {
			t.Fatal(err)
		}
		encs := make([][]byte, len(ms))
		for i, m := range ms {
			data, err := m.Encode()
			if err != nil {
				t.Fatal(err)
			}
			encs[i] = data
		}
		return encs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("cell counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Errorf("cell %d manifest is not deterministic", i)
		}
	}
}

// TestMatrixGatesItself: a matrix written as its own baseline passes
// the default tolerance policy exactly, and the grid covers every
// variant, both rank counts, and the chaos cell.
func TestMatrixGatesItself(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run in -short mode")
	}
	ms, err := RunMatrix(matrixOpts())
	if err != nil {
		t.Fatal(err)
	}

	// Fault-free grid + the chaos, sharded-profiled, and serving cells.
	wantCells := len(matrixRanks(Quick))*len(matrixVariants) + 3
	if len(ms) != wantCells {
		t.Fatalf("matrix produced %d cells, want %d", len(ms), wantCells)
	}
	ids := make(map[string]bool, len(ms))
	for _, m := range ms {
		ids[m.ID] = true
	}
	for _, want := range []string{"h-tiny-16-reference", "h-tiny-32-rand", "h-tiny-32-tofu-chaos", "h-tiny-32-tofu-par4", "serve-32-tofu"} {
		if !ids[want] {
			t.Errorf("matrix is missing cell %q (have %v)", want, ids)
		}
	}
	chaos := ms[len(ms)-3]
	if chaos.Spec.FaultPlanHash == "" {
		t.Error("chaos cell has no fault plan hash")
	}
	if chaos.Result.LostNodes == 0 && chaos.Result.CrashedRanks == 0 {
		t.Error("chaos cell shows no fault effects")
	}
	par := ms[len(ms)-2]
	if par.Par == nil {
		t.Fatal("par cell has no parallel-kernel profile")
	}
	if par.Spec.Shards != matrixParShards || par.Par.Shards != matrixParShards {
		t.Errorf("par cell shards: spec %d, profile %d, want %d",
			par.Spec.Shards, par.Par.Shards, matrixParShards)
	}
	if par.Par.Windows == 0 || par.Par.Staged == 0 {
		t.Errorf("par cell profile is empty: %+v", par.Par)
	}
	sv := ms[len(ms)-1]
	if sv.Serve == nil {
		t.Fatal("serving cell has no serve section")
	}
	if sv.Spec.ServeHash == "" {
		t.Error("serving cell has no serve spec hash")
	}
	if sv.Serve.Admitted+sv.Serve.Rejected != sv.Serve.Arrived || sv.Serve.Done != sv.Serve.Admitted {
		t.Errorf("serving cell books %d arrived, %d admitted, %d rejected, %d done",
			sv.Serve.Arrived, sv.Serve.Admitted, sv.Serve.Rejected, sv.Serve.Done)
	}
	if sv.Serve.Rejected == 0 {
		t.Error("serving cell's token bucket rejected nothing; the baseline would not pin admission control")
	}
	if len(sv.Serve.Tenants) != 2 {
		t.Errorf("serving cell has %d tenant rows, want 2", len(sv.Serve.Tenants))
	}

	dir := t.TempDir()
	if _, err := WriteMatrix(ms, dir); err != nil {
		t.Fatal(err)
	}
	gate, err := CompareBaseline(dir, ms, diff.DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if !gate.OK() {
		var buf bytes.Buffer
		gate.Report(&buf)
		t.Fatalf("matrix fails its own baseline:\n%s", buf.String())
	}
	if gate.Checked == 0 {
		t.Fatal("gate checked no metrics")
	}
}

// TestMatrixGateFailsUnderPerturbation is the acceptance check: a
// seeded latency inflation — behaviour drift with an unchanged
// configuration fingerprint — must push cells outside their tolerance
// bands against a clean baseline.
func TestMatrixGateFailsUnderPerturbation(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run in -short mode")
	}
	clean, err := RunMatrix(matrixOpts())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := WriteMatrix(clean, dir); err != nil {
		t.Fatal(err)
	}

	opt := matrixOpts()
	opt.LatencyScale = 3
	perturbed, err := RunMatrix(opt)
	if err != nil {
		t.Fatal(err)
	}
	gate, err := CompareBaseline(dir, perturbed, diff.DefaultTolerances())
	if err != nil {
		t.Fatalf("perturbation must trip bands, not structural errors: %v", err)
	}
	if gate.OK() {
		t.Fatal("3x latency inflation stayed inside every tolerance band")
	}
	var buf bytes.Buffer
	if err := gate.Report(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "OUT OF BAND") {
		t.Errorf("gate report does not flag the violation:\n%s", buf.String())
	}
}

// TestMatrixPinsCommittedBaseline regenerates the quick matrix with the
// committed seed and requires every cell's manifest to be byte-identical
// to the golden ledger under artifacts/runs/baseline/. This is stricter
// than the band gate on purpose: it proves that growing the grid (the
// serving cell rode in this way) leaves every pre-existing baseline
// file untouched, and that the ledger is reproducible from a clean
// checkout. A deliberate behaviour change rebaselines with
// `make matrix-baseline` and commits the diff.
func TestMatrixPinsCommittedBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run in -short mode")
	}
	const dir = "../../artifacts/runs/baseline"
	ms, err := RunMatrix(matrixOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		want, err := os.ReadFile(filepath.Join(dir, m.FileName()))
		if err != nil {
			t.Errorf("cell %s: no committed baseline (%v); run `make matrix-baseline` and commit it", m.ID, err)
			continue
		}
		got, err := m.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("cell %s: manifest drifted from the committed baseline (rebaseline with `make matrix-baseline` if deliberate)", m.ID)
		}
	}
	// And the other direction: the committed ledger holds nothing the
	// matrix no longer produces.
	base, err := ledger.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(ms) {
		t.Errorf("baseline has %d manifests, matrix produces %d", len(base), len(ms))
	}
}

// TestCompareBaselineStructuralErrors: missing cells, stale cells, and
// fingerprint drift are rebaseline conditions, not band violations.
func TestCompareBaselineStructuralErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run in -short mode")
	}
	ms, err := RunMatrix(matrixOpts())
	if err != nil {
		t.Fatal(err)
	}
	tol := diff.DefaultTolerances()

	// Missing baseline cell.
	dir := t.TempDir()
	if _, err := WriteMatrix(ms[:len(ms)-1], dir); err != nil {
		t.Fatal(err)
	}
	if _, err := CompareBaseline(dir, ms, tol); err == nil ||
		!strings.Contains(err.Error(), "no baseline manifest") {
		t.Errorf("missing baseline cell: err = %v", err)
	}

	// Stale baseline cell the matrix no longer produces.
	dir = t.TempDir()
	if _, err := WriteMatrix(ms, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := CompareBaseline(dir, ms[:len(ms)-1], tol); err == nil ||
		!strings.Contains(err.Error(), "no longer produces") {
		t.Errorf("stale baseline cell: err = %v", err)
	}

	// Fingerprint drift: same cell ID, different configuration.
	drifted := make([]*ledger.Manifest, len(ms))
	copy(drifted, ms)
	clone := *ms[0]
	clone.Spec.Seed++
	clone.Fingerprint = clone.Spec.Fingerprint()
	drifted[0] = &clone
	if _, err := CompareBaseline(dir, drifted, tol); err == nil ||
		!strings.Contains(err.Error(), "configuration drifted") {
		t.Errorf("fingerprint drift: err = %v", err)
	}
}
