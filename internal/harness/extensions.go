package harness

import (
	"fmt"

	"distws/internal/dag"
	"distws/internal/dagws"
	"distws/internal/sim"
	"distws/internal/topology"
	"distws/internal/victim"
)

// Extension experiments realize the paper's §VII future work.

func init() {
	register(Experiment{ID: "ext-dag", Title: "E1: work stealing with data dependencies (paper §VII)", Run: runExtDAG})
}

func dagWorkload(scale Scale, seed uint64, dataMean int) (*dag.Graph, error) {
	p := dag.Params{
		Seed: seed, Layers: 40, WidthMean: 24, EdgesPerTask: 2,
		LocalityWindow: 2, CostMean: 20 * sim.Microsecond, DataMean: dataMean,
	}
	if scale == Quick {
		p.Layers, p.WidthMean = 16, 8
	}
	if scale == Full {
		p.Layers, p.WidthMean = 64, 48
	}
	return dag.Generate(p)
}

func runExtDAG(scale Scale, seed uint64) (*Report, error) {
	ranks := ablationRanks(scale) / 2
	if ranks < 8 {
		ranks = 8
	}
	rep := &Report{
		ID:    "ext-dag",
		Title: fmt.Sprintf("E1: DAG scheduling with dependencies (%d ranks, 1/N)", ranks),
		Paper: "§VII: with data dependencies, stealing triggers communications, so bandwidth and victim locality matter.",
	}

	// Part 1: selector comparison on a data-heavy graph.
	g, err := dagWorkload(scale, seed, 256<<10)
	if err != nil {
		return nil, err
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"graph: %d tasks, total cost %v, critical path %v, %d MiB of edge data",
		g.Len(), g.TotalCost, g.CriticalPath(), g.TotalBytes>>20))

	sels := []struct {
		name string
		f    victim.Factory
	}{
		{"RoundRobin", victim.NewRoundRobin},
		{"Rand", victim.NewUniformRandom},
		{"Tofu", victim.NewDistanceSkewed},
	}
	t1 := &Table{
		Title:   "Victim selection on a data-heavy DAG (steal half)",
		Columns: []string{"selector", "makespan", "speedup", "GiB fetched", "fetch stall", "tasks stolen"},
	}
	speed := map[string]float64{}
	bytes := map[string]float64{}
	for _, s := range sels {
		res, err := dagws.Run(dagws.Config{
			Graph: g, Ranks: ranks, Placement: topology.OnePerNode,
			Selector: s.f, StealHalf: true, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		speed[s.name] = res.Speedup
		bytes[s.name] = float64(res.BytesFetched)
		t1.Rows = append(t1.Rows, []string{
			s.name, fmtDur(res.Makespan), fmtFloat(res.Speedup, 1),
			fmtFloat(float64(res.BytesFetched)/(1<<30), 2),
			fmtDur(res.FetchTime), fmt.Sprintf("%d", res.TasksStolen),
		})
	}
	rep.Tables = append(rep.Tables, t1)

	// Part 2: bandwidth sensitivity — sweep the edge-data size with the
	// uniform selector to show the §VII prediction directly.
	t2 := &Table{
		Title:   "Bandwidth sensitivity (Rand, steal half)",
		Columns: []string{"edge data (KiB)", "makespan", "speedup", "fetch stall"},
	}
	var firstSpeed, lastSpeed float64
	sizes := []int{1 << 10, 64 << 10, 512 << 10}
	if scale != Quick {
		sizes = []int{1 << 10, 64 << 10, 256 << 10, 1 << 20}
	}
	for i, size := range sizes {
		gs, err := dagWorkload(scale, seed, size)
		if err != nil {
			return nil, err
		}
		res, err := dagws.Run(dagws.Config{
			Graph: gs, Ranks: ranks, Placement: topology.OnePerNode,
			Selector: victim.NewUniformRandom, StealHalf: true, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		if i == 0 {
			firstSpeed = res.Speedup
		}
		lastSpeed = res.Speedup
		t2.Rows = append(t2.Rows, []string{
			fmt.Sprintf("%d", size>>10), fmtDur(res.Makespan),
			fmtFloat(res.Speedup, 1), fmtDur(res.FetchTime),
		})
	}
	rep.Tables = append(rep.Tables, t2)

	rep.Checks = append(rep.Checks,
		ShapeCheck{
			Desc:   "locality-aware selection does not move more data than uniform selection",
			Pass:   bytes["Tofu"] <= bytes["Rand"]*1.1,
			Detail: fmt.Sprintf("Tofu %.2f GiB vs Rand %.2f GiB", bytes["Tofu"]/(1<<30), bytes["Rand"]/(1<<30)),
		},
		ShapeCheck{
			Desc:   "growing edge data degrades performance (the paper's bandwidth-sensitivity prediction)",
			Pass:   lastSpeed < firstSpeed,
			Detail: fmt.Sprintf("speedup %.1f at %dKiB vs %.1f at %dKiB", firstSpeed, sizes[0]>>10, lastSpeed, sizes[len(sizes)-1]>>10),
		},
	)
	return rep, nil
}
