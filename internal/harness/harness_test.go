package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"distws/internal/core"
	"distws/internal/trace"
)

func TestScaleParsing(t *testing.T) {
	cases := map[string]Scale{
		"quick": Quick, "default": Default, "": Default, "full": Full,
		"QUICK": Quick, "Full": Full,
	}
	for in, want := range cases {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Fatalf("ParseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScale("bogus"); err == nil {
		t.Fatal("bogus scale accepted")
	}
	for _, s := range []Scale{Quick, Default, Full} {
		if s.String() == "" || strings.HasPrefix(s.String(), "Scale(") {
			t.Fatalf("Scale %d has no name", s)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1",
		"fig02", "fig03", "fig04", "fig05", "fig06", "fig07", "fig08",
		"fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"ablation-chunk", "ablation-poll", "ablation-selectors",
		"ablation-term", "ablation-skew", "ablation-backoff",
		"ablation-protocol", "ablation-aborts", "ablation-jitter", "ext-dag",
		"blame", "chaos", "serving",
	}
	for _, id := range want {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		if e.ID != id || e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %q malformed: %+v", id, e)
		}
	}
	if len(IDs()) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(IDs()), len(want), IDs())
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	out := tab.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "long-column") {
		t.Fatalf("render missing parts:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestReportRenderAndPassed(t *testing.T) {
	rep := &Report{
		ID: "x", Title: "t", Paper: "p",
		Checks: []ShapeCheck{{Desc: "good", Pass: true}, {Desc: "bad", Pass: false, Detail: "d"}},
		Notes:  []string{"n"},
	}
	out := rep.Render()
	for _, want := range []string{"== x — t ==", "[PASS] good", "[FAIL] bad (d)", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if rep.Passed() {
		t.Fatal("Passed with a failing check")
	}
	rep.Checks = rep.Checks[:1]
	if !rep.Passed() {
		t.Fatal("not Passed with all checks green")
	}
}

// TestQuickExperiments runs every registered experiment at Quick scale
// and requires every shape check to pass. This is the repository's
// end-to-end smoke of the full reproduction pipeline.
func TestQuickExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take ~a minute")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			e, _ := Lookup(id)
			rep, err := e.Run(Quick, 12345)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if rep.ID != id {
				t.Fatalf("report ID %q for experiment %q", rep.ID, id)
			}
			if len(rep.Tables) == 0 && len(rep.Plots) == 0 {
				t.Fatalf("%s: empty report", id)
			}
			out := rep.Render()
			if len(out) < 50 {
				t.Fatalf("%s: suspiciously short report:\n%s", id, out)
			}
			for _, c := range rep.Checks {
				if !c.Pass {
					t.Errorf("%s: shape check failed: %s (%s)", id, c.Desc, c.Detail)
				}
			}
		})
	}
}

func TestExecutePropagatesErrors(t *testing.T) {
	// An invalid run (zero ranks) must surface as an error.
	_, err := Execute([]Run{{Variant: Reference, Ranks: 0}})
	if err == nil {
		t.Fatal("invalid run did not error")
	}
}

func TestExecuteOrdersResults(t *testing.T) {
	tree := fig2Tree(Quick)
	runs := []Run{
		{Variant: Reference, Ranks: 4, Tree: tree, NodeCost: experimentNodeCost, Seed: 1},
		{Variant: Rand, Ranks: 8, Tree: tree, NodeCost: experimentNodeCost, Seed: 1},
	}
	outs, err := Execute(runs)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Result.Ranks != 4 || outs[1].Result.Ranks != 8 {
		t.Fatal("results out of order")
	}
	if outs[0].Run.Variant.Name != "Reference" {
		t.Fatal("run echo wrong")
	}
}

func TestReportJSONExport(t *testing.T) {
	rep := &Report{
		ID: "fig99", Title: "demo", Paper: "p",
		Tables: []*Table{{Title: "t", Columns: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}},
		Checks: []ShapeCheck{{Desc: "d", Pass: true, Detail: "x"}},
		Notes:  []string{"n"},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if back["id"] != "fig99" || back["passed"] != true {
		t.Fatalf("round trip: %v", back)
	}
	tables := back["tables"].([]any)
	if len(tables) != 1 {
		t.Fatalf("tables: %v", tables)
	}
}

func TestReportCSVExport(t *testing.T) {
	rep := &Report{
		ID: "fig98",
		Tables: []*Table{
			{Title: "one", Columns: []string{"x", "y"}, Rows: [][]string{{"1", "a,b"}, {"2", `say "hi"`}}},
			{Title: "two", Columns: []string{"z"}, Rows: [][]string{{"3"}}},
		},
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# fig98: one") || !strings.Contains(out, "# fig98: two") {
		t.Fatalf("missing table headers:\n%s", out)
	}
	if !strings.Contains(out, `1,"a,b"`) {
		t.Fatalf("comma cell not quoted:\n%s", out)
	}
	if !strings.Contains(out, `"say ""hi"""`) {
		t.Fatalf("quote cell not escaped:\n%s", out)
	}
}

func TestTreeNameResolvesPresets(t *testing.T) {
	if got := treeName(fig2Tree(Default)); got != "H-EVEN" {
		t.Fatalf("fig2 default tree name %q", got)
	}
	if got := treeName(sweepTree(Default)); got != "H-SWEEP" {
		t.Fatalf("sweep default tree name %q", got)
	}
	custom := sweepTree(Default)
	custom.RootSeed = 987654
	if got := treeName(custom); got != "Hybrid" {
		t.Fatalf("custom tree name %q, want the type name", got)
	}
}

func TestScaleParameterTables(t *testing.T) {
	for _, s := range []Scale{Quick, Default, Full} {
		ranks := sweepRanks(s)
		if len(ranks) < 3 {
			t.Fatalf("%v: sweep ranks %v", s, ranks)
		}
		for i := 1; i < len(ranks); i++ {
			if ranks[i] != 2*ranks[i-1] {
				t.Fatalf("%v: sweep ranks not doubling: %v", s, ranks)
			}
		}
		if err := sweepTree(s).Validate(); err != nil {
			t.Fatalf("%v sweep tree: %v", s, err)
		}
		if err := fig2Tree(s).Validate(); err != nil {
			t.Fatalf("%v fig2 tree: %v", s, err)
		}
		f2 := fig2Ranks(s)
		if f2[0] != 8 {
			t.Fatalf("%v fig2 ranks start at %d", s, f2[0])
		}
	}
}

func TestVariantDefinitions(t *testing.T) {
	for _, v := range []Variant{Reference, ReferenceHalf, Rand, RandHalf, Tofu, TofuHalf} {
		if v.Name == "" || v.Selector == nil {
			t.Fatalf("malformed variant %+v", v)
		}
	}
	if Reference.Steal != core.StealOne || TofuHalf.Steal != core.StealHalf {
		t.Fatal("steal policies wrong")
	}
}

func TestRunConfigDefaults(t *testing.T) {
	r := Run{Variant: Reference, Ranks: 8, Tree: fig2Tree(Quick), NodeCost: experimentNodeCost}
	cfg := r.config()
	if cfg.ChunkSize != ExperimentChunkSize {
		t.Fatalf("chunk %d", cfg.ChunkSize)
	}
	if cfg.BackoffPolicy.Threshold != -1 {
		t.Fatalf("small runs must disable backoff, got %+v", cfg.BackoffPolicy)
	}
	big := Run{Variant: Reference, Ranks: 2048, Tree: fig2Tree(Quick), NodeCost: experimentNodeCost}
	if big.config().BackoffPolicy.Threshold == -1 {
		t.Fatal("large runs must keep backoff")
	}
	override := Run{Variant: Reference, Ranks: 8, Tree: fig2Tree(Quick), NodeCost: experimentNodeCost,
		Backoff: core.Backoff{Threshold: 5, Base: 1, Max: 2}}
	if override.config().BackoffPolicy.Threshold != 5 {
		t.Fatal("explicit backoff ignored")
	}
}

func TestEventsRunAndDumpTraces(t *testing.T) {
	tree := fig2Tree(Quick)
	runs := []Run{
		{Label: "fig0", Variant: Reference, Ranks: 4, Tree: tree, NodeCost: experimentNodeCost, Events: true, Seed: 1},
		{Label: "fig0", Variant: Rand, Ranks: 4, Tree: tree, NodeCost: experimentNodeCost, Seed: 1}, // untraced
	}
	outs, err := Execute(runs)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Result.Trace == nil || outs[0].Result.Trace.Events == nil {
		t.Fatal("Events run produced no event log")
	}
	if outs[1].Result.Trace != nil {
		t.Fatal("untraced run grew a trace")
	}

	dir := t.TempDir()
	paths, err := DumpTraces(outs, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("dumped %d traces, want 1: %v", len(paths), paths)
	}
	f, err := os.Open(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.TotalEvents() != outs[0].Result.Trace.TotalEvents() {
		t.Fatal("round-tripped event count differs")
	}
}

func TestSlug(t *testing.T) {
	if got := slug("Fig 7", "Tofu Half"); got != "fig-7-tofu-half" {
		t.Fatalf("slug = %q", got)
	}
	if got := slug("", ""); got != "" {
		t.Fatalf("empty slug = %q", got)
	}
}
