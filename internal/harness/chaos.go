package harness

import (
	"fmt"
	"reflect"

	"distws/internal/fault"
	"distws/internal/sim"
	"distws/internal/topology"
)

// The chaos experiment subjects every victim-selection policy to one
// identical, fully deterministic fault plan — fail-stop crashes, a
// compute straggler, and a lossy wildcard link — and tabulates how much
// each policy degrades relative to its own fault-free baseline. The
// paper's Fig. 9 ranks the policies on a healthy machine; chaos asks
// whether that ranking survives adversity (EXPERIMENTS.md).

func init() {
	register(Experiment{ID: "chaos", Title: "C1: policy degradation under an identical fault plan", Run: runChaos})
}

// chaosVariants are the policies compared under faults: the paper's
// reference, both random flavors, and both Tofu flavors.
var chaosVariants = []Variant{Reference, Rand, RandHalf, Tofu, TofuHalf}

// chaosPlan builds the shared fault plan from a calibration makespan:
// three spread-out ranks fail at 8%, 15% and 25% of the fault-free
// run, one early rank computes 3x slower, and every link drops 3% of
// its messages. Times derive from the calibration run, so the plan
// scales with the grid while staying a pure function of (scale, seed).
// The fractions sit early because crashes destroy work: a faulted run
// can finish well before the fault-free makespan, and a crash
// scheduled after termination never fires.
func chaosPlan(ranks int, calibrated sim.Duration, seed uint64) *fault.Plan {
	at := func(frac float64) sim.Time {
		return sim.Time(float64(calibrated) * frac)
	}
	return &fault.Plan{
		Seed: seed ^ 0xc4a05,
		Crashes: []fault.Crash{
			{Rank: ranks / 4, At: at(0.08)},
			{Rank: ranks / 2, At: at(0.15)},
			{Rank: 3 * ranks / 4, At: at(0.25)},
		},
		Stragglers: []fault.Straggler{{Rank: ranks / 8, Compute: 3}},
		Links:      []fault.LinkFault{{From: fault.Wildcard, To: fault.Wildcard, Drop: 0.03}},
	}
}

// goodput is the efficiency measure the chaos tables use: completed
// work per rank-second of wall time. Result.Efficiency divides the
// whole tree's sequential time by the makespan, which rewards a crash
// for destroying work (less tree to finish, earlier termination);
// goodput only credits nodes that actually completed.
func goodput(nodes uint64, nodeCost sim.Duration, ranks int, makespan sim.Duration) float64 {
	if makespan <= 0 {
		return 0
	}
	return float64(nodes) * float64(nodeCost) / (float64(ranks) * float64(makespan))
}

func runChaos(scale Scale, seed uint64) (*Report, error) {
	ranks := ablationRanks(scale)
	tree := ablationTree(scale)

	// Calibrate: one fault-free Reference run fixes the crash schedule
	// for every policy, so all policies face the same absolute times.
	calRun := Run{
		Label: "calibrate", Variant: Reference,
		Ranks: ranks, Placement: topology.OnePerNode, Tree: tree,
		NodeCost: experimentNodeCost, Seed: seed,
	}
	cal, err := Execute([]Run{calRun})
	if err != nil {
		return nil, err
	}
	plan := chaosPlan(ranks, cal[0].Result.Makespan, seed)

	var runs []Run
	for _, v := range chaosVariants {
		base := Run{
			Label: v.Name + " base", Variant: v,
			Ranks: ranks, Placement: topology.OnePerNode, Tree: tree,
			NodeCost: experimentNodeCost, Seed: seed,
		}
		faulted := base
		faulted.Label = v.Name + " chaos"
		faulted.Faults = plan
		runs = append(runs, base, faulted)
	}
	outs, err := Execute(runs)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID: "chaos",
		Title: fmt.Sprintf("C1: degradation under crashes+straggler+loss (%d ranks, crashes at 8/15/25%% of %v)",
			ranks, cal[0].Result.Makespan),
		Paper: "Extends Fig. 9: does the victim-policy ranking survive fail-stop crashes and loss?",
	}
	t := &Table{
		Title: "Per-policy degradation under the identical fault plan",
		Columns: []string{"variant", "base makespan", "chaos makespan", "base goodput",
			"chaos goodput", "retained", "crashes", "lost nodes", "recoveries", "regens"},
	}

	allAccounted, allTerminated := true, true
	crashesLanded, dropsSeen := true, false
	var baseSum, chaosSum float64
	for i := 0; i < len(outs); i += 2 {
		b, f := outs[i].Result, outs[i+1].Result
		bg := goodput(b.Nodes, experimentNodeCost, ranks, b.Makespan)
		fg := goodput(f.Nodes, experimentNodeCost, ranks, f.Makespan)
		baseSum += bg
		chaosSum += fg
		retained := 0.0
		if bg > 0 {
			retained = fg / bg
		}
		t.Rows = append(t.Rows, []string{
			outs[i].Run.Variant.Name, fmtDur(b.Makespan), fmtDur(f.Makespan),
			fmtFloat(bg, 3), fmtFloat(fg, 3), fmtFloat(retained, 3),
			fmt.Sprintf("%d/%d", f.CrashedRanks, len(plan.Crashes)),
			fmt.Sprintf("%d", f.LostNodes), fmt.Sprintf("%d", f.Recoveries),
			fmt.Sprintf("%d", f.TokenRegens),
		})
		if f.Nodes+f.LostNodes != f.NodesGenerated {
			allAccounted = false
		}
		if f.Premature {
			allTerminated = false
		}
		// Every crash scheduled inside the run's actual lifetime must
		// land; a crash scheduled past termination legitimately never
		// fires (the run ended — there is no rank left to kill).
		due := 0
		for _, c := range plan.Crashes {
			if sim.Duration(c.At) < f.Makespan {
				due++
			}
		}
		if f.CrashedRanks != due || due == 0 {
			crashesLanded = false
		}
		if f.Comm.TotalDropped() > 0 {
			dropsSeen = true
		}
	}
	rep.Tables = append(rep.Tables, t)

	rep.Checks = append(rep.Checks,
		ShapeCheck{
			Desc:   "every faulted run terminates cleanly with exact loss accounting (completed + lost == generated)",
			Pass:   allAccounted && allTerminated,
			Detail: fmt.Sprintf("accounted=%v terminated=%v across %d faulted runs", allAccounted, allTerminated, len(chaosVariants)),
		},
		ShapeCheck{
			Desc:   "the fault plan observably fired: every crash due within each run's lifetime landed, and the lossy link dropped messages",
			Pass:   crashesLanded && dropsSeen,
			Detail: fmt.Sprintf("due crashes landed in every run=%v, drops observed=%v", crashesLanded, dropsSeen),
		},
		ShapeCheck{
			Desc:   "faults cost useful throughput: mean goodput under chaos is below the fault-free mean",
			Pass:   chaosSum < baseSum,
			Detail: fmt.Sprintf("mean goodput %.3f faulted vs %.3f fault-free", chaosSum/float64(len(chaosVariants)), baseSum/float64(len(chaosVariants))),
		},
	)

	// Determinism: replaying one faulted configuration must reproduce
	// the result bit-for-bit — adversity is part of the seeded state.
	replay := runs[len(runs)-1]
	r1, err := Execute([]Run{replay})
	if err != nil {
		return nil, err
	}
	r2, err := Execute([]Run{replay})
	if err != nil {
		return nil, err
	}
	rep.Checks = append(rep.Checks, ShapeCheck{
		Desc:   "the faulted run is seed-deterministic: an identical replay matches exactly",
		Pass:   reflect.DeepEqual(r1[0].Result, r2[0].Result),
		Detail: fmt.Sprintf("replayed %q twice", replay.Label),
	})
	return rep, nil
}
