package harness

import (
	"fmt"
	"math"

	"distws/internal/core"
	"distws/internal/metrics"
	"distws/internal/obs/causal"
	"distws/internal/sim"
	"distws/internal/topology"
	"distws/internal/uts"
	"distws/internal/victim"
)

// experimentNodeCost calibrates one child generation to 1 µs, close to
// the paper's measured 970k nodes/second per rank.
const experimentNodeCost = 1 * sim.Microsecond

func init() {
	register(Experiment{ID: "table1", Title: "UTS input tree parameters", Run: runTable1})
	register(Experiment{ID: "fig02", Title: "Efficiency of the reference implementation, 8-128 ranks", Run: runFig02})
	register(Experiment{ID: "fig03", Title: "Speedup of the reference implementation at scale", Run: runFig03})
	register(Experiment{ID: "fig04", Title: "Starting/ending latencies, reference, small scale", Run: runFig04})
	register(Experiment{ID: "fig05", Title: "Starting/ending latencies, reference, large scale", Run: runFig05})
	register(Experiment{ID: "fig06", Title: "Speedup with uniform random victim selection", Run: runFig06})
	register(Experiment{ID: "fig07", Title: "Failed steals, reference vs random", Run: runFig07})
	register(Experiment{ID: "fig08", Title: "Skewed victim-selection probability distribution", Run: runFig08})
	register(Experiment{ID: "fig09", Title: "Speedup with distance-skewed (Tofu) selection", Run: runFig09})
	register(Experiment{ID: "fig10", Title: "Average work-discovery session duration", Run: runFig10})
	register(Experiment{ID: "fig11", Title: "Speedup when stealing half the chunks", Run: runFig11})
	register(Experiment{ID: "fig12", Title: "Starting latencies, reference vs Tofu Half", Run: runFig12})
	register(Experiment{ID: "fig13", Title: "Ending latencies, reference vs Tofu Half", Run: runFig13})
	register(Experiment{ID: "fig14", Title: "Average search time per rank", Run: runFig14})
	register(Experiment{ID: "fig15", Title: "Failed steals, reference vs Tofu Half", Run: runFig15})
	register(Experiment{ID: "fig16", Title: "Victim-selection improvement vs work granularity", Run: runFig16})
	register(Experiment{ID: "blame", Title: "Idle-time blame attribution and critical path per policy", Run: runBlame})
}

// ---------------------------------------------------------------------
// Table I

func runTable1(scale Scale, _ uint64) (*Report, error) {
	rep := &Report{
		ID:    "table1",
		Title: "UTS input tree parameters",
		Paper: "Table I lists T3XXL (2.79e9 nodes) and T3WL (1.57e11 nodes), both binomial with b=2000, m=2.",
	}
	t := &Table{
		Title:   "Tree presets (paper trees and scaled stand-ins)",
		Columns: []string{"name", "type", "r", "b0", "m", "q", "paper size", "measured size", "depth"},
	}
	names := []string{"T3XXL", "T3WL", "T3S", "T3M", "H-SMALL", "H-SWEEP"}
	if scale == Quick {
		names = []string{"T3XXL", "T3WL", "T3", "H-TINY"}
	}
	limit := uint64(20_000_000)
	if scale == Quick {
		limit = 1_000_000
	}
	var measured []uint64
	for _, name := range names {
		info := uts.MustPreset(name)
		p := info.Params
		size, depth := "(too large to run)", "-"
		if info.PaperSize == 0 {
			res, ok, err := uts.CountLimited(p, limit)
			if err != nil {
				return nil, err
			}
			if ok {
				size = fmt.Sprintf("%d", res.Nodes)
				depth = fmt.Sprintf("%d", res.MaxDepth)
				measured = append(measured, res.Nodes)
			} else {
				size = fmt.Sprintf(">%d", limit)
			}
		}
		paperSize := "-"
		if info.PaperSize > 0 {
			paperSize = fmt.Sprintf("%d", info.PaperSize)
		}
		t.Rows = append(t.Rows, []string{
			info.Name, p.Type.String(), fmt.Sprintf("%d", p.RootSeed),
			fmtFloat(p.B0, 0), fmt.Sprintf("%d", p.NonLeafBF),
			fmtFloat(p.NonLeafProb, 7), paperSize, size, depth,
		})
	}
	rep.Tables = append(rep.Tables, t)
	allDeterministic := true
	for _, name := range names {
		info := uts.MustPreset(name)
		if info.PaperSize > 0 {
			continue
		}
		a, _, err := uts.CountLimited(info.Params, 100_000)
		if err != nil {
			return nil, err
		}
		b, _, err := uts.CountLimited(info.Params, 100_000)
		if err != nil {
			return nil, err
		}
		if a != b {
			allDeterministic = false
		}
	}
	rep.Checks = append(rep.Checks,
		ShapeCheck{
			Desc:   "tree generation is deterministic (same parameters => same tree)",
			Pass:   allDeterministic,
			Detail: fmt.Sprintf("%d presets re-enumerated", len(names)),
		},
		ShapeCheck{
			Desc:   "all enumerable presets are non-trivial",
			Pass:   len(measured) > 0 && minU64(measured) > 100,
			Detail: fmt.Sprintf("sizes %v", measured),
		},
	)
	rep.Notes = append(rep.Notes,
		"The paper's T3XXL/T3WL are hours-to-days of compute; scaled presets keep the binomial imbalance (see DESIGN.md §2).")
	return rep, nil
}

func minU64(xs []uint64) uint64 {
	m := ^uint64(0)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// ---------------------------------------------------------------------
// Figure 2

func runFig02(scale Scale, seed uint64) (*Report, error) {
	rep := &Report{
		ID:    "fig02",
		Title: "Efficiency of the reference work stealing, small scale",
		Paper: "Figure 2: near-perfect efficiency from 8 to 128 ranks for all three process allocations (T3XXL).",
	}
	ranks := fig2Ranks(scale)
	tree := fig2Tree(scale)
	var runs []Run
	for _, pl := range placements {
		for _, n := range ranks {
			runs = append(runs, Run{
				Variant: Reference, Ranks: n, Placement: pl,
				Tree: tree, NodeCost: experimentNodeCost, Seed: seed,
			})
		}
	}
	outs, err := Execute(runs)
	if err != nil {
		return nil, err
	}

	t := &Table{Title: "Efficiency (Reference, StealOne)", Columns: []string{"ranks"}}
	for _, pl := range placements {
		t.Columns = append(t.Columns, pl.String())
	}
	eff := map[topology.Placement]map[int]float64{}
	for _, o := range outs {
		if eff[o.Run.Placement] == nil {
			eff[o.Run.Placement] = map[int]float64{}
		}
		eff[o.Run.Placement][o.Run.Ranks] = o.Result.Efficiency
	}
	var series []metrics.Series
	for _, pl := range placements {
		s := metrics.Series{Name: pl.String()}
		for _, n := range ranks {
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, eff[pl][n])
		}
		series = append(series, s)
	}
	for _, n := range ranks {
		row := []string{fmt.Sprintf("%d", n)}
		for _, pl := range placements {
			row = append(row, fmtFloat(eff[pl][n], 3))
		}
		t.Rows = append(t.Rows, row)
	}
	rep.Tables = append(rep.Tables, t)
	rep.Plots = append(rep.Plots, metrics.ASCIIPlot("Efficiency vs ranks", series, 48, 10))

	smallestOK, worstSmall := true, 1.0
	for _, pl := range placements {
		if e := eff[pl][ranks[0]]; e < worstSmall {
			worstSmall = e
		}
		if eff[pl][ranks[0]] < 0.85 {
			smallestOK = false
		}
	}
	rep.Checks = append(rep.Checks,
		ShapeCheck{
			Desc:   "efficiency is near-ideal at the smallest scale for every allocation",
			Pass:   smallestOK,
			Detail: fmt.Sprintf("min efficiency at %d ranks = %.3f", ranks[0], worstSmall),
		},
	)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"Scaled workload: %v nodes instead of 2.79e9; the efficiency tail at %d ranks dips below the paper's because the distribution phase is proportionally longer (EXPERIMENTS.md).",
		tree.Type, ranks[len(ranks)-1]))
	return rep, nil
}

// ---------------------------------------------------------------------
// Speedup sweeps (Figures 3, 6, 9, 11 share machinery)

type sweepSpec struct {
	id, title, paper string
	// variants maps table column -> (variant, placements). Reference
	// comparisons re-use earlier variants.
	entries []sweepEntry
	checks  func(rep *Report, sp *sweepData, scale Scale)
}

type sweepEntry struct {
	Variant   Variant
	Placement topology.Placement
}

func (e sweepEntry) label() string {
	return fmt.Sprintf("%s %v", e.Variant.Name, e.Placement)
}

type sweepData struct {
	ranks   []int
	speedup map[string]map[int]float64 // label -> ranks -> speedup
	fails   map[string]map[int]float64
	search  map[string]map[int]float64 // milliseconds
	session map[string]map[int]float64 // milliseconds
}

func (s *sweepData) at(label string, n int, m map[string]map[int]float64) float64 {
	if m[label] == nil {
		return math.NaN()
	}
	return m[label][n]
}

func runSweep(spec sweepSpec, scale Scale, seed uint64, withTrace bool) (*Report, *sweepData, error) {
	ranks := sweepRanks(scale)
	tree := sweepTree(scale)
	var runs []Run
	for _, e := range spec.entries {
		for _, n := range ranks {
			runs = append(runs, Run{
				Label: e.label(), Variant: e.Variant, Ranks: n, Placement: e.Placement,
				Tree: tree, NodeCost: experimentNodeCost, Seed: seed, Trace: withTrace,
			})
		}
	}
	outs, err := Execute(runs)
	if err != nil {
		return nil, nil, err
	}
	sp := &sweepData{
		ranks:   ranks,
		speedup: map[string]map[int]float64{},
		fails:   map[string]map[int]float64{},
		search:  map[string]map[int]float64{},
		session: map[string]map[int]float64{},
	}
	ensure := func(m map[string]map[int]float64, k string) map[int]float64 {
		if m[k] == nil {
			m[k] = map[int]float64{}
		}
		return m[k]
	}
	for _, o := range outs {
		l := o.Run.Label
		ensure(sp.speedup, l)[o.Run.Ranks] = o.Result.Speedup
		ensure(sp.fails, l)[o.Run.Ranks] = float64(o.Result.FailedSteals)
		ensure(sp.search, l)[o.Run.Ranks] = o.Result.MeanSearchTime.Seconds() * 1e3
		ensure(sp.session, l)[o.Run.Ranks] = o.Result.MeanSessionDuration.Seconds() * 1e3
	}

	rep := &Report{ID: spec.id, Title: spec.title, Paper: spec.paper}
	rep.Tables = append(rep.Tables, sweepTable("Speedup", spec, sp, sp.speedup, 0))
	var series []metrics.Series
	for _, e := range spec.entries {
		s := metrics.Series{Name: e.label()}
		for _, n := range ranks {
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, sp.at(e.label(), n, sp.speedup))
		}
		series = append(series, s)
	}
	rep.Plots = append(rep.Plots, metrics.ASCIIPlot("Speedup vs ranks", series, 48, 12))
	if spec.checks != nil {
		spec.checks(rep, sp, scale)
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"Rank counts scaled 1/8 from the paper's 1024-8192 (scale=%v); workload %s.", scale, treeName(tree)))
	return rep, sp, nil
}

func treeName(p uts.Params) string {
	for _, n := range uts.PresetNames() {
		if uts.MustPreset(n).Params == p {
			return n
		}
	}
	return p.Type.String()
}

func sweepTable(metric string, spec sweepSpec, sp *sweepData, m map[string]map[int]float64, prec int) *Table {
	t := &Table{Title: metric, Columns: []string{"ranks"}}
	for _, e := range spec.entries {
		t.Columns = append(t.Columns, e.label())
	}
	for _, n := range sp.ranks {
		row := []string{fmt.Sprintf("%d", n)}
		for _, e := range spec.entries {
			row = append(row, fmtFloat(sp.at(e.label(), n, m), prec))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func topRanks(sp *sweepData) int { return sp.ranks[len(sp.ranks)-1] }

func runFig03(scale Scale, seed uint64) (*Report, error) {
	spec := sweepSpec{
		id:    "fig03",
		title: "Speedup of the reference implementation, large scale",
		paper: "Figure 3: the reference stops scaling past 2048 ranks; allocations that spread consecutive ranks (8RR) are worst.",
		entries: []sweepEntry{
			{Reference, topology.OnePerNode},
			{Reference, topology.EightRoundRobin},
			{Reference, topology.EightGrouped},
		},
		checks: func(rep *Report, sp *sweepData, scale Scale) {
			top, prev := topRanks(sp), sp.ranks[len(sp.ranks)-2]
			l := "Reference 1/N"
			growth := sp.at(l, top, sp.speedup) / sp.at(l, prev, sp.speedup)
			rep.Checks = append(rep.Checks, ShapeCheck{
				Desc:   "reference speedup saturates: doubling ranks adds <35% speedup at the top of the sweep",
				Pass:   growth < 1.35,
				Detail: fmt.Sprintf("speedup(%d)/speedup(%d) = %.2f", top, prev, growth),
			})
		},
	}
	rep, _, err := runSweep(spec, scale, seed, false)
	return rep, err
}

func runFig06(scale Scale, seed uint64) (*Report, error) {
	spec := sweepSpec{
		id:    "fig06",
		title: "Speedup with uniform random victim selection",
		paper: "Figure 6: random selection beats the reference when using one rank per node.",
		entries: []sweepEntry{
			{Reference, topology.OnePerNode},
			{Rand, topology.OnePerNode},
			{Rand, topology.EightRoundRobin},
			{Rand, topology.EightGrouped},
		},
		checks: func(rep *Report, sp *sweepData, scale Scale) {
			top := topRanks(sp)
			ref := sp.at("Reference 1/N", top, sp.speedup)
			rnd := sp.at("Rand 1/N", top, sp.speedup)
			rep.Checks = append(rep.Checks, ShapeCheck{
				Desc:   "random 1/N outperforms the reference 1/N at the largest scale",
				Pass:   rnd > ref,
				Detail: fmt.Sprintf("Rand %.0f vs Reference %.0f at %d ranks", rnd, ref, top),
			})
		},
	}
	rep, _, err := runSweep(spec, scale, seed, false)
	return rep, err
}

func runFig07(scale Scale, seed uint64) (*Report, error) {
	spec := sweepSpec{
		id:    "fig07",
		title: "Failed steals, reference vs random selection",
		paper: "Figure 7: random selection significantly reduces the number of failed steals.",
		entries: []sweepEntry{
			{Reference, topology.OnePerNode},
			{Rand, topology.OnePerNode},
			{Rand, topology.EightRoundRobin},
			{Rand, topology.EightGrouped},
		},
	}
	rep, sp, err := runSweep(spec, scale, seed, false)
	if err != nil {
		return nil, err
	}
	rep.Tables = append(rep.Tables, sweepTable("Failed steals", spec, sp, sp.fails, 0))
	top := topRanks(sp)
	ref := sp.at("Reference 1/N", top, sp.fails)
	rnd := sp.at("Rand 1/N", top, sp.fails)
	rep.Checks = append(rep.Checks, ShapeCheck{
		Desc:   "random selection fails less than the reference at the largest scale",
		Pass:   rnd < ref,
		Detail: fmt.Sprintf("Rand %.0f vs Reference %.0f failed steals at %d ranks", rnd, ref, top),
	})
	return rep, nil
}

func runFig09(scale Scale, seed uint64) (*Report, error) {
	spec := sweepSpec{
		id:    "fig09",
		title: "Speedup with distance-skewed (Tofu) victim selection",
		paper: "Figure 9: every allocation improves over random selection with the same allocation; Tofu 1/N is the best overall.",
		entries: []sweepEntry{
			{Rand, topology.OnePerNode},
			{Tofu, topology.OnePerNode},
			{Tofu, topology.EightRoundRobin},
			{Tofu, topology.EightGrouped},
		},
		checks: func(rep *Report, sp *sweepData, scale Scale) {
			top := topRanks(sp)
			rnd := sp.at("Rand 1/N", top, sp.speedup)
			tofu := sp.at("Tofu 1/N", top, sp.speedup)
			rep.Checks = append(rep.Checks, ShapeCheck{
				Desc:   "Tofu 1/N is at least competitive with Rand 1/N at the largest scale (the paper's gains grow with machine span; at 1/8 scale the latency spread is narrower)",
				Pass:   tofu > 0.92*rnd,
				Detail: fmt.Sprintf("Tofu %.0f vs Rand %.0f at %d ranks", tofu, rnd, top),
			})
		},
	}
	rep, _, err := runSweep(spec, scale, seed, false)
	return rep, err
}

func runFig10(scale Scale, seed uint64) (*Report, error) {
	spec := sweepSpec{
		id:    "fig10",
		title: "Average duration of a work-discovery session",
		paper: "Figure 10: the topology-aware strategy finds work much faster than the reference.",
		entries: []sweepEntry{
			{Reference, topology.OnePerNode},
			{Rand, topology.OnePerNode},
			{Tofu, topology.OnePerNode},
			{Tofu, topology.EightRoundRobin},
			{Tofu, topology.EightGrouped},
		},
	}
	rep, sp, err := runSweep(spec, scale, seed, true)
	if err != nil {
		return nil, err
	}
	rep.Tables = append(rep.Tables, sweepTable("Mean work-discovery session (ms)", spec, sp, sp.session, 3))
	top := topRanks(sp)
	ref := sp.at("Reference 1/N", top, sp.session)
	tofu := sp.at("Tofu 1/N", top, sp.session)
	rep.Checks = append(rep.Checks, ShapeCheck{
		Desc:   "Tofu finds work faster than the reference at the largest scale",
		Pass:   tofu < ref,
		Detail: fmt.Sprintf("Tofu %.3fms vs Reference %.3fms at %d ranks", tofu, ref, top),
	})
	return rep, nil
}

func runFig11(scale Scale, seed uint64) (*Report, error) {
	spec := sweepSpec{
		id:    "fig11",
		title: "Speedup of the half-stealing variants",
		paper: "Figure 11: skewed selection plus stealing half performs ~3x better than the reference and keeps scaling to 8192 ranks.",
		entries: []sweepEntry{
			{Reference, topology.OnePerNode},
			{ReferenceHalf, topology.OnePerNode},
			{Tofu, topology.OnePerNode},
			{RandHalf, topology.OnePerNode},
			{TofuHalf, topology.OnePerNode},
		},
		checks: func(rep *Report, sp *sweepData, scale Scale) {
			top := topRanks(sp)
			ref := sp.at("Reference 1/N", top, sp.speedup)
			tofuHalf := sp.at("Tofu Half 1/N", top, sp.speedup)
			rep.Checks = append(rep.Checks,
				ShapeCheck{
					Desc:   "Tofu Half clearly outperforms the reference at the largest scale",
					Pass:   tofuHalf > 1.2*ref,
					Detail: fmt.Sprintf("Tofu Half %.0f vs Reference %.0f at %d ranks (paper: ~3x at 8192)", tofuHalf, ref, top),
				},
				ShapeCheck{
					Desc: "Tofu Half holds its performance at the top of the sweep while the reference declines",
					Pass: func() bool {
						prev := sp.ranks[len(sp.ranks)-2]
						tofuPrev := sp.at("Tofu Half 1/N", prev, sp.speedup)
						refPrev := sp.at("Reference 1/N", prev, sp.speedup)
						// Tofu Half stays within noise of its plateau (or grows)
						// and keeps a growing margin over the reference.
						return tofuHalf > 0.95*tofuPrev && tofuHalf/ref > tofuPrev/refPrev*0.95
					}(),
					Detail: fmt.Sprintf("Tofu Half %.0f -> %.0f, Reference %.0f -> %.0f",
						sp.at("Tofu Half 1/N", sp.ranks[len(sp.ranks)-2], sp.speedup), tofuHalf,
						sp.at("Reference 1/N", sp.ranks[len(sp.ranks)-2], sp.speedup), ref),
				},
			)
		},
	}
	rep, _, err := runSweep(spec, scale, seed, false)
	return rep, err
}

// ---------------------------------------------------------------------
// Latency-curve experiments (Figures 4, 5, 12, 13)

func latencyRun(variant Variant, ranks int, tree uts.Params, seed uint64) (*core.Result, error) {
	outs, err := Execute([]Run{{
		Variant: variant, Ranks: ranks, Placement: topology.OnePerNode,
		Tree: tree, NodeCost: experimentNodeCost, Seed: seed, Trace: true,
	}})
	if err != nil {
		return nil, err
	}
	return outs[0].Result, nil
}

func latencyTable(title string, curve *metrics.OccupancyCurve, xs []float64) *Table {
	t := &Table{Title: title, Columns: []string{"occupancy", "SL (% of runtime)", "EL (% of runtime)"}}
	for _, p := range curve.LatencyCurve(xs) {
		sl, el := "unreached", "unreached"
		if p.Reached {
			sl = fmtFloat(p.SL*100, 2)
			el = fmtFloat(p.EL*100, 2)
		}
		t.Rows = append(t.Rows, []string{fmtFloat(p.Occupancy*100, 0) + "%", sl, el})
	}
	return t
}

func latencyPlot(title string, curves map[string]*metrics.OccupancyCurve, xs []float64) string {
	var series []metrics.Series
	for name, c := range curves {
		sl := metrics.Series{Name: name + " SL"}
		el := metrics.Series{Name: name + " EL"}
		for _, p := range c.LatencyCurve(xs) {
			if !p.Reached {
				continue
			}
			sl.X = append(sl.X, p.Occupancy*100)
			sl.Y = append(sl.Y, p.SL*100)
			el.X = append(el.X, p.Occupancy*100)
			el.Y = append(el.Y, p.EL*100)
		}
		series = append(series, sl, el)
	}
	return metrics.ASCIIPlot(title, series, 48, 12)
}

func runFig04(scale Scale, seed uint64) (*Report, error) {
	ranks := 128
	if scale == Quick {
		ranks = 32
	}
	res, err := latencyRun(Reference, ranks, fig2Tree(scale), seed)
	if err != nil {
		return nil, err
	}
	curve := metrics.Occupancy(res.Trace)
	xs := metrics.OccupancySamples(18, 0.9)
	rep := &Report{
		ID:    "fig04",
		Title: fmt.Sprintf("SL/EL of the reference at %d ranks (1/N)", ranks),
		Paper: "Figure 4: at 128 ranks both latencies at 90% occupancy are under 1% of the execution time.",
	}
	rep.Tables = append(rep.Tables, latencyTable("Reference latencies", curve, xs))
	rep.Plots = append(rep.Plots, latencyPlot("SL/EL vs occupancy (%)",
		map[string]*metrics.OccupancyCurve{"Reference": curve}, xs))
	sl90, ok1 := curve.StartingLatency(0.9)
	el90, ok2 := curve.EndingLatency(0.9)
	// Thresholds loosen with the workload scale-down: the distribution
	// and drain phases are proportionally longer on a 1e6-node tree
	// than on the paper's 2.8e9-node one.
	slMax, elMax := 0.15, 0.25
	if scale == Quick {
		slMax, elMax = 0.5, 0.8
	}
	rep.Checks = append(rep.Checks, ShapeCheck{
		Desc:   "90% occupancy is reached early and held late at small scale",
		Pass:   ok1 && ok2 && sl90 < slMax && el90 < elMax,
		Detail: fmt.Sprintf("SL(90%%)=%.2f%%, EL(90%%)=%.2f%% (paper: <1%%)", sl90*100, el90*100),
	})
	rep.Notes = append(rep.Notes,
		"With a ~1e6-node workload the distribution phase is relatively longer than with the paper's 2.8e9 nodes, so the thresholds are looser.")
	return rep, nil
}

func runFig05(scale Scale, seed uint64) (*Report, error) {
	ranks := 1024
	if scale == Quick {
		ranks = 128
	}
	if scale == Full {
		ranks = 2048
	}
	res, err := latencyRun(Reference, ranks, sweepTree(scale), seed)
	if err != nil {
		return nil, err
	}
	curve := metrics.Occupancy(res.Trace)
	maxOcc := curve.MaxOccupancy()
	xs := metrics.OccupancySamples(40, maxOcc)
	rep := &Report{
		ID:    "fig05",
		Title: fmt.Sprintf("SL/EL of the reference at %d ranks (1/N)", ranks),
		Paper: "Figure 5: at 8192 ranks the run never exceeds 43% occupancy; only 12.5% of ranks are active after 10% of the execution.",
	}
	rep.Tables = append(rep.Tables, latencyTable("Reference latencies", curve, xs))
	rep.Plots = append(rep.Plots, latencyPlot("SL/EL vs occupancy (%)",
		map[string]*metrics.OccupancyCurve{"Reference": curve}, xs))
	rep.Checks = append(rep.Checks,
		ShapeCheck{
			Desc:   "the large-scale reference run never reaches full occupancy",
			Pass:   maxOcc < 0.995,
			Detail: fmt.Sprintf("max occupancy %.1f%% (paper: 43%%)", maxOcc*100),
		},
	)
	if sl, ok := curve.StartingLatency(0.125); ok && scale != Quick {
		rep.Checks = append(rep.Checks, ShapeCheck{
			Desc:   "reaching even 12.5% occupancy takes a noticeable fraction of the run",
			Pass:   sl > 0.002,
			Detail: fmt.Sprintf("SL(12.5%%)=%.2f%% of runtime (paper: ~10%%)", sl*100),
		})
	}
	return rep, nil
}

func runFig12(scale Scale, seed uint64) (*Report, error) {
	return latencyComparison(scale, seed, "fig12",
		"Starting latencies, reference vs Tofu Half",
		"Figure 12: the optimized version reaches any given occupancy far earlier in the run.",
		true)
}

func runFig13(scale Scale, seed uint64) (*Report, error) {
	return latencyComparison(scale, seed, "fig13",
		"Ending latencies, reference vs Tofu Half",
		"Figure 13: the optimized version also maintains high occupancy until late in the execution.",
		false)
}

func latencyComparison(scale Scale, seed uint64, id, title, paper string, starting bool) (*Report, error) {
	ranks := topRanksForScale(scale)
	tree := sweepTree(scale)
	outs, err := Execute([]Run{
		{Variant: Reference, Ranks: ranks, Placement: topology.OnePerNode, Tree: tree, NodeCost: experimentNodeCost, Seed: seed, Trace: true},
		{Variant: TofuHalf, Ranks: ranks, Placement: topology.OnePerNode, Tree: tree, NodeCost: experimentNodeCost, Seed: seed, Trace: true},
	})
	if err != nil {
		return nil, err
	}
	refCurve := metrics.Occupancy(outs[0].Result.Trace)
	optCurve := metrics.Occupancy(outs[1].Result.Trace)
	maxShared := math.Min(refCurve.MaxOccupancy(), optCurve.MaxOccupancy())
	xs := metrics.OccupancySamples(20, maxShared)

	rep := &Report{ID: id, Title: fmt.Sprintf("%s at %d ranks", title, ranks), Paper: paper}
	t := &Table{Columns: []string{"occupancy", "Reference (%)", "Tofu Half (%)"}}
	if starting {
		t.Title = "Starting latency (% of runtime)"
	} else {
		t.Title = "Ending latency (% of runtime)"
	}
	var refVals, optVals []float64
	for _, x := range xs {
		var rv, ov float64
		var ok1, ok2 bool
		if starting {
			rv, ok1 = refCurve.StartingLatency(x)
			ov, ok2 = optCurve.StartingLatency(x)
		} else {
			rv, ok1 = refCurve.EndingLatency(x)
			ov, ok2 = optCurve.EndingLatency(x)
		}
		r, o := "unreached", "unreached"
		if ok1 {
			r = fmtFloat(rv*100, 2)
			refVals = append(refVals, rv)
		}
		if ok2 {
			o = fmtFloat(ov*100, 2)
			optVals = append(optVals, ov)
		}
		t.Rows = append(t.Rows, []string{fmtFloat(x*100, 0) + "%", r, o})
	}
	rep.Tables = append(rep.Tables, t)
	rep.Plots = append(rep.Plots, latencyPlot(t.Title+" vs occupancy (%)",
		map[string]*metrics.OccupancyCurve{"Reference": refCurve, "Tofu Half": optCurve}, xs))

	// Compare the latency at the highest shared occupancy point.
	pass := len(refVals) > 0 && len(optVals) > 0 &&
		optVals[len(optVals)-1] <= refVals[len(refVals)-1]+1e-9
	detail := "no shared occupancy points"
	if len(refVals) > 0 && len(optVals) > 0 {
		detail = fmt.Sprintf("at %.0f%% occupancy: Tofu Half %.2f%% vs Reference %.2f%%",
			xs[len(xs)-1]*100, optVals[len(optVals)-1]*100, refVals[len(refVals)-1]*100)
	}
	claim := "reaches occupancy earlier"
	if !starting {
		claim = "holds occupancy later"
	}
	rep.Checks = append(rep.Checks, ShapeCheck{
		Desc:   fmt.Sprintf("the optimized version %s than the reference", claim),
		Pass:   pass,
		Detail: detail,
	})
	return rep, nil
}

func topRanksForScale(scale Scale) int {
	r := sweepRanks(scale)
	return r[len(r)-1]
}

// ---------------------------------------------------------------------
// Figure 8

func runFig08(scale Scale, seed uint64) (*Report, error) {
	ranks := 1024
	if scale == Quick {
		ranks = 128
	}
	job, err := topology.NewJob(topology.KComputer(), ranks, topology.OnePerNode)
	if err != nil {
		return nil, err
	}
	sel := victim.NewDistanceSkewed(job, seed)
	pdfer, ok := sel.(interface{ PDF(int) []float64 })
	if !ok {
		return nil, fmt.Errorf("fig08: selector does not expose PDF")
	}
	pdf := pdfer.PDF(0)

	rep := &Report{
		ID:    "fig08",
		Title: fmt.Sprintf("p(0, x) of the skewed selection over a %d-rank 1/N allocation", ranks),
		Paper: "Figure 8: selection probability decays with rank distance from the thief, spanning roughly a 4x range over 1024 ranks.",
	}
	var series metrics.Series
	series.Name = "p(0,x)"
	var minP, maxP = math.Inf(1), 0.0
	for x := 1; x < ranks; x++ {
		series.X = append(series.X, float64(x))
		series.Y = append(series.Y, pdf[x])
		if pdf[x] < minP {
			minP = pdf[x]
		}
		if pdf[x] > maxP {
			maxP = pdf[x]
		}
	}
	rep.Plots = append(rep.Plots, metrics.ASCIIPlot("selection probability vs victim rank", []metrics.Series{series}, 64, 12))

	t := &Table{Title: "PDF summary", Columns: []string{"statistic", "value"}}
	uniform := 1.0 / float64(ranks-1)
	t.Rows = append(t.Rows,
		[]string{"uniform probability", fmt.Sprintf("%.3e", uniform)},
		[]string{"max p(0,x)", fmt.Sprintf("%.3e", maxP)},
		[]string{"min p(0,x)", fmt.Sprintf("%.3e", minP)},
		[]string{"max/min ratio", fmtFloat(maxP/minP, 2)},
	)
	rep.Tables = append(rep.Tables, t)

	// The nearest other rank must be most probable and the PDF must sum
	// to 1 with the thief excluded.
	sum := 0.0
	for _, p := range pdf {
		sum += p
	}
	near := -1
	nd := math.Inf(1)
	for x := 1; x < ranks; x++ {
		if d := job.Distance(0, x); d < nd {
			nd, near = d, x
		}
	}
	rep.Checks = append(rep.Checks,
		ShapeCheck{
			Desc:   "probabilities form a distribution over the other ranks",
			Pass:   math.Abs(sum-1) < 1e-9 && pdf[0] == 0,
			Detail: fmt.Sprintf("sum=%.12f", sum),
		},
		ShapeCheck{
			Desc:   "the nearest rank is the most probable victim",
			Pass:   pdf[near] == maxP,
			Detail: fmt.Sprintf("rank %d at distance %.2f has p=%.3e", near, nd, pdf[near]),
		},
		ShapeCheck{
			Desc:   "the skew spans a multiplicative range comparable to the paper's (~4x)",
			Pass:   maxP/minP > 2,
			Detail: fmt.Sprintf("max/min = %.2f", maxP/minP),
		},
	)
	return rep, nil
}

// ---------------------------------------------------------------------
// Figures 14, 15

func runFig14(scale Scale, seed uint64) (*Report, error) {
	spec := sweepSpec{
		id:    "fig14",
		title: "Average search time per rank",
		paper: "Figure 14: skewed selection with half-stealing greatly diminishes time spent searching for work.",
		entries: []sweepEntry{
			{Reference, topology.OnePerNode},
			{TofuHalf, topology.OnePerNode},
			{TofuHalf, topology.EightRoundRobin},
			{TofuHalf, topology.EightGrouped},
		},
	}
	rep, sp, err := runSweep(spec, scale, seed, false)
	if err != nil {
		return nil, err
	}
	rep.Tables = append(rep.Tables, sweepTable("Mean search time (ms)", spec, sp, sp.search, 3))
	top := topRanks(sp)
	ref := sp.at("Reference 1/N", top, sp.search)
	opt := sp.at("Tofu Half 1/N", top, sp.search)
	rep.Checks = append(rep.Checks, ShapeCheck{
		Desc:   "Tofu Half searches for work far less than the reference at the largest scale",
		Pass:   opt < ref,
		Detail: fmt.Sprintf("Tofu Half %.3fms vs Reference %.3fms at %d ranks", opt, ref, top),
	})
	return rep, nil
}

func runFig15(scale Scale, seed uint64) (*Report, error) {
	spec := sweepSpec{
		id:    "fig15",
		title: "Failed steals, reference vs Tofu Half",
		paper: "Figure 15: failed steals decrease as a result of better work distribution.",
		entries: []sweepEntry{
			{Reference, topology.OnePerNode},
			{TofuHalf, topology.OnePerNode},
			{TofuHalf, topology.EightRoundRobin},
			{TofuHalf, topology.EightGrouped},
		},
	}
	rep, sp, err := runSweep(spec, scale, seed, false)
	if err != nil {
		return nil, err
	}
	rep.Tables = append(rep.Tables, sweepTable("Failed steals", spec, sp, sp.fails, 0))
	top := topRanks(sp)
	ref := sp.at("Reference 1/N", top, sp.fails)
	opt := sp.at("Tofu Half 1/N", top, sp.fails)
	rep.Checks = append(rep.Checks, ShapeCheck{
		Desc:   "Tofu Half fails fewer steals than the reference at the largest scale",
		Pass:   opt < ref,
		Detail: fmt.Sprintf("Tofu Half %.0f vs Reference %.0f at %d ranks", opt, ref, top),
	})
	return rep, nil
}

// ---------------------------------------------------------------------
// Figure 16

func runFig16(scale Scale, seed uint64) (*Report, error) {
	ranks := topRanksForScale(scale)
	tree := sweepTree(scale)
	rounds := []int{1, 2, 4, 8, 16, 24}
	if scale == Quick {
		rounds = []int{1, 4, 16}
	}
	variants := []Variant{ReferenceHalf, RandHalf, TofuHalf}
	var runs []Run
	for _, r := range rounds {
		for _, v := range variants {
			runs = append(runs, Run{
				Label: fmt.Sprintf("%s@%d", v.Name, r), Variant: v,
				Ranks: ranks, Placement: topology.OnePerNode, Tree: tree,
				NodeCost: core.GranularityCost(r), Seed: seed,
			})
		}
	}
	outs, err := Execute(runs)
	if err != nil {
		return nil, err
	}
	makespan := map[string]float64{}
	for _, o := range outs {
		makespan[o.Run.Label] = o.Result.Makespan.Seconds()
	}

	rep := &Report{
		ID:    "fig16",
		Title: fmt.Sprintf("Runtime improvement over Reference Half vs work granularity (%d ranks, 1/N)", ranks),
		Paper: "Figure 16: as per-node compute grows (more SHA rounds), the advantage of better victim selection shrinks.",
	}
	t := &Table{Title: "Runtime improvement (%) over Reference Half", Columns: []string{"SHA rounds", "Rand Half", "Tofu Half"}}
	var randImp, tofuImp []float64
	var sRand, sTofu metrics.Series
	sRand.Name, sTofu.Name = "Rand Half", "Tofu Half"
	for _, r := range rounds {
		ref := makespan[fmt.Sprintf("Reference Half@%d", r)]
		ri := (ref - makespan[fmt.Sprintf("Rand Half@%d", r)]) / ref * 100
		ti := (ref - makespan[fmt.Sprintf("Tofu Half@%d", r)]) / ref * 100
		randImp = append(randImp, ri)
		tofuImp = append(tofuImp, ti)
		sRand.X = append(sRand.X, float64(r))
		sRand.Y = append(sRand.Y, ri)
		sTofu.X = append(sTofu.X, float64(r))
		sTofu.Y = append(sTofu.Y, ti)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", r), fmtFloat(ri, 1), fmtFloat(ti, 1)})
	}
	rep.Tables = append(rep.Tables, t)
	rep.Plots = append(rep.Plots, metrics.ASCIIPlot("improvement (%) vs SHA rounds",
		[]metrics.Series{sRand, sTofu}, 48, 10))

	firstMean := (randImp[0] + tofuImp[0]) / 2
	lastMean := (randImp[len(randImp)-1] + tofuImp[len(tofuImp)-1]) / 2
	rep.Checks = append(rep.Checks, ShapeCheck{
		Desc:   "the improvement from better victim selection shrinks as work granularity grows",
		Pass:   lastMean < firstMean,
		Detail: fmt.Sprintf("mean improvement %.1f%% at %d round(s) vs %.1f%% at %d rounds", firstMean, rounds[0], lastMean, rounds[len(rounds)-1]),
	})
	rep.Notes = append(rep.Notes,
		"Granularity scales the virtual per-child cost (GranularityCost); the tree itself is held fixed so ratios compare identical workloads.")
	return rep, nil
}

// ---------------------------------------------------------------------
// Causal observability: blame attribution and critical path

// blameRanks picks one representative rank count per scale for the
// causal tables (a single size keeps the event logs affordable).
func blameRanks(s Scale) int {
	switch s {
	case Quick:
		return 64
	case Full:
		return 1024
	default:
		return 256
	}
}

func runBlame(scale Scale, seed uint64) (*Report, error) {
	rep := &Report{
		ID:    "blame",
		Title: "Idle-time blame attribution and critical path per policy",
		Paper: "Causal view of Figures 6/7: the reference round-robin's failed-steal flood surfaces as refused-steal search blame, and its slow wind-down as termination-tail blame and token time on the critical path.",
	}
	ranks := blameRanks(scale)
	tree := sweepTree(scale)
	var runs []Run
	for _, v := range []Variant{Reference, Rand, Tofu} {
		runs = append(runs, Run{
			Label: v.Name, Variant: v, Ranks: ranks, Placement: topology.OnePerNode,
			Tree: tree, NodeCost: experimentNodeCost, Events: true, Seed: seed,
		})
	}
	outs, err := Execute(runs)
	if err != nil {
		return nil, err
	}

	blameTab := &Table{
		Title:   fmt.Sprintf("Idle-time blame at %d ranks (%% of total rank-time)", ranks),
		Columns: []string{"variant", "busy", "startup", "search", "in-flight", "term-tail"},
	}
	critTab := &Table{
		Title:   "Critical-path decomposition (% of makespan)",
		Columns: []string{"variant", "compute", "steal-rtt", "transfer", "token", "wait", "segments", "max depth"},
	}
	partitionExact, pathExact := true, true
	search := map[string]float64{}
	tail := map[string]float64{}
	for _, o := range outs {
		tr := o.Result.Trace
		b := causal.AttributeIdle(tr)
		g := causal.Build(tr)
		p := causal.CriticalPath(g)
		for _, rb := range b.PerRank {
			if rb.Total() != sim.Duration(tr.End) {
				partitionExact = false
			}
		}
		var sum sim.Duration
		for _, d := range p.ByKind {
			sum += d
		}
		if sum != sim.Duration(tr.End) || p.Total != sim.Duration(tr.End) {
			pathExact = false
		}
		whole := float64(b.Total.Total())
		pc := func(d sim.Duration) float64 { return 100 * float64(d) / whole }
		search[o.Run.Label] = pc(b.Total.Search)
		tail[o.Run.Label] = pc(b.Total.TermTail)
		blameTab.Rows = append(blameTab.Rows, []string{
			o.Run.Label, fmtFloat(pc(b.Total.Busy), 1), fmtFloat(pc(b.Total.Startup), 1),
			fmtFloat(pc(b.Total.Search), 1), fmtFloat(pc(b.Total.InFlight), 1),
			fmtFloat(pc(b.Total.TermTail), 1),
		})
		mk := float64(p.Total)
		kc := func(k causal.SegmentKind) float64 { return 100 * float64(p.ByKind[k]) / mk }
		critTab.Rows = append(critTab.Rows, []string{
			o.Run.Label, fmtFloat(kc(causal.SegCompute), 1), fmtFloat(kc(causal.SegStealRTT), 1),
			fmtFloat(kc(causal.SegTransfer), 1), fmtFloat(kc(causal.SegToken), 1),
			fmtFloat(kc(causal.SegWait), 1), fmt.Sprintf("%d", len(p.Segments)),
			fmt.Sprintf("%d", g.MaxDepth()),
		})
	}
	rep.Tables = append(rep.Tables, blameTab, critTab)
	rep.Checks = append(rep.Checks,
		ShapeCheck{
			Desc:   "blame categories partition each rank's time exactly (busy + blamed idle = makespan)",
			Pass:   partitionExact,
			Detail: fmt.Sprintf("%d runs x %d ranks verified", len(outs), ranks),
		},
		ShapeCheck{
			Desc:   "critical-path segment durations sum to the makespan",
			Pass:   pathExact,
			Detail: fmt.Sprintf("%d runs verified", len(outs)),
		},
		ShapeCheck{
			Desc:   "the reference round-robin wastes at least as much idle time searching as random selection (Figure 7's failed-steal flood, causally attributed)",
			Pass:   search["Reference"] >= search["Rand"],
			Detail: fmt.Sprintf("search blame: Reference %.1f%% vs Rand %.1f%% (term-tail %.1f%% vs %.1f%%)", search["Reference"], search["Rand"], tail["Reference"], tail["Rand"]),
		},
	)
	rep.Notes = append(rep.Notes,
		"Blame partitions every rank's idle time into startup, refused-steal search, work-transfer in flight, and the termination tail (internal/obs/causal).")
	return rep, nil
}
