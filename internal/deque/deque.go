// Package deque implements the Chase–Lev dynamic circular
// work-stealing deque (SPAA 2005), which the paper's related work cites
// for its treatment of "lock contention from multiple steals to the
// same worker" (§VI).
//
// One owner pushes and pops at the bottom without locks; any number of
// thieves steal from the top with a single CAS. The buffer grows
// automatically. Elements are stored as atomic pointers so the
// implementation is data-race-free under the Go memory model (verified
// with the race detector); Go's sequentially consistent atomics are
// stronger than the fences the original algorithm requires.
package deque

import (
	"sync/atomic"
)

// Status reports the outcome of a Steal.
type Status uint8

const (
	// OK: an element was taken.
	OK Status = iota
	// Empty: the deque had no elements.
	Empty
	// Contended: another thief (or the owner) won a race; retry if
	// desired. Distinguishing this from Empty preserves the algorithm's
	// lock-freedom reasoning and lets callers avoid premature give-ups.
	Contended
)

func (s Status) String() string {
	switch s {
	case OK:
		return "OK"
	case Empty:
		return "Empty"
	default:
		return "Contended"
	}
}

// ring is one immutable-capacity circular buffer.
type ring[T any] struct {
	mask int64
	buf  []atomic.Pointer[T]
}

func newRing[T any](capacity int64) *ring[T] {
	return &ring[T]{mask: capacity - 1, buf: make([]atomic.Pointer[T], capacity)}
}

func (r *ring[T]) get(i int64) *T    { return r.buf[i&r.mask].Load() }
func (r *ring[T]) put(i int64, v *T) { r.buf[i&r.mask].Store(v) }
func (r *ring[T]) capacity() int64   { return r.mask + 1 }
func (r *ring[T]) grow(b, t int64) *ring[T] {
	n := newRing[T](2 * r.capacity())
	for i := t; i < b; i++ {
		n.put(i, r.get(i))
	}
	return n
}

// Deque is a single-owner, multi-thief work-stealing deque.
// The zero value is not usable; construct with New.
type Deque[T any] struct {
	top    atomic.Int64
	bottom atomic.Int64
	ring   atomic.Pointer[ring[T]]
}

// New returns an empty deque with at least the given initial capacity
// (rounded up to a power of two, minimum 8).
func New[T any](initial int) *Deque[T] {
	c := int64(8)
	for c < int64(initial) {
		c *= 2
	}
	d := &Deque[T]{}
	d.ring.Store(newRing[T](c))
	return d
}

// PushBottom adds v at the bottom. Owner only.
func (d *Deque[T]) PushBottom(v *T) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.ring.Load()
	if b-t >= r.capacity()-1 {
		r = r.grow(b, t)
		d.ring.Store(r)
	}
	r.put(b, v)
	d.bottom.Store(b + 1)
}

// PopBottom removes the most recently pushed element. Owner only.
func (d *Deque[T]) PopBottom() (*T, bool) {
	b := d.bottom.Load() - 1
	r := d.ring.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if b < t {
		// Deque was empty; restore.
		d.bottom.Store(t)
		return nil, false
	}
	v := r.get(b)
	if b > t {
		return v, true
	}
	// b == t: racing thieves may take the last element; arbitrate.
	won := d.top.CompareAndSwap(t, t+1)
	d.bottom.Store(t + 1)
	if !won {
		return nil, false
	}
	return v, true
}

// Steal removes the oldest element. Safe from any goroutine.
func (d *Deque[T]) Steal() (*T, Status) {
	t := d.top.Load()
	b := d.bottom.Load()
	if b <= t {
		return nil, Empty
	}
	r := d.ring.Load()
	v := r.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil, Contended
	}
	return v, OK
}

// Len returns a linearizable-enough size snapshot (exact when quiescent,
// approximate under concurrency). For statistics and tests.
func (d *Deque[T]) Len() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Empty reports whether the deque looked empty at the time of the call.
func (d *Deque[T]) Empty() bool { return d.Len() == 0 }
