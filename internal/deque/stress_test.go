package deque

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// stressItems returns the per-test element budget, shrunk so the whole
// stress suite stays inside a `go test -race -short` CI gate.
func stressItems(full int) int {
	if testing.Short() {
		return full / 8
	}
	return full
}

// TestStressWaves drives the deque through repeated fill/drain waves —
// the owner racing thieves for the *last* element (the b==t CAS
// arbitration in PopBottom) far more often than a single monotone run
// does. Every element must be consumed exactly once across all waves.
// Run with -race: the test exists to give the race detector
// interleavings to chew on, not just to check the final counts.
func TestStressWaves(t *testing.T) {
	perWave := stressItems(8192)
	waves := 24
	thieves := runtime.GOMAXPROCS(0) + 1

	d := New[int64](8)
	var stop atomic.Bool
	var consumed atomic.Int64
	counts := make([]atomic.Int32, perWave*waves)

	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if v, st := d.Steal(); st == OK {
					counts[*v].Add(1)
					consumed.Add(1)
				}
			}
		}()
	}

	vals := make([]int64, perWave*waves)
	for w := 0; w < waves; w++ {
		base := int64(w * perWave)
		for i := int64(0); i < int64(perWave); i++ {
			vals[base+i] = base + i
			d.PushBottom(&vals[base+i])
		}
		// Drain the wave completely so the next wave restarts from an
		// empty deque with top == bottom, the contended corner.
		for consumed.Load() < base+int64(perWave) {
			if v, ok := d.PopBottom(); ok {
				counts[*v].Add(1)
				consumed.Add(1)
			} else {
				runtime.Gosched() // a thief holds the stragglers
			}
		}
	}
	stop.Store(true)
	wg.Wait()

	total := int64(perWave * waves)
	if consumed.Load() != total {
		t.Fatalf("consumed %d of %d", consumed.Load(), total)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("element %d consumed %d times", i, c)
		}
	}
	if !d.Empty() {
		t.Fatal("deque not empty after all waves")
	}
}

// TestStressGrowUnderSteals forces repeated ring growth while thieves
// are concurrently CASing the top: growth publishes a new ring with an
// atomic store, and a thief may still be reading through the old one —
// exactly the window the Chase–Lev proof cares about. An initial burst
// before the thieves start makes the growth assertion deterministic;
// the following bursts grow (and shrink pressure) under live
// contention.
func TestStressGrowUnderSteals(t *testing.T) {
	items := stressItems(262144)
	const thieves = 4
	const primer = 1024 // pushed before thieves start: forces >=1024-slot ring

	d := New[int64](1) // rounds up to the 8-slot minimum
	vals := make([]int64, items)
	for i := range vals {
		vals[i] = int64(i)
	}
	for i := 0; i < primer; i++ {
		d.PushBottom(&vals[i])
	}
	if got := d.ring.Load().capacity(); got < primer {
		t.Fatalf("primer burst did not grow the ring: capacity %d", got)
	}

	var consumed atomic.Int64
	counts := make([]atomic.Int32, items)
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for consumed.Load() < int64(items) {
				if v, st := d.Steal(); st == OK {
					counts[*v].Add(1)
					consumed.Add(1)
				}
			}
		}()
	}

	for i := primer; i < items; i++ {
		d.PushBottom(&vals[i])
	}
	for {
		if v, ok := d.PopBottom(); ok {
			counts[*v].Add(1)
			consumed.Add(1)
			continue
		}
		if consumed.Load() == int64(items) {
			break
		}
		runtime.Gosched()
	}
	wg.Wait()

	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("element %d consumed %d times", i, c)
		}
	}
}
