package deque

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSequentialLIFOForOwner(t *testing.T) {
	d := New[int](4)
	if _, ok := d.PopBottom(); ok {
		t.Fatal("pop from empty deque succeeded")
	}
	vals := []int{1, 2, 3, 4, 5}
	for i := range vals {
		d.PushBottom(&vals[i])
	}
	if d.Len() != 5 {
		t.Fatalf("Len = %d", d.Len())
	}
	for i := 4; i >= 0; i-- {
		v, ok := d.PopBottom()
		if !ok || *v != vals[i] {
			t.Fatalf("popped %v, want %d", v, vals[i])
		}
	}
	if !d.Empty() {
		t.Fatal("not empty")
	}
}

func TestSequentialFIFOForThief(t *testing.T) {
	d := New[int](4)
	vals := []int{1, 2, 3}
	for i := range vals {
		d.PushBottom(&vals[i])
	}
	for i := 0; i < 3; i++ {
		v, st := d.Steal()
		if st != OK || *v != vals[i] {
			t.Fatalf("stole %v/%v, want %d", v, st, vals[i])
		}
	}
	if _, st := d.Steal(); st != Empty {
		t.Fatalf("steal from empty: %v", st)
	}
}

func TestGrowth(t *testing.T) {
	d := New[int](8)
	const n = 10000
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i
		d.PushBottom(&vals[i])
	}
	if d.Len() != n {
		t.Fatalf("Len = %d after growth", d.Len())
	}
	// Mixed draining: steal half from the top, pop half from the bottom.
	for i := 0; i < n/2; i++ {
		if v, st := d.Steal(); st != OK || *v != i {
			t.Fatalf("steal %d: %v/%v", i, v, st)
		}
	}
	for i := n - 1; i >= n/2; i-- {
		if v, ok := d.PopBottom(); !ok || *v != i {
			t.Fatalf("pop %d: %v/%v", i, v, ok)
		}
	}
	if !d.Empty() {
		t.Fatal("not empty after drain")
	}
}

func TestStatusString(t *testing.T) {
	if OK.String() != "OK" || Empty.String() != "Empty" || Contended.String() != "Contended" {
		t.Fatal("status strings")
	}
}

// TestConcurrentConservation is the core stress test: one owner
// pushing/popping and several thieves stealing; every pushed element
// must be consumed exactly once.
func TestConcurrentConservation(t *testing.T) {
	const total = 200000
	thieves := runtime.GOMAXPROCS(0) + 2

	d := New[int64](8)
	var produced, consumed atomic.Int64
	var stop atomic.Bool
	counts := make([]atomic.Int64, total)

	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				v, st := d.Steal()
				if st == OK {
					counts[*v].Add(1)
					consumed.Add(1)
				}
			}
		}()
	}

	// Owner: push everything, interleaving pops.
	vals := make([]int64, total)
	for i := int64(0); i < total; i++ {
		vals[i] = i
		d.PushBottom(&vals[i])
		produced.Add(1)
		if i%3 == 0 {
			if v, ok := d.PopBottom(); ok {
				counts[*v].Add(1)
				consumed.Add(1)
			}
		}
	}
	// Owner drains the rest.
	for {
		v, ok := d.PopBottom()
		if !ok {
			break
		}
		counts[*v].Add(1)
		consumed.Add(1)
	}
	// Let thieves finish any in-flight steals, then stop them.
	for consumed.Load() < produced.Load() {
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()

	if consumed.Load() != total {
		t.Fatalf("consumed %d of %d", consumed.Load(), total)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("element %d consumed %d times", i, c)
		}
	}
	if !d.Empty() {
		t.Fatal("deque not empty at the end")
	}
}

// TestConcurrentOnlyThieves drains a pre-filled deque with thieves only;
// each element goes to exactly one thief.
func TestConcurrentOnlyThieves(t *testing.T) {
	const total = 100000
	d := New[int64](8)
	vals := make([]int64, total)
	for i := int64(0); i < total; i++ {
		vals[i] = i
		d.PushBottom(&vals[i])
	}
	var consumed atomic.Int64
	counts := make([]atomic.Int64, total)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, st := d.Steal()
				switch st {
				case OK:
					counts[*v].Add(1)
					consumed.Add(1)
				case Empty:
					return
				case Contended:
					// retry
				}
			}
		}()
	}
	wg.Wait()
	if consumed.Load() != total {
		t.Fatalf("consumed %d of %d", consumed.Load(), total)
	}
	for i := range counts {
		if counts[i].Load() != 1 {
			t.Fatalf("element %d consumed %d times", i, counts[i].Load())
		}
	}
}

// Property: any sequence of owner pushes and pops behaves like a slice
// stack (single-threaded model check).
func TestPropertyOwnerStackSemantics(t *testing.T) {
	f := func(ops []uint8) bool {
		d := New[int](2)
		var model []int
		vals := make([]int, 0, len(ops))
		for _, op := range ops {
			if op%3 != 0 { // push twice as often as pop
				vals = append(vals, int(op))
				d.PushBottom(&vals[len(vals)-1])
				model = append(model, int(op))
			} else {
				v, ok := d.PopBottom()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				want := model[len(model)-1]
				model = model[:len(model)-1]
				if !ok || *v != want {
					return false
				}
			}
		}
		return d.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOwnerPushPop(b *testing.B) {
	d := New[int](1024)
	v := 7
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.PushBottom(&v)
		d.PopBottom()
	}
}

func BenchmarkStealContention(b *testing.B) {
	d := New[int](1 << 20)
	v := 7
	for i := 0; i < 1<<20; i++ {
		d.PushBottom(&v)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, st := d.Steal(); st == Empty {
				d.PushBottom(&v) // keep it non-empty; owner-unsafe but fine for a throughput probe
			}
		}
	})
}
